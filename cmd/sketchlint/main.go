// Command sketchlint runs SketchTree's project-specific static
// analyzers (internal/analysis/checks) over the module and reports
// findings as file:line: analyzer: message lines, or as JSON with
// -json for machine consumption. It exits 1 when there are findings,
// 2 on usage or load errors, and 0 on a clean tree.
//
// Intentional violations are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. Directives are
// themselves checked: a missing reason, an unknown analyzer name, or
// a directive that no longer suppresses anything is a finding.
//
// -annotate turns a previously captured -json report into GitHub
// Actions ::error workflow commands, so CI shows findings inline on
// the pull request diff. Reports captured before the call-graph era
// (a bare JSON array of findings) still annotate.
//
// -budget fails the run (exit 3) when loading and analyzing together
// exceed the given duration, pinning the lint step's cost in CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sketchtree/internal/analysis"
	"sketchtree/internal/analysis/checks"
)

// report is the -json output shape: the findings plus the
// interprocedural call-graph statistics of the analyzed module, so CI
// artifacts track graph growth alongside lint health.
type report struct {
	Findings  []analysis.Diagnostic   `json:"findings"`
	CallGraph analysis.CallGraphStats `json:"callgraph"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sketchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("dir", ".", "module root to analyze")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		sel      = fs.String("checks", "", "comma-separated analyzer names (default: all)")
		list     = fs.Bool("list", false, "list the analyzers and exit")
		annotate = fs.String("annotate", "", "read a -json report from this file and emit GitHub ::error annotations")
		budget   = fs.Duration("budget", 0, "fail (exit 3) if load+analysis exceed this duration; 0 disables")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sketchlint [-dir root] [-checks a,b] [-json]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range checks.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *annotate != "" {
		return annotateFromJSON(*annotate, stdout, stderr)
	}
	analyzers, ok := checks.ByName(*sel)
	if !ok {
		fmt.Fprintf(stderr, "sketchlint: unknown analyzer in -checks=%q (run -list)\n", *sel)
		return 2
	}
	start := time.Now()
	m, err := analysis.Load(*dir, nil)
	if err != nil {
		fmt.Fprintf(stderr, "sketchlint: %v\n", err)
		return 2
	}
	diags := analysis.RunSelection(m, analyzers, checks.All())
	elapsed := time.Since(start)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		rep := report{Findings: diags, CallGraph: m.Interproc().Stats()}
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "sketchlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "sketchlint: load+analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		return 3
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "sketchlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// annotateFromJSON replays a captured -json report as GitHub Actions
// workflow commands (::error file=…,line=…::…), one per finding.
func annotateFromJSON(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "sketchlint: %v\n", err)
		return 2
	}
	var diags []analysis.Diagnostic
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		// Legacy shape: a bare array of findings.
		if err := json.Unmarshal(data, &diags); err != nil {
			fmt.Fprintf(stderr, "sketchlint: parse %s: %v\n", path, err)
			return 2
		}
	} else {
		var rep report
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(stderr, "sketchlint: parse %s: %v\n", path, err)
			return 2
		}
		diags = rep.Findings
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "::error file=%s,line=%d,title=sketchlint/%s::%s\n",
			d.File, d.Line, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
