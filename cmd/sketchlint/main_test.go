package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sketchtree/internal/analysis"
	"sketchtree/internal/analysis/checks"
)

const moduleRoot = "../.."

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", moduleRoot}, &out, &errb); code != 0 {
		t.Fatalf("clean tree: exit %d, findings:\n%s%s", code, out.String(), errb.String())
	}
}

func TestJSONOutputIsMachineReadable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", moduleRoot, "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(rep.Findings) != 0 {
		t.Errorf("clean tree reported %d findings via JSON", len(rep.Findings))
	}
	if rep.CallGraph.Nodes == 0 || rep.CallGraph.Edges == 0 || rep.CallGraph.SCCs == 0 {
		t.Errorf("call-graph stats missing from report: %+v", rep.CallGraph)
	}
	if rep.CallGraph.SCCs > rep.CallGraph.Nodes {
		t.Errorf("more SCCs (%d) than nodes (%d)", rep.CallGraph.SCCs, rep.CallGraph.Nodes)
	}
}

// TestBudgetOverrunFailsTheRun pins the -budget contract: a budget the
// analysis cannot possibly meet exits 3, and a generous one exits 0.
func TestBudgetOverrunFailsTheRun(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", moduleRoot, "-budget", "1ns"}, &out, &errb); code != 3 {
		t.Fatalf("-budget 1ns: exit %d, want 3\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "over the") {
		t.Errorf("budget overrun not reported: %s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-dir", moduleRoot, "-budget", "10m"}, &out, &errb); code != 0 {
		t.Fatalf("-budget 10m on the clean tree: exit %d\n%s%s", code, out.String(), errb.String())
	}
}

// TestCheckSubsetLeavesOtherDirectivesAlone guards RunSelection: a
// //lint:allow for an analyzer that exists but was not selected must
// be neither "unknown" nor "stale".
func TestCheckSubsetLeavesOtherDirectivesAlone(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", moduleRoot, "-checks", "safeparity"}, &out, &errb); code != 0 {
		t.Fatalf("-checks safeparity on the clean tree: exit %d, findings:\n%s", code, out.String())
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, a := range checks.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

// TestDeletedSafeWrapperIsCaught deletes one Safe wrapper from the
// module's view (overlay; the tree is untouched) and demands that
// safeparity flag the orphaned SketchTree method.
func TestDeletedSafeWrapperIsCaught(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(moduleRoot, "concurrent.go"))
	if err != nil {
		t.Fatal(err)
	}
	const marker = "func (s *Safe) Merge("
	if !bytes.Contains(src, []byte(marker)) {
		t.Fatalf("concurrent.go no longer declares %q; update this test", marker)
	}
	mutated := bytes.Replace(src, []byte(marker), []byte("func (s *Safe) mergeDeletedForTest("), 1)
	m, err := analysis.Load(moduleRoot, map[string][]byte{"concurrent.go": mutated})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(m, []*analysis.Analyzer{checks.SafeParity})
	found := false
	for _, d := range diags {
		if d.Analyzer == "safeparity" && strings.Contains(d.Message, "Merge has no matching Safe wrapper") {
			found = true
		}
	}
	if !found {
		t.Errorf("deleting Safe.Merge produced no safeparity finding; got %v", diags)
	}
}

// TestUnsortedMapRangeInPersistIsCaught appends an unsorted map-range
// function to internal/core/persist.go in the module's view and
// demands a determinism finding.
func TestUnsortedMapRangeInPersistIsCaught(t *testing.T) {
	rel := "internal/core/persist.go"
	src, err := os.ReadFile(filepath.Join(moduleRoot, filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	mutated := append(append([]byte{}, src...), []byte(`

func (e *Engine) marshalLeakForTest(m map[uint64]int64) []uint64 {
	var out []uint64
	for v := range m {
		out = append(out, v)
	}
	return out
}
`)...)
	m, err := analysis.Load(moduleRoot, map[string][]byte{rel: mutated})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(m, []*analysis.Analyzer{checks.Determinism})
	found := false
	for _, d := range diags {
		if d.Analyzer == "determinism" && d.File == rel && strings.Contains(d.Message, "ranges over map m") {
			found = true
		}
	}
	if !found {
		t.Errorf("unsorted map range in persist.go produced no determinism finding; got %v", diags)
	}
}

// TestDriverExitsNonzeroOnFindings runs the driver end-to-end over a
// throwaway module containing a violation.
func TestDriverExitsNonzeroOnFindings(t *testing.T) {
	dir := t.TempDir()
	bad := `package bad

func Marshal(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`
	if err := os.WriteFile(filepath.Join(dir, "persist.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errb); code != 1 {
		t.Fatalf("module with violation: exit %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "determinism") {
		t.Errorf("finding not printed: %s", out.String())
	}
}

// TestAnnotateEmitsWorkflowCommands replays a -json report as GitHub
// ::error annotations.
func TestAnnotateEmitsWorkflowCommands(t *testing.T) {
	report := `[{"file":"concurrent.go","line":12,"analyzer":"safeparity","message":"missing wrapper"}]`
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-annotate", path}, &out, &errb); code != 1 {
		t.Fatalf("annotate with findings: exit %d, want 1", code)
	}
	want := "::error file=concurrent.go,line=12,title=sketchlint/safeparity::missing wrapper"
	if !strings.Contains(out.String(), want) {
		t.Errorf("annotation output %q does not contain %q", out.String(), want)
	}
	// An empty report annotates nothing and exits clean.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-annotate", empty}, &out, &errb); code != 0 {
		t.Fatalf("annotate empty report: exit %d, want 0", code)
	}
	// The current object shape annotates identically to the legacy
	// array shape.
	obj := `{"findings":[{"file":"concurrent.go","line":12,"analyzer":"safeparity","message":"missing wrapper"}],"callgraph":{"nodes":1,"edges":1,"sccs":1}}`
	objPath := filepath.Join(t.TempDir(), "object.json")
	if err := os.WriteFile(objPath, []byte(obj), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-annotate", objPath}, &out, &errb); code != 1 {
		t.Fatalf("annotate object report: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), want) {
		t.Errorf("object-shape annotation output %q does not contain %q", out.String(), want)
	}
}

// The overlay-mutation tests below re-analyze the real module with one
// regression injected into its in-memory view (the tree is untouched)
// and demand that the responsible interprocedural analyzer fires. They
// are the static equivalent of a failing regression test: delete the
// guard, watch the analyzer catch it.

// TestDeletedStopSelectIsALeak removes windowLoop's stop arm, turning
// the ticker loop into an unstoppable goroutine.
func TestDeletedStopSelectIsALeak(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(moduleRoot, "window.go"))
	if err != nil {
		t.Fatal(err)
	}
	const guard = "case <-stop:\n\t\t\treturn\n\t\t"
	if !bytes.Contains(src, []byte(guard)) {
		t.Fatalf("window.go no longer has windowLoop's stop arm; update this test")
	}
	mutated := bytes.Replace(src, []byte(guard), nil, 1)
	m, err := analysis.Load(moduleRoot, map[string][]byte{"window.go": mutated})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(m, []*analysis.Analyzer{checks.GoroutineLeak})
	found := false
	for _, d := range diags {
		if d.Analyzer == "goroutineleak" && strings.Contains(d.Message, "windowLoop loops forever") {
			found = true
		}
	}
	if !found {
		t.Errorf("deleting the stop arm produced no goroutineleak finding; got %v", diags)
	}
}

// TestClosureInAddTreeEscapesTheHotPath introduces a per-call closure
// into the tagged AddTree and demands a hotpath finding.
func TestClosureInAddTreeEscapesTheHotPath(t *testing.T) {
	rel := "internal/core/engine.go"
	src, err := os.ReadFile(filepath.Join(moduleRoot, filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	const call = "return e.applyTree(t, 1)"
	if !bytes.Contains(src, []byte(call)) {
		t.Fatalf("engine.go no longer has %q; update this test", call)
	}
	mutated := bytes.Replace(src, []byte(call),
		[]byte("delta := func() int64 { return 1 }\n\treturn e.applyTree(t, delta())"), 1)
	m, err := analysis.Load(moduleRoot, map[string][]byte{rel: mutated})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(m, []*analysis.Analyzer{checks.HotPath})
	found := false
	for _, d := range diags {
		if d.Analyzer == "hotpath" && d.File == rel && strings.Contains(d.Message, "closure allocation") {
			found = true
		}
	}
	if !found {
		t.Errorf("closure in AddTree produced no hotpath finding; got %v", diags)
	}
}

// TestReversedLockOrderIsACycle appends a pair of functions taking
// Safe.mu and Ingestor.mu in opposite orders.
func TestReversedLockOrderIsACycle(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(moduleRoot, "concurrent.go"))
	if err != nil {
		t.Fatal(err)
	}
	mutated := append(append([]byte{}, src...), []byte(`

func lockBothForTest(s *Safe, in *Ingestor) {
	s.mu.Lock()
	in.mu.Lock()
	in.mu.Unlock()
	s.mu.Unlock()
}

func lockBothReversedForTest(s *Safe, in *Ingestor) {
	in.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	in.mu.Unlock()
}
`)...)
	m, err := analysis.Load(moduleRoot, map[string][]byte{"concurrent.go": mutated})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(m, []*analysis.Analyzer{checks.LockOrder})
	found := false
	for _, d := range diags {
		if d.Analyzer == "lockorder" && strings.Contains(d.Message, "lock-order cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("reversed lock order produced no lockorder finding; got %v", diags)
	}
}

// TestDroppedMarshalErrorIsCaught appends a function that discards
// Engine.MarshalBinary's error.
func TestDroppedMarshalErrorIsCaught(t *testing.T) {
	rel := "internal/core/persist.go"
	src, err := os.ReadFile(filepath.Join(moduleRoot, filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	mutated := append(append([]byte{}, src...), []byte(`

func (e *Engine) snapshotLenForTest() {
	e.MarshalBinary()
}
`)...)
	m, err := analysis.Load(moduleRoot, map[string][]byte{rel: mutated})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(m, []*analysis.Analyzer{checks.ErrFlow})
	found := false
	for _, d := range diags {
		if d.Analyzer == "errflow" && d.File == rel && strings.Contains(d.Message, "e.MarshalBinary") {
			found = true
		}
	}
	if !found {
		t.Errorf("dropped MarshalBinary error produced no errflow finding; got %v", diags)
	}
}
