// Command datagen emits the synthetic TREEBANK- or DBLP-style XML
// datasets used by the experiments, as one rooted XML forest document
// suitable for `sketchtree -forest`.
//
// Usage:
//
//	datagen -dataset treebank -n 1000 -seed 42 -o treebank.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sketchtree/internal/datagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "treebank", "dataset to generate: treebank or dblp")
		n       = fs.Int("n", 1000, "number of trees")
		seed    = fs.Uint64("seed", 42, "generator seed (same seed, same stream)")
		out     = fs.String("o", "", "output file (default stdout)")
		rootTag = fs.String("root", "", "root tag of the forest document (default: dataset name)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src *datagen.Source
	switch strings.ToLower(*dataset) {
	case "treebank":
		src = datagen.Treebank(*seed, *n)
	case "dblp":
		src = datagen.DBLP(*seed, *n)
	default:
		return fmt.Errorf("unknown dataset %q (want treebank or dblp)", *dataset)
	}
	tag := *rootTag
	if tag == "" {
		tag = strings.ToLower(*dataset)
	}

	w := bufio.NewWriter(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := src.WriteXML(w, tag); err != nil {
		return err
	}
	return w.Flush()
}
