package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sketchtree/internal/tree"
)

func TestRunStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "dblp", "-n", "5", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := tree.StreamForest(strings.NewReader(out.String()), tree.DefaultXMLOptions(),
		func(*tree.Tree) error { n++; return nil })
	if err != nil {
		t.Fatalf("output does not parse as a forest: %v", err)
	}
	if n != 5 {
		t.Errorf("forest has %d trees, want 5", n)
	}
	if !strings.HasPrefix(out.String(), "<dblp>") {
		t.Error("default root tag must be the dataset name")
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tb.xml")
	var out bytes.Buffer
	if err := run([]string{"-dataset", "treebank", "-n", "3", "-o", path, "-root", "corpus"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("writing to a file must not touch stdout")
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(data, "<corpus>") {
		t.Errorf("custom root tag missing: %q", data[:20])
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bad flag must fail")
	}
	if err := run([]string{"-o", "/nonexistent-dir/x.xml"}, &out); err == nil {
		t.Error("unwritable output must fail")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	run([]string{"-dataset", "dblp", "-n", "4", "-seed", "9"}, &a)
	run([]string{"-dataset", "dblp", "-n", "4", "-seed", "9"}, &b)
	if a.String() != b.String() {
		t.Error("same seed must give identical output")
	}
	var c bytes.Buffer
	run([]string{"-dataset", "dblp", "-n", "4", "-seed", "10"}, &c)
	if a.String() == c.String() {
		t.Error("different seed should change the output")
	}
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}
