package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunForward(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-epsilon", "0.1", "-delta", "0.1", "-selfjoin", "1e6", "-count", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Theorem 1 sizing") || !strings.Contains(s, "s2 = 7") {
		t.Errorf("output missing expected lines: %q", s)
	}
}

func TestRunSetQuery(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-t", "3", "-selfjoin", "1e6", "-count", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Theorem 2 sizing") {
		t.Errorf("set query must use Theorem 2: %q", out.String())
	}
}

func TestRunBudget(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-budget", "1048576", "-selfjoin", "1e6", "-count", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "achievable relative error") {
		t.Errorf("budget mode output wrong: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing required flags must fail")
	}
	if err := run([]string{"-selfjoin", "100", "-count", "0"}, &out); err == nil {
		t.Error("zero count must fail")
	}
	if err := run([]string{"-budget", "10", "-selfjoin", "1e6", "-count", "100"}, &out); err == nil {
		t.Error("impossible budget must fail")
	}
	if err := run([]string{"-zzz"}, &out); err == nil {
		t.Error("bad flag must fail")
	}
}
