// Command sizing turns the paper's error-bound theorems into a
// capacity planner: given a target relative error ε, confidence 1−δ,
// the stream's self-join size, and the smallest count of interest, it
// prints the required sketch dimensions and synopsis memory — and,
// inversely, the error achievable under a memory budget.
//
//	sizing -epsilon 0.10 -delta 0.1 -selfjoin 2.5e9 -count 1000
//	sizing -budget 1048576 -delta 0.1 -selfjoin 2.5e9 -count 1000
//
// Virtual streams divide the effective self-join size by roughly p on
// evenly spread streams (§5.3), and top-k deletion shrinks it further
// on skewed ones (§5.2) — both options are reflected in the output.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"sketchtree/internal/ams"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sizing: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sizing", flag.ContinueOnError)
	var (
		eps     = fs.Float64("epsilon", 0.10, "target relative error")
		delta   = fs.Float64("delta", 0.10, "failure probability (confidence 1-δ)")
		sj      = fs.Float64("selfjoin", 0, "self-join size SJ(S) of the pattern stream (required)")
		count   = fs.Float64("count", 0, "smallest pattern count to be estimated at ε (required)")
		setSize = fs.Int("t", 1, "number of distinct patterns in a set query (Theorem 2)")
		p       = fs.Int("p", 229, "virtual streams: effective SJ is divided by p (even-spread assumption)")
		budget  = fs.Int("budget", 0, "memory budget in bytes; if set, solve for ε instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sj <= 0 || *count <= 0 {
		return fmt.Errorf("-selfjoin and -count are required and must be positive")
	}
	effSJ := *sj / float64(*p)
	s2 := ams.S2ForConfidence(*delta)
	const bytesPerCell = 8 + 24 // counter + BCH seed words

	if *budget > 0 {
		// Invert Theorem 1/2 for s1 under the budget, then for ε.
		s1 := *budget / (bytesPerCell * s2 * *p)
		if s1 < 1 {
			return fmt.Errorf("budget %d B cannot fit even s1=1 with s2=%d and p=%d (need %d B)",
				*budget, s2, *p, bytesPerCell*s2**p)
		}
		var eps2 float64
		if *setSize <= 1 {
			eps2 = 8 * effSJ / (float64(s1) * *count * *count)
		} else {
			eps2 = 16 * float64(*setSize-1) * effSJ / (float64(s1) * *count * *count)
		}
		fmt.Fprintf(stdout, "budget %.1f KB → s1 = %d, s2 = %d (δ = %g)\n",
			float64(*budget)/1024, s1, s2, *delta)
		fmt.Fprintf(stdout, "achievable relative error at count %.0f: ε ≈ %.3f (%.1f%%)\n",
			*count, math.Sqrt(eps2), 100*math.Sqrt(eps2))
		return nil
	}

	var s1 int
	if *setSize <= 1 {
		s1 = ams.Theorem1S1(effSJ, *count, *eps)
	} else {
		s1 = ams.Theorem2S1(effSJ, *setSize, *count, *eps)
	}
	mem := s1 * s2 * *p * bytesPerCell
	fmt.Fprintf(stdout, "Theorem %d sizing for ε = %g, δ = %g:\n", theoremNo(*setSize), *eps, *delta)
	fmt.Fprintf(stdout, "  effective SJ = SJ/p = %.3g (p = %d virtual streams)\n", effSJ, *p)
	fmt.Fprintf(stdout, "  s1 = %d, s2 = %d → %d sketch cells per stream\n", s1, s2, s1*s2)
	fmt.Fprintf(stdout, "  synopsis ≈ %.1f MB (%d B/cell: counter + ξ seed)\n",
		float64(mem)/(1<<20), bytesPerCell)
	fmt.Fprintf(stdout, "  variance bound per atomic estimate: %.3g (Var ≤ %s)\n",
		ams.VarBoundSet(*setSize, effSJ), varFormula(*setSize))
	fmt.Fprintln(stdout, "\nnote: top-k deletion reduces SJ further on skewed streams (§5.2);")
	fmt.Fprintln(stdout, "measure the live value with SketchTree.EstimateSelfJoinSize.")
	return nil
}

func theoremNo(t int) int {
	if t <= 1 {
		return 1
	}
	return 2
}

func varFormula(t int) string {
	if t <= 1 {
		return "SJ"
	}
	return fmt.Sprintf("2·(t−1)·SJ, t = %d", t)
}
