package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
)

// windowStatus mirrors the standalone GET /window response shape (see
// internal/server).
type windowStatus struct {
	Role    string `json:"role"`
	Enabled bool   `json:"enabled"`
	Window  *struct {
		Slices     int `json:"slices"`
		SliceTrees int `json:"slice_trees"`
		Live       []struct {
			Trees   int64 `json:"trees"`
			Current bool  `json:"current"`
		} `json:"live"`
		LiveTrees    int64 `json:"live_trees"`
		MergedTrees  int64 `json:"merged_trees"`
		MergedSlices int   `json:"merged_slices"`
		Advances     int64 `json:"advances"`
		Expires      int64 `json:"expires"`
		Rebuilds     int64 `json:"rebuilds"`
	} `json:"window"`
}

// clusterWindowStatus mirrors the coordinator's GET /window response.
type clusterWindowStatus struct {
	Role    string `json:"role"`
	Enabled bool   `json:"enabled"`
	Policy  *struct {
		Slices     int `json:"slices"`
		SliceTrees int `json:"slice_trees"`
	} `json:"policy"`
	Shards []struct {
		Shard   int             `json:"shard"`
		URL     string          `json:"url"`
		Enabled bool            `json:"enabled"`
		Window  json.RawMessage `json:"window"`
		Error   string          `json:"error"`
	} `json:"shards"`
}

func getWindow(t *testing.T, base string) (windowStatus, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/window")
	if err != nil {
		t.Fatalf("GET /window: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /window: status %d: %s", resp.StatusCode, raw)
	}
	var ws windowStatus
	if err := json.Unmarshal(raw, &ws); err != nil {
		t.Fatalf("decoding /window: %v", err)
	}
	return ws, raw
}

// TestWindowDaemonServe boots a windowed daemon through the real CLI
// entry point (-window-slices 3 -window-every 8), streams 30 trees in
// over HTTP so the ring seals three slices and expires the first, and
// checks the serving surfaces agree on the lifecycle: /healthz and
// /query report the live window (22 trees) and merged provenance (16
// trees — the published merge from the seal at tree 24), GET /window
// exposes the ring and its counters, and /metrics carries the window
// gauges. WINDOW_STATUS_OUT persists the final GET /window JSON for
// the CI artifact, mirroring CLUSTER_STATUS_OUT.
func TestWindowDaemonServe(t *testing.T) {
	d := startDaemon(t, append([]string{
		"-window-slices", "3", "-window-every", "8",
	}, shardArgs...)...)
	base := "http://" + d.addr

	if !strings.Contains(d.out.String(), "sliding window: 3 slices, advance every 8 trees") {
		t.Errorf("startup output missing window line:\n%s", d.out.String())
	}

	// 30 trees: slices seal at 8, 16 and 24; the third seal fills the
	// 3-slice ring and drops trees 1–8. Live = trees 9–30 (22 trees);
	// the merged snapshot was last rebuilt at the seal (16 trees).
	var b strings.Builder
	b.WriteString("<forest>")
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			b.WriteString("<a><b/></a>")
		case 1:
			b.WriteString("<a><b/><c/></a>")
		default:
			b.WriteString("<a><c/></a>")
		}
	}
	b.WriteString("</forest>")
	resp, body := postJSON(t, base+"/ingest?forest=1", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forest ingest: status %d: %s", resp.StatusCode, body)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hbody), `"trees":22`) {
		t.Errorf("healthz should report the live window, not the landmark total: %s", hbody)
	}

	// Queries are answered from the published merge, with snapshot
	// provenance: the answer covers exactly the merged trees.
	resp, body = postJSON(t, base+"/query", `{"kind":"ordered","pattern":"a/b"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	var qr queryResult
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Snapshot || qr.SnapshotTrees != 16 {
		t.Errorf("query provenance: snapshot=%v trees=%d, want snapshot over 16 trees: %s",
			qr.Snapshot, qr.SnapshotTrees, body)
	}

	ws, raw := getWindow(t, base)
	if ws.Role != "standalone" || !ws.Enabled || ws.Window == nil {
		t.Fatalf("GET /window: %s", raw)
	}
	w := ws.Window
	if w.Slices != 3 || w.SliceTrees != 8 {
		t.Errorf("policy drifted: %s", raw)
	}
	if len(w.Live) != 3 || w.LiveTrees != 22 {
		t.Errorf("live ring: %d slices / %d trees, want 3 / 22: %s", len(w.Live), w.LiveTrees, raw)
	}
	// The seal's rebuild merges all three live slices — the two sealed
	// ones plus the freshly opened (still empty) current slice.
	if w.MergedTrees != 16 || w.MergedSlices != 3 {
		t.Errorf("merged provenance: %d trees / %d slices, want 16 / 3: %s",
			w.MergedTrees, w.MergedSlices, raw)
	}
	if w.Advances != 3 || w.Expires != 1 {
		t.Errorf("lifecycle counters: advances=%d expires=%d, want 3/1: %s", w.Advances, w.Expires, raw)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, metric := range []string{
		"sketchtree_window_slices_live 3",
		"sketchtree_window_advances_total 3",
		"sketchtree_window_expires_total 1",
	} {
		if !strings.Contains(string(mbody), metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}

	// CI artifact: persist the final window status when asked to.
	if out := os.Getenv("WINDOW_STATUS_OUT"); out != "" {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, raw, "", "  "); err != nil {
			t.Fatal(err)
		}
		pretty.WriteByte('\n')
		if err := os.WriteFile(out, pretty.Bytes(), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote window status to %s", out)
	}
}

// TestWindowDaemonLandmark checks GET /window on a daemon without
// window flags reports disabled rather than erroring.
func TestWindowDaemonLandmark(t *testing.T) {
	d := startDaemon(t, shardArgs...)
	ws, raw := getWindow(t, "http://"+d.addr)
	if ws.Enabled || ws.Window != nil {
		t.Errorf("landmark daemon reports a window: %s", raw)
	}
}

// TestWindowDaemonCluster checks the coordinator's GET /window
// aggregation: the configured policy as provenance plus each shard's
// window section fetched over the shard's own GET /window.
func TestWindowDaemonCluster(t *testing.T) {
	sh := startDaemon(t, append([]string{
		"-role", "shard", "-window-slices", "3", "-window-every", "4",
	}, shardArgs...)...)
	co := startDaemon(t, append([]string{
		"-role", "coordinator",
		"-shards", "http://" + sh.addr,
		"-pull-every", "50ms",
		"-window-slices", "3", "-window-every", "4",
	}, shardArgs...)...)
	base := "http://" + co.addr

	// Route enough trees through the coordinator for the single shard's
	// ring to advance at least once.
	for _, doc := range clusterCorpus(6) {
		resp, body := postJSON(t, base+"/ingest", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed ingest: status %d: %s", resp.StatusCode, body)
		}
	}

	resp, err := http.Get(base + "/window")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator GET /window: status %d: %s", resp.StatusCode, raw)
	}
	var cw clusterWindowStatus
	if err := json.Unmarshal(raw, &cw); err != nil {
		t.Fatal(err)
	}
	if cw.Role != "coordinator" || !cw.Enabled {
		t.Fatalf("coordinator window status: %s", raw)
	}
	if cw.Policy == nil || cw.Policy.Slices != 3 || cw.Policy.SliceTrees != 4 {
		t.Errorf("policy provenance: %s", raw)
	}
	if len(cw.Shards) != 1 {
		t.Fatalf("want 1 shard section: %s", raw)
	}
	st := cw.Shards[0]
	if !st.Enabled || st.Error != "" || st.Window == nil {
		t.Errorf("shard window section: %s", raw)
	}
	if st.URL != "http://"+sh.addr {
		t.Errorf("shard URL %q, want %q", st.URL, "http://"+sh.addr)
	}

	// Degradation: with the shard gone the coordinator still answers,
	// carrying the fetch error instead of a window section.
	sh.stop(t)
	resp, err = http.Get(base + "/window")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /window after shard loss: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &cw); err != nil {
		t.Fatal(err)
	}
	if cw.Enabled || len(cw.Shards) != 1 || cw.Shards[0].Error == "" {
		t.Errorf("shard loss should degrade to a per-shard error: %s", raw)
	}
}

// TestWindowDaemonFlagErrors checks the window flag combinations that
// must fail fast, and that a valid combination boots.
func TestWindowDaemonFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"cadence-less", []string{"-window-slices", "3"}, "advance cadence"},
		{"slices-less", []string{"-window-every", "8"}, "-window-slices"},
		{"age-slices-less", []string{"-window-age", "1s"}, "-window-slices"},
		{"topk", []string{"-window-slices", "3", "-window-every", "8", "-topk", "4"}, "-topk 0"},
		{"snapshots", []string{"-window-slices", "3", "-window-every", "8", "-topk", "0",
			"-snapshot-every", "10"}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), append([]string{"-addr", "127.0.0.1:0"}, tc.args...), &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %v, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}
