package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"sketchtree/internal/obs/trace"
)

// debugRequests mirrors the GET /debug/requests body.
type debugRequests struct {
	Enabled         bool               `json:"enabled"`
	Role            string             `json:"role"`
	SlowThresholdNS int64              `json:"slow_threshold_ns"`
	Recent          []*trace.Completed `json:"recent"`
	Slow            []*trace.Completed `json:"slow"`
	Background      []*trace.Completed `json:"background"`
}

func getDebug(t *testing.T, base, traceID string) debugRequests {
	t.Helper()
	url := base + "/debug/requests"
	if traceID != "" {
		url += "?trace_id=" + traceID
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d debugRequests
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return d
}

// TestClusterTraceJoin is the tracing acceptance test: a routed ingest
// through a real cluster produces one trace ID that resolves on both
// the coordinator's and the owning shard's /debug/requests, and with
// -slow-query 0 the request is retained in the slow log with per-span
// durations.
func TestClusterTraceJoin(t *testing.T) {
	traceArgs := append([]string{"-slow-query", "0"}, shardArgs...)
	shards := make([]*daemon, 3)
	urls := make([]string, 3)
	for i := range shards {
		shards[i] = startDaemon(t, traceArgs...)
		urls[i] = "http://" + shards[i].addr
	}
	co := startDaemon(t, append([]string{
		"-role", "coordinator",
		"-shards", strings.Join(urls, ","),
		"-pull-every", "50ms",
	}, traceArgs...)...)
	base := "http://" + co.addr

	// Routed ingest: capture the trace ID and owning shard.
	resp, err := http.Post(base+"/ingest", "application/xml",
		strings.NewReader("<a><b/><c/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed ingest: status %d", resp.StatusCode)
	}
	id := resp.Header.Get(trace.Header)
	if id == "" {
		t.Fatal("routed ingest response carries no trace ID")
	}
	shardIdx, err := strconv.Atoi(resp.Header.Get("X-Sketchtree-Shard"))
	if err != nil {
		t.Fatalf("X-Sketchtree-Shard header: %v", err)
	}

	// The same ID resolves on the coordinator...
	coDump := getDebug(t, base, id)
	if !coDump.Enabled || coDump.Role != "coordinator" {
		t.Fatalf("coordinator /debug/requests = enabled %v role %q", coDump.Enabled, coDump.Role)
	}
	if len(coDump.Recent) != 1 {
		t.Fatalf("coordinator holds %d traces for %s, want 1", len(coDump.Recent), id)
	}
	names := map[string]bool{}
	for _, sp := range coDump.Recent[0].Spans {
		names[sp.Name] = true
		if sp.DurationNS < 0 {
			t.Fatalf("span %q has negative duration", sp.Name)
		}
	}
	if !names["route"] || !names["forward"] {
		t.Fatalf("coordinator ingest spans = %v, want route and forward", names)
	}

	// ...and on the shard that applied the document.
	shardDump := getDebug(t, urls[shardIdx], id)
	if len(shardDump.Recent) != 1 {
		t.Fatalf("shard %d holds %d traces for %s, want 1 (trace did not propagate)",
			shardIdx, len(shardDump.Recent), id)
	}
	sh := shardDump.Recent[0]
	if sh.Role != "shard" && sh.Role != "standalone" {
		t.Fatalf("shard trace role = %q", sh.Role)
	}
	if sh.Endpoint != "/ingest" {
		t.Fatalf("shard trace endpoint = %q, want /ingest", sh.Endpoint)
	}

	// -slow-query 0 retains every request in the slow log, spans and
	// all — the "slow queries above threshold are retained" criterion
	// exercised at its always-on boundary.
	if coDump.SlowThresholdNS != 0 {
		t.Fatalf("slow_threshold_ns = %d, want 0", coDump.SlowThresholdNS)
	}
	if len(coDump.Slow) != 1 || !coDump.Slow[0].Slow {
		t.Fatalf("slow log = %+v, want the ingest trace marked slow", coDump.Slow)
	}

	// A query is traced with plan/eval spans and a pattern-size attr.
	qresp, body := postJSON(t, base+"/query", `{"kind":"ordered","pattern":"(a (b))"}`)
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", qresp.StatusCode, body)
	}
	qid := qresp.Header.Get(trace.Header)
	qDump := getDebug(t, base, qid)
	if len(qDump.Recent) != 1 {
		t.Fatalf("query trace %s not retained", qid)
	}
	qnames := map[string]bool{}
	for _, sp := range qDump.Recent[0].Spans {
		qnames[sp.Name] = true
	}
	if !qnames["plan"] || !qnames["eval"] {
		t.Fatalf("query spans = %v, want plan and eval", qnames)
	}

	// The background pull loop records rounds in its own ring without
	// evicting the request traces above.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if d := getDebug(t, base, ""); len(d.Background) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background pull trace appeared")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// CI artifact: the coordinator's full flight-recorder dump.
	if out := os.Getenv("DEBUG_REQUESTS_OUT"); out != "" {
		data, err := json.MarshalIndent(getDebug(t, base, ""), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote /debug/requests dump to %s", out)
	}
}

// TestTraceBufferZeroDisables checks -trace-buffer 0 turns the whole
// layer off: no response header, /debug/requests answers enabled=false.
func TestTraceBufferZeroDisables(t *testing.T) {
	d := startDaemon(t, append([]string{"-trace-buffer", "0"}, shardArgs...)...)
	base := "http://" + d.addr
	resp, err := http.Post(base+"/ingest", "application/xml", strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(trace.Header); got != "" {
		t.Fatalf("tracing disabled but trace header %q set", got)
	}
	if dump := getDebug(t, base, ""); dump.Enabled {
		t.Fatal("/debug/requests enabled with -trace-buffer 0")
	}
}

// TestLogFlagValidation checks the structured-logging flag errors.
func TestLogFlagValidation(t *testing.T) {
	for _, tc := range []struct{ flag, val, want string }{
		{"-log-format", "xml", "log-format"},
		{"-log-level", "loud", "log-level"},
	} {
		err := run(context.Background(), []string{tc.flag, tc.val}, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("run(%s=%s) = %v, want error mentioning %q", tc.flag, tc.val, err, tc.want)
		}
	}
}
