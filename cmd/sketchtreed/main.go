// Command sketchtreed serves a SketchTree synopsis over HTTP: trees
// stream in via POST /ingest, counts stream out via POST /query, and
// /healthz, /stats and /metrics expose liveness and observability (see
// internal/server for the API).
//
// Positional arguments are XML files preloaded into the synopsis before
// the server starts accepting traffic (with -forest each file is a
// rooted forest document).
//
// With -snapshot-every N queries are served snapshot-isolated: a frozen
// copy of the synopsis is refreshed every N updates (and at least every
// -snapshot-age) and all counts are answered from it lock-free, so
// queries never wait behind an in-flight ingest. Answers then trail the
// live stream by at most N trees.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests are answered
// (bounded by -drain-timeout), new connections are refused, and
// /healthz flips to 503 so load balancers stop routing here.
//
// Cluster mode (-role): N ingest shards (-role shard, ordinary daemons
// with top-k off) each own a slice of the stream; a coordinator
// (-role coordinator -shards url1,url2,...) routes POST /ingest by
// document hash, pulls every shard's synopsis each -pull-every over
// GET /synopsis, merges them (bit-deterministically — AMS synopses are
// linear), and answers POST /query from the merged snapshot. A down
// shard degrades to serving its last pulled synopsis; GET /cluster
// reports per-shard freshness and reachability.
//
//	sketchtreed -addr :8080 -forest -snapshot-every 500 data.xml
//	curl -d '{"kind":"ordered","pattern":"article/author"}' localhost:8080/query
//
//	sketchtreed -role shard -topk 0 -addr :8081 &
//	sketchtreed -role shard -topk 0 -addr :8082 &
//	sketchtreed -role coordinator -topk 0 -addr :8080 \
//	    -shards http://localhost:8081,http://localhost:8082 -pull-every 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sketchtree"
	"sketchtree/internal/cluster"
	"sketchtree/internal/obs"
	"sketchtree/internal/obs/trace"
	"sketchtree/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchtreed: %v\n", err)
		os.Exit(1)
	}
}

// readyHook, when set by tests, runs with the bound address once the
// listener is accepting and any preload has finished.
var readyHook func(addr string)

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sketchtreed", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		k         = fs.Int("k", 4, "maximum pattern size in edges")
		s1        = fs.Int("s1", 25, "sketch instances averaged (accuracy)")
		s2        = fs.Int("s2", 7, "sketch rows medianed (confidence)")
		p         = fs.Int("p", 229, "number of virtual streams (prime)")
		topk      = fs.Int("topk", 50, "frequent patterns tracked per virtual stream (0 = off)")
		seed      = fs.Uint64("seed", 1, "random seed")
		indep     = fs.Int("independence", 4, "xi independence (>= 6 enables product expressions)")
		planCache = fs.Int("plan-cache", 0, "query-plan cache capacity (0 = default, negative = off)")
		forest    = fs.Bool("forest", false, "treat each preload file as a rooted forest document")
		snapEvery = fs.Int("snapshot-every", 0, "serve queries from a frozen snapshot refreshed every N updates (0 = locked serving)")
		snapAge   = fs.Duration("snapshot-age", 0, "also refresh the snapshot at this period while updates arrive (0 = update-driven only)")
		winSlices = fs.Int("window-slices", 0, "sliding-window ring size in slices (0 = landmark counting)")
		winEvery  = fs.Int("window-every", 0, "advance the window after this many trees per slice (0 = clock cadence only)")
		winAge    = fs.Duration("window-age", 0, "advance the window after this duration per slice (0 = count cadence only)")
		timeout   = fs.Duration("timeout", 0, "per-request budget (0 = default 5s, negative = off)")
		maxConc   = fs.Int("max-concurrent", 0, "in-flight request cap (0 = default 64)")
		drain     = fs.Duration("drain-timeout", 0, "graceful shutdown bound (0 = default 10s, negative = unbounded)")
		maxIngest = fs.Int64("max-ingest-body", 0, "per-request /ingest body cap in bytes (0 = default 64 MiB, negative = unbounded)")
		role      = fs.String("role", "standalone", "standalone, shard (mergeable single daemon) or coordinator (routes/merges over -shards)")
		shardList = fs.String("shards", "", "comma-separated shard base URLs, scheme optional (coordinator role)")
		pullEvery = fs.Duration("pull-every", time.Second, "coordinator synopsis pull period")
		pullTO    = fs.Duration("pull-timeout", 0, "per-shard pull budget (0 = default 5s)")
		traceBuf  = fs.Int("trace-buffer", 256, "completed traces retained per flight-recorder ring on GET /debug/requests (0 = tracing off)")
		slowQuery = fs.Duration("slow-query", 500*time.Millisecond, "requests at least this slow are always retained in the slow-query log (0 = retain all, negative = off)")
		logFormat = fs.String("log-format", "text", "structured log format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	rec := trace.New(*role, *traceBuf, *slowQuery)

	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = *k
	cfg.S1, cfg.S2 = *s1, *s2
	cfg.VirtualStreams = *p
	cfg.TopK = *topk
	cfg.Seed = *seed
	cfg.Independence = *indep
	cfg.PlanCacheSize = *planCache

	switch *role {
	case "standalone":
	case "shard", "coordinator":
		// Cluster merges require mergeable synopses: top-k deletion
		// interleaved into shard counters has no well-defined union.
		if *topk != 0 {
			return fmt.Errorf("-role %s requires -topk 0 (top-k synopses cannot be merged)", *role)
		}
	default:
		return fmt.Errorf("unknown -role %q (standalone, shard or coordinator)", *role)
	}
	var winPolicy *sketchtree.WindowPolicy
	if *winSlices > 0 {
		if *winEvery <= 0 && *winAge <= 0 {
			return fmt.Errorf("-window-slices requires an advance cadence: -window-every and/or -window-age")
		}
		if *topk != 0 {
			return fmt.Errorf("-window-slices requires -topk 0 (top-k synopses cannot be merged, so slices cannot form a window)")
		}
		if *snapEvery > 0 {
			return fmt.Errorf("-window-slices and -snapshot-every are mutually exclusive (the window publishes its own merged snapshot)")
		}
		winPolicy = &sketchtree.WindowPolicy{
			Slices:     *winSlices,
			SliceTrees: *winEvery,
			SliceDur:   *winAge,
		}
	} else if *winEvery > 0 || *winAge > 0 {
		return fmt.Errorf("-window-every/-window-age need -window-slices to enable the sliding window")
	}
	if *role == "coordinator" {
		return runCoordinator(ctx, cfg, coordinatorFlags{
			addr:      *addr,
			shards:    strings.Split(*shardList, ","),
			pullEvery: *pullEvery,
			pullTO:    *pullTO,
			opts: server.Options{
				Timeout:       *timeout,
				MaxConcurrent: *maxConc,
				DrainTimeout:  *drain,
				MaxIngestBody: *maxIngest,
				Trace:         rec,
				Logger:        logger,
				Role:          *role,
				Window:        winPolicy,
			},
			preloads: fs.Args(),
		}, stdout)
	}

	safe, err := sketchtree.NewSafe(cfg)
	if err != nil {
		return err
	}
	if winPolicy != nil {
		// Before the preload loop: the window must be enabled while the
		// synopsis is empty, and preloaded documents should age out like
		// any other slice contents.
		if err := safe.EnableWindow(*winPolicy); err != nil {
			return err
		}
		defer safe.DisableWindow()
		fmt.Fprintf(stdout, "sliding window: %d slices", winPolicy.Slices)
		if winPolicy.SliceTrees > 0 {
			fmt.Fprintf(stdout, ", advance every %d trees", winPolicy.SliceTrees)
		}
		if winPolicy.SliceDur > 0 {
			fmt.Fprintf(stdout, ", advance every %v", winPolicy.SliceDur)
		}
		fmt.Fprintln(stdout)
	}
	for _, name := range fs.Args() {
		if err := preload(safe, name, *forest); err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
	}
	if n := safe.TreesProcessed(); n > 0 {
		fmt.Fprintf(stdout, "preloaded %d trees\n", n)
	}
	if *snapEvery > 0 {
		pol := sketchtree.SnapshotPolicy{EveryTrees: *snapEvery, MaxAge: *snapAge}
		if err := safe.EnableSnapshots(pol); err != nil {
			return err
		}
		defer safe.DisableSnapshots()
		fmt.Fprintf(stdout, "snapshot serving: refresh every %d updates", *snapEvery)
		if *snapAge > 0 {
			fmt.Fprintf(stdout, ", max age %v", *snapAge)
		}
		fmt.Fprintln(stdout)
	}

	srv := server.New(safe, server.Options{
		Timeout:       *timeout,
		MaxConcurrent: *maxConc,
		DrainTimeout:  *drain,
		MaxIngestBody: *maxIngest,
		Trace:         rec,
		Logger:        logger,
		Role:          *role,
		Window:        winPolicy,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on http://%s (POST /query /ingest, GET /healthz /stats /metrics)\n",
		ln.Addr())
	if readyHook != nil {
		readyHook(ln.Addr().String())
	}
	start := time.Now()
	if err := srv.Run(ctx, ln); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "drained after %v: %d trees, %d queries served\n",
		time.Since(start).Round(time.Millisecond),
		safe.TreesProcessed(), safe.Stats().Queries.Count)
	return nil
}

// coordinatorFlags carries the coordinator role's configuration from
// the flag set into runCoordinator.
type coordinatorFlags struct {
	addr      string
	shards    []string
	pullEvery time.Duration
	pullTO    time.Duration
	opts      server.Options
	preloads  []string
}

// runCoordinator boots the cluster coordinator: a pull/merge loop over
// the configured shards plus the routed /ingest, merged /query and
// /cluster status API. cfg builds the empty fallback engine answering
// queries before the first successful pull; it should match the
// shards' configuration.
func runCoordinator(ctx context.Context, cfg sketchtree.Config, cf coordinatorFlags, stdout io.Writer) error {
	if len(cf.preloads) > 0 {
		return fmt.Errorf("coordinator role takes no preload files (ingest through POST /ingest so documents route to their shards)")
	}
	var shards []string
	for _, s := range cf.shards {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, strings.TrimSuffix(s, "/"))
		}
	}
	if len(shards) == 0 {
		return fmt.Errorf("coordinator role requires -shards url1,url2,...")
	}
	fallback, err := sketchtree.New(cfg)
	if err != nil {
		return err
	}
	met := obs.NewClusterMetrics(len(shards))
	puller, err := cluster.New(cluster.Config{
		Shards:      shards,
		PullEvery:   cf.pullEvery,
		PullTimeout: cf.pullTO,
		Metrics:     met,
		Trace:       cf.opts.Trace,
		Logger:      cf.opts.Logger,
	})
	if err != nil {
		return err
	}
	co := server.NewCoordinator(puller, fallback, met, cf.opts)
	ln, err := net.Listen("tcp", cf.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "coordinator for %d shards, pulling every %v; listening on http://%s (POST /query /ingest, GET /cluster /healthz /stats /metrics)\n",
		len(shards), cf.pullEvery, ln.Addr())
	if readyHook != nil {
		readyHook(ln.Addr().String())
	}
	start := time.Now()
	if err := co.Run(ctx, ln); err != nil {
		return err
	}
	trees := int64(0)
	if sv := puller.Serving(); sv != nil {
		trees = sv.Trees
	}
	fmt.Fprintf(stdout, "drained after %v: %d merged trees\n",
		time.Since(start).Round(time.Millisecond), trees)
	return nil
}

// buildLogger constructs the daemon's structured logger on stderr
// (stdout keeps the human-readable lifecycle lines).
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text or json)", format)
	}
}

func preload(safe *sketchtree.Safe, name string, forest bool) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if forest {
		return safe.AddXMLForest(f)
	}
	return safe.AddXML(f)
}
