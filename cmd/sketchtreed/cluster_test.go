package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// clusterStatus mirrors the GET /cluster response shape (see
// internal/server).
type clusterStatus struct {
	Role   string `json:"role"`
	Status string `json:"status"`
	Shards []struct {
		URL                 string `json:"url"`
		Reachable           bool   `json:"reachable"`
		Stale               bool   `json:"stale"`
		Trees               int64  `json:"trees"`
		ConsecutiveFailures int    `json:"consecutive_failures"`
	} `json:"shards"`
	Merged *struct {
		Trees  int64 `json:"trees"`
		Rounds int64 `json:"rounds"`
	} `json:"merged"`
	Fallback bool `json:"fallback"`
}

// daemon is one in-process sketchtreed started through run(), exactly
// as the CLI would.
type daemon struct {
	addr    string
	cancel  context.CancelFunc
	errc    chan error
	out     *bytes.Buffer
	stopped bool
}

// startDaemon boots sketchtreed with args (plus a dynamic port) and
// waits for the ready hook. Daemons must be started one at a time: the
// ready hook is a package global.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	ready := make(chan string, 1)
	readyHook = func(addr string) { ready <- addr }
	defer func() { readyHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	d := &daemon{cancel: cancel, errc: make(chan error, 1), out: &bytes.Buffer{}}
	go func() { d.errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), d.out) }()
	select {
	case d.addr = <-ready:
	case err := <-d.errc:
		t.Fatalf("daemon exited before ready: %v\n%s", err, d.out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	t.Cleanup(func() { d.stop(t) })
	return d
}

// stop drains the daemon and checks it exited cleanly. Idempotent.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if d.stopped {
		return
	}
	d.stopped = true
	d.cancel()
	select {
	case err := <-d.errc:
		if err != nil {
			t.Errorf("daemon exit: %v\n%s", err, d.out.String())
		}
	case <-time.After(15 * time.Second):
		t.Error("daemon did not drain")
	}
}

func getCluster(t *testing.T, base string) clusterStatus {
	t.Helper()
	resp, err := http.Get(base + "/cluster")
	if err != nil {
		t.Fatalf("GET /cluster: %v", err)
	}
	defer resp.Body.Close()
	var cs clusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatalf("decoding /cluster: %v", err)
	}
	return cs
}

// shardArgs is the engine shape shared by every daemon in the test
// cluster and the single-node reference.
var shardArgs = []string{"-k", "3", "-s1", "25", "-s2", "5", "-p", "23", "-topk", "0", "-timeout", "30s"}

// clusterCorpus builds n unique single-tree documents whose labels
// vary, so FNV routing spreads them across shards and queries see a
// mix of matching and non-matching trees.
func clusterCorpus(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf("<a><b/><x%d/></a>", i)
	}
	return docs
}

// TestClusterThreeShards is the cluster-mode end-to-end test: three
// shard daemons plus a coordinator, all started through run() as the
// CLI would. It checks routed ingest spreads the corpus, the merged
// synopsis answers bit-identically to a single-node engine fed the
// same corpus, and killing a shard degrades to stale-slice serving
// with no 5xx on /query.
func TestClusterThreeShards(t *testing.T) {
	shards := make([]*daemon, 3)
	urls := make([]string, 3)
	for i := range shards {
		shards[i] = startDaemon(t, shardArgs...)
		urls[i] = "http://" + shards[i].addr
	}
	co := startDaemon(t, append([]string{
		"-role", "coordinator",
		"-shards", strings.Join(urls, ","),
		"-pull-every", "50ms",
	}, shardArgs...)...)
	base := "http://" + co.addr

	// Single-node reference over the same corpus: started with the same
	// engine flags, fed every document directly.
	ref := startDaemon(t, shardArgs...)
	refBase := "http://" + ref.addr

	docs := clusterCorpus(120)
	for _, d := range docs {
		for _, target := range []string{base, refBase} {
			resp, err := http.Post(target+"/ingest", "application/xml", strings.NewReader(d))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest to %s: status %d", target, resp.StatusCode)
			}
		}
	}

	// The pull loop converges on the full corpus.
	deadline := time.Now().Add(15 * time.Second)
	var cs clusterStatus
	for {
		cs = getCluster(t, base)
		if cs.Merged != nil && cs.Merged.Trees == int64(len(docs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged state never converged: %+v", cs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	var spread int
	var sum int64
	for _, sh := range cs.Shards {
		if sh.Trees > 0 {
			spread++
		}
		sum += sh.Trees
	}
	if spread < 2 || sum != int64(len(docs)) {
		t.Fatalf("corpus spread %d shards / %d trees, want >=2 shards / %d trees: %+v",
			spread, sum, len(docs), cs.Shards)
	}

	// Merge determinism: coordinator answers must be bit-identical to
	// the single-node reference.
	queries := []string{
		`{"kind":"ordered","pattern":"(a (b))"}`,
		`{"kind":"unordered","pattern":"(a (x3) (b))"}`,
		`{"kind":"ordered","pattern":"(a (b) (x7))","with_error":true}`,
	}
	estimates := make([]float64, len(queries))
	for i, q := range queries {
		resp, body := postJSON(t, base+"/query", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator query %s: status %d: %s", q, resp.StatusCode, body)
		}
		var got queryResult
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		resp, body = postJSON(t, refBase+"/query", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference query %s: status %d: %s", q, resp.StatusCode, body)
		}
		var want queryResult
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate {
			t.Errorf("query %s: merged %v, single-node %v (must be bit-identical)",
				q, got.Estimate, want.Estimate)
		}
		if got.StdErr != nil && want.StdErr != nil && *got.StdErr != *want.StdErr {
			t.Errorf("query %s: merged stderr %v, single-node %v", q, *got.StdErr, *want.StdErr)
		}
		estimates[i] = got.Estimate
	}

	// The coordinator exports per-shard pull counters.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(prom, []byte("sketchtree_cluster_pulls_total")) {
		t.Error("/metrics missing sketchtree_cluster_pulls_total")
	}

	// Kill shard 2 and wait for the coordinator to notice.
	shards[2].stop(t)
	deadline = time.Now().Add(15 * time.Second)
	for {
		cs = getCluster(t, base)
		if len(cs.Shards) == 3 && !cs.Shards[2].Reachable && cs.Shards[2].Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never marked dead shard: %+v", cs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if cs.Merged == nil || cs.Merged.Trees != int64(len(docs)) {
		t.Fatalf("merged state shrank after shard loss: %+v", cs.Merged)
	}

	// Stale-slice serving: queries stay 200 and bit-identical.
	for i, q := range queries {
		resp, body := postJSON(t, base+"/query", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s after shard loss: status %d: %s", q, resp.StatusCode, body)
		}
		var got queryResult
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Estimate != estimates[i] {
			t.Errorf("query %s drifted across shard loss: %v -> %v", q, estimates[i], got.Estimate)
		}
	}

	// CI artifact: persist the final cluster status when asked to.
	if out := os.Getenv("CLUSTER_STATUS_OUT"); out != "" {
		data, err := json.MarshalIndent(getCluster(t, base), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote cluster status to %s", out)
	}

	// Graceful coordinator drain (stop is also the test cleanup; doing
	// it explicitly checks the exit path while shards are still up).
	co.stop(t)
	if !strings.Contains(co.out.String(), "merged trees") {
		t.Errorf("coordinator drain output missing merged-trees line:\n%s", co.out.String())
	}
}

// TestClusterRoutedIngestHeader checks the coordinator names the
// owning shard on routed ingests.
func TestClusterRoutedIngestHeader(t *testing.T) {
	sh := startDaemon(t, shardArgs...)
	co := startDaemon(t, append([]string{
		"-role", "coordinator",
		"-shards", "http://" + sh.addr,
		"-pull-every", "50ms",
	}, shardArgs...)...)
	resp, err := http.Post("http://"+co.addr+"/ingest", "application/xml",
		strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed ingest: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sketchtree-Shard"); got != "0" {
		t.Errorf("X-Sketchtree-Shard = %q, want 0", got)
	}
	// Coordinator first, then the shard: the coordinator must release
	// its pooled shard connections so the shard drains promptly.
	start := time.Now()
	co.stop(t)
	sh.stop(t)
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("cluster drain took %v; coordinator left the shard waiting on quiet conns", d)
	}
}

// TestClusterFlagErrors checks the cluster-mode flag validation paths.
func TestClusterFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"coordinator without shards", []string{"-role", "coordinator", "-topk", "0"}, "-shards"},
		{"shard with topk", []string{"-role", "shard", "-topk", "10"}, "topk 0"},
		{"coordinator with topk", []string{"-role", "coordinator", "-topk", "10", "-shards", "http://x"}, "topk 0"},
		{"unknown role", []string{"-role", "replica"}, "unknown -role"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
	t.Run("coordinator with preload", func(t *testing.T) {
		f, err := os.CreateTemp(t.TempDir(), "doc*.xml")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString("<a><b/></a>")
		f.Close()
		err = run(context.Background(), []string{
			"-role", "coordinator", "-topk", "0", "-shards", "http://x", f.Name(),
		}, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "preload") {
			t.Fatalf("coordinator with preload = %v, want preload error", err)
		}
	})
}
