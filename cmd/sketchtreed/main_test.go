package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// queryResult mirrors the /query response shape (see internal/server).
type queryResult struct {
	Kind          string      `json:"kind"`
	Estimate      float64     `json:"estimate"`
	StdErr        *float64    `json:"std_err"`
	CI95          *[2]float64 `json:"ci95"`
	Snapshot      bool        `json:"snapshot"`
	SnapshotTrees int64       `json:"snapshot_trees"`
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// forestXML builds a rooted forest document of n small trees with a few
// distinct shapes.
func forestXML(n int) string {
	var b strings.Builder
	b.WriteString("<forest>")
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			b.WriteString("<a><b/></a>")
		case 1:
			b.WriteString("<a><b/><c/></a>")
		default:
			b.WriteString("<a><c/></a>")
		}
	}
	b.WriteString("</forest>")
	return b.String()
}

// TestServeIngestAndQueryConcurrently boots sketchtreed with snapshot
// serving on, streams a forest in over HTTP while concurrent clients
// query, checks cached and uncached answers are bit-identical, and
// finally drains gracefully with a request still in flight.
func TestServeIngestAndQueryConcurrently(t *testing.T) {
	ready := make(chan string, 1)
	readyHook = func(addr string) { ready <- addr }
	defer func() { readyHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-k", "3", "-s1", "25", "-s2", "5", "-p", "23", "-topk", "0",
			"-snapshot-every", "25", "-snapshot-age", "20ms",
			"-timeout", "30s",
		}, &out)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Ingest a forest while k concurrent clients query: every query must
	// succeed, and none may block behind the in-flight ingestion.
	const clients = 4
	const queriesEach = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, base+"/ingest?forest=1", forestXML(600))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("forest ingest: status %d: %s", resp.StatusCode, body)
		}
	}()
	queryBodies := []string{
		`{"kind":"ordered","pattern":"a/b"}`,
		`{"kind":"unordered","pattern":"(a (b) (c))"}`,
		`{"kind":"ordered","pattern":"a/c","with_error":true}`,
		`{"kind":"set","patterns":["a/b","a/c"]}`,
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				start := time.Now()
				resp, body := postJSON(t, base+"/query", queryBodies[(c+i)%len(queryBodies)])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d query %d: status %d: %s", c, i, resp.StatusCode, body)
					return
				}
				var qr queryResult
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					return
				}
				if !qr.Snapshot {
					t.Errorf("client %d query %d: not snapshot-served: %s", c, i, body)
					return
				}
				// Lock-free serving: even with ingestion in flight a query
				// is pure in-memory sketch arithmetic.
				if d := time.Since(start); d > 5*time.Second {
					t.Errorf("client %d query %d took %v; snapshot serving should never block", c, i, d)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: repeated queries must be bit-identical, whether answered
	// from a cold plan (first issue of this pattern) or the plan cache.
	fresh := `{"kind":"unordered","pattern":"(a (c) (b))"}`
	_, first := postJSON(t, base+"/query", fresh)
	var a, b queryResult
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, again := postJSON(t, base+"/query", fresh)
		if err := json.Unmarshal(again, &b); err != nil {
			t.Fatal(err)
		}
		if a.Estimate != b.Estimate {
			t.Fatalf("cached answer %v != uncached %v", b.Estimate, a.Estimate)
		}
	}

	// Health and metrics report the serving state.
	resp, _ := postJSON(t, base+"/query", `{"kind":"ordered","pattern":"a/b"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final query: %d", resp.StatusCode)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), `"snapshot":true`) {
		t.Fatalf("healthz: %d %s", hresp.StatusCode, hbody)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "sketchtree_plan_cache_hits_total") {
		t.Error("metrics missing plan cache counters")
	}

	// Graceful drain: cancel with an ingest still in flight; the request
	// must be answered, then the listener must be closed.
	pr, pw := io.Pipe()
	defer pw.Close()
	slowDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(base+"/ingest?forest=1", "application/xml", pr)
		if err != nil {
			t.Logf("slow ingest: %v", err)
			slowDone <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp
	}()
	if _, err := pw.Write([]byte("<forest><a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	// The request is provably in flight (not an idle connection Shutdown
	// may close) once the handler has parsed the chunk's complete tree.
	deadline := time.Now().Add(10 * time.Second)
	for {
		hresp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hbody, _ := io.ReadAll(hresp.Body)
		hresp.Body.Close()
		if strings.Contains(string(hbody), `"trees":601`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight ingest never parsed its first tree: %s", hbody)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel() // SIGTERM equivalent: begin graceful drain
	time.Sleep(100 * time.Millisecond)
	if _, err := pw.Write([]byte("<a><c/></a></forest>")); err != nil {
		t.Fatalf("writing body tail during drain: %v", err)
	}
	pw.Close()
	if resp := <-slowDone; resp == nil || resp.StatusCode != http.StatusOK {
		code := -1
		if resp != nil {
			code = resp.StatusCode
		}
		t.Fatalf("in-flight ingest during drain: status %d, want 200", code)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("missing drain summary in output:\n%s", out.String())
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Error("listener still accepting after drain")
	}
}

// TestRunFlagErrors checks bad invocations fail fast.
func TestRunFlagErrors(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-k", "0"}, &out)
	if err == nil {
		t.Error("k=0 should fail")
	}
	// A pre-canceled context makes a successful start drain immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = run(ctx, []string{"-addr", "127.0.0.1:0", "-snapshot-every", "-1"}, &out)
	if err != nil {
		t.Errorf("negative snapshot-every should be treated as off, got %v", err)
	}
}

// TestPreload checks positional files load before serving.
func TestPreload(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/forest.xml"
	if err := os.WriteFile(path, []byte(forestXML(9)), 0o644); err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	readyHook = func(addr string) { ready <- addr }
	defer func() { readyHook = nil }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-forest", "-topk", "0", path}, &out)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"trees":9`) {
		t.Fatalf("healthz after preload: %s", body)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
}
