package main

import (
	"testing"

	"sketchtree"
)

func TestExtendedDetection(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"a/b/c", false},
		{"a//b", true},
		{"a/*/c", true},
		{"a/b//c", true},
		{"single", false},
	}
	for _, c := range cases {
		q, err := sketchtree.ParsePath(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if got := extended(q); got != c.want {
			t.Errorf("extended(%s) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestPlainChain(t *testing.T) {
	q, err := sketchtree.ParsePath("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	n := plainChain(q)
	if n.String() != "(a (b (c)))" {
		t.Errorf("plainChain = %s", n)
	}
}

func TestQueryListFlag(t *testing.T) {
	var q queryList
	if err := q.Set("a/b"); err != nil {
		t.Fatal(err)
	}
	if err := q.Set("(x (y))"); err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || q.String() != "a/b; (x (y))" {
		t.Errorf("queryList = %q", q.String())
	}
}
