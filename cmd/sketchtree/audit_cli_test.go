package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestRunAuditTable(t *testing.T) {
	doc := writeTemp(t, "forest.xml",
		"<r>"+strings.Repeat("<a><b/><c/></a>", 30)+strings.Repeat("<a><b/></a>", 10)+"</r>")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
		"-audit", "32", "-q", "a/b",
		doc,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"audit:", "patterns tracked (capacity 32)",
		"rel. error:", "within ε=0.10",
		"pattern value", "exact", "estimate", "rel.err",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("audit table missing %q:\n%s", want, s)
		}
	}
	// Sketch parameters are generous and the stream tiny, so the audited
	// estimates are exact: every pattern within ε.
	if !strings.Contains(s, "within ε=0.10: 100.0%") {
		t.Errorf("expected full ε coverage on a trivial stream:\n%s", s)
	}

	// The ε threshold in the table follows -audit-eps.
	out.Reset()
	err = run(context.Background(), []string{
		"-forest", "-k", "2", "-p", "23", "-topk", "0",
		"-audit", "8", "-audit-eps", "0.25",
		doc,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "within ε=0.25") {
		t.Errorf("-audit-eps not honored:\n%s", out.String())
	}
}

func TestRunAuditRequiresSingleWorker(t *testing.T) {
	doc := writeTemp(t, "forest.xml", "<r><a><b/></a></r>")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-forest", "-workers", "2", "-topk", "0", "-audit", "16", doc,
	}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "-workers 1") {
		t.Errorf("audit+workers must fail with guidance, got %v", err)
	}
}

// A context canceled before ingestion starts still produces a clean
// summary run, not an error.
func TestRunInterruptedBeforeIngestion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doc := writeTemp(t, "forest.xml", "<r><a><b/></a></r>")
	var out bytes.Buffer
	if err := run(ctx, []string{"-forest", "-q", "a/b", doc}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("interrupted run must exit cleanly, got %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "interrupted: stopping ingestion") {
		t.Errorf("interrupt notice missing:\n%s", s)
	}
	if !strings.Contains(s, "processed 0 trees") {
		t.Errorf("summary of the (empty) synopsis missing:\n%s", s)
	}
	// The interrupt path prints the stage summary even without -metrics.
	if !strings.Contains(s, "queries:") {
		t.Errorf("stats summary missing on interrupt:\n%s", s)
	}
}

// cancelAfterReader yields one byte per Read and cancels the context
// after n reads — a deterministic stand-in for a SIGINT arriving
// mid-stream.
type cancelAfterReader struct {
	r      io.Reader
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		c.cancel()
	}
	c.n--
	if len(p) > 1 {
		p = p[:1]
	}
	return c.r.Read(p)
}

// A signal mid-stream stops at a tree boundary: the trees decoded so
// far are kept, the run summarizes and exits without error.
func TestRunInterruptMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	forest := "<r>" + strings.Repeat("<a><b/></a>", 200) + "</r>"
	// Enough bytes for the opening tag plus a handful of trees.
	stdin := &cancelAfterReader{r: strings.NewReader(forest), n: 120, cancel: cancel}
	var out bytes.Buffer
	err := run(ctx, []string{"-forest", "-k", "2", "-p", "7", "-q", "a/b"}, stdin, &out)
	if err != nil {
		t.Fatalf("mid-stream interrupt must exit cleanly, got %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "interrupted: stopping ingestion") {
		t.Errorf("interrupt notice missing:\n%s", s)
	}
	if strings.Contains(s, "processed 0 trees") || strings.Contains(s, "processed 200 trees") {
		t.Errorf("expected a partial synopsis (some but not all trees):\n%s", s)
	}
	// The partial synopsis still answers the query.
	if !strings.Contains(s, "≈") {
		t.Errorf("query answer missing after interrupt:\n%s", s)
	}
}
