package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	doc := writeTemp(t, "forest.xml",
		"<r><a><b/><c/></a><a><b/></a><a><c/><b/></a></r>")
	var out bytes.Buffer
	err := run([]string{
		"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
		"-q", "a/b", "-q", "(a (b) (c))", "-q", "u:(a (b) (c))",
		doc,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "processed 3 trees") {
		t.Errorf("tree count missing: %q", s)
	}
	if !strings.Contains(s, "synopsis:") {
		t.Error("memory line missing")
	}
	// Three query answers with the ≈ marker.
	if strings.Count(s, "≈") != 3 {
		t.Errorf("expected 3 answers: %q", s)
	}
}

func TestRunParallelWorkersMatchesSequential(t *testing.T) {
	forest := "<r><a><b/><c/></a><a><b/></a><a><c/><b/></a><x><y/></x></r>"
	doc := writeTemp(t, "forest.xml", forest)
	args := func(extra ...string) []string {
		base := []string{"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
			"-q", "a/b", "-q", "(a (b) (c))"}
		return append(append(base, extra...), doc)
	}
	var seq, par bytes.Buffer
	if err := run(args(), strings.NewReader(""), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-workers", "4"), strings.NewReader(""), &par); err != nil {
		t.Fatal(err)
	}
	// Merging is exact, so the parallel CLI output — counts, memory
	// line, estimates — matches the sequential run byte for byte.
	if seq.String() != par.String() {
		t.Errorf("parallel output diverged:\nseq: %q\npar: %q", seq.String(), par.String())
	}
	if !strings.Contains(par.String(), "processed 4 trees") {
		t.Errorf("tree count missing: %q", par.String())
	}

	// -workers with top-k tracking is rejected up front.
	var out bytes.Buffer
	err := run([]string{"-forest", "-workers", "2", "-topk", "10", doc},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "-topk 0") {
		t.Errorf("workers+topk must fail with guidance, got %v", err)
	}
	// Bad config surfaces through the ingestor constructor too.
	if err := run([]string{"-workers", "2", "-topk", "0", "-s1", "0", doc},
		strings.NewReader(""), &out); err == nil {
		t.Error("bad config with -workers must fail")
	}
}

func TestRunStdinSingleDoc(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-k", "2", "-p", "7", "-q", "x/y"},
		strings.NewReader("<x><y/></x>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "processed 1 trees") {
		t.Errorf("stdin doc not processed: %q", out.String())
	}
}

func TestRunExtendedQueryNeedsSummary(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-k", "2", "-q", "a//b"},
		strings.NewReader("<a><b/></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "needs -summary") {
		t.Errorf("missing summary error: %q", out.String())
	}
	// With -summary it answers.
	out.Reset()
	err = run([]string{"-k", "2", "-summary", "-q", "a//b"},
		strings.NewReader("<a><b/></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "≈") {
		t.Errorf("extended query unanswered: %q", out.String())
	}
}

func TestRunBadQueriesReportedInline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-k", "2", "-q", "(bad", "-q", "a///b"},
		strings.NewReader("<a><b/></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "error:") != 2 {
		t.Errorf("bad queries must be reported inline: %q", out.String())
	}
}

func TestRunInputErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"/nonexistent.xml"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-s1", "0"}, strings.NewReader("<a/>"), &out); err == nil {
		t.Error("bad config must fail")
	}
	if err := run([]string{"-zzz"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad flag must fail")
	}
	if err := run(nil, strings.NewReader("not xml"), &out); err == nil {
		t.Error("bad stdin must fail")
	}
}
