package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	doc := writeTemp(t, "forest.xml",
		"<r><a><b/><c/></a><a><b/></a><a><c/><b/></a></r>")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
		"-q", "a/b", "-q", "(a (b) (c))", "-q", "u:(a (b) (c))",
		doc,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "processed 3 trees") {
		t.Errorf("tree count missing: %q", s)
	}
	if !strings.Contains(s, "synopsis:") {
		t.Error("memory line missing")
	}
	// Three query answers with the ≈ marker.
	if strings.Count(s, "≈") != 3 {
		t.Errorf("expected 3 answers: %q", s)
	}
}

func TestRunParallelWorkersMatchesSequential(t *testing.T) {
	forest := "<r><a><b/><c/></a><a><b/></a><a><c/><b/></a><x><y/></x></r>"
	doc := writeTemp(t, "forest.xml", forest)
	args := func(extra ...string) []string {
		base := []string{"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
			"-q", "a/b", "-q", "(a (b) (c))"}
		return append(append(base, extra...), doc)
	}
	var seq, par bytes.Buffer
	if err := run(context.Background(), args(), strings.NewReader(""), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args("-workers", "4"), strings.NewReader(""), &par); err != nil {
		t.Fatal(err)
	}
	// Merging is exact, so the parallel CLI output — counts, memory
	// line, estimates — matches the sequential run byte for byte.
	if seq.String() != par.String() {
		t.Errorf("parallel output diverged:\nseq: %q\npar: %q", seq.String(), par.String())
	}
	if !strings.Contains(par.String(), "processed 4 trees") {
		t.Errorf("tree count missing: %q", par.String())
	}

	// -workers with top-k tracking is rejected up front.
	var out bytes.Buffer
	err := run(context.Background(), []string{"-forest", "-workers", "2", "-topk", "10", doc},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "-topk 0") {
		t.Errorf("workers+topk must fail with guidance, got %v", err)
	}
	// Bad config surfaces through the ingestor constructor too.
	if err := run(context.Background(), []string{"-workers", "2", "-topk", "0", "-s1", "0", doc},
		strings.NewReader(""), &out); err == nil {
		t.Error("bad config with -workers must fail")
	}
}

func TestRunStdinSingleDoc(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-k", "2", "-p", "7", "-q", "x/y"},
		strings.NewReader("<x><y/></x>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "processed 1 trees") {
		t.Errorf("stdin doc not processed: %q", out.String())
	}
}

func TestRunExtendedQueryNeedsSummary(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-k", "2", "-q", "a//b"},
		strings.NewReader("<a><b/></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "needs -summary") {
		t.Errorf("missing summary error: %q", out.String())
	}
	// With -summary it answers.
	out.Reset()
	err = run(context.Background(), []string{"-k", "2", "-summary", "-q", "a//b"},
		strings.NewReader("<a><b/></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "≈") {
		t.Errorf("extended query unanswered: %q", out.String())
	}
}

func TestRunBadQueriesReportedInline(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-k", "2", "-q", "(bad", "-q", "a///b"},
		strings.NewReader("<a><b/></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "error:") != 2 {
		t.Errorf("bad queries must be reported inline: %q", out.String())
	}
}

// End-to-end observability: -metrics serves the JSON snapshot, the
// Prometheus exposition, and pprof while the run is live, with
// non-zero stage timings and a populated query-latency histogram.
func TestRunMetricsEndpoint(t *testing.T) {
	doc := writeTemp(t, "forest.xml",
		"<r><a><b/><c/></a><a><b/></a><a><c/><b/></a></r>")
	var out bytes.Buffer

	var jsonBody, promBody, pprofBody []byte
	metricsHook = func() {
		addr := metricsAddr(t, out.String())
		jsonBody = httpGet(t, "http://"+addr+"/stats")
		promBody = httpGet(t, "http://"+addr+"/metrics")
		pprofBody = httpGet(t, "http://"+addr+"/debug/pprof/cmdline")
	}
	defer func() { metricsHook = nil }()

	err := run(context.Background(), []string{
		"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
		"-metrics", "127.0.0.1:0", "-audit", "16",
		"-q", "a/b", "-q", "(a (b) (c))",
		doc,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}

	var snap struct {
		TimersEnabled bool  `json:"timers_enabled"`
		Trees         int64 `json:"trees"`
		Patterns      int64 `json:"patterns"`
		Stages        map[string]struct {
			Count int64 `json:"count"`
			Nanos int64 `json:"nanos"`
		} `json:"stages"`
		Queries struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"latency_buckets"`
		} `json:"queries"`
		Health *struct {
			VirtualStreams int   `json:"virtual_streams"`
			TotalItems     int64 `json:"total_items"`
		} `json:"health"`
		Audit *struct {
			Capacity int   `json:"capacity"`
			Observed int64 `json:"observed"`
		} `json:"audit"`
	}
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		t.Fatalf("/stats is not valid JSON: %v\n%s", err, jsonBody)
	}
	if !snap.TimersEnabled {
		t.Error("-metrics must enable stage timers")
	}
	if snap.Trees != 3 || snap.Patterns <= 0 {
		t.Errorf("snapshot counters: trees %d patterns %d", snap.Trees, snap.Patterns)
	}
	for _, stage := range []string{"parse", "enum", "fingerprint", "sketch"} {
		if s := snap.Stages[stage]; s.Count <= 0 || s.Nanos <= 0 {
			t.Errorf("stage %s has no timings: %+v", stage, s)
		}
	}
	if snap.Queries.Count != 2 {
		t.Errorf("queries = %d, want 2", snap.Queries.Count)
	}
	if n := len(snap.Queries.Buckets); n == 0 || snap.Queries.Buckets[n-1].Count != 2 {
		t.Errorf("latency histogram not populated: %+v", snap.Queries.Buckets)
	}
	if snap.Health == nil || snap.Health.VirtualStreams != 23 || snap.Health.TotalItems != snap.Patterns {
		t.Errorf("/stats health section: %+v (patterns %d)", snap.Health, snap.Patterns)
	}
	if snap.Audit == nil || snap.Audit.Capacity != 16 || snap.Audit.Observed != snap.Patterns {
		t.Errorf("/stats audit section: %+v (patterns %d)", snap.Audit, snap.Patterns)
	}

	for _, want := range []string{
		"sketchtree_trees_total 3",
		"sketchtree_queries_total 2",
		`sketchtree_stage_ops_total{stage="sketch"}`,
		"# TYPE sketchtree_query_latency_seconds histogram",
		`sketchtree_vstream_items{stream="0"}`,
		"sketchtree_vstream_share_max",
		"sketchtree_audit_patterns",
		"# TYPE sketchtree_audit_rel_error summary",
	} {
		if !strings.Contains(string(promBody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, promBody)
		}
	}
	if len(pprofBody) == 0 {
		t.Error("/debug/pprof/cmdline returned nothing")
	}

	// The final summary printed by the CLI itself.
	if !strings.Contains(out.String(), "stages (count, total, per-op):") {
		t.Errorf("stage summary missing: %q", out.String())
	}

	// An unusable address fails up front.
	if err := run(context.Background(), []string{"-metrics", "256.0.0.1:bad", doc},
		strings.NewReader(""), &out); err == nil {
		t.Error("bad -metrics address must fail")
	}
}

// The parallel path serves live stats from the shard aggregate.
func TestRunMetricsParallel(t *testing.T) {
	doc := writeTemp(t, "forest.xml",
		"<r><a><b/><c/></a><a><b/></a><a><c/><b/></a><x><y/></x></r>")
	var out bytes.Buffer
	var jsonBody []byte
	metricsHook = func() {
		jsonBody = httpGet(t, "http://"+metricsAddr(t, out.String())+"/stats")
	}
	defer func() { metricsHook = nil }()
	err := run(context.Background(), []string{
		"-forest", "-k", "2", "-p", "23", "-topk", "0", "-s1", "60",
		"-workers", "3", "-metrics", "127.0.0.1:0", "-q", "a/b",
		doc,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Trees  int64 `json:"trees"`
		Stages map[string]struct {
			Count int64 `json:"count"`
			Nanos int64 `json:"nanos"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		t.Fatalf("/stats is not valid JSON: %v\n%s", err, jsonBody)
	}
	if snap.Trees != 4 {
		t.Errorf("parallel snapshot trees = %d, want 4", snap.Trees)
	}
	if s := snap.Stages["merge"]; s.Count != 2 {
		t.Errorf("merge stage = %+v, want 2 merges for 3 shards", s)
	}
}

// metricsAddr extracts the bound address from the CLI banner line.
func metricsAddr(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "metrics: serving http://"); ok {
			return rest[:strings.Index(rest, "/")]
		}
	}
	t.Fatalf("no metrics banner in output: %q", out)
	return ""
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func TestRunInputErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"/nonexistent.xml"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run(context.Background(), []string{"-s1", "0"}, strings.NewReader("<a/>"), &out); err == nil {
		t.Error("bad config must fail")
	}
	if err := run(context.Background(), []string{"-zzz"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad flag must fail")
	}
	if err := run(context.Background(), nil, strings.NewReader("not xml"), &out); err == nil {
		t.Error("bad stdin must fail")
	}
}
