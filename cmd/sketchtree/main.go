// Command sketchtree streams XML trees into a SketchTree synopsis and
// answers count queries.
//
// Input: one or more XML files (or stdin). With -forest each file is a
// rooted forest document (the root tag is stripped and each child
// subtree is one stream element); otherwise each file is a single
// tree.
//
// Queries are passed with repeated -q flags, either as S-expressions
// ("(A (B) (C))") or as linear paths ("A/B//C/*"; '//' and '*' need
// -summary). By default queries are ordered counts; prefix a query
// with "u:" for unordered counting.
//
// With -workers N (N != 1) ingestion is sharded across N parallel
// SketchTrees that are merged cell-wise before querying — bit-identical
// to sequential processing, but requires -topk 0 (merged synopses
// cannot carry top-k tracking).
//
//	sketchtree -forest -k 4 -topk 50 -q 'article/author' -q '(a (b) (c))' data.xml
//	sketchtree -forest -topk 0 -workers 8 -q 'article/author' data.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sketchtree"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchtree: %v\n", err)
		os.Exit(1)
	}
}

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("sketchtree", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 4, "maximum pattern size in edges")
		s1      = fs.Int("s1", 25, "sketch instances averaged (accuracy)")
		s2      = fs.Int("s2", 7, "sketch rows medianed (confidence)")
		p       = fs.Int("p", 229, "number of virtual streams (prime)")
		topk    = fs.Int("topk", 50, "frequent patterns tracked per virtual stream (0 = off)")
		seed    = fs.Uint64("seed", 1, "random seed")
		indep   = fs.Int("independence", 4, "xi independence (>= 6 enables product expressions)")
		forest  = fs.Bool("forest", false, "treat each input as a rooted forest document")
		useSum  = fs.Bool("summary", false, "build the structural summary ('//' and '*' queries)")
		workers = fs.Int("workers", 1, "parallel ingestion shards; 0 = GOMAXPROCS, > 1 requires -topk 0")
		queries queryList
	)
	fs.Var(&queries, "q", "query (repeatable): S-expression or path; prefix u: for unordered")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = *k
	cfg.S1, cfg.S2 = *s1, *s2
	cfg.VirtualStreams = *p
	cfg.TopK = *topk
	cfg.Seed = *seed
	cfg.Independence = *indep
	cfg.BuildSummary = *useSum

	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}
	var st *sketchtree.SketchTree
	if *workers == 1 {
		var err error
		if st, err = sketchtree.New(cfg); err != nil {
			return err
		}
		for _, name := range inputs {
			if err := addInput(st, name, stdin, *forest); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	} else {
		if *topk != 0 {
			return fmt.Errorf("-workers %d requires -topk 0: sharded synopses with top-k tracking cannot be merged", *workers)
		}
		in, err := sketchtree.NewIngestor(cfg, *workers)
		if err != nil {
			return err
		}
		for _, name := range inputs {
			if err := addInput(in, name, stdin, *forest); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		if st, err = in.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "processed %d trees, %d pattern occurrences\n",
		st.TreesProcessed(), st.PatternsProcessed())
	mem := st.MemoryBytes()
	fmt.Fprintf(stdout, "synopsis: %d bytes (counters %d, seeds %d, top-k %d)\n",
		mem.Total(), mem.SketchCounters, mem.Seeds, mem.TopK)

	for _, q := range queries {
		answer(stdout, st, q, *useSum)
	}
	return nil
}

// xmlSink is the ingestion surface shared by the sequential SketchTree
// and the parallel Ingestor.
type xmlSink interface {
	AddXML(io.Reader) error
	AddXMLForest(io.Reader) error
}

func addInput(sink xmlSink, name string, stdin io.Reader, forest bool) error {
	var r io.Reader = stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if forest {
		return sink.AddXMLForest(r)
	}
	return sink.AddXML(r)
}

func answer(w io.Writer, st *sketchtree.SketchTree, q string, haveSummary bool) {
	unordered := false
	if strings.HasPrefix(q, "u:") {
		unordered = true
		q = q[2:]
	}
	if strings.HasPrefix(q, "(") {
		pat, err := sketchtree.ParsePattern(q)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		est, err := count(st, pat, unordered)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		fmt.Fprintf(w, "%-40s  ≈ %.1f\n", q, est)
		return
	}
	ext, err := sketchtree.ParsePath(q)
	if err != nil {
		fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
		return
	}
	if extended(ext) {
		if !haveSummary {
			fmt.Fprintf(w, "%-40s  error: needs -summary ('//' or '*')\n", q)
			return
		}
		est, truncated, err := st.CountExtended(ext)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		note := ""
		if truncated {
			note = "  (truncated: lower bound)"
		}
		fmt.Fprintf(w, "%-40s  ≈ %.1f%s\n", q, est, note)
		return
	}
	est, err := count(st, plainChain(ext), unordered)
	if err != nil {
		fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
		return
	}
	fmt.Fprintf(w, "%-40s  ≈ %.1f\n", q, est)
}

func count(st *sketchtree.SketchTree, pat *sketchtree.Node, unordered bool) (float64, error) {
	if unordered {
		return st.CountUnordered(pat)
	}
	return st.CountOrdered(pat)
}

// extended reports whether the query uses '//' or '*'.
func extended(q *sketchtree.ExtQuery) bool {
	if q.Desc || q.Label == sketchtree.Wildcard {
		return true
	}
	for _, c := range q.Children {
		if extended(c) {
			return true
		}
	}
	return false
}

// plainChain converts an extended query without '//'/'*' into a plain
// pattern.
func plainChain(q *sketchtree.ExtQuery) *sketchtree.Node {
	n := sketchtree.Pattern(q.Label)
	for _, c := range q.Children {
		n.Children = append(n.Children, plainChain(c))
	}
	return n
}
