// Command sketchtree streams XML trees into a SketchTree synopsis and
// answers count queries.
//
// Input: one or more XML files (or stdin). With -forest each file is a
// rooted forest document (the root tag is stripped and each child
// subtree is one stream element); otherwise each file is a single
// tree.
//
// Queries are passed with repeated -q flags, either as S-expressions
// ("(A (B) (C))") or as linear paths ("A/B//C/*"; '//' and '*' need
// -summary). By default queries are ordered counts; prefix a query
// with "u:" for unordered counting.
//
// With -workers N (N != 1) ingestion is sharded across N parallel
// SketchTrees that are merged cell-wise before querying — bit-identical
// to sequential processing, but requires -topk 0 (merged synopses
// cannot carry top-k tracking).
//
// With -metrics addr an HTTP observability endpoint runs for the
// lifetime of the command (stage timers are enabled for the run):
// /stats serves the expvar-style JSON snapshot, /metrics the same data
// in Prometheus text format, and /debug/pprof/ the standard profiler.
// A final stage-timing summary is printed after the queries.
//
//	sketchtree -forest -k 4 -topk 50 -q 'article/author' -q '(a (b) (c))' data.xml
//	sketchtree -forest -topk 0 -workers 8 -q 'article/author' data.xml
//	sketchtree -forest -metrics 127.0.0.1:9090 -q 'article/author' data.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"sketchtree"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchtree: %v\n", err)
		os.Exit(1)
	}
}

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("sketchtree", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 4, "maximum pattern size in edges")
		s1      = fs.Int("s1", 25, "sketch instances averaged (accuracy)")
		s2      = fs.Int("s2", 7, "sketch rows medianed (confidence)")
		p       = fs.Int("p", 229, "number of virtual streams (prime)")
		topk    = fs.Int("topk", 50, "frequent patterns tracked per virtual stream (0 = off)")
		seed    = fs.Uint64("seed", 1, "random seed")
		indep   = fs.Int("independence", 4, "xi independence (>= 6 enables product expressions)")
		forest  = fs.Bool("forest", false, "treat each input as a rooted forest document")
		useSum  = fs.Bool("summary", false, "build the structural summary ('//' and '*' queries)")
		workers = fs.Int("workers", 1, "parallel ingestion shards; 0 = GOMAXPROCS, > 1 requires -topk 0")
		metrics = fs.String("metrics", "", "serve /stats (JSON), /metrics (Prometheus) and /debug/pprof on this address; enables stage timers")
		queries queryList
	)
	fs.Var(&queries, "q", "query (repeatable): S-expression or path; prefix u: for unordered")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = *k
	cfg.S1, cfg.S2 = *s1, *s2
	cfg.VirtualStreams = *p
	cfg.TopK = *topk
	cfg.Seed = *seed
	cfg.Independence = *indep
	cfg.BuildSummary = *useSum

	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}
	// The ingestion object is built before the metrics server starts so
	// /stats reflects progress live, from the first tree on.
	src := &statsSource{}
	var in *sketchtree.Ingestor
	if *workers == 1 {
		st, err := sketchtree.New(cfg)
		if err != nil {
			return err
		}
		src.set(st)
	} else {
		if *topk != 0 {
			return fmt.Errorf("-workers %d requires -topk 0: sharded synopses with top-k tracking cannot be merged", *workers)
		}
		var err error
		if in, err = sketchtree.NewIngestor(cfg, *workers); err != nil {
			return err
		}
		src.setIngestor(in)
	}
	if *metrics != "" {
		src.enableMetrics(true)
		srv, addr, err := serveMetrics(*metrics, src.snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: serving http://%s/stats /metrics /debug/pprof/\n", addr)
	}

	var sink xmlSink = in
	if in == nil {
		sink = src.tree()
	}
	for _, name := range inputs {
		if err := addInput(sink, name, stdin, *forest); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if in != nil {
		st, err := in.Close()
		if err != nil {
			return err
		}
		src.set(st)
	}
	st := src.tree()
	fmt.Fprintf(stdout, "processed %d trees, %d pattern occurrences\n",
		st.TreesProcessed(), st.PatternsProcessed())
	mem := st.MemoryBytes()
	fmt.Fprintf(stdout, "synopsis: %d bytes (counters %d, seeds %d, top-k %d)\n",
		mem.Total(), mem.SketchCounters, mem.Seeds, mem.TopK)

	for _, q := range queries {
		answer(stdout, st, q, *useSum)
	}
	if *metrics != "" {
		printStats(stdout, st.Stats())
		if metricsHook != nil {
			metricsHook()
		}
	}
	return nil
}

// metricsHook, when set by tests, runs after the queries are answered
// while the -metrics server is still listening.
var metricsHook func()

// statsSource hands the metrics server a stable snapshot function
// across the ingestor → merged-synopsis handover.
type statsSource struct {
	mu sync.Mutex
	st *sketchtree.SketchTree
	in *sketchtree.Ingestor
}

func (s *statsSource) set(st *sketchtree.SketchTree) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st = st
}

func (s *statsSource) setIngestor(in *sketchtree.Ingestor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in = in
}

func (s *statsSource) tree() *sketchtree.SketchTree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

func (s *statsSource) enableMetrics(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st != nil {
		s.st.EnableMetrics(on)
	}
	if s.in != nil {
		s.in.EnableMetrics(on)
	}
}

// snapshot reads the current pipeline stats: the merged synopsis once
// it exists, the live shard aggregate before that.
func (s *statsSource) snapshot() sketchtree.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st != nil {
		return s.st.Stats()
	}
	if s.in != nil {
		return s.in.Stats().Snapshot
	}
	return sketchtree.Stats{}
}

// serveMetrics starts the observability endpoint: JSON snapshot,
// Prometheus text format, and net/http/pprof.
func serveMetrics(addr string, snap func() sketchtree.Stats) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-metrics %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/stats", sketchtree.StatsJSONHandler(snap))
	mux.Handle("/metrics", sketchtree.StatsPromHandler(snap))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// printStats writes the end-of-run stage-timing summary.
func printStats(w io.Writer, s sketchtree.Stats) {
	fmt.Fprintf(w, "stages (count, total, per-op):\n")
	for st := sketchtree.Stage(0); st < sketchtree.Stage(len(s.Stages)); st++ {
		sg := s.Stage(st)
		if sg.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-12s %9d  %12v  %9v\n", st, sg.Count, sg.Duration(), sg.PerOp())
	}
	q := s.Queries
	fmt.Fprintf(w, "queries: %d (%d errors), total latency %v\n",
		q.Count, q.Errors, time.Duration(q.Nanos))
}

// xmlSink is the ingestion surface shared by the sequential SketchTree
// and the parallel Ingestor.
type xmlSink interface {
	AddXML(io.Reader) error
	AddXMLForest(io.Reader) error
}

func addInput(sink xmlSink, name string, stdin io.Reader, forest bool) error {
	var r io.Reader = stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if forest {
		return sink.AddXMLForest(r)
	}
	return sink.AddXML(r)
}

func answer(w io.Writer, st *sketchtree.SketchTree, q string, haveSummary bool) {
	unordered := false
	if strings.HasPrefix(q, "u:") {
		unordered = true
		q = q[2:]
	}
	if strings.HasPrefix(q, "(") {
		pat, err := sketchtree.ParsePattern(q)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		est, err := count(st, pat, unordered)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		fmt.Fprintf(w, "%-40s  ≈ %.1f\n", q, est)
		return
	}
	ext, err := sketchtree.ParsePath(q)
	if err != nil {
		fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
		return
	}
	if extended(ext) {
		if !haveSummary {
			fmt.Fprintf(w, "%-40s  error: needs -summary ('//' or '*')\n", q)
			return
		}
		est, truncated, err := st.CountExtended(ext)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		note := ""
		if truncated {
			note = "  (truncated: lower bound)"
		}
		fmt.Fprintf(w, "%-40s  ≈ %.1f%s\n", q, est, note)
		return
	}
	est, err := count(st, plainChain(ext), unordered)
	if err != nil {
		fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
		return
	}
	fmt.Fprintf(w, "%-40s  ≈ %.1f\n", q, est)
}

func count(st *sketchtree.SketchTree, pat *sketchtree.Node, unordered bool) (float64, error) {
	if unordered {
		return st.CountUnordered(pat)
	}
	return st.CountOrdered(pat)
}

// extended reports whether the query uses '//' or '*'.
func extended(q *sketchtree.ExtQuery) bool {
	if q.Desc || q.Label == sketchtree.Wildcard {
		return true
	}
	for _, c := range q.Children {
		if extended(c) {
			return true
		}
	}
	return false
}

// plainChain converts an extended query without '//'/'*' into a plain
// pattern.
func plainChain(q *sketchtree.ExtQuery) *sketchtree.Node {
	n := sketchtree.Pattern(q.Label)
	for _, c := range q.Children {
		n.Children = append(n.Children, plainChain(c))
	}
	return n
}
