// Command sketchtree streams XML trees into a SketchTree synopsis and
// answers count queries.
//
// Input: one or more XML files (or stdin). With -forest each file is a
// rooted forest document (the root tag is stripped and each child
// subtree is one stream element); otherwise each file is a single
// tree.
//
// Queries are passed with repeated -q flags, either as S-expressions
// ("(A (B) (C))") or as linear paths ("A/B//C/*"; '//' and '*' need
// -summary). By default queries are ordered counts; prefix a query
// with "u:" for unordered counting.
//
// With -workers N (N != 1) ingestion is sharded across N parallel
// SketchTrees that are merged cell-wise before querying — bit-identical
// to sequential processing, but requires -topk 0 (merged synopses
// cannot carry top-k tracking).
//
// With -metrics addr an HTTP observability endpoint runs for the
// lifetime of the command (stage timers are enabled for the run):
// /stats serves the expvar-style JSON snapshot, /metrics the same data
// in Prometheus text format, and /debug/pprof/ the standard profiler.
// A final stage-timing summary is printed after the queries.
//
//	sketchtree -forest -k 4 -topk 50 -q 'article/author' -q '(a (b) (c))' data.xml
//	sketchtree -forest -topk 0 -workers 8 -q 'article/author' data.xml
//	sketchtree -forest -metrics 127.0.0.1:9090 -q 'article/author' data.xml
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sketchtree"
)

func main() {
	// SIGINT/SIGTERM stop ingestion cleanly: the synopsis built so far
	// is queried and summarized before exit (a second signal kills the
	// process via the restored default handler).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchtree: %v\n", err)
		os.Exit(1)
	}
}

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("sketchtree", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 4, "maximum pattern size in edges")
		s1       = fs.Int("s1", 25, "sketch instances averaged (accuracy)")
		s2       = fs.Int("s2", 7, "sketch rows medianed (confidence)")
		p        = fs.Int("p", 229, "number of virtual streams (prime)")
		topk     = fs.Int("topk", 50, "frequent patterns tracked per virtual stream (0 = off)")
		seed     = fs.Uint64("seed", 1, "random seed")
		indep    = fs.Int("independence", 4, "xi independence (>= 6 enables product expressions)")
		forest   = fs.Bool("forest", false, "treat each input as a rooted forest document")
		useSum   = fs.Bool("summary", false, "build the structural summary ('//' and '*' queries)")
		workers  = fs.Int("workers", 1, "parallel ingestion shards; 0 = GOMAXPROCS, > 1 requires -topk 0")
		metrics  = fs.String("metrics", "", "serve /stats (JSON), /metrics (Prometheus) and /debug/pprof on this address; enables stage timers")
		auditK   = fs.Int("audit", 0, "exact-shadow audit: track true counts for a sample of this many patterns (0 = off; requires -workers 1)")
		auditEps = fs.Float64("audit-eps", 0.1, "target relative error ε scored in the audit accuracy table")
		queries  queryList
	)
	fs.Var(&queries, "q", "query (repeatable): S-expression or path; prefix u: for unordered")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = *k
	cfg.S1, cfg.S2 = *s1, *s2
	cfg.VirtualStreams = *p
	cfg.TopK = *topk
	cfg.Seed = *seed
	cfg.Independence = *indep
	cfg.BuildSummary = *useSum

	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}
	// The ingestion object is built before the metrics server starts so
	// /stats reflects progress live, from the first tree on.
	src := &statsSource{}
	var in *sketchtree.Ingestor
	if *workers == 1 {
		st, err := sketchtree.New(cfg)
		if err != nil {
			return err
		}
		if *auditK > 0 {
			if err := st.EnableAudit(*auditK); err != nil {
				return err
			}
		}
		src.set(st)
	} else {
		if *topk != 0 {
			return fmt.Errorf("-workers %d requires -topk 0: sharded synopses with top-k tracking cannot be merged", *workers)
		}
		if *auditK > 0 {
			return fmt.Errorf("-audit requires -workers 1: the exact-shadow sample is drawn over one engine's stream")
		}
		var err error
		if in, err = sketchtree.NewIngestor(cfg, *workers); err != nil {
			return err
		}
		src.setIngestor(in)
	}
	if *metrics != "" {
		src.enableMetrics(true)
		srv, addr, err := serveMetrics(*metrics, src.snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: serving http://%s/stats /metrics /debug/pprof/\n", addr)
	}

	var sink xmlSink = in
	if in == nil {
		sink = src.tree()
	}
	interrupted := false
	for _, name := range inputs {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		// Input readers are cancel-aware: a signal surfaces as a read
		// error at the next tree boundary, stopping ingestion cleanly
		// with the synopsis in a consistent (whole trees only) state.
		if err := addInput(ctx, sink, name, stdin, *forest); err != nil {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if in != nil {
		st, err := in.Close()
		if err != nil {
			return err
		}
		src.set(st)
	}
	st := src.tree()
	if interrupted {
		fmt.Fprintf(stdout, "interrupted: stopping ingestion, summarizing the synopsis so far\n")
	}
	fmt.Fprintf(stdout, "processed %d trees, %d pattern occurrences\n",
		st.TreesProcessed(), st.PatternsProcessed())
	mem := st.MemoryBytes()
	fmt.Fprintf(stdout, "synopsis: %d bytes (counters %d, seeds %d, top-k %d)\n",
		mem.Total(), mem.SketchCounters, mem.Seeds, mem.TopK)

	for _, q := range queries {
		answer(stdout, st, q, *useSum)
	}
	if *auditK > 0 {
		rep, err := st.AuditReport()
		if err != nil {
			return err
		}
		printAuditTable(stdout, rep, *auditEps)
	}
	if *metrics != "" || interrupted {
		printStats(stdout, st.Stats())
	}
	if *metrics != "" && metricsHook != nil {
		metricsHook()
	}
	return nil
}

// printAuditTable writes the end-of-run accuracy table: the observed
// relative error of the sketch against the audited exact counts.
func printAuditTable(w io.Writer, r sketchtree.AuditReport, eps float64) {
	fmt.Fprintf(w, "audit: %d patterns tracked (capacity %d) over %d occurrences\n",
		r.Tracked, r.K, r.Observed)
	if r.Tracked == 0 {
		return
	}
	fmt.Fprintf(w, "  rel. error: mean %.4f  p50 %.4f  p90 %.4f  p99 %.4f  max %.4f\n",
		r.Mean, r.P50, r.P90, r.P99, r.Max)
	fmt.Fprintf(w, "  within ε=%.2f: %.1f%% of audited patterns\n", eps, 100*r.WithinFraction(eps))
	const maxRows = 10
	rows := r.Patterns
	if len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	fmt.Fprintf(w, "  %-20s %10s %12s %9s\n", "pattern value", "exact", "estimate", "rel.err")
	for _, p := range rows {
		fmt.Fprintf(w, "  %-20d %10d %12.1f %9.4f\n", p.Value, p.Exact, p.Estimate, p.RelErr)
	}
	if len(r.Patterns) > maxRows {
		fmt.Fprintf(w, "  ... %d more audited patterns\n", len(r.Patterns)-maxRows)
	}
}

// metricsHook, when set by tests, runs after the queries are answered
// while the -metrics server is still listening.
var metricsHook func()

// statsSource hands the metrics server a stable snapshot function
// across the ingestor → merged-synopsis handover.
type statsSource struct {
	mu sync.Mutex
	st *sketchtree.SketchTree
	in *sketchtree.Ingestor
}

func (s *statsSource) set(st *sketchtree.SketchTree) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st = st
}

func (s *statsSource) setIngestor(in *sketchtree.Ingestor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in = in
}

func (s *statsSource) tree() *sketchtree.SketchTree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

func (s *statsSource) enableMetrics(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st != nil {
		s.st.EnableMetrics(on)
	}
	if s.in != nil {
		s.in.EnableMetrics(on)
	}
}

// snapshot reads the current pipeline stats: the merged synopsis once
// it exists, the live shard aggregate before that.
func (s *statsSource) snapshot() sketchtree.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st != nil {
		return s.st.Stats()
	}
	if s.in != nil {
		return s.in.Stats().Snapshot
	}
	return sketchtree.Stats{}
}

// serveMetrics starts the observability endpoint: JSON snapshot,
// Prometheus text format, and net/http/pprof.
func serveMetrics(addr string, snap func() sketchtree.Stats) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-metrics %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/stats", sketchtree.StatsJSONHandler(snap))
	mux.Handle("/metrics", sketchtree.StatsPromHandler(snap))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// printStats writes the end-of-run stage-timing summary.
func printStats(w io.Writer, s sketchtree.Stats) {
	fmt.Fprintf(w, "stages (count, total, per-op):\n")
	for st := sketchtree.Stage(0); st < sketchtree.Stage(len(s.Stages)); st++ {
		sg := s.Stage(st)
		if sg.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-12s %9d  %12v  %9v\n", st, sg.Count, sg.Duration(), sg.PerOp())
	}
	q := s.Queries
	fmt.Fprintf(w, "queries: %d (%d errors), total latency %v\n",
		q.Count, q.Errors, time.Duration(q.Nanos))
}

// xmlSink is the ingestion surface shared by the sequential SketchTree
// and the parallel Ingestor.
type xmlSink interface {
	AddXML(io.Reader) error
	AddXMLForest(io.Reader) error
}

func addInput(ctx context.Context, sink xmlSink, name string, stdin io.Reader, forest bool) error {
	var r io.Reader = stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	r = &ctxReader{ctx: ctx, r: r}
	if forest {
		return sink.AddXMLForest(r)
	}
	return sink.AddXML(r)
}

// ctxReader fails reads once the context is canceled, turning a signal
// into an ordinary decode error at the next tree boundary.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

func answer(w io.Writer, st *sketchtree.SketchTree, q string, haveSummary bool) {
	unordered := false
	if strings.HasPrefix(q, "u:") {
		unordered = true
		q = q[2:]
	}
	if strings.HasPrefix(q, "(") {
		pat, err := sketchtree.ParsePattern(q)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		est, err := count(st, pat, unordered)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		fmt.Fprintf(w, "%-40s  ≈ %.1f\n", q, est)
		return
	}
	ext, err := sketchtree.ParsePath(q)
	if err != nil {
		fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
		return
	}
	if extended(ext) {
		if !haveSummary {
			fmt.Fprintf(w, "%-40s  error: needs -summary ('//' or '*')\n", q)
			return
		}
		est, truncated, err := st.CountExtended(ext)
		if err != nil {
			fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
			return
		}
		note := ""
		if truncated {
			note = "  (truncated: lower bound)"
		}
		fmt.Fprintf(w, "%-40s  ≈ %.1f%s\n", q, est, note)
		return
	}
	est, err := count(st, plainChain(ext), unordered)
	if err != nil {
		fmt.Fprintf(w, "%-40s  error: %v\n", q, err)
		return
	}
	fmt.Fprintf(w, "%-40s  ≈ %.1f\n", q, est)
}

func count(st *sketchtree.SketchTree, pat *sketchtree.Node, unordered bool) (float64, error) {
	if unordered {
		return st.CountUnordered(pat)
	}
	return st.CountOrdered(pat)
}

// extended reports whether the query uses '//' or '*'.
func extended(q *sketchtree.ExtQuery) bool {
	if q.Desc || q.Label == sketchtree.Wildcard {
		return true
	}
	for _, c := range q.Children {
		if extended(c) {
			return true
		}
	}
	return false
}

// plainChain converts an extended query without '//'/'*' into a plain
// pattern.
func plainChain(q *sketchtree.ExtQuery) *sketchtree.Node {
	n := sketchtree.Pattern(q.Label)
	for _, c := range q.Children {
		n.Children = append(n.Children, plainChain(c))
	}
	return n
}
