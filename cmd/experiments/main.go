// Command experiments regenerates the paper's tables and figures
// (Table 1, Figures 8–12, and the §7.6/§7.7 processing-cost ratios)
// against the synthetic TREEBANK and DBLP streams, printing the same
// rows and series the paper reports.
//
//	experiments -scale medium -exp all
//	experiments -scale paper -exp fig10a        # hours
//	experiments -scale small -exp table1,fig9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sketchtree/internal/experiments"
)

// jsonReport accumulates every computed result for -json output, so
// downstream tooling (and EXPERIMENTS.md) can consume the numbers
// without scraping the text tables.
type jsonReport struct {
	Scale    string                             `json:"scale"`
	Table1   []experiments.Table1Row            `json:"table1,omitempty"`
	Fig8     []experiments.Fig8Result           `json:"figure8,omitempty"`
	Fig9     map[string][]experiments.EnumPoint `json:"figure9,omitempty"`
	Fig10    []*experiments.ErrorSweepResult    `json:"figure10,omitempty"`
	Fig1112  []*experiments.CompositeResult     `json:"figure11_12,omitempty"`
	Cost     map[string][]experiments.CostPoint `json:"cost,omitempty"`
	Ablation []experiments.AblationResult       `json:"ablation,omitempty"`
}

var report jsonReport

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	out = stdout
	report = jsonReport{}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "small", "experiment scale: tiny, small, medium, or paper")
		expList   = fs.String("exp", "all", "comma-separated experiments: table1, fig8, fig9, fig10a, fig10b, fig10c, fig10d, fig11, fig12sum, fig12product, cost, ablation")
		jsonOut   = fs.String("json", "", "also write all results as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc experiments.Scale
	switch *scaleName {
	case "tiny":
		sc = experiments.ScaleTiny()
	case "small":
		sc = experiments.ScaleSmall()
	case "medium":
		sc = experiments.ScaleMedium()
	case "paper":
		sc = experiments.ScalePaper()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	need := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	fmt.Fprintf(out, "SketchTree experiment harness — scale %q\n", sc.Name)
	fmt.Fprintf(out, "(synthetic TREEBANK/DBLP substitutes; see DESIGN.md §4)\n\n")

	var tb, db *experiments.Bundle
	var err error
	if need("table1", "fig8", "fig9", "fig10a", "fig10b", "fig11", "fig12sum", "fig12product", "cost", "ablation") {
		fmt.Fprintln(out, "preparing TREEBANK bundle...")
		tb, err = experiments.Prepare(sc, "TREEBANK")
		check(err)
	}
	if need("table1", "fig8", "fig9", "fig10c", "fig10d", "cost", "ablation") {
		fmt.Fprintln(out, "preparing DBLP bundle...")
		db, err = experiments.Prepare(sc, "DBLP")
		check(err)
	}
	fmt.Fprintln(out)

	if need("table1") {
		printTable1(sc, tb, db)
	}
	if need("fig8") {
		printFigure8(tb, db)
	}
	if need("fig9") {
		printFigure9(sc, tb, db)
	}
	if need("fig10a") {
		runErrorSweep(sc, tb, sc.S1Treebank[0], sc.TopKsTreebank, "Figure 10(a)")
	}
	if need("fig10b") {
		runErrorSweep(sc, tb, sc.S1Treebank[len(sc.S1Treebank)-1], sc.TopKsTreebank, "Figure 10(b)")
	}
	if need("fig10c") {
		runErrorSweep(sc, db, sc.S1DBLP[0], sc.TopKsDBLP, "Figure 10(c)")
	}
	if need("fig10d") {
		runErrorSweep(sc, db, sc.S1DBLP[len(sc.S1DBLP)-1], sc.TopKsDBLP, "Figure 10(d)")
	}
	if need("fig11", "fig12sum") {
		for _, s1 := range sc.S1Treebank {
			res, err := experiments.SumSweep(tb, sc, s1, sc.TopKsTreebank)
			check(err)
			printComposite(res, "Figures 11(a)/12(a,b) — SUM workload")
		}
	}
	if need("fig12product") {
		for _, s1 := range sc.S1Treebank {
			res, err := experiments.ProductSweep(tb, sc, s1, sc.TopKsTreebank)
			check(err)
			printComposite(res, "Figures 11(b)/12(c,d) — PRODUCT workload")
		}
	}
	if need("cost") {
		printCost(sc, tb, db)
	}
	if need("ablation") {
		printAblations(sc, tb, sc.S1Treebank[0], sc.TopKsTreebank[len(sc.TopKsTreebank)-1])
		printAblations(sc, db, sc.S1DBLP[0], sc.TopKsDBLP[len(sc.TopKsDBLP)-1])
	}
	if *jsonOut != "" {
		report.Scale = sc.Name
		data, err := json.MarshalIndent(&report, "", "  ")
		check(err)
		check(os.WriteFile(*jsonOut, data, 0o644))
		fmt.Fprintf(out, "wrote JSON results to %s\n", *jsonOut)
	}
	return nil
}

// out is the destination for all report printing; main sets it to
// stdout, tests to a buffer.
var out io.Writer = os.Stdout

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func printTable1(sc experiments.Scale, bundles ...*experiments.Bundle) {
	fmt.Fprintln(out, "== Table 1: dataset and tree pattern statistics ==")
	fmt.Fprintf(out, "%-10s %10s %4s %16s %14s %16s %14s\n",
		"Dataset", "#Trees", "k", "#DistinctPat", "#PatternOccs", "SelfJoinSize", "ExactCtrMem")
	for _, b := range bundles {
		if b == nil {
			continue
		}
		row := experiments.Table1(b, sc)
		report.Table1 = append(report.Table1, row)
		fmt.Fprintf(out, "%-10s %10d %4d %16d %14d %16d %12.1fKB\n",
			row.Dataset, row.Trees, row.K, row.DistinctPatterns,
			row.TotalPatterns, row.SelfJoinSize, float64(row.BaselineMemBytes)/1024)
	}
	fmt.Fprintln(out)
}

func printFigure8(bundles ...*experiments.Bundle) {
	fmt.Fprintln(out, "== Figure 8: query workloads by selectivity range ==")
	for _, b := range bundles {
		if b == nil {
			continue
		}
		res := experiments.Figure8(b)
		report.Fig8 = append(report.Fig8, res)
		fmt.Fprintf(out, "%s (paper ranges × %g; counts in [%d, %d]):\n",
			res.Dataset, b.RangeScale, res.MinCount, res.MaxCount)
		for i, r := range res.Ranges {
			fmt.Fprintf(out, "  %-24s %5d queries\n", r.String(), res.Counts[i])
		}
	}
	fmt.Fprintln(out)
}

func printFigure9(sc experiments.Scale, bundles ...*experiments.Bundle) {
	fmt.Fprintln(out, "== Figure 9: EnumTree cost — (a) time, (b) patterns generated ==")
	for _, b := range bundles {
		if b == nil {
			continue
		}
		pts, err := experiments.Figure9(b, sc, b.K)
		check(err)
		if report.Fig9 == nil {
			report.Fig9 = map[string][]experiments.EnumPoint{}
		}
		report.Fig9[b.Name] = pts
		fmt.Fprintf(out, "%s:\n  %3s %14s %12s %14s\n", b.Name, "k", "patterns", "seconds", "patterns/sec")
		for _, p := range pts {
			fmt.Fprintf(out, "  %3d %14d %12.3f %14.0f\n",
				p.K, p.Patterns, p.Seconds, float64(p.Patterns)/p.Seconds)
		}
	}
	fmt.Fprintln(out)
}

func runErrorSweep(sc experiments.Scale, b *experiments.Bundle, s1 int, topks []int, title string) {
	res, err := experiments.ErrorSweep(b, sc, s1, topks)
	check(err)
	report.Fig10 = append(report.Fig10, res)
	fmt.Fprintf(out, "== %s: %s avg relative error, s1=%d, s2=%d, p=%d ==\n",
		title, res.Dataset, s1, sc.S2, sc.VirtualStreams)
	fmt.Fprintf(out, "%-24s", "selectivity \\ top-k")
	for _, tk := range res.TopKs {
		fmt.Fprintf(out, " %8d", tk)
	}
	fmt.Fprintln(out)
	for ri, r := range res.Ranges {
		fmt.Fprintf(out, "%-24s", r.String())
		for ti := range res.TopKs {
			fmt.Fprintf(out, " %7.1f%%", res.AvgRelErr[ti][ri]*100)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "%-24s", "memory (KB)")
	for ti := range res.TopKs {
		fmt.Fprintf(out, " %8.0f", float64(res.MemoryBytes[ti])/1024)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-24s", "stream time (s)")
	for ti := range res.TopKs {
		fmt.Fprintf(out, " %8.2f", res.Seconds[ti])
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out)
}

func printComposite(res *experiments.CompositeResult, title string) {
	report.Fig1112 = append(report.Fig1112, res)
	fmt.Fprintf(out, "== %s: %s s1=%d ==\n", title, res.Dataset, res.S1)
	fmt.Fprintln(out, "workload histogram:")
	for i, r := range res.Ranges {
		fmt.Fprintf(out, "  %-28s %6d queries\n", r.String(), res.Histogram[i])
	}
	fmt.Fprintf(out, "%-28s", "selectivity \\ top-k")
	for _, tk := range res.TopKs {
		fmt.Fprintf(out, " %8d", tk)
	}
	fmt.Fprintln(out)
	for ri, r := range res.Ranges {
		fmt.Fprintf(out, "%-28s", r.String())
		for ti := range res.TopKs {
			fmt.Fprintf(out, " %7.1f%%", res.AvgRelErr[ti][ri]*100)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
}

func printCost(sc experiments.Scale, tb, db *experiments.Bundle) {
	fmt.Fprintln(out, "== §7.6/§7.7: stream processing cost ratios ==")
	type spec struct {
		b      *experiments.Bundle
		s1s    [2]int
		topks  [2]int
		legend string
	}
	specs := []spec{}
	if tb != nil {
		specs = append(specs, spec{tb, [2]int{sc.S1Treebank[0], sc.S1Treebank[len(sc.S1Treebank)-1]},
			[2]int{sc.TopKsTreebank[0], sc.TopKsTreebank[len(sc.TopKsTreebank)-1]},
			"paper: s1 ratio ≈ 2.3, top-k overhead ≈ 5%"})
	}
	if db != nil {
		specs = append(specs, spec{db, [2]int{sc.S1DBLP[0], sc.S1DBLP[len(sc.S1DBLP)-1]},
			[2]int{sc.TopKsDBLP[0], sc.TopKsDBLP[len(sc.TopKsDBLP)-1]},
			"paper: s1 ratio ≈ 1.6, top-k overhead ≈ 8-10%"})
	}
	for _, s := range specs {
		pts, err := experiments.CostSweep(s.b, sc, [][2]int{
			{s.s1s[0], s.topks[0]},
			{s.s1s[1], s.topks[0]},
			{s.s1s[0], s.topks[1]},
		})
		check(err)
		if report.Cost == nil {
			report.Cost = map[string][]experiments.CostPoint{}
		}
		report.Cost[s.b.Name] = pts
		fmt.Fprintf(out, "%s (%s):\n", s.b.Name, s.legend)
		for _, p := range pts {
			fmt.Fprintf(out, "  s1=%-4d topk=%-4d %8.2fs  %10.0f patterns/s\n",
				p.S1, p.TopK, p.Seconds, p.PatternsPerSec)
		}
		fmt.Fprintf(out, "  s1 %d→%d cost ratio: %.2f   top-k %d→%d overhead: %+.1f%%\n",
			s.s1s[0], s.s1s[1], pts[1].Seconds/pts[0].Seconds,
			s.topks[0], s.topks[1], (pts[2].Seconds/pts[0].Seconds-1)*100)
	}
	fmt.Fprintln(out)
}

func printAblations(sc experiments.Scale, b *experiments.Bundle, s1, topk int) {
	if b == nil {
		return
	}
	res, err := experiments.Ablations(b, sc, s1, topk)
	check(err)
	report.Ablation = append(report.Ablation, res...)
	fmt.Fprintf(out, "== Ablations: %s (s1=%d) ==\n", b.Name, s1)
	for _, a := range res {
		fmt.Fprintf(out, "%s:\n", a.Name)
		for _, v := range a.Variants {
			fmt.Fprintf(out, "  %-22s relerr %6.1f%%  %7.2fs  %8.0f KB\n",
				v.Label, v.AvgRelErr*100, v.Seconds, float64(v.Memory)/1024)
		}
	}
	fmt.Fprintln(out)
}
