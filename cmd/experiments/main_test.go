package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinyTable1AndFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "tiny", "-exp", "table1,fig8"}, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"Table 1", "TREEBANK", "DBLP", "Figure 8", "queries",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunTinyJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	var buf bytes.Buffer
	if err := run([]string{"-scale", "tiny", "-exp", "table1", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Scale  string `json:"scale"`
		Table1 []struct {
			Dataset          string
			DistinctPatterns int
		} `json:"table1"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if rep.Scale != "tiny" || len(rep.Table1) != 2 {
		t.Errorf("unexpected JSON: %+v", rep)
	}
	if rep.Table1[0].DistinctPatterns <= 0 {
		t.Error("table1 rows empty")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Error("unknown scale must fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag must fail")
	}
}
