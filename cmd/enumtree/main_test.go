package main

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestRunSexp(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-k", "2", "(A (B (C)) (D))"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Errorf("got %d patterns, want 5: %v", len(lines), lines)
	}
	if !strings.Contains(errOut.String(), "5 patterns with 1..2 edges") {
		t.Errorf("summary missing: %q", errOut.String())
	}
}

func TestRunCountOnly(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-k", "2", "-count", "(A (B (C)) (D))"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "5" {
		t.Errorf("count output = %q, want 5", out.String())
	}
}

func TestRunXMLStdin(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-k", "1", "-xml"}, strings.NewReader("<a><b/><c/></a>"), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	sort.Strings(got)
	if len(got) != 2 || got[0] != "(a (b))" || got[1] != "(a (c))" {
		t.Errorf("patterns = %q", got)
	}
}

func TestRunPruferColumn(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-k", "1", "-prufer", "(A (B))"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LPS: B A | NPS: 2 3") {
		t.Errorf("prufer column missing: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("missing input must fail")
	}
	if err := run([]string{"not sexp"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("bad S-expression must fail")
	}
	if err := run([]string{"-xml"}, strings.NewReader("<a"), &out, &errOut); err == nil {
		t.Error("bad XML must fail")
	}
	if err := run([]string{"-k", "0", "(A (B))"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("k=0 must fail")
	}
}
