// Command enumtree enumerates the ordered tree patterns of a single
// tree — the EnumTree algorithm (paper §5.1) as a standalone tool.
//
// The tree is given as an S-expression argument or as an XML document
// on stdin:
//
//	enumtree -k 3 '(A (B (C)) (D))'
//	cat doc.xml | enumtree -k 2 -xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sketchtree/internal/enum"
	"sketchtree/internal/prufer"
	"sketchtree/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "enumtree: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("enumtree", flag.ContinueOnError)
	var (
		k     = fs.Int("k", 3, "maximum pattern size in edges")
		xml   = fs.Bool("xml", false, "read an XML document from stdin instead of an S-expression argument")
		quiet = fs.Bool("count", false, "print only the number of patterns")
		seqs  = fs.Bool("prufer", false, "also print each pattern's extended Prüfer sequence")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *tree.Tree
	var err error
	switch {
	case *xml:
		t, err = tree.ParseXML(stdin, tree.DefaultXMLOptions())
	case fs.NArg() == 1:
		t, err = tree.ParseSexp(fs.Arg(0))
	default:
		return fmt.Errorf("pass an S-expression tree or use -xml with stdin")
	}
	if err != nil {
		return err
	}

	if *quiet {
		n, err := enum.CountPatterns(t.Root, *k)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, n)
		return nil
	}
	en, err := enum.NewEnumerator(*k)
	if err != nil {
		return err
	}
	n := 0
	err = en.ForEach(t.Root, func(p *enum.Pattern) error {
		n++
		if *seqs {
			fmt.Fprintf(stdout, "%-40s  %s\n", p.String(), prufer.OfNode(p.ToTree()).String())
		} else {
			fmt.Fprintln(stdout, p.String())
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%d patterns with 1..%d edges\n", n, *k)
	return nil
}
