// Command benchsummary turns the raw `go test -json -bench` event
// stream into a compact benchmark summary. It reads test2json events
// on stdin and writes one JSON document on stdout:
//
//	{
//	  "benchmarks": [
//	    {"name": "BenchmarkIngestParallel/workers=4", "iterations": 3,
//	     "ns_per_op": 812345.0, "workers": 4,
//	     "params": {"workers": "4"}},
//	    ...
//	  ],
//	  "ingest_ns_per_op_by_workers": {"1": 2400000, "2": 1300000, ...},
//	  "matrix": {"ingest": [{"name": "BenchmarkMatrixIngest/size=16/k=2/workers=1",
//	             "params": {"size": "16", "k": "2", "workers": "1"}, ...}], ...}
//	}
//
// Every key=value element of a sub-benchmark name is parsed into the
// result's params map, so dashboards can pivot on any axis without
// re-parsing benchmark names; the per-worker map keeps the original
// ingestion-scaling pivot. Benchmarks named BenchmarkMatrix<Group>/...
// (the bench matrix: `make bench-matrix`) are additionally grouped
// under matrix by their lowercased group ("ingest", "query", "merge").
//
//	go test -run '^$' -bench . -json . | benchsummary > BENCH_ingest.json
//
// With -check it compares two summary documents instead and exits
// nonzero when any benchmark present in both regressed beyond the
// threshold ratio (default 1.25, i.e. >25% slower ns/op):
//
//	benchsummary -check [-threshold 1.25] old.json new.json
//
// Benchmarks present in only one file are reported but never fail the
// check, so adding or retiring a benchmark does not break the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json schema benchsummary needs.
// Test carries the benchmark name when test2json has split the name
// from the measurement line (it does this for sub-benchmarks).
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	// Params holds every key=value element of the sub-benchmark name
	// (BenchmarkMatrixIngest/size=16/k=2/workers=1 → {size:16, k:2,
	// workers:1}) — the structured form of the matrix axes.
	Params map[string]string `json:"params,omitempty"`
}

// Summary is the emitted document.
type Summary struct {
	Benchmarks []Result `json:"benchmarks"`
	// ns/op keyed by worker count, for benchmarks named .../workers=N.
	IngestNsPerOpByWorkers map[string]float64 `json:"ingest_ns_per_op_by_workers,omitempty"`
	// Matrix groups the BenchmarkMatrix* cells by their lowercased
	// group name ("ingest", "query", "merge") so the bench-matrix
	// document is addressable without name parsing.
	Matrix map[string][]Result `json:"matrix,omitempty"`
}

// benchLine matches `BenchmarkName-8   123   456.7 ns/op [...]`. The
// trailing -8 is GOMAXPROCS, stripped from the reported name.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// measureLine matches a measurement-only output line (`123   456.7
// ns/op [...]`) — the form test2json emits for sub-benchmarks, whose
// name arrives separately in the event's Test field.
var measureLine = regexp.MustCompile(`^(\d+)\s+(.*)$`)

// matrixGroup maps BenchmarkMatrix<Group>[/...] to its lowercased
// group name; every other benchmark is not a matrix cell.
func matrixGroup(name string) (string, bool) {
	base, _, _ := strings.Cut(name, "/")
	g := strings.TrimPrefix(base, "BenchmarkMatrix")
	if g == base || g == "" {
		return "", false
	}
	return strings.ToLower(g), true
}

// parse consumes a test2json event stream and collects benchmark
// results. Benchmark output arrives as "output" events, one line each.
func parse(r io.Reader) (Summary, error) {
	s := Summary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return s, fmt.Errorf("malformed test2json event: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		res, ok := parseBenchOutput(ev.Test, strings.TrimSpace(ev.Output))
		if !ok {
			continue
		}
		s.Benchmarks = append(s.Benchmarks, res)
		if g, ok := matrixGroup(res.Name); ok {
			if s.Matrix == nil {
				s.Matrix = make(map[string][]Result)
			}
			s.Matrix[g] = append(s.Matrix[g], res)
		} else if res.Workers > 0 {
			// The original ingestion-scaling pivot; matrix cells carry
			// their worker axis in params instead.
			if s.IngestNsPerOpByWorkers == nil {
				s.IngestNsPerOpByWorkers = make(map[string]float64)
			}
			s.IngestNsPerOpByWorkers[strconv.Itoa(res.Workers)] = res.NsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("no benchmark result lines in the event stream")
	}
	return s, nil
}

// parseBenchOutput parses one benchmark result line into a Result. It
// accepts both the whole-line form (name and measurement together) and
// the split form where the name comes from the event's Test field and
// the line holds only `iterations … units`.
func parseBenchOutput(test, line string) (Result, bool) {
	var name, itersStr, tail string
	if m := benchLine.FindStringSubmatch(line); m != nil {
		name, itersStr, tail = m[1], m[2], m[3]
	} else if m := measureLine.FindStringSubmatch(line); m != nil && strings.HasPrefix(test, "Benchmark") {
		name, itersStr, tail = test, m[1], m[2]
	} else {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(itersStr, 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	// The tail is unit pairs: "456.7 ns/op  12 B/op  3 allocs/op".
	fields := strings.Fields(tail)
	seen := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		}
	}
	if !seen {
		return Result{}, false
	}
	// Sub-benchmark name elements of the form key=value become the
	// structured params; workers keeps its dedicated field for the
	// ingestion-scaling pivot.
	parts := strings.Split(res.Name, "/")
	for _, part := range parts[1:] {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			continue
		}
		if res.Params == nil {
			res.Params = make(map[string]string, len(parts)-1)
		}
		res.Params[k] = v
	}
	if w, err := strconv.Atoi(res.Params["workers"]); err == nil && w > 0 {
		res.Workers = w
	}
	return res, true
}

// loadSummary reads a summary document previously written by this
// tool.
func loadSummary(path string) (Summary, error) {
	var s Summary
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks", path)
	}
	return s, nil
}

// check compares two summaries benchmark-by-benchmark and writes a
// verdict line per benchmark. It returns the names that regressed
// beyond the threshold ratio. Benchmarks missing from either side are
// noted but do not count as regressions.
func check(old, cur Summary, threshold float64, w io.Writer) []string {
	oldBy := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]Result, len(cur.Benchmarks))
	names := make([]string, 0, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		newBy[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)

	var regressed []string
	for _, name := range names {
		nr := newBy[name]
		or, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "NEW   %s: %.0f ns/op (no baseline)\n", name, nr.NsPerOp)
			continue
		}
		if or.NsPerOp <= 0 {
			fmt.Fprintf(w, "SKIP  %s: baseline has no ns/op\n", name)
			continue
		}
		ratio := nr.NsPerOp / or.NsPerOp
		verdict := "OK   "
		if ratio > threshold {
			verdict = "SLOW "
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%s %s: %.0f -> %.0f ns/op (%.2fx, threshold %.2fx)\n",
			verdict, name, or.NsPerOp, nr.NsPerOp, ratio, threshold)
	}
	for _, r := range old.Benchmarks {
		if _, ok := newBy[r.Name]; !ok {
			fmt.Fprintf(w, "GONE  %s: present in baseline only\n", r.Name)
		}
	}
	return regressed
}

// run is main with injectable streams; the exit code is its return.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsummary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checkMode := fs.Bool("check", false, "compare two summary files: benchsummary -check old.json new.json")
	threshold := fs.Float64("threshold", 1.25, "ns/op ratio above which -check reports a regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *checkMode {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchsummary: -check needs exactly two summary files (old.json new.json)")
			return 2
		}
		if *threshold <= 0 {
			fmt.Fprintln(stderr, "benchsummary: -threshold must be positive")
			return 2
		}
		old, err := loadSummary(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchsummary: %v\n", err)
			return 2
		}
		cur, err := loadSummary(fs.Arg(1))
		if err != nil {
			fmt.Fprintf(stderr, "benchsummary: %v\n", err)
			return 2
		}
		if regressed := check(old, cur, *threshold, stdout); len(regressed) > 0 {
			fmt.Fprintf(stderr, "benchsummary: %d benchmark(s) regressed >%.0f%%: %s\n",
				len(regressed), (*threshold-1)*100, strings.Join(regressed, ", "))
			return 1
		}
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "benchsummary: summarize mode reads stdin and takes no arguments")
		return 2
	}
	s, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchsummary: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintf(stderr, "benchsummary: %v\n", err)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
