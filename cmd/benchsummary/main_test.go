package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// A realistic slice of `go test -json -bench` output: benchmark result
// lines arrive as output events interleaved with run/pass events and
// non-benchmark chatter.
const stream = `{"Action":"run","Test":"BenchmarkIngestParallel"}
{"Action":"output","Output":"goos: linux\n"}
{"Action":"output","Test":"BenchmarkIngestParallel/workers=1","Output":"BenchmarkIngestParallel/workers=1-8 \n"}
{"Action":"output","Test":"BenchmarkIngestParallel/workers=1","Output":"       3\t 240000.0 ns/op\n"}
{"Action":"output","Test":"BenchmarkIngestParallel/workers=2","Output":"       5\t 130000.5 ns/op\n"}
{"Action":"output","Output":"BenchmarkIngestParallel/workers=4-8 \t       9\t  81000.0 ns/op\n"}
{"Action":"output","Output":"BenchmarkEstimateOrdered-8 \t    1000\t    1234 ns/op\t      16 B/op\t       2 allocs/op\n"}
{"Action":"output","Output":"PASS\n"}
{"Action":"pass","Elapsed":1.2}
`

func TestParseSummarizesStream(t *testing.T) {
	s, err := parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks parsed, want 4: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	first := s.Benchmarks[0]
	if first.Name != "BenchmarkIngestParallel/workers=1" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Iterations != 3 || first.NsPerOp != 240000 || first.Workers != 1 {
		t.Fatalf("first result: %+v", first)
	}
	last := s.Benchmarks[3]
	if last.Name != "BenchmarkEstimateOrdered" || last.Workers != 0 {
		t.Fatalf("non-sweep benchmark: %+v", last)
	}
	if last.BytesPerOp != 16 || last.AllocsOp != 2 {
		t.Fatalf("extra unit pairs not parsed: %+v", last)
	}
	// The worker pivot holds exactly the sweep results.
	want := map[string]float64{"1": 240000, "2": 130000.5, "4": 81000}
	if len(s.IngestNsPerOpByWorkers) != len(want) {
		t.Fatalf("worker pivot: %v", s.IngestNsPerOpByWorkers)
	}
	for k, v := range want {
		if s.IngestNsPerOpByWorkers[k] != v {
			t.Fatalf("workers=%s ns/op %v, want %v", k, s.IngestNsPerOpByWorkers[k], v)
		}
	}
}

func TestParseRejectsEmptyStream(t *testing.T) {
	if _, err := parse(strings.NewReader(`{"Action":"pass"}` + "\n")); err == nil {
		t.Fatal("a stream with no benchmark lines must fail")
	}
	if _, err := parse(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed events must fail")
	}
}

func TestParseBenchOutputEdgeCases(t *testing.T) {
	if _, ok := parseBenchOutput("", "ok  \tsketchtree\t1.2s"); ok {
		t.Fatal("summary line misparsed as a benchmark")
	}
	if _, ok := parseBenchOutput("", "BenchmarkX-8 \t notanumber \t 5 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
	if _, ok := parseBenchOutput("", "BenchmarkX-8 \t 10 \t 5 MB/s"); ok {
		t.Fatal("line without ns/op accepted")
	}
	r, ok := parseBenchOutput("", "BenchmarkDeep/workers=16/sub-4 \t 2 \t 7.5 ns/op")
	if !ok || r.Workers != 16 {
		t.Fatalf("nested workers sub-name: %+v ok=%v", r, ok)
	}
	if r.Params["workers"] != "16" || len(r.Params) != 1 {
		t.Fatalf("params of nested sub-name: %+v", r.Params)
	}
	// Split form: the name arrives via the Test field, and a bare
	// measurement line without one is not a benchmark.
	r, ok = parseBenchOutput("BenchmarkSplit/workers=2", "1\t 99 ns/op")
	if !ok || r.Name != "BenchmarkSplit/workers=2" || r.Workers != 2 || r.NsPerOp != 99 {
		t.Fatalf("split-form measurement: %+v ok=%v", r, ok)
	}
	if _, ok := parseBenchOutput("TestNotABench", "1\t 99 ns/op"); ok {
		t.Fatal("measurement attributed to a non-benchmark test accepted")
	}
	// Custom units alongside ns/op are tolerated and ignored.
	r, ok = parseBenchOutput("", "BenchmarkCustom-8 \t 1 \t 50 ns/op \t 463.0 patterns/tree")
	if !ok || r.NsPerOp != 50 {
		t.Fatalf("custom unit pair broke parsing: %+v ok=%v", r, ok)
	}
}

// A bench-matrix event stream: every axis arrives as a key=value
// element of the sub-benchmark name.
const matrixStream = `{"Action":"output","Test":"BenchmarkMatrixIngest/size=16/k=2/workers=1","Output":"     100\t 250000.0 ns/op\n"}
{"Action":"output","Test":"BenchmarkMatrixIngest/size=64/k=4/workers=4","Output":"      20\t 990000.0 ns/op\n"}
{"Action":"output","Test":"BenchmarkMatrixQuery/pattern=2/cache=hit","Output":"    5000\t 2900.0 ns/op\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkMatrixMerge/vstreams=59-8 \t      50\t 910000.0 ns/op\n"}
{"Action":"pass","Elapsed":0.5}
`

func TestParseMatrixStream(t *testing.T) {
	s, err := parse(strings.NewReader(matrixStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks parsed, want 4", len(s.Benchmarks))
	}
	for g, n := range map[string]int{"ingest": 2, "query": 1, "merge": 1} {
		if len(s.Matrix[g]) != n {
			t.Fatalf("matrix group %q has %d cells, want %d: %+v", g, len(s.Matrix[g]), n, s.Matrix)
		}
	}
	cell := s.Matrix["ingest"][0]
	want := map[string]string{"size": "16", "k": "2", "workers": "1"}
	if len(cell.Params) != len(want) {
		t.Fatalf("ingest cell params: %+v", cell.Params)
	}
	for k, v := range want {
		if cell.Params[k] != v {
			t.Fatalf("param %s = %q, want %q", k, cell.Params[k], v)
		}
	}
	if q := s.Matrix["query"][0]; q.Params["cache"] != "hit" || q.Params["pattern"] != "2" {
		t.Fatalf("query cell params: %+v", q.Params)
	}
	if m := s.Matrix["merge"][0]; m.Params["vstreams"] != "59" || m.NsPerOp != 910000 {
		t.Fatalf("merge cell: %+v", m)
	}
	// Matrix cells carry their worker axis in params only — the
	// ingestion pivot stays reserved for the scaling sweep.
	if s.IngestNsPerOpByWorkers != nil {
		t.Fatalf("matrix cells leaked into the worker pivot: %v", s.IngestNsPerOpByWorkers)
	}
}

func TestMatrixGroup(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkMatrixIngest/size=16": "ingest",
		"BenchmarkMatrixMerge":          "merge",
		"BenchmarkMatrixQuery/cache=x":  "query",
	} {
		g, ok := matrixGroup(name)
		if !ok || g != want {
			t.Errorf("matrixGroup(%q) = %q, %v; want %q", name, g, ok, want)
		}
	}
	for _, name := range []string{"BenchmarkIngestParallel/workers=1", "BenchmarkMatrix", "BenchmarkEstimateOrdered"} {
		if g, ok := matrixGroup(name); ok {
			t.Errorf("matrixGroup(%q) = %q, want no group", name, g)
		}
	}
}

func summaryOf(rs ...Result) Summary { return Summary{Benchmarks: rs} }

func TestCheckVerdicts(t *testing.T) {
	old := summaryOf(
		Result{Name: "BenchmarkA", NsPerOp: 1000},
		Result{Name: "BenchmarkB", NsPerOp: 1000},
		Result{Name: "BenchmarkGone", NsPerOp: 50},
	)
	cur := summaryOf(
		Result{Name: "BenchmarkA", NsPerOp: 1240}, // +24%: within threshold
		Result{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: regression
		Result{Name: "BenchmarkNew", NsPerOp: 10},
	)
	var buf strings.Builder
	regressed := check(old, cur, 1.25, &buf)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regressed)
	}
	out := buf.String()
	for _, want := range []string{
		"OK    BenchmarkA", "SLOW  BenchmarkB",
		"NEW   BenchmarkNew", "GONE  BenchmarkGone",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCheckImprovementNeverFails(t *testing.T) {
	old := summaryOf(Result{Name: "BenchmarkA", NsPerOp: 1000})
	cur := summaryOf(Result{Name: "BenchmarkA", NsPerOp: 10})
	var buf strings.Builder
	if regressed := check(old, cur, 1.25, &buf); len(regressed) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regressed)
	}
}

func TestCheckThresholdBoundary(t *testing.T) {
	old := summaryOf(Result{Name: "BenchmarkA", NsPerOp: 100})
	cur := summaryOf(Result{Name: "BenchmarkA", NsPerOp: 125})
	var buf strings.Builder
	// Exactly at the threshold is not a regression; strictly above is.
	if regressed := check(old, cur, 1.25, &buf); len(regressed) != 0 {
		t.Fatalf("ratio == threshold flagged: %v", regressed)
	}
	cur.Benchmarks[0].NsPerOp = 126
	if regressed := check(old, cur, 1.25, &buf); len(regressed) != 1 {
		t.Fatal("ratio just above threshold not flagged")
	}
}

func writeSummary(t *testing.T, path string, s Summary) {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := dir+"/old.json", dir+"/new.json"
	writeSummary(t, oldPath, summaryOf(Result{Name: "BenchmarkA", NsPerOp: 1000}))

	var out, errOut strings.Builder
	writeSummary(t, newPath, summaryOf(Result{Name: "BenchmarkA", NsPerOp: 1100}))
	if code := run([]string{"-check", oldPath, newPath}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("within-threshold check exited %d: %s", code, errOut.String())
	}

	writeSummary(t, newPath, summaryOf(Result{Name: "BenchmarkA", NsPerOp: 2000}))
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", oldPath, newPath}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("2x regression exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "BenchmarkA") {
		t.Errorf("stderr does not name the regressed benchmark: %s", errOut.String())
	}

	// A tighter threshold flips the verdict for a small regression.
	writeSummary(t, newPath, summaryOf(Result{Name: "BenchmarkA", NsPerOp: 1100}))
	if code := run([]string{"-check", "-threshold", "1.05", oldPath, newPath}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("threshold 1.05 on +10%% exited %d, want 1", code)
	}
}

func TestRunCheckUsageErrors(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.json"
	writeSummary(t, good, summaryOf(Result{Name: "BenchmarkA", NsPerOp: 1}))
	cases := [][]string{
		{"-check", good},                          // one file
		{"-check", good, dir + "/missing.json"},   // unreadable
		{"-check", "-threshold", "0", good, good}, // bad threshold
		{"-check", good, good, "extra"},           // too many files
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, strings.NewReader(""), &out, &errOut); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}

func TestRunSummarizeMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(stream), &out, &errOut); code != 0 {
		t.Fatalf("summarize exited %d: %s", code, errOut.String())
	}
	var s Summary
	if err := json.Unmarshal([]byte(out.String()), &s); err != nil {
		t.Fatalf("output is not a summary: %v", err)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("summarized %d benchmarks, want 4", len(s.Benchmarks))
	}
}
