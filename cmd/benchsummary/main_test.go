package main

import (
	"strings"
	"testing"
)

// A realistic slice of `go test -json -bench` output: benchmark result
// lines arrive as output events interleaved with run/pass events and
// non-benchmark chatter.
const stream = `{"Action":"run","Test":"BenchmarkIngestParallel"}
{"Action":"output","Output":"goos: linux\n"}
{"Action":"output","Test":"BenchmarkIngestParallel/workers=1","Output":"BenchmarkIngestParallel/workers=1-8 \n"}
{"Action":"output","Test":"BenchmarkIngestParallel/workers=1","Output":"       3\t 240000.0 ns/op\n"}
{"Action":"output","Test":"BenchmarkIngestParallel/workers=2","Output":"       5\t 130000.5 ns/op\n"}
{"Action":"output","Output":"BenchmarkIngestParallel/workers=4-8 \t       9\t  81000.0 ns/op\n"}
{"Action":"output","Output":"BenchmarkEstimateOrdered-8 \t    1000\t    1234 ns/op\t      16 B/op\t       2 allocs/op\n"}
{"Action":"output","Output":"PASS\n"}
{"Action":"pass","Elapsed":1.2}
`

func TestParseSummarizesStream(t *testing.T) {
	s, err := parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks parsed, want 4: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	first := s.Benchmarks[0]
	if first.Name != "BenchmarkIngestParallel/workers=1" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Iterations != 3 || first.NsPerOp != 240000 || first.Workers != 1 {
		t.Fatalf("first result: %+v", first)
	}
	last := s.Benchmarks[3]
	if last.Name != "BenchmarkEstimateOrdered" || last.Workers != 0 {
		t.Fatalf("non-sweep benchmark: %+v", last)
	}
	if last.BytesPerOp != 16 || last.AllocsOp != 2 {
		t.Fatalf("extra unit pairs not parsed: %+v", last)
	}
	// The worker pivot holds exactly the sweep results.
	want := map[string]float64{"1": 240000, "2": 130000.5, "4": 81000}
	if len(s.IngestNsPerOpByWorkers) != len(want) {
		t.Fatalf("worker pivot: %v", s.IngestNsPerOpByWorkers)
	}
	for k, v := range want {
		if s.IngestNsPerOpByWorkers[k] != v {
			t.Fatalf("workers=%s ns/op %v, want %v", k, s.IngestNsPerOpByWorkers[k], v)
		}
	}
}

func TestParseRejectsEmptyStream(t *testing.T) {
	if _, err := parse(strings.NewReader(`{"Action":"pass"}` + "\n")); err == nil {
		t.Fatal("a stream with no benchmark lines must fail")
	}
	if _, err := parse(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed events must fail")
	}
}

func TestParseBenchOutputEdgeCases(t *testing.T) {
	if _, ok := parseBenchOutput("", "ok  \tsketchtree\t1.2s"); ok {
		t.Fatal("summary line misparsed as a benchmark")
	}
	if _, ok := parseBenchOutput("", "BenchmarkX-8 \t notanumber \t 5 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
	if _, ok := parseBenchOutput("", "BenchmarkX-8 \t 10 \t 5 MB/s"); ok {
		t.Fatal("line without ns/op accepted")
	}
	r, ok := parseBenchOutput("", "BenchmarkDeep/workers=16/sub-4 \t 2 \t 7.5 ns/op")
	if !ok || r.Workers != 16 {
		t.Fatalf("nested workers sub-name: %+v ok=%v", r, ok)
	}
	// Split form: the name arrives via the Test field, and a bare
	// measurement line without one is not a benchmark.
	r, ok = parseBenchOutput("BenchmarkSplit/workers=2", "1\t 99 ns/op")
	if !ok || r.Name != "BenchmarkSplit/workers=2" || r.Workers != 2 || r.NsPerOp != 99 {
		t.Fatalf("split-form measurement: %+v ok=%v", r, ok)
	}
	if _, ok := parseBenchOutput("TestNotABench", "1\t 99 ns/op"); ok {
		t.Fatal("measurement attributed to a non-benchmark test accepted")
	}
	// Custom units alongside ns/op are tolerated and ignored.
	r, ok = parseBenchOutput("", "BenchmarkCustom-8 \t 1 \t 50 ns/op \t 463.0 patterns/tree")
	if !ok || r.NsPerOp != 50 {
		t.Fatalf("custom unit pair broke parsing: %+v ok=%v", r, ok)
	}
}
