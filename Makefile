# Verification entry points. `make verify` is the PR gate: formatting,
# vet, the project analyzers (sketchlint), the full test suite, the
# race detector over the concurrent code (Safe, Ingestor), and a
# 1-iteration benchmark smoke so the bench harness cannot rot.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify fmt vet lint test race bench bench-matrix bench-baseline bench-smoke cluster-smoke window-smoke fuzz-smoke

verify: fmt vet lint test race bench-smoke cluster-smoke window-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

# Standard vet, plus a restricted pass that widens unusedresult beyond
# its default function list (pure constructors whose dropped result is
# always a bug).
vet:
	$(GO) vet ./...
	$(GO) vet -unreachable -unusedresult \
		-unusedresult.funcs='errors.New,fmt.Errorf,fmt.Sprint,fmt.Sprintf,sort.Reverse' ./...

# Project-specific invariants: Safe-wrapper parity, serialization
# determinism, atomics discipline, lock discipline, fuzzer wiring.
# `go run ./cmd/sketchlint -list` describes the analyzers; intentional
# violations carry //lint:allow <analyzer> <reason> in source.
# The budget pins the lint step's cost: module load plus all analyzers
# (including the interprocedural call-graph build) must finish within
# it, or the run fails with exit 3. Raise it deliberately, not by
# letting the linter creep.
LINT_BUDGET ?= 60s

lint:
	$(GO) run ./cmd/sketchlint -budget $(LINT_BUDGET)

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ingestion and query benchmarks, one iteration each. The raw go-test
# JSON event stream lands in BENCH_raw.json; BENCH_ingest.json is the
# summarized form (ns/op per benchmark, pivoted by worker count for the
# ingestion scaling sweep) produced by cmd/benchsummary.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestParallel|BenchmarkStreamUpdateThroughput|BenchmarkEstimateOrdered' \
		-benchtime 1x -json . > BENCH_raw.json
	@grep '"Action":"pass"' BENCH_raw.json >/dev/null || \
		{ echo "bench run failed; see BENCH_raw.json"; exit 1; }
	$(GO) run ./cmd/benchsummary < BENCH_raw.json > BENCH_ingest.json
	@echo "wrote BENCH_ingest.json (summary; raw events in BENCH_raw.json)"

# The structured bench matrix: ingest (tree size × k × workers), query
# (pattern size × plan-cache hit/miss), and merge (virtual streams),
# summarized with per-axis params and a matrix section by
# cmd/benchsummary. CI compares BENCH_matrix.json against the
# committed testdata/bench/BENCH_baseline.json (warn-only).
bench-matrix:
	$(GO) test -run '^$$' -bench 'BenchmarkMatrix' -benchtime 1x -json . > BENCH_matrix_raw.json
	@grep '"Action":"pass"' BENCH_matrix_raw.json >/dev/null || \
		{ echo "bench-matrix run failed; see BENCH_matrix_raw.json"; exit 1; }
	$(GO) run ./cmd/benchsummary < BENCH_matrix_raw.json > BENCH_matrix.json
	@echo "wrote BENCH_matrix.json (summary; raw events in BENCH_matrix_raw.json)"

# Refresh the committed regression baseline from a fresh matrix run.
# Run on a quiet machine, eyeball the diff, and commit the result.
bench-baseline: bench-matrix
	cp BENCH_matrix.json testdata/bench/BENCH_baseline.json
	@echo "refreshed testdata/bench/BENCH_baseline.json"

# One iteration of the headline benchmarks plus one cell per matrix
# axis: proves the bench harness still compiles and runs, without the
# minutes-long paper-scale sweeps. (The matrix cells are separate
# invocations because go test splits -bench patterns on every slash,
# so per-cell selectors cannot be |-combined.)
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestParallel|BenchmarkEstimateOrdered' -benchtime 1x . >/dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkMatrixIngest/size=16/k=2/workers=1' -benchtime 1x . >/dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkMatrixQuery/pattern=2/cache=hit' -benchtime 1x . >/dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkMatrixMerge/vstreams=1' -benchtime 1x . >/dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkMatrixWindow/slices=4/every=8' -benchtime 1x . >/dev/null

# The cluster-mode end-to-end tests under the race detector: three
# shard daemons plus a coordinator started through the real CLI entry
# point, checking routed ingest, bit-identical merged answers, and
# stale-slice degradation when a shard dies. CLUSTER_STATUS_OUT makes
# the test persist the final GET /cluster JSON (CI uploads it as an
# artifact).
cluster-smoke:
	CLUSTER_STATUS_OUT=$(CURDIR)/cluster_status.json \
	DEBUG_REQUESTS_OUT=$(CURDIR)/debug_requests.json \
		$(GO) test -race -count=1 -run '^TestCluster' ./cmd/sketchtreed

# The sliding-window end-to-end suite under the race detector: the
# windowed daemon through the real CLI entry point (ingest, advance,
# GET /window provenance) plus the windowed-vs-fresh bit-identity
# equivalence suite, verbosely logged. WINDOW_STATUS_OUT persists the
# final GET /window JSON and window_equivalence.log captures the
# equivalence run (CI uploads both as artifacts).
window-smoke:
	WINDOW_STATUS_OUT=$(CURDIR)/window_status.json \
		$(GO) test -race -count=1 -run '^TestWindowDaemon' ./cmd/sketchtreed
	$(GO) test -count=1 -run '^TestWindowEquivalenceRandom$$' -v . > window_equivalence.log
	@echo "wrote window_status.json and window_equivalence.log"

# Short coverage-guided runs of every fuzz target (FUZZTIME each).
# Seed corpora live under testdata/fuzz/<FuzzName>/; a crasher found
# here is written there too — commit it as a regression test.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParsePattern$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzRestore$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzWindowAdvance$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseSexp$$' -fuzztime $(FUZZTIME) ./internal/tree
	$(GO) test -run '^$$' -fuzz '^FuzzParseXML$$' -fuzztime $(FUZZTIME) ./internal/tree
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/prufer
	$(GO) test -run '^$$' -fuzz '^FuzzReconstruct$$' -fuzztime $(FUZZTIME) ./internal/prufer
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyzers$$' -fuzztime $(FUZZTIME) ./internal/analysis
