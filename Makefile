# Verification entry points. `make verify` is the PR gate: formatting,
# vet, the full test suite, and the race detector over the concurrent
# code (Safe, Ingestor).

GO ?= go

.PHONY: verify fmt vet test race bench

verify: fmt vet test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Parallel-ingestion scaling (meaningful on multi-core hardware).
bench:
	$(GO) test -run '^$$' -bench BenchmarkIngestParallel -benchtime 2s .
