package sketchtree

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

const statsForest = `<dblp>
	<article><author>9 jane</author><title>9 café</title></article>
	<article><author>9 joe</author></article>
	<inproceedings><author>9 jane</author><booktitle>9 icde</booktitle></inproceedings>
	<article><author>9 ann</author><year>1998</year></article>
</dblp>`

// The observability counters must agree with the engine's own
// accounting, with and without removals.
func TestStatsMatchesProcessedSequential(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddXMLForest(strings.NewReader(statsForest)); err != nil {
		t.Fatal(err)
	}
	extra := NewTree(Pattern("article", Pattern("author")))
	if err := st.AddTree(extra); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveTree(extra); err != nil {
		t.Fatal(err)
	}

	s := st.Stats()
	if s.Trees != st.TreesProcessed() {
		t.Errorf("Stats.Trees = %d, TreesProcessed = %d", s.Trees, st.TreesProcessed())
	}
	if s.Patterns != st.PatternsProcessed() {
		t.Errorf("Stats.Patterns = %d, PatternsProcessed = %d", s.Patterns, st.PatternsProcessed())
	}
	if s.Removes != 1 {
		t.Errorf("Stats.Removes = %d, want 1", s.Removes)
	}
	// Timers were never enabled: no stage may carry time.
	for i := range s.Stages {
		if s.Stages[i].Nanos != 0 {
			t.Errorf("stage %v carries %d ns with timers off", Stage(i), s.Stages[i].Nanos)
		}
	}
}

// The same parity must hold through the parallel path: the live shard
// aggregate during ingestion, and the merged synopsis after Close.
func TestStatsMatchesProcessedParallel(t *testing.T) {
	cfg := testConfig()
	stream := ingestStream(t, 200)

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range stream {
		if err := seq.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}

	in, err := NewIngestor(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(stream); i += 3 {
				if err := in.Add(stream[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	// Producers are done but trees may still sit in the queue, so the
	// live aggregate is a lower bound on the stream; what it does
	// guarantee is that the per-shard split sums to it exactly.
	live := in.Stats()
	if live.Snapshot.Trees <= 0 || live.Snapshot.Trees > int64(len(stream)) {
		t.Errorf("live aggregate trees = %d, want within (0, %d]", live.Snapshot.Trees, len(stream))
	}
	var shardTrees, shardPatterns int64
	for _, sh := range live.Shards {
		shardTrees += sh.Trees
		shardPatterns += sh.Patterns
	}
	if shardTrees != live.Snapshot.Trees || shardPatterns != live.Snapshot.Patterns {
		t.Errorf("shard sums (%d trees, %d patterns) != aggregate (%d, %d)",
			shardTrees, shardPatterns, live.Snapshot.Trees, live.Snapshot.Patterns)
	}
	if live.QueueCapacity <= 0 || live.QueueHighWater > live.QueueCapacity {
		t.Errorf("queue telemetry out of range: %+v", live)
	}

	merged, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	s := merged.Stats()
	if s.Trees != merged.TreesProcessed() || s.Trees != seq.TreesProcessed() {
		t.Errorf("merged Stats.Trees = %d, TreesProcessed = %d, sequential = %d",
			s.Trees, merged.TreesProcessed(), seq.TreesProcessed())
	}
	if s.Patterns != merged.PatternsProcessed() || s.Patterns != seq.PatternsProcessed() {
		t.Errorf("merged Stats.Patterns = %d, TreesProcessed = %d, sequential = %d",
			s.Patterns, merged.PatternsProcessed(), seq.PatternsProcessed())
	}
}

// Instrumentation must be invisible in the synopsis: enabling timers
// (sequentially or on a parallel ingestor) cannot change a single bit
// of the serialized state.
func TestMetricsDoNotPerturbSerialization(t *testing.T) {
	cfg := testConfig()
	stream := ingestStream(t, 120)

	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	timed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	timed.EnableMetrics(true)
	for _, tr := range stream {
		if err := plain.AddTree(tr); err != nil {
			t.Fatal(err)
		}
		if err := timed.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	q := Pattern("S", Pattern("NP"))
	if _, err := timed.CountOrdered(q); err != nil {
		t.Fatal(err)
	}

	a, err := plain.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := timed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("enabling metrics changed the serialized synopsis")
	}

	in, err := NewIngestor(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.EnableMetrics(true)
	for _, tr := range stream {
		if err := in.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	c, err := merged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("instrumented parallel ingestion is not bit-identical to sequential")
	}
	// The merged snapshot must carry the shards' stage work (enum ran on
	// the workers) and the merge stage itself.
	s := merged.Stats()
	if s.Stage(StageEnum).Count == 0 || s.Stage(StageEnum).Nanos <= 0 {
		t.Errorf("merged snapshot lost shard enum timings: %+v", s.Stage(StageEnum))
	}
	if s.Stage(StageMerge).Count != 2 {
		t.Errorf("merge stage count = %d, want 2 (3 shards)", s.Stage(StageMerge).Count)
	}
}

// Query accounting: successes land in the latency histogram, failures
// only in the error counter, and the untimed path still counts.
func TestQueryStatsRecorded(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddXMLForest(strings.NewReader(statsForest)); err != nil {
		t.Fatal(err)
	}
	// Untimed query first: counted, no histogram entry.
	if _, err := st.CountOrdered(Pattern("article", Pattern("author"))); err != nil {
		t.Fatal(err)
	}
	st.EnableMetrics(true)
	if _, err := st.CountOrdered(Pattern("article", Pattern("author"))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CountUnordered(Pattern("article", Pattern("author"))); err != nil {
		t.Fatal(err)
	}
	// A pattern beyond MaxPatternEdges fails and must not enter the
	// histogram.
	deep := Pattern("a", Pattern("b", Pattern("c", Pattern("d", Pattern("e")))))
	if _, err := st.CountOrdered(deep); err == nil {
		t.Fatal("oversized pattern must fail")
	}

	s := st.Stats()
	if s.Queries.Count != 4 || s.Queries.Errors != 1 {
		t.Errorf("queries = %d errors = %d, want 4 and 1", s.Queries.Count, s.Queries.Errors)
	}
	if got := s.Queries.Timed(); got != 2 {
		t.Errorf("timed queries = %d, want 2 (untimed and failed excluded)", got)
	}
	if s.Queries.Nanos <= 0 {
		t.Error("timed queries carry no latency")
	}
	// AddXMLForest ran before timers were enabled; parse must be
	// untimed. Flip them on and parse once more: now it must register.
	if got := s.Stage(StageParse); got.Nanos != 0 {
		t.Errorf("parse stage timed before EnableMetrics: %+v", got)
	}
	if err := st.AddXMLForest(strings.NewReader(statsForest)); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Stage(StageParse); got.Count != 4 || got.Nanos <= 0 {
		t.Errorf("parse stage after EnableMetrics = %+v, want 4 timed documents", got)
	}
}

// Safe wrapper: Stats and EnableMetrics work lock-free alongside
// writers, and the counters match the underlying synopsis.
func TestSafeStats(t *testing.T) {
	s, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableMetrics(true)
	if err := s.AddXMLForest(strings.NewReader(statsForest)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CountOrdered(Pattern("article", Pattern("author"))); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	if snap.Trees != 4 || snap.Queries.Count != 1 || snap.Queries.Timed() != 1 {
		t.Errorf("safe stats: %+v", snap)
	}
	if snap.Stage(StageParse).Count != 4 {
		t.Errorf("safe parse stage: %+v", snap.Stage(StageParse))
	}
}

// A restored synopsis reports the persisted totals.
func TestStatsSurviveSaveLoad(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddXMLForest(strings.NewReader(statsForest)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := loaded.Stats()
	if s.Trees != st.TreesProcessed() || s.Patterns != st.PatternsProcessed() {
		t.Errorf("restored stats (%d trees, %d patterns) != persisted (%d, %d)",
			s.Trees, s.Patterns, st.TreesProcessed(), st.PatternsProcessed())
	}
}

// The plan and publish stages introduced for tracing must record under
// EnableMetrics: plan-cache lookups on ordered/unordered queries feed
// StagePlan, and every snapshot rebuild feeds StagePublish.
func TestPlanAndPublishStagesRecorded(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	st.EnableMetrics(true)
	if err := st.AddXMLForest(strings.NewReader(statsForest)); err != nil {
		t.Fatal(err)
	}
	q := Pattern("article", Pattern("author"))
	for i := 0; i < 2; i++ { // miss, then hit — both pass through the plan stage
		if _, err := st.CountOrdered(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CountUnordered(q); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Stage(StagePlan); got.Count < 3 || got.Nanos <= 0 {
		t.Errorf("StagePlan after 3 plan lookups = %+v, want count >= 3 with time", got)
	}

	safe, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	safe.EnableMetrics(true)
	if err := safe.EnableSnapshots(SnapshotPolicy{EveryTrees: 1}); err != nil {
		t.Fatal(err)
	}
	defer safe.DisableSnapshots()
	if err := safe.AddTree(NewTree(q)); err != nil {
		t.Fatal(err)
	}
	if got := safe.Stats().Stage(StagePublish); got.Count == 0 || got.Nanos <= 0 {
		t.Errorf("StagePublish after snapshot refresh = %+v, want count > 0 with time", got)
	}
}
