// Package sketchtree is a Go implementation of SketchTree (Rao & Moon:
// "Approximate Tree Pattern Counts over Streaming Labeled Trees"), an
// online approximation algorithm that counts tree pattern occurrences
// over a stream of labeled trees — XML documents, parse trees,
// hierarchical records — in a single pass using a small, fixed amount
// of memory.
//
// # How it works
//
// For every tree arriving on the stream, SketchTree enumerates all
// ordered tree patterns with at most k edges (EnumTree), maps each
// pattern to a one-dimensional integer via its extended Prüfer
// sequence and a Rabin fingerprint, and folds the integer into AMS
// sketches — randomized linear projections of the pattern-frequency
// vector. Any pattern count can later be estimated from the sketches
// with provable (ε, δ) error bounds. Two refinements shrink the
// estimator variance: the value stream is partitioned into virtual
// streams by residue modulo a prime, and the top-k most frequent
// patterns are tracked and deleted from the sketches (their counts are
// compensated at query time).
//
// # Supported queries
//
//   - COUNT_ord(Q): occurrences of an ordered labeled pattern
//     (CountOrdered).
//   - COUNT(Q): unordered occurrences, i.e. the total over all ordered
//     arrangements (CountUnordered).
//   - Total frequency of a set of distinct patterns, with a tighter
//     bound than summing individual estimates (CountOrderedSet).
//   - Arbitrary +, −, × expressions over pattern counts
//     (EstimateExpression); products require configuring higher ξ
//     independence.
//   - Wildcard (*) and descendant (//) queries resolved against an
//     online structural summary (CountExtended), when enabled.
//
// # Quick start
//
//	st, _ := sketchtree.New(sketchtree.DefaultConfig())
//	_ = st.AddXML(strings.NewReader("<a><b/><c/></a>"))
//	q := sketchtree.Pattern("a", sketchtree.Pattern("b"))
//	count, _ := st.CountOrdered(q)
//
// See the examples directory for realistic streaming scenarios
// (linguistics over treebanks, bibliography selectivity estimation,
// probabilistic-grammar scoring).
package sketchtree
