package sketchtree

import (
	"fmt"
	"time"

	"sketchtree/internal/obs"
	"sketchtree/internal/window"
)

// WindowPolicy configures sliding-window counting on a Safe: the ring
// capacity and the advance cadences (document count and/or wall
// clock). See internal/window.Policy for field semantics.
type WindowPolicy = window.Policy

// WindowStats is the sliding-window section of Stats: per-slice
// occupancy and age, merged-state provenance, and the
// advance/expire/rebuild counters.
type WindowStats = obs.WindowSnapshot

// DefaultWindowRefreshEveryTrees is the merged-rebuild cadence
// selected by a zero WindowPolicy.RefreshEveryTrees.
const DefaultWindowRefreshEveryTrees = window.DefaultRefreshEveryTrees

// winServing caches the SketchTree wrapper around the window's
// published merged engine, keyed by the Merged generation pointer, so
// the lock-free query path does not allocate per request.
type winServing struct {
	m  *window.Merged
	st *SketchTree
}

// EnableWindow switches Safe from landmark ("counts since the
// beginning") to sliding-window semantics: updates are folded into a
// ring of per-slice sub-synopses, the window advances per the policy
// (expiring the oldest slice when the ring is full), and every
// Count*/Estimate* read is answered lock-free from a published merge
// of the live slices. Because AMS synopses are linear, the merged
// state is bit-identical to a fresh engine fed only the live
// documents, so answers carry the paper's landmark guarantees over the
// window's suffix of the stream.
//
// The window must be enabled before any tree is added, and requires a
// mergeable configuration: Config.TopK 0, Config.TrackExact false, no
// auditor attached (EnableAudit and EnableWindow are mutually
// exclusive). Window serving publishes its own merged snapshot, so it
// is also mutually exclusive with EnableSnapshots.
//
// Enabling twice is an error; call DisableWindow first to change the
// policy.
func (s *Safe) EnableWindow(p WindowPolicy) error {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	if s.win.Load() != nil {
		return fmt.Errorf("sketchtree: window already enabled")
	}
	if s.snapEvery.Load() != 0 {
		return fmt.Errorf("sketchtree: window serving and snapshot serving are mutually exclusive (the window publishes its own merged snapshot)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := window.New(s.st.e, p, nil)
	if err != nil {
		return err
	}
	if p.SliceDur > 0 {
		stop, done := make(chan struct{}), make(chan struct{})
		s.winStop, s.winDone = stop, done
		go windowLoop(w, p.SliceDur, stop, done)
	}
	s.win.Store(w)
	return nil
}

// DisableWindow stops sliding-window serving: the background advancer
// (if any) is joined and reads return to the landmark synopsis, which
// is empty — the window's slices are discarded, not folded back (an
// expired slice cannot be distinguished from a live one after the
// fact). A no-op when the window is not enabled.
func (s *Safe) DisableWindow() {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	if s.win.Swap(nil) == nil {
		return
	}
	if s.winStop != nil {
		close(s.winStop)
		<-s.winDone
		s.winStop, s.winDone = nil, nil
	}
	s.winServing.Store(nil)
}

// WindowEnabled reports whether sliding-window serving is on.
func (s *Safe) WindowEnabled() bool { return s.win.Load() != nil }

// AdvanceWindow seals the current slice and starts a fresh one
// immediately, regardless of the policy cadences — the manual-advance
// entry point (and the only one when both cadences are zero). The
// merged serving state is rebuilt before returning.
func (s *Safe) AdvanceWindow() error {
	w := s.win.Load()
	if w == nil {
		return fmt.Errorf("sketchtree: window not enabled")
	}
	return w.Advance()
}

// RefreshWindow rebuilds the published merged window from the live
// slices immediately, regardless of the rebuild cadence — useful after
// a bulk load to expose the new state without waiting out the policy.
func (s *Safe) RefreshWindow() error {
	w := s.win.Load()
	if w == nil {
		return fmt.Errorf("sketchtree: window not enabled")
	}
	return w.Refresh()
}

// WindowStats reports the sliding-window section of the observability
// snapshot. ok is false when the window is not enabled. Lock-free.
func (s *Safe) WindowStats() (ws *WindowStats, ok bool) {
	w := s.win.Load()
	if w == nil {
		return nil, false
	}
	return w.Status(), true
}

// windowTree gates the lock-free window read path: the SketchTree
// wrapper around the published merged engine, or nil when the window
// is not enabled. The wrapper is cached per published generation; the
// publication-race store is idempotent (both wrappers freeze the same
// engine).
func (s *Safe) windowTree() *SketchTree {
	w := s.win.Load()
	if w == nil {
		return nil
	}
	m := w.Merged()
	if m == nil {
		return nil
	}
	if c := s.winServing.Load(); c != nil && c.m == m {
		return c.st
	}
	st := &SketchTree{e: m.Eng}
	s.winServing.Store(&winServing{m: m, st: st})
	return st
}

// windowLoop is the clock-cadence advancer: it ticks at a quarter of
// the slice duration (so an idle stream's slices still expire within
// ~1.25× their nominal age) and advances every slice that has come
// due.
func windowLoop(w *window.Windowed, dur time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := dur / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_ = w.AdvanceDue()
		}
	}
}
