package prufer_test

import (
	"fmt"

	"sketchtree/internal/prufer"
	"sketchtree/internal/tree"
)

// Paper Example 1: the patterns of Figure 3 and their extended Prüfer
// sequences.
func ExampleOfNode() {
	t1 := tree.T("X", tree.T("Y", tree.T("Z"))) // the chain X→Y→Z
	t2 := tree.T("X", tree.T("Y"), tree.T("Z")) // X with children Y, Z
	fmt.Println(prufer.OfNode(t1))
	fmt.Println(prufer.OfNode(t2))
	// Output:
	// LPS: Z Y X | NPS: 2 3 4
	// LPS: Y X Z X | NPS: 2 5 4 5
}

func ExampleReconstruct() {
	seq := prufer.Sequence{LPS: []string{"Z", "Y", "X"}, NPS: []int{2, 3, 4}}
	t, _ := prufer.Reconstruct(seq)
	fmt.Println(t)
	// Output:
	// (X (Y (Z)))
}
