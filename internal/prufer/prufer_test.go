package prufer

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"sketchtree/internal/tree"
)

// Paper Example 1, Figure 3: the chain X -> Y -> Z has LPS = Z Y X and
// NPS = 2 3 4 after extension.
func TestPaperExample1Chain(t *testing.T) {
	t1 := tree.T("X", tree.T("Y", tree.T("Z")))
	s := OfNode(t1)
	if got, want := s.LPS, []string{"Z", "Y", "X"}; !reflect.DeepEqual(got, want) {
		t.Errorf("LPS = %v, want %v", got, want)
	}
	if got, want := s.NPS, []int{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("NPS = %v, want %v", got, want)
	}
}

// Paper Example 1, Figure 3: X with children Y and Z has LPS = Y X Z X
// and NPS = 2 5 4 5 after extension.
func TestPaperExample1Branch(t *testing.T) {
	t2 := tree.T("X", tree.T("Y"), tree.T("Z"))
	s := OfNode(t2)
	if got, want := s.LPS, []string{"Y", "X", "Z", "X"}; !reflect.DeepEqual(got, want) {
		t.Errorf("LPS = %v, want %v", got, want)
	}
	if got, want := s.NPS, []int{2, 5, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("NPS = %v, want %v", got, want)
	}
}

func TestSingleNode(t *testing.T) {
	s := OfNode(tree.T("A"))
	if got, want := s.LPS, []string{"A"}; !reflect.DeepEqual(got, want) {
		t.Errorf("LPS = %v, want %v", got, want)
	}
	if got, want := s.NPS, []int{2}; !reflect.DeepEqual(got, want) {
		t.Errorf("NPS = %v, want %v", got, want)
	}
}

func TestNilInputs(t *testing.T) {
	if OfNode(nil).Len() != 0 {
		t.Error("nil node must give empty sequence")
	}
	if Of(nil).Len() != 0 {
		t.Error("nil tree must give empty sequence")
	}
	if PlainOfNode(nil).Len() != 0 {
		t.Error("nil node must give empty plain sequence")
	}
}

func TestExtendedLengthIsNodesPlusLeavesMinusOne(t *testing.T) {
	// Extended tree has size(T) + leaves(T) nodes, so the sequence has
	// size(T) + leaves(T) - 1 entries.
	root := tree.T("A", tree.T("B", tree.T("D"), tree.T("E")), tree.T("C"))
	s := OfNode(root)
	if got := s.Len(); got != 5+3-1 {
		t.Errorf("Len = %d, want 7", got)
	}
}

func TestLeafLabelsAppearInLPS(t *testing.T) {
	root := tree.T("A", tree.T("B"), tree.T("C", tree.T("D")))
	s := OfNode(root)
	seen := map[string]bool{}
	for _, l := range s.LPS {
		seen[l] = true
	}
	for _, leaf := range []string{"B", "D"} {
		if !seen[leaf] {
			t.Errorf("leaf label %s missing from LPS %v", leaf, s.LPS)
		}
	}
}

func TestPlainOf(t *testing.T) {
	// Plain (non-extended) sequence of the branch X(Y,Z): postorder
	// Y=1, Z=2, X=3; parents of 1 and 2 are both X=3.
	s := PlainOfNode(tree.T("X", tree.T("Y"), tree.T("Z")))
	if got, want := s.LPS, []string{"X", "X"}; !reflect.DeepEqual(got, want) {
		t.Errorf("LPS = %v, want %v", got, want)
	}
	if got, want := s.NPS, []int{3, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("NPS = %v, want %v", got, want)
	}
	if got := PlainOfNode(tree.T("A")).Len(); got != 0 {
		t.Errorf("plain sequence of single node has length %d, want 0", got)
	}
}

func TestOfDoesNotMutateInput(t *testing.T) {
	root := tree.T("A", tree.T("B"))
	before := root.String()
	OfNode(root)
	if root.String() != before {
		t.Error("OfNode must not mutate the input tree")
	}
	if root.Size() != 2 {
		t.Error("dummy nodes leaked into the input tree")
	}
}

func TestReconstructKnown(t *testing.T) {
	for _, root := range []*tree.Node{
		tree.T("X", tree.T("Y", tree.T("Z"))),
		tree.T("X", tree.T("Y"), tree.T("Z")),
		tree.T("A"),
		tree.T("S", tree.T("NP", tree.T("DT"), tree.T("NN")), tree.T("VP")),
	} {
		s := OfNode(root)
		got, err := Reconstruct(s)
		if err != nil {
			t.Fatalf("Reconstruct(%v): %v", s, err)
		}
		if !tree.Equal(root, got.Root) {
			t.Errorf("round trip failed: %s -> %s", root, got.Root)
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	cases := []Sequence{
		{},                                          // empty
		{LPS: []string{"A"}, NPS: []int{1, 2}},      // length mismatch
		{LPS: []string{"A"}, NPS: []int{1}},         // parent not > child
		{LPS: []string{"A"}, NPS: []int{3}},         // parent out of range
		{LPS: []string{"A", "B"}, NPS: []int{3, 3}}, // node 3 labeled twice
		{LPS: []string{"A", "B"}, NPS: []int{2, 3}}, // ok shape but node 2 labeled A, child 1 dummy; root 3 labeled B; valid! (see below)
	}
	for i, s := range cases[:5] {
		if _, err := Reconstruct(s); err == nil {
			t.Errorf("case %d (%v) should fail", i, s)
		}
	}
	// The last case is actually a valid chain B -> A.
	got, err := Reconstruct(cases[5])
	if err != nil {
		t.Fatalf("chain case: %v", err)
	}
	if !tree.Equal(got.Root, tree.T("B", tree.T("A"))) {
		t.Errorf("chain case: got %s", got.Root)
	}
}

func TestSequenceEqualAndString(t *testing.T) {
	a := OfNode(tree.T("X", tree.T("Y")))
	b := OfNode(tree.T("X", tree.T("Y")))
	c := OfNode(tree.T("X", tree.T("Z")))
	if !a.Equal(b) {
		t.Error("identical trees must give equal sequences")
	}
	if a.Equal(c) {
		t.Error("different trees must give different sequences")
	}
	if a.String() != "LPS: Y X | NPS: 2 3" {
		t.Errorf("String = %q", a.String())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	seqs := []Sequence{
		OfNode(tree.T("A")),
		OfNode(tree.T("X", tree.T("Y"), tree.T("Z"))),
		OfNode(tree.T("a", tree.T(""), tree.T("long-label-with-dashes"))),
	}
	for _, s := range seqs {
		enc := s.Encode(nil)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", enc, err)
		}
		if !s.Equal(got) {
			t.Errorf("encode/decode: %v != %v", s, got)
		}
	}
}

func TestEncodeIsInjectiveOnLabelBoundaries(t *testing.T) {
	// ("AB", "C") vs ("A", "BC") must encode differently.
	a := Sequence{LPS: []string{"AB", "C"}, NPS: []int{2, 3}}
	b := Sequence{LPS: []string{"A", "BC"}, NPS: []int{2, 3}}
	if string(a.Encode(nil)) == string(b.Encode(nil)) {
		t.Error("encoding must be injective across label boundaries")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := OfNode(tree.T("X", tree.T("Y"))).Encode(nil)
	for _, bad := range [][]byte{
		nil,
		valid[:1],
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0x00),
	} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%v) should fail", bad)
		}
	}
}

func randomTree(rng *rand.Rand, n int, alphabet []string) *tree.Node {
	nodes := make([]*tree.Node, n)
	for i := range nodes {
		nodes[i] = tree.New(alphabet[rng.IntN(len(alphabet))])
	}
	for i := 1; i < n; i++ {
		nodes[rng.IntN(i)].AddChild(nodes[i])
	}
	return nodes[0]
}

// Property: Reconstruct(Of(T)) == T for random trees.
func TestQuickRoundTrip(t *testing.T) {
	alphabet := []string{"A", "B", "C", "D", "E"}
	f := func(seed uint64, size uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		root := randomTree(rng, int(size%30)+1, alphabet)
		got, err := Reconstruct(OfNode(root))
		return err == nil && tree.Equal(root, got.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: distinct ordered trees yield distinct (LPS, NPS) encodings.
func TestQuickInjective(t *testing.T) {
	alphabet := []string{"A", "B"}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		a := randomTree(rng, rng.IntN(8)+1, alphabet)
		b := randomTree(rng, rng.IntN(8)+1, alphabet)
		sa := string(OfNode(a).Encode(nil))
		sb := string(OfNode(b).Encode(nil))
		if tree.Equal(a, b) {
			return sa == sb
		}
		return sa != sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode round-trips for random trees.
func TestQuickEncodeRoundTrip(t *testing.T) {
	alphabet := []string{"NP", "VP", "S", "DT", ""}
	f := func(seed uint64, size uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		s := OfNode(randomTree(rng, int(size%20)+1, alphabet))
		got, err := Decode(s.Encode(nil))
		return err == nil && s.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOfNode(b *testing.B) {
	rng := rand.New(rand.NewPCG(42, 1))
	root := randomTree(rng, 50, []string{"A", "B", "C", "D"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OfNode(root)
	}
}

// Consistency: the extended Prüfer sequence equals the plain Prüfer
// sequence of an explicitly extended tree (dummy child attached to
// every leaf) — OfNode performs that extension virtually.
func TestQuickExtendedEqualsPlainOfExplicitExtension(t *testing.T) {
	alphabet := []string{"A", "B", "C"}
	extend := func(root *tree.Node) *tree.Node {
		c := root.Clone()
		c.Walk(func(n *tree.Node) bool {
			if n.IsLeaf() {
				n.Children = []*tree.Node{{Label: "\x00dummy"}}
				return false
			}
			return true
		})
		return c
	}
	f := func(seed uint64, size uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 15))
		root := randomTree(rng, int(size%20)+1, alphabet)
		got := OfNode(root)
		want := PlainOfNode(extend(root))
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Postorder-number sanity in the sequence: NPS entries are strictly
// greater than their positions (parents come after children in
// postorder) and at most n.
func TestQuickNPSPostorderInvariant(t *testing.T) {
	alphabet := []string{"A", "B"}
	f := func(seed uint64, size uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		s := OfNode(randomTree(rng, int(size%25)+1, alphabet))
		n := s.Len() + 1
		for i, p := range s.NPS {
			if p <= i+1 || p > n {
				return false
			}
		}
		// The last entry's parent is the root, numbered n.
		return s.NPS[s.Len()-1] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
