package prufer

import (
	"testing"

	"sketchtree/internal/tree"
)

// FuzzDecode: arbitrary bytes either fail cleanly or decode to a
// sequence that re-encodes to the same bytes.
func FuzzDecode(f *testing.F) {
	f.Add(OfNode(tree.T("A", tree.T("B"), tree.T("C"))).Encode(nil))
	f.Add(OfNode(tree.T("X")).Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x01, 'A', 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc := s.Encode(nil)
		if string(enc) != string(data) {
			t.Fatalf("re-encode mismatch: %x -> %x", data, enc)
		}
	})
}

// FuzzReconstruct: sequences with arbitrary structure either fail
// cleanly or reconstruct to a tree whose own sequence round-trips.
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte("AB"), []byte{2, 3})
	f.Add([]byte("XYZ"), []byte{2, 3, 4})
	f.Fuzz(func(t *testing.T, labels []byte, nps []byte) {
		n := len(nps)
		if n == 0 || n > 32 || len(labels) < n {
			return
		}
		s := Sequence{LPS: make([]string, n), NPS: make([]int, n)}
		for i := 0; i < n; i++ {
			s.LPS[i] = string(labels[i : i+1])
			s.NPS[i] = int(nps[i])
		}
		tr, err := Reconstruct(s)
		if err != nil {
			return
		}
		// A successfully reconstructed tree must produce a sequence
		// that reconstructs to an equal tree.
		again, err := Reconstruct(OfNode(tr.Root))
		if err != nil {
			t.Fatalf("sequence of reconstructed tree invalid: %v", err)
		}
		if !tree.Equal(tr.Root, again.Root) {
			t.Fatalf("double reconstruction differs: %s vs %s", tr.Root, again.Root)
		}
	})
}
