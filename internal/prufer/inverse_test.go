package prufer

import (
	"fmt"
	"testing"

	"sketchtree/internal/tree"
)

// chain builds a root-to-leaf path of the given depth: c0 -> c1 -> ...
func chain(depth int) *tree.Node {
	n := tree.T(fmt.Sprintf("c%d", depth-1))
	for i := depth - 2; i >= 0; i-- {
		n = tree.T(fmt.Sprintf("c%d", i), n)
	}
	return n
}

// star builds a root with the given number of leaf children.
func star(leaves int) *tree.Node {
	kids := make([]*tree.Node, leaves)
	for i := range kids {
		kids[i] = tree.T(fmt.Sprintf("l%d", i))
	}
	return tree.T("hub", kids...)
}

// comb builds a chain whose every spine node also carries one leaf —
// the shape where node-vs-leaf bookkeeping in the extended sequence is
// easiest to get wrong.
func comb(teeth int) *tree.Node {
	n := tree.T("end")
	for i := teeth - 1; i >= 0; i-- {
		n = tree.T(fmt.Sprintf("s%d", i), tree.T(fmt.Sprintf("t%d", i)), n)
	}
	return n
}

// inverseCases are the structural extremes the LPS/NPS derivation must
// survive: the 1-node tree, degenerate depth, degenerate width, and
// their mixture.
func inverseCases() []struct {
	name string
	root *tree.Node
} {
	return []struct {
		name string
		root *tree.Node
	}{
		{"single node", tree.T("only")},
		{"two node edge", tree.T("a", tree.T("b"))},
		{"deep chain", chain(200)},
		{"wide star", star(150)},
		{"comb", comb(40)},
		{"paper figure", tree.T("A", tree.T("B", tree.T("D")), tree.T("C"))},
		{"repeated labels", tree.T("x", tree.T("x", tree.T("x")), tree.T("x"))},
	}
}

// TestReconstructInverseTable: Reconstruct is a left inverse of the
// extended Prüfer derivation — Reconstruct(OfNode(t)) rebuilds t
// node-for-node, and re-deriving the sequence from the reconstruction
// is the identity on sequences.
func TestReconstructInverseTable(t *testing.T) {
	for _, tc := range inverseCases() {
		t.Run(tc.name, func(t *testing.T) {
			seq := OfNode(tc.root)
			rebuilt, err := Reconstruct(seq)
			if err != nil {
				t.Fatalf("Reconstruct: %v", err)
			}
			if !tree.Equal(tc.root, rebuilt.Root) {
				t.Fatalf("reconstruction differs:\nwant %s\ngot  %s", tc.root, rebuilt.Root)
			}
			again := OfNode(rebuilt.Root)
			if !seq.Equal(again) {
				t.Fatalf("re-derived sequence differs:\nwant %s\ngot  %s", seq, again)
			}
		})
	}
}

// TestEncodeDecodeInverseTable: Decode is a left inverse of Encode on
// the same structural extremes, and the encoding re-serializes to the
// identical byte string (canonical varints only).
func TestEncodeDecodeInverseTable(t *testing.T) {
	for _, tc := range inverseCases() {
		t.Run(tc.name, func(t *testing.T) {
			seq := OfNode(tc.root)
			enc := seq.Encode(nil)
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !seq.Equal(dec) {
				t.Fatalf("decoded sequence differs:\nwant %s\ngot  %s", seq, dec)
			}
			if again := dec.Encode(nil); string(again) != string(enc) {
				t.Fatalf("re-encode not byte-identical: %x vs %x", again, enc)
			}
		})
	}
}

// TestDecodeRejectsHostileHeaders pins the fuzz findings: a length
// header far beyond the input must fail before allocating, and padded
// (non-canonical) varints are not alternate spellings of a sequence.
func TestDecodeRejectsHostileHeaders(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"huge length header", []byte{0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0x01, 0x01, 0x01, 'A'}},
		{"non-canonical zero header", []byte{0x80, 0x00}},
		{"non-canonical label length", []byte{0x01, 0x80, 0x00, 0x01}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if s, err := Decode(tc.in); err == nil {
				t.Fatalf("Decode accepted %x as %s", tc.in, s)
			}
		})
	}
}
