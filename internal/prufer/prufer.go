// Package prufer implements the extended Prüfer sequence transformation
// of PRIX (Rao & Moon, ICDE 2004) used by SketchTree to map labeled
// trees to sequences. A tree is first extended by attaching one dummy
// child to every leaf; all nodes of the extended tree are numbered in
// postorder; the Prüfer construction then repeatedly deletes the leaf
// with the smallest number and records its parent. The recorded labels
// form the LPS (Labeled Prüfer Sequence) and the recorded postorder
// numbers form the NPS (Numbered Prüfer Sequence). Together the LPS and
// NPS uniquely identify the original labeled tree, including its leaf
// labels.
//
// For a postorder-numbered tree the deletion order is exactly
// 1, 2, ..., n-1: by the time node v is considered, all of its
// descendants (numbers < v) are gone, so v is the smallest remaining
// leaf. The sequence is therefore (parent(1), parent(2), ...,
// parent(n-1)) and can be computed in a single linear traversal without
// a priority queue.
package prufer

import (
	"encoding/binary"
	"fmt"
	"strings"

	"sketchtree/internal/tree"
)

// Sequence is the pair of Labeled and Numbered Prüfer sequences of an
// extended tree. LPS[i] is the label of the parent of the (i+1)-th
// deleted node; NPS[i] is that parent's postorder number. Both have
// length n-1 for an extended tree of n nodes.
type Sequence struct {
	LPS []string
	NPS []int
}

// Len returns the sequence length (n-1 for an extended tree of n nodes).
func (s Sequence) Len() int { return len(s.NPS) }

// Equal reports whether two sequences are identical.
func (s Sequence) Equal(o Sequence) bool {
	if len(s.LPS) != len(o.LPS) || len(s.NPS) != len(o.NPS) {
		return false
	}
	for i := range s.LPS {
		if s.LPS[i] != o.LPS[i] {
			return false
		}
	}
	for i := range s.NPS {
		if s.NPS[i] != o.NPS[i] {
			return false
		}
	}
	return true
}

// String renders the sequence in the paper's style, e.g.
// "LPS: Z Y X | NPS: 2 3 4".
func (s Sequence) String() string {
	var b strings.Builder
	b.WriteString("LPS:")
	for _, l := range s.LPS {
		b.WriteByte(' ')
		b.WriteString(l)
	}
	b.WriteString(" | NPS:")
	for _, n := range s.NPS {
		fmt.Fprintf(&b, " %d", n)
	}
	return b.String()
}

// OfNode computes the extended Prüfer sequence of the subtree rooted at
// root. The input tree is not modified; the dummy extension and the
// postorder numbering are performed virtually in a single traversal.
func OfNode(root *tree.Node) Sequence {
	if root == nil {
		return Sequence{}
	}
	// ents[i] describes extended-tree node number i+1. Dummy nodes keep
	// an empty label and never appear as parents.
	type ent struct {
		parent int // extended postorder number of the parent; 0 for root
		label  string
	}
	ents := make([]ent, 0, 2*root.Size())
	var walk func(n *tree.Node) int
	walk = func(n *tree.Node) int {
		if n.IsLeaf() {
			dummy := len(ents)
			ents = append(ents, ent{})
			self := len(ents)
			ents = append(ents, ent{label: n.Label})
			ents[dummy].parent = self + 1
			return self + 1
		}
		nums := make([]int, len(n.Children))
		for i, c := range n.Children {
			nums[i] = walk(c)
		}
		self := len(ents)
		ents = append(ents, ent{label: n.Label})
		for _, cn := range nums {
			ents[cn-1].parent = self + 1
		}
		return self + 1
	}
	walk(root)
	n := len(ents)
	s := Sequence{LPS: make([]string, n-1), NPS: make([]int, n-1)}
	for v := 1; v < n; v++ {
		p := ents[v-1].parent
		s.LPS[v-1] = ents[p-1].label
		s.NPS[v-1] = p
	}
	return s
}

// Of computes the extended Prüfer sequence of a tree.
func Of(t *tree.Tree) Sequence {
	if t == nil {
		return Sequence{}
	}
	return OfNode(t.Root)
}

// PlainOfNode computes the non-extended Prüfer sequence of the subtree
// (no dummy children added). It is shorter by the number of leaves and
// does not carry leaf labels; provided for completeness and testing.
func PlainOfNode(root *tree.Node) Sequence {
	if root == nil {
		return Sequence{}
	}
	nodes := root.Clone()
	post := nodes.AssignPostorder()
	n := len(post)
	parent := make([]int, n+1)
	label := make([]string, n+1)
	for _, v := range post {
		label[v.Postorder] = v.Label
		for _, c := range v.Children {
			parent[c.Postorder] = v.Postorder
		}
	}
	s := Sequence{LPS: make([]string, n-1), NPS: make([]int, n-1)}
	for v := 1; v < n; v++ {
		p := parent[v]
		s.LPS[v-1] = label[p]
		s.NPS[v-1] = p
	}
	return s
}

// Reconstruct rebuilds the original labeled tree from the extended
// Prüfer sequence produced by Of/OfNode. It validates structural
// consistency and returns an error for sequences that do not correspond
// to any extended postorder-numbered tree.
func Reconstruct(s Sequence) (*tree.Tree, error) {
	if len(s.LPS) != len(s.NPS) {
		return nil, fmt.Errorf("prufer: LPS length %d != NPS length %d", len(s.LPS), len(s.NPS))
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("prufer: empty sequence")
	}
	n := s.Len() + 1 // extended tree node count; root is node n
	parent := make([]int, n+1)
	label := make([]string, n+1)
	hasLabel := make([]bool, n+1)
	for i := 0; i < n-1; i++ {
		v, p := i+1, s.NPS[i]
		if p <= v || p > n {
			return nil, fmt.Errorf("prufer: NPS[%d]=%d violates postorder (child %d)", i, p, v)
		}
		parent[v] = p
		if hasLabel[p] && label[p] != s.LPS[i] {
			return nil, fmt.Errorf("prufer: node %d labeled both %q and %q", p, label[p], s.LPS[i])
		}
		label[p], hasLabel[p] = s.LPS[i], true
	}
	children := make([][]int, n+1)
	for v := 1; v < n; v++ {
		children[parent[v]] = append(children[parent[v]], v)
	}
	// Nodes that never occur as parents are the dummy leaves of the
	// extension; they are dropped. Every labeled node must either have
	// labeled children or exactly one dummy child (it was an original
	// leaf).
	var build func(v int) (*tree.Node, error)
	build = func(v int) (*tree.Node, error) {
		node := &tree.Node{Label: label[v], Postorder: v}
		for _, c := range children[v] {
			if !hasLabel[c] {
				if len(children[c]) != 0 {
					return nil, fmt.Errorf("prufer: unlabeled internal node %d", c)
				}
				continue // dummy leaf
			}
			cn, err := build(c)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, cn)
		}
		if len(node.Children) == 0 {
			// v must have had exactly one dummy child.
			if len(children[v]) != 1 {
				return nil, fmt.Errorf("prufer: leaf node %d has %d dummy children, want 1", v, len(children[v]))
			}
		}
		return node, nil
	}
	if !hasLabel[n] {
		return nil, fmt.Errorf("prufer: root (node %d) has no label", n)
	}
	root, err := build(n)
	if err != nil {
		return nil, err
	}
	return &tree.Tree{Root: root}, nil
}

// Encode serializes the sequence into a self-delimiting byte string for
// fingerprinting: the LPS and NPS are concatenated (the paper's
// "LPS . NPS") with length framing so that no two distinct sequences
// share an encoding. The buffer buf is appended to and returned.
func (s Sequence) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.LPS)))
	for _, l := range s.LPS {
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		buf = append(buf, l...)
	}
	for _, n := range s.NPS {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return buf
}

// uvarint reads one canonical varint. Padded encodings (0x80 0x00 for
// zero, and the like) are rejected: Encode emits minimal varints only,
// and accepting a longer spelling would give one sequence several
// encodings, so decode → encode would no longer be the identity.
func uvarint(buf []byte) (uint64, int, bool) {
	v, k := binary.Uvarint(buf)
	if k <= 0 || k > 1 && buf[k-1] == 0 {
		return 0, 0, false
	}
	return v, k, true
}

// Decode parses an encoding produced by Encode.
func Decode(buf []byte) (Sequence, error) {
	var s Sequence
	m, k, ok := uvarint(buf)
	if !ok {
		return s, fmt.Errorf("prufer: bad length header")
	}
	buf = buf[k:]
	// Every entry costs at least two bytes (a label-length varint and an
	// NPS varint), so a header exceeding len(buf)/2 cannot be satisfied;
	// checking before make() keeps a hostile header from forcing a huge
	// allocation.
	if m > uint64(len(buf))/2 {
		return s, fmt.Errorf("prufer: length header %d exceeds input", m)
	}
	s.LPS = make([]string, m)
	s.NPS = make([]int, m)
	for i := range s.LPS {
		l, k, ok := uvarint(buf)
		if !ok || uint64(len(buf[k:])) < l {
			return Sequence{}, fmt.Errorf("prufer: truncated label %d", i)
		}
		s.LPS[i] = string(buf[k : k+int(l)])
		buf = buf[k+int(l):]
	}
	for i := range s.NPS {
		v, k, ok := uvarint(buf)
		if !ok {
			return Sequence{}, fmt.Errorf("prufer: truncated NPS entry %d", i)
		}
		s.NPS[i] = int(v)
		buf = buf[k:]
	}
	if len(buf) != 0 {
		return Sequence{}, fmt.Errorf("prufer: %d trailing bytes", len(buf))
	}
	return s, nil
}
