package pairing

import (
	"math/big"
	"testing"
	"testing/quick"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestPF2KnownValues(t *testing.T) {
	// Cantor pairing (with x recovered as remainder): enumerate the
	// diagonal order explicitly.
	cases := []struct{ x, y, z int64 }{
		{0, 0, 0},
		{0, 1, 1}, {1, 0, 2},
		{0, 2, 3}, {1, 1, 4}, {2, 0, 5},
		{0, 3, 6}, {1, 2, 7}, {2, 1, 8}, {3, 0, 9},
	}
	for _, c := range cases {
		if got := PF2(bi(c.x), bi(c.y)); got.Int64() != c.z {
			t.Errorf("PF2(%d,%d) = %v, want %d", c.x, c.y, got, c.z)
		}
	}
}

func TestPF2MatchesPaperFormula(t *testing.T) {
	// (x² + 2xy + y² + 3x + y)/2 must agree with the implementation.
	for x := int64(0); x < 30; x++ {
		for y := int64(0); y < 30; y++ {
			want := (x*x + 2*x*y + y*y + 3*x + y) / 2
			if got := PF2(bi(x), bi(y)).Int64(); got != want {
				t.Fatalf("PF2(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestPF2NegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PF2 of negative value must panic")
		}
	}()
	PF2(bi(-1), bi(0))
}

func TestUnpair2NegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unpair2 of negative value must panic")
		}
	}()
	Unpair2(bi(-1))
}

func TestQuickPF2Bijection(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := bi(int64(a)), bi(int64(b))
		gx, gy := Unpair2(PF2(x, y))
		return gx.Cmp(x) == 0 && gy.Cmp(y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnpair2IsLeftInverse(t *testing.T) {
	// Every natural is in the image of PF2: PF2(Unpair2(z)) == z.
	f := func(z uint32) bool {
		x, y := Unpair2(bi(int64(z)))
		return PF2(x, y).Int64() == int64(z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPF2U64(t *testing.T) {
	for x := uint64(0); x < 50; x++ {
		for y := uint64(0); y < 50; y++ {
			got, ok := PF2U64(x, y)
			if !ok {
				t.Fatalf("PF2U64(%d,%d) overflowed", x, y)
			}
			want := PF2(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
			if new(big.Int).SetUint64(got).Cmp(want) != 0 {
				t.Fatalf("PF2U64(%d,%d) = %d, want %v", x, y, got, want)
			}
		}
	}
}

func TestPF2U64Overflow(t *testing.T) {
	const max = ^uint64(0)
	for _, c := range [][2]uint64{{max, 1}, {max, max}, {1 << 63, 1 << 63}, {1 << 33, 1 << 33}} {
		if _, ok := PF2U64(c[0], c[1]); ok {
			t.Errorf("PF2U64(%d,%d) should report overflow", c[0], c[1])
		}
	}
	// Values just inside the safe range must agree with big.Int.
	x, y := uint64(1<<31), uint64(1<<31)
	got, ok := PF2U64(x, y)
	if !ok {
		t.Fatal("2^31 components should not overflow")
	}
	want := PF2(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
	if new(big.Int).SetUint64(got).Cmp(want) != 0 {
		t.Errorf("PF2U64 = %d, want %v", got, want)
	}
}

func TestPFTupleInductive(t *testing.T) {
	// PF3(x,y,z) = PF2(PF2(x,y),z) per the paper.
	x, y, z := uint64(3), uint64(7), uint64(11)
	want := PF2(PF2(bi(3), bi(7)), bi(11))
	if got := PFTuple([]uint64{x, y, z}); got.Cmp(want) != 0 {
		t.Errorf("PFTuple = %v, want %v", got, want)
	}
}

func TestPFTupleEdgeCases(t *testing.T) {
	if got := PFTuple(nil); got.Sign() != 0 {
		t.Errorf("empty tuple = %v, want 0", got)
	}
	if got := PFTuple([]uint64{42}); got.Int64() != 42 {
		t.Errorf("1-tuple = %v, want 42", got)
	}
}

func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		xs := []uint64{uint64(a), uint64(b), uint64(c), uint64(d)}
		z := PFTuple(xs)
		got, err := UnpairTuple(z, 4)
		if err != nil {
			return false
		}
		for i := range xs {
			if got[i].Uint64() != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickTupleInjective(t *testing.T) {
	f := func(a, b, c, x, y, z uint16) bool {
		t1 := []uint64{uint64(a), uint64(b), uint64(c)}
		t2 := []uint64{uint64(x), uint64(y), uint64(z)}
		same := a == x && b == y && c == z
		return (PFTuple(t1).Cmp(PFTuple(t2)) == 0) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnpairTupleErrors(t *testing.T) {
	if _, err := UnpairTuple(bi(5), -1); err == nil {
		t.Error("negative k must fail")
	}
	if _, err := UnpairTuple(bi(5), 0); err == nil {
		t.Error("nonzero value for empty tuple must fail")
	}
	got, err := UnpairTuple(bi(0), 0)
	if err != nil || got != nil {
		t.Errorf("zero/empty = %v, %v", got, err)
	}
	one, err := UnpairTuple(bi(9), 1)
	if err != nil || len(one) != 1 || one[0].Int64() != 9 {
		t.Errorf("1-tuple unpair = %v, %v", one, err)
	}
}

func TestPad(t *testing.T) {
	got, err := Pad([]uint64{1, 2}, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 99, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pad = %v, want %v", got, want)
		}
	}
	if _, err := Pad([]uint64{1, 2, 3}, 2, 0); err == nil {
		t.Error("over-long tuple must fail")
	}
}

func TestPFPaddedDistinguishesLengths(t *testing.T) {
	// With a pad value outside the alphabet, (1,2) and (1,2,pad) padded
	// to the same width are identical, but (1,2) and (1,2,0) differ.
	const pad = ^uint64(0) >> 1
	a, err := PFPadded([]uint64{1, 2}, 3, pad)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PFPadded([]uint64{1, 2, 0}, 3, pad)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Error("padded tuples with different logical lengths must differ")
	}
	if _, err := PFPadded([]uint64{1, 2, 3, 4}, 3, pad); err == nil {
		t.Error("over-long tuple must fail")
	}
}

func TestPFTupleBig(t *testing.T) {
	xs := []*big.Int{bi(5), bi(6)}
	if got, want := PFTupleBig(xs), PF2(bi(5), bi(6)); got.Cmp(want) != 0 {
		t.Errorf("PFTupleBig = %v, want %v", got, want)
	}
	if got := PFTupleBig(nil); got.Sign() != 0 {
		t.Errorf("empty big tuple = %v, want 0", got)
	}
	// Input slice elements must not be aliased/mutated.
	x := bi(5)
	PFTupleBig([]*big.Int{x, bi(1)})
	if x.Int64() != 5 {
		t.Error("PFTupleBig mutated its input")
	}
}

func BenchmarkPFTuple8(b *testing.B) {
	xs := []uint64{101, 202, 303, 404, 2, 5, 4, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PFTuple(xs)
	}
}
