// Package pairing implements the family of pairing functions PF(·) used
// by SketchTree (paper §2.2) to map tuples of non-negative integers to
// single non-negative integers:
//
//	PF2(x, y) = (x² + 2xy + y² + 3x + y) / 2
//	PF3(x, y, z) = PF2(PF2(x, y), z)
//	...
//
// PF2 is the Cantor pairing function offset so that the first component
// is recovered as the remainder: PF2(x, y) = (x+y)(x+y+1)/2 + x. The
// range of PF grows roughly as the square per level, so tuples of any
// useful length overflow machine words; all arithmetic is therefore
// carried out in math/big. (SketchTree's default mapping is the Rabin
// fingerprint of package rabin; PF is the paper's exact alternative and
// the reference implementation used in tests.)
package pairing

import (
	"fmt"
	"math/big"
	"math/bits"
)

var (
	one   = big.NewInt(1)
	two   = big.NewInt(2)
	eight = big.NewInt(8)
)

// PF2 computes the paper's pairing function for a pair of non-negative
// integers. The result is freshly allocated. Panics if x or y is
// negative (the pairing function is defined on naturals only).
func PF2(x, y *big.Int) *big.Int {
	if x.Sign() < 0 || y.Sign() < 0 {
		panic("pairing: PF2 of negative value")
	}
	// (x+y)(x+y+1)/2 + x
	s := new(big.Int).Add(x, y)
	t := new(big.Int).Add(s, one)
	t.Mul(t, s)
	t.Rsh(t, 1)
	return t.Add(t, x)
}

// Unpair2 inverts PF2: Unpair2(PF2(x, y)) == (x, y). Panics on negative
// input. Returns an error if z is not in the image of PF2 (cannot occur
// for the Cantor pairing, which is a bijection ℕ²→ℕ; retained for API
// symmetry with UnpairTuple).
func Unpair2(z *big.Int) (x, y *big.Int) {
	if z.Sign() < 0 {
		panic("pairing: Unpair2 of negative value")
	}
	// w = floor((sqrt(8z+1) - 1) / 2); t = w(w+1)/2; x = z - t; y = w - x.
	d := new(big.Int).Mul(z, eight)
	d.Add(d, one)
	d.Sqrt(d)
	d.Sub(d, one)
	w := d.Div(d, two)
	t := new(big.Int).Add(w, one)
	t.Mul(t, w)
	t.Rsh(t, 1)
	x = new(big.Int).Sub(z, t)
	y = new(big.Int).Sub(w, x)
	return x, y
}

// PF2U64 computes PF2 for machine words when the result fits in a
// uint64; ok is false on overflow.
func PF2U64(x, y uint64) (z uint64, ok bool) {
	s, c := bits.Add64(x, y, 0)
	if c != 0 {
		return 0, false
	}
	// s*(s+1)/2: compute via the even factor to avoid overflow in the
	// product before halving.
	a, b := s, s+1
	if b == 0 { // s == MaxUint64
		return 0, false
	}
	if a%2 == 0 {
		a /= 2
	} else {
		b /= 2
	}
	hi, lo := bits.Mul64(a, b)
	if hi != 0 {
		return 0, false
	}
	z, c = bits.Add64(lo, x, 0)
	if c != 0 {
		return 0, false
	}
	return z, true
}

// PFTuple maps a k-tuple of non-negative integers to a single integer by
// inductive application of PF2: PF(x1, ..., xk) =
// PF2(PF(x1, ..., x(k-1)), xk). A 1-tuple maps to its own value; the
// empty tuple maps to 0. The mapping is injective for tuples of a fixed
// length k.
func PFTuple(xs []uint64) *big.Int {
	if len(xs) == 0 {
		return new(big.Int)
	}
	acc := new(big.Int).SetUint64(xs[0])
	for _, v := range xs[1:] {
		acc = PF2(acc, new(big.Int).SetUint64(v))
	}
	return acc
}

// PFTupleBig is PFTuple over arbitrary-precision components.
func PFTupleBig(xs []*big.Int) *big.Int {
	if len(xs) == 0 {
		return new(big.Int)
	}
	acc := new(big.Int).Set(xs[0])
	for _, v := range xs[1:] {
		acc = PF2(acc, v)
	}
	return acc
}

// UnpairTuple inverts PFTupleBig for a known tuple length k.
func UnpairTuple(z *big.Int, k int) ([]*big.Int, error) {
	if k < 0 {
		return nil, fmt.Errorf("pairing: negative tuple length %d", k)
	}
	if k == 0 {
		if z.Sign() != 0 {
			return nil, fmt.Errorf("pairing: nonzero value for empty tuple")
		}
		return nil, nil
	}
	out := make([]*big.Int, k)
	acc := new(big.Int).Set(z)
	for i := k - 1; i >= 1; i-- {
		x, y := Unpair2(acc)
		out[i] = y
		acc = x
	}
	out[0] = acc
	return out, nil
}

// Pad extends a tuple to length n by appending the pad value, as the
// paper requires before applying PF to tuples of differing lengths
// ("each tuple should be padded to the size of the largest tuple").
// Returns an error if the tuple is already longer than n.
func Pad(xs []uint64, n int, pad uint64) ([]uint64, error) {
	if len(xs) > n {
		return nil, fmt.Errorf("pairing: tuple of length %d exceeds pad target %d", len(xs), n)
	}
	out := make([]uint64, n)
	copy(out, xs)
	for i := len(xs); i < n; i++ {
		out[i] = pad
	}
	return out, nil
}

// PFPadded maps a tuple to an integer after padding to length n with the
// given pad value. Together with a pad value outside the data alphabet
// this makes PF injective across tuples of different lengths up to n.
func PFPadded(xs []uint64, n int, pad uint64) (*big.Int, error) {
	p, err := Pad(xs, n, pad)
	if err != nil {
		return nil, err
	}
	return PFTuple(p), nil
}
