package pairing

import (
	"math"
	"math/big"
	"testing"
)

// TestUnpair2InverseTable: Unpair2 ∘ PF2 is the identity on a table of
// pairs chosen to hit the formula's edges — zeros, equal components,
// adjacent diagonals, and word-sized magnitudes whose squares only fit
// in big.Int.
func TestUnpair2InverseTable(t *testing.T) {
	cases := []struct {
		name string
		x, y uint64
	}{
		{"origin", 0, 0},
		{"x axis", 7, 0},
		{"y axis", 0, 7},
		{"diagonal", 13, 13},
		{"adjacent cells", 13, 14},
		{"small asymmetric", 2, 1000003},
		{"max uint64 x", math.MaxUint64, 1},
		{"max uint64 y", 1, math.MaxUint64},
		{"max uint64 both", math.MaxUint64, math.MaxUint64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := new(big.Int).SetUint64(tc.x)
			y := new(big.Int).SetUint64(tc.y)
			z := PF2(x, y)
			gx, gy := Unpair2(z)
			if gx.Cmp(x) != 0 || gy.Cmp(y) != 0 {
				t.Errorf("Unpair2(PF2(%d, %d)) = (%s, %s)", tc.x, tc.y, gx, gy)
			}
		})
	}
}

// TestUnpairTupleInverseTable: UnpairTuple ∘ PFTuple is the identity
// for every tabled tuple at its own length, covering k = 0..6, repeated
// components, and components past 2⁶³.
func TestUnpairTupleInverseTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []uint64
	}{
		{"empty", nil},
		{"singleton zero", []uint64{0}},
		{"singleton large", []uint64{math.MaxUint64}},
		{"pair", []uint64{3, 5}},
		{"triple with zeros", []uint64{0, 9, 0}},
		{"quadruple equal", []uint64{42, 42, 42, 42}},
		{"quintuple mixed", []uint64{1, 0, math.MaxUint64, 17, 2}},
		{"sextuple ramp", []uint64{1, 2, 3, 4, 5, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z := PFTuple(tc.xs)
			got, err := UnpairTuple(z, len(tc.xs))
			if err != nil {
				t.Fatalf("UnpairTuple: %v", err)
			}
			if len(got) != len(tc.xs) {
				t.Fatalf("got %d components, want %d", len(got), len(tc.xs))
			}
			for i, want := range tc.xs {
				if got[i].Cmp(new(big.Int).SetUint64(want)) != 0 {
					t.Errorf("component %d = %s, want %d", i, got[i], want)
				}
			}
		})
	}
}

// TestPF2U64AgreesWithBig: the machine-word fast path, when it reports
// ok, must equal the big.Int reference on a table spanning the overflow
// boundary from both sides.
func TestPF2U64AgreesWithBig(t *testing.T) {
	cases := []struct {
		name   string
		x, y   uint64
		wantOK bool
	}{
		{"origin", 0, 0, true},
		{"small", 100, 200, true},
		{"large safe diagonal", 3_000_000_000, 3_000_000_000, true},
		{"sum overflows", math.MaxUint64, 1, false},
		{"square overflows", 1 << 33, 1 << 33, false},
		{"max both", math.MaxUint64, math.MaxUint64, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z, ok := PF2U64(tc.x, tc.y)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				return
			}
			ref := PF2(new(big.Int).SetUint64(tc.x), new(big.Int).SetUint64(tc.y))
			if ref.Cmp(new(big.Int).SetUint64(z)) != 0 {
				t.Errorf("PF2U64 = %d, big.Int reference = %s", z, ref)
			}
		})
	}
}

// TestPadTable pins the padding edges: zero-length input, exact fit,
// padding to zero length, and over-length rejection.
func TestPadTable(t *testing.T) {
	cases := []struct {
		name    string
		xs      []uint64
		n       int
		pad     uint64
		want    []uint64
		wantErr bool
	}{
		{"empty to zero", nil, 0, 9, []uint64{}, false},
		{"empty to three", nil, 3, 9, []uint64{9, 9, 9}, false},
		{"exact fit", []uint64{1, 2}, 2, 9, []uint64{1, 2}, false},
		{"grow by one", []uint64{1, 2}, 3, 9, []uint64{1, 2, 9}, false},
		{"pad value zero", []uint64{5}, 3, 0, []uint64{5, 0, 0}, false},
		{"too long", []uint64{1, 2, 3}, 2, 9, nil, true},
		{"nonempty to zero", []uint64{1}, 0, 9, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Pad(tc.xs, tc.n, tc.pad)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Pad = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.want))
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("component %d = %d, want %d", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestPFPaddedInverseTable: unpairing a padded image at the pad length
// recovers exactly the original components followed by pad values, so
// padding loses no information.
func TestPFPaddedInverseTable(t *testing.T) {
	const n, pad = 4, 7
	cases := []struct {
		name string
		xs   []uint64
	}{
		{"empty", nil},
		{"one", []uint64{3}},
		{"two", []uint64{3, 5}},
		{"full", []uint64{3, 5, 8, 13}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z, err := PFPadded(tc.xs, n, pad)
			if err != nil {
				t.Fatal(err)
			}
			comps, err := UnpairTuple(z, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				want := pad
				if i < len(tc.xs) {
					want = int(tc.xs[i])
				}
				if comps[i].Cmp(big.NewInt(int64(want))) != 0 {
					t.Errorf("component %d = %s, want %d", i, comps[i], want)
				}
			}
		})
	}
}
