package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sketchtree"
)

func testConfig() sketchtree.Config {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 30
	cfg.S2 = 5
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.Seed = 11
	return cfg
}

func TestRouteDeterministicAndInRange(t *testing.T) {
	docs := []string{"<a><b/></a>", "<a><c/></a>", "<a><b/><c/></a>", ""}
	for _, n := range []int{1, 2, 3, 7} {
		for _, d := range docs {
			got := Route([]byte(d), n)
			if got < 0 || got >= n {
				t.Fatalf("Route(%q, %d) = %d, out of range", d, n, got)
			}
			if again := Route([]byte(d), n); again != got {
				t.Fatalf("Route(%q, %d) unstable: %d then %d", d, n, got, again)
			}
		}
	}
	// Same document, same shard — a re-sent document must not migrate.
	if Route([]byte("<a><b/></a>"), 3) != Route([]byte("<a><b/></a>"), 3) {
		t.Fatal("identical documents routed differently")
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{Shards: []string{"http://x"}}.normalize()
	if c.PullEvery != defaultPullEvery {
		t.Errorf("PullEvery = %v, want %v", c.PullEvery, defaultPullEvery)
	}
	if c.PullTimeout != defaultPullTimeout {
		t.Errorf("PullTimeout = %v, want %v", c.PullTimeout, defaultPullTimeout)
	}
	if c.RetryBackoff != c.PullEvery {
		t.Errorf("RetryBackoff = %v, want PullEvery %v", c.RetryBackoff, c.PullEvery)
	}
	if c.MaxBackoff != defaultMaxBackoff {
		t.Errorf("MaxBackoff = %v, want %v", c.MaxBackoff, defaultMaxBackoff)
	}
	if c.MaxSynopsisBytes != defaultMaxSynopsisBytes {
		t.Errorf("MaxSynopsisBytes = %d, want %d", c.MaxSynopsisBytes, defaultMaxSynopsisBytes)
	}
	if c.Client == nil {
		t.Error("Client not defaulted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no shards succeeded")
	}
	if _, err := New(Config{Shards: []string{"http://a", ""}}); err == nil {
		t.Error("New with an empty shard URL succeeded")
	}
	p, err := New(Config{Shards: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 2 || p.ShardURL(1) != "http://b" {
		t.Errorf("Shards/ShardURL: %d / %q", p.Shards(), p.ShardURL(1))
	}
	if p.Serving() != nil {
		t.Error("Serving non-nil before any pull")
	}
}

// A scheme-less host:port must work as an http shorthand (it is what
// operators naturally pass to -shards), and an unusable URL must fail
// at New — not as a parse error on every routed request.
func TestNewNormalizesShardURLs(t *testing.T) {
	p, err := New(Config{Shards: []string{"127.0.0.1:8081", "https://b.example/", "http://c:9/"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://127.0.0.1:8081", "https://b.example", "http://c:9"}
	for i, w := range want {
		if got := p.ShardURL(i); got != w {
			t.Errorf("ShardURL(%d) = %q, want %q", i, got, w)
		}
	}
	for _, bad := range []string{"ftp://a", "http://", "://nope", "http://bad url"} {
		if _, err := New(Config{Shards: []string{bad}}); err == nil {
			t.Errorf("New accepted unusable shard URL %q", bad)
		}
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p, err := New(Config{
		Shards:       []string{"http://x"},
		RetryBackoff: 100 * time.Millisecond,
		MaxBackoff:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		100 * time.Millisecond, // 1 failure
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// shardHandler serves /synopsis for a fixed engine, with a failure
// switch and a request counter.
type shardHandler struct {
	st    *sketchtree.SketchTree
	fail  atomic.Bool
	pulls atomic.Int64
}

func (h *shardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.pulls.Add(1)
	if h.fail.Load() {
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	data, err := h.st.MarshalBinary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Sketchtree-Trees", strconv.FormatInt(h.st.TreesProcessed(), 10))
	w.Write(data)
}

func newShard(t *testing.T, docs ...string) (*shardHandler, *httptest.Server) {
	t.Helper()
	st, err := sketchtree.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		tr, err := sketchtree.ParseXML(strings.NewReader(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	h := &shardHandler{st: st}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return h, ts
}

func TestPullMergePublishes(t *testing.T) {
	_, ts1 := newShard(t, "<a><b/></a>", "<a><c/></a>")
	_, ts2 := newShard(t, "<a><b/><c/></a>")
	p, err := New(Config{Shards: []string{ts1.URL, ts2.URL}, PullEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PullNow(context.Background()); err != nil {
		t.Fatalf("PullNow: %v", err)
	}
	sv := p.Serving()
	if sv == nil {
		t.Fatal("no serving state after a clean pull round")
	}
	if sv.Trees != 3 || sv.Rounds != 1 {
		t.Fatalf("serving trees=%d rounds=%d, want 3/1", sv.Trees, sv.Rounds)
	}

	// The merged synopsis equals a single engine over all three docs.
	ref, err := sketchtree.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"<a><b/></a>", "<a><c/></a>", "<a><b/><c/></a>"} {
		tr, _ := sketchtree.ParseXML(strings.NewReader(d))
		if err := ref.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sketchtree.ParsePattern("(a (b))")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.Tree.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("merged estimate %v, single-node %v (must be bit-identical)", got, want)
	}

	// Nothing changed: another round must not publish a new state.
	if err := p.PullNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sv2 := p.Serving(); sv2.Rounds != 2 || sv2.Trees != 3 {
		t.Fatalf("second round: rounds=%d trees=%d, want 2/3", sv2.Rounds, sv2.Trees)
	}

	status := p.Status()
	for i, st := range status {
		if !st.Reachable || st.Stale || st.LastPullAgeMS < 0 {
			t.Errorf("shard %d status %+v, want reachable and fresh", i, st)
		}
	}
	if status[0].Trees != 2 || status[1].Trees != 1 {
		t.Errorf("per-shard trees %d/%d, want 2/1", status[0].Trees, status[1].Trees)
	}
}

func TestFailedShardGoesStaleThenRecovers(t *testing.T) {
	h1, ts1 := newShard(t, "<a><b/></a>")
	_, ts2 := newShard(t, "<a><c/></a>")
	p, err := New(Config{
		Shards:       []string{ts1.URL, ts2.URL},
		PullEvery:    time.Hour,
		RetryBackoff: time.Nanosecond, // retry immediately on the next round
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PullNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	h1.fail.Store(true)
	if err := p.PullNow(context.Background()); err == nil {
		t.Fatal("PullNow with a failing shard returned nil")
	}
	st := p.Status()[0]
	if st.Reachable || !st.Stale || st.ConsecutiveFailures != 1 || st.LastError == "" {
		t.Fatalf("failing shard status %+v, want unreachable/stale/1 failure", st)
	}
	// Its slice is still merged: the serving state keeps both trees.
	if sv := p.Serving(); sv.Trees != 2 {
		t.Fatalf("serving trees = %d after shard failure, want 2 (stale slice)", sv.Trees)
	}

	h1.fail.Store(false)
	if err := p.PullNow(context.Background()); err != nil {
		t.Fatalf("PullNow after recovery: %v", err)
	}
	st = p.Status()[0]
	if !st.Reachable || st.Stale || st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("recovered shard status %+v, want reachable and clean", st)
	}
}

func TestBackoffSkipsUnforcedRounds(t *testing.T) {
	h, ts := newShard(t, "<a><b/></a>")
	p, err := New(Config{
		Shards:       []string{ts.URL},
		PullEvery:    time.Hour,
		RetryBackoff: time.Hour, // one failure parks the shard for the test's lifetime
	})
	if err != nil {
		t.Fatal(err)
	}
	h.fail.Store(true)
	if err := p.PullNow(context.Background()); err == nil {
		t.Fatal("expected pull failure")
	}
	n := h.pulls.Load()

	// Unforced rounds must respect the backoff window and skip the shard.
	ctx := context.Background()
	p.round(ctx, false)
	p.round(ctx, false)
	if got := h.pulls.Load(); got != n {
		t.Fatalf("backoff ignored: %d pulls, want %d", got, n)
	}
	// A forced round (?fresh=1 path) overrides the window.
	p.PullNow(ctx)
	if got := h.pulls.Load(); got != n+1 {
		t.Fatalf("forced round skipped the shard: %d pulls, want %d", got, n+1)
	}
}

func TestPullRejectsOversizedSynopsis(t *testing.T) {
	_, ts := newShard(t, "<a><b/></a>")
	p, err := New(Config{
		Shards:           []string{ts.URL},
		PullEvery:        time.Hour,
		MaxSynopsisBytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = p.PullNow(context.Background())
	if err == nil {
		t.Fatal("oversized synopsis pull succeeded")
	}
	if p.Serving() != nil {
		t.Fatal("oversized synopsis was merged")
	}
}

func TestRunPullsPeriodically(t *testing.T) {
	h, ts := newShard(t, "<a><b/></a>")
	p, err := New(Config{Shards: []string{ts.URL}, PullEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); p.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for p.Serving() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Serving() == nil {
		t.Fatal("Run never published a merged state")
	}
	// Let a few periods elapse; the loop must keep pulling.
	base := h.pulls.Load()
	for h.pulls.Load() < base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if h.pulls.Load() < base+2 {
		t.Fatal("Run stopped pulling after the first round")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestPullNowReportsContextCancel(t *testing.T) {
	_, ts := newShard(t, "<a><b/></a>")
	p, err := New(Config{Shards: []string{ts.URL}, PullEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.PullNow(ctx); err == nil {
		t.Fatal("PullNow with canceled context returned nil")
	} else if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "context canceled") {
		t.Logf("PullNow error (acceptable, any failure): %v", err)
	}
}
