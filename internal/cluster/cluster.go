// Package cluster turns sketchtreed daemons into a sharded cluster.
//
// The design exploits the paper's central property: AMS synopses are
// linear projections of the stream, so shard synopses built from the
// same Config (including Seed, with top-k tracking off) merge cell-wise
// into exactly the synopsis of the whole stream — bit-deterministic,
// independent of how documents were routed.
//
// Topology: N ingest shards (ordinary sketchtreed daemons) each own a
// slice of the document stream; a coordinator routes POST /ingest by
// document hash, periodically pulls each shard's serialized synopsis
// (GET /synopsis, the golden-pinned MarshalBinary format), merges the
// pulls in shard order, and publishes the result for lock-free query
// serving.
//
// Freshness and failure: answers come from the best state the
// coordinator has now, with explicit provenance about how stale it is.
// A down shard degrades to serving the last synopsis pulled from it
// (its slice of the counts freezes, nothing 5xxes); pulls retry with
// exponential backoff and the per-shard state — reachable, last pull
// time, trees, consecutive failures — is surfaced on GET /cluster.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sketchtree"
	"sketchtree/internal/obs"
	"sketchtree/internal/obs/trace"
)

// Config describes cluster membership and the pull/merge policy. The
// zero value of every optional field selects the default noted on it.
type Config struct {
	// Shards lists the shard base URLs ("http://host:port"; a bare
	// "host:port" is http shorthand). The slice index is the shard's
	// identity for routing and status.
	Shards []string

	// PullEvery is the synopsis pull period. Default 1s.
	PullEvery time.Duration

	// PullTimeout bounds one shard pull. Default 5s.
	PullTimeout time.Duration

	// RetryBackoff is the delay before re-trying a failed shard,
	// doubling per consecutive failure up to MaxBackoff. Default
	// PullEvery.
	RetryBackoff time.Duration

	// MaxBackoff caps the per-shard retry delay. Default 30s.
	MaxBackoff time.Duration

	// MaxSynopsisBytes bounds one pulled synopsis. Default 1 GiB.
	MaxSynopsisBytes int64

	// Client issues the pull requests. Default: a dedicated
	// http.Client (the per-pull budget comes from PullTimeout).
	Client *http.Client

	// Metrics receives per-shard pull accounting; nil disables.
	Metrics *obs.ClusterMetrics

	// Trace records each pull/merge round in the flight recorder's
	// background ring; nil disables. Rounds triggered by a traced
	// request (/query?fresh=1) record into that request's trace
	// instead.
	Trace *trace.Recorder

	// Logger receives structured pull-failure and publish logs.
	// Default: a no-op logger.
	Logger *slog.Logger
}

const (
	defaultPullEvery        = time.Second
	defaultPullTimeout      = 5 * time.Second
	defaultMaxBackoff       = 30 * time.Second
	defaultMaxSynopsisBytes = 1 << 30
)

func (c Config) normalize() Config {
	if c.PullEvery <= 0 {
		c.PullEvery = defaultPullEvery
	}
	if c.PullTimeout <= 0 {
		c.PullTimeout = defaultPullTimeout
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = c.PullEvery
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = defaultMaxBackoff
	}
	if c.MaxSynopsisBytes <= 0 {
		c.MaxSynopsisBytes = defaultMaxSynopsisBytes
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Route returns the index of the shard owning a document: a 64-bit
// FNV-1a hash of the raw document bytes, mod n. Deterministic, so a
// re-sent document always lands on the same shard.
func Route(doc []byte, n int) int {
	h := fnv.New64a()
	h.Write(doc)
	return int(h.Sum64() % uint64(n))
}

// ShardStatus is one shard's provenance within the cluster status: the
// freshness and reachability of the slice it contributes to merged
// answers.
type ShardStatus struct {
	URL string `json:"url"`

	// Reachable reports whether the most recent pull attempt
	// succeeded. False before the first attempt completes.
	Reachable bool `json:"reachable"`

	// Stale marks a shard whose slice is being served from an earlier
	// successful pull because the shard is currently unreachable.
	Stale bool `json:"stale"`

	// Trees is the shard's tree count at its last successful pull.
	Trees int64 `json:"trees"`

	// LastPullAgeMS is the age of the last successful pull in
	// milliseconds; -1 when the shard has never been pulled.
	LastPullAgeMS int64 `json:"last_pull_age_ms"`

	// ConsecutiveFailures counts pull failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`

	// LastError is the most recent pull failure, cleared on success.
	LastError string `json:"last_error,omitempty"`
}

// Serving is a published merged synopsis: the frozen engine answering
// queries plus its provenance. Never mutated after publication, so any
// number of readers may query Tree concurrently without locking.
type Serving struct {
	// Tree is the merged synopsis, frozen.
	Tree *sketchtree.SketchTree
	// Trees is the total tree count across the merged shard pulls.
	Trees int64
	// Built is when this merged state was published.
	Built time.Time
	// Rounds counts merged states published so far (including this
	// one).
	Rounds int64
}

// shardState is the puller's book-keeping for one shard. Guarded by
// Puller.mu.
type shardState struct {
	url      string
	data     []byte // last successfully pulled synopsis, nil before first
	trees    int64
	lastPull time.Time // last successful pull
	nextTry  time.Time // earliest next attempt (backoff)
	failures int       // consecutive failures
	lastErr  error
	gen      int64 // bumped per successful pull; drives rebuilds
}

// Puller owns the coordinator's pull/merge loop and the published
// merged state. Construct with New; do not copy.
type Puller struct {
	cfg     Config
	mu      sync.Mutex // guards shards
	shards  []*shardState
	serving atomic.Pointer[Serving]
	rounds  atomic.Int64
	builtAt atomic.Int64 // gen sum the current Serving was built from
}

// New validates cfg and creates a Puller. It performs no I/O; call Run
// (or PullNow) to start pulling.
func New(cfg Config) (*Puller, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	cfg = cfg.normalize()
	p := &Puller{cfg: cfg, shards: make([]*shardState, len(cfg.Shards))}
	for i, u := range cfg.Shards {
		if u == "" {
			return nil, fmt.Errorf("cluster: shard %d has an empty URL", i)
		}
		norm, err := normalizeShardURL(u)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		p.shards[i] = &shardState{url: norm}
	}
	return p, nil
}

// normalizeShardURL validates a shard base URL at configuration time,
// so a typo fails daemon startup instead of every routed request. A
// scheme-less "host:port" is accepted as shorthand for http.
func normalizeShardURL(raw string) (string, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("shard URL %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("shard URL %q: need http(s)://host[:port]", raw)
	}
	return strings.TrimSuffix(u.String(), "/"), nil
}

// Shards returns the number of configured shards.
func (p *Puller) Shards() int { return len(p.shards) }

// ShardURL returns shard i's base URL.
func (p *Puller) ShardURL(i int) string { return p.shards[i].url }

// Route returns the shard index owning doc.
func (p *Puller) Route(doc []byte) int { return Route(doc, len(p.shards)) }

// Serving returns the current merged state, or nil before the first
// successful pull. The returned value is immutable.
func (p *Puller) Serving() *Serving { return p.serving.Load() }

// Status reports every shard's live provenance, in shard order.
func (p *Puller) Status() []ShardStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ShardStatus, len(p.shards))
	for i, sh := range p.shards {
		st := ShardStatus{
			URL:                 sh.url,
			Reachable:           sh.failures == 0 && !sh.lastPull.IsZero(),
			Trees:               sh.trees,
			LastPullAgeMS:       -1,
			ConsecutiveFailures: sh.failures,
		}
		if !sh.lastPull.IsZero() {
			st.LastPullAgeMS = time.Since(sh.lastPull).Milliseconds()
		}
		st.Stale = !st.Reachable && sh.data != nil
		if sh.lastErr != nil {
			st.LastError = sh.lastErr.Error()
		}
		out[i] = st
	}
	return out
}

// Run pulls every shard each PullEvery period until ctx is canceled,
// rebuilding and publishing the merged synopsis whenever a pull
// brought new state. The first round starts immediately. On return the
// pull client's idle connections are closed, so draining shards are
// not left waiting on quiet keep-alive conns.
func (p *Puller) Run(ctx context.Context) {
	defer p.cfg.Client.CloseIdleConnections()
	p.round(ctx, false)
	t := time.NewTicker(p.cfg.PullEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.round(ctx, false)
		}
	}
}

// PullNow runs one pull round synchronously, ignoring per-shard
// backoff windows — the freshness fan-out behind /query?fresh=1. It
// returns the first shard error (the merged state still advances for
// the shards that answered).
func (p *Puller) PullNow(ctx context.Context) error {
	return p.round(ctx, true)
}

// round pulls the due shards in parallel, folds the results into the
// shard states, and rebuilds the merged state when anything changed.
//
// The round is traced: a round triggered by a traced request
// (/query?fresh=1 — the request trace rides in on ctx) records its
// per-shard pull spans and merge/publish spans into that request's
// trace; a periodic round records into a background trace of its own,
// kept in the recorder's background ring so ticker traffic never
// evicts request history.
func (p *Puller) round(ctx context.Context, force bool) error {
	type target struct {
		i   int
		url string
	}
	now := time.Now()
	var due []target
	p.mu.Lock()
	for i, sh := range p.shards {
		if force || !now.Before(sh.nextTry) {
			due = append(due, target{i, sh.url})
		}
	}
	p.mu.Unlock()
	if len(due) == 0 {
		return nil
	}

	tr := trace.FromContext(ctx)
	owned := false // this round started (and must finish) its own trace
	if tr == nil {
		tr = p.cfg.Trace.StartBackground("pull")
		owned = true
	}

	type result struct {
		i     int
		data  []byte
		trees int64
		err   error
	}
	results := make([]result, len(due))
	var wg sync.WaitGroup
	for n, tg := range due {
		wg.Add(1)
		go func(n int, tg target) {
			defer wg.Done()
			sp := tr.StartSpan("pull:" + strconv.Itoa(tg.i))
			start := time.Now()
			data, trees, err := p.fetch(ctx, tg.url, tr.ID())
			p.cfg.Metrics.PullDone(tg.i, time.Since(start), int64(len(data)), err)
			tr.EndSpan(sp)
			results[n] = result{i: tg.i, data: data, trees: trees, err: err}
		}(n, tg)
	}
	wg.Wait()

	var firstErr error
	now = time.Now()
	p.mu.Lock()
	for _, r := range results {
		sh := p.shards[r.i]
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d (%s): %w", r.i, sh.url, r.err)
			}
			sh.failures++
			sh.lastErr = r.err
			sh.nextTry = now.Add(p.backoff(sh.failures))
			p.cfg.Logger.Warn("synopsis pull failed", "shard", r.i, "url", sh.url,
				"err", r.err, "consecutive_failures", sh.failures, "trace_id", tr.ID())
			continue
		}
		sh.failures = 0
		sh.lastErr = nil
		sh.nextTry = time.Time{}
		sh.data = r.data
		sh.trees = r.trees
		sh.lastPull = now
		sh.gen++
	}
	// Snapshot the per-shard bytes under mu; the restore+merge work
	// runs outside it so Status and later rounds are never blocked
	// behind a rebuild.
	var gen int64
	datas := make([][]byte, len(p.shards))
	for i, sh := range p.shards {
		datas[i] = sh.data
		gen += sh.gen
	}
	p.mu.Unlock()

	if gen != p.builtAt.Load() {
		if err := p.rebuild(datas, gen, tr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if owned {
		status := http.StatusOK
		if firstErr != nil {
			status = http.StatusBadGateway
		}
		tr.Finish(status)
	}
	return firstErr
}

// backoff returns the retry delay after n consecutive failures:
// RetryBackoff doubled per failure beyond the first, capped at
// MaxBackoff.
func (p *Puller) backoff(n int) time.Duration {
	d := p.cfg.RetryBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			return p.cfg.MaxBackoff
		}
	}
	return min(d, p.cfg.MaxBackoff)
}

// fetch pulls one shard's serialized synopsis. traceID, when non-empty,
// propagates on the request header so the shard's flight recorder joins
// this round's trace.
func (p *Puller) fetch(ctx context.Context, base, traceID string) (data []byte, trees int64, err error) {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.PullTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/synopsis", nil)
	if err != nil {
		return nil, 0, err
	}
	if traceID != "" {
		req.Header.Set(trace.Header, traceID)
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("GET /synopsis: status %d", resp.StatusCode)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, p.cfg.MaxSynopsisBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if int64(len(data)) > p.cfg.MaxSynopsisBytes {
		return nil, 0, fmt.Errorf("synopsis exceeds %d bytes", p.cfg.MaxSynopsisBytes)
	}
	trees, _ = strconv.ParseInt(resp.Header.Get("X-Sketchtree-Trees"), 10, 64)
	return data, trees, nil
}

// rebuild restores every pulled shard synopsis and merges them in
// shard-index order into a fresh engine, then publishes it. Because
// the sketch cells are exact integer sums that commute, the merged
// synopsis — and therefore every answer served from it — is
// bit-identical to a single node that ingested the whole corpus.
// Shards that have never been pulled contribute nothing (their slice
// is absent until they come up).
func (p *Puller) rebuild(datas [][]byte, gen int64, tr *trace.Trace) error {
	sp := tr.StartSpan("merge")
	var merged *sketchtree.SketchTree
	for i, data := range datas {
		if data == nil {
			continue
		}
		st, err := sketchtree.Restore(data)
		if err != nil {
			tr.EndSpan(sp)
			return fmt.Errorf("restoring shard %d synopsis: %w", i, err)
		}
		if merged == nil {
			merged = st
			continue
		}
		if err := merged.Merge(st); err != nil {
			tr.EndSpan(sp)
			return fmt.Errorf("merging shard %d synopsis: %w", i, err)
		}
	}
	tr.EndSpan(sp)
	if merged == nil {
		return nil
	}
	sp = tr.StartSpan("publish")
	p.publish(merged)
	tr.EndSpan(sp)
	p.builtAt.Store(gen)
	p.cfg.Logger.Debug("published merged state", "trees", merged.TreesProcessed(),
		"rounds", p.rounds.Load(), "trace_id", tr.ID())
	return nil
}

// publish swaps in a new merged state. Kept free of restore/merge work
// so the provenance clock read stays out of the deterministic rebuild
// path.
func (p *Puller) publish(merged *sketchtree.SketchTree) {
	p.serving.Store(&Serving{
		Tree:   merged,
		Trees:  merged.TreesProcessed(),
		Built:  time.Now(),
		Rounds: p.rounds.Add(1),
	})
}
