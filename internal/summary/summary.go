// Package summary implements the structural summary and the query
// rewriting of paper §6.2. SketchTree itself assumes no schema; when a
// structural summary can be built online in limited space, queries
// with wildcard nodes ('*') and ancestor-descendant edges ('//') are
// resolved against it into a set of distinct parent-child-only
// patterns whose total frequency equals the original query's frequency
// — which the set estimator of §3.2 then answers.
//
// The summary is a label-path trie (in the spirit of a DataGuide): one
// trie node per distinct root-to-node label path observed in the
// stream. It is updated online per tree and its size is capped; a
// capped summary is marked incomplete and resolution against it
// reports possible truncation.
package summary

import (
	"fmt"
	"sort"

	"sketchtree/internal/tree"
)

// Wildcard is the query label that matches any data label.
const Wildcard = "*"

type snode struct {
	label    string
	children map[string]*snode
	order    []string // child labels in first-seen order
}

func (n *snode) child(label string) *snode { return n.children[label] }

// Summary is an online label-path trie over the streamed trees.
type Summary struct {
	root     *snode // virtual super-root; its children are tree-root labels
	maxNodes int
	nodes    int
	complete bool
}

// New creates an empty summary holding at most maxNodes trie nodes
// (0 = unlimited). When the cap is reached new paths are dropped and
// the summary becomes incomplete.
func New(maxNodes int) *Summary {
	return &Summary{
		root:     &snode{children: make(map[string]*snode)},
		maxNodes: maxNodes,
		complete: true,
	}
}

// Nodes returns the number of trie nodes (distinct label paths).
func (s *Summary) Nodes() int { return s.nodes }

// Complete reports whether every observed path fit under the cap.
func (s *Summary) Complete() bool { return s.complete }

// MemoryBytes approximates the trie footprint.
func (s *Summary) MemoryBytes() int { return s.nodes * 64 }

// AddTree merges all root-to-node label paths of t into the summary.
func (s *Summary) AddTree(t *tree.Tree) {
	if t == nil || t.Root == nil {
		return
	}
	s.addNode(s.root, t.Root)
}

func (s *Summary) addNode(sn *snode, dn *tree.Node) {
	c := sn.child(dn.Label)
	if c == nil {
		if s.maxNodes > 0 && s.nodes >= s.maxNodes {
			s.complete = false
			return
		}
		c = &snode{label: dn.Label, children: make(map[string]*snode)}
		sn.children[dn.Label] = c
		sn.order = append(sn.order, dn.Label)
		s.nodes++
	}
	for _, dc := range dn.Children {
		s.addNode(c, dc)
	}
}

// RootLabels returns the distinct root labels seen, in first-seen
// order.
func (s *Summary) RootLabels() []string {
	return append([]string(nil), s.root.order...)
}

// ChildLabels returns the distinct child labels observed under the
// given root-to-node label path, or nil if the path is absent.
func (s *Summary) ChildLabels(path []string) []string {
	n := s.root
	for _, l := range path {
		n = n.child(l)
		if n == nil {
			return nil
		}
	}
	return append([]string(nil), n.order...)
}

// Merge folds every label path of o into s (used when synopses built
// on stream shards are combined). The result is incomplete if either
// input was, or if s's cap is exceeded during the merge.
func (s *Summary) Merge(o *Summary) {
	if o == nil {
		return
	}
	if !o.complete {
		s.complete = false
	}
	var rec func(dst, src *snode)
	rec = func(dst, src *snode) {
		for _, l := range src.order {
			sc := src.children[l]
			dc := dst.child(l)
			if dc == nil {
				if s.maxNodes > 0 && s.nodes >= s.maxNodes {
					s.complete = false
					continue
				}
				dc = &snode{label: l, children: make(map[string]*snode)}
				dst.children[l] = dc
				dst.order = append(dst.order, l)
				s.nodes++
			}
			rec(dc, sc)
		}
	}
	rec(s.root, o.root)
}

// SnapshotNode is one trie node of a serializable summary snapshot;
// children preserve first-seen order.
type SnapshotNode struct {
	Label    string
	Children []SnapshotNode
}

// Snapshot is a serializable image of a Summary for synopsis
// persistence.
type Snapshot struct {
	MaxNodes int
	Complete bool
	Roots    []SnapshotNode
}

// Snapshot exports the summary.
func (s *Summary) Snapshot() Snapshot {
	var conv func(n *snode) SnapshotNode
	conv = func(n *snode) SnapshotNode {
		out := SnapshotNode{Label: n.label}
		for _, l := range n.order {
			out.Children = append(out.Children, conv(n.children[l]))
		}
		return out
	}
	sn := Snapshot{MaxNodes: s.maxNodes, Complete: s.complete}
	for _, l := range s.root.order {
		sn.Roots = append(sn.Roots, conv(s.root.children[l]))
	}
	return sn
}

// FromSnapshot reconstructs a Summary.
func FromSnapshot(sn Snapshot) (*Summary, error) {
	s := New(sn.MaxNodes)
	var build func(parent *snode, n SnapshotNode) error
	build = func(parent *snode, n SnapshotNode) error {
		if _, dup := parent.children[n.Label]; dup {
			return fmt.Errorf("summary: duplicate child %q in snapshot", n.Label)
		}
		c := &snode{label: n.Label, children: make(map[string]*snode)}
		parent.children[n.Label] = c
		parent.order = append(parent.order, n.Label)
		s.nodes++
		for _, cc := range n.Children {
			if err := build(c, cc); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range sn.Roots {
		if err := build(s.root, r); err != nil {
			return nil, err
		}
	}
	if sn.MaxNodes > 0 && s.nodes > sn.MaxNodes {
		return nil, fmt.Errorf("summary: snapshot has %d nodes, cap is %d", s.nodes, sn.MaxNodes)
	}
	s.complete = sn.Complete
	return s, nil
}

// QueryNode is a query pattern node for the extended semantics: Label
// may be Wildcard, and Desc marks the edge from the parent as
// ancestor-descendant ('//'). Desc on a root means the pattern may be
// anchored at any depth, which is also the default matching semantics,
// so it is ignored there.
type QueryNode struct {
	Label    string
	Desc     bool
	Children []*QueryNode
}

// Q builds a query node.
func Q(label string, children ...*QueryNode) *QueryNode {
	return &QueryNode{Label: label, Children: children}
}

// QD builds a query node whose incoming edge is '//'.
func QD(label string, children ...*QueryNode) *QueryNode {
	return &QueryNode{Label: label, Desc: true, Children: children}
}

func (q *QueryNode) matches(label string) bool {
	return q.Label == Wildcard || q.Label == label
}

// Resolve expands the query into the set of distinct parent-child-only
// label patterns that are consistent with the summary, each with at
// most maxEdges edges. The boolean result reports truncation: either
// the summary is incomplete, more than maxPatterns expansions were
// generated, or a '//' search was cut off by the edge budget — in all
// three cases the returned set may undercount and the caller should
// treat the answer as a lower bound (paper §6.2 requires resolved
// patterns to fit within the enumerated size k).
func (s *Summary) Resolve(q *QueryNode, maxEdges, maxPatterns int) ([]*tree.Node, bool, error) {
	if q == nil {
		return nil, false, fmt.Errorf("summary: nil query")
	}
	if maxEdges < 1 {
		return nil, false, fmt.Errorf("summary: maxEdges %d < 1", maxEdges)
	}
	if maxPatterns < 1 {
		maxPatterns = 1 << 20
	}
	r := &resolver{maxEdges: maxEdges, maxPatterns: maxPatterns}
	seen := map[string]bool{}
	var out []*tree.Node
	// The query may anchor at any summary node.
	s.walk(func(sn *snode) {
		if sn == s.root || !q.matches(sn.label) {
			return
		}
		for _, exp := range r.expand(q, sn) {
			if exp.Size()-1 > maxEdges {
				r.truncated = true
				continue
			}
			key := exp.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, exp)
			}
		}
	})
	truncated := r.truncated || !s.complete
	if r.overflow {
		return out, true, fmt.Errorf("summary: more than %d expansions", maxPatterns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, truncated, nil
}

func (s *Summary) walk(fn func(*snode)) {
	var rec func(*snode)
	rec = func(n *snode) {
		fn(n)
		for _, l := range n.order {
			rec(n.children[l])
		}
	}
	rec(s.root)
}

type resolver struct {
	maxEdges    int
	maxPatterns int
	generated   int
	truncated   bool
	overflow    bool
}

// expand returns the expansions of query subtree q anchored at summary
// node sn (label already matched). Each expansion is a labeled tree
// rooted at sn's label.
func (r *resolver) expand(q *QueryNode, sn *snode) []*tree.Node {
	if r.overflow {
		return nil
	}
	// Expansion alternatives per query child; each alternative is a
	// fully expanded child subtree (possibly with a chain of
	// intermediate labels for '//' edges).
	alts := make([][]*tree.Node, len(q.Children))
	for i, qc := range q.Children {
		alts[i] = r.expandChild(qc, sn)
		if len(alts[i]) == 0 {
			return nil // this anchor admits no expansion
		}
	}
	var out []*tree.Node
	pick := make([]*tree.Node, len(q.Children))
	var combine func(i int)
	combine = func(i int) {
		if r.overflow {
			return
		}
		if i == len(q.Children) {
			n := &tree.Node{Label: sn.label, Children: append([]*tree.Node(nil), pick...)}
			out = append(out, n)
			r.generated++
			if r.generated > r.maxPatterns {
				r.overflow = true
			}
			return
		}
		for _, a := range alts[i] {
			pick[i] = a
			combine(i + 1)
		}
	}
	combine(0)
	return out
}

// expandChild expands one query child under summary node sn, honoring
// a '//' edge by searching all descendants of sn within the edge
// budget and materializing the connecting label chain.
func (r *resolver) expandChild(qc *QueryNode, sn *snode) []*tree.Node {
	var out []*tree.Node
	if !qc.Desc {
		for _, l := range sn.order {
			c := sn.children[l]
			if qc.matches(c.label) {
				out = append(out, r.expand(qc, c)...)
			}
		}
		return out
	}
	// '//': any strict descendant within the budget; the expansion is
	// the chain of intermediate labels ending in the match's expansion.
	var dfs func(n *snode, depth int, chain []string)
	dfs = func(n *snode, depth int, chain []string) {
		if depth > r.maxEdges {
			if len(n.order) > 0 || qcMatchesAny(qc, n) {
				r.truncated = true
			}
			return
		}
		for _, l := range n.order {
			c := n.children[l]
			if qc.matches(c.label) {
				for _, exp := range r.expand(qc, c) {
					out = append(out, wrapChain(chain, exp))
				}
			}
			next := make([]string, len(chain)+1)
			copy(next, chain)
			next[len(chain)] = c.label
			dfs(c, depth+1, next)
		}
	}
	dfs(sn, 1, nil)
	return out
}

func qcMatchesAny(qc *QueryNode, n *snode) bool {
	for _, l := range n.order {
		if qc.matches(n.children[l].label) {
			return true
		}
	}
	return false
}

// wrapChain nests exp under the chain of intermediate labels:
// wrapChain([a b], X) = a(b(X)).
func wrapChain(chain []string, exp *tree.Node) *tree.Node {
	n := exp
	for i := len(chain) - 1; i >= 0; i-- {
		n = &tree.Node{Label: chain[i], Children: []*tree.Node{n}}
	}
	return n
}
