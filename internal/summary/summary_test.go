package summary

import (
	"sort"
	"testing"

	"sketchtree/internal/tree"
)

// figure7Summary builds the structural summary of paper Figure 7(a):
// A with children B and C, where B also has a child C.
func figure7Summary() *Summary {
	s := New(0)
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B", tree.T("C")), tree.T("C"))))
	return s
}

func expansionStrings(t *testing.T, s *Summary, q *QueryNode, maxEdges int) []string {
	t.Helper()
	pats, truncated, err := s.Resolve(q, maxEdges, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("unexpected truncation")
	}
	out := make([]string, len(pats))
	for i, p := range pats {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}

// Paper Figure 7(b): A/* resolves into the two distinct patterns A/B
// and A/C.
func TestFigure7Wildcard(t *testing.T) {
	s := figure7Summary()
	got := expansionStrings(t, s, Q("A", Q(Wildcard)), 3)
	want := []string{"(A (B))", "(A (C))"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("A/* resolved to %v, want %v", got, want)
	}
}

// Paper Figure 7(c): A//C resolves into A/C and A/B/C.
func TestFigure7Descendant(t *testing.T) {
	s := figure7Summary()
	got := expansionStrings(t, s, Q("A", QD("C")), 3)
	want := []string{"(A (B (C)))", "(A (C))"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("A//C resolved to %v, want %v", got, want)
	}
}

func TestPlainQueryResolvesToItself(t *testing.T) {
	s := figure7Summary()
	got := expansionStrings(t, s, Q("A", Q("B", Q("C"))), 3)
	if len(got) != 1 || got[0] != "(A (B (C)))" {
		t.Errorf("plain query resolved to %v", got)
	}
}

func TestQueryAnchorsAtAnyDepth(t *testing.T) {
	s := figure7Summary()
	// B/C matches the B node below the root.
	got := expansionStrings(t, s, Q("B", Q("C")), 3)
	if len(got) != 1 || got[0] != "(B (C))" {
		t.Errorf("B/C resolved to %v", got)
	}
}

func TestNoMatchGivesEmpty(t *testing.T) {
	s := figure7Summary()
	got, truncated, err := s.Resolve(Q("A", Q("Z")), 3, 100)
	if err != nil || truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	if len(got) != 0 {
		t.Errorf("A/Z resolved to %v, want none", got)
	}
}

func TestMultipleChildrenCartesianProduct(t *testing.T) {
	s := New(0)
	s.AddTree(tree.NewTree(tree.T("R",
		tree.T("A", tree.T("X"), tree.T("Y")),
	)))
	// R/A with two wildcard children: expansions pick (X,X), (X,Y),
	// (Y,X), (Y,Y) — all distinct ordered patterns.
	got := expansionStrings(t, s, Q("R", Q("A", Q(Wildcard), Q(Wildcard))), 4)
	if len(got) != 4 {
		t.Errorf("got %d expansions %v, want 4", len(got), got)
	}
}

func TestDeduplicationAcrossAnchors(t *testing.T) {
	s := New(0)
	// The same label path occurs under two different parents; the
	// pattern (B (C)) must appear once.
	s.AddTree(tree.NewTree(tree.T("R",
		tree.T("A", tree.T("B", tree.T("C"))),
		tree.T("D", tree.T("B", tree.T("C"))),
	)))
	got := expansionStrings(t, s, Q("B", Q("C")), 3)
	if len(got) != 1 {
		t.Errorf("got %v, want single deduplicated pattern", got)
	}
}

func TestRecursiveSummaryDescendant(t *testing.T) {
	s := New(0)
	// A chain S -> S -> S: S//S within 3 edges gives S/S and S/S/S...
	s.AddTree(tree.NewTree(tree.T("S", tree.T("S", tree.T("S")))))
	got := expansionStrings(t, s, Q("S", QD("S")), 3)
	want := []string{"(S (S (S)))", "(S (S))"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("S//S resolved to %v, want %v", got, want)
	}
}

func TestEdgeBudgetTruncation(t *testing.T) {
	s := New(0)
	// Deep chain; with maxEdges 2 the deeper matches are cut off.
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B", tree.T("B", tree.T("B", tree.T("Z")))))))
	pats, truncated, err := s.Resolve(Q("A", QD("Z")), 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 0 {
		t.Errorf("expected no expansions within budget, got %v", pats)
	}
	if !truncated {
		t.Error("truncation must be reported when the budget cuts the search")
	}
}

func TestOversizeExpansionFiltered(t *testing.T) {
	s := figure7Summary()
	// The full query needs 2 edges; budget 1 filters it and reports
	// truncation.
	pats, truncated, _ := s.Resolve(Q("A", Q("B", Q("C"))), 1, 100)
	if len(pats) != 0 || !truncated {
		t.Errorf("pats=%v truncated=%v, want empty+truncated", pats, truncated)
	}
}

func TestMaxPatternsOverflow(t *testing.T) {
	s := New(0)
	root := tree.New("R")
	for i := 0; i < 12; i++ {
		root.AddChild(tree.T("c" + string(rune('a'+i))))
	}
	s.AddTree(tree.NewTree(root))
	// R with two wildcard children: 12*12 = 144 expansions > 50.
	_, truncated, err := s.Resolve(Q("R", Q(Wildcard), Q(Wildcard)), 3, 50)
	if err == nil {
		t.Error("overflow must error")
	}
	if !truncated {
		t.Error("overflow must report truncation")
	}
}

func TestIncompleteSummaryReportsTruncation(t *testing.T) {
	s := New(2)
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B", tree.T("C")))))
	if s.Complete() {
		t.Fatal("summary over cap must be incomplete")
	}
	_, truncated, err := s.Resolve(Q("A", Q("B")), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("incomplete summary must mark results truncated")
	}
}

func TestResolveValidation(t *testing.T) {
	s := figure7Summary()
	if _, _, err := s.Resolve(nil, 3, 10); err == nil {
		t.Error("nil query must fail")
	}
	if _, _, err := s.Resolve(Q("A"), 0, 10); err == nil {
		t.Error("maxEdges 0 must fail")
	}
}

func TestSummaryAccessors(t *testing.T) {
	s := figure7Summary()
	if s.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4 (A, B, C-under-B, C-under-A)", s.Nodes())
	}
	if got := s.RootLabels(); len(got) != 1 || got[0] != "A" {
		t.Errorf("RootLabels = %v", got)
	}
	if got := s.ChildLabels([]string{"A"}); len(got) != 2 {
		t.Errorf("ChildLabels(A) = %v", got)
	}
	if got := s.ChildLabels([]string{"A", "B"}); len(got) != 1 || got[0] != "C" {
		t.Errorf("ChildLabels(A,B) = %v", got)
	}
	if got := s.ChildLabels([]string{"Z"}); got != nil {
		t.Errorf("ChildLabels of absent path = %v", got)
	}
	if s.MemoryBytes() != 4*64 {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
	s.AddTree(nil) // must not panic
}

func TestAddTreeMergesPaths(t *testing.T) {
	s := New(0)
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B"))))
	s.AddTree(tree.NewTree(tree.T("A", tree.T("C"))))
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B")))) // duplicate path
	if s.Nodes() != 3 {
		t.Errorf("Nodes = %d, want 3", s.Nodes())
	}
	if !s.Complete() {
		t.Error("uncapped summary must stay complete")
	}
}

func TestWildcardOnRoot(t *testing.T) {
	s := figure7Summary()
	// *: every summary node label is an anchor → patterns (A), (B),
	// (C) — single-node expansions have zero edges; with a child it
	// becomes meaningful.
	got := expansionStrings(t, s, Q(Wildcard, Q("C")), 3)
	want := []string{"(A (C))", "(B (C))"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("*/C resolved to %v, want %v", got, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(0)
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B", tree.T("C")), tree.T("C"))))
	s.AddTree(tree.NewTree(tree.T("D", tree.T("B"))))
	r, err := FromSnapshot(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != s.Nodes() || r.Complete() != s.Complete() {
		t.Errorf("shape differs: %d/%v vs %d/%v", r.Nodes(), r.Complete(), s.Nodes(), s.Complete())
	}
	// Resolution must agree.
	for _, q := range []*QueryNode{
		Q("A", QD("C")),
		Q(Wildcard, Q("B")),
	} {
		a, ta, err := s.Resolve(q, 3, 100)
		if err != nil {
			t.Fatal(err)
		}
		b, tb, err := r.Resolve(q, 3, 100)
		if err != nil {
			t.Fatal(err)
		}
		if ta != tb || len(a) != len(b) {
			t.Fatalf("resolution differs after snapshot restore")
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("pattern %d differs: %s vs %s", i, a[i], b[i])
			}
		}
	}
}

func TestSnapshotPreservesIncomplete(t *testing.T) {
	s := New(2)
	s.AddTree(tree.NewTree(tree.T("A", tree.T("B", tree.T("C")))))
	r, err := FromSnapshot(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete() {
		t.Error("restored summary must stay incomplete")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	bad := Snapshot{Roots: []SnapshotNode{
		{Label: "A", Children: []SnapshotNode{{Label: "B"}, {Label: "B"}}},
	}}
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("duplicate children must fail")
	}
	over := Snapshot{MaxNodes: 1, Roots: []SnapshotNode{
		{Label: "A", Children: []SnapshotNode{{Label: "B"}}},
	}}
	if _, err := FromSnapshot(over); err == nil {
		t.Error("snapshot over cap must fail")
	}
	empty, err := FromSnapshot(Snapshot{Complete: true})
	if err != nil || empty.Nodes() != 0 || !empty.Complete() {
		t.Errorf("empty snapshot: %v, %v", empty, err)
	}
}

func TestMerge(t *testing.T) {
	a := New(0)
	a.AddTree(tree.NewTree(tree.T("A", tree.T("B"))))
	b := New(0)
	b.AddTree(tree.NewTree(tree.T("A", tree.T("C"))))
	b.AddTree(tree.NewTree(tree.T("D", tree.T("B", tree.T("E")))))
	a.Merge(b)
	if a.Nodes() != 2+1+3 {
		t.Errorf("merged nodes = %d, want 6", a.Nodes())
	}
	if got := a.ChildLabels([]string{"A"}); len(got) != 2 {
		t.Errorf("A's children after merge = %v", got)
	}
	if got := a.ChildLabels([]string{"D", "B"}); len(got) != 1 || got[0] != "E" {
		t.Errorf("deep path not merged: %v", got)
	}
	if !a.Complete() {
		t.Error("merge of complete summaries must stay complete")
	}
	a.Merge(nil) // must not panic
}

func TestMergeRespectsCapAndIncomplete(t *testing.T) {
	a := New(2)
	a.AddTree(tree.NewTree(tree.T("A", tree.T("B"))))
	big := New(0)
	big.AddTree(tree.NewTree(tree.T("C", tree.T("D", tree.T("E")))))
	a.Merge(big)
	if a.Complete() {
		t.Error("merge over cap must mark incomplete")
	}
	if a.Nodes() > 2 {
		t.Errorf("cap violated: %d nodes", a.Nodes())
	}
	// Merging an incomplete summary taints the target.
	c := New(0)
	inc := New(1)
	inc.AddTree(tree.NewTree(tree.T("X", tree.T("Y"))))
	c.Merge(inc)
	if c.Complete() {
		t.Error("merging an incomplete summary must mark incomplete")
	}
}

func TestDescendantTruncationWithMatchBeyondBudget(t *testing.T) {
	// qcMatchesAny: the budget cut happens exactly where a matching
	// label sits deeper — truncation must be reported.
	s := New(0)
	s.AddTree(tree.NewTree(tree.T("A", tree.T("M", tree.T("M", tree.T("M", tree.T("Z")))))))
	_, truncated, err := s.Resolve(Q("A", QD("Z")), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("match just beyond the budget must report truncation")
	}
}
