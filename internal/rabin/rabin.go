// Package rabin implements Rabin's fingerprinting method over GF(2)
// (paper §6.1). A byte string is interpreted as the coefficient vector
// of a polynomial over GF(2); its fingerprint is the residue modulo an
// irreducible polynomial chosen uniformly at random. Two distinct
// strings of total length n bits collide with probability at most
// about n / 2^(deg-1), so fingerprints of short sequences under a
// degree-31 (paper) or degree-61 (our default) modulus collide with
// negligible probability.
//
// SketchTree uses fingerprints as the one-dimensional mapping of
// (LPS, NPS) sequence pairs when the exact pairing function of package
// pairing would overflow machine words, and as the online hash(X) of
// node labels.
package rabin

import (
	"encoding/binary"
	"fmt"

	"sketchtree/internal/gf2"
)

// Fingerprinter computes fingerprints modulo a fixed irreducible
// polynomial. It is safe for concurrent use after construction.
type Fingerprinter struct {
	modulus uint64
	deg     int
	mask    uint64      // deg low bits
	top     uint        // deg - 8
	tab     [256]uint64 // tab[t] = (t * x^deg) mod modulus
}

// New constructs a Fingerprinter for the given irreducible modulus of
// degree between 8 and 63.
func New(modulus uint64) (*Fingerprinter, error) {
	d := gf2.Deg(modulus)
	if d < 8 || d > 63 {
		return nil, fmt.Errorf("rabin: modulus degree %d out of range [8, 63]", d)
	}
	if !gf2.Irreducible(modulus) {
		return nil, fmt.Errorf("rabin: modulus %#x is reducible", modulus)
	}
	f := &Fingerprinter{modulus: modulus, deg: d, mask: 1<<uint(d) - 1, top: uint(d - 8)}
	for t := 0; t < 256; t++ {
		// (t << deg) mod modulus, reduced bit by bit. t << deg can
		// exceed 64 bits when deg > 56, so reduce incrementally: start
		// from t mod m (= t, deg >= 8 > 8 bits? t < 256 has degree <= 7
		// < deg) and multiply by x deg times.
		v := uint64(t)
		for i := 0; i < d; i++ {
			v <<= 1
			if v&(1<<uint(d)) != 0 {
				v ^= modulus
			}
		}
		f.tab[t] = v
	}
	return f, nil
}

// MustNew is New that panics on error.
func MustNew(modulus uint64) *Fingerprinter {
	f, err := New(modulus)
	if err != nil {
		panic(err)
	}
	return f
}

// NewRandom constructs a Fingerprinter with a modulus of the given
// degree chosen uniformly at random from the irreducible polynomials,
// per Rabin's scheme.
func NewRandom(deg int, rnd interface{ Uint64() uint64 }) (*Fingerprinter, error) {
	if deg < 8 || deg > 63 {
		return nil, fmt.Errorf("rabin: degree %d out of range [8, 63]", deg)
	}
	return New(gf2.RandomIrreducible(deg, rnd))
}

// Degree returns the degree of the modulus; fingerprints are in
// [0, 2^Degree).
func (f *Fingerprinter) Degree() int { return f.deg }

// Modulus returns the irreducible polynomial in use.
func (f *Fingerprinter) Modulus() uint64 { return f.modulus }

// initial is the starting state: a leading 1 bit so that strings
// differing only by leading zero bytes (or by length) map to distinct
// polynomials.
const initial = 1

// pushByte folds one byte into the fingerprint state.
//
//lint:hotpath
func (f *Fingerprinter) pushByte(fp uint64, b byte) uint64 {
	t := fp >> f.top
	return (fp<<8|uint64(b))&f.mask ^ f.tab[t]
}

// Fingerprint returns the fingerprint of data.
//
//lint:hotpath
func (f *Fingerprinter) Fingerprint(data []byte) uint64 {
	fp := uint64(initial)
	for _, b := range data {
		fp = f.pushByte(fp, b)
	}
	return fp
}

// FingerprintString returns the fingerprint of a string without
// allocating.
func (f *Fingerprinter) FingerprintString(s string) uint64 {
	fp := uint64(initial)
	for i := 0; i < len(s); i++ {
		fp = f.pushByte(fp, s[i])
	}
	return fp
}

// Hash is an incremental fingerprint accumulator. The zero Hash is not
// valid; obtain one from Fingerprinter.NewHash.
type Hash struct {
	f  *Fingerprinter
	fp uint64
}

// NewHash returns a fresh incremental accumulator.
func (f *Fingerprinter) NewHash() *Hash {
	return &Hash{f: f, fp: initial}
}

// Reset returns the accumulator to its initial state.
func (h *Hash) Reset() { h.fp = initial }

// Write folds data into the running fingerprint. It never fails; the
// error is always nil (io.Writer compatibility).
func (h *Hash) Write(p []byte) (int, error) {
	fp := h.fp
	for _, b := range p {
		fp = h.f.pushByte(fp, b)
	}
	h.fp = fp
	return len(p), nil
}

// WriteString folds a string into the running fingerprint.
func (h *Hash) WriteString(s string) {
	fp := h.fp
	for i := 0; i < len(s); i++ {
		fp = h.f.pushByte(fp, s[i])
	}
	h.fp = fp
}

// WriteByte folds one byte into the running fingerprint.
func (h *Hash) WriteByte(b byte) error {
	h.fp = h.f.pushByte(h.fp, b)
	return nil
}

// WriteUvarint folds a varint-encoded unsigned integer into the
// running fingerprint, preserving self-delimiting framing.
func (h *Hash) WriteUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	h.Write(buf[:n]) //lint:allow errflow Hash.Write never fails; the error exists for io.Writer conformance
}

// Sum64 returns the current fingerprint.
func (h *Hash) Sum64() uint64 { return h.fp }
