package rabin

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sketchtree/internal/gf2"
)

const (
	mod31 = 1<<31 | 1<<3 | 1 // x^31 + x^3 + 1, irreducible
	mod63 = 1<<63 | 1<<1 | 1 // x^63 + x + 1, irreducible
)

// fingerprintNaive reduces the data polynomial bit by bit: fp = fp*x +
// bit (mod m), starting from the leading 1.
func fingerprintNaive(data []byte, m uint64) uint64 {
	d := gf2.Deg(m)
	fp := uint64(1)
	push := func(bit uint64) {
		fp <<= 1
		fp |= bit
		if fp&(1<<uint(d)) != 0 {
			fp ^= m
		}
	}
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			push(uint64(b>>uint(i)) & 1)
		}
	}
	return fp
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0b101); err == nil {
		t.Error("reducible modulus must be rejected")
	}
	if _, err := New(0b1011); err == nil {
		t.Error("degree 3 must be rejected (below 8)")
	}
	if _, err := New(mod31); err != nil {
		t.Errorf("degree-31 trinomial rejected: %v", err)
	}
	f := MustNew(mod63)
	if f.Degree() != 63 || f.Modulus() != mod63 {
		t.Error("accessors wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew of bad modulus must panic")
		}
	}()
	MustNew(0b101)
}

func TestNewRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	f, err := NewRandom(31, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f.Degree() != 31 || !gf2.Irreducible(f.Modulus()) {
		t.Error("NewRandom produced bad fingerprinter")
	}
	if _, err := NewRandom(7, rng); err == nil {
		t.Error("degree 7 must be rejected")
	}
	if _, err := NewRandom(64, rng); err == nil {
		t.Error("degree 64 must be rejected")
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	for _, m := range []uint64{mod31, mod63, gf2.DefaultModulus(61)} {
		f := MustNew(m)
		q := func(data []byte) bool {
			return f.Fingerprint(data) == fingerprintNaive(data, m)
		}
		if err := quick.Check(q, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("modulus %#x: %v", m, err)
		}
	}
}

func TestFingerprintRange(t *testing.T) {
	f := MustNew(mod31)
	q := func(data []byte) bool {
		return f.Fingerprint(data) < 1<<31
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLeadingZerosDistinguished(t *testing.T) {
	f := MustNew(mod63)
	a := f.Fingerprint([]byte{'a'})
	b := f.Fingerprint([]byte{0, 'a'})
	c := f.Fingerprint([]byte{0, 0, 'a'})
	empty := f.Fingerprint(nil)
	if a == b || b == c || a == c {
		t.Error("leading zero bytes must change the fingerprint")
	}
	if empty == a || empty == f.Fingerprint([]byte{0}) {
		t.Error("empty string must be distinguished")
	}
}

func TestFingerprintStringMatchesBytes(t *testing.T) {
	f := MustNew(mod63)
	q := func(s string) bool {
		return f.FingerprintString(s) == f.Fingerprint([]byte(s))
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := MustNew(mod63)
	q := func(a, b []byte, s string) bool {
		h := f.NewHash()
		h.Write(a)
		h.WriteString(s)
		h.Write(b)
		all := append(append(append([]byte{}, a...), s...), b...)
		return h.Sum64() == f.Fingerprint(all)
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHashReset(t *testing.T) {
	f := MustNew(mod31)
	h := f.NewHash()
	h.WriteString("hello")
	first := h.Sum64()
	h.Reset()
	h.WriteString("hello")
	if h.Sum64() != first {
		t.Error("Reset must restore the initial state")
	}
}

func TestWriteByteAndUvarint(t *testing.T) {
	f := MustNew(mod31)
	h1 := f.NewHash()
	h1.WriteByte('x')
	h2 := f.NewHash()
	h2.Write([]byte{'x'})
	if h1.Sum64() != h2.Sum64() {
		t.Error("WriteByte disagrees with Write")
	}
	// Varints are self-delimiting: (1, 300) and (300, 1) must differ.
	ha := f.NewHash()
	ha.WriteUvarint(1)
	ha.WriteUvarint(300)
	hb := f.NewHash()
	hb.WriteUvarint(300)
	hb.WriteUvarint(1)
	if ha.Sum64() == hb.Sum64() {
		t.Error("varint order must matter")
	}
}

func TestCollisionRateEmpirical(t *testing.T) {
	// 20k random 16-byte strings under a degree-61 modulus: expect no
	// collisions (birthday bound ~ 2e8/2^61 ≈ 1e-10).
	f := MustNew(gf2.DefaultModulus(61))
	rng := rand.New(rand.NewPCG(11, 13))
	seen := make(map[uint64][16]byte, 20000)
	for i := 0; i < 20000; i++ {
		var buf [16]byte
		for j := 0; j < 16; j += 8 {
			v := rng.Uint64()
			for k := 0; k < 8; k++ {
				buf[j+k] = byte(v >> uint(8*k))
			}
		}
		fp := f.Fingerprint(buf[:])
		if prev, ok := seen[fp]; ok && prev != buf {
			t.Fatalf("collision between %x and %x", prev, buf)
		}
		seen[fp] = buf
	}
}

func TestDistinctModuliDisagree(t *testing.T) {
	f1 := MustNew(mod31)
	f2 := MustNew(uint64(gf2.DefaultModulus(31)))
	if f1.Modulus() == f2.Modulus() {
		t.Skip("moduli happen to coincide")
	}
	diff := 0
	for _, s := range []string{"a", "ab", "abc", "abcd", "tree", "sketch"} {
		if f1.FingerprintString(s) != f2.FingerprintString(s) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different moduli should produce different fingerprints")
	}
}

func BenchmarkFingerprint64B(b *testing.B) {
	f := MustNew(gf2.DefaultModulus(61))
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 37)
	}
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = f.Fingerprint(data)
	}
}

var sink uint64
