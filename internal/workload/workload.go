// Package workload builds query workloads by selectivity, mirroring
// the paper's experimental methodology (§7.3, §7.8.1, §7.9.1): ordered
// tree patterns are drawn from the dataset itself, bucketed by
// selectivity (count / total patterns processed), and combined into
// SUM (three distinct patterns) and PRODUCT (two distinct patterns)
// workloads.
//
// A Catalog accumulates exact counts for every distinct pattern value
// during a stream pass. Textual representations are only retained for
// patterns whose count reaches a small threshold — workload queries
// live in selectivity ranges far above it, so the catalog stays cheap
// while remaining exact.
package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"sketchtree/internal/tree"
)

// Query is one single-pattern workload query with its ground truth.
type Query struct {
	Pattern     *tree.Node
	Value       uint64
	Count       int64
	Selectivity float64
}

// Range is a half-open selectivity interval [Lo, Hi).
type Range struct{ Lo, Hi float64 }

func (r Range) String() string { return fmt.Sprintf("[%.4g, %.4g)", r.Lo, r.Hi) }

// Contains reports whether s falls in the range.
func (r Range) Contains(s float64) bool { return s >= r.Lo && s < r.Hi }

// TreebankRanges are the paper's Figure 8(a) selectivity buckets.
func TreebankRanges() []Range {
	return []Range{
		{0.00001, 0.00002},
		{0.00002, 0.00004},
		{0.00004, 0.00008},
		{0.00008, 0.00020},
	}
}

// DBLPRanges are the paper's Figure 8(b) selectivity buckets.
func DBLPRanges() []Range {
	return []Range{
		{0.000005, 0.000025},
		{0.000025, 0.000050},
		{0.000050, 0.000075},
		{0.000075, 0.000100},
	}
}

// Catalog accumulates the distinct patterns of a stream with exact
// counts, retaining pattern text only above the representation
// threshold.
type Catalog struct {
	threshold int64
	counts    map[uint64]int64
	reprs     map[uint64]string
	total     int64
}

// NewCatalog creates a catalog that keeps pattern representations for
// counts >= threshold (threshold < 1 keeps everything).
func NewCatalog(threshold int64) *Catalog {
	if threshold < 1 {
		threshold = 1
	}
	return &Catalog{
		threshold: threshold,
		counts:    make(map[uint64]int64),
		reprs:     make(map[uint64]string),
	}
}

// Add records one occurrence of the pattern with one-dimensional value
// v. repr lazily renders the pattern (called at most once, when the
// count crosses the threshold).
func (c *Catalog) Add(v uint64, repr func() string) {
	c.total++
	n := c.counts[v] + 1
	c.counts[v] = n
	if n == c.threshold {
		c.reprs[v] = repr()
	}
}

// Total returns the stream length (pattern occurrences).
func (c *Catalog) Total() int64 { return c.total }

// Distinct returns the number of distinct patterns (Table 1).
func (c *Catalog) Distinct() int { return len(c.counts) }

// SelfJoinSize returns Σ f² over distinct patterns.
func (c *Catalog) SelfJoinSize() int64 {
	var sj int64
	for _, f := range c.counts {
		sj += f * f
	}
	return sj
}

// Count returns the exact count of value v.
func (c *Catalog) Count(v uint64) int64 { return c.counts[v] }

// Queries returns every cataloged pattern whose selectivity falls in r,
// sorted by descending count (ties by value). It fails if the range
// dips below the representation threshold — those patterns were counted
// but their text was discarded.
func (c *Catalog) Queries(r Range) ([]Query, error) {
	if c.total == 0 {
		return nil, fmt.Errorf("workload: empty catalog")
	}
	minCount := r.Lo * float64(c.total)
	if minCount < float64(c.threshold) {
		return nil, fmt.Errorf("workload: range %v needs counts >= %.1f but representations start at %d",
			r, minCount, c.threshold)
	}
	var out []Query
	for v, f := range c.counts {
		sel := float64(f) / float64(c.total)
		if !r.Contains(sel) {
			continue
		}
		repr, ok := c.reprs[v]
		if !ok {
			return nil, fmt.Errorf("workload: pattern %d in range %v has no representation", v, r)
		}
		t, err := tree.ParseSexp(repr)
		if err != nil {
			return nil, fmt.Errorf("workload: bad stored pattern %q: %w", repr, err)
		}
		out = append(out, Query{Pattern: t.Root, Value: v, Count: f, Selectivity: sel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

// Bucket is the workload for one selectivity range.
type Bucket struct {
	Range   Range
	Queries []Query
}

// Select builds one bucket per range with up to perRange queries,
// sampled uniformly without replacement when a range holds more.
func (c *Catalog) Select(ranges []Range, perRange int, rng *rand.Rand) ([]Bucket, error) {
	out := make([]Bucket, 0, len(ranges))
	for _, r := range ranges {
		qs, err := c.Queries(r)
		if err != nil {
			return nil, err
		}
		if perRange > 0 && len(qs) > perRange {
			idx := rng.Perm(len(qs))[:perRange]
			sort.Ints(idx)
			sampled := make([]Query, perRange)
			for i, j := range idx {
				sampled[i] = qs[j]
			}
			qs = sampled
		}
		out = append(out, Bucket{Range: r, Queries: qs})
	}
	return out, nil
}

// SetQuery is a SUM-workload query: t distinct patterns whose total
// count is the ground truth (§7.8).
type SetQuery struct {
	Queries     []Query
	Count       int64   // Σ counts
	Selectivity float64 // Σ counts / total
}

// ProductQuery is a PRODUCT-workload query: distinct patterns whose
// count product is the ground truth (§7.9).
type ProductQuery struct {
	Queries     []Query
	Product     float64 // Π counts
	Selectivity float64 // Π counts / total
}

// flattenDistinct pools bucket queries, deduplicated by value.
func flattenDistinct(buckets []Bucket) []Query {
	seen := map[uint64]bool{}
	var pool []Query
	for _, b := range buckets {
		for _, q := range b.Queries {
			if !seen[q.Value] {
				seen[q.Value] = true
				pool = append(pool, q)
			}
		}
	}
	return pool
}

// MakeSumWorkload draws n SUM queries of the given arity by randomly
// selecting distinct patterns from the buckets' pool (the paper uses
// arity 3 and n = 10,000).
func MakeSumWorkload(buckets []Bucket, n, arity int, total int64, rng *rand.Rand) ([]SetQuery, error) {
	pool := flattenDistinct(buckets)
	if len(pool) < arity {
		return nil, fmt.Errorf("workload: pool of %d patterns cannot form %d-ary queries", len(pool), arity)
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: total %d must be positive", total)
	}
	out := make([]SetQuery, n)
	for i := range out {
		idx := rng.Perm(len(pool))[:arity]
		q := SetQuery{Queries: make([]Query, arity)}
		for j, p := range idx {
			q.Queries[j] = pool[p]
			q.Count += pool[p].Count
		}
		q.Selectivity = float64(q.Count) / float64(total)
		out[i] = q
	}
	return out, nil
}

// MakeProductWorkload draws n PRODUCT queries of the given arity (the
// paper uses pairs and n = 6,811).
func MakeProductWorkload(buckets []Bucket, n, arity int, total int64, rng *rand.Rand) ([]ProductQuery, error) {
	pool := flattenDistinct(buckets)
	if len(pool) < arity {
		return nil, fmt.Errorf("workload: pool of %d patterns cannot form %d-ary queries", len(pool), arity)
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: total %d must be positive", total)
	}
	out := make([]ProductQuery, n)
	for i := range out {
		idx := rng.Perm(len(pool))[:arity]
		q := ProductQuery{Queries: make([]Query, arity), Product: 1}
		for j, p := range idx {
			q.Queries[j] = pool[p]
			q.Product *= float64(pool[p].Count)
		}
		q.Selectivity = q.Product / float64(total)
		out[i] = q
	}
	return out, nil
}

// Histogram counts how many of the given selectivities fall into each
// range (Figures 8 and 11).
func Histogram(sels []float64, ranges []Range) []int {
	out := make([]int, len(ranges))
	for _, s := range sels {
		for i, r := range ranges {
			if r.Contains(s) {
				out[i]++
				break
			}
		}
	}
	return out
}

// AutoRanges splits [min, max] of the given selectivities into n
// equal-width ranges; used for the SUM/PRODUCT histograms whose
// boundaries the paper derives from the generated workload.
func AutoRanges(sels []float64, n int) []Range {
	if len(sels) == 0 || n < 1 {
		return nil
	}
	lo, hi := sels[0], sels[0]
	for _, s := range sels {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		hi = lo * 1.0001
	}
	w := (hi - lo) / float64(n)
	out := make([]Range, n)
	for i := range out {
		out[i] = Range{Lo: lo + float64(i)*w, Hi: lo + float64(i+1)*w}
	}
	out[n-1].Hi = hi * 1.0000001 // include the max
	return out
}
