package workload

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"sketchtree/internal/tree"
)

// buildCatalog populates a catalog with patterns "Pi" of count i*10,
// i = 1..m, plus filler singletons to set the total.
func buildCatalog(t *testing.T, m int, filler int) *Catalog {
	t.Helper()
	c := NewCatalog(2)
	for i := 1; i <= m; i++ {
		v := uint64(i)
		repr := tree.T(fmt.Sprintf("P%d", i), tree.T("X")).String()
		for j := int64(0); j < int64(i)*10; j++ {
			c.Add(v, func() string { return repr })
		}
	}
	for f := 0; f < filler; f++ {
		c.Add(uint64(100000+f), func() string { return "(F (X))" })
	}
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := buildCatalog(t, 3, 40)
	if c.Total() != 10+20+30+40 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Distinct() != 3+40 {
		t.Errorf("Distinct = %d", c.Distinct())
	}
	if c.Count(2) != 20 {
		t.Errorf("Count(2) = %d", c.Count(2))
	}
	if want := int64(100 + 400 + 900 + 40); c.SelfJoinSize() != want {
		t.Errorf("SelfJoinSize = %d, want %d", c.SelfJoinSize(), want)
	}
}

func TestReprLazyAndThreshold(t *testing.T) {
	c := NewCatalog(3)
	calls := 0
	repr := func() string { calls++; return "(A (B))" }
	c.Add(1, repr)
	c.Add(1, repr)
	if calls != 0 {
		t.Error("repr must not be called below threshold")
	}
	c.Add(1, repr)
	if calls != 1 {
		t.Errorf("repr called %d times, want exactly 1 at the threshold", calls)
	}
	c.Add(1, repr)
	if calls != 1 {
		t.Error("repr must not be called again")
	}
}

func TestQueriesRange(t *testing.T) {
	c := buildCatalog(t, 3, 40) // total 100; sels: 0.1, 0.2, 0.3, fillers 0.01
	qs, err := c.Queries(Range{0.15, 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("got %d queries: %+v", len(qs), qs)
	}
	// Sorted descending by count.
	if qs[0].Count != 30 || qs[1].Count != 20 {
		t.Errorf("order wrong: %+v", qs)
	}
	if qs[0].Pattern.Label != "P3" {
		t.Errorf("pattern not reconstructed: %s", qs[0].Pattern)
	}
	if qs[0].Selectivity != 0.3 {
		t.Errorf("selectivity = %v", qs[0].Selectivity)
	}
}

func TestQueriesBelowThresholdFails(t *testing.T) {
	c := buildCatalog(t, 3, 40)
	// Fillers have count 1 < threshold 2: selecting down there must fail.
	if _, err := c.Queries(Range{0.005, 0.02}); err == nil {
		t.Error("range below representation threshold must fail")
	}
}

func TestQueriesEmptyCatalog(t *testing.T) {
	c := NewCatalog(1)
	if _, err := c.Queries(Range{0, 1}); err == nil {
		t.Error("empty catalog must fail")
	}
}

func TestSelectSamples(t *testing.T) {
	c := NewCatalog(1)
	for i := 1; i <= 20; i++ {
		v := uint64(i)
		repr := tree.T(fmt.Sprintf("Q%d", i), tree.T("X")).String()
		for j := 0; j < 5; j++ {
			c.Add(v, func() string { return repr })
		}
	}
	// All have selectivity 5/100 = 0.05.
	rng := rand.New(rand.NewPCG(1, 2))
	buckets, err := c.Select([]Range{{0.04, 0.06}}, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 || len(buckets[0].Queries) != 7 {
		t.Fatalf("sampled %d queries, want 7", len(buckets[0].Queries))
	}
	// Without cap all 20 come back.
	buckets, err = c.Select([]Range{{0.04, 0.06}}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets[0].Queries) != 20 {
		t.Errorf("uncapped select = %d queries", len(buckets[0].Queries))
	}
}

func singleBucket(t *testing.T) []Bucket {
	t.Helper()
	c := buildCatalog(t, 6, 790) // total = 10+...+60 + 790 = 1000
	qs, err := c.Queries(Range{0.005, 0.07})
	if err != nil {
		t.Fatal(err)
	}
	return []Bucket{{Range: Range{0.005, 0.07}, Queries: qs}}
}

func TestMakeSumWorkload(t *testing.T) {
	buckets := singleBucket(t)
	rng := rand.New(rand.NewPCG(3, 4))
	sums, err := MakeSumWorkload(buckets, 50, 3, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 50 {
		t.Fatalf("got %d sum queries", len(sums))
	}
	for _, s := range sums {
		if len(s.Queries) != 3 {
			t.Fatal("arity violated")
		}
		seen := map[uint64]bool{}
		var want int64
		for _, q := range s.Queries {
			if seen[q.Value] {
				t.Fatal("duplicate pattern in sum query")
			}
			seen[q.Value] = true
			want += q.Count
		}
		if s.Count != want {
			t.Errorf("Count = %d, want %d", s.Count, want)
		}
		if s.Selectivity != float64(want)/1000 {
			t.Errorf("Selectivity = %v", s.Selectivity)
		}
	}
}

func TestMakeProductWorkload(t *testing.T) {
	buckets := singleBucket(t)
	rng := rand.New(rand.NewPCG(5, 6))
	prods, err := MakeProductWorkload(buckets, 30, 2, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != 30 {
		t.Fatalf("got %d product queries", len(prods))
	}
	for _, p := range prods {
		if len(p.Queries) != 2 {
			t.Fatal("arity violated")
		}
		if p.Queries[0].Value == p.Queries[1].Value {
			t.Fatal("duplicate pattern in product query")
		}
		want := float64(p.Queries[0].Count) * float64(p.Queries[1].Count)
		if p.Product != want {
			t.Errorf("Product = %v, want %v", p.Product, want)
		}
		if p.Selectivity != want/1000 {
			t.Errorf("Selectivity = %v", p.Selectivity)
		}
	}
}

func TestWorkloadErrors(t *testing.T) {
	buckets := singleBucket(t)
	rng := rand.New(rand.NewPCG(7, 8))
	if _, err := MakeSumWorkload(buckets, 5, 100, 1000, rng); err == nil {
		t.Error("arity beyond pool must fail")
	}
	if _, err := MakeSumWorkload(buckets, 5, 2, 0, rng); err == nil {
		t.Error("zero total must fail")
	}
	if _, err := MakeProductWorkload(buckets, 5, 100, 1000, rng); err == nil {
		t.Error("arity beyond pool must fail")
	}
	if _, err := MakeProductWorkload(buckets, 5, 2, 0, rng); err == nil {
		t.Error("zero total must fail")
	}
	if _, err := MakeSumWorkload(nil, 5, 1, 1000, rng); err == nil {
		t.Error("empty pool must fail")
	}
}

func TestHistogram(t *testing.T) {
	ranges := []Range{{0, 0.1}, {0.1, 0.2}, {0.2, 0.3}}
	sels := []float64{0.05, 0.15, 0.15, 0.25, 0.95}
	got := Histogram(sels, ranges)
	want := []int{1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Histogram = %v, want %v", got, want)
		}
	}
}

func TestAutoRanges(t *testing.T) {
	sels := []float64{0.1, 0.2, 0.3, 0.4}
	rs := AutoRanges(sels, 3)
	if len(rs) != 3 {
		t.Fatalf("got %d ranges", len(rs))
	}
	if rs[0].Lo != 0.1 {
		t.Errorf("first range %v", rs[0])
	}
	// Every selectivity lands in some range, including the maximum.
	h := Histogram(sels, rs)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(sels) {
		t.Errorf("histogram over auto ranges covers %d of %d", total, len(sels))
	}
	if AutoRanges(nil, 3) != nil {
		t.Error("empty input must give nil")
	}
	if AutoRanges(sels, 0) != nil {
		t.Error("n=0 must give nil")
	}
	// Degenerate: all equal.
	rs = AutoRanges([]float64{0.5, 0.5}, 2)
	h = Histogram([]float64{0.5, 0.5}, rs)
	if h[0]+h[1] != 2 {
		t.Errorf("degenerate ranges lose points: %v", h)
	}
}

func TestRangeString(t *testing.T) {
	r := Range{0.00001, 0.0002}
	if r.String() != "[1e-05, 0.0002)" {
		t.Errorf("String = %q", r.String())
	}
}
