package analysis_test

import (
	"testing"

	"sketchtree/internal/analysis"
	"sketchtree/internal/analysis/checks"
)

// FuzzAnalyzers feeds arbitrary Go source and Makefile text through the
// full lint pipeline — Load, every analyzer, //lint:allow processing —
// and demands it never panics. The linter runs on every PR; a crash on
// weird-but-parseable source would take the whole verify gate down.
func FuzzAnalyzers(f *testing.F) {
	f.Add([]byte("package p\n\nfunc Marshal(m map[string]int) int {\n\tt := 0\n\tfor _, v := range m {\n\t\tt += v\n\t}\n\treturn t\n}\n"),
		"fuzz-smoke:\n\tgo test -run '^$$' -fuzz '^FuzzX$$' -fuzztime 10s .\n")
	f.Add([]byte("package sketchtree\n\ntype SketchTree struct{}\ntype Safe struct{ st *SketchTree }\n\nfunc (s *SketchTree) A() {}\nfunc (s *Safe) B() { _ = s.st }\n"), "")
	f.Add([]byte("package p\n\nimport \"sync/atomic\"\n\ntype c struct{ n atomic.Int64 }\n\nfunc f(x c) {}\n//lint:allow atomicsafety reason\nfunc g(x c) {}\n//lint:allow\n"), "x:\n")
	f.Add([]byte("package p\n\nimport \"math/rand/v2\"\n\nfunc Restore() uint64 { return rand.Uint64() }\n"), "fuzz-smoke:")
	// Call-graph seeds: spawns, lock orders, hot-path tags and watched
	// errors exercise the interprocedural layer (summaries + fixpoint).
	f.Add([]byte("package p\n\nimport \"sync\"\n\ntype A struct{ mu sync.Mutex }\ntype B struct{ mu sync.Mutex }\ntype S struct {\n\ta A\n\tb B\n\tch chan int\n}\n\nfunc (s *S) ab() { s.a.mu.Lock(); s.b.mu.Lock(); s.b.mu.Unlock(); s.a.mu.Unlock() }\nfunc (s *S) ba() { s.b.mu.Lock(); s.ab(); s.b.mu.Unlock() }\nfunc (s *S) send() { s.a.mu.Lock(); s.ch <- 1; s.a.mu.Unlock() }\n"), "")
	f.Add([]byte("package p\n\nfunc spin() {\n\tfor {\n\t}\n}\n\nfunc launch() { go spin() }\n\nfunc ok(stop chan struct{}) {\n\tgo func() {\n\t\tfor {\n\t\t\tselect {\n\t\t\tcase <-stop:\n\t\t\t\treturn\n\t\t\tdefault:\n\t\t\t}\n\t\t}\n\t}()\n}\n"), "")
	f.Add([]byte("package p\n\nimport \"fmt\"\n\n//lint:hotpath\nfunc hot(b []byte) []byte {\n\tb = append(b, 1)\n\ts := fmt.Sprintf(\"%d\", len(b))\n\t_ = s\n\treturn b\n}\n\nfunc cold() []int { return make([]int, 8) }\n\n//lint:hotpath\nfunc chain() { _ = cold() }\n"), "")
	f.Add([]byte("package p\n\ntype T struct{}\n\nfunc (t *T) MarshalBinary() ([]byte, error) { return nil, nil }\n\nfunc drop(t *T) { t.MarshalBinary() }\nfunc fwd(t *T) error { _, err := t.MarshalBinary(); return err }\nfunc dropFwd(t *T) { _ = fwd(t) }\n"), "")
	f.Add([]byte("package p\n\nfunc a() { b() }\nfunc b() { c() }\nfunc c() { a() }\n"), "")
	f.Fuzz(func(t *testing.T, src []byte, makefile string) {
		root := t.TempDir()
		m, err := analysis.Load(root, map[string][]byte{
			"persist.go":    src,
			"concurrent.go": src,
			"Makefile":      []byte(makefile),
		})
		if err != nil {
			t.Skip() // unparseable input is Load's error, not a crash
		}
		analysis.Run(m, checks.All())
	})
}
