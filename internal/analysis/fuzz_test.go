package analysis_test

import (
	"testing"

	"sketchtree/internal/analysis"
	"sketchtree/internal/analysis/checks"
)

// FuzzAnalyzers feeds arbitrary Go source and Makefile text through the
// full lint pipeline — Load, every analyzer, //lint:allow processing —
// and demands it never panics. The linter runs on every PR; a crash on
// weird-but-parseable source would take the whole verify gate down.
func FuzzAnalyzers(f *testing.F) {
	f.Add([]byte("package p\n\nfunc Marshal(m map[string]int) int {\n\tt := 0\n\tfor _, v := range m {\n\t\tt += v\n\t}\n\treturn t\n}\n"),
		"fuzz-smoke:\n\tgo test -run '^$$' -fuzz '^FuzzX$$' -fuzztime 10s .\n")
	f.Add([]byte("package sketchtree\n\ntype SketchTree struct{}\ntype Safe struct{ st *SketchTree }\n\nfunc (s *SketchTree) A() {}\nfunc (s *Safe) B() { _ = s.st }\n"), "")
	f.Add([]byte("package p\n\nimport \"sync/atomic\"\n\ntype c struct{ n atomic.Int64 }\n\nfunc f(x c) {}\n//lint:allow atomicsafety reason\nfunc g(x c) {}\n//lint:allow\n"), "x:\n")
	f.Add([]byte("package p\n\nimport \"math/rand/v2\"\n\nfunc Restore() uint64 { return rand.Uint64() }\n"), "fuzz-smoke:")
	f.Fuzz(func(t *testing.T, src []byte, makefile string) {
		root := t.TempDir()
		m, err := analysis.Load(root, map[string][]byte{
			"persist.go":    src,
			"concurrent.go": src,
			"Makefile":      []byte(makefile),
		})
		if err != nil {
			t.Skip() // unparseable input is Load's error, not a crash
		}
		analysis.Run(m, checks.All())
	})
}
