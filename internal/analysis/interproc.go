// Interprocedural layer: a module-wide call graph over the parsed
// Module, per-function summaries (locks, spawns, exit observation,
// allocation sites, watched-error provenance), and — in ipfacts.go — a
// fixpoint propagator that turns the direct summaries into transitive
// facts. Everything stays syntactic, in the framework's spirit: a
// best-effort type environment (receiver, parameters, inferred locals,
// struct-field index) resolves the common cases, and every resolver
// errs toward silence when an expression is ambiguous.
//
// Resolution ladder for a call expression, most to least precise:
//
//  1. bare ident              → function declared in the same package
//  2. pkg.F                   → import path under the module path
//  3. x.M, x of resolved type → method on that type, module-wide
//  4. x.M, x unresolved       → conservative edges to every module
//     method named M, only when M is declared by a module interface
//     (edges are marked Conservative and may only ever suppress a
//     finding, never create one)
//  5. anything else           → no edge (silence)
package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// RefKind is the coarse shape of a resolved type.
type RefKind int

const (
	// RefNamed is a named type (struct or otherwise) addressable for
	// method lookup.
	RefNamed RefKind = iota
	// RefMap is a map type — possibly a named one, still
	// method-addressable when Name is set.
	RefMap
	// RefChan is a channel type.
	RefChan
)

// TypeRef identifies a resolved type. Module types carry the declaring
// package's RelDir; types outside the module carry "ext:<import
// path>". Unnamed composites (map/chan) may have an empty Dir/Name and
// only a Kind.
type TypeRef struct {
	Dir  string
	Name string
	Kind RefKind
}

const extPrefix = "ext:"

// moduleNamed reports whether the ref is a named type declared in this
// module (and therefore method- and field-addressable).
func (r TypeRef) moduleNamed() bool {
	return r.Name != "" && r.Dir != "" && !strings.HasPrefix(r.Dir, extPrefix)
}

// isMutex reports sync.Mutex / sync.RWMutex.
func (r TypeRef) isMutex() bool {
	return r.Dir == extPrefix+"sync" && (r.Name == "Mutex" || r.Name == "RWMutex")
}

// infallibleRecv lists external receivers whose watched methods are
// documented never to fail (bytes.Buffer, strings.Builder): dropping
// their error result is idiomatic, not a finding.
func infallibleRecv(r TypeRef) bool {
	return (r.Dir == extPrefix+"bytes" && r.Name == "Buffer") ||
		(r.Dir == extPrefix+"strings" && r.Name == "Builder")
}

// FuncID names one function in the call graph: "<relDir>:<Name>" for
// functions, "<relDir>:<Recv>.<Name>" for methods, and "<parent>$<n>"
// for the n-th function literal inside parent.
type FuncID string

// Call is one resolved synchronous call site.
type Call struct {
	Pos    token.Pos
	Callee FuncID
	// Conservative marks interface-fallback edges: the callee is one of
	// several possible targets. Analyzers use conservative edges only
	// to suppress findings, never to create them.
	Conservative bool
	// Held is the sorted set of lock IDs held at the call site.
	Held []string
}

// Spawn is one `go` statement with a resolved target.
type Spawn struct {
	Pos          token.Pos
	Callee       FuncID
	Conservative bool
}

// LockEvent is one acquisition or release of a resolvable lock.
type LockEvent struct {
	// Lock is the lock's stable ID: "<dir>.<Type>.<field>" for struct
	// mutex fields ("<Type>.<field>" in the module root) and
	// "<dir>.<var>" for package-level mutex variables.
	Lock string
	// Op is Lock, RLock, Unlock or RUnlock.
	Op  string
	Pos token.Pos
	// Held is the sorted set of other locks held when this one was
	// acquired (empty for releases).
	Held []string
}

// HeldEvent is a blocking operation (channel send, outbound HTTP call)
// performed while holding at least one lock.
type HeldEvent struct {
	Pos  token.Pos
	Held []string
	// What describes the operation ("channel send", "http request").
	What string
}

// AllocSite is one escape-relevant allocation in a function body.
type AllocSite struct {
	Pos token.Pos
	// What says why the site allocates ("closure allocation", "make
	// allocates", …).
	What string
}

// FuncNode is one function (declaration or literal) in the call graph,
// with its direct summary and — after the fixpoint — transitive facts.
type FuncNode struct {
	ID      FuncID
	Pkg     *Package
	File    *File
	Decl    *ast.FuncDecl // nil for literals
	Lit     *ast.FuncLit  // nil for declarations
	Display string        // human-readable name ("Safe.AddTree", "windowLoop$1")
	Pos     token.Pos

	// HotPath marks functions tagged //lint:hotpath in their doc
	// comment.
	HotPath bool
	// ReturnsError reports an `error` last result in the signature.
	ReturnsError bool

	// Direct summary, filled by the walker.
	Calls  []Call
	Spawns []Spawn
	Locks  []LockEvent
	Sends  []HeldEvent
	Allocs []AllocSite
	// ObservesExit: the body receives from a ctx.Done()/stop/done
	// channel, ranges over a channel, performs a two-value receive, or
	// calls Wait — i.e. it participates in a shutdown protocol.
	ObservesExit bool
	// LoopsForever: the body contains a `for` with no condition and no
	// reachable return/break out of it.
	LoopsForever bool
	// DirectWatched: the body calls a watched IO/serialization method
	// (MarshalBinary, Write, …) on a resolved, fallible receiver.
	DirectWatched bool

	// Transitive facts, filled by the fixpoint (ipfacts.go).
	TransAcquires     map[string]bool
	TransObservesExit bool
	TransLoopsForever bool
	TransAllocates    bool
	// TransWatched: the function returns an error that (transitively)
	// originates at a watched IO/serialization site, so callers must
	// not drop it.
	TransWatched bool

	env map[string]TypeRef
}

// Body returns the function's body block (nil for bodyless decls).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// watchedErrorMethods are the method names whose error results errflow
// tracks: serialization and IO sinks where a silently dropped error
// corrupts or loses data.
var watchedErrorMethods = map[string]bool{
	"MarshalBinary": true,
	"MarshalText":   true,
	"Write":         true,
	"WriteString":   true,
	"WriteTo":       true,
	"Flush":         true,
	"Encode":        true,
}

// stopChanRE matches channel names that by convention carry shutdown
// signals; receiving from one counts as observing an exit path.
var stopChanRE = regexp.MustCompile(`(?i)(stop|done|quit|exit|close|cancel)`)

// maxConservativeFanout bounds interface-fallback resolution: a method
// name with more module implementations than this is too ambiguous to
// say anything about, even conservatively.
const maxConservativeFanout = 8

const hotPathDirective = "//lint:hotpath"

// typeKey indexes declared types and struct layouts by package dir and
// type name.
type typeKey struct {
	dir, name string
}

// ipIndex is the module-wide symbol index the graph is built over.
type ipIndex struct {
	m *Module
	// imports caches per-file local-name → import-path maps.
	imports map[*File]map[string]string
	// declared maps every type declared in the module to its ref
	// (carrying the underlying kind for maps and channels).
	declared map[typeKey]TypeRef
	// structs maps a struct type to its named fields' resolved types.
	structs map[typeKey]map[string]TypeRef
	// pkgMutexVars records package-level sync.Mutex/RWMutex variables.
	pkgMutexVars map[string]map[string]bool
	// funcs is the node table, keyed by FuncID.
	funcs map[FuncID]*FuncNode
	// methodsByName lists module methods per bare name, in declaration
	// order — the candidate pool for conservative interface fallback.
	methodsByName map[string][]FuncID
	// ifaceMethods are method names declared by module interface types;
	// only these get conservative fallback edges.
	ifaceMethods map[string]bool
}

// buildInterproc constructs the index, the nodes, the summaries and
// the fixpoint facts for one module.
func buildInterproc(m *Module) *Interproc {
	ix := &ipIndex{
		m:             m,
		imports:       map[*File]map[string]string{},
		declared:      map[typeKey]TypeRef{},
		structs:       map[typeKey]map[string]TypeRef{},
		pkgMutexVars:  map[string]map[string]bool{},
		funcs:         map[FuncID]*FuncNode{},
		methodsByName: map[string][]FuncID{},
		ifaceMethods:  map[string]bool{},
	}
	ix.indexTypes()
	ix.indexFuncs()
	for _, n := range ix.declNodesInOrder() {
		ix.buildEnvAndWalk(n)
	}
	ip := &Interproc{Module: m, Funcs: ix.funcs, ix: ix}
	ip.finish()
	return ip
}

// declNodesInOrder returns the declaration nodes in deterministic
// source order (packages and files are already sorted by Load).
func (ix *ipIndex) declNodesInOrder() []*FuncNode {
	var out []*FuncNode
	for _, p := range ix.m.Packages {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if n := ix.funcs[declFuncID(p, fd)]; n != nil && n.Decl == fd {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// declFuncID computes the FuncID of a declaration.
func declFuncID(p *Package, fd *ast.FuncDecl) FuncID {
	name := fd.Name.Name
	if r := recvBaseType(fd); r != "" {
		name = r + "." + name
	}
	return FuncID(p.RelDir + ":" + name)
}

// recvBaseType is the receiver's base type name, "" for functions.
func recvBaseType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// indexTypes records declared types, struct field layouts, interface
// method names and package-level mutex variables across the module
// (test files excluded, matching the graph itself).
func (ix *ipIndex) indexTypes() {
	for _, p := range ix.m.Packages {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, d := range f.AST.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						ix.indexTypeSpec(p, f, s)
					case *ast.ValueSpec:
						if gd.Tok != token.VAR || s.Type == nil {
							continue
						}
						if ref, ok := ix.resolveTypeExpr(f, p, s.Type); ok && ref.isMutex() {
							for _, name := range s.Names {
								mv := ix.pkgMutexVars[p.RelDir]
								if mv == nil {
									mv = map[string]bool{}
									ix.pkgMutexVars[p.RelDir] = mv
								}
								mv[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
}

func (ix *ipIndex) indexTypeSpec(p *Package, f *File, ts *ast.TypeSpec) {
	key := typeKey{p.RelDir, ts.Name.Name}
	switch t := ts.Type.(type) {
	case *ast.StructType:
		ix.declared[key] = TypeRef{Dir: p.RelDir, Name: ts.Name.Name}
		fields := map[string]TypeRef{}
		for _, field := range t.Fields.List {
			ref, ok := ix.resolveTypeExpr(f, p, field.Type)
			if !ok {
				continue
			}
			for _, name := range field.Names {
				fields[name.Name] = ref
			}
		}
		ix.structs[key] = fields
	case *ast.MapType:
		ix.declared[key] = TypeRef{Dir: p.RelDir, Name: ts.Name.Name, Kind: RefMap}
	case *ast.ChanType:
		ix.declared[key] = TypeRef{Dir: p.RelDir, Name: ts.Name.Name, Kind: RefChan}
	case *ast.InterfaceType:
		// Interface-typed values stay unresolved at use sites; only the
		// declared method names feed the conservative fallback.
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				ix.ifaceMethods[name.Name] = true
			}
		}
	default:
		ix.declared[key] = TypeRef{Dir: p.RelDir, Name: ts.Name.Name}
	}
}

// indexFuncs creates a FuncNode per function declaration.
func (ix *ipIndex) indexFuncs() {
	for _, p := range ix.m.Packages {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				id := declFuncID(p, fd)
				display := fd.Name.Name
				if r := recvBaseType(fd); r != "" {
					display = r + "." + fd.Name.Name
				}
				n := &FuncNode{
					ID:           id,
					Pkg:          p,
					File:         f,
					Decl:         fd,
					Display:      display,
					Pos:          fd.Pos(),
					HotPath:      hasHotPathTag(fd.Doc),
					ReturnsError: lastResultIsError(fd.Type),
					env:          map[string]TypeRef{},
				}
				ix.funcs[id] = n
				if r := recvBaseType(fd); r != "" {
					ix.methodsByName[fd.Name.Name] = append(ix.methodsByName[fd.Name.Name], id)
				}
			}
		}
	}
}

// hasHotPathTag reports a //lint:hotpath line in a doc comment.
func hasHotPathTag(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(c.Text)
		if t == hotPathDirective || strings.HasPrefix(t, hotPathDirective+" ") {
			return true
		}
	}
	return false
}

// lastResultIsError reports a trailing `error` result.
func lastResultIsError(ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// importsOf returns the file's local-name → import-path map.
func (ix *ipIndex) importsOf(f *File) map[string]string {
	if m, ok := ix.imports[f]; ok {
		return m
	}
	m := map[string]string{}
	for _, imp := range f.AST.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			parts := strings.Split(path, "/")
			name = parts[len(parts)-1]
			if len(parts) > 1 && len(name) > 1 && name[0] == 'v' && name[1] >= '0' && name[1] <= '9' {
				name = parts[len(parts)-2]
			}
		}
		if name != "_" && name != "." {
			m[name] = path
		}
	}
	ix.imports[f] = m
	return m
}

// dirForImport maps an import path to a module-relative directory when
// the path is inside this module.
func (ix *ipIndex) dirForImport(path string) (string, bool) {
	mp := ix.m.Path
	if mp == "" {
		return "", false
	}
	if path == mp {
		return ".", true
	}
	if strings.HasPrefix(path, mp+"/") {
		return path[len(mp)+1:], true
	}
	return "", false
}

// resolveTypeExpr resolves a type expression appearing in file f of
// package p to a TypeRef. Unresolvable shapes (interfaces, funcs,
// builtins, generics) return false.
func (ix *ipIndex) resolveTypeExpr(f *File, p *Package, e ast.Expr) (TypeRef, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return ix.resolveTypeExpr(f, p, x.X)
	case *ast.StarExpr:
		return ix.resolveTypeExpr(f, p, x.X)
	case *ast.Ident:
		if ref, ok := ix.declared[typeKey{p.RelDir, x.Name}]; ok {
			return ref, true
		}
		return TypeRef{}, false
	case *ast.SelectorExpr:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return TypeRef{}, false
		}
		path, ok := ix.importsOf(f)[base.Name]
		if !ok {
			return TypeRef{}, false
		}
		if dir, ok := ix.dirForImport(path); ok {
			if ref, ok := ix.declared[typeKey{dir, x.Sel.Name}]; ok {
				return ref, true
			}
			return TypeRef{Dir: dir, Name: x.Sel.Name}, true
		}
		return TypeRef{Dir: extPrefix + path, Name: x.Sel.Name}, true
	case *ast.MapType:
		return TypeRef{Kind: RefMap}, true
	case *ast.ChanType:
		return TypeRef{Kind: RefChan}, true
	}
	return TypeRef{}, false
}

// fieldType looks up a named field's resolved type on a module struct.
func (ix *ipIndex) fieldType(owner TypeRef, field string) (TypeRef, bool) {
	fields, ok := ix.structs[typeKey{owner.Dir, owner.Name}]
	if !ok {
		return TypeRef{}, false
	}
	ref, ok := fields[field]
	return ref, ok
}

// resolveValue resolves a value expression to the TypeRef of its type,
// through the function's environment and the struct-field index (field
// chains like s.pc.mu resolve link by link).
func (ix *ipIndex) resolveValue(n *FuncNode, e ast.Expr) (TypeRef, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return ix.resolveValue(n, x.X)
	case *ast.StarExpr:
		return ix.resolveValue(n, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return ix.resolveValue(n, x.X)
		}
	case *ast.Ident:
		ref, ok := n.env[x.Name]
		return ref, ok
	case *ast.SelectorExpr:
		base, ok := ix.resolveValue(n, x.X)
		if !ok || !base.moduleNamed() {
			return TypeRef{}, false
		}
		return ix.fieldType(base, x.Sel.Name)
	case *ast.CompositeLit:
		if x.Type != nil {
			return ix.resolveTypeExpr(n.File, n.Pkg, x.Type)
		}
	}
	return TypeRef{}, false
}

// classifyFieldList enters a field list (receiver, params, results)
// into the node's environment.
func (ix *ipIndex) classifyFieldList(n *FuncNode, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		ref, ok := ix.resolveTypeExpr(n.File, n.Pkg, field.Type)
		if !ok {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				n.env[name.Name] = ref
			}
		}
	}
}

// inferRHS classifies the type of an assignment's right-hand side:
// composite literals, make/new, same-env aliases, type assertions, and
// the NewFoo constructor convention (pkg.NewEncoder → pkg.Encoder).
func (ix *ipIndex) inferRHS(n *FuncNode, rhs ast.Expr) (TypeRef, bool) {
	switch x := rhs.(type) {
	case *ast.ParenExpr:
		return ix.inferRHS(n, x.X)
	case *ast.CompositeLit:
		if x.Type != nil {
			return ix.resolveTypeExpr(n.File, n.Pkg, x.Type)
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := x.X.(*ast.CompositeLit); ok && cl.Type != nil {
				return ix.resolveTypeExpr(n.File, n.Pkg, cl.Type)
			}
		}
	case *ast.Ident:
		ref, ok := n.env[x.Name]
		return ref, ok
	case *ast.TypeAssertExpr:
		if x.Type != nil {
			return ix.resolveTypeExpr(n.File, n.Pkg, x.Type)
		}
	case *ast.CallExpr:
		switch f := unparen(x.Fun).(type) {
		case *ast.Ident:
			switch f.Name {
			case "make", "new":
				if len(x.Args) > 0 {
					return ix.resolveTypeExpr(n.File, n.Pkg, x.Args[0])
				}
			default:
				if t, ok := ctorType(f.Name); ok {
					if ref, ok := ix.declared[typeKey{n.Pkg.RelDir, t}]; ok {
						return ref, true
					}
				}
			}
		case *ast.SelectorExpr:
			base, ok := f.X.(*ast.Ident)
			if !ok {
				break
			}
			path, ok := ix.importsOf(n.File)[base.Name]
			if !ok {
				break
			}
			t, ok := ctorType(f.Sel.Name)
			if !ok {
				break
			}
			if dir, ok := ix.dirForImport(path); ok {
				if ref, ok := ix.declared[typeKey{dir, t}]; ok {
					return ref, true
				}
				return TypeRef{}, false
			}
			return TypeRef{Dir: extPrefix + path, Name: t}, true
		}
	}
	return TypeRef{}, false
}

// ctorType applies the NewFoo → Foo constructor convention.
func ctorType(fn string) (string, bool) {
	if !strings.HasPrefix(fn, "New") || len(fn) == 3 {
		return "", false
	}
	rest := fn[3:]
	if rest[0] < 'A' || rest[0] > 'Z' {
		return "", false
	}
	return rest, true
}

// inferLocals performs one flow-insensitive pass over a body, entering
// classifiable locals into the environment. Nested function literals
// are skipped — their locals belong to their own node.
func (ix *ipIndex) inferLocals(n *FuncNode, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if ref, ok := ix.inferRHS(n, x.Rhs[i]); ok {
					n.env[id.Name] = ref
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if vs.Type != nil {
					if ref, ok := ix.resolveTypeExpr(n.File, n.Pkg, vs.Type); ok {
						for _, name := range vs.Names {
							if name.Name != "_" {
								n.env[name.Name] = ref
							}
						}
					}
					continue
				}
				if len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						if ref, ok := ix.inferRHS(n, vs.Values[i]); ok {
							n.env[name.Name] = ref
						}
					}
				}
			}
		}
		return true
	})
}

// buildEnvAndWalk fills a declaration node's environment and runs the
// summary walker over its body.
func (ix *ipIndex) buildEnvAndWalk(n *FuncNode) {
	fd := n.Decl
	ix.classifyFieldList(n, fd.Recv)
	ix.classifyFieldList(n, fd.Type.Params)
	ix.classifyFieldList(n, fd.Type.Results)
	ix.inferLocals(n, fd.Body)
	ix.walkNode(n, fd.Body)
}

// walkNode runs the summary walker over one node's body.
func (ix *ipIndex) walkNode(n *FuncNode, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	w := &funcWalker{ix: ix, n: n}
	held := map[string]bool{}
	w.stmtList(body.List, held)
}

// resolveCallees resolves a call expression to its module callees per
// the resolution ladder. The bool result marks conservative
// (interface-fallback) resolution.
func (ix *ipIndex) resolveCallees(n *FuncNode, call *ast.CallExpr) ([]FuncID, bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, shadowed := n.env[fun.Name]; shadowed {
			return nil, false
		}
		id := FuncID(n.Pkg.RelDir + ":" + fun.Name)
		if _, ok := ix.funcs[id]; ok {
			return []FuncID{id}, false
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if _, isVar := n.env[base.Name]; !isVar {
				if path, ok := ix.importsOf(n.File)[base.Name]; ok {
					if dir, ok := ix.dirForImport(path); ok {
						id := FuncID(dir + ":" + fun.Sel.Name)
						if _, ok := ix.funcs[id]; ok {
							return []FuncID{id}, false
						}
					}
					return nil, false // external package call
				}
			}
		}
		if ref, ok := ix.resolveValue(n, fun.X); ok {
			if ref.Name != "" && ref.moduleNamed() {
				id := FuncID(ref.Dir + ":" + ref.Name + "." + fun.Sel.Name)
				if _, ok := ix.funcs[id]; ok {
					return []FuncID{id}, false
				}
			}
			return nil, false // resolved receiver, method elsewhere: silence
		}
		if ix.ifaceMethods[fun.Sel.Name] {
			cands := ix.methodsByName[fun.Sel.Name]
			if len(cands) > 0 && len(cands) <= maxConservativeFanout {
				return cands, true
			}
		}
	}
	return nil, false
}

// lockTarget resolves the receiver of a Lock/Unlock/RLock/RUnlock call
// to a stable lock ID: a mutex struct field (owner type resolved
// through the environment and field index) or a package-level mutex
// variable.
func (ix *ipIndex) lockTarget(n *FuncNode, base ast.Expr) (string, bool) {
	switch x := unparen(base).(type) {
	case *ast.SelectorExpr:
		owner, ok := ix.resolveValue(n, x.X)
		if !ok || !owner.moduleNamed() {
			return "", false
		}
		ft, ok := ix.fieldType(owner, x.Sel.Name)
		if !ok || !ft.isMutex() {
			return "", false
		}
		if owner.Dir == "." {
			return owner.Name + "." + x.Sel.Name, true
		}
		return owner.Dir + "." + owner.Name + "." + x.Sel.Name, true
	case *ast.Ident:
		if _, shadowed := n.env[x.Name]; shadowed {
			return "", false // function-local mutex: no stable cross-function ID
		}
		if ix.pkgMutexVars[n.Pkg.RelDir][x.Name] {
			if n.Pkg.RelDir == "." {
				return x.Name, true
			}
			return n.Pkg.RelDir + "." + x.Name, true
		}
	}
	return "", false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprCtx carries the syntactic context an expression is evaluated in,
// for the allocation exemptions.
type exprCtx struct {
	// inReturn: the expression sits inside a return statement —
	// fmt.Errorf/errors.New there are the cold error path.
	inReturn bool
	// mapIndex: the expression is an index operand — string(b) used as
	// a map key does not allocate.
	mapIndex bool
}

// funcWalker computes one node's direct summary: a linear scan of the
// body in source order, tracking the held-lock set the way
// lockdiscipline does (branch-local state never leaks back out;
// deferred unlocks do not clear the set).
type funcWalker struct {
	ix     *ipIndex
	n      *FuncNode
	litSeq int
}

func copyHeld(h map[string]bool) map[string]bool {
	c := make(map[string]bool, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func heldList(h map[string]bool) []string {
	if len(h) == 0 {
		return nil
	}
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (w *funcWalker) alloc(pos token.Pos, what string) {
	w.n.Allocs = append(w.n.Allocs, AllocSite{Pos: pos, What: what})
}

func (w *funcWalker) stmtList(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmtLabeled(s, held, "")
	}
}

// lockOp classifies a call expression as a resolvable mutex operation.
func (w *funcWalker) lockOp(call *ast.CallExpr) (op, lock string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	id, ok := w.ix.lockTarget(w.n, sel.X)
	if !ok {
		return "", "", false
	}
	return sel.Sel.Name, id, true
}

func (w *funcWalker) recordLock(op, lock string, pos token.Pos, held map[string]bool) {
	switch op {
	case "Lock", "RLock":
		w.n.Locks = append(w.n.Locks, LockEvent{Lock: lock, Op: op, Pos: pos, Held: heldList(held)})
		held[lock] = true
	case "Unlock", "RUnlock":
		w.n.Locks = append(w.n.Locks, LockEvent{Lock: lock, Op: op, Pos: pos})
		delete(held, lock)
	}
}

func (w *funcWalker) stmtLabeled(s ast.Stmt, held map[string]bool, label string) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.expr(x.X, held, exprCtx{})
	case *ast.AssignStmt:
		w.assign(x, held)
	case *ast.IncDecStmt:
		if ie, ok := x.X.(*ast.IndexExpr); ok {
			w.mapGrowth(ie)
		}
		w.expr(x.X, held, exprCtx{})
	case *ast.SendStmt:
		if len(held) > 0 {
			w.n.Sends = append(w.n.Sends, HeldEvent{Pos: x.Pos(), Held: heldList(held), What: "channel send"})
		}
		w.expr(x.Chan, held, exprCtx{})
		w.expr(x.Value, held, exprCtx{})
	case *ast.GoStmt:
		w.spawnStmt(x, held)
	case *ast.DeferStmt:
		// A deferred call runs at return under whatever state the body
		// established: the call itself is not summarized (matching
		// lockdiscipline), only its argument expressions, which are
		// evaluated now.
		for _, a := range x.Call.Args {
			w.expr(a, held, exprCtx{})
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r, held, exprCtx{inReturn: true})
		}
	case *ast.BlockStmt:
		nested := copyHeld(held)
		w.stmtList(x.List, nested)
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmtLabeled(x.Init, held, "")
		}
		w.expr(x.Cond, held, exprCtx{})
		w.stmtLabeled(x.Body, held, "")
		if x.Else != nil {
			w.stmtLabeled(x.Else, held, "")
		}
	case *ast.ForStmt:
		if x.Cond == nil && !loopExits(x, label) {
			w.n.LoopsForever = true
		}
		nested := copyHeld(held)
		if x.Init != nil {
			w.stmtLabeled(x.Init, nested, "")
		}
		if x.Cond != nil {
			w.expr(x.Cond, nested, exprCtx{})
		}
		if x.Post != nil {
			w.stmtLabeled(x.Post, nested, "")
		}
		w.stmtLabeled(x.Body, nested, "")
	case *ast.RangeStmt:
		if w.rangeOverChannel(x) {
			w.n.ObservesExit = true
		}
		w.expr(x.X, held, exprCtx{})
		nested := copyHeld(held)
		w.stmtLabeled(x.Body, nested, "")
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmtLabeled(x.Init, held, "")
		}
		if x.Tag != nil {
			w.expr(x.Tag, held, exprCtx{})
		}
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					w.expr(e, held, exprCtx{})
				}
				nested := copyHeld(held)
				w.stmtList(clause.Body, nested)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmtLabeled(x.Init, held, "")
		}
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				nested := copyHeld(held)
				w.stmtList(clause.Body, nested)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			nested := copyHeld(held)
			if clause.Comm != nil {
				w.stmtLabeled(clause.Comm, nested, "")
			}
			w.stmtList(clause.Body, nested)
		}
	case *ast.LabeledStmt:
		w.stmtLabeled(x.Stmt, held, x.Label.Name)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held, exprCtx{})
					}
				}
			}
		}
	}
}

// rangeOverChannel reports a range over a channel-typed (or
// shutdown-named) expression.
func (w *funcWalker) rangeOverChannel(x *ast.RangeStmt) bool {
	if ref, ok := w.ix.resolveValue(w.n, x.X); ok {
		return ref.Kind == RefChan
	}
	return stopChanRE.MatchString(lastName(x.X))
}

// lastName is the trailing identifier of an ident or selector chain.
func lastName(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// assign handles the allocation heuristics that need assignment
// context: map-index growth on the left, the self-append exemption on
// the right, and the two-value channel receive.
func (w *funcWalker) assign(x *ast.AssignStmt, held map[string]bool) {
	if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
		if u, ok := x.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.n.ObservesExit = true
		}
	}
	for _, lhs := range x.Lhs {
		if ie, ok := lhs.(*ast.IndexExpr); ok {
			w.mapGrowth(ie)
			w.expr(ie.X, held, exprCtx{})
			w.expr(ie.Index, held, exprCtx{mapIndex: true})
		}
	}
	for i, rhs := range x.Rhs {
		if call, ok := appendCall(rhs); ok {
			// x = append(x, …) (including x = append(x[:0], …), and the
			// field form b.buf = append(b.buf, …)) is the amortized
			// pooled-buffer idiom: steady-state zero-alloc, exempt.
			// Appending into a different destination copies on growth.
			if i < len(x.Lhs) && len(call.Args) > 0 && appendTarget(x.Lhs[i]) != "" &&
				appendTarget(x.Lhs[i]) == appendTarget(call.Args[0]) {
				for _, a := range call.Args {
					w.expr(a, held, exprCtx{})
				}
				continue
			}
			w.alloc(call.Pos(), "append into a new destination may allocate")
			for _, a := range call.Args {
				w.expr(a, held, exprCtx{})
			}
			continue
		}
		w.expr(rhs, held, exprCtx{})
	}
}

// mapGrowth records a store through a map index when the base resolves
// to a map type.
func (w *funcWalker) mapGrowth(ie *ast.IndexExpr) {
	if ref, ok := w.ix.resolveValue(w.n, ie.X); ok && ref.Kind == RefMap {
		w.alloc(ie.Pos(), "map store may grow the map")
	}
}

// appendCall matches append(…) on the right-hand side.
func appendCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	return call, true
}

// appendTarget renders the destination identity of an append operand:
// "x" for x and x[:0], "r.f" for r.f and r.f[:0]; "" when it has no
// stable identity.
func appendTarget(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base, ok := unparen(x.X).(*ast.Ident); ok {
			return base.Name + "." + x.Sel.Name
		}
	case *ast.SliceExpr:
		return appendTarget(x.X)
	}
	return ""
}

// expr is the recursive expression scanner: calls, spawns-in-args,
// receives, literals and conversions, with the held set threaded
// through.
func (w *funcWalker) expr(e ast.Expr, held map[string]bool, ctx exprCtx) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Ident, *ast.BasicLit:
		return
	case *ast.ParenExpr:
		w.expr(x.X, held, ctx)
	case *ast.SelectorExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
	case *ast.StarExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.receive(x.X)
			w.expr(x.X, held, exprCtx{})
			return
		}
		if x.Op == token.AND {
			if cl, ok := x.X.(*ast.CompositeLit); ok {
				w.alloc(x.Pos(), "composite-literal pointer allocates")
				w.compositeChildren(cl, held, ctx)
				return
			}
		}
		w.expr(x.X, held, ctx)
	case *ast.BinaryExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
		w.expr(x.Y, held, exprCtx{inReturn: ctx.inReturn})
	case *ast.CallExpr:
		w.call(x, held, ctx)
	case *ast.IndexExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
		w.expr(x.Index, held, exprCtx{inReturn: ctx.inReturn, mapIndex: true})
	case *ast.IndexListExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
	case *ast.SliceExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
		w.expr(x.Low, held, exprCtx{})
		w.expr(x.High, held, exprCtx{})
		w.expr(x.Max, held, exprCtx{})
	case *ast.CompositeLit:
		switch t := x.Type.(type) {
		case *ast.MapType:
			w.alloc(x.Pos(), "map literal allocates")
		case *ast.ArrayType:
			if t.Len == nil {
				w.alloc(x.Pos(), "slice literal allocates")
			}
		default:
			// Named map types still allocate; struct value literals are
			// stack-allocated and exempt.
			if x.Type != nil {
				if ref, ok := w.ix.resolveTypeExpr(w.n.File, w.n.Pkg, x.Type); ok && ref.Kind == RefMap {
					w.alloc(x.Pos(), "map literal allocates")
				}
			}
		}
		w.compositeChildren(x, held, ctx)
	case *ast.FuncLit:
		w.makeLit(x)
		w.alloc(x.Pos(), "closure allocation (func literal)")
	case *ast.KeyValueExpr:
		w.expr(x.Key, held, exprCtx{inReturn: ctx.inReturn})
		w.expr(x.Value, held, exprCtx{inReturn: ctx.inReturn})
	case *ast.TypeAssertExpr:
		w.expr(x.X, held, exprCtx{inReturn: ctx.inReturn})
	}
}

func (w *funcWalker) compositeChildren(cl *ast.CompositeLit, held map[string]bool, ctx exprCtx) {
	for _, elt := range cl.Elts {
		w.expr(elt, held, exprCtx{inReturn: ctx.inReturn})
	}
}

// receive classifies a channel-receive operand for exit observation.
func (w *funcWalker) receive(operand ast.Expr) {
	switch x := unparen(operand).(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			w.n.ObservesExit = true
		}
	default:
		_ = x
		if stopChanRE.MatchString(lastName(operand)) {
			w.n.ObservesExit = true
		}
	}
}

// call summarizes one call expression: lock ops, conversions,
// builtins, external allocation/boxing special cases, watched IO
// methods, RPC-under-lock, and resolved call edges.
func (w *funcWalker) call(call *ast.CallExpr, held map[string]bool, ctx exprCtx) {
	if op, lock, ok := w.lockOp(call); ok {
		w.recordLock(op, lock, call.Pos(), held)
		return
	}
	argCtx := exprCtx{inReturn: ctx.inReturn}
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: a synchronous call edge, no
		// closure escape.
		child := w.makeLit(fun)
		w.n.Calls = append(w.n.Calls, Call{Pos: call.Pos(), Callee: child.ID, Held: heldList(held)})
	case *ast.ArrayType:
		w.alloc(call.Pos(), "slice conversion allocates")
	case *ast.Ident:
		switch fun.Name {
		case "make":
			w.alloc(call.Pos(), "make allocates")
		case "new":
			w.alloc(call.Pos(), "new allocates")
		case "append":
			// Reached only outside the self-append assignment form.
			w.alloc(call.Pos(), "append may grow its destination")
		case "string":
			if !ctx.mapIndex {
				w.alloc(call.Pos(), "string conversion allocates")
			}
		case "len", "cap", "copy", "delete", "panic", "recover", "close",
			"print", "println", "min", "max", "clear", "complex", "real", "imag":
			// builtins that do not allocate
		default:
			if _, isType := w.ix.declared[typeKey{w.n.Pkg.RelDir, fun.Name}]; isType {
				break // conversion to a package-local named type
			}
			for _, id := range w.firstResolved(call) {
				w.n.Calls = append(w.n.Calls, Call{Pos: call.Pos(), Callee: id, Held: heldList(held)})
			}
		}
	case *ast.SelectorExpr:
		w.selectorCall(call, fun, held, ctx)
	}
	for _, a := range call.Args {
		w.expr(a, held, argCtx)
	}
}

// firstResolved wraps resolveCallees for the non-conservative ident
// case.
func (w *funcWalker) firstResolved(call *ast.CallExpr) []FuncID {
	ids, conservative := w.ix.resolveCallees(w.n, call)
	if conservative {
		return nil
	}
	return ids
}

// selectorCall handles pkg.F and x.M call shapes.
func (w *funcWalker) selectorCall(call *ast.CallExpr, fun *ast.SelectorExpr, held map[string]bool, ctx exprCtx) {
	if base, ok := fun.X.(*ast.Ident); ok {
		if _, isVar := w.n.env[base.Name]; !isVar {
			if path, ok := w.ix.importsOf(w.n.File)[base.Name]; ok {
				w.pkgCall(call, path, fun.Sel.Name, held, ctx)
				return
			}
		}
	}
	name := fun.Sel.Name
	if name == "Wait" {
		// WaitGroup-style join: an exit path whether or not the
		// receiver resolves.
		w.n.ObservesExit = true
	}
	if ref, ok := w.ix.resolveValue(w.n, fun.X); ok {
		if watchedErrorMethods[name] && !infallibleRecv(ref) {
			w.n.DirectWatched = true
		}
		if ref.Dir == extPrefix+"net/http" && name == "Do" && len(held) > 0 {
			w.n.Sends = append(w.n.Sends, HeldEvent{Pos: call.Pos(), Held: heldList(held), What: "http request"})
		}
	}
	ids, conservative := w.ix.resolveCallees(w.n, call)
	for _, id := range ids {
		w.n.Calls = append(w.n.Calls, Call{Pos: call.Pos(), Callee: id, Conservative: conservative, Held: heldList(held)})
	}
	w.expr(fun.X, held, exprCtx{inReturn: ctx.inReturn})
}

// pkgCall handles calls into other packages: module packages get call
// edges; a few external packages carry allocation/boxing or RPC
// significance.
func (w *funcWalker) pkgCall(call *ast.CallExpr, path, name string, held map[string]bool, ctx exprCtx) {
	if dir, ok := w.ix.dirForImport(path); ok {
		id := FuncID(dir + ":" + name)
		if _, ok := w.ix.funcs[id]; ok {
			w.n.Calls = append(w.n.Calls, Call{Pos: call.Pos(), Callee: id, Held: heldList(held)})
		}
		return
	}
	switch path {
	case "fmt":
		if name == "Errorf" && ctx.inReturn {
			break // cold error-construction path
		}
		w.alloc(call.Pos(), "fmt."+name+" boxes its arguments")
	case "errors":
		if name == "New" && !ctx.inReturn {
			w.alloc(call.Pos(), "errors.New allocates")
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head":
			if len(held) > 0 {
				w.n.Sends = append(w.n.Sends, HeldEvent{Pos: call.Pos(), Held: heldList(held), What: "http request"})
			}
		}
	}
}

// spawnStmt records a `go` statement: the spawned function becomes a
// Spawn edge (never a synchronous call — the goroutine does not
// inherit the spawner's locks), and the argument expressions are
// evaluated synchronously.
func (w *funcWalker) spawnStmt(g *ast.GoStmt, held map[string]bool) {
	call := g.Call
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		child := w.makeLit(lit)
		w.n.Spawns = append(w.n.Spawns, Spawn{Pos: g.Pos(), Callee: child.ID})
	} else {
		ids, conservative := w.ix.resolveCallees(w.n, call)
		for _, id := range ids {
			w.n.Spawns = append(w.n.Spawns, Spawn{Pos: g.Pos(), Callee: id, Conservative: conservative})
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X, held, exprCtx{})
		}
	}
	for _, a := range call.Args {
		w.expr(a, held, exprCtx{})
	}
}

// makeLit creates, indexes and walks the node for a function literal.
// The literal's environment is the lexical parent environment plus its
// own parameters and locals; its lock state starts empty (the literal
// runs later, elsewhere — synchronous invocation is modeled by the
// call edge, which carries the caller's held set).
func (w *funcWalker) makeLit(lit *ast.FuncLit) *FuncNode {
	w.litSeq++
	id := FuncID(string(w.n.ID) + "$" + strconv.Itoa(w.litSeq))
	child := &FuncNode{
		ID:           id,
		Pkg:          w.n.Pkg,
		File:         w.n.File,
		Lit:          lit,
		Display:      w.n.Display + "$" + strconv.Itoa(w.litSeq),
		Pos:          lit.Pos(),
		ReturnsError: lastResultIsError(lit.Type),
		env:          make(map[string]TypeRef, len(w.n.env)),
	}
	for k, v := range w.n.env {
		child.env[k] = v
	}
	w.ix.funcs[id] = child
	w.ix.classifyFieldList(child, lit.Type.Params)
	w.ix.classifyFieldList(child, lit.Type.Results)
	w.ix.inferLocals(child, lit.Body)
	w.ix.walkNode(child, lit.Body)
	return child
}

// loopExits reports whether a condition-less for loop has a reachable
// exit: a return anywhere in its body (outside nested literals), an
// unlabeled break at its own level, a break to its label, or a goto.
func loopExits(fs *ast.ForStmt, label string) bool {
	exits := false
	depth := 0
	var stack []bool
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				if stack[len(stack)-1] {
					depth--
				}
				stack = stack[:len(stack)-1]
			}
			return true
		}
		if exits {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = true
			return false
		case *ast.BranchStmt:
			switch x.Tok {
			case token.BREAK:
				if x.Label != nil {
					if label != "" && x.Label.Name == label {
						exits = true
					}
				} else if depth == 0 {
					exits = true
				}
			case token.GOTO:
				exits = true // conservatively assume the goto leaves
			}
			return false
		}
		breakable := false
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			breakable = true
		}
		if breakable {
			depth++
		}
		stack = append(stack, breakable)
		return true
	})
	return exits
}
