// Fixpoint propagation over the call graph built in interproc.go, and
// the public Interproc surface the analyzers program against.
//
// Facts split into two polarities. Generative facts (acquires a lock,
// loops forever, allocates, carries a watched IO error) can create
// findings, so they propagate only over precisely-resolved call edges
// — a conservative interface-fallback edge must never invent a
// deadlock or an allocation. Suppressive facts (observes an exit path)
// can only silence findings, so they propagate over every edge,
// conservative ones included: if any possible callee waits on
// ctx.Done, the spawn is given the benefit of the doubt.
package analysis

import (
	"go/ast"
	"sort"
)

// Interproc is the interprocedural layer over one Module: the node
// table, a deterministic iteration order, and the resolved stats.
// Obtain it through Module.Interproc, which builds it once and caches
// it across analyzers.
type Interproc struct {
	Module *Module
	Funcs  map[FuncID]*FuncNode
	// Order lists every FuncID sorted, the iteration order analyzers
	// use for deterministic reporting.
	Order []FuncID

	ix    *ipIndex
	stats CallGraphStats
}

// CallGraphStats is the shape of the call-graph block in sketchlint's
// -json output.
type CallGraphStats struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	SCCs  int `json:"sccs"`
}

// Interproc returns the module's interprocedural layer, building it on
// first use. The result is shared: analyzers must treat it as
// read-only.
func (m *Module) Interproc() *Interproc {
	m.ipOnce.Do(func() { m.ip = buildInterproc(m) })
	return m.ip
}

// Lookup returns the node for id, nil when absent.
func (ip *Interproc) Lookup(id FuncID) *FuncNode {
	return ip.Funcs[id]
}

// DeclNode returns the node of a function declaration in package p,
// nil for test files or bodyless declarations outside the graph.
func (ip *Interproc) DeclNode(p *Package, fd *ast.FuncDecl) *FuncNode {
	n := ip.Funcs[declFuncID(p, fd)]
	if n != nil && n.Decl == fd {
		return n
	}
	return nil
}

// Callees resolves a call expression appearing in node n, returning
// the module callees and whether resolution was conservative
// (interface fallback).
func (ip *Interproc) Callees(n *FuncNode, call *ast.CallExpr) ([]FuncID, bool) {
	return ip.ix.resolveCallees(n, call)
}

// ValueType resolves a value expression in node n to its type.
func (ip *Interproc) ValueType(n *FuncNode, e ast.Expr) (TypeRef, bool) {
	return ip.ix.resolveValue(n, e)
}

// WatchedCall reports whether call is a watched IO/serialization
// method call (MarshalBinary, Write, …) on a receiver that resolves to
// a fallible type; the returned name is the method name.
func (ip *Interproc) WatchedCall(n *FuncNode, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !watchedErrorMethods[sel.Sel.Name] {
		return "", false
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if _, isVar := n.env[base.Name]; !isVar {
			if _, isImport := ip.ix.importsOf(n.File)[base.Name]; isImport {
				return "", false // pkg.F, not a method call
			}
		}
	}
	ref, ok := ip.ix.resolveValue(n, sel.X)
	if !ok || infallibleRecv(ref) {
		return "", false
	}
	return sel.Sel.Name, true
}

// Stats returns the call-graph size counters.
func (ip *Interproc) Stats() CallGraphStats {
	return ip.stats
}

// finish freezes iteration order, runs the fixpoint, and computes the
// stats.
func (ip *Interproc) finish() {
	ip.Order = make([]FuncID, 0, len(ip.Funcs))
	for id := range ip.Funcs {
		ip.Order = append(ip.Order, id)
	}
	sort.Slice(ip.Order, func(i, j int) bool { return ip.Order[i] < ip.Order[j] })

	ip.fixpoint()

	edges := 0
	for _, id := range ip.Order {
		n := ip.Funcs[id]
		edges += len(n.Calls) + len(n.Spawns)
	}
	ip.stats = CallGraphStats{Nodes: len(ip.Funcs), Edges: edges, SCCs: ip.sccCount()}
}

// fixpoint initializes every node's transitive facts from its direct
// summary and iterates OR-propagation until stable. The module graph
// is small (hundreds of nodes), so plain iteration beats the
// bookkeeping of a worklist.
func (ip *Interproc) fixpoint() {
	for _, id := range ip.Order {
		n := ip.Funcs[id]
		n.TransAcquires = map[string]bool{}
		for _, l := range n.Locks {
			if l.Op == "Lock" || l.Op == "RLock" {
				n.TransAcquires[l.Lock] = true
			}
		}
		n.TransObservesExit = n.ObservesExit
		n.TransLoopsForever = n.LoopsForever
		n.TransAllocates = len(n.Allocs) > 0
		n.TransWatched = n.ReturnsError && n.DirectWatched
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ip.Order {
			n := ip.Funcs[id]
			for _, c := range n.Calls {
				callee := ip.Funcs[c.Callee]
				if callee == nil {
					continue
				}
				// Suppressive: all edges.
				if callee.TransObservesExit && !n.TransObservesExit {
					n.TransObservesExit = true
					changed = true
				}
				if c.Conservative {
					continue
				}
				// Generative: precise edges only.
				for lock := range callee.TransAcquires {
					if !n.TransAcquires[lock] {
						n.TransAcquires[lock] = true
						changed = true
					}
				}
				if callee.TransLoopsForever && !n.TransLoopsForever {
					n.TransLoopsForever = true
					changed = true
				}
				if callee.TransAllocates && !n.TransAllocates {
					n.TransAllocates = true
					changed = true
				}
				if callee.TransWatched && n.ReturnsError && !n.TransWatched {
					n.TransWatched = true
					changed = true
				}
			}
			// A spawned goroutine's exit observation covers the spawn,
			// not the spawner; no spawn-edge propagation.
		}
	}
}

// sccCount runs Tarjan's algorithm over all edges (calls and spawns)
// and returns the number of strongly connected components — a
// coarse-grained health stat for the CI artifact (a jump in SCC count
// usually means resolution broke).
func (ip *Interproc) sccCount() int {
	index := map[FuncID]int{}
	low := map[FuncID]int{}
	onStack := map[FuncID]bool{}
	var stack []FuncID
	next := 0
	count := 0

	succs := func(id FuncID) []FuncID {
		n := ip.Funcs[id]
		out := make([]FuncID, 0, len(n.Calls)+len(n.Spawns))
		for _, c := range n.Calls {
			out = append(out, c.Callee)
		}
		for _, s := range n.Spawns {
			out = append(out, s.Callee)
		}
		return out
	}

	var strongconnect func(v FuncID)
	strongconnect = func(v FuncID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wid := range succs(v) {
			if ip.Funcs[wid] == nil {
				continue
			}
			if _, seen := index[wid]; !seen {
				strongconnect(wid)
				if low[wid] < low[v] {
					low[v] = low[wid]
				}
			} else if onStack[wid] && index[wid] < low[v] {
				low[v] = index[wid]
			}
		}
		if low[v] == index[v] {
			count++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				if w == v {
					break
				}
			}
		}
	}
	for _, id := range ip.Order {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}
	return count
}
