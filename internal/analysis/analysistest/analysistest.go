// Package analysistest is the fixture harness for SketchTree's
// analyzers — the stdlib equivalent of x/tools' package of the same
// name. A fixture is a small source tree under testdata/src/<name>
// annotated with want comments:
//
//	for k := range m { // want "ranges over map"
//
// Each want comment holds one or more quoted regular expressions; each
// regexp must match a distinct finding reported on that line, matched
// against the "analyzer: message" form, and every finding must be
// claimed by a want. Makefile fixtures use the same syntax behind a
// '#' comment (the fuzz-smoke parser strips trailing comments the way
// the shell would).
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sketchtree/internal/analysis"
)

// wantRE pulls the quoted expectations out of a want comment.
var wantRE = regexp.MustCompile(`(?://|#|/\*)\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want regexp at one position, not yet matched.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the fixture module rooted at dir, runs the analyzers over
// it (including //lint:allow processing, exactly like cmd/sketchlint),
// and compares the findings against the fixture's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	m, err := analysis.Load(dir, nil)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants := collectWants(t, m)
	diags := analysis.Run(m, analyzers)

	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		if !claim(wants, d.File, d.Line, text) {
			t.Errorf("unexpected finding at %s:%d: %s", d.File, d.Line, text)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmet expectation at (file, line) whose regexp
// matches text; false when none does.
func claim(wants []*expectation, file string, line int, text string) bool {
	for _, w := range wants {
		if w.met || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(text) {
			w.met = true
			return true
		}
	}
	return false
}

// collectWants gathers the expectations of every fixture file: Go
// comments via the parsed ASTs, Makefile comments by line scan.
func collectWants(t *testing.T, m *analysis.Module) []*expectation {
	t.Helper()
	var out []*expectation
	add := func(file string, line int, text string) {
		groups := wantRE.FindAllStringSubmatch(text, -1)
		for _, g := range groups {
			for _, arg := range wantArgRE.FindAllStringSubmatch(g[1], -1) {
				pattern := strings.ReplaceAll(arg[1], `\"`, `"`)
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, line, pattern, err)
				}
				out = append(out, &expectation{file: file, line: line, re: re, raw: pattern})
			}
		}
	}
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, "want") {
						continue
					}
					add(f.RelPath, m.Fset.Position(c.Pos()).Line, c.Text)
				}
			}
		}
	}
	if m.Makefile != "" {
		for i, line := range strings.Split(m.Makefile, "\n") {
			if strings.Contains(line, "#") && strings.Contains(line, "want") {
				add("Makefile", i+1, line)
			}
		}
	}
	return out
}

// Fixture returns testdata/src/<name> relative to the caller's package
// directory, failing the test when it does not exist.
func Fixture(t *testing.T, name string) string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return dir
}
