package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is one parsed Go source file.
type File struct {
	// RelPath is the module-root-relative, slash-separated path.
	RelPath string
	AST     *ast.File
	// Test reports whether the file is a _test.go file.
	Test bool
}

// Package groups the files of one directory that share a package
// clause. A directory with both package x and package x_test yields
// two Packages with the same RelDir.
type Package struct {
	// Name is the package clause name.
	Name string
	// RelDir is the module-root-relative, slash-separated directory;
	// "." for the module root.
	RelDir string
	Files  []*File
}

// Module is one loaded source tree: every Go package under the root
// (testdata, vendor and dot-directories excluded) plus the root
// Makefile, parsed once and shared by every analyzer.
type Module struct {
	Root     string
	Fset     *token.FileSet
	Packages []*Package
	// Makefile is the root Makefile's contents, "" when absent.
	Makefile string
	// Path is the module path from go.mod ("" when absent). Import
	// paths under it resolve to packages of this module, which is what
	// lets the call graph follow cross-package calls.
	Path string

	// ip caches the interprocedural layer (call graph + summaries +
	// fixpoint facts), built once per Module and shared by every
	// analyzer that asks for it — see Interproc.
	ipOnce sync.Once
	ip     *Interproc
}

// rel maps an absolute (or FileSet-recorded) filename back to the
// module-root-relative slash form used in Diagnostics.
func (m *Module) rel(filename string) string {
	if r, err := filepath.Rel(m.Root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// Package returns the package with the given RelDir and name, or nil.
func (m *Module) Package(relDir, name string) *Package {
	for _, p := range m.Packages {
		if p.RelDir == relDir && p.Name == name {
			return p
		}
	}
	return nil
}

// skipDir reports directories the loader never descends into: VCS and
// tool state, vendored code, and testdata (fixtures are loaded
// explicitly by the tests that own them, never as module source).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		(strings.HasPrefix(name, ".") && name != ".")
}

// Load parses every Go file under root into a Module. overlay maps
// module-root-relative slash paths to replacement contents: an overlay
// entry shadows the on-disk file (or adds a file that does not exist),
// which is how driver tests analyze hypothetical edits without
// touching the tree. An overlay entry for "Makefile" replaces the
// Makefile. An empty overlay entry deletes the file from the module's
// view.
func Load(root string, overlay map[string][]byte) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: absRoot, Fset: token.NewFileSet()}

	seen := map[string]bool{}
	var paths []string
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != absRoot && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(absRoot, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		seen[rel] = true
		paths = append(paths, rel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for rel := range overlay {
		if strings.HasSuffix(rel, ".go") && !seen[rel] {
			paths = append(paths, rel)
		}
	}
	sort.Strings(paths)

	pkgs := map[string]*Package{} // keyed by RelDir + "\x00" + name
	for _, rel := range paths {
		var src any
		if content, ok := overlay[rel]; ok {
			if len(content) == 0 {
				continue // deleted from the module's view
			}
			src = content
		}
		af, err := parser.ParseFile(m.Fset, filepath.Join(absRoot, filepath.FromSlash(rel)), src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		relDir := filepath.ToSlash(filepath.Dir(rel))
		name := af.Name.Name
		key := relDir + "\x00" + name
		p := pkgs[key]
		if p == nil {
			p = &Package{Name: name, RelDir: relDir}
			pkgs[key] = p
			m.Packages = append(m.Packages, p)
		}
		p.Files = append(p.Files, &File{
			RelPath: rel,
			AST:     af,
			Test:    strings.HasSuffix(rel, "_test.go"),
		})
	}
	sort.Slice(m.Packages, func(i, j int) bool {
		a, b := m.Packages[i], m.Packages[j]
		if a.RelDir != b.RelDir {
			return a.RelDir < b.RelDir
		}
		return a.Name < b.Name
	})

	if content, ok := overlay["Makefile"]; ok {
		m.Makefile = string(content)
	} else if b, err := os.ReadFile(filepath.Join(absRoot, "Makefile")); err == nil {
		m.Makefile = string(b)
	}
	if content, ok := overlay["go.mod"]; ok {
		m.Path = modulePath(string(content))
	} else if b, err := os.ReadFile(filepath.Join(absRoot, "go.mod")); err == nil {
		m.Path = modulePath(string(b))
	}
	return m, nil
}

// modulePath extracts the module path from go.mod contents, "" when no
// module line is present.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
