package checks

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"sketchtree/internal/analysis"
)

// AtomicSafety enforces the obs/vstream/topk counter contract: a
// struct holding sync/atomic values or sync locks is written by one
// goroutine and snapshotted by others, which is only race-free while
// (a) the struct is never copied by value and (b) any field that is
// touched through the atomic API is touched exclusively through it.
// Per package it flags
//
//   - value receivers, parameters, results, assignments, call
//     arguments and by-value range loops involving a package-local
//     struct type that (transitively) contains atomic.* or sync lock
//     fields;
//   - reads or writes of a plain field that some other site in the
//     package updates via atomic.AddInt64/LoadUint32/… on its address.
//
// Resolution is syntactic and package-local (see util.go); what it
// cannot resolve it does not flag.
var AtomicSafety = &analysis.Analyzer{
	Name: "atomicsafety",
	Doc:  "atomic/lock-bearing structs are never copied and atomically-updated fields are never accessed directly",
	Run:  runAtomicSafety,
}

// syncLockNames are the sync types vet's copylocks would also refuse
// to copy; we re-derive the set because the framework has no type
// information and must catch copies hidden behind local struct types.
var syncLockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

func runAtomicSafety(pass *analysis.Pass) {
	for _, p := range pass.Module.Packages {
		nocopy := nocopyTypes(p)
		atomicFieldIdx := atomicFieldIndex(p)
		for _, fd := range funcDecls(p) {
			checkNoCopyFunc(pass, fd.File, fd.Decl, nocopy, atomicFieldIdx)
		}
		checkMixedAtomicAccess(pass, p)
	}
}

// sensitiveInFile reports whether type expression t directly mentions
// a sync/atomic type, a sync lock type, or (via local) a package-local
// type already known to be sensitive.
func sensitiveInFile(t ast.Expr, atomicPkg, syncPkg string, local map[string]bool) bool {
	switch x := t.(type) {
	case *ast.SelectorExpr:
		if isPkgSel(x, atomicPkg, "") {
			return true
		}
		return isPkgSel(x, syncPkg, "") && syncLockNames[x.Sel.Name]
	case *ast.IndexExpr: // atomic.Pointer[T]
		return sensitiveInFile(x.X, atomicPkg, syncPkg, local)
	case *ast.ArrayType:
		return sensitiveInFile(x.Elt, atomicPkg, syncPkg, local)
	case *ast.Ident:
		return local[x.Name]
	case *ast.StructType:
		for _, f := range x.Fields.List {
			if sensitiveInFile(f.Type, atomicPkg, syncPkg, local) {
				return true
			}
		}
	}
	return false
}

// nocopyTypes computes, to a fixpoint, the package-local named struct
// types that transitively contain atomic or lock fields and therefore
// must never be copied.
func nocopyTypes(p *analysis.Package) map[string]bool {
	out := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, f := range p.Files {
			atomicPkg := importName(f.AST, "sync/atomic")
			syncPkg := importName(f.AST, "sync")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || out[ts.Name.Name] {
					return true
				}
				if sensitiveInFile(ts.Type, atomicPkg, syncPkg, out) {
					out[ts.Name.Name] = true
					changed = true
				}
				return true
			})
		}
	}
	return out
}

// atomicFieldIndex records, per field name, whether every struct field
// of that name in the package has a sync/atomic type — used to flag
// copies of individual atomic values (v := c.count instead of
// c.count.Load()).
func atomicFieldIndex(p *analysis.Package) map[string]typeClass {
	idx := map[string]typeClass{}
	record := func(name string, c typeClass) {
		prev, seen := idx[name]
		if !seen {
			idx[name] = c
		} else if prev != c {
			idx[name] = classUnknown
		}
	}
	for _, f := range p.Files {
		atomicPkg := importName(f.AST, "sync/atomic")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				c := classOther
				isAtomic := false
				switch t := field.Type.(type) {
				case *ast.SelectorExpr:
					isAtomic = isPkgSel(t, atomicPkg, "")
				case *ast.IndexExpr:
					isAtomic = isPkgSel(t.X, atomicPkg, "")
				}
				if isAtomic {
					c = classMap // reusing the tri-state; classMap means "is atomic" here
				}
				for _, name := range field.Names {
					record(name.Name, c)
				}
			}
			return true
		})
	}
	return idx
}

// valueOfNoCopy resolves whether expression e denotes a by-value use
// of a nocopy struct: a local/parameter declared with that type, a
// dereference of a pointer to one, or a field the package consistently
// declares... only idents and derefs are resolved; selectors of
// struct-typed fields are left alone (field copies are caught by the
// atomic-field index instead).
func valueOfNoCopy(e ast.Expr, locals *localTypes, nocopy map[string]bool) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if t, ok := locals.named[x.Name]; ok && nocopy[t] {
			return t, true
		}
	case *ast.StarExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if t, ok := locals.ptr[id.Name]; ok && nocopy[t] {
				return t, true
			}
		}
	}
	return "", false
}

func checkNoCopyFunc(pass *analysis.Pass, file *analysis.File, fd *ast.FuncDecl,
	nocopy map[string]bool, atomicFields map[string]typeClass) {
	if len(nocopy) == 0 && len(atomicFields) == 0 {
		return
	}
	// Value receivers and by-value parameters/results.
	checkFieldList := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if id, ok := f.Type.(*ast.Ident); ok && nocopy[id.Name] {
				pass.Reportf(f.Type.Pos(),
					"%s passes %s by value; it contains atomic/lock fields and must be used by pointer",
					kind, id.Name)
			}
		}
	}
	checkFieldList(fd.Recv, "receiver")
	checkFieldList(fd.Type.Params, "parameter")
	checkFieldList(fd.Type.Results, "result")
	if fd.Body == nil {
		return
	}
	locals := inferLocals(fd, nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if t, ok := valueOfNoCopy(rhs, locals, nocopy); ok {
					pass.Reportf(rhs.Pos(),
						"assignment copies %s by value; it contains atomic/lock fields and must be used by pointer", t)
				}
				// v := c.count where count is an atomic field: the copy
				// detaches the value from the shared counter.
				if sel, ok := rhs.(*ast.SelectorExpr); ok && atomicFields[sel.Sel.Name] == classMap {
					pass.Reportf(rhs.Pos(),
						"copies atomic field %s by value; read it with .Load() instead", sel.Sel.Name)
				}
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if t, ok := valueOfNoCopy(arg, locals, nocopy); ok {
					pass.Reportf(arg.Pos(),
						"call passes %s by value; it contains atomic/lock fields and must be passed by pointer", t)
				}
			}
		case *ast.RangeStmt:
			if x.Value == nil {
				return true
			}
			if id, ok := x.Value.(*ast.Ident); ok && id.Name == "_" {
				return true
			}
			var elem string
			switch rx := x.X.(type) {
			case *ast.Ident:
				elem = locals.sliceOf[rx.Name]
			}
			if nocopy[elem] {
				pass.Reportf(x.Value.Pos(),
					"range copies %s elements by value; they contain atomic/lock fields — iterate by index", elem)
			}
		}
		return true
	})
}

// atomicAddrFuncs is the sync/atomic address-based API; any call
// atomic.F(&x.f, …) marks field f as atomically accessed.
var atomicAddrFuncs = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, t := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicAddrFuncs[op+t] = true
		}
	}
}

// checkMixedAtomicAccess flags fields that are updated through the
// address-based atomic API at one site and read or written directly at
// another — the pattern that silently loses the atomicity guarantee.
func checkMixedAtomicAccess(pass *analysis.Pass, p *analysis.Package) {
	atomicFields := map[string]bool{}           // field name -> accessed atomically somewhere
	atomicSites := map[*ast.SelectorExpr]bool{} // the &x.f selectors inside atomic calls

	for _, f := range p.Files {
		atomicPkg := importName(f.AST, "sync/atomic")
		if atomicPkg == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isPkgSel(sel, atomicPkg, "") || !atomicAddrFuncs[sel.Sel.Name] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if un, ok := call.Args[0].(*ast.UnaryExpr); ok && un.Op == token.AND {
				if fsel, ok := un.X.(*ast.SelectorExpr); ok {
					atomicFields[fsel.Sel.Name] = true
					atomicSites[fsel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	var names []string
	for n := range atomicFields {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] || !atomicFields[sel.Sel.Name] {
				return true
			}
			// Field names can collide across structs; keep the message
			// explicit about the heuristic so a false positive is easy
			// to silence with //lint:allow.
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package (%s); direct access races with it",
				sel.Sel.Name, strings.Join(names, ", "))
			return true
		})
	}
}
