package checks

import (
	"sketchtree/internal/analysis"
)

// GoroutineLeak requires every spawned goroutine that can run forever
// to participate in a shutdown protocol: somewhere in the spawned
// function (or its transitive callees, conservative interface edges
// included) there must be a receive from a ctx.Done()/stop/done
// channel, a range over a channel, a two-value receive, or a
// WaitGroup-style Wait. A goroutine that loops unconditionally and
// observes none of these can never be stopped — the class of leak the
// coordinator drain fix patched by hand in the cluster work.
//
// Goroutines that terminate on their own (no unconditional loop) are
// not leaks and are never flagged; spawns whose target cannot be
// resolved precisely are silent.
var GoroutineLeak = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "every spawned goroutine that loops forever observes a ctx/done/WaitGroup exit path",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *analysis.Pass) {
	ip := pass.Module.Interproc()
	for _, id := range ip.Order {
		n := ip.Funcs[id]
		for _, s := range n.Spawns {
			if s.Conservative {
				continue
			}
			callee := ip.Funcs[s.Callee]
			if callee == nil {
				continue
			}
			if callee.TransLoopsForever && !callee.TransObservesExit {
				pass.Reportf(s.Pos, "goroutine %s loops forever without observing an exit path (ctx.Done, stop/done channel, or WaitGroup); it cannot be shut down",
					callee.Display)
			}
		}
	}
}
