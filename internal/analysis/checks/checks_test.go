package checks_test

import (
	"testing"

	"sketchtree/internal/analysis/analysistest"
	"sketchtree/internal/analysis/checks"
)

func TestSafeParity(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "safeparity"), checks.SafeParity)
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "determinism"), checks.Determinism)
}

func TestAtomicSafety(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "atomicsafety"), checks.AtomicSafety)
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "lockdiscipline"), checks.LockDiscipline)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "lockorder"), checks.LockOrder)
}

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "goroutineleak"), checks.GoroutineLeak)
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "hotpath"), checks.HotPath)
}

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "errflow"), checks.ErrFlow)
}

func TestFuzzWired(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "fuzzwired"), checks.FuzzWired)
}

func TestSlogOnly(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "slogonly"), checks.SlogOnly)
}

// TestLintAllow checks the framework's directive hygiene findings via
// a fixture of malformed, unknown and stale //lint:allow comments.
func TestLintAllow(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "lintallow"), checks.Determinism)
}

func TestByName(t *testing.T) {
	if _, ok := checks.ByName("determinism,safeparity"); !ok {
		t.Error("known analyzer names rejected")
	}
	if _, ok := checks.ByName("nope"); ok {
		t.Error("unknown analyzer name accepted")
	}
	if all, ok := checks.ByName(""); !ok || len(all) != len(checks.All()) {
		t.Error("empty selection must mean all analyzers")
	}
}
