package checks

import (
	"go/ast"

	"sketchtree/internal/analysis"
)

// LockDiscipline enforces the Safe wrapper's exclusion contract: an
// exported Safe method may touch the wrapped engine (the s.st field)
// only after acquiring s.mu.Lock or s.mu.RLock on the same control
// path, or it must serve from the snapshot path (s.snapshotTree(),
// which never dereferences s.st). The few deliberate lock-free reads —
// Stats and EnableMetrics ride on the obs layer's atomics — carry
// //lint:allow lockdiscipline with the reason.
//
// The check is a linear scan of each method body: statements are
// visited in order, a call to s.mu.(R)Lock() arms the "locked" state
// for the statements that follow at the same nesting level (and
// everything nested under them), and any reference to s.st while
// unlocked is flagged. Unexported helpers are exempt — their locking
// contract is the caller's (and is documented per helper).
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "exported Safe methods lock s.mu (or use the snapshot path) before touching the wrapped engine",
	Run:  runLockDiscipline,
}

const (
	engineField = "st"
	mutexField  = "mu"
)

func runLockDiscipline(pass *analysis.Pass) {
	for _, p := range pass.Module.Packages {
		if p.RelDir != "." {
			continue
		}
		for _, fd := range funcDecls(p) {
			if fd.File.Test || fd.Decl.Body == nil {
				continue
			}
			if recvTypeName(fd.Decl) != wrapperType || !ast.IsExported(fd.Decl.Name.Name) {
				continue
			}
			recv := recvName(fd.Decl)
			if recv == "" {
				continue
			}
			c := &lockChecker{pass: pass, recv: recv, method: fd.Decl.Name.Name}
			locked := false
			c.stmts(fd.Decl.Body.List, &locked)
		}
	}
}

type lockChecker struct {
	pass   *analysis.Pass
	recv   string
	method string
}

// mutexCall classifies a statement that is exactly a recv.mu.X() call.
func (c *lockChecker) mutexCall(stmt ast.Stmt) string {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != mutexField {
		return ""
	}
	if id, ok := mu.X.(*ast.Ident); !ok || id.Name != c.recv {
		return ""
	}
	return sel.Sel.Name
}

// stmts scans a statement list in order, tracking the lock state.
// Nested blocks see the state at their entry; state changes inside
// them do not leak back out (conservative: a lock taken inside a
// branch does not cover the code after the branch).
func (c *lockChecker) stmts(list []ast.Stmt, locked *bool) {
	for _, stmt := range list {
		switch m := c.mutexCall(stmt); m {
		case "Lock", "RLock":
			*locked = true
			continue
		case "Unlock", "RUnlock":
			*locked = false
			continue
		}
		c.stmt(stmt, *locked)
	}
}

// stmt dispatches one statement: compound statements get their
// non-body expressions checked and their bodies scanned recursively;
// everything else is checked wholesale.
func (c *lockChecker) stmt(stmt ast.Stmt, locked bool) {
	nested := locked
	switch x := stmt.(type) {
	case *ast.DeferStmt:
		// defer s.mu.Unlock() pairs with the Lock already seen; a
		// deferred closure runs at return time under whatever state the
		// body established, so it is not scanned.
		return
	case *ast.BlockStmt:
		c.stmts(x.List, &nested)
	case *ast.IfStmt:
		if x.Init != nil {
			c.stmt(x.Init, locked)
		}
		c.exprCheck(x.Cond, locked)
		c.stmt(x.Body, locked)
		if x.Else != nil {
			c.stmt(x.Else, locked)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			c.stmt(x.Init, locked)
		}
		if x.Cond != nil {
			c.exprCheck(x.Cond, locked)
		}
		c.stmt(x.Body, locked)
	case *ast.RangeStmt:
		c.exprCheck(x.X, locked)
		c.stmt(x.Body, locked)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, locked)
		}
		if x.Tag != nil {
			c.exprCheck(x.Tag, locked)
		}
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					c.exprCheck(e, locked)
				}
				c.stmts(clause.Body, &nested)
				nested = locked
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(x.Body, locked)
	case *ast.SelectStmt:
		c.stmt(x.Body, locked)
	default:
		c.nodeCheck(stmt, locked)
	}
}

// exprCheck flags engine-field references in a single expression.
func (c *lockChecker) exprCheck(e ast.Expr, locked bool) {
	if e != nil {
		c.nodeCheck(e, locked)
	}
}

// nodeCheck walks any node for recv.st references while unlocked.
func (c *lockChecker) nodeCheck(n ast.Node, locked bool) {
	if locked {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != engineField {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != c.recv {
			return true
		}
		c.pass.Reportf(sel.Pos(),
			"(*%s).%s touches %s.%s without holding %s.%s (no Lock/RLock on this path); lock, or serve from the snapshot",
			wrapperType, c.method, c.recv, engineField, c.recv, mutexField)
		return true
	})
}
