// Fixture for the lockorder analyzer: inconsistent acquisition orders
// (direct and through a call chain) and a channel send under a lock.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type S struct {
	a  A
	b  B
	ch chan int
}

// lockAB and lockBA acquire the same two locks in opposite orders —
// the classic deadlock pair.
func (s *S) lockAB() {
	s.a.mu.Lock()
	s.b.mu.Lock() // want "lock-order cycle"
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}

func (s *S) lockBA() {
	s.b.mu.Lock()
	s.a.mu.Lock() // want "lock-order cycle"
	s.a.mu.Unlock()
	s.b.mu.Unlock()
}

func (s *S) sendLocked(v int) {
	s.a.mu.Lock()
	s.ch <- v // want "channel send while holding A.mu"
	s.a.mu.Unlock()
}

// consistent always locks a before b on a disjoint pair, so it adds no
// cycle.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

type T struct {
	c C
	d D
}

// lockCD orders c before d directly; lockDC reaches c's lock through a
// callee while holding d — the interprocedural half of the cycle.
func (t *T) lockCD() {
	t.c.mu.Lock()
	t.d.mu.Lock() // want "lock-order cycle"
	t.d.mu.Unlock()
	t.c.mu.Unlock()
}

func (t *T) lockDC() {
	t.d.mu.Lock()
	t.lockCOnly() // want "lock-order cycle"
	t.d.mu.Unlock()
}

func (t *T) lockCOnly() {
	t.c.mu.Lock()
	t.c.mu.Unlock()
}
