package sketchtree

import "sync"

// Safe is the fixture's concurrent wrapper.
type Safe struct {
	mu sync.RWMutex
	st *SketchTree
}

func (s *Safe) AddTree(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.AddTree(n)
}

// Estimate drops the error result: a signature mismatch.
func (s *Safe) Estimate(q string) float64 { return 0 } // want "safeparity: .*signature differs"
