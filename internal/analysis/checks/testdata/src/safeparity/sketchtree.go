// Fixture for the safeparity analyzer: the wrapped engine type with
// one wrapped method, one deliberately missing wrapper, one signature
// mismatch, and one allowed gap.
package sketchtree

// SketchTree is the fixture's wrapped engine.
type SketchTree struct{ n int }

func (s *SketchTree) AddTree(n int) error { return nil }

func (s *SketchTree) Estimate(q string) (float64, error) { return 0, nil }

func (s *SketchTree) Missing() int { return s.n } // want "safeparity: \(\*SketchTree\)\.Missing has no matching Safe wrapper"

//lint:allow safeparity deliberately unwrapped; exercises the suppression path
func (s *SketchTree) Allowed() int { return s.n }

// unexported methods are outside the parity contract.
func (s *SketchTree) helper() int { return s.n }
