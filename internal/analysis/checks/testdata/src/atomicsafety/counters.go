// Fixture for the atomicsafety analyzer: copies of atomic/lock-bearing
// structs and mixed atomic/direct field access.
package fixture

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits atomic.Int64
	mu   sync.Mutex
	n    int
}

// outer is sensitive transitively (the fixpoint case).
type outer struct{ c counters }

func (c counters) get() int { return c.n } // want "atomicsafety: receiver passes counters by value"

func byValueParam(c counters) {} // want "atomicsafety: parameter passes counters by value"

func byValueNested(o outer) {} // want "atomicsafety: parameter passes outer by value"

// byPointer is the correct form: not flagged.
func byPointer(c *counters) {}

func copies() {
	var c counters
	d := c // want "assignment copies counters by value"
	_ = d
	use(c) // want "call passes counters by value"
}

func use(counters) {} // want "atomicsafety: parameter passes counters by value"

func deref(p *counters) {
	c := *p // want "assignment copies counters by value"
	_ = c
}

func rangeCopy(list []counters) {
	for _, c := range list { // want "range copies counters elements by value"
		_ = c
	}
}

// rangeByIndex is the correct form: not flagged.
func rangeByIndex(list []counters) {
	for i := range list {
		_ = list[i].n
	}
}

func detach(c *counters) int64 {
	v := c.hits // want "copies atomic field hits by value"
	return v.Load()
}

//lint:allow atomicsafety this copy is the fixture's suppression exercise
func allowedCopy(c counters) {}
