package fixture

import "sync/atomic"

// gauge's level field is updated through the address-based atomic API;
// every other access must go through it too.
type gauge struct {
	level int64
}

func bump(g *gauge) {
	atomic.AddInt64(&g.level, 1)
}

func read(g *gauge) int64 {
	return g.level // want "field level is accessed with sync/atomic elsewhere"
}
