// Fixture for the hotpath analyzer: a tagged function exercising every
// allocation class, the exemptions that keep the steady-state idioms
// silent, and calls into allocating vs. tagged callees.
package hotpath

import "fmt"

type E struct {
	buf []byte
	idx map[string]int
}

//lint:hotpath
func (e *E) Hot(b []byte, n int) int {
	e.buf = append(e.buf[:0], b...) // amortized self-append: exempt
	v := e.cold(n)                  // want "calls E.cold, which allocates"
	c := make([]int, 4)             // want "make allocates"
	s := fmt.Sprintf("%d", v)       // want "boxes its arguments"
	f := func() int { return v }    // want "closure allocation"
	e.idx[s] = v                    // want "map store may grow the map"
	go e.cold(v)                    // want "spawns E.cold"
	return c[0] + f()
}

func (e *E) cold(n int) int {
	s := make([]int, n)
	return len(s)
}

// HotOK only reads: the string conversion is a map index (elided by
// the compiler) and the tagged callee is checked on its own.
//
//lint:hotpath
func (e *E) HotOK(b []byte) int {
	return e.idx[string(b)]
}

//lint:hotpath
func (e *E) HotChain(b []byte) int {
	return e.HotOK(b)
}

// HotErr's fmt.Errorf sits in a return statement — the cold error
// path, exempt.
//
//lint:hotpath
func (e *E) HotErr(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("hotpath: empty input")
	}
	return nil
}
