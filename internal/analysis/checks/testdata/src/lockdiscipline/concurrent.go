// Fixture for the lockdiscipline analyzer: exported Safe methods must
// lock s.mu before touching the wrapped engine s.st.
package sketchtree

import "sync"

type SketchTree struct{ n int }

func (t *SketchTree) Count() int { return t.n }

type Safe struct {
	mu sync.RWMutex
	st *SketchTree
}

// Good locks before touching the engine: not flagged.
func (s *Safe) Good() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.Count()
}

func (s *Safe) Bad() int {
	return s.st.Count() // want "lockdiscipline: \(\*Safe\)\.Bad touches s.st without holding s.mu"
}

// BranchLeak locks only inside a branch; the lock state must not leak
// to the statements after it.
func (s *Safe) BranchLeak(cond bool) int {
	if cond {
		s.mu.Lock()
		s.mu.Unlock()
	}
	return s.st.Count() // want "touches s.st without holding"
}

func (s *Safe) AfterUnlock() int {
	s.mu.Lock()
	n := s.st.Count()
	s.mu.Unlock()
	return n + s.st.Count() // want "touches s.st without holding"
}

// unexported helpers carry the caller's locking contract: not checked.
func (s *Safe) helper() int { return s.st.Count() }

//lint:allow lockdiscipline the engine call below reads only atomics; lock-free by design
func (s *Safe) Allowed() int { return s.st.Count() }
