// Fixture for the determinism analyzer. The file name contains
// "persist", putting every function here in scope.
package fixture

import (
	"math/rand/v2"
	"sort"
	"time"
)

type table struct {
	counts map[uint64]int64
}

func (t *table) dump() []uint64 {
	var out []uint64
	for v := range t.counts { // want "determinism: ranges over map t.counts in nondeterministic order"
		out = append(out, v)
	}
	return out // never sorted: not the collect-and-sort idiom
}

func (t *table) stamp() int64 {
	now := time.Now() // want "determinism: calls time.Now"
	return now.UnixNano()
}

func (t *table) reseed() uint64 {
	r := rand.New(rand.NewPCG(1, 2)) // want "uses math/rand \(rand\.New\)" "uses math/rand \(rand\.NewPCG\)"
	return r.Uint64()
}

// sortedCollect is the canonical deterministic idiom: the loop only
// appends, and the slice is sorted afterwards. Not flagged.
func (t *table) sortedCollect() []uint64 {
	vs := make([]uint64, 0, len(t.counts))
	for v := range t.counts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// allowed demonstrates suppression of an order-independent fold.
func (t *table) allowed() int64 {
	var sum int64
	//lint:allow determinism summation commutes; iteration order cannot change the result
	for _, c := range t.counts {
		sum += c
	}
	return sum
}
