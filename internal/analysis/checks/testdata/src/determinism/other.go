package fixture

// Out of scope: the file name has no persist/merge marker, the package
// is not summary/exact, and the function name carries no serialization
// keyword — map iteration here is fine.
func tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MergeCounts is in scope by function name ("Merge").
func MergeCounts(dst, src map[string]int) {
	for k, v := range src { // want "determinism: ranges over map src in nondeterministic order"
		dst[k] += v
	}
}
