// Fixture for the errflow analyzer: dropped errors from watched
// serialization/IO methods, interprocedural watched-error provenance,
// the infallible-receiver exemptions, and the sanctioned //lint:allow
// discard.
package errflow

import (
	"bytes"
	"net/http"
)

type Syn struct{ n int }

func (s *Syn) MarshalBinary() ([]byte, error) { return nil, nil }

func handler(w http.ResponseWriter, s *Syn) {
	b, err := s.MarshalBinary()
	if err != nil {
		return
	}
	w.Write(b)       // want "the error from w.Write is discarded"
	_, _ = w.Write(b) // want "the error from w.Write is discarded"
	_ = persist(s)   // want "discarded error from persist carries a serialization/IO failure"
	if err := persist(s); err != nil { // checked: no finding
		_ = err
	}
}

// persist returns an error that originates at a MarshalBinary site,
// so its callers inherit the obligation.
func persist(s *Syn) error {
	_, err := s.MarshalBinary()
	return err
}

func dropDirect(s *Syn) {
	s.MarshalBinary() // want "the error from s.MarshalBinary is discarded"
}

// bytes.Buffer writes are documented infallible: exempt.
func buffered(b []byte) int {
	var buf bytes.Buffer
	buf.Write(b)
	return buf.Len()
}

func allowed(w http.ResponseWriter, b []byte) {
	_, _ = w.Write(b) //lint:allow errflow best-effort write to a client that may be gone
}
