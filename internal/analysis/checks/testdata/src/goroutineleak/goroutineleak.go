// Fixture for the goroutineleak analyzer: unstoppable forever-loops
// (spawned directly, as literals, and through a call chain) against
// goroutines with proper exit paths.
package goroutineleak

func work() {}

func leakyLoop() {
	for {
		work()
	}
}

func spawnLeaky() {
	go leakyLoop() // want "goroutine leakyLoop loops forever without observing an exit path"
}

func spawnLit() {
	go func() { // want "loops forever without observing an exit path"
		for {
			work()
		}
	}()
}

// runner loops forever only transitively, through leakyLoop.
func runner() {
	leakyLoop()
}

func spawnNested() {
	go runner() // want "goroutine runner loops forever without observing an exit path"
}

// cleanLoop observes a stop channel: not a leak.
func cleanLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}

func spawnClean(stop chan struct{}) {
	go cleanLoop(stop)
}

// drain ranges over a channel, exiting when it closes: not a leak.
func drain(jobs chan int) {
	for range jobs {
		work()
	}
}

func spawnDrain(jobs chan int) {
	go drain(jobs)
}

// bounded terminates on its own: not a leak.
func spawnBounded() {
	go work()
}
