// Fixture: packages outside internal/server and internal/cluster are
// out of the structured-logging contract's scope.
package fixture

import "log"

func boot() {
	log.Printf("starting up")
}
