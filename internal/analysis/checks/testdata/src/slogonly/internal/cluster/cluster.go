// Fixture: a renamed import of the log package is still caught.
package cluster

import (
	stdlog "log"
	"log/slog"
)

var logger = slog.Default()

func pull() {
	stdlog.Println("synopsis pull failed") // want "slogonly: stdlog\.Println bypasses the injected \*slog\.Logger"
	logger.Warn("synopsis pull failed", "shard", 0)
}
