// Fixture: internal/window joined the structured-logging contract —
// the sliding-window serving path logs through the injected logger.
package window

import (
	"log"
	"log/slog"
)

func advance(logger *slog.Logger) {
	log.Printf("slice rotated") // want "slogonly: log\.Printf bypasses the injected \*slog\.Logger"
	logger.Info("slice rotated", "slices", 4)
}

// shadowed binds the import's name to a *slog.Logger, the idiomatic
// handoff; calls through it are structured and exempt.
func shadowed(log *slog.Logger) {
	log.Info("refresh due")
}
