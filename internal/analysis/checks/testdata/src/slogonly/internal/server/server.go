// Fixture: serving-path package using the global log package.
package server

import (
	"log"
	"log/slog"
)

func handle(logger *slog.Logger) {
	log.Printf("request failed: %v", 42) // want "slogonly: log\.Printf bypasses the injected \*slog\.Logger"
	logger.Warn("request failed", "code", 500)
}

func fallback() *log.Logger { // want "slogonly: log\.Logger bypasses the injected \*slog\.Logger"
	return log.Default() // want "slogonly: log\.Default bypasses the injected \*slog\.Logger"
}

// log-named *slog.Logger parameters are fine: the contract is about
// the stdlib log package, not the identifier.
func slow(log *slog.Logger) {
	log.Info("slow request")
}
