// Fixture: test files are exempt from the contract.
package server

import (
	"log"
	"testing"
)

func TestHandle(t *testing.T) {
	log.Printf("debugging a test is fine")
}
