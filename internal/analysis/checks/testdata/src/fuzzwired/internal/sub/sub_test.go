package sub

import "testing"

func FuzzSub(f *testing.F) { f.Skip() }

func FuzzWrongDir(f *testing.F) { f.Skip() }
