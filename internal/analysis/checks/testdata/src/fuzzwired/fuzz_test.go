// Fixture for the fuzzwired analyzer: root-package fuzzers, one wired,
// one not, one allowed.
package fixture

import "testing"

func FuzzWired(f *testing.F) { f.Skip() }

func FuzzMissing(f *testing.F) { f.Skip() } // want "fuzzwired: FuzzMissing \(package \.\) is not run by the Makefile fuzz-smoke target"

//lint:allow fuzzwired covered transitively by FuzzWired's corpus; exercises suppression
func FuzzAllowed(f *testing.F) { f.Skip() }
