// Fixture for the framework's own directive hygiene: malformed,
// reason-less, unknown-analyzer and stale //lint:allow comments are
// findings in their own right. The block comments carry the
// expectations because the line comment is the directive under test.
package fixture

var (
	a = 1 /* want "lintallow: malformed directive" */                               //lint:allow
	b = 2 /* want "lintallow: directive for \"determinism\" is missing a reason" */ //lint:allow determinism
	c = 3 /* want "lintallow: directive names unknown analyzer" */                  //lint:allow nosuchcheck because reasons
	d = 4 /* want "lintallow: stale directive" */                                   //lint:allow determinism suppresses nothing on this line
)
