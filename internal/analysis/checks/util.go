// Package checks holds SketchTree's project-specific analyzers. Each
// analyzer enforces one structural invariant that go vet cannot see —
// invariants that previously survived only as reviewer folklore (the
// Safe-wrapper gaps PR 1 closed by hand, the byte-determinism the
// golden files pin, the atomics-only contract of the obs counters).
//
// Everything here is syntactic: there is no type checker. Shared
// helpers in this file approximate the type facts the analyzers need
// (struct field types, local variable types) from the AST of one
// package at a time, and deliberately resolve only the common, local
// cases — an unresolvable expression is never flagged.
package checks

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"

	"sketchtree/internal/analysis"
)

// All returns the project's analyzers in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SafeParity,
		Determinism,
		AtomicSafety,
		LockDiscipline,
		LockOrder,
		GoroutineLeak,
		HotPath,
		ErrFlow,
		FuzzWired,
		SlogOnly,
	}
}

// ByName resolves a comma-separated analyzer name list against All.
func ByName(names string) ([]*analysis.Analyzer, bool) {
	if names == "" {
		return All(), true
	}
	index := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := index[strings.TrimSpace(n)]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

// exprString renders an AST expression as source text — the
// signature-comparison currency of safeparity.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// recvTypeName returns the receiver's base type name of a method
// declaration ("SketchTree" for func (s *SketchTree) …), stripping
// pointers and type parameters; "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// recvName returns the receiver variable name of a method, "" when
// anonymous.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// importName returns the local name package path is imported under in
// file f, or "" when it is not imported. A dot import returns ".".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		// Default name: the last path element, skipping a major-version
		// suffix (math/rand/v2 binds rand, not v2).
		parts := strings.Split(p, "/")
		name := parts[len(parts)-1]
		if len(parts) > 1 && len(name) > 1 && name[0] == 'v' && name[1] >= '0' && name[1] <= '9' {
			name = parts[len(parts)-2]
		}
		return name
	}
	return ""
}

// isPkgSel reports whether e is a selector pkgName.selName where
// pkgName is a bare identifier (the syntactic shape of a package
// member reference). selName "" matches any member.
func isPkgSel(e ast.Expr, pkgName, selName string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || pkgName == "" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return false
	}
	return selName == "" || sel.Sel.Name == selName
}

// funcDecls yields every function declaration of the package, with the
// file it came from.
func funcDecls(p *analysis.Package) []struct {
	File *analysis.File
	Decl *ast.FuncDecl
} {
	var out []struct {
		File *analysis.File
		Decl *ast.FuncDecl
	}
	for _, f := range p.Files {
		for _, d := range f.AST.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, struct {
					File *analysis.File
					Decl *ast.FuncDecl
				}{f, fd})
			}
		}
	}
	return out
}

// typeClass is the coarse classification the analyzers work with.
type typeClass int

const (
	classUnknown typeClass = iota
	classMap               // a map type (or named map type)
	classOther             // known, and definitely not what the check targets
)

// fieldIndex approximates "what type does field name f have" for one
// package: it records, per field name, whether every struct field of
// that name in the package is a map (classMap), none are (classOther),
// or the declarations disagree (classUnknown — never flagged).
type fieldIndex map[string]typeClass

// namedMapTypes returns the package-local named types whose
// definition is a map.
func namedMapTypes(p *analysis.Package) map[string]bool {
	namedMap := map[string]bool{}
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if _, isMap := ts.Type.(*ast.MapType); isMap {
				namedMap[ts.Name.Name] = true
			}
			return true
		})
	}
	return namedMap
}

// buildFieldIndex scans every struct type declared in the package.
// namedMap seeds it with package-local named map types.
func buildFieldIndex(p *analysis.Package, namedMap map[string]bool) fieldIndex {
	isMapExpr := func(t ast.Expr) bool {
		if _, ok := t.(*ast.MapType); ok {
			return true
		}
		if id, ok := t.(*ast.Ident); ok {
			return namedMap[id.Name]
		}
		return false
	}
	idx := fieldIndex{}
	record := func(name string, c typeClass) {
		prev, seen := idx[name]
		if !seen {
			idx[name] = c
			return
		}
		if prev != c {
			idx[name] = classUnknown
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				c := classOther
				if isMapExpr(field.Type) {
					c = classMap
				}
				for _, name := range field.Names {
					record(name.Name, c)
				}
			}
			return true
		})
	}
	return idx
}

// localTypes tracks the syntactically inferable types of locals inside
// one function body: whether an identifier is map-typed, and (for
// atomicsafety) whether it names a value or pointer of a given struct
// type.
type localTypes struct {
	maps map[string]bool // ident -> is a map
	// named[v] = struct type name when v was declared as a value of
	// that type; ptr[v] when declared as a pointer to it; sliceOf[v]
	// when declared as a slice or array of it.
	named   map[string]string
	ptr     map[string]string
	sliceOf map[string]string
}

// inferLocals walks a function and classifies the obvious cases:
// make(map…), map literals, var declarations, parameters, and
// pointer/value declarations of package-local named types.
func inferLocals(fd *ast.FuncDecl, namedMap map[string]bool) *localTypes {
	lt := &localTypes{
		maps:    map[string]bool{},
		named:   map[string]string{},
		ptr:     map[string]string{},
		sliceOf: map[string]string{},
	}
	classify := func(name string, t ast.Expr) {
		switch x := t.(type) {
		case *ast.MapType:
			lt.maps[name] = true
		case *ast.Ident:
			if namedMap != nil && namedMap[x.Name] {
				lt.maps[name] = true
			} else {
				lt.named[name] = x.Name
			}
		case *ast.StarExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				lt.ptr[name] = id.Name
			}
		case *ast.ArrayType:
			if id, ok := x.Elt.(*ast.Ident); ok {
				lt.sliceOf[name] = id.Name
			}
		}
	}
	classifyRHS := func(name string, rhs ast.Expr) {
		switch x := rhs.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
				classify(name, x.Args[0])
			}
		case *ast.CompositeLit:
			if x.Type != nil {
				classify(name, x.Type)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok && cl.Type != nil {
					if id, ok := cl.Type.(*ast.Ident); ok {
						lt.ptr[name] = id.Name
					}
				}
			}
		case *ast.Ident:
			if lt.maps[x.Name] {
				lt.maps[name] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				classify(n.Name, f.Type)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				classify(n.Name, f.Type)
			}
		}
	}
	if fd.Body == nil {
		return lt
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					classifyRHS(id.Name, x.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				for _, n := range vs.Names {
					classify(n.Name, vs.Type)
				}
			}
		}
		return true
	})
	return lt
}
