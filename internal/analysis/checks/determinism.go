package checks

import (
	"go/ast"
	"go/token"
	"path"
	"strings"

	"sketchtree/internal/analysis"
)

// Determinism enforces the byte-determinism contract of the synopsis:
// golden files, bit-identical parallel merges, and the Eq. 2 / Eq. 7
// estimators all assume that serialization, merge and summary code
// paths produce identical output for identical state. In those paths
// the analyzer flags
//
//   - ranging over a map, unless the loop only collects keys into a
//     slice that is subsequently sorted (the canonical idiom);
//   - any use of time.Now;
//   - any use of math/rand or math/rand/v2 (randomized state must be
//     derived from Config.Seed so restored engines continue the same
//     synopsis).
//
// Scope is syntactic (see inDeterminismScope): files whose name
// contains "persist" or "merge", the summary and exact packages, and
// any function whose name contains a serialization-ish keyword.
// Intentional uses (e.g. re-seeding the top-k sampling RNG on
// Restore) are suppressed with //lint:allow determinism <reason>.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "no unsorted map iteration, time.Now or math/rand in serialization/merge/summary paths",
	Run:  runDeterminism,
}

// determinismKeywords puts a function in scope by name, wherever it
// lives: these are the names serialization and merge logic hides
// under.
var determinismKeywords = []string{
	"Marshal", "Unmarshal", "Encode", "Decode", "Restore",
	"Merge", "Snapshot", "Save", "Clone", "Golden", "ForEach",
}

// inDeterminismScope decides whether a function participates in a
// serialization/merge/summary code path.
func inDeterminismScope(relDir, relPath, funcName string) bool {
	base := path.Base(relPath)
	if strings.Contains(base, "persist") || strings.Contains(base, "merge") {
		return true
	}
	if relDir == "internal/summary" || relDir == "internal/exact" ||
		strings.HasSuffix(relDir, "/summary") || strings.HasSuffix(relDir, "/exact") {
		return true
	}
	for _, kw := range determinismKeywords {
		if strings.Contains(funcName, kw) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *analysis.Pass) {
	for _, p := range pass.Module.Packages {
		namedMap := namedMapTypes(p)
		fields := buildFieldIndex(p, namedMap)
		for _, fd := range funcDecls(p) {
			if fd.File.Test || fd.Decl.Body == nil {
				continue
			}
			if !inDeterminismScope(p.RelDir, fd.File.RelPath, fd.Decl.Name.Name) {
				continue
			}
			checkDeterminismFunc(pass, fd.File, fd.Decl, namedMap, fields)
		}
	}
}

func checkDeterminismFunc(pass *analysis.Pass, file *analysis.File, fd *ast.FuncDecl,
	namedMap map[string]bool, fields fieldIndex) {
	timePkg := importName(file.AST, "time")
	randPkg := importName(file.AST, "math/rand")
	randV2Pkg := importName(file.AST, "math/rand/v2")
	locals := inferLocals(fd, namedMap)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if isPkgSel(x, timePkg, "Now") {
				pass.Reportf(x.Pos(),
					"calls time.Now in a serialization/merge/summary path; output must not depend on the clock")
			}
			if isPkgSel(x, randPkg, "") || isPkgSel(x, randV2Pkg, "") {
				pass.Reportf(x.Pos(),
					"uses math/rand (%s.%s) in a serialization/merge/summary path; randomized state must derive from Config.Seed",
					x.X.(*ast.Ident).Name, x.Sel.Name)
			}
		case *ast.RangeStmt:
			if !isMapExprSyntactic(x.X, locals, fields) {
				return true
			}
			if sortedCollectIdiom(fd, x) {
				return true
			}
			pass.Reportf(x.Pos(),
				"ranges over map %s in nondeterministic order; collect the keys into a slice and sort first",
				exprString(pass.Module.Fset, x.X))
		}
		return true
	})
}

// isMapExprSyntactic reports whether e is map-typed as far as the
// package-local inference can tell. Unresolvable expressions are never
// maps.
func isMapExprSyntactic(e ast.Expr, locals *localTypes, fields fieldIndex) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return locals.maps[x.Name]
	case *ast.SelectorExpr:
		return fields[x.Sel.Name] == classMap
	}
	return false
}

// sortedCollectIdiom recognizes the canonical deterministic pattern:
// the map-range body does nothing but append (typically the keys) to
// slices, and at least one of those slices is later passed to a
// sort.* or slices.* call in the same function. The iteration order
// then cannot influence the output.
func sortedCollectIdiom(fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	var targets []string
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		targets = append(targets, lhs.Name)
	}
	if len(targets) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					for _, t := range targets {
						if id.Name == t {
							sorted = true
						}
					}
				}
				return true
			})
		}
		return true
	})
	return sorted
}
