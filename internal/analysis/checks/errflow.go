package checks

import (
	"go/ast"

	"sketchtree/internal/analysis"
)

// ErrFlow tracks the fate of errors born at serialization and IO
// sites: MarshalBinary/MarshalText, Write/WriteString/WriteTo, Flush
// and Encode. The error from such a call — or from a module function
// that transitively returns one (the interprocedural summary's
// watched-error provenance) — must be checked, returned, or discarded
// explicitly with //lint:allow errflow <reason>. A bare call statement
// or a blank-assigned error is a silent data-loss path.
//
// Receivers documented never to fail (bytes.Buffer, strings.Builder)
// are exempt, as are deferred calls (best-effort cleanup) and test
// files. Unresolvable receivers stay silent, per the framework
// doctrine.
var ErrFlow = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "errors from serialization/IO sites are checked, returned, or discarded with a reason",
	Run:  runErrFlow,
}

func runErrFlow(pass *analysis.Pass) {
	ip := pass.Module.Interproc()
	for _, id := range ip.Order {
		n := ip.Funcs[id]
		body := n.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.FuncLit:
				return false // its own node walks its own body
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					checkDrop(pass, ip, n, call)
				}
				return false
			case *ast.AssignStmt:
				if len(x.Rhs) == 1 && len(x.Lhs) > 0 {
					if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
						if blank, ok := x.Lhs[len(x.Lhs)-1].(*ast.Ident); ok && blank.Name == "_" {
							checkDrop(pass, ip, n, call)
						}
					}
				}
			}
			return true
		})
	}
}

// checkDrop classifies one fully- or error-discarded call. Precisely
// resolved module callees are judged by their summaries (does the
// callee return an error, does that error carry a watched IO
// failure); otherwise the watched-method-name heuristic applies.
func checkDrop(pass *analysis.Pass, ip *analysis.Interproc, n *analysis.FuncNode, call *ast.CallExpr) {
	ids, conservative := ip.Callees(n, call)
	if len(ids) > 0 && !conservative {
		returnsErr := false
		for _, cid := range ids {
			callee := ip.Lookup(cid)
			if callee == nil || !callee.ReturnsError {
				continue
			}
			returnsErr = true
			if callee.TransWatched {
				pass.Reportf(call.Pos(), "discarded error from %s carries a serialization/IO failure; check it, return it, or discard it with //lint:allow errflow <reason>",
					callee.Display)
				return
			}
		}
		if returnsErr {
			if _, ok := ip.WatchedCall(n, call); ok {
				pass.Reportf(call.Pos(), "the error from %s is discarded; check it, return it, or discard it with //lint:allow errflow <reason>",
					exprString(pass.Module.Fset, call.Fun))
			}
		}
		return
	}
	if _, ok := ip.WatchedCall(n, call); ok {
		pass.Reportf(call.Pos(), "the error from %s is discarded; check it, return it, or discard it with //lint:allow errflow <reason>",
			exprString(pass.Module.Fset, call.Fun))
	}
}
