package checks

import (
	"go/ast"
	"strings"

	"sketchtree/internal/analysis"
)

// SlogOnly enforces the structured-logging contract of the serving
// path: internal/server, internal/cluster and internal/window log
// through the injected
// *slog.Logger (which carries trace_id/shard/role attributes and obeys
// -log-format/-log-level), never through the global log package. A
// bare log.Printf there bypasses the level filter, breaks JSON log
// pipelines, and loses the trace correlation the flight recorder
// depends on. Other packages (cmd binaries, tooling) are out of scope.
var SlogOnly = &analysis.Analyzer{
	Name: "slogonly",
	Doc:  "internal/server, internal/cluster and internal/window log via the injected *slog.Logger, never the global log package",
	Run:  runSlogOnly,
}

// slogOnlyDirs are the module-relative directory prefixes under the
// structured-logging contract.
var slogOnlyDirs = []string{"internal/server", "internal/cluster", "internal/window"}

func runSlogOnly(pass *analysis.Pass) {
	for _, p := range pass.Module.Packages {
		if !slogOnlyScoped(p.RelDir) {
			continue
		}
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			// The local name "log" below is the stdlib log package, not
			// a *slog.Logger parameter: files that don't import "log"
			// (log/slog binds to slog) are skipped entirely.
			name := importName(f.AST, "log")
			if name == "" || name == "." {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncDecl:
					// A receiver or parameter named like the import (a
					// *slog.Logger called log is idiomatic here) shadows
					// it for the whole body.
					if fieldListHasName(x.Recv, name) || fieldListHasName(x.Type.Params, name) {
						return false
					}
				case *ast.FuncLit:
					if fieldListHasName(x.Type.Params, name) {
						return false
					}
				case *ast.SelectorExpr:
					if isPkgSel(x, name, "") {
						pass.Reportf(x.Pos(),
							"%s.%s bypasses the injected *slog.Logger; serving-path packages log structured (trace_id/role attrs, -log-format)",
							name, x.Sel.Name)
					}
				}
				return true
			})
		}
	}
}

// fieldListHasName reports whether any field in fl (receiver,
// parameter or result list) binds the given name.
func fieldListHasName(fl *ast.FieldList, name string) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// slogOnlyScoped reports whether a module-relative directory falls
// under the structured-logging contract.
func slogOnlyScoped(relDir string) bool {
	for _, d := range slogOnlyDirs {
		if relDir == d || strings.HasPrefix(relDir, d+"/") {
			return true
		}
	}
	return false
}
