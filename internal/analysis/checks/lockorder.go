package checks

import (
	"go/token"
	"sort"
	"strings"

	"sketchtree/internal/analysis"
)

// LockOrder builds the module-global lock-acquisition-order graph from
// the interprocedural summaries — an edge A→B for every site that
// acquires B while holding A, whether the acquisition is in the same
// body or reached through a resolved call chain — and reports two
// classes of hazard:
//
//   - cycles in the order graph: two paths that acquire the same locks
//     in opposite orders can deadlock under concurrency;
//   - blocking operations (channel sends, outbound HTTP requests)
//     performed while holding a lock: a slow or absent peer extends
//     the critical section indefinitely.
//
// Lock identity is resolved syntactically (mutex-typed struct fields
// and package-level mutex variables); conservative interface-fallback
// call edges never contribute order edges, so a cycle is always built
// from precisely-resolved acquisitions.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order is globally consistent and locks are not held across blocking sends or RPCs",
	Run:  runLockOrder,
}

func runLockOrder(pass *analysis.Pass) {
	ip := pass.Module.Interproc()

	type orderEdge struct{ from, to string }
	edgePos := map[orderEdge]token.Pos{}
	var edgeOrder []orderEdge
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return // re-entrancy is lockdiscipline's problem, not an order
		}
		e := orderEdge{from, to}
		if _, ok := edgePos[e]; !ok {
			edgePos[e] = pos
			edgeOrder = append(edgeOrder, e)
		}
	}

	for _, id := range ip.Order {
		n := ip.Funcs[id]
		for _, l := range n.Locks {
			if l.Op != "Lock" && l.Op != "RLock" {
				continue
			}
			for _, h := range l.Held {
				addEdge(h, l.Lock, l.Pos)
			}
		}
		for _, c := range n.Calls {
			if c.Conservative || len(c.Held) == 0 {
				continue
			}
			callee := ip.Funcs[c.Callee]
			if callee == nil {
				continue
			}
			acquired := make([]string, 0, len(callee.TransAcquires))
			for lock := range callee.TransAcquires {
				acquired = append(acquired, lock)
			}
			sort.Strings(acquired)
			for _, lock := range acquired {
				for _, h := range c.Held {
					addEdge(h, lock, c.Pos)
				}
			}
		}
		for _, s := range n.Sends {
			pass.Reportf(s.Pos, "%s while holding %s: a blocked peer extends the critical section indefinitely; release the lock first or use a non-blocking path",
				s.What, strings.Join(s.Held, ", "))
		}
	}

	// Tarjan over the lock graph: any SCC with more than one lock is a
	// potential deadlock; every edge inside it is reported at its
	// acquisition site.
	succ := map[string][]string{}
	var nodes []string
	seenNode := map[string]bool{}
	note := func(l string) {
		if !seenNode[l] {
			seenNode[l] = true
			nodes = append(nodes, l)
		}
	}
	for _, e := range edgeOrder {
		note(e.from)
		note(e.to)
		succ[e.from] = append(succ[e.from], e.to)
	}

	comp := lockSCCs(nodes, succ)
	for _, e := range edgeOrder {
		if comp[e.from] != comp[e.to] {
			continue
		}
		scc := make([]string, 0, 2)
		for _, l := range nodes {
			if comp[l] == comp[e.from] {
				scc = append(scc, l)
			}
		}
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		pass.Reportf(edgePos[e], "lock-order cycle: %s is acquired while holding %s, but elsewhere the opposite order is used (cycle: %s); pick one global order",
			e.to, e.from, strings.Join(scc, ", "))
	}
}

// lockSCCs assigns each lock a strongly-connected-component ID.
func lockSCCs(nodes []string, succ map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, nComp := 0, 0

	var connect func(v string)
	connect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			connect(v)
		}
	}
	return comp
}
