package checks

import (
	"sketchtree/internal/analysis"
)

// HotPath statically guards the zero-alloc contract that the
// AllocsPerRun benchmarks pin dynamically. A function tagged
//
//	//lint:hotpath
//
// in its doc comment (the AddTree ingest chain, the plan-cache-hit
// query path, the window fast path) must not introduce:
//
//   - closures, composite-literal pointers, make/new, map or slice
//     literals, string/[]byte conversions (a string conversion used as
//     a map index is exempt — the compiler elides it), map stores that
//     may grow the map, or appends into a new destination
//     (x = append(x, …) is the amortized pooled-buffer idiom and is
//     exempt);
//   - interface boxing via fmt (fmt.Errorf in a return statement is
//     the cold error path and is exempt, as is errors.New in a
//     return);
//   - goroutine spawns;
//   - calls into untagged module functions that transitively allocate
//     (tagged callees are checked on their own; unresolved and
//     conservative calls are silent).
//
// Amortized or opt-in allocations that are intentional carry
// //lint:allow hotpath with the reason, keeping the contract explicit
// at every site.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions tagged //lint:hotpath stay allocation-free and only call allocation-free code",
	Run:  runHotPath,
}

func runHotPath(pass *analysis.Pass) {
	ip := pass.Module.Interproc()
	for _, id := range ip.Order {
		n := ip.Funcs[id]
		if !n.HotPath {
			continue
		}
		for _, a := range n.Allocs {
			pass.Reportf(a.Pos, "hot path %s: %s; hoist it out of the hot path or pool it", n.Display, a.What)
		}
		for _, c := range n.Calls {
			if c.Conservative {
				continue
			}
			callee := ip.Funcs[c.Callee]
			if callee == nil || callee.HotPath {
				continue
			}
			if callee.TransAllocates {
				pass.Reportf(c.Pos, "hot path %s calls %s, which allocates; make the callee allocation-free and tag it //lint:hotpath, or hoist the call",
					n.Display, callee.Display)
			}
		}
		for _, s := range n.Spawns {
			callee := ip.Funcs[s.Callee]
			name := "a goroutine"
			if callee != nil {
				name = callee.Display
			}
			pass.Reportf(s.Pos, "hot path %s spawns %s: goroutine creation allocates; move the spawn off the hot path", n.Display, name)
		}
	}
}
