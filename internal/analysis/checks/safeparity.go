package checks

import (
	"fmt"
	"go/ast"
	"strings"

	"sketchtree/internal/analysis"
)

// SafeParity enforces the concurrent-API completeness invariant: every
// exported method of SketchTree must surface through the Safe wrapper
// with the same signature. PR 1 closed eight such gaps by hand
// (AddXML, Merge, Config, Save, …); this analyzer makes the class
// machine-checked. A capability that is deliberately not wrapped
// (e.g. Snapshot, which Safe exposes as SnapshotTree/EnableSnapshots)
// is suppressed at the SketchTree method with //lint:allow safeparity.
var SafeParity = &analysis.Analyzer{
	Name: "safeparity",
	Doc:  "every exported SketchTree method has a Safe wrapper with a matching signature",
	Run:  runSafeParity,
}

const (
	wrappedType = "SketchTree"
	wrapperType = "Safe"
)

// methodSig is one method's comparable shape: parameter and result
// types rendered as source text, joined positionally.
type methodSig struct {
	name    string
	params  string
	results string
	decl    *ast.FuncDecl
}

func runSafeParity(pass *analysis.Pass) {
	m := pass.Module
	var root *analysis.Package
	for _, p := range m.Packages {
		if p.RelDir != "." {
			continue
		}
		if hasType(p, wrappedType) && hasType(p, wrapperType) {
			root = p
			break
		}
	}
	if root == nil {
		return // nothing to check in this module
	}
	wrapped := methodsOf(pass, root, wrappedType)
	wrapper := methodsOf(pass, root, wrapperType)
	for _, ms := range wrapped {
		if !ast.IsExported(ms.name) {
			continue
		}
		w, ok := wrapper[ms.name]
		if !ok {
			pass.Reportf(ms.decl.Pos(),
				"(*%s).%s has no matching %s wrapper; the concurrent API must cover every capability",
				wrappedType, ms.name, wrapperType)
			continue
		}
		if w.params != ms.params || w.results != ms.results {
			pass.Reportf(w.decl.Pos(),
				"(*%s).%s%s signature differs from (*%s).%s%s",
				wrapperType, ms.name, fmt.Sprintf("(%s) (%s)", w.params, w.results),
				wrappedType, ms.name, fmt.Sprintf("(%s) (%s)", ms.params, ms.results))
		}
	}
}

// hasType reports whether the package declares the named type in a
// non-test file.
func hasType(p *analysis.Package, name string) bool {
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, d := range f.AST.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return true
				}
			}
		}
	}
	return false
}

// methodsOf collects the methods declared on typeName (value or
// pointer receiver) in the package's non-test files.
func methodsOf(pass *analysis.Pass, p *analysis.Package, typeName string) map[string]methodSig {
	out := map[string]methodSig{}
	for _, fd := range funcDecls(p) {
		if fd.File.Test || recvTypeName(fd.Decl) != typeName {
			continue
		}
		out[fd.Decl.Name.Name] = methodSig{
			name:    fd.Decl.Name.Name,
			params:  fieldListSig(pass, fd.Decl.Type.Params),
			results: fieldListSig(pass, fd.Decl.Type.Results),
			decl:    fd.Decl,
		}
	}
	return out
}

// fieldListSig renders a parameter or result list as a comma-joined
// type string, expanding grouped names (a, b int -> int, int) so
// spelling differences in names never matter.
func fieldListSig(pass *analysis.Pass, fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		t := exprString(pass.Module.Fset, f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, ", ")
}
