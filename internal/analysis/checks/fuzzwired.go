package checks

import (
	"go/ast"
	"regexp"
	"strings"

	"sketchtree/internal/analysis"
)

// FuzzWired enforces the fuzzing CI contract: every Fuzz* function in
// the module must be exercised by the Makefile's fuzz-smoke target
// (which CI runs), and the target must not reference fuzzers that no
// longer exist. The fuzz-smoke list is hand-maintained; without this
// check a new fuzzer silently rots out of CI — go test only runs one
// -fuzz target per invocation, so nothing else ever notices.
var FuzzWired = &analysis.Analyzer{
	Name: "fuzzwired",
	Doc:  "every Fuzz* function is wired into the Makefile fuzz-smoke target, and no stale entries remain",
	Run:  runFuzzWired,
}

// fuzzEntry is one `go test -fuzz` invocation parsed out of the
// fuzz-smoke recipe.
type fuzzEntry struct {
	name string // fuzzer name, ^$ anchors stripped
	pkg  string // package argument ("." or "./internal/…")
	line int    // 1-based Makefile line
}

var (
	fuzzFlagRE = regexp.MustCompile(`-fuzz\s+'([^']+)'`)
	fuzzNameRE = regexp.MustCompile(`Fuzz\w+`)
)

func runFuzzWired(pass *analysis.Pass) {
	// Every Fuzz* test function in the module, keyed by name.
	type fuzzFunc struct {
		pkg  string
		decl *ast.FuncDecl
	}
	funcs := map[string]fuzzFunc{}
	for _, p := range pass.Module.Packages {
		pkgArg := "."
		if p.RelDir != "." {
			pkgArg = "./" + p.RelDir
		}
		for _, fd := range funcDecls(p) {
			if !fd.File.Test || !strings.HasPrefix(fd.Decl.Name.Name, "Fuzz") {
				continue
			}
			funcs[fd.Decl.Name.Name] = fuzzFunc{pkg: pkgArg, decl: fd.Decl}
		}
	}

	entries, targetLine := parseFuzzSmoke(pass.Module.Makefile)
	if targetLine == 0 {
		if len(funcs) > 0 {
			pass.ReportAtf("Makefile", 1, 0,
				"no fuzz-smoke target found, but the module defines %d Fuzz* functions", len(funcs))
		}
		return
	}

	wired := map[string]fuzzEntry{}
	for _, e := range entries {
		wired[e.name] = e
		f, ok := funcs[e.name]
		switch {
		case !ok:
			pass.ReportAtf("Makefile", e.line, 0,
				"fuzz-smoke runs %s in %s, but no such fuzz function exists (stale entry)", e.name, e.pkg)
		case f.pkg != e.pkg:
			pass.ReportAtf("Makefile", e.line, 0,
				"fuzz-smoke runs %s in %s, but it lives in %s", e.name, e.pkg, f.pkg)
		}
	}
	for name, f := range funcs {
		if _, ok := wired[name]; !ok {
			pass.Reportf(f.decl.Pos(),
				"%s (package %s) is not run by the Makefile fuzz-smoke target; add it so CI exercises the fuzzer", name, f.pkg)
		}
	}
}

// parseFuzzSmoke extracts the `go test -fuzz` entries of the
// fuzz-smoke recipe. Returns the entries and the 1-based line of the
// target (0 when the Makefile has no fuzz-smoke target).
func parseFuzzSmoke(makefile string) ([]fuzzEntry, int) {
	if makefile == "" {
		return nil, 0
	}
	lines := strings.Split(makefile, "\n")
	var entries []fuzzEntry
	targetLine := 0
	inRecipe := false
	for i, line := range lines {
		if strings.HasPrefix(line, "fuzz-smoke:") {
			targetLine = i + 1
			inRecipe = true
			continue
		}
		if !inRecipe {
			continue
		}
		if !strings.HasPrefix(line, "\t") {
			if strings.TrimSpace(line) == "" {
				continue // blank lines may separate recipe chunks
			}
			inRecipe = false
			continue
		}
		// The shell treats an unquoted # as a comment in recipe lines;
		// parse what actually runs.
		if i := strings.Index(line, " #"); i >= 0 {
			line = line[:i]
		}
		m := fuzzFlagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := fuzzNameRE.FindString(m[1])
		if name == "" {
			continue
		}
		fields := strings.Fields(line)
		pkg := "."
		if last := fields[len(fields)-1]; strings.HasPrefix(last, ".") {
			pkg = last
		}
		entries = append(entries, fuzzEntry{name: name, pkg: pkg, line: i + 1})
	}
	return entries, targetLine
}
