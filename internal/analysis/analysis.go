// Package analysis is SketchTree's stdlib-only static-analysis
// framework — the skeleton of golang.org/x/tools/go/analysis, rebuilt
// on go/parser and go/ast alone so it needs no module dependencies
// (the build environment cannot fetch x/tools).
//
// An Analyzer bundles a name, a one-line contract, and a Run function
// that walks a loaded Module and emits position-tagged Diagnostics.
// Analyzers see the whole module at once (every package, plus the
// Makefile), because the invariants they enforce are cross-file:
// wrapper parity between types in different files, Makefile targets
// versus test functions, and so on. The project's analyzers live in
// the checks subpackage; cmd/sketchlint is the command-line driver.
//
// Findings are purely syntactic: there is no type checker behind
// them. Each analyzer documents the heuristics it uses to approximate
// type information and errs toward silence when it cannot resolve an
// expression. Intentional violations are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it — see Suppress.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a module-root-relative position, the
// analyzer that produced it, and the message. The JSON field names are
// the machine-output contract of cmd/sketchlint -json.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the human-readable file:line: analyzer: message form.
func (d Diagnostic) String() string {
	if d.Col > 0 {
		return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one static check over a Module.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line statement of the invariant enforced.
	Doc string
	// Run inspects pass.Module and reports findings through pass.
	Run func(pass *Pass)
}

// Pass carries one analyzer's execution over one module and collects
// its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module

	diags []Diagnostic
}

// Reportf records a finding at a token position from the module's
// FileSet.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	p.ReportAtf(p.Module.rel(position.Filename), position.Line, position.Column, format, args...)
}

// ReportAtf records a finding at an explicit file and line — used for
// positions outside the FileSet, such as Makefile lines. col may be 0.
func (p *Pass) ReportAtf(file string, line, col int, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		File:     file,
		Line:     line,
		Col:      col,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the module, applies //lint:allow
// suppression, validates the directives themselves (see CheckAllows),
// and returns the surviving findings sorted by file, line, analyzer.
// The run set doubles as the known-analyzer registry; a driver running
// a subset must use RunSelection so directives for analyzers that
// exist but were not selected are neither "unknown" nor "stale".
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	return RunSelection(m, analyzers, analyzers)
}

// RunSelection is Run with an explicit registry: run is executed,
// known is the full set of analyzers that exist for directive
// validation.
func RunSelection(m *Module, run, known []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range run {
		pass := &Pass{Analyzer: a, Module: m}
		a.Run(pass)
		out = append(out, pass.diags...)
	}
	dirs := collectAllows(m)
	out = Suppress(out, dirs)
	out = append(out, CheckAllows(dirs, run, known)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return dedupe(out)
}

// dedupe drops identical consecutive findings (e.g. two selector hits
// on one source line produce one actionable message). The input must
// be sorted.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
