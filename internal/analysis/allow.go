package analysis

import (
	"fmt"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	File     string // module-root-relative path
	Line     int    // line the comment sits on
	Analyzer string // analyzer being suppressed
	Reason   string // mandatory free-text justification
	used     bool   // suppressed at least one finding this run
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow directive in the module.
// The syntax is
//
//	//lint:allow <analyzer> <reason…>
//
// and the directive suppresses <analyzer>'s findings on its own line
// and on the line directly below (so it can sit as a trailing comment
// or as the last line of a doc comment).
func collectAllows(m *Module) []*allowDirective {
	var out []*allowDirective
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					d := &allowDirective{
						File: f.RelPath,
						Line: m.Fset.Position(c.Pos()).Line,
					}
					if len(fields) > 0 {
						d.Analyzer = fields[0]
					}
					if len(fields) > 1 {
						d.Reason = strings.Join(fields[1:], " ")
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// Suppress drops findings covered by a well-formed //lint:allow
// directive for the finding's analyzer on the same line or the line
// directly above, and marks those directives used.
func Suppress(ds []Diagnostic, dirs []*allowDirective) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := map[key]*allowDirective{}
	for _, d := range dirs {
		if d.Analyzer == "" || d.Reason == "" {
			continue // malformed; CheckAllows reports it
		}
		index[key{d.File, d.Line, d.Analyzer}] = d
	}
	var out []Diagnostic
	for _, diag := range ds {
		if d, ok := index[key{diag.File, diag.Line, diag.Analyzer}]; ok {
			d.used = true
			continue
		}
		if d, ok := index[key{diag.File, diag.Line - 1, diag.Analyzer}]; ok {
			d.used = true
			continue
		}
		out = append(out, diag)
	}
	return out
}

// allowAnalyzerName tags the framework's own findings about directive
// hygiene: malformed, unknown-analyzer, or stale //lint:allow comments
// are findings too, so suppressions cannot silently rot.
const allowAnalyzerName = "lintallow"

// CheckAllows validates the directives themselves: a directive must
// name an analyzer in known, carry a reason, and — when its analyzer
// actually ran — have suppressed something. Staleness is only
// checkable for analyzers in run; a directive for a known analyzer
// that was not selected this invocation is left alone.
func CheckAllows(dirs []*allowDirective, run, known []*Analyzer) []Diagnostic {
	ranSet := map[string]bool{}
	for _, a := range run {
		ranSet[a.Name] = true
	}
	knownSet := map[string]bool{}
	for _, a := range known {
		knownSet[a.Name] = true
	}
	var out []Diagnostic
	report := func(d *allowDirective, format string, args ...any) {
		out = append(out, Diagnostic{
			File: d.File, Line: d.Line, Analyzer: allowAnalyzerName,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, d := range dirs {
		switch {
		case d.Analyzer == "":
			report(d, "malformed directive: want %s <analyzer> <reason>", allowPrefix)
		case d.Reason == "":
			report(d, "directive for %q is missing a reason", d.Analyzer)
		case !knownSet[d.Analyzer]:
			report(d, "directive names unknown analyzer %q", d.Analyzer)
		case ranSet[d.Analyzer] && !d.used:
			report(d, "stale directive: %q reports nothing here anymore", d.Analyzer)
		}
	}
	return out
}
