package xi

import (
	"math/rand/v2"
	"testing"

	"sketchtree/internal/gf2"
)

var field4 = gf2.MustField(0b10011) // GF(16), x^4 + x + 1
var field63 = gf2.MustField(1<<63 | 1<<1 | 1)

func TestFamilyAccessors(t *testing.T) {
	b := NewBCHFamily(field63)
	if b.Independence() != 4 || b.Kind() != BCH || b.Field() != field63 {
		t.Error("BCH family accessors wrong")
	}
	p, err := NewPolyFamily(field63, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Independence() != 6 || p.Kind() != Poly {
		t.Error("Poly family accessors wrong")
	}
}

func TestNewPolyFamilyValidation(t *testing.T) {
	if _, err := NewPolyFamily(field63, 1); err == nil {
		t.Error("k=1 must be rejected")
	}
	if _, err := NewPolyFamily(gf2.MustField(0b111), 10); err == nil {
		t.Error("k exceeding a tiny field must be rejected")
	}
}

func TestXiIsPlusMinusOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, fam := range testFamilies(t) {
		g := fam.NewGenerator(rng)
		for v := uint64(0); v < 200; v++ {
			x := g.XiValue(v)
			if x != 1 && x != -1 {
				t.Fatalf("Xi = %d", x)
			}
			if x*x != 1 {
				t.Fatalf("Xi^2 = %d", x*x)
			}
		}
	}
}

func testFamilies(t *testing.T) []*Family {
	t.Helper()
	poly, err := NewPolyFamily(field63, 6)
	if err != nil {
		t.Fatal(err)
	}
	return []*Family{NewBCHFamily(field63), poly}
}

func TestXiDeterministicPerSeed(t *testing.T) {
	for _, fam := range testFamilies(t) {
		g := fam.NewGenerator(rand.New(rand.NewPCG(5, 6)))
		h := fam.NewGenerator(rand.New(rand.NewPCG(5, 6)))
		for v := uint64(0); v < 100; v++ {
			if g.XiValue(v) != h.XiValue(v) {
				t.Fatal("same seed must give same xi")
			}
		}
	}
}

func TestPrepareReuse(t *testing.T) {
	for _, fam := range testFamilies(t) {
		g := fam.NewGenerator(rand.New(rand.NewPCG(9, 1)))
		p := &Prep{}
		for v := uint64(0); v < 100; v++ {
			fam.Prepare(v, p)
			if g.Xi(p) != g.XiValue(v) {
				t.Fatalf("reused prep disagrees at v=%d", v)
			}
		}
	}
}

func TestPrepareNilAllocates(t *testing.T) {
	fam := NewBCHFamily(field63)
	p := fam.Prepare(42, nil)
	if p == nil || len(p.words) != 2 {
		t.Fatal("Prepare(nil) must allocate a 2-word prep for BCH")
	}
}

// Exhaustive exactness: over GF(16), enumerating every BCH seed, the
// sign pattern of (ξ_a, ξ_b, ξ_c, ξ_d) for distinct values must be
// exactly uniform over the 16 patterns — four-wise independence is a
// property of the construction, not an approximation.
func TestBCHExactFourWiseIndependence(t *testing.T) {
	fam := NewBCHFamily(field4)
	values := [][]uint64{
		{0, 1, 7, 9},
		{1, 2, 3, 4},
		{5, 10, 11, 15},
		{0, 3, 5, 6}, // 3^3=..., includes a dependent-looking set
	}
	for _, vs := range values {
		preps := make([]*Prep, 4)
		for i, v := range vs {
			preps[i] = fam.Prepare(v, nil)
		}
		counts := make(map[int]int)
		for sign := uint64(0); sign < 2; sign++ {
			for s1 := uint64(0); s1 < 16; s1++ {
				for s2 := uint64(0); s2 < 16; s2++ {
					g := &Generator{fam: fam, sign: sign, seed: []uint64{s1, s2}}
					pat := 0
					for i := range preps {
						pat <<= 1
						if g.Xi(preps[i]) == 1 {
							pat |= 1
						}
					}
					counts[pat]++
				}
			}
		}
		total := 2 * 16 * 16
		for pat := 0; pat < 16; pat++ {
			if counts[pat] != total/16 {
				t.Errorf("values %v: pattern %04b occurs %d times, want %d",
					vs, pat, counts[pat], total/16)
			}
		}
	}
}

// Exhaustive exactness for the polynomial construction: over GF(16)
// with k=3 coefficients, (ξ_a, ξ_b, ξ_c) for distinct values must be
// exactly uniform over the 8 patterns.
func TestPolyExactThreeWiseIndependence(t *testing.T) {
	fam, err := NewPolyFamily(field4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range [][]uint64{{0, 1, 2}, {3, 7, 12}, {1, 14, 15}} {
		preps := make([]*Prep, 3)
		for i, v := range vs {
			preps[i] = fam.Prepare(v, nil)
		}
		counts := make(map[int]int)
		for c0 := uint64(0); c0 < 16; c0++ {
			for c1 := uint64(0); c1 < 16; c1++ {
				for c2 := uint64(0); c2 < 16; c2++ {
					g := &Generator{fam: fam, seed: []uint64{c0, c1, c2}}
					pat := 0
					for i := range preps {
						pat <<= 1
						if g.Xi(preps[i]) == 1 {
							pat |= 1
						}
					}
					counts[pat]++
				}
			}
		}
		total := 16 * 16 * 16
		for pat := 0; pat < 8; pat++ {
			if counts[pat] != total/8 {
				t.Errorf("values %v: pattern %03b occurs %d times, want %d",
					vs, pat, counts[pat], total/8)
			}
		}
	}
}

// The prepared-mask fast path must agree with a direct polynomial
// evaluation in the field.
func TestPolyXiMatchesDirectEvaluation(t *testing.T) {
	fam, err := NewPolyFamily(field63, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 22))
	g := fam.NewGenerator(rng)
	for i := 0; i < 200; i++ {
		v := rng.Uint64() & (1<<63 - 1)
		// Direct: bit0 of c0 + c1 v + ... + c4 v^4 via Horner.
		acc := uint64(0)
		for j := len(g.seed) - 1; j >= 0; j-- {
			acc = field63.Add(field63.Mul(acc, v), g.seed[j])
		}
		want := int8(1)
		if acc&1 != 0 {
			want = -1
		}
		if got := g.XiValue(v); got != want {
			t.Fatalf("v=%#x: Xi=%d direct=%d", v, got, want)
		}
	}
}

// Empirical unbiasedness over seeds: for a fixed value, the mean of ξ
// over many independent generators concentrates near zero.
func TestEmpiricalUnbiasedness(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for _, fam := range testFamilies(t) {
		p := fam.Prepare(0xdeadbeef, nil)
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += int(fam.NewGenerator(rng).Xi(p))
		}
		// Std dev of the sum is sqrt(n) ~ 141; 5 sigma ~ 710.
		if sum > 710 || sum < -710 {
			t.Errorf("kind %v: mean xi = %v, not concentrated at 0", fam.Kind(), float64(sum)/n)
		}
	}
}

// Empirical pairwise decorrelation: for distinct values, E(ξ_a ξ_b)
// over seeds concentrates near zero.
func TestEmpiricalPairwiseIndependence(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for _, fam := range testFamilies(t) {
		pa := fam.Prepare(123456, nil)
		pb := fam.Prepare(654321, nil)
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			g := fam.NewGenerator(rng)
			sum += int(g.Xi(pa)) * int(g.Xi(pb))
		}
		if sum > 710 || sum < -710 {
			t.Errorf("kind %v: E(xi_a xi_b) = %v, not ~0", fam.Kind(), float64(sum)/n)
		}
	}
}

func TestDistinctValuesUsuallyDiffer(t *testing.T) {
	// A single generator must not be constant across values.
	rng := rand.New(rand.NewPCG(51, 52))
	for _, fam := range testFamilies(t) {
		g := fam.NewGenerator(rng)
		plus, minus := 0, 0
		for v := uint64(0); v < 1000; v++ {
			if g.XiValue(v) == 1 {
				plus++
			} else {
				minus++
			}
		}
		if plus < 300 || minus < 300 {
			t.Errorf("kind %v: degenerate generator (+%d/-%d)", fam.Kind(), plus, minus)
		}
	}
}

func TestSeedWordsAndMemory(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	b := NewBCHFamily(field63).NewGenerator(rng)
	if len(b.SeedWords()) != 3 || b.MemoryBytes() != 24 {
		t.Errorf("BCH seed words/mem: %v, %d", b.SeedWords(), b.MemoryBytes())
	}
	pf, _ := NewPolyFamily(field63, 6)
	p := pf.NewGenerator(rng)
	if len(p.SeedWords()) != 6 || p.MemoryBytes() != 48 {
		t.Errorf("Poly seed words/mem: %v, %d", p.SeedWords(), p.MemoryBytes())
	}
	if p.Family() != pf {
		t.Error("Family accessor wrong")
	}
}

func BenchmarkPrepareBCH(b *testing.B) {
	fam := NewBCHFamily(field63)
	p := &Prep{}
	for i := 0; i < b.N; i++ {
		fam.Prepare(uint64(i)*0x9e3779b97f4a7c15, p)
	}
}

func BenchmarkXiBCHPrepared(b *testing.B) {
	fam := NewBCHFamily(field63)
	g := fam.NewGenerator(rand.New(rand.NewPCG(1, 1)))
	p := fam.Prepare(0x123456789, nil)
	var acc int8
	for i := 0; i < b.N; i++ {
		acc += g.Xi(p)
	}
	sinkI8 = acc
}

func BenchmarkPreparePoly6(b *testing.B) {
	fam, _ := NewPolyFamily(field63, 6)
	p := &Prep{}
	for i := 0; i < b.N; i++ {
		fam.Prepare(uint64(i)*0x9e3779b97f4a7c15, p)
	}
}

func BenchmarkXiPoly6Prepared(b *testing.B) {
	fam, _ := NewPolyFamily(field63, 6)
	g := fam.NewGenerator(rand.New(rand.NewPCG(1, 1)))
	p := fam.Prepare(0x123456789, nil)
	var acc int8
	for i := 0; i < b.N; i++ {
		acc += g.Xi(p)
	}
	sinkI8 = acc
}

var sinkI8 int8

func TestGeneratorFromWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for _, fam := range testFamilies(t) {
		g := fam.NewGenerator(rng)
		r, err := fam.GeneratorFromWords(g.SeedWords())
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < 200; v++ {
			if g.XiValue(v) != r.XiValue(v) {
				t.Fatalf("kind %v: restored generator disagrees at %d", fam.Kind(), v)
			}
		}
	}
}

func TestGeneratorFromWordsValidation(t *testing.T) {
	bch := NewBCHFamily(field63)
	if _, err := bch.GeneratorFromWords([]uint64{1, 2}); err == nil {
		t.Error("wrong word count must fail")
	}
	if _, err := bch.GeneratorFromWords([]uint64{2, 1, 1}); err == nil {
		t.Error("non-bit sign word must fail")
	}
	if _, err := bch.GeneratorFromWords([]uint64{1, ^uint64(0), 1}); err == nil {
		t.Error("word exceeding the field must fail")
	}
	if _, err := bch.GeneratorFromWords([]uint64{1, 5, 9}); err != nil {
		t.Errorf("valid words rejected: %v", err)
	}
}

// The flattened Batch must agree exactly with per-generator Xi: the
// sketch counters it produces are persisted and golden-pinned, so the
// batched path has to be bit-identical, not just statistically equal.
func TestBatchMatchesGeneratorXi(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	poly, err := NewPolyFamily(field63, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []*Family{NewBCHFamily(field63), NewBCHFamily(field4), poly} {
		gens := make([]*Generator, 37)
		for i := range gens {
			gens[i] = fam.NewGenerator(rng)
		}
		b, err := NewBatch(gens)
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != len(gens) {
			t.Fatalf("Len = %d, want %d", b.Len(), len(gens))
		}
		x := make([]int64, len(gens))
		want := make([]int64, len(gens))
		bits := make([]uint8, len(gens))
		p := &Prep{}
		for i := 0; i < 200; i++ {
			v := rng.Uint64()
			delta := int64(rng.IntN(7) - 3)
			fam.Prepare(v, p)
			b.AddInto(p, delta, x)
			b.BitsInto(p, bits)
			for c, g := range gens {
				xi := g.Xi(p)
				want[c] += int64(xi) * delta
				if wantBit := uint8(0); xi == 1 && bits[c] != wantBit || xi == -1 && bits[c] != 1 {
					t.Fatalf("kind %v value %#x cell %d: bit %d, xi %d", fam.Kind(), v, c, bits[c], xi)
				}
			}
		}
		for c := range x {
			if x[c] != want[c] {
				t.Fatalf("kind %v cell %d: batched counter %d, per-generator %d", fam.Kind(), c, x[c], want[c])
			}
		}
	}
}

func TestNewBatchValidation(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Error("empty generator set must fail")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	a := NewBCHFamily(field63).NewGenerator(rng)
	b := NewBCHFamily(field4).NewGenerator(rng)
	if _, err := NewBatch([]*Generator{a, b}); err == nil {
		t.Error("mixed families must fail")
	}
}

func BenchmarkBatchAddIntoBCH175(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	fam := NewBCHFamily(field63)
	gens := make([]*Generator, 175) // s1=25 × s2=7, the default sketch
	for i := range gens {
		gens[i] = fam.NewGenerator(rng)
	}
	batch, err := NewBatch(gens)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]int64, len(gens))
	p := fam.Prepare(0x9e3779b97f4a7c15, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.AddInto(p, 1, x)
	}
}

func BenchmarkGeneratorXi175(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	fam := NewBCHFamily(field63)
	gens := make([]*Generator, 175)
	for i := range gens {
		gens[i] = fam.NewGenerator(rng)
	}
	x := make([]int64, len(gens))
	p := fam.Prepare(0x9e3779b97f4a7c15, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c, g := range gens {
			if g.Xi(p) == 1 {
				x[c]++
			} else {
				x[c]--
			}
		}
	}
}
