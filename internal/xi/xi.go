// Package xi generates the families of four-wise and k-wise independent
// ±1 random variables that drive AMS sketches (paper §3).
//
// Two constructions are provided:
//
//   - BCH: the Alon–Matias–Szegedy construction from parity-check
//     matrices of binary BCH codes. For a value v (an element of
//     GF(2^m)) the variable is ξ_v = (-1)^(s0 ⊕ <s1,v> ⊕ <s2,v³>),
//     where <a,b> is the GF(2) inner product of bit vectors and v³ is
//     computed in GF(2^m). The family {ξ_v} is exactly four-wise
//     independent. This is SketchTree's default.
//
//   - Poly: ξ_v = (-1)^bit0(c_0 + c_1·v + ... + c_(k-1)·v^(k-1)) with
//     uniformly random coefficients c_j in GF(2^m). Evaluations of a
//     random degree-(k-1) polynomial at distinct points are k-wise
//     independent uniform field elements, so any fixed bit of them is a
//     k-wise independent unbiased bit. This supplies the k-wise (k > 4)
//     variables required by the query-expression estimators of paper §4
//     (e.g. products of counts need at least 5-wise independence,
//     Appendix B).
//
// Computing ξ_v for one value across many sketch instances is the hot
// path of stream processing: each value updates s1 × s2 independent
// sketches. The API therefore splits the work into a value-side
// Prepare — the GF(2^m) products, done once per value — and a cheap
// per-instance Xi that reduces to AND + popcount-parity on the prepared
// words. For the Poly construction this uses the identity
// bit0(c · z) = parity(c & M(z)) with M(z) the bit-0 mask of
// multiplication by z (gf2.Field.Bit0MulMask).
package xi

import (
	"fmt"
	"math/bits"

	"sketchtree/internal/gf2"
)

// Kind selects the construction of a Family.
type Kind int

const (
	// BCH is the four-wise independent AMS construction.
	BCH Kind = iota
	// Poly is the k-wise independent polynomial-hash construction.
	Poly
)

// Family describes a construction of ±1 variables over a fixed field.
// All Generators of a family share the value-side preparation, so one
// Prep per stream value serves every sketch instance.
type Family struct {
	field *gf2.Field
	kind  Kind
	k     int // independence level; number of seed words
}

// NewBCHFamily returns the four-wise independent BCH family over the
// given field.
func NewBCHFamily(field *gf2.Field) *Family {
	return &Family{field: field, kind: BCH, k: 4}
}

// NewPolyFamily returns a k-wise independent polynomial family over the
// given field. k must be at least 2.
func NewPolyFamily(field *gf2.Field, k int) (*Family, error) {
	if k < 2 {
		return nil, fmt.Errorf("xi: independence level %d < 2", k)
	}
	if k > field.Degree() {
		// More coefficients than field elements on a path makes no
		// sense for tiny fields; guard against misconfiguration.
		if field.Degree() < 8 && k > 1<<uint(field.Degree()) {
			return nil, fmt.Errorf("xi: independence %d exceeds field size", k)
		}
	}
	return &Family{field: field, kind: Poly, k: k}, nil
}

// Independence returns the independence level of the family: 4 for BCH,
// k for Poly.
func (f *Family) Independence() int { return f.k }

// Field returns the underlying field.
func (f *Family) Field() *gf2.Field { return f.field }

// Kind returns the construction of this family.
func (f *Family) Kind() Kind { return f.kind }

// words returns the number of prepared/seed words per value.
func (f *Family) words() int {
	if f.kind == BCH {
		return 2 // v and v³
	}
	return f.k // masks for v^0 .. v^(k-1)
}

// Prep holds the value-side precomputation for one stream value. A
// Prep may be reused across calls to Prepare to avoid allocation.
type Prep struct {
	words []uint64
}

// Prepare computes the value-side words for v into p and returns p.
// If p is nil a new Prep is allocated. The value is reduced into the
// field; values must be below 2^Degree for the family to distinguish
// them.
//
//lint:hotpath
func (f *Family) Prepare(v uint64, p *Prep) *Prep {
	if p == nil {
		p = &Prep{} //lint:allow hotpath nil-Prep convenience path; update and query paths pass a reused Prep
	}
	n := f.words()
	if cap(p.words) < n {
		p.words = make([]uint64, n) //lint:allow hotpath grows once to the family width, then reused in place
	}
	p.words = p.words[:n]
	fv := f.field.Reduce(v)
	if f.kind == BCH {
		p.words[0] = fv
		p.words[1] = f.field.Cube(fv)
		return p
	}
	// Poly: masks[j] = Bit0MulMask(v^j).
	pow := uint64(1)
	for j := 0; j < n; j++ {
		p.words[j] = f.field.Bit0MulMask(pow)
		pow = f.field.Mul(pow, fv)
	}
	return p
}

// Generator is one member of the family, identified by its random
// seed. Generators of the same family evaluated on the same Prep give
// independent variables when their seeds are independent.
type Generator struct {
	fam  *Family
	sign uint64   // BCH only: the constant bit s0
	seed []uint64 // BCH: s1, s2; Poly: coefficients c_0..c_(k-1)
}

// NewGenerator draws a fresh random generator of the family from rnd.
func (f *Family) NewGenerator(rnd interface{ Uint64() uint64 }) *Generator {
	g := &Generator{fam: f, seed: make([]uint64, f.words())}
	mask := uint64(1)<<uint(f.field.Degree()) - 1
	if f.kind == BCH {
		g.sign = rnd.Uint64() & 1
	}
	for i := range g.seed {
		g.seed[i] = rnd.Uint64() & mask
	}
	return g
}

// Xi evaluates the generator's ±1 variable on a prepared value.
func (g *Generator) Xi(p *Prep) int8 {
	var bit uint64
	if g.fam.kind == BCH {
		bit = g.sign ^
			uint64(bits.OnesCount64(g.seed[0]&p.words[0])) ^
			uint64(bits.OnesCount64(g.seed[1]&p.words[1]))
	} else {
		for j, m := range p.words {
			bit ^= uint64(bits.OnesCount64(g.seed[j] & m))
		}
	}
	if bit&1 != 0 {
		return -1
	}
	return 1
}

// XiValue evaluates ξ_v directly; it allocates a Prep and is intended
// for tests and one-off queries, not the stream hot path.
func (g *Generator) XiValue(v uint64) int8 {
	return g.Xi(g.fam.Prepare(v, nil))
}

// Family returns the family the generator belongs to.
func (g *Generator) Family() *Family { return g.fam }

// SeedWords returns a copy of the generator's seed (for memory
// accounting and persistence). For BCH the first word is the sign bit.
func (g *Generator) SeedWords() []uint64 {
	out := make([]uint64, 0, len(g.seed)+1)
	if g.fam.kind == BCH {
		out = append(out, g.sign)
	}
	return append(out, g.seed...)
}

// GeneratorFromWords reconstructs a generator from the words returned
// by SeedWords, for synopsis persistence.
func (f *Family) GeneratorFromWords(words []uint64) (*Generator, error) {
	want := f.words()
	if f.kind == BCH {
		want++
	}
	if len(words) != want {
		return nil, fmt.Errorf("xi: seed has %d words, family needs %d", len(words), want)
	}
	g := &Generator{fam: f}
	if f.kind == BCH {
		if words[0] > 1 {
			return nil, fmt.Errorf("xi: BCH sign word %d is not a bit", words[0])
		}
		g.sign = words[0]
		words = words[1:]
	}
	mask := uint64(1)<<uint(f.field.Degree()) - 1
	g.seed = make([]uint64, len(words))
	for i, w := range words {
		if w&^mask != 0 {
			return nil, fmt.Errorf("xi: seed word %d exceeds the field", i)
		}
		g.seed[i] = w
	}
	return g, nil
}

// MemoryBytes returns the memory footprint of the generator's seed in
// bytes, used for the paper's synopsis-size accounting.
func (g *Generator) MemoryBytes() int {
	n := len(g.seed) * 8
	if g.fam.kind == BCH {
		n += 8
	}
	return n
}

// Batch is a flattened view of many generators of one family, laid out
// word-major: words[j][c] is seed word j of generator c, and signs[c]
// is generator c's BCH sign bit. Evaluating one prepared value against
// all generators then walks contiguous arrays instead of chasing one
// pointer per generator — the s1×s2-cell sketch update is the
// per-pattern inner loop of stream processing (paper Algorithm 1), so
// this layout is what makes "one ξ preparation, all counters" cheap.
//
// A Batch aliases nothing mutable: generator seeds are immutable after
// construction, so a Batch built once stays valid for the life of its
// generators and is safe for concurrent readers.
type Batch struct {
	fam   *Family
	n     int
	signs []uint64   // BCH sign bit per generator; nil for Poly
	words [][]uint64 // words[j][c] = seed word j of generator c
}

// NewBatch flattens the given generators, which must all belong to the
// same family.
func NewBatch(gens []*Generator) (*Batch, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("xi: empty generator set")
	}
	fam := gens[0].fam
	b := &Batch{fam: fam, n: len(gens), words: make([][]uint64, fam.words())}
	for j := range b.words {
		b.words[j] = make([]uint64, len(gens))
	}
	if fam.kind == BCH {
		b.signs = make([]uint64, len(gens))
	}
	for c, g := range gens {
		if g.fam != fam {
			return nil, fmt.Errorf("xi: generator %d belongs to a different family", c)
		}
		if b.signs != nil {
			b.signs[c] = g.sign
		}
		for j, w := range g.seed {
			b.words[j][c] = w
		}
	}
	return b, nil
}

// Len returns the number of generators in the batch.
func (b *Batch) Len() int { return b.n }

// AddInto adds delta·ξ_c(p) to x[c] for every generator c in one pass.
// x must have exactly Len entries. The update is branchless: ξ is ±1
// with equal probability, so a conditional here would mispredict half
// the time.
func (b *Batch) AddInto(p *Prep, delta int64, x []int64) {
	x = x[:b.n]
	if b.fam.kind == BCH {
		w0, w1 := p.words[0], p.words[1]
		s0 := b.words[0][:b.n]
		s1 := b.words[1][:b.n]
		signs := b.signs[:b.n]
		for c := range x {
			bit := signs[c] ^
				uint64(bits.OnesCount64(s0[c]&w0)) ^
				uint64(bits.OnesCount64(s1[c]&w1))
			m := -int64(bit & 1)
			x[c] += (delta ^ m) - m // delta when bit even, -delta when odd
		}
		return
	}
	for c := range x {
		var bit uint64
		for j, w := range p.words {
			bit ^= uint64(bits.OnesCount64(b.words[j][c] & w))
		}
		m := -int64(bit & 1)
		x[c] += (delta ^ m) - m
	}
}

// BitsInto writes each generator's parity bit on p — 0 for ξ = +1,
// 1 for ξ = −1 — into dst, which must have exactly Len entries. The
// query-side estimators use it to evaluate one value against every
// cell without per-cell generator dereferences.
//
//lint:hotpath
func (b *Batch) BitsInto(p *Prep, dst []uint8) {
	dst = dst[:b.n]
	if b.fam.kind == BCH {
		w0, w1 := p.words[0], p.words[1]
		s0 := b.words[0][:b.n]
		s1 := b.words[1][:b.n]
		signs := b.signs[:b.n]
		for c := range dst {
			bit := signs[c] ^
				uint64(bits.OnesCount64(s0[c]&w0)) ^
				uint64(bits.OnesCount64(s1[c]&w1))
			dst[c] = uint8(bit & 1)
		}
		return
	}
	for c := range dst {
		var bit uint64
		for j, w := range p.words {
			bit ^= uint64(bits.OnesCount64(b.words[j][c] & w))
		}
		dst[c] = uint8(bit & 1)
	}
}
