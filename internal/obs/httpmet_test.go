package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHTTPMetricsNilSafe(t *testing.T) {
	var m *HTTPMetrics
	m.Observe("/query", 200) // must not panic
	if got := m.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
}

func TestHTTPMetricsCountsAndOrder(t *testing.T) {
	m := NewHTTPMetrics()
	m.Observe("/query", 200)
	m.Observe("/query", 200)
	m.Observe("/query", 400)
	m.Observe("/ingest", 503)
	got := m.Snapshot()
	want := []HTTPSnapshot{
		{Endpoint: "/ingest", Code: 503, Count: 1},
		{Endpoint: "/query", Code: 200, Count: 2},
		{Endpoint: "/query", Code: 400, Count: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHTTPMetricsConcurrent(t *testing.T) {
	m := NewHTTPMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Observe("/ingest", 200)
			}
		}()
	}
	wg.Wait()
	got := m.Snapshot()
	if len(got) != 1 || got[0].Count != 800 {
		t.Fatalf("snapshot = %+v, want one counter at 800", got)
	}
}

func TestWriteHTTPProm(t *testing.T) {
	m := NewHTTPMetrics()
	m.Observe("/query", 200)
	m.Observe("/ingest", 413)
	var b strings.Builder
	WriteHTTPProm(&b, m.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# TYPE sketchtree_http_requests_total counter",
		`sketchtree_http_requests_total{endpoint="/ingest",code="413"} 1`,
		`sketchtree_http_requests_total{endpoint="/query",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestNopLogger(t *testing.T) {
	log := NopLogger()
	log.Info("dropped", "k", "v") // must not panic or write anywhere
	if log.Enabled(nil, 12) {     //nolint:staticcheck // nil ctx fine for Enabled
		t.Fatal("nop logger claims enabled at an absurd level")
	}
	allocs := testing.AllocsPerRun(100, func() {
		log.Debug("dropped")
	})
	if allocs != 0 {
		t.Fatalf("nop logger allocates %v allocs/op on Debug, want 0", allocs)
	}
}
