// Package obs is the pipeline's observability layer: cheap atomic
// counters, monotonic-clock stage timers, and a fixed-bucket query
// latency histogram, read out as a consistent-enough Snapshot.
//
// The design constraint is that instrumentation must never perturb the
// hot path it measures. Counter updates are single atomic adds with no
// locks and no allocation. Stage and query timing call the clock, so
// they are gated behind an enabled flag (EnableTimers): when timers
// are off, Now returns the zero Time and every *Since helper is a
// branch-and-return — no time syscall, no atomics. Engines therefore
// keep full tree/pattern accounting always, and pay for timing only
// when an operator opts in (e.g. cmd/sketchtree -metrics).
//
// A single Metrics value may be written by one updating goroutine and
// read by any number of Snapshot callers; all fields are atomics, so
// reads are race-free. Snapshot loads fields individually: totals are
// exact per counter but not cut at one instant across counters.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented pipeline stage.
type Stage int

const (
	// StageParse is XML decoding into labeled trees (producer side).
	StageParse Stage = iota
	// StageEnum is EnumTree pattern enumeration (Algorithm 1's driver).
	StageEnum
	// StageFingerprint is extended Prüfer sequencing plus the Rabin
	// fingerprint to a one-dimensional value (§6.1).
	StageFingerprint
	// StageSketch is ξ preparation plus the AMS sketch update across
	// the routed virtual stream.
	StageSketch
	// StageTopK is per-pattern top-k frequent-pattern processing
	// (Algorithm 4).
	StageTopK
	// StageMerge is the cell-wise shard merge of parallel ingestion.
	StageMerge
	// StagePlan is query-plan cache lookup (hit probe plus, on a miss,
	// plan construction and insertion).
	StagePlan
	// StagePublish is snapshot rebuild-and-publish: freezing the live
	// synopsis into the lock-free serving copy (standalone snapshot
	// serving and the coordinator's merged-serving publish).
	StagePublish

	// NumStages is the number of instrumented stages.
	NumStages = iota
)

var stageNames = [NumStages]string{
	"parse", "enum", "fingerprint", "sketch", "topk", "merge",
	"plan", "publish",
}

// String returns the stage's exposition name.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// NumLatencyBuckets is the number of query-latency histogram buckets.
// Bucket i counts queries with latency < 2^i microseconds; the last
// bucket is the overflow (+Inf) bucket, so the range spans 1 µs to
// ~65 ms before overflow.
const NumLatencyBuckets = 18

// LatencyBucketBound returns the exclusive upper bound of bucket i;
// the last bucket is unbounded and returns a negative duration.
func LatencyBucketBound(i int) time.Duration {
	if i >= NumLatencyBuckets-1 {
		return -1
	}
	return time.Duration(1000 << i) // 2^i microseconds, in nanoseconds
}

// latencyBucket maps a duration to its histogram bucket index.
func latencyBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, k for [2^(k-1), 2^k) µs
	if b >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return b
}

type stageCell struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Metrics is the write side of the observability layer. The zero value
// is ready to use with timers disabled. All methods are safe on a nil
// receiver (no-ops / zero values), so uninstrumented call sites need no
// guards.
type Metrics struct {
	timers atomic.Bool

	trees    atomic.Int64
	patterns atomic.Int64
	removes  atomic.Int64

	queries     atomic.Int64
	queryErrors atomic.Int64
	queryNanos  atomic.Int64
	queryBucket [NumLatencyBuckets]atomic.Int64

	stages [NumStages]stageCell
}

// EnableTimers switches stage and query-latency timing on or off.
// Counters are unaffected: they are always maintained.
func (m *Metrics) EnableTimers(on bool) {
	if m != nil {
		m.timers.Store(on)
	}
}

// TimersOn reports whether stage/latency timing is enabled.
func (m *Metrics) TimersOn() bool { return m != nil && m.timers.Load() }

// Now returns the current (monotonic) time when timers are enabled and
// the zero Time otherwise — the gate that keeps disabled
// instrumentation free of clock calls. Pair with StageSince/QueryDone,
// which ignore zero starts.
func (m *Metrics) Now() time.Time {
	if !m.TimersOn() {
		return time.Time{}
	}
	return time.Now()
}

// AddTrees adjusts the tree counter by delta (negative for removals).
func (m *Metrics) AddTrees(delta int64) {
	if m != nil {
		m.trees.Add(delta)
	}
}

// AddPatterns adjusts the pattern-occurrence counter by delta.
func (m *Metrics) AddPatterns(delta int64) {
	if m != nil {
		m.patterns.Add(delta)
	}
}

// AddRemoves counts explicit tree deletions (sliding windows).
func (m *Metrics) AddRemoves(n int64) {
	if m != nil {
		m.removes.Add(n)
	}
}

// StageAdd records n operations and their total duration against a
// stage. Call sites accumulate locally (e.g. per tree) and flush once,
// so the hot path performs two atomic adds per stage per tree.
func (m *Metrics) StageAdd(s Stage, n, nanos int64) {
	if m == nil || (n == 0 && nanos == 0) {
		return
	}
	m.stages[s].count.Add(n)
	m.stages[s].nanos.Add(nanos)
}

// StageSince records one operation against a stage, timed from start.
// A zero start (timers disabled at Now) is a no-op.
func (m *Metrics) StageSince(s Stage, start time.Time) {
	if m == nil || start.IsZero() {
		return
	}
	m.StageAdd(s, 1, time.Since(start).Nanoseconds())
}

// QueryStart marks the beginning of a query; it returns the zero Time
// when timers are disabled. The query is not counted until QueryDone.
func (m *Metrics) QueryStart() time.Time { return m.Now() }

// QueryDone counts one finished query and, when start is non-zero,
// folds its latency into the histogram. failed queries are counted
// separately and excluded from the latency histogram.
func (m *Metrics) QueryDone(start time.Time, err error) {
	if m == nil {
		return
	}
	m.queries.Add(1)
	if err != nil {
		m.queryErrors.Add(1)
		return
	}
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	m.queryNanos.Add(d.Nanoseconds())
	m.queryBucket[latencyBucket(d)].Add(1)
}

// Absorb folds another Metrics' totals into m — the metrics half of a
// synopsis merge, so a merged engine's snapshot covers every shard's
// work. The operand must be quiescent (its updater stopped).
func (m *Metrics) Absorb(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	m.trees.Add(o.trees.Load())
	m.patterns.Add(o.patterns.Load())
	m.removes.Add(o.removes.Load())
	m.queries.Add(o.queries.Load())
	m.queryErrors.Add(o.queryErrors.Load())
	m.queryNanos.Add(o.queryNanos.Load())
	for i := range m.queryBucket {
		m.queryBucket[i].Add(o.queryBucket[i].Load())
	}
	for i := range m.stages {
		m.stages[i].count.Add(o.stages[i].count.Load())
		m.stages[i].nanos.Add(o.stages[i].nanos.Load())
	}
}

// SeedCounts initializes the tree/pattern counters, aligning a
// restored engine's snapshot with its persisted TreesProcessed /
// PatternsProcessed.
func (m *Metrics) SeedCounts(trees, patterns int64) {
	if m == nil {
		return
	}
	m.trees.Store(trees)
	m.patterns.Store(patterns)
}

// StageSnapshot is one stage's totals.
type StageSnapshot struct {
	Count int64 // operations (patterns for per-pattern stages, documents for parse, merges for merge)
	Nanos int64 // total time spent, monotonic nanoseconds
}

// Duration returns the stage's total time.
func (s StageSnapshot) Duration() time.Duration { return time.Duration(s.Nanos) }

// PerOp returns the mean time per operation, or 0 when idle.
func (s StageSnapshot) PerOp() time.Duration {
	if s.Count <= 0 {
		return 0
	}
	return time.Duration(s.Nanos / s.Count)
}

// QuerySnapshot is the query-side totals: a counter pair plus the
// latency histogram (populated only while timers are enabled).
type QuerySnapshot struct {
	Count  int64 // queries answered (including failed)
	Errors int64 // queries that returned an error
	Nanos  int64 // total latency of successful timed queries
	// Buckets[i] counts successful queries with latency < 2^i µs
	// (non-cumulative); the last bucket is the overflow bucket.
	Buckets [NumLatencyBuckets]int64
}

// Timed returns the number of queries the histogram covers.
func (q QuerySnapshot) Timed() int64 {
	var n int64
	for _, b := range q.Buckets {
		n += b
	}
	return n
}

// TopKHealth is the frequent-pattern trackers' churn accounting,
// aggregated across virtual streams. All source counters are atomics,
// so the section is safe to collect while updates run.
type TopKHealth struct {
	Trackers    int   `json:"trackers"`     // trackers (virtual streams with tracking on)
	Capacity    int   `json:"capacity"`     // total entry capacity (k × trackers)
	Residency   int   `json:"residency"`    // values currently tracked
	Promotions  int64 `json:"promotions"`   // lifetime admissions (including refreshes)
	Evictions   int64 `json:"evictions"`    // lifetime minimum-entry displacements
	MinFreq     int64 `json:"min_freq"`     // smallest tracked frequency across trackers (0 when none)
	DeletedMass int64 `json:"deleted_mass"` // instance mass currently deleted from the sketches
}

// HealthSnapshot is the estimator-health section of a Snapshot:
// per-virtual-stream occupancy, the skew of the partition, and top-k
// churn. It carries only data readable from atomics — sketch-derived
// diagnostics (L2 energy) live in the engine-level health report,
// which requires quiescence or a lock.
type HealthSnapshot struct {
	VirtualStreams int     // the partition width p
	Items          []int64 // net occurrences per virtual stream
	TotalItems     int64   // Σ |Items|: total absolute stream mass
	MaxShare       float64 // largest partition's fraction of TotalItems
	MaxShareIndex  int     // which partition holds MaxShare
	SkewRatio      float64 // MaxShare × p; 1 means perfectly uniform
	TopK           *TopKHealth
}

// Recompute refreshes the derived skew fields (TotalItems, MaxShare,
// MaxShareIndex, SkewRatio) from Items. Producers call it after
// filling Items.
func (h *HealthSnapshot) Recompute() {
	h.TotalItems, h.MaxShare, h.MaxShareIndex, h.SkewRatio = 0, 0, 0, 0
	var maxAbs int64
	for i, it := range h.Items {
		a := it
		if a < 0 {
			a = -a
		}
		h.TotalItems += a
		if a > maxAbs {
			maxAbs, h.MaxShareIndex = a, i
		}
	}
	if h.TotalItems > 0 {
		h.MaxShare = float64(maxAbs) / float64(h.TotalItems)
		h.SkewRatio = h.MaxShare * float64(h.VirtualStreams)
	}
}

// AuditSnapshot is the exact-shadow auditor's section of a Snapshot:
// sample occupancy read live from atomics, and the relative-error
// summary of the most recent audit report (zero until one has been
// computed — computing errors needs sketch reads, which require the
// query path's locking).
type AuditSnapshot struct {
	Capacity int   // configured sample size K
	Patterns int   // values currently audited
	Observed int64 // net occurrences the sample was drawn over

	Reported   bool    // whether an audit report has been computed yet
	MeanRelErr float64 // over the audited sample, at last report
	P50RelErr  float64
	P90RelErr  float64
	P99RelErr  float64
	MaxRelErr  float64
}

// PlanCacheSnapshot is the query-plan cache section of a Snapshot: the
// LRU that memoizes the pattern → fingerprint-value mapping on the
// query path. All source counters are atomics, so the section is safe
// to collect while queries run.
type PlanCacheSnapshot struct {
	Capacity int   // configured entry capacity
	Entries  int   // plans currently cached
	Hits     int64 // lookups answered from the cache
	Misses   int64 // lookups that computed the plan
}

// WindowSliceSnapshot is one live slice's occupancy and age in the
// sliding-window section.
type WindowSliceSnapshot struct {
	Trees    int64 `json:"trees"`    // trees in this slice (net of removals)
	Patterns int64 `json:"patterns"` // pattern occurrences in this slice
	AgeMS    int64 `json:"age_ms"`   // slice age (now − slice start)
	Current  bool  `json:"current"`  // true for the slice receiving updates
}

// WindowSnapshot is the sliding-window section of a Snapshot: the
// policy, the live ring (oldest first), the published merged state's
// provenance, and the lifecycle counters. Produced by the window
// engine; nil on landmark (non-windowed) engines.
type WindowSnapshot struct {
	Slices     int   `json:"slices"`                 // ring capacity
	SliceTrees int   `json:"slice_trees,omitempty"`  // count cadence (0 = off)
	SliceDurMS int64 `json:"slice_dur_ms,omitempty"` // clock cadence (0 = off)

	Live      []WindowSliceSnapshot `json:"live"`       // live slices, oldest first
	LiveTrees int64                 `json:"live_trees"` // Σ Live[i].Trees

	MergedTrees  int64 `json:"merged_trees"`  // trees the published merge covers
	MergedSlices int   `json:"merged_slices"` // slices merged into it
	MergedAgeMS  int64 `json:"merged_age_ms"` // age of the published merge

	Advances int64 `json:"advances"` // slices sealed
	Expires  int64 `json:"expires"`  // slices dropped off the ring
	Rebuilds int64 `json:"rebuilds"` // merged states published
}

// Snapshot is a point-in-time read of a Metrics value (see the package
// comment for its consistency contract).
type Snapshot struct {
	TimersEnabled bool

	Trees    int64 // trees folded in (net of removals)
	Patterns int64 // pattern occurrences (the 1-D stream length, net)
	Removes  int64 // RemoveTree calls

	Stages  [NumStages]StageSnapshot
	Queries QuerySnapshot

	// Health, Audit, Plans and Window are attached by the engine (they
	// read engine structures, not Metrics); nil when the producing
	// layer does not collect them.
	Health *HealthSnapshot
	Audit  *AuditSnapshot
	Plans  *PlanCacheSnapshot
	Window *WindowSnapshot
}

// Snapshot reads the current totals. Safe to call concurrently with
// updates; a nil receiver yields the zero Snapshot.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.TimersEnabled = m.timers.Load()
	s.Trees = m.trees.Load()
	s.Patterns = m.patterns.Load()
	s.Removes = m.removes.Load()
	s.Queries.Count = m.queries.Load()
	s.Queries.Errors = m.queryErrors.Load()
	s.Queries.Nanos = m.queryNanos.Load()
	for i := range s.Queries.Buckets {
		s.Queries.Buckets[i] = m.queryBucket[i].Load()
	}
	for i := range s.Stages {
		s.Stages[i].Count = m.stages[i].count.Load()
		s.Stages[i].Nanos = m.stages[i].nanos.Load()
	}
	return s
}

// Stage returns one stage's totals by index.
func (s Snapshot) Stage(st Stage) StageSnapshot { return s.Stages[st] }

// Add folds another snapshot's totals into s — aggregation across
// ingestion shards.
func (s *Snapshot) Add(o Snapshot) {
	s.TimersEnabled = s.TimersEnabled || o.TimersEnabled
	s.Trees += o.Trees
	s.Patterns += o.Patterns
	s.Removes += o.Removes
	s.Queries.Count += o.Queries.Count
	s.Queries.Errors += o.Queries.Errors
	s.Queries.Nanos += o.Queries.Nanos
	for i := range s.Queries.Buckets {
		s.Queries.Buckets[i] += o.Queries.Buckets[i]
	}
	for i := range s.Stages {
		s.Stages[i].Count += o.Stages[i].Count
		s.Stages[i].Nanos += o.Stages[i].Nanos
	}
	s.Health = mergeHealth(s.Health, o.Health)
	if s.Audit == nil {
		s.Audit = o.Audit
	}
	s.Plans = mergePlans(s.Plans, o.Plans)
	// Window sections have no meaningful union (each describes one
	// engine's ring); keep the first one seen, like Audit.
	if s.Window == nil {
		s.Window = o.Window
	}
}

// mergePlans folds two plan-cache sections: hit/miss totals and entry
// counts sum across shards; the capacity reported is the receiver's
// (shards share one config).
func mergePlans(a, b *PlanCacheSnapshot) *PlanCacheSnapshot {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := *a
	out.Entries += b.Entries
	out.Hits += b.Hits
	out.Misses += b.Misses
	return &out
}

// mergeHealth folds two health sections: per-partition items sum when
// the partition widths agree (ingestion shards share one config), and
// the derived skew fields are recomputed. Mismatched widths keep the
// receiver's section — there is no meaningful union.
func mergeHealth(a, b *HealthSnapshot) *HealthSnapshot {
	if a == nil {
		return b
	}
	if b == nil || b.VirtualStreams != a.VirtualStreams {
		return a
	}
	out := &HealthSnapshot{
		VirtualStreams: a.VirtualStreams,
		Items:          make([]int64, len(a.Items)),
	}
	copy(out.Items, a.Items)
	for i := range b.Items {
		out.Items[i] += b.Items[i]
	}
	out.Recompute()
	switch {
	case a.TopK == nil:
		out.TopK = b.TopK
	case b.TopK == nil:
		out.TopK = a.TopK
	default:
		tk := *a.TopK
		tk.Trackers += b.TopK.Trackers
		tk.Capacity += b.TopK.Capacity
		tk.Residency += b.TopK.Residency
		tk.Promotions += b.TopK.Promotions
		tk.Evictions += b.TopK.Evictions
		tk.DeletedMass += b.TopK.DeletedMass
		if b.TopK.MinFreq > 0 && (tk.MinFreq == 0 || b.TopK.MinFreq < tk.MinFreq) {
			tk.MinFreq = b.TopK.MinFreq
		}
		out.TopK = &tk
	}
	return out
}
