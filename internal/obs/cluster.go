package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// ClusterMetrics is the coordinator's per-shard observability: synopsis
// pull attempts/failures/latency and routed-ingest traffic. Like
// Metrics, every update is a lock-free atomic add and all methods are
// safe on a nil receiver, so uninstrumented call sites need no guards.
type ClusterMetrics struct {
	shards []clusterShardCell
}

type clusterShardCell struct {
	pulls        atomic.Int64
	pullFailures atomic.Int64
	pullNanos    atomic.Int64
	pullBytes    atomic.Int64
	routed       atomic.Int64
	routeErrors  atomic.Int64
}

// NewClusterMetrics creates counters for n shards.
func NewClusterMetrics(n int) *ClusterMetrics {
	return &ClusterMetrics{shards: make([]clusterShardCell, n)}
}

// PullDone records one synopsis pull attempt against a shard: its
// latency, the synopsis size on success, and whether it failed.
func (m *ClusterMetrics) PullDone(shard int, d time.Duration, bytes int64, err error) {
	if m == nil || shard < 0 || shard >= len(m.shards) {
		return
	}
	c := &m.shards[shard]
	c.pulls.Add(1)
	c.pullNanos.Add(d.Nanoseconds())
	if err != nil {
		c.pullFailures.Add(1)
		return
	}
	c.pullBytes.Add(bytes)
}

// RouteDone records one ingest request routed to a shard and whether
// forwarding it failed at the transport level.
func (m *ClusterMetrics) RouteDone(shard int, err error) {
	if m == nil || shard < 0 || shard >= len(m.shards) {
		return
	}
	c := &m.shards[shard]
	c.routed.Add(1)
	if err != nil {
		c.routeErrors.Add(1)
	}
}

// ClusterShardSnapshot is one shard's totals within a cluster snapshot.
type ClusterShardSnapshot struct {
	Pulls        int64 `json:"pulls"`
	PullFailures int64 `json:"pull_failures"`
	PullNanos    int64 `json:"pull_nanos"`
	PullBytes    int64 `json:"pull_bytes"`
	Routed       int64 `json:"routed"`
	RouteErrors  int64 `json:"route_errors"`
}

// Snapshot reads the per-shard totals. Safe to call concurrently with
// updates; a nil receiver yields nil.
func (m *ClusterMetrics) Snapshot() []ClusterShardSnapshot {
	if m == nil {
		return nil
	}
	out := make([]ClusterShardSnapshot, len(m.shards))
	for i := range m.shards {
		c := &m.shards[i]
		out[i] = ClusterShardSnapshot{
			Pulls:        c.pulls.Load(),
			PullFailures: c.pullFailures.Load(),
			PullNanos:    c.pullNanos.Load(),
			PullBytes:    c.pullBytes.Load(),
			Routed:       c.routed.Load(),
			RouteErrors:  c.routeErrors.Load(),
		}
	}
	return out
}

// WriteClusterProm renders the per-shard cluster counter families in
// the Prometheus text exposition format, labeled by shard index.
// Appended to the coordinator's /metrics output after the engine
// families.
func WriteClusterProm(w io.Writer, shards []ClusterShardSnapshot) {
	family := func(name, help string, v func(s ClusterShardSnapshot) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i, s := range shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", name, i, v(s))
		}
	}
	family("sketchtree_cluster_pulls_total", "Synopsis pull attempts per shard.",
		func(s ClusterShardSnapshot) string { return fmt.Sprintf("%d", s.Pulls) })
	family("sketchtree_cluster_pull_failures_total", "Synopsis pulls that failed per shard.",
		func(s ClusterShardSnapshot) string { return fmt.Sprintf("%d", s.PullFailures) })
	family("sketchtree_cluster_pull_seconds_total", "Time spent pulling synopses per shard.",
		func(s ClusterShardSnapshot) string { return formatSeconds(s.PullNanos) })
	family("sketchtree_cluster_pull_bytes_total", "Synopsis bytes pulled per shard.",
		func(s ClusterShardSnapshot) string { return fmt.Sprintf("%d", s.PullBytes) })
	family("sketchtree_cluster_routed_total", "Ingest requests routed per shard.",
		func(s ClusterShardSnapshot) string { return fmt.Sprintf("%d", s.Routed) })
	family("sketchtree_cluster_route_errors_total", "Routed ingests that failed at the transport level per shard.",
		func(s ClusterShardSnapshot) string { return fmt.Sprintf("%d", s.RouteErrors) })
}
