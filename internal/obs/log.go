package obs

import (
	"context"
	"log/slog"
)

// nopHandler is an always-disabled slog handler: Enabled returns false
// for every level, so the logger never formats records or allocates.
// (log/slog gained a stock DiscardHandler after the toolchain this
// module targets; this is the same thing.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards everything without
// formatting it. Used as the default when no Logger option is set, so
// server and cluster code can log unconditionally.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
