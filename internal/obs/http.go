package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// snapshotJSON is the expvar-style JSON document served by JSONHandler:
// stages keyed by name, the histogram spelled out with its bounds.
type snapshotJSON struct {
	TimersEnabled bool                 `json:"timers_enabled"`
	Trees         int64                `json:"trees"`
	Patterns      int64                `json:"patterns"`
	Removes       int64                `json:"removes"`
	Stages        map[string]stageJSON `json:"stages"`
	Queries       queryJSON            `json:"queries"`
	Health        *healthJSON          `json:"health,omitempty"`
	Audit         *auditJSON           `json:"audit,omitempty"`
	Plans         *planCacheJSON       `json:"plan_cache,omitempty"`
	Window        *WindowSnapshot      `json:"window,omitempty"`
}

type planCacheJSON struct {
	Capacity int   `json:"capacity"`
	Entries  int   `json:"entries"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

type healthJSON struct {
	VirtualStreams int         `json:"virtual_streams"`
	TotalItems     int64       `json:"total_items"`
	MaxShare       float64     `json:"max_share"`
	MaxShareIndex  int         `json:"max_share_index"`
	SkewRatio      float64     `json:"skew_ratio"`
	Items          []int64     `json:"items"`
	TopK           *TopKHealth `json:"topk,omitempty"`
}

type auditJSON struct {
	Capacity   int     `json:"capacity"`
	Patterns   int     `json:"patterns"`
	Observed   int64   `json:"observed"`
	Reported   bool    `json:"reported"`
	MeanRelErr float64 `json:"mean_rel_err"`
	P50RelErr  float64 `json:"p50_rel_err"`
	P90RelErr  float64 `json:"p90_rel_err"`
	P99RelErr  float64 `json:"p99_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
}

type stageJSON struct {
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
}

type queryJSON struct {
	Count   int64               `json:"count"`
	Errors  int64               `json:"errors"`
	Nanos   int64               `json:"nanos"`
	Buckets []latencyBucketJSON `json:"latency_buckets"`
}

type latencyBucketJSON struct {
	// LE is the bucket's inclusive upper bound in seconds ("+Inf" for
	// the overflow bucket), Prometheus-style; Count is cumulative.
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON renders the snapshot in the expvar-style layout.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	doc := snapshotJSON{
		TimersEnabled: s.TimersEnabled,
		Trees:         s.Trees,
		Patterns:      s.Patterns,
		Removes:       s.Removes,
		Stages:        make(map[string]stageJSON, NumStages),
		Queries: queryJSON{
			Count:  s.Queries.Count,
			Errors: s.Queries.Errors,
			Nanos:  s.Queries.Nanos,
		},
	}
	for i := Stage(0); i < NumStages; i++ {
		doc.Stages[i.String()] = stageJSON{Count: s.Stages[i].Count, Nanos: s.Stages[i].Nanos}
	}
	cum := int64(0)
	for i, c := range s.Queries.Buckets {
		cum += c
		doc.Queries.Buckets = append(doc.Queries.Buckets, latencyBucketJSON{
			LE:    bucketLE(i),
			Count: cum,
		})
	}
	if h := s.Health; h != nil {
		doc.Health = &healthJSON{
			VirtualStreams: h.VirtualStreams,
			TotalItems:     h.TotalItems,
			MaxShare:       h.MaxShare,
			MaxShareIndex:  h.MaxShareIndex,
			SkewRatio:      h.SkewRatio,
			Items:          h.Items,
			TopK:           h.TopK,
		}
	}
	if p := s.Plans; p != nil {
		doc.Plans = &planCacheJSON{
			Capacity: p.Capacity,
			Entries:  p.Entries,
			Hits:     p.Hits,
			Misses:   p.Misses,
		}
	}
	doc.Window = s.Window
	if a := s.Audit; a != nil {
		doc.Audit = &auditJSON{
			Capacity:   a.Capacity,
			Patterns:   a.Patterns,
			Observed:   a.Observed,
			Reported:   a.Reported,
			MeanRelErr: a.MeanRelErr,
			P50RelErr:  a.P50RelErr,
			P90RelErr:  a.P90RelErr,
			P99RelErr:  a.P99RelErr,
			MaxRelErr:  a.MaxRelErr,
		}
	}
	return json.Marshal(doc)
}

// bucketLE formats bucket i's upper bound in seconds, "+Inf" for the
// overflow bucket.
func bucketLE(i int) string {
	d := LatencyBucketBound(i)
	if d < 0 {
		return "+Inf"
	}
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// JSONHandler serves snap() as an expvar-style JSON document.
func JSONHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap()); err != nil {
			// Headers are already written; the client went away.
			_ = err
		}
	})
}

// PromHandler serves snap() in the Prometheus text exposition format
// (metric family per counter, one histogram for query latency).
func PromHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s := snap()
		counter := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		counter("sketchtree_trees_total", "Trees folded into the synopsis (net of removals).", s.Trees)
		counter("sketchtree_patterns_total", "Pattern occurrences processed (1-D stream length).", s.Patterns)
		counter("sketchtree_removes_total", "Explicit tree removals.", s.Removes)
		counter("sketchtree_queries_total", "Queries answered, including failed ones.", s.Queries.Count)
		counter("sketchtree_query_errors_total", "Queries that returned an error.", s.Queries.Errors)

		fmt.Fprintf(w, "# HELP sketchtree_stage_ops_total Operations per pipeline stage.\n# TYPE sketchtree_stage_ops_total counter\n")
		for i := Stage(0); i < NumStages; i++ {
			fmt.Fprintf(w, "sketchtree_stage_ops_total{stage=%q} %d\n", i.String(), s.Stages[i].Count)
		}
		fmt.Fprintf(w, "# HELP sketchtree_stage_seconds_total Time per pipeline stage (timers must be enabled).\n# TYPE sketchtree_stage_seconds_total counter\n")
		for i := Stage(0); i < NumStages; i++ {
			fmt.Fprintf(w, "sketchtree_stage_seconds_total{stage=%q} %s\n",
				i.String(), formatSeconds(s.Stages[i].Nanos))
		}

		fmt.Fprintf(w, "# HELP sketchtree_query_latency_seconds Latency of successful queries (timers must be enabled).\n# TYPE sketchtree_query_latency_seconds histogram\n")
		cum := int64(0)
		for i, c := range s.Queries.Buckets {
			cum += c
			fmt.Fprintf(w, "sketchtree_query_latency_seconds_bucket{le=%q} %d\n", bucketLE(i), cum)
		}
		fmt.Fprintf(w, "sketchtree_query_latency_seconds_sum %s\n", formatSeconds(s.Queries.Nanos))
		fmt.Fprintf(w, "sketchtree_query_latency_seconds_count %d\n", cum)

		if p := s.Plans; p != nil {
			writePlanCacheProm(w, p)
		}
		if h := s.Health; h != nil {
			writeHealthProm(w, h)
		}
		if a := s.Audit; a != nil {
			writeAuditProm(w, a)
		}
		if ws := s.Window; ws != nil {
			writeWindowProm(w, ws)
		}
	})
}

// writeWindowProm renders the sliding-window families: ring occupancy
// and merged-state freshness as gauges, the lifecycle totals as
// counters.
func writeWindowProm(w io.Writer, ws *WindowSnapshot) {
	fmt.Fprintf(w, "# HELP sketchtree_window_slices_live Live slices in the window ring.\n# TYPE sketchtree_window_slices_live gauge\nsketchtree_window_slices_live %d\n", len(ws.Live))
	fmt.Fprintf(w, "# HELP sketchtree_window_slices Configured window ring capacity.\n# TYPE sketchtree_window_slices gauge\nsketchtree_window_slices %d\n", ws.Slices)
	fmt.Fprintf(w, "# HELP sketchtree_window_trees_live Trees currently inside the window, summed across live slices.\n# TYPE sketchtree_window_trees_live gauge\nsketchtree_window_trees_live %d\n", ws.LiveTrees)
	fmt.Fprintf(w, "# HELP sketchtree_window_merged_trees Trees covered by the published merged window state.\n# TYPE sketchtree_window_merged_trees gauge\nsketchtree_window_merged_trees %d\n", ws.MergedTrees)
	fmt.Fprintf(w, "# HELP sketchtree_window_merged_age_seconds Age of the published merged window state.\n# TYPE sketchtree_window_merged_age_seconds gauge\nsketchtree_window_merged_age_seconds %s\n", formatSeconds(ws.MergedAgeMS*1e6))
	fmt.Fprintf(w, "# HELP sketchtree_window_advances_total Slices sealed (window advances).\n# TYPE sketchtree_window_advances_total counter\nsketchtree_window_advances_total %d\n", ws.Advances)
	fmt.Fprintf(w, "# HELP sketchtree_window_expires_total Slices dropped off the ring (expiries).\n# TYPE sketchtree_window_expires_total counter\nsketchtree_window_expires_total %d\n", ws.Expires)
	fmt.Fprintf(w, "# HELP sketchtree_window_rebuilds_total Merged window states published.\n# TYPE sketchtree_window_rebuilds_total counter\nsketchtree_window_rebuilds_total %d\n", ws.Rebuilds)
}

// writePlanCacheProm renders the query-plan cache families.
func writePlanCacheProm(w io.Writer, p *PlanCacheSnapshot) {
	fmt.Fprintf(w, "# HELP sketchtree_plan_cache_hits_total Query plans answered from the pattern-mapping cache.\n# TYPE sketchtree_plan_cache_hits_total counter\nsketchtree_plan_cache_hits_total %d\n", p.Hits)
	fmt.Fprintf(w, "# HELP sketchtree_plan_cache_misses_total Query plans computed on a cache miss.\n# TYPE sketchtree_plan_cache_misses_total counter\nsketchtree_plan_cache_misses_total %d\n", p.Misses)
	fmt.Fprintf(w, "# HELP sketchtree_plan_cache_entries Plans currently cached.\n# TYPE sketchtree_plan_cache_entries gauge\nsketchtree_plan_cache_entries %d\n", p.Entries)
	fmt.Fprintf(w, "# HELP sketchtree_plan_cache_capacity Configured plan-cache capacity.\n# TYPE sketchtree_plan_cache_capacity gauge\nsketchtree_plan_cache_capacity %d\n", p.Capacity)
}

// writeHealthProm renders the sketch-health gauge families.
func writeHealthProm(w io.Writer, h *HealthSnapshot) {
	gauge := func(name, help string, render func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		render()
	}
	gauge("sketchtree_vstream_items", "Net pattern occurrences per virtual stream.", func() {
		for i, it := range h.Items {
			fmt.Fprintf(w, "sketchtree_vstream_items{stream=%q} %d\n", strconv.Itoa(i), it)
		}
	})
	gauge("sketchtree_vstream_share_max", "Largest virtual stream's fraction of total stream mass.", func() {
		fmt.Fprintf(w, "sketchtree_vstream_share_max %s\n", formatFloat(h.MaxShare))
	})
	gauge("sketchtree_vstream_skew_ratio", "Max partition share times partition count (1 = uniform).", func() {
		fmt.Fprintf(w, "sketchtree_vstream_skew_ratio %s\n", formatFloat(h.SkewRatio))
	})
	tk := h.TopK
	if tk == nil {
		return
	}
	gauge("sketchtree_topk_residency", "Frequent-pattern values currently tracked across all trackers.", func() {
		fmt.Fprintf(w, "sketchtree_topk_residency %d\n", tk.Residency)
	})
	gauge("sketchtree_topk_min_freq", "Smallest tracked frequency (admission bar; 0 when empty).", func() {
		fmt.Fprintf(w, "sketchtree_topk_min_freq %d\n", tk.MinFreq)
	})
	gauge("sketchtree_topk_deleted_mass", "Instance mass currently deleted from the sketches by top-k tracking.", func() {
		fmt.Fprintf(w, "sketchtree_topk_deleted_mass %d\n", tk.DeletedMass)
	})
	fmt.Fprintf(w, "# HELP sketchtree_topk_promotions_total Lifetime top-k admissions (including refreshes).\n# TYPE sketchtree_topk_promotions_total counter\nsketchtree_topk_promotions_total %d\n", tk.Promotions)
	fmt.Fprintf(w, "# HELP sketchtree_topk_evictions_total Lifetime top-k evictions.\n# TYPE sketchtree_topk_evictions_total counter\nsketchtree_topk_evictions_total %d\n", tk.Evictions)
}

// writeAuditProm renders the exact-shadow auditor families:
// sample-occupancy gauges plus the observed relative error as a
// Prometheus summary with quantile labels.
func writeAuditProm(w io.Writer, a *AuditSnapshot) {
	fmt.Fprintf(w, "# HELP sketchtree_audit_patterns Patterns currently audited with exact shadow counts.\n# TYPE sketchtree_audit_patterns gauge\nsketchtree_audit_patterns %d\n", a.Patterns)
	fmt.Fprintf(w, "# HELP sketchtree_audit_observed_total Net pattern occurrences the audit sample was drawn over.\n# TYPE sketchtree_audit_observed_total counter\nsketchtree_audit_observed_total %d\n", a.Observed)
	fmt.Fprintf(w, "# HELP sketchtree_audit_rel_error Observed relative error of sketch estimates on the audited sample (last report).\n# TYPE sketchtree_audit_rel_error summary\n")
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", a.P50RelErr}, {"0.9", a.P90RelErr}, {"0.99", a.P99RelErr}} {
		fmt.Fprintf(w, "sketchtree_audit_rel_error{quantile=%q} %s\n", q.label, formatFloat(q.v))
	}
	fmt.Fprintf(w, "sketchtree_audit_rel_error_sum %s\n", formatFloat(a.MeanRelErr*float64(a.Patterns)))
	fmt.Fprintf(w, "sketchtree_audit_rel_error_count %d\n", a.Patterns)
	fmt.Fprintf(w, "# HELP sketchtree_audit_rel_error_max Largest observed relative error on the audited sample (last report).\n# TYPE sketchtree_audit_rel_error_max gauge\nsketchtree_audit_rel_error_max %s\n", formatFloat(a.MaxRelErr))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatSeconds(nanos int64) string {
	return strconv.FormatFloat(float64(nanos)/1e9, 'g', -1, 64)
}
