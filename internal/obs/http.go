package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// snapshotJSON is the expvar-style JSON document served by JSONHandler:
// stages keyed by name, the histogram spelled out with its bounds.
type snapshotJSON struct {
	TimersEnabled bool                 `json:"timers_enabled"`
	Trees         int64                `json:"trees"`
	Patterns      int64                `json:"patterns"`
	Removes       int64                `json:"removes"`
	Stages        map[string]stageJSON `json:"stages"`
	Queries       queryJSON            `json:"queries"`
}

type stageJSON struct {
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
}

type queryJSON struct {
	Count   int64               `json:"count"`
	Errors  int64               `json:"errors"`
	Nanos   int64               `json:"nanos"`
	Buckets []latencyBucketJSON `json:"latency_buckets"`
}

type latencyBucketJSON struct {
	// LE is the bucket's inclusive upper bound in seconds ("+Inf" for
	// the overflow bucket), Prometheus-style; Count is cumulative.
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON renders the snapshot in the expvar-style layout.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	doc := snapshotJSON{
		TimersEnabled: s.TimersEnabled,
		Trees:         s.Trees,
		Patterns:      s.Patterns,
		Removes:       s.Removes,
		Stages:        make(map[string]stageJSON, NumStages),
		Queries: queryJSON{
			Count:  s.Queries.Count,
			Errors: s.Queries.Errors,
			Nanos:  s.Queries.Nanos,
		},
	}
	for i := Stage(0); i < NumStages; i++ {
		doc.Stages[i.String()] = stageJSON{Count: s.Stages[i].Count, Nanos: s.Stages[i].Nanos}
	}
	cum := int64(0)
	for i, c := range s.Queries.Buckets {
		cum += c
		doc.Queries.Buckets = append(doc.Queries.Buckets, latencyBucketJSON{
			LE:    bucketLE(i),
			Count: cum,
		})
	}
	return json.Marshal(doc)
}

// bucketLE formats bucket i's upper bound in seconds, "+Inf" for the
// overflow bucket.
func bucketLE(i int) string {
	d := LatencyBucketBound(i)
	if d < 0 {
		return "+Inf"
	}
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// JSONHandler serves snap() as an expvar-style JSON document.
func JSONHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap())
	})
}

// PromHandler serves snap() in the Prometheus text exposition format
// (metric family per counter, one histogram for query latency).
func PromHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s := snap()
		counter := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		counter("sketchtree_trees_total", "Trees folded into the synopsis (net of removals).", s.Trees)
		counter("sketchtree_patterns_total", "Pattern occurrences processed (1-D stream length).", s.Patterns)
		counter("sketchtree_removes_total", "Explicit tree removals.", s.Removes)
		counter("sketchtree_queries_total", "Queries answered, including failed ones.", s.Queries.Count)
		counter("sketchtree_query_errors_total", "Queries that returned an error.", s.Queries.Errors)

		fmt.Fprintf(w, "# HELP sketchtree_stage_ops_total Operations per pipeline stage.\n# TYPE sketchtree_stage_ops_total counter\n")
		for i := Stage(0); i < NumStages; i++ {
			fmt.Fprintf(w, "sketchtree_stage_ops_total{stage=%q} %d\n", i.String(), s.Stages[i].Count)
		}
		fmt.Fprintf(w, "# HELP sketchtree_stage_seconds_total Time per pipeline stage (timers must be enabled).\n# TYPE sketchtree_stage_seconds_total counter\n")
		for i := Stage(0); i < NumStages; i++ {
			fmt.Fprintf(w, "sketchtree_stage_seconds_total{stage=%q} %s\n",
				i.String(), formatSeconds(s.Stages[i].Nanos))
		}

		fmt.Fprintf(w, "# HELP sketchtree_query_latency_seconds Latency of successful queries (timers must be enabled).\n# TYPE sketchtree_query_latency_seconds histogram\n")
		cum := int64(0)
		for i, c := range s.Queries.Buckets {
			cum += c
			fmt.Fprintf(w, "sketchtree_query_latency_seconds_bucket{le=%q} %d\n", bucketLE(i), cum)
		}
		fmt.Fprintf(w, "sketchtree_query_latency_seconds_sum %s\n", formatSeconds(s.Queries.Nanos))
		fmt.Fprintf(w, "sketchtree_query_latency_seconds_count %d\n", cum)
	})
}

func formatSeconds(nanos int64) string {
	return strconv.FormatFloat(float64(nanos)/1e9, 'g', -1, 64)
}
