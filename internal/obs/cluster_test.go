package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestClusterMetricsAccounting(t *testing.T) {
	m := NewClusterMetrics(2)
	m.PullDone(0, 10*time.Millisecond, 128, nil)
	m.PullDone(0, 20*time.Millisecond, 256, nil)
	m.PullDone(1, 5*time.Millisecond, 0, errors.New("down"))
	m.RouteDone(1, nil)
	m.RouteDone(1, errors.New("unreachable"))

	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	s0, s1 := snap[0], snap[1]
	if s0.Pulls != 2 || s0.PullFailures != 0 || s0.PullBytes != 384 {
		t.Errorf("shard 0 = %+v, want 2 pulls, 0 failures, 384 bytes", s0)
	}
	if s0.PullNanos != int64(30*time.Millisecond) {
		t.Errorf("shard 0 nanos = %d, want %d", s0.PullNanos, int64(30*time.Millisecond))
	}
	if s1.Pulls != 1 || s1.PullFailures != 1 {
		t.Errorf("shard 1 = %+v, want 1 pull, 1 failure", s1)
	}
	if s1.Routed != 2 || s1.RouteErrors != 1 {
		t.Errorf("shard 1 routing = %+v, want 2 routed, 1 error", s1)
	}
}

func TestClusterMetricsNilSafe(t *testing.T) {
	var m *ClusterMetrics
	// All methods must be no-ops on nil (the Metrics field is optional).
	m.PullDone(0, time.Millisecond, 1, nil)
	m.RouteDone(0, nil)
	if snap := m.Snapshot(); snap != nil {
		t.Errorf("nil Snapshot = %v, want nil", snap)
	}
}

func TestClusterMetricsShardBounds(t *testing.T) {
	m := NewClusterMetrics(1)
	// Out-of-range shards must be ignored, not panic.
	m.PullDone(-1, time.Millisecond, 1, nil)
	m.PullDone(5, time.Millisecond, 1, nil)
	m.RouteDone(-1, nil)
	m.RouteDone(5, nil)
	if s := m.Snapshot()[0]; s.Pulls != 0 || s.Routed != 0 {
		t.Errorf("out-of-range updates leaked into shard 0: %+v", s)
	}
}

func TestWriteClusterProm(t *testing.T) {
	m := NewClusterMetrics(2)
	m.PullDone(0, 1500*time.Millisecond, 64, nil)
	m.PullDone(1, time.Millisecond, 0, errors.New("down"))
	m.RouteDone(0, nil)

	var b strings.Builder
	WriteClusterProm(&b, m.Snapshot())
	out := b.String()
	for _, want := range []string{
		`sketchtree_cluster_pulls_total{shard="0"} 1`,
		`sketchtree_cluster_pulls_total{shard="1"} 1`,
		`sketchtree_cluster_pull_failures_total{shard="1"} 1`,
		`sketchtree_cluster_pull_seconds_total{shard="0"} 1.5`,
		`sketchtree_cluster_pull_bytes_total{shard="0"} 64`,
		`sketchtree_cluster_routed_total{shard="0"} 1`,
		`sketchtree_cluster_route_errors_total{shard="0"} 0`,
		"# TYPE sketchtree_cluster_pulls_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}
