package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if _, ok := r.SlowThreshold(); ok {
		t.Fatal("nil recorder reports a slow threshold")
	}
	tr := r.Start("/query", "abc")
	if tr != nil {
		t.Fatal("nil recorder minted a trace")
	}
	// Every Trace method must be a no-op on nil.
	if got := tr.ID(); got != "" {
		t.Fatalf("nil trace ID = %q", got)
	}
	sp := tr.StartSpan("eval")
	if sp != NoSpan {
		t.Fatalf("nil trace started span %d", sp)
	}
	tr.EndSpan(sp)
	tr.Annotate("k", "v")
	if d := tr.Duration(); d != 0 {
		t.Fatalf("nil trace duration = %v", d)
	}
	tr.Finish(200)
	if bg := r.StartBackground("pull"); bg != nil {
		t.Fatal("nil recorder minted a background trace")
	}
}

func TestDisabledTracingZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		tr := r.Start("/query", "")
		sp := tr.StartSpan("eval")
		tr.Annotate("pattern_size", "3")
		tr.EndSpan(sp)
		tr.Finish(200)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v allocs/op, want 0", allocs)
	}
}

func TestNewDisabledOnZeroBuffer(t *testing.T) {
	if r := New("standalone", 0, 0); r != nil {
		t.Fatal("buffer 0 should disable the recorder")
	}
	if r := New("standalone", -5, 0); r != nil {
		t.Fatal("negative buffer should disable the recorder")
	}
}

func TestMintAndAdoptID(t *testing.T) {
	r := New("shard", 4, -1)
	a := r.Start("/ingest", "")
	b := r.Start("/ingest", "")
	if a.ID() == "" || len(a.ID()) != 32 {
		t.Fatalf("minted ID %q, want 32 hex chars", a.ID())
	}
	if a.ID() == b.ID() {
		t.Fatalf("two minted IDs collide: %q", a.ID())
	}
	c := r.Start("/ingest", "deadbeef")
	if c.ID() != "deadbeef" {
		t.Fatalf("adopted ID = %q, want deadbeef", c.ID())
	}
	// Oversized incoming IDs are replaced, not stored.
	huge := strings.Repeat("x", 2000)
	d := r.Start("/ingest", huge)
	if d.ID() == huge {
		t.Fatal("oversized incoming ID was adopted verbatim")
	}
	a.Finish(200)
	b.Finish(200)
	c.Finish(200)
	d.Finish(200)
}

func TestSpanTreeRecorded(t *testing.T) {
	r := New("coordinator", 8, -1)
	tr := r.Start("/query", "")
	root := tr.StartSpan("plan")
	child := tr.StartChild(root, "lookup")
	tr.EndSpan(child)
	tr.EndSpan(root)
	open := tr.StartSpan("eval") // never ended: Finish must close it
	_ = open
	tr.Annotate("pattern_size", "3")
	id := tr.ID()
	tr.Finish(200)

	got := r.recent.all()
	if len(got) != 1 {
		t.Fatalf("recent holds %d traces, want 1", len(got))
	}
	c := got[0]
	if c.TraceID != id || c.Role != "coordinator" || c.Endpoint != "/query" || c.Status != 200 {
		t.Fatalf("completed trace = %+v", c)
	}
	if len(c.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(c.Spans))
	}
	if c.Spans[0].Name != "plan" || c.Spans[0].Parent != int(NoSpan) {
		t.Fatalf("span 0 = %+v", c.Spans[0])
	}
	if c.Spans[1].Name != "lookup" || c.Spans[1].Parent != 0 {
		t.Fatalf("span 1 = %+v (want parent 0)", c.Spans[1])
	}
	if c.Spans[2].DurationNS < 0 || c.Spans[2].StartNS+c.Spans[2].DurationNS > c.DurationNS {
		t.Fatalf("unended span not clamped to trace end: %+v vs %d", c.Spans[2], c.DurationNS)
	}
	if c.Attrs["pattern_size"] != "3" {
		t.Fatalf("attrs = %v", c.Attrs)
	}
}

func TestSpanOverflowClamped(t *testing.T) {
	r := New("standalone", 2, -1)
	tr := r.Start("/query", "")
	for i := 0; i < maxSpans+10; i++ {
		sp := tr.StartSpan("s")
		if i >= maxSpans && sp != NoSpan {
			t.Fatalf("span %d got slot %d past capacity", i, sp)
		}
		tr.EndSpan(sp)
	}
	tr.Finish(200)
	got := r.recent.all()
	if len(got) != 1 || len(got[0].Spans) != maxSpans {
		t.Fatalf("overflowed trace kept %d spans, want %d", len(got[0].Spans), maxSpans)
	}
}

func TestRingWraparound(t *testing.T) {
	const buf = 4
	r := New("standalone", buf, -1)
	for i := 0; i < 10; i++ {
		tr := r.Start("/ingest", fmt.Sprintf("id-%d", i))
		tr.Finish(200)
	}
	got := r.recent.all()
	if len(got) != buf {
		t.Fatalf("ring holds %d traces, want %d", len(got), buf)
	}
	// Newest first: 9, 8, 7, 6.
	for k, c := range got {
		want := fmt.Sprintf("id-%d", 9-k)
		if c.TraceID != want {
			t.Fatalf("slot %d = %q, want %q", k, c.TraceID, want)
		}
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	r := New("standalone", 16, 0) // slow threshold 0: everything also lands in slow
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr := r.Start("/ingest", "")
				sp := tr.StartSpan("apply")
				tr.EndSpan(sp)
				tr.Finish(200)
			}
		}(w)
	}
	wg.Wait()
	for _, ring := range []struct {
		name string
		got  []*Completed
	}{{"recent", r.recent.all()}, {"slow", r.slow.all()}} {
		if len(ring.got) != 16 {
			t.Fatalf("%s ring holds %d traces after wrap, want 16", ring.name, len(ring.got))
		}
		for _, c := range ring.got {
			if c == nil || c.TraceID == "" || c.Endpoint != "/ingest" {
				t.Fatalf("%s ring holds corrupt trace %+v", ring.name, c)
			}
		}
	}
}

func TestConcurrentSpanWriters(t *testing.T) {
	// The puller records one span per shard from parallel goroutines.
	r := New("coordinator", 4, -1)
	tr := r.StartBackground("pull")
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.StartChild(NoSpan, fmt.Sprintf("pull:%d", i))
			tr.EndSpan(sp)
		}(i)
	}
	wg.Wait()
	tr.Finish(200)
	got := r.background.all()
	if len(got) != 1 || len(got[0].Spans) != 10 {
		t.Fatalf("background trace spans = %d, want 10", len(got[0].Spans))
	}
	if !got[0].Background {
		t.Fatal("background trace not marked")
	}
}

func TestSlowLogRetention(t *testing.T) {
	r := New("standalone", 4, 50*time.Millisecond)
	fast := r.Start("/query", "")
	fast.Finish(200)
	slow := r.Start("/query", "")
	time.Sleep(60 * time.Millisecond)
	slowID := slow.ID()
	slow.Finish(200)

	if got := r.recent.all(); len(got) != 2 {
		t.Fatalf("recent = %d traces, want 2", len(got))
	}
	got := r.slow.all()
	if len(got) != 1 || got[0].TraceID != slowID || !got[0].Slow {
		t.Fatalf("slow log = %+v, want only the slow trace", got)
	}

	// Negative threshold disables the slow log entirely.
	off := New("standalone", 4, -1)
	tr := off.Start("/query", "")
	time.Sleep(time.Millisecond)
	tr.Finish(200)
	if got := off.slow.all(); len(got) != 0 {
		t.Fatalf("disabled slow log retained %d traces", len(got))
	}
}

func TestBackgroundSeparateRing(t *testing.T) {
	r := New("coordinator", 2, 0)
	// Background rounds must not evict request traces.
	req := r.Start("/query", "")
	req.Finish(200)
	for i := 0; i < 10; i++ {
		bg := r.StartBackground("pull")
		bg.Finish(200)
	}
	if got := r.recent.all(); len(got) != 1 {
		t.Fatalf("background traffic evicted request history: recent = %d", len(got))
	}
	if got := r.background.all(); len(got) != 2 {
		t.Fatalf("background ring = %d, want 2", len(got))
	}
}

func TestHandlerJSON(t *testing.T) {
	r := New("shard", 4, 0)
	tr := r.Start("/ingest", "cafef00d")
	sp := tr.StartSpan("parse")
	tr.EndSpan(sp)
	tr.Finish(200)
	other := r.Start("/query", "")
	other.Finish(400)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var resp struct {
		Enabled         bool         `json:"enabled"`
		Role            string       `json:"role"`
		SlowThresholdNS int64        `json:"slow_threshold_ns"`
		Recent          []*Completed `json:"recent"`
		Slow            []*Completed `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !resp.Enabled || resp.Role != "shard" || resp.SlowThresholdNS != 0 {
		t.Fatalf("header fields = %+v", resp)
	}
	if len(resp.Recent) != 2 || len(resp.Slow) != 2 {
		t.Fatalf("recent=%d slow=%d, want 2/2", len(resp.Recent), len(resp.Slow))
	}

	// ?trace_id= narrows to exact matches.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?trace_id=cafef00d", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal filtered: %v", err)
	}
	if len(resp.Recent) != 1 || resp.Recent[0].TraceID != "cafef00d" {
		t.Fatalf("filtered recent = %+v", resp.Recent)
	}
	if len(resp.Recent[0].Spans) != 1 || resp.Recent[0].Spans[0].Name != "parse" {
		t.Fatalf("filtered spans = %+v", resp.Recent[0].Spans)
	}
}

func TestHandlerDisabled(t *testing.T) {
	var r *Recorder
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var resp struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Enabled {
		t.Fatal("disabled recorder reports enabled")
	}
}

func TestTracePooledAndReset(t *testing.T) {
	r := New("standalone", 4, -1)
	tr := r.Start("/query", "first")
	tr.StartSpan("eval")
	tr.Annotate("k", "v")
	tr.Finish(200)
	// A reused trace must not leak spans or attrs from its prior life.
	tr2 := r.Start("/query", "")
	tr2.Finish(200)
	got := r.recent.all()
	if len(got) != 2 {
		t.Fatalf("recent = %d", len(got))
	}
	second := got[0]
	if len(second.Spans) != 0 || len(second.Attrs) != 0 {
		t.Fatalf("pooled trace leaked state: spans=%v attrs=%v", second.Spans, second.Attrs)
	}
}
