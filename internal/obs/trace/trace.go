// Package trace is the per-request half of the observability layer: a
// flight recorder that keeps the span trees of recent requests, so a
// single slow or wrong answer has a story — which stage (route,
// forward, parse, apply, plan, eval, pull, merge, publish) ate the
// budget, for exactly that request.
//
// The aggregate layer (package obs) answers "how is the system doing";
// this package answers "what happened to request X". The two share a
// taxonomy: span names reuse the obs stage names where the work
// coincides (parse, merge, snapshot/publish), so a span tree reads
// against the same vocabulary as /stats and /metrics.
//
// Design constraints, mirroring obs:
//
//   - Zero cost when off. A nil *Recorder and a nil *Trace are valid
//     receivers for every method; all of them are branch-and-return.
//     Disabled tracing performs no clock calls, no allocation, no
//     atomics on the serving path.
//   - Lock-free when on. Traces are pooled (sync.Pool); span slots are
//     reserved with a single atomic increment into a fixed-size array,
//     so concurrent span writers (the puller's per-shard goroutines)
//     never contend on a lock. Completed traces land in fixed-size
//     rings of atomic pointers; writers never block readers.
//   - Propagation is a header. Trace IDs travel as X-Sketchtree-Trace-Id
//     on routed ingests and synopsis pulls; a daemon adopts an incoming
//     ID instead of minting one, so a coordinator trace joins against
//     the shard work it caused via GET /debug/requests?trace_id=.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the HTTP header carrying a request's trace ID across hops:
// set by the coordinator on routed ingests and synopsis pulls, adopted
// (echoed) by shards, and returned to clients on every traced response.
const Header = "X-Sketchtree-Trace-Id"

// maxSpans bounds the spans one trace retains; later spans are
// dropped (the trace is still recorded). Generous for the serving
// path: the deepest trace today is a fresh=1 query (plan + pull round
// with one span per shard + merge + publish + eval).
const maxSpans = 48

// maxAttrs bounds the key/value annotations one trace retains.
const maxAttrs = 8

// maxAdoptedIDLen bounds an incoming trace ID; longer values are
// replaced by a minted ID so a hostile header cannot bloat the ring.
const maxAdoptedIDLen = 64

// SpanID identifies one span within its trace. The zero value is not
// valid; NoSpan marks "no span" (disabled tracing, or span overflow).
type SpanID int32

// NoSpan is the SpanID returned when no span was started. EndSpan on
// NoSpan is a no-op, so call sites need no guards.
const NoSpan SpanID = -1

// span is one timed operation inside a trace. start/end are monotonic
// nanosecond offsets from the trace start; end is 0 while open.
type span struct {
	name   string
	parent int32
	start  int64
	end    int64
}

type attr struct{ key, val string }

// Trace is one in-flight request (or background round) being recorded.
// A nil *Trace is valid for every method and does nothing — the
// disabled-tracing contract. Span slots may be reserved from multiple
// goroutines; Finish must happen-after every span write (an HTTP
// handler return, or a WaitGroup join).
type Trace struct {
	rec        *Recorder
	id         string
	endpoint   string
	background bool
	start      time.Time
	nspan      atomic.Int32
	spans      [maxSpans]span
	nattr      atomic.Int32
	attrs      [maxAttrs]attr
}

// ID returns the trace's ID, "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a root-level span. Returns NoSpan on a nil trace or
// when the trace's span array is full.
func (t *Trace) StartSpan(name string) SpanID { return t.StartChild(NoSpan, name) }

// StartChild opens a span nested under parent (NoSpan for root level).
// Safe to call from multiple goroutines: the slot is reserved with one
// atomic increment.
func (t *Trace) StartChild(parent SpanID, name string) SpanID {
	if t == nil {
		return NoSpan
	}
	i := t.nspan.Add(1) - 1
	if i >= maxSpans {
		return NoSpan
	}
	t.spans[i] = span{name: name, parent: int32(parent), start: time.Since(t.start).Nanoseconds()}
	return SpanID(i)
}

// EndSpan closes a span. A NoSpan id is a no-op. Spans never ended are
// closed at the trace's end by Finish.
func (t *Trace) EndSpan(id SpanID) {
	if t == nil || id < 0 || int32(id) >= maxSpans {
		return
	}
	t.spans[id].end = time.Since(t.start).Nanoseconds()
}

// Annotate attaches a key/value pair to the trace (routed shard, trees
// applied, pattern size). Annotations past the fixed capacity are
// dropped.
func (t *Trace) Annotate(key, val string) {
	if t == nil {
		return
	}
	i := t.nattr.Add(1) - 1
	if i >= maxAttrs {
		return
	}
	t.attrs[i] = attr{key: key, val: val}
}

// Duration returns the time elapsed since the trace started; 0 on a
// nil trace.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Finish completes the trace with the response status, publishes it to
// the recorder's rings, and recycles the trace. The trace must not be
// used after Finish.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	r := t.rec
	dur := time.Since(t.start).Nanoseconds()
	n := int(t.nspan.Load())
	if n > maxSpans {
		n = maxSpans
	}
	c := &Completed{
		TraceID:    t.id,
		Role:       r.role,
		Endpoint:   t.endpoint,
		Status:     status,
		Background: t.background,
		Start:      t.start,
		DurationNS: dur,
	}
	if n > 0 {
		c.Spans = make([]SpanJSON, n)
		for i := 0; i < n; i++ {
			sp := &t.spans[i]
			end := sp.end
			if end == 0 {
				end = dur // never ended: close at the trace end
			}
			c.Spans[i] = SpanJSON{
				Name:       sp.name,
				Parent:     int(sp.parent),
				StartNS:    sp.start,
				DurationNS: end - sp.start,
			}
		}
	}
	if na := int(t.nattr.Load()); na > 0 {
		if na > maxAttrs {
			na = maxAttrs
		}
		c.Attrs = make(map[string]string, na)
		for i := 0; i < na; i++ {
			c.Attrs[t.attrs[i].key] = t.attrs[i].val
		}
	}
	if t.background {
		r.background.put(c)
	} else {
		if r.slowThresh >= 0 && dur >= r.slowThresh.Nanoseconds() {
			c.Slow = true
			r.slow.put(c)
		}
		r.recent.put(c)
	}
	t.id, t.endpoint = "", ""
	t.nspan.Store(0)
	t.nattr.Store(0)
	r.pool.Put(t)
}

// ring is a fixed-size ring of completed traces: writers reserve a
// slot with one atomic increment and publish with one atomic pointer
// store, readers load whatever is published — no locks anywhere.
type ring struct {
	slots []atomic.Pointer[Completed]
	next  atomic.Uint64
}

func (r *ring) init(n int) { r.slots = make([]atomic.Pointer[Completed], n) }

func (r *ring) put(c *Completed) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(c)
}

// all returns the retained traces, newest first.
func (r *ring) all() []*Completed {
	out := make([]*Completed, 0, len(r.slots))
	n := r.next.Load()
	for k := uint64(0); k < uint64(len(r.slots)); k++ {
		// Walk backwards from the most recent write.
		if k >= n {
			break
		}
		if c := r.slots[(n-1-k)%uint64(len(r.slots))].Load(); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// Recorder is the flight recorder: it mints traces, holds the rings of
// completed ones, and serves them on GET /debug/requests. A nil
// *Recorder is the disabled state — every method no-ops and Start
// returns a nil *Trace, so call sites are written once with no guards.
//
// Three rings keep unlike traffic from evicting each other: recent
// holds the last N completed request traces; slow additionally retains
// every request at least SlowThreshold slow (so a burst of fast
// traffic cannot push the one interesting request out); background
// holds non-request work (the coordinator's pull/merge rounds).
type Recorder struct {
	role       string
	slowThresh time.Duration // negative: slow log disabled
	recent     ring
	slow       ring
	background ring
	pool       sync.Pool
	idHi       uint64
	idLo       atomic.Uint64
}

// New creates a Recorder for a daemon role ("standalone", "shard",
// "coordinator") retaining up to buffer completed traces per ring.
// buffer <= 0 disables tracing entirely: New returns nil, which every
// method and the /debug/requests handler accept.
//
// slowThreshold configures the always-kept slow-query log: requests at
// least this slow are retained in a separate ring. 0 retains every
// request (useful in smoke tests); negative disables the slow log.
func New(role string, buffer int, slowThreshold time.Duration) *Recorder {
	if buffer <= 0 {
		return nil
	}
	r := &Recorder{role: role, slowThresh: slowThreshold}
	r.recent.init(buffer)
	r.slow.init(buffer)
	r.background.init(buffer)
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		r.idHi = binary.LittleEndian.Uint64(seed[:])
	} else {
		r.idHi = uint64(time.Now().UnixNano()) // degraded uniqueness, never fails
	}
	r.pool.New = func() any { return new(Trace) }
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SlowThreshold returns the slow-log threshold; ok is false when the
// recorder or its slow log is disabled.
func (r *Recorder) SlowThreshold() (d time.Duration, ok bool) {
	if r == nil || r.slowThresh < 0 {
		return 0, false
	}
	return r.slowThresh, true
}

// Start begins recording a request trace. id is the adopted upstream
// trace ID (the X-Sketchtree-Trace-Id request header); "" mints a new
// one. Returns nil when the recorder is disabled.
func (r *Recorder) Start(endpoint, id string) *Trace {
	return r.start(endpoint, id, false)
}

// StartBackground begins recording a non-request trace (a pull/merge
// round). Background traces land in their own ring so periodic work
// never evicts request history.
func (r *Recorder) StartBackground(endpoint string) *Trace {
	return r.start(endpoint, "", true)
}

func (r *Recorder) start(endpoint, id string, background bool) *Trace {
	if r == nil {
		return nil
	}
	if id == "" || len(id) > maxAdoptedIDLen {
		id = r.mintID()
	}
	t := r.pool.Get().(*Trace)
	t.rec = r
	t.id = id
	t.endpoint = endpoint
	t.background = background
	t.start = time.Now()
	return t
}

// mintID returns a fresh 32-hex-char trace ID: a per-process random
// half plus a counter half, unique within and (with overwhelming
// probability) across daemons.
func (r *Recorder) mintID() string {
	return fmt.Sprintf("%016x%016x", r.idHi, r.idLo.Add(1))
}

// Completed is one finished trace as retained and served. Immutable
// after construction; shared between the recent and slow rings.
type Completed struct {
	TraceID    string            `json:"trace_id"`
	Role       string            `json:"role"`
	Endpoint   string            `json:"endpoint"`
	Status     int               `json:"status"`
	Slow       bool              `json:"slow,omitempty"`
	Background bool              `json:"background,omitempty"`
	Start      time.Time         `json:"start"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanJSON        `json:"spans,omitempty"`
}

// SpanJSON is one span within a served trace. Parent is the index of
// the enclosing span within the same trace (-1 for root level), so the
// flat list reconstructs the span tree.
type SpanJSON struct {
	Name       string `json:"name"`
	Parent     int    `json:"parent"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
}

// debugResponse is the GET /debug/requests body.
type debugResponse struct {
	Enabled         bool         `json:"enabled"`
	Role            string       `json:"role,omitempty"`
	SlowThresholdNS int64        `json:"slow_threshold_ns"` // -1: slow log disabled
	Recent          []*Completed `json:"recent"`
	Slow            []*Completed `json:"slow"`
	Background      []*Completed `json:"background,omitempty"`
}

// Handler serves the flight recorder as JSON on GET /debug/requests:
// the retained request traces (newest first), the slow-query log, and
// background rounds. ?trace_id= narrows every section to exact ID
// matches — the cross-daemon join: look a coordinator trace's ID up on
// the shard that served it. Works on a nil (disabled) recorder, which
// answers {"enabled": false}.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		resp := debugResponse{SlowThresholdNS: -1, Recent: []*Completed{}, Slow: []*Completed{}}
		if r != nil {
			resp.Enabled = true
			resp.Role = r.role
			if r.slowThresh >= 0 {
				resp.SlowThresholdNS = r.slowThresh.Nanoseconds()
			}
			id := req.URL.Query().Get("trace_id")
			resp.Recent = filterID(r.recent.all(), id)
			resp.Slow = filterID(r.slow.all(), id)
			resp.Background = filterID(r.background.all(), id)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			// Headers are already written; the client went away.
			_ = err
		}
	})
}

// filterID keeps the traces whose ID is id ("" keeps all).
func filterID(ts []*Completed, id string) []*Completed {
	if id == "" {
		return ts
	}
	out := ts[:0:0]
	for _, t := range ts {
		if t.TraceID == id {
			out = append(out, t)
		}
	}
	if out == nil {
		out = []*Completed{}
	}
	return out
}
