package trace

import "context"

// ctxKey is the private context key type for the active trace.
type ctxKey struct{}

// NewContext returns ctx carrying t. A nil trace returns ctx unchanged
// (no allocation on the disabled path).
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil result
// is usable directly: every Trace method accepts a nil receiver.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
