package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestStageString(t *testing.T) {
	want := []string{"parse", "enum", "fingerprint", "sketch", "topk", "merge", "plan", "publish"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := Stage(-1).String(); got != "unknown" {
		t.Errorf("Stage(-1) = %q", got)
	}
	if got := Stage(NumStages).String(); got != "unknown" {
		t.Errorf("Stage(NumStages) = %q", got)
	}
}

func TestLatencyBucketMapping(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Nanosecond, 0},                // < 1µs
		{time.Microsecond, 1},                     // [1µs, 2µs)
		{1500 * time.Nanosecond, 1},               //
		{2 * time.Microsecond, 2},                 // [2µs, 4µs)
		{3 * time.Microsecond, 2},                 //
		{time.Millisecond, 10},                    // 1000µs ∈ [2^9, 2^10)
		{10 * time.Second, NumLatencyBuckets - 1}, // far past the range
	}
	for _, c := range cases {
		if got := latencyBucket(c.d); got != c.want {
			t.Errorf("latencyBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every finite bucket bound must be consistent with the mapping: a
	// duration just below bound i lands in bucket ≤ i, the bound itself
	// lands strictly above.
	for i := 0; i < NumLatencyBuckets-1; i++ {
		b := LatencyBucketBound(i)
		if b <= 0 {
			t.Fatalf("bucket %d: non-positive finite bound %v", i, b)
		}
		if got := latencyBucket(b - time.Nanosecond); got > i {
			t.Errorf("latencyBucket(bound(%d)-1ns) = %d, want <= %d", i, got, i)
		}
		if got := latencyBucket(b); got != i+1 {
			t.Errorf("latencyBucket(bound(%d)) = %d, want %d", i, got, i+1)
		}
	}
	if LatencyBucketBound(NumLatencyBuckets-1) >= 0 {
		t.Error("overflow bucket must report a negative (unbounded) bound")
	}
}

func TestNilReceiverSafe(t *testing.T) {
	var m *Metrics
	m.EnableTimers(true)
	if m.TimersOn() {
		t.Error("nil Metrics reports timers on")
	}
	if !m.Now().IsZero() {
		t.Error("nil Metrics.Now() must be zero")
	}
	m.AddTrees(1)
	m.AddPatterns(1)
	m.AddRemoves(1)
	m.StageAdd(StageEnum, 1, 1)
	m.StageSince(StageEnum, time.Now())
	m.QueryDone(m.QueryStart(), nil)
	m.Absorb(&Metrics{})
	(&Metrics{}).Absorb(m)
	m.SeedCounts(1, 2)
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil Metrics.Snapshot() = %+v, want zero", s)
	}
}

func TestTimersGate(t *testing.T) {
	var m Metrics
	if !m.Now().IsZero() {
		t.Fatal("disabled timers: Now() must return the zero Time")
	}
	// A zero start records the query but not its latency.
	m.QueryDone(time.Time{}, nil)
	s := m.Snapshot()
	if s.Queries.Count != 1 || s.Queries.Timed() != 0 || s.Queries.Nanos != 0 {
		t.Errorf("untimed query: %+v", s.Queries)
	}
	// Zero-start StageSince is a no-op.
	m.StageSince(StageSketch, time.Time{})
	if got := m.Snapshot().Stage(StageSketch); got != (StageSnapshot{}) {
		t.Errorf("zero-start StageSince recorded %+v", got)
	}

	m.EnableTimers(true)
	if !m.TimersOn() {
		t.Fatal("EnableTimers(true) not visible")
	}
	start := m.Now()
	if start.IsZero() {
		t.Fatal("enabled timers: Now() must return a real time")
	}
	m.StageSince(StageSketch, start)
	if got := m.Snapshot().Stage(StageSketch); got.Count != 1 || got.Nanos <= 0 {
		t.Errorf("timed StageSince recorded %+v", got)
	}
	m.QueryDone(m.QueryStart(), nil)
	s = m.Snapshot()
	if s.Queries.Count != 2 || s.Queries.Timed() != 1 || s.Queries.Nanos <= 0 {
		t.Errorf("timed query: %+v", s.Queries)
	}
}

func TestQueryErrorsExcludedFromHistogram(t *testing.T) {
	var m Metrics
	m.EnableTimers(true)
	m.QueryDone(m.QueryStart(), errString("boom"))
	s := m.Snapshot()
	if s.Queries.Count != 1 || s.Queries.Errors != 1 {
		t.Errorf("error query counters: %+v", s.Queries)
	}
	if s.Queries.Timed() != 0 || s.Queries.Nanos != 0 {
		t.Errorf("failed query leaked into the histogram: %+v", s.Queries)
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestAbsorbAndSnapshotAdd(t *testing.T) {
	var a, b Metrics
	a.AddTrees(3)
	a.AddPatterns(30)
	a.StageAdd(StageEnum, 5, 500)
	a.QueryDone(time.Time{}, nil)
	b.AddTrees(4)
	b.AddPatterns(40)
	b.AddRemoves(2)
	b.StageAdd(StageEnum, 7, 700)
	b.StageAdd(StageMerge, 1, 90)
	b.QueryDone(time.Time{}, errString("x"))

	// Absorb on the write side and Snapshot.Add on the read side must
	// agree.
	sum := a.Snapshot()
	sum.Add(b.Snapshot())
	a.Absorb(&b)
	if got := a.Snapshot(); got != sum {
		t.Errorf("Absorb = %+v\nSnapshot.Add = %+v", got, sum)
	}
	s := a.Snapshot()
	if s.Trees != 7 || s.Patterns != 70 || s.Removes != 2 {
		t.Errorf("absorbed counters: %+v", s)
	}
	if st := s.Stage(StageEnum); st.Count != 12 || st.Nanos != 1200 {
		t.Errorf("absorbed enum stage: %+v", st)
	}
	if s.Queries.Count != 2 || s.Queries.Errors != 1 {
		t.Errorf("absorbed queries: %+v", s.Queries)
	}
}

func TestSeedCounts(t *testing.T) {
	var m Metrics
	m.AddTrees(5)
	m.SeedCounts(100, 2000)
	s := m.Snapshot()
	if s.Trees != 100 || s.Patterns != 2000 {
		t.Errorf("seeded snapshot: %+v", s)
	}
}

func TestStageSnapshotPerOp(t *testing.T) {
	if got := (StageSnapshot{Count: 4, Nanos: 1000}).PerOp(); got != 250*time.Nanosecond {
		t.Errorf("PerOp = %v", got)
	}
	if got := (StageSnapshot{}).PerOp(); got != 0 {
		t.Errorf("idle PerOp = %v", got)
	}
}

// The instrumentation contract: counter updates and disabled-timer
// probes are allocation-free, so they can sit on the ingestion hot
// path.
func TestHotPathAllocationFree(t *testing.T) {
	var m Metrics
	ops := map[string]func(){
		"AddTrees":      func() { m.AddTrees(1) },
		"AddPatterns":   func() { m.AddPatterns(3) },
		"AddRemoves":    func() { m.AddRemoves(1) },
		"StageAdd":      func() { m.StageAdd(StageSketch, 3, 42) },
		"Now(disabled)": func() { _ = m.Now() },
		"TimersOn":      func() { _ = m.TimersOn() },
		"QueryDone":     func() { m.QueryDone(time.Time{}, nil) },
		"StageSince":    func() { m.StageSince(StageEnum, time.Time{}) },
		"Snapshot":      func() { _ = m.Snapshot() },
	}
	for name, op := range ops {
		if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
	// Timing enabled still must not allocate (time.Now + atomics only).
	m.EnableTimers(true)
	timed := func() { m.StageSince(StageSketch, m.Now()) }
	if allocs := testing.AllocsPerRun(100, timed); allocs != 0 {
		t.Errorf("enabled StageSince allocates %.1f times per call, want 0", allocs)
	}
	query := func() { m.QueryDone(m.QueryStart(), nil) }
	if allocs := testing.AllocsPerRun(100, query); allocs != 0 {
		t.Errorf("enabled QueryDone allocates %.1f times per call, want 0", allocs)
	}
}

func testSnapshot() Snapshot {
	var m Metrics
	m.EnableTimers(true)
	m.AddTrees(10)
	m.AddPatterns(100)
	m.AddRemoves(1)
	m.StageAdd(StageParse, 10, 1000)
	m.StageAdd(StageSketch, 100, 5000)
	m.QueryDone(m.QueryStart(), nil)
	m.QueryDone(time.Time{}, errString("x"))
	return m.Snapshot()
}

func TestJSONHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	JSONHandler(testSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		TimersEnabled bool  `json:"timers_enabled"`
		Trees         int64 `json:"trees"`
		Patterns      int64 `json:"patterns"`
		Removes       int64 `json:"removes"`
		Stages        map[string]struct {
			Count int64 `json:"count"`
			Nanos int64 `json:"nanos"`
		} `json:"stages"`
		Queries struct {
			Count   int64 `json:"count"`
			Errors  int64 `json:"errors"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"latency_buckets"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rr.Body.String())
	}
	if !doc.TimersEnabled || doc.Trees != 10 || doc.Patterns != 100 || doc.Removes != 1 {
		t.Errorf("top-level counters: %+v", doc)
	}
	if len(doc.Stages) != NumStages {
		t.Errorf("stages: %d entries, want %d", len(doc.Stages), NumStages)
	}
	if st := doc.Stages["sketch"]; st.Count != 100 || st.Nanos != 5000 {
		t.Errorf("sketch stage: %+v", st)
	}
	if doc.Queries.Count != 2 || doc.Queries.Errors != 1 {
		t.Errorf("queries: %+v", doc.Queries)
	}
	if len(doc.Queries.Buckets) != NumLatencyBuckets {
		t.Fatalf("buckets: %d, want %d", len(doc.Queries.Buckets), NumLatencyBuckets)
	}
	last := doc.Queries.Buckets[NumLatencyBuckets-1]
	if last.LE != "+Inf" || last.Count != 1 {
		t.Errorf("overflow bucket: %+v (cumulative count must equal timed queries)", last)
	}
	// Cumulative counts must be monotone.
	for i := 1; i < len(doc.Queries.Buckets); i++ {
		if doc.Queries.Buckets[i].Count < doc.Queries.Buckets[i-1].Count {
			t.Fatalf("bucket %d not cumulative: %+v", i, doc.Queries.Buckets)
		}
	}
}

func TestPromHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	PromHandler(testSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"sketchtree_trees_total 10",
		"sketchtree_patterns_total 100",
		"sketchtree_removes_total 1",
		"sketchtree_queries_total 2",
		"sketchtree_query_errors_total 1",
		`sketchtree_stage_ops_total{stage="sketch"} 100`,
		`sketchtree_stage_seconds_total{stage="sketch"} 5e-06`,
		`sketchtree_query_latency_seconds_bucket{le="+Inf"} 1`,
		"sketchtree_query_latency_seconds_count 1",
		"# TYPE sketchtree_query_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}
