package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promLine is one parsed sample from the text exposition format.
type promLine struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses the Prometheus text format strictly enough to catch
// malformed output: every non-comment line must be `name[{labels}]
// value`, every label value must be a valid double-quoted Go string.
func parseProm(t *testing.T, body string) ([]promLine, map[string]string) {
	t.Helper()
	var samples []promLine
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		head, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		l := promLine{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(head, '{'); i >= 0 {
			if !strings.HasSuffix(head, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			l.name = head[:i]
			for _, pair := range splitLabels(t, head[i+1:len(head)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("label without '=' in %q", line)
				}
				// The satellite's escaping check: every label value must
				// round-trip through strconv.Unquote.
				v, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("label value %s in %q is not a quoted string: %v", pair[eq+1:], line, err)
				}
				l.labels[pair[:eq]] = v
			}
		} else {
			l.name = head
		}
		samples = append(samples, l)
	}
	return samples, types
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func find(samples []promLine, name string) []promLine {
	var out []promLine
	for _, s := range samples {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

func fullSnapshot() Snapshot {
	s := testSnapshot()
	s.Health = &HealthSnapshot{
		VirtualStreams: 3,
		Items:          []int64{40, 60, 0},
		TopK: &TopKHealth{
			Trackers: 3, Capacity: 30, Residency: 5, MinFreq: 2,
			Promotions: 7, Evictions: 2, DeletedMass: 55,
		},
	}
	s.Health.Recompute()
	s.Audit = &AuditSnapshot{
		Capacity: 64, Patterns: 10, Observed: 100, Reported: true,
		MeanRelErr: 0.05, P50RelErr: 0.03, P90RelErr: 0.09,
		P99RelErr: 0.2, MaxRelErr: 0.25,
	}
	return s
}

// The exposition format contract: the latency histogram's le buckets
// are cumulative and end at +Inf, and _sum/_count agree with the
// bucket data.
func TestPromHistogramContract(t *testing.T) {
	rr := httptest.NewRecorder()
	PromHandler(fullSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	samples, types := parseProm(t, rr.Body.String())

	if types["sketchtree_query_latency_seconds"] != "histogram" {
		t.Fatalf("latency metric typed %q", types["sketchtree_query_latency_seconds"])
	}
	buckets := find(samples, "sketchtree_query_latency_seconds_bucket")
	if len(buckets) != NumLatencyBuckets {
		t.Fatalf("%d buckets exposed, want %d", len(buckets), NumLatencyBuckets)
	}
	prevLE := math.Inf(-1)
	prevCount := float64(0)
	for i, b := range buckets {
		le := b.labels["le"]
		bound := math.Inf(1)
		if le != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bucket %d has unparseable le=%q", i, le)
			}
		}
		if bound <= prevLE {
			t.Fatalf("le bounds not increasing at bucket %d: %v after %v", i, bound, prevLE)
		}
		if b.value < prevCount {
			t.Fatalf("bucket counts not cumulative at %d: %v after %v", i, b.value, prevCount)
		}
		prevLE, prevCount = bound, b.value
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Fatalf("final bucket le=%q, want +Inf", last.labels["le"])
	}
	count := find(samples, "sketchtree_query_latency_seconds_count")
	if len(count) != 1 || count[0].value != last.value {
		t.Fatalf("_count %v must equal the +Inf bucket %v", count, last.value)
	}
	sum := find(samples, "sketchtree_query_latency_seconds_sum")
	if len(sum) != 1 || sum[0].value < 0 {
		t.Fatalf("_sum: %v", sum)
	}
	if count[0].value == 0 && sum[0].value != 0 {
		t.Fatal("_sum nonzero with zero observations")
	}
}

// Every label value in the whole exposition must be a well-formed
// quoted string, and stage names containing no exotic characters must
// round-trip unchanged. parseProm enforces the quoting; this test adds
// the stage-coverage check.
func TestPromLabelEscaping(t *testing.T) {
	rr := httptest.NewRecorder()
	PromHandler(fullSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	samples, _ := parseProm(t, rr.Body.String())
	stages := find(samples, "sketchtree_stage_ops_total")
	if len(stages) != int(NumStages) {
		t.Fatalf("%d stage samples, want %d", len(stages), NumStages)
	}
	seen := map[string]bool{}
	for _, s := range stages {
		name := s.labels["stage"]
		if name == "" || strings.ContainsAny(name, "\"\n\\") {
			t.Fatalf("stage label %q not cleanly escaped", name)
		}
		seen[name] = true
	}
	for i := Stage(0); i < NumStages; i++ {
		if !seen[i.String()] {
			t.Fatalf("stage %q missing from exposition", i.String())
		}
	}
}

// Health and audit families appear when the sections are populated and
// are wholly absent when they are nil.
func TestPromHealthAuditFamilies(t *testing.T) {
	rr := httptest.NewRecorder()
	PromHandler(fullSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	samples, types := parseProm(t, rr.Body.String())

	items := find(samples, "sketchtree_vstream_items")
	if len(items) != 3 {
		t.Fatalf("%d vstream_items samples, want 3", len(items))
	}
	byStream := map[string]float64{}
	for _, s := range items {
		byStream[s.labels["stream"]] = s.value
	}
	if byStream["0"] != 40 || byStream["1"] != 60 || byStream["2"] != 0 {
		t.Fatalf("vstream items: %v", byStream)
	}
	if got := find(samples, "sketchtree_vstream_share_max"); len(got) != 1 || got[0].value != 0.6 {
		t.Fatalf("share_max: %v", got)
	}
	if got := find(samples, "sketchtree_topk_residency"); len(got) != 1 || got[0].value != 5 {
		t.Fatalf("topk_residency: %v", got)
	}
	if types["sketchtree_topk_promotions_total"] != "counter" {
		t.Fatalf("promotions typed %q", types["sketchtree_topk_promotions_total"])
	}

	if types["sketchtree_audit_rel_error"] != "summary" {
		t.Fatalf("audit rel error typed %q", types["sketchtree_audit_rel_error"])
	}
	qs := find(samples, "sketchtree_audit_rel_error")
	wantQ := map[string]float64{"0.5": 0.03, "0.9": 0.09, "0.99": 0.2}
	if len(qs) != len(wantQ) {
		t.Fatalf("%d summary quantiles: %v", len(qs), qs)
	}
	for _, q := range qs {
		if wantQ[q.labels["quantile"]] != q.value {
			t.Fatalf("quantile %q = %v", q.labels["quantile"], q.value)
		}
	}
	// Summary consistency: _sum must equal mean × count.
	sum := find(samples, "sketchtree_audit_rel_error_sum")
	count := find(samples, "sketchtree_audit_rel_error_count")
	if len(sum) != 1 || len(count) != 1 {
		t.Fatalf("summary sum/count: %v / %v", sum, count)
	}
	if count[0].value != 10 || math.Abs(sum[0].value-0.05*10) > 1e-12 {
		t.Fatalf("audit summary sum %v count %v, want 0.5 / 10", sum[0].value, count[0].value)
	}
	if got := find(samples, "sketchtree_audit_observed_total"); len(got) != 1 || got[0].value != 100 {
		t.Fatalf("audit observed: %v", got)
	}

	// Nil sections → no health or audit families at all.
	rr = httptest.NewRecorder()
	PromHandler(testSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	bare, _ := parseProm(t, rr.Body.String())
	for _, name := range []string{
		"sketchtree_vstream_items", "sketchtree_vstream_share_max",
		"sketchtree_topk_residency", "sketchtree_audit_patterns",
		"sketchtree_audit_rel_error",
	} {
		if got := find(bare, name); len(got) != 0 {
			t.Fatalf("family %s present without its section: %v", name, got)
		}
	}
}

// The JSON document mirrors the same omitempty behavior and carries
// the health/audit sections verbatim.
func TestJSONHealthAuditSections(t *testing.T) {
	rr := httptest.NewRecorder()
	JSONHandler(fullSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var health struct {
		VirtualStreams int     `json:"virtual_streams"`
		TotalItems     int64   `json:"total_items"`
		MaxShare       float64 `json:"max_share"`
		TopK           *struct {
			Residency  int   `json:"residency"`
			Promotions int64 `json:"promotions"`
		} `json:"topk"`
	}
	if err := json.Unmarshal(doc["health"], &health); err != nil {
		t.Fatalf("health section: %v", err)
	}
	if health.VirtualStreams != 3 || health.TotalItems != 100 || health.MaxShare != 0.6 {
		t.Fatalf("health: %+v", health)
	}
	if health.TopK == nil || health.TopK.Residency != 5 || health.TopK.Promotions != 7 {
		t.Fatalf("topk: %+v", health.TopK)
	}
	var audit struct {
		Capacity int     `json:"capacity"`
		Reported bool    `json:"reported"`
		P90      float64 `json:"p90_rel_err"`
	}
	if err := json.Unmarshal(doc["audit"], &audit); err != nil {
		t.Fatalf("audit section: %v", err)
	}
	if audit.Capacity != 64 || !audit.Reported || audit.P90 != 0.09 {
		t.Fatalf("audit: %+v", audit)
	}

	// Without the sections the keys are omitted entirely.
	rr = httptest.NewRecorder()
	JSONHandler(testSnapshot).ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var bare map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &bare); err != nil {
		t.Fatal(err)
	}
	if _, ok := bare["health"]; ok {
		t.Fatal("health key present without a health section")
	}
	if _, ok := bare["audit"]; ok {
		t.Fatal("audit key present without an audit section")
	}
}
