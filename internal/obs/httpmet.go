package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// HTTPMetrics counts served HTTP requests by (endpoint, status code),
// the aggregate trail that distinguishes 400/413/502/503/504 responses
// from successes on /metrics. Like the other obs types, updates are
// lock-free after the first observation of a pair (one sync.Map load +
// one atomic add) and every method is safe on a nil receiver.
type HTTPMetrics struct {
	m sync.Map // httpKey -> *atomic.Int64
}

type httpKey struct {
	endpoint string
	code     int
}

// NewHTTPMetrics creates an empty per-status-code counter set.
func NewHTTPMetrics() *HTTPMetrics { return &HTTPMetrics{} }

// Observe records one served request. endpoint should be a bounded
// label (a known route, not the raw URL path) so the cardinality stays
// small.
func (m *HTTPMetrics) Observe(endpoint string, code int) {
	if m == nil {
		return
	}
	k := httpKey{endpoint: endpoint, code: code}
	if c, ok := m.m.Load(k); ok {
		c.(*atomic.Int64).Add(1)
		return
	}
	c, _ := m.m.LoadOrStore(k, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// HTTPSnapshot is one (endpoint, code) counter within a snapshot.
type HTTPSnapshot struct {
	Endpoint string `json:"endpoint"`
	Code     int    `json:"code"`
	Count    int64  `json:"count"`
}

// Snapshot reads the counters, sorted by endpoint then code for
// deterministic exposition. A nil receiver yields nil.
func (m *HTTPMetrics) Snapshot() []HTTPSnapshot {
	if m == nil {
		return nil
	}
	var out []HTTPSnapshot
	m.m.Range(func(k, v any) bool {
		kk := k.(httpKey)
		out = append(out, HTTPSnapshot{
			Endpoint: kk.endpoint,
			Code:     kk.code,
			Count:    v.(*atomic.Int64).Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Endpoint != out[j].Endpoint {
			return out[i].Endpoint < out[j].Endpoint
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// WriteHTTPProm renders the request counters in the Prometheus text
// exposition format. Appended to /metrics after the engine families.
func WriteHTTPProm(w io.Writer, reqs []HTTPSnapshot) {
	const name = "sketchtree_http_requests_total"
	fmt.Fprintf(w, "# HELP %s Served HTTP requests by endpoint and status code.\n# TYPE %s counter\n", name, name)
	for _, r := range reqs {
		fmt.Fprintf(w, "%s{endpoint=%q,code=\"%d\"} %d\n", name, r.Endpoint, r.Code, r.Count)
	}
}
