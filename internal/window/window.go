// Package window implements sliding-window counting over the streaming
// synopsis: a ring of chunked sub-synopses (one core.Engine per time
// slice), advanced on document count or wall clock, expired by dropping
// the oldest slice, and served by merging the live slices into one
// published engine.
//
// The construction rides on the same linearity that makes cluster merge
// exact: AMS sketches are linear projections, so the cell-wise integer
// sum of the live slices' counters IS the sketch of the live documents.
// The merged engine is therefore bit-identical — synopsis bytes and
// float64 estimates — to a fresh engine fed only the documents still
// inside the window, and everything downstream (the plan cache, the
// query path, snapshot-isolated serving, cluster pulls) applies to it
// unchanged.
//
// Concurrency: one mutex serializes all mutators (Add, Remove, Absorb,
// Advance, AdvanceDue, Refresh). Readers never take it — the ring is
// published copy-on-write behind an atomic pointer, per-slice tree
// counts are atomics, and the merged serving engine is an atomic
// pointer to a frozen engine — so Status, Trees, Merged and query
// serving are lock-free and never wait behind an in-flight ingest.
//
// The clock is injected (New's clock parameter); the merge/rebuild
// paths never read time.Now themselves, keeping the determinism
// contract auditable: two windows fed the same documents and the same
// advance calls hold identical synopses regardless of wall time.
package window

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sketchtree/internal/core"
	"sketchtree/internal/obs"
	"sketchtree/internal/tree"
)

// Policy configures the sliding window.
type Policy struct {
	// Slices is the ring capacity: the window covers at most this many
	// slices; advancing while full expires (drops) the oldest. Must be
	// at least 1 (a 1-slice ring is a tumbling window).
	Slices int

	// SliceTrees seals the current slice after this many trees have
	// been added to it. 0 disables the count cadence.
	SliceTrees int

	// SliceDur seals the current slice after this wall-clock duration.
	// 0 disables the clock cadence. With both cadences zero the window
	// advances only on explicit Advance calls.
	SliceDur time.Duration

	// RefreshEveryTrees rebuilds the published merged engine after this
	// many updates between advances (every advance rebuilds regardless,
	// so expired documents leave the served state immediately). 0
	// selects DefaultRefreshEveryTrees; negative disables update-driven
	// rebuilds (advance/Refresh only). Served answers trail the live
	// window by at most this many updates.
	RefreshEveryTrees int
}

// DefaultRefreshEveryTrees is the merged-rebuild cadence selected by a
// zero Policy.RefreshEveryTrees.
const DefaultRefreshEveryTrees = 256

// slice is one chunk of the ring: a sub-synopsis plus its provenance.
// start is immutable after creation; trees is atomic so lock-free
// Status readers can report per-slice occupancy during ingest.
type slice struct {
	eng   *core.Engine
	start time.Time
	trees atomic.Int64
}

// Merged is one published merged-window state: a frozen engine over
// exactly the live slices at build time, plus provenance. The engine is
// never updated after publication, so any number of goroutines may
// query it concurrently.
type Merged struct {
	Eng    *core.Engine
	Trees  int64     // trees covered by the merged state
	Slices int       // live slices merged in
	Built  time.Time // injected-clock time of the rebuild
	Gen    int64     // rebuild generation, monotonically increasing
}

// Windowed is the sliding-window engine. Construct with New; the zero
// value is not valid.
type Windowed struct {
	pol      Policy
	clock    func() time.Time
	template *core.Engine // empty donor: shared seeds, modulus, plan cache
	met      *obs.Metrics // persistent serving metrics across rebuilds

	mu           sync.Mutex // serializes all mutators
	timers       bool       // stage-timer flag applied to new slices
	sinceRebuild int        // updates since the last merged rebuild

	ring   atomic.Pointer[[]*slice] // live slices, oldest first; last = current
	merged atomic.Pointer[Merged]

	advances atomic.Int64
	expires  atomic.Int64
	rebuilds atomic.Int64
}

// New builds a sliding window over template's configuration. The
// template engine must be empty (zero trees): it donates the ξ seeds,
// the fingerprint modulus and the query-plan cache to every slice and
// merged engine (via Clone), and is never updated afterwards.
//
// Configurations that break the slice merge are rejected here, at
// enable time, with the same reasoning cluster mode applies: top-k
// trackers interleave deletions into the counters with no well-defined
// union, the exact baseline cannot forget an expired slice's counts
// bit-exactly, and an exact-shadow auditor's sample is drawn over one
// engine's stream. TopK must be 0, TrackExact false, and no auditor
// attached.
//
// clock supplies wall time for the SliceDur cadence and provenance
// ages; nil selects time.Now. The merge and rebuild paths only ever
// read the injected clock, never the real one.
func New(template *core.Engine, pol Policy, clock func() time.Time) (*Windowed, error) {
	if template == nil {
		return nil, fmt.Errorf("window: nil template engine")
	}
	cfg := template.Config()
	if cfg.TopK != 0 {
		return nil, fmt.Errorf("window: Config.TopK %d != 0: top-k synopses cannot be merged, so slices cannot form a window", cfg.TopK)
	}
	if cfg.TrackExact {
		return nil, fmt.Errorf("window: Config.TrackExact is set: the exact baseline cannot drop an expired slice's counts")
	}
	if template.AuditEnabled() {
		return nil, fmt.Errorf("window: an exact-shadow auditor is attached: its sample has no well-defined union across slices")
	}
	if n := template.TreesProcessed(); n != 0 {
		return nil, fmt.Errorf("window: engine already holds %d trees; enable the window before any tree is added", n)
	}
	if pol.Slices < 1 {
		return nil, fmt.Errorf("window: Policy.Slices %d < 1", pol.Slices)
	}
	if pol.SliceTrees < 0 {
		return nil, fmt.Errorf("window: Policy.SliceTrees %d < 0", pol.SliceTrees)
	}
	if pol.SliceDur < 0 {
		return nil, fmt.Errorf("window: Policy.SliceDur %v < 0", pol.SliceDur)
	}
	if pol.RefreshEveryTrees == 0 {
		pol.RefreshEveryTrees = DefaultRefreshEveryTrees
	}
	if clock == nil {
		clock = time.Now
	}
	w := &Windowed{
		pol:      pol,
		clock:    clock,
		template: template,
		met:      &obs.Metrics{},
		timers:   template.Metrics().TimersOn(),
	}
	w.met.EnableTimers(w.timers)
	first, err := w.newSliceLocked(clock())
	if err != nil {
		return nil, err
	}
	ring := []*slice{first}
	w.ring.Store(&ring)
	if err := w.rebuildLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// Policy returns the normalized policy the window runs under.
func (w *Windowed) Policy() Policy { return w.pol }

// Config returns the engine configuration every slice shares.
func (w *Windowed) Config() core.Config { return w.template.Config() }

// Metrics returns the persistent serving metrics: the sink the merged
// engine reports queries through, and where producers should attribute
// parse time in window mode.
func (w *Windowed) Metrics() *obs.Metrics { return w.met }

// EnableTimers switches stage/latency timing on every slice, the
// serving metrics, and slices created later.
func (w *Windowed) EnableTimers(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.timers = on
	w.met.EnableTimers(on)
	for _, sl := range *w.ring.Load() {
		sl.eng.Metrics().EnableTimers(on)
	}
}

// curLocked returns the current (newest) slice. Caller holds w.mu.
//
//lint:hotpath
func (w *Windowed) curLocked() *slice {
	r := *w.ring.Load()
	return r[len(r)-1]
}

// newSliceLocked clones the empty template into a fresh slice engine
// with its own metrics sink. Caller holds w.mu (or is New).
func (w *Windowed) newSliceLocked(start time.Time) (*slice, error) {
	eng, err := w.template.Clone()
	if err != nil {
		return nil, fmt.Errorf("window: new slice: %w", err)
	}
	m := &obs.Metrics{}
	m.EnableTimers(w.timers)
	eng.SetMetrics(m)
	return &slice{eng: eng, start: start}, nil
}

// Add folds one tree into the current slice, advancing first if the
// clock cadence is due and afterwards if the count cadence fills the
// slice.
//
//lint:hotpath
func (w *Windowed) Add(t *tree.Tree) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.advanceDueLocked(); err != nil {
		return err
	}
	cur := w.curLocked()
	if err := cur.eng.AddTree(t); err != nil {
		return err
	}
	cur.trees.Add(1)
	if w.pol.SliceTrees > 0 && cur.trees.Load() >= int64(w.pol.SliceTrees) {
		return w.advanceAtLocked(w.clock()) //lint:allow hotpath slice rotation is the cadence boundary, amortized over SliceTrees updates
	}
	return w.noteUpdateLocked()
}

// Remove deletes one earlier occurrence of the tree from the current
// slice (the AMS deletion property). Removals target the current slice
// only: a document that has rotated into an older slice leaves the
// window by expiry, not by deletion.
func (w *Windowed) Remove(t *tree.Tree) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.advanceDueLocked(); err != nil {
		return err
	}
	cur := w.curLocked()
	if err := cur.eng.RemoveTree(t); err != nil {
		return err
	}
	cur.trees.Add(-1)
	return w.noteUpdateLocked()
}

// Absorb merges a foreign engine's synopsis into the current slice —
// the fan-in half of parallel ingestion, windowed. The operand must
// satisfy the usual merge preconditions (identical Config including
// Seed, no top-k, no auditor) and is only read.
func (w *Windowed) Absorb(o *core.Engine) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.advanceDueLocked(); err != nil {
		return err
	}
	cur := w.curLocked()
	before := cur.eng.TreesProcessed()
	if err := cur.eng.Merge(o); err != nil {
		return err
	}
	cur.trees.Add(cur.eng.TreesProcessed() - before)
	return w.noteUpdateLocked()
}

// Advance seals the current slice and starts a fresh one now,
// expiring the oldest slice when the ring is full. The merged serving
// state is rebuilt before returning.
func (w *Windowed) Advance() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.advanceAtLocked(w.clock())
}

// AdvanceDue advances every slice the clock cadence has made due — the
// entry point for the background ticker that keeps an idle stream's
// window expiring. A no-op without a clock cadence.
func (w *Windowed) AdvanceDue() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.advanceDueLocked()
}

// Refresh rebuilds the published merged engine from the live slices
// immediately, regardless of the rebuild cadence.
func (w *Windowed) Refresh() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rebuildLocked()
}

// advanceDueLocked advances once per elapsed SliceDur, with slice
// starts aligned to the cadence grid so a busy advance never drifts.
// After a long idle gap every live slice has expired: rather than
// rotating the ring Slices more times, the window resets to a single
// fresh slice. Caller holds w.mu.
//
//lint:hotpath
func (w *Windowed) advanceDueLocked() error {
	if w.pol.SliceDur <= 0 {
		return nil
	}
	now := w.clock()
	for n := 0; ; n++ {
		cur := w.curLocked()
		if now.Sub(cur.start) < w.pol.SliceDur {
			return nil
		}
		if n >= w.pol.Slices {
			//lint:allow hotpath full reset after an idle gap longer than the window, not the per-update path
			return w.resetLocked(now)
		}
		//lint:allow hotpath clock-cadence rotation, amortized over a slice's lifetime
		if err := w.advanceAtLocked(cur.start.Add(w.pol.SliceDur)); err != nil {
			return err
		}
	}
}

// advanceAtLocked seals the current slice and appends a fresh one
// starting at start, dropping the oldest slice when the ring is at
// capacity. The ring is replaced copy-on-write so lock-free Status
// readers always see a consistent slice list. Caller holds w.mu.
func (w *Windowed) advanceAtLocked(start time.Time) error {
	fresh, err := w.newSliceLocked(start)
	if err != nil {
		return err
	}
	r := *w.ring.Load()
	keep := r
	if len(r) >= w.pol.Slices {
		drop := len(r) - w.pol.Slices + 1
		keep = r[drop:]
		w.expires.Add(int64(drop))
	}
	next := make([]*slice, 0, len(keep)+1)
	next = append(next, keep...)
	next = append(next, fresh)
	w.ring.Store(&next)
	w.advances.Add(1)
	return w.rebuildLocked()
}

// resetLocked replaces the whole ring with one fresh slice — the idle
// catch-up path where every live slice has already expired. Caller
// holds w.mu.
func (w *Windowed) resetLocked(start time.Time) error {
	fresh, err := w.newSliceLocked(start)
	if err != nil {
		return err
	}
	old := *w.ring.Load()
	ring := []*slice{fresh}
	w.ring.Store(&ring)
	w.advances.Add(1)
	w.expires.Add(int64(len(old)))
	return w.rebuildLocked()
}

// noteUpdateLocked ticks the update counter and rebuilds the merged
// serving state when the refresh cadence is reached. Caller holds w.mu.
//
//lint:hotpath
func (w *Windowed) noteUpdateLocked() error {
	if w.pol.RefreshEveryTrees < 0 {
		return nil
	}
	w.sinceRebuild++
	if w.sinceRebuild < w.pol.RefreshEveryTrees {
		return nil
	}
	//lint:allow hotpath merged-state rebuild at the refresh cadence, amortized
	return w.rebuildLocked()
}

// rebuildLocked merges the live slices into a fresh engine and
// publishes it. The engine starts as a clone of the empty template (so
// it shares the seeds, modulus and plan cache) with a scratch metrics
// sink — Merge absorbs each operand's metrics into the receiver's, and
// that absorption must not touch the slices' own counters or the
// persistent serving sink. After the merge the persistent sink is
// re-seeded with the merged totals and swapped in, so query accounting
// survives across rebuilds. Caller holds w.mu.
//
// Because the slices' stream counters are integers and the merge is a
// cell-wise sum, the published engine is bit-identical — bytes and
// estimates — to a fresh engine fed the live documents in order.
func (w *Windowed) rebuildLocked() error {
	start := w.met.Now()
	m, err := w.template.Clone()
	if err != nil {
		return fmt.Errorf("window: rebuild: %w", err)
	}
	m.SetMetrics(nil)
	r := *w.ring.Load()
	for _, sl := range r {
		if err := m.Merge(sl.eng); err != nil {
			return fmt.Errorf("window: rebuild: %w", err)
		}
	}
	w.met.SeedCounts(m.TreesProcessed(), m.PatternsProcessed())
	m.SetMetrics(w.met)
	gen := int64(1)
	if prev := w.merged.Load(); prev != nil {
		gen = prev.Gen + 1
	}
	w.merged.Store(&Merged{
		Eng:    m,
		Trees:  m.TreesProcessed(),
		Slices: len(r),
		Built:  w.clock(),
		Gen:    gen,
	})
	w.sinceRebuild = 0
	w.rebuilds.Add(1)
	w.met.StageSince(obs.StagePublish, start)
	return nil
}

// Merged returns the published merged-window state. Lock-free; never
// nil after New succeeds.
func (w *Windowed) Merged() *Merged { return w.merged.Load() }

// Trees returns the number of trees currently live in the window
// (net of removals), summed across slices. Lock-free.
func (w *Windowed) Trees() int64 {
	var n int64
	for _, sl := range *w.ring.Load() {
		n += sl.trees.Load()
	}
	return n
}

// Patterns returns the live window's pattern-occurrence total (the
// one-dimensional stream length), summed across slices. Lock-free.
func (w *Windowed) Patterns() int64 {
	var n int64
	for _, sl := range *w.ring.Load() {
		n += sl.eng.Metrics().Snapshot().Patterns
	}
	return n
}

// Status collects the window section of the observability snapshot:
// per-slice occupancy and age, merged provenance, and the
// advance/expire/rebuild counters. Lock-free — safe to call while
// ingest runs.
func (w *Windowed) Status() *obs.WindowSnapshot {
	now := w.clock()
	r := *w.ring.Load()
	ws := &obs.WindowSnapshot{
		Slices:     w.pol.Slices,
		SliceTrees: w.pol.SliceTrees,
		SliceDurMS: w.pol.SliceDur.Milliseconds(),
		Advances:   w.advances.Load(),
		Expires:    w.expires.Load(),
		Rebuilds:   w.rebuilds.Load(),
	}
	for i, sl := range r {
		t := sl.trees.Load()
		ws.LiveTrees += t
		ws.Live = append(ws.Live, obs.WindowSliceSnapshot{
			Trees:    t,
			Patterns: sl.eng.Metrics().Snapshot().Patterns,
			AgeMS:    now.Sub(sl.start).Milliseconds(),
			Current:  i == len(r)-1,
		})
	}
	if m := w.merged.Load(); m != nil {
		ws.MergedTrees = m.Trees
		ws.MergedSlices = m.Slices
		ws.MergedAgeMS = now.Sub(m.Built).Milliseconds()
	}
	return ws
}

// Stats reads the serving observability snapshot — the merged engine's
// counters (queries, stages, health, plan cache) with the window
// section attached. Lock-free.
func (w *Windowed) Stats() obs.Snapshot {
	var s obs.Snapshot
	if m := w.merged.Load(); m != nil {
		s = m.Eng.Stats()
	}
	s.Window = w.Status()
	return s
}

// MarshalBinary serializes the published merged window — the windowed
// shard's half of the cluster pull protocol, and a checkpoint of the
// live window trailing it by at most the rebuild cadence.
func (w *Windowed) MarshalBinary() ([]byte, error) {
	m := w.merged.Load()
	if m == nil {
		return nil, fmt.Errorf("window: no merged state published")
	}
	return m.Eng.MarshalBinary()
}

// HealthReport diagnoses the published merged window (the frozen
// engine, so no locking is needed).
func (w *Windowed) HealthReport() core.HealthReport {
	m := w.merged.Load()
	if m == nil {
		return core.HealthReport{}
	}
	return m.Eng.HealthReport()
}

// MemoryBytes reports the published merged engine's footprint (each
// live slice adds roughly the same again).
func (w *Windowed) MemoryBytes() core.Memory {
	m := w.merged.Load()
	if m == nil {
		return core.Memory{}
	}
	return m.Eng.MemoryBytes()
}
