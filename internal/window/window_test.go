package window

import (
	"bytes"
	"testing"
	"time"

	"sketchtree/internal/core"
	"sketchtree/internal/tree"
)

func windowConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 40
	cfg.S2 = 5
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.TrackExact = false
	cfg.Seed = 4242
	return cfg
}

func mustTemplate(t testing.TB, cfg core.Config) *core.Engine {
	t.Helper()
	e, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// doc generates a small labeled tree with some variety by index.
func doc(i int) *tree.Tree {
	switch i % 5 {
	case 0:
		return tree.NewTree(tree.T("a", tree.T("b"), tree.T("c")))
	case 1:
		return tree.NewTree(tree.T("a", tree.T("b"), tree.T("b")))
	case 2:
		return tree.NewTree(tree.T("a", tree.T("c"), tree.T("b")))
	case 3:
		return tree.NewTree(tree.T("a", tree.T("b", tree.T("d"))))
	default:
		return tree.NewTree(tree.T("d", tree.T("a", tree.T("b"))))
	}
}

// fakeClock is a deterministic injected clock advanced by the test.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time       { return c.now }
func (c *fakeClock) Tick(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock            { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Policy{Slices: 2}, nil); err == nil {
		t.Error("nil template must fail")
	}

	cfg := windowConfig()
	cfg.TopK = 8
	if _, err := New(mustTemplate(t, cfg), Policy{Slices: 2}, nil); err == nil {
		t.Error("TopK != 0 must fail: top-k synopses cannot be merged")
	}

	cfg = windowConfig()
	cfg.TrackExact = true
	if _, err := New(mustTemplate(t, cfg), Policy{Slices: 2}, nil); err == nil {
		t.Error("TrackExact must fail: the exact baseline cannot expire a slice")
	}

	audited := mustTemplate(t, windowConfig())
	if err := audited.EnableAudit(4); err != nil {
		t.Fatal(err)
	}
	if _, err := New(audited, Policy{Slices: 2}, nil); err == nil {
		t.Error("attached auditor must fail")
	}

	loaded := mustTemplate(t, windowConfig())
	if err := loaded.AddTree(doc(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(loaded, Policy{Slices: 2}, nil); err == nil {
		t.Error("non-empty template must fail")
	}

	tpl := mustTemplate(t, windowConfig())
	for _, pol := range []Policy{
		{Slices: 0},
		{Slices: -1},
		{Slices: 2, SliceTrees: -1},
		{Slices: 2, SliceDur: -time.Second},
	} {
		if _, err := New(tpl, pol, nil); err == nil {
			t.Errorf("policy %+v must fail", pol)
		}
	}
}

// The headline property at unit scope: after count-cadence advances
// and expiries, the merged window is bit-identical — synopsis bytes
// and float64 estimates — to a fresh engine fed only the live-slice
// documents.
func TestMergedBitIdenticalToFresh(t *testing.T) {
	cfg := windowConfig()
	w, err := New(mustTemplate(t, cfg), Policy{
		Slices:            3,
		SliceTrees:        4,
		RefreshEveryTrees: -1, // rebuilds only on advance; Refresh below
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror the slice ring as document index lists, replicating the
	// advance rule: a slice seals at SliceTrees documents, the ring
	// keeps the newest 3 slices.
	live := [][]int{{}}
	const total = 23
	for i := 0; i < total; i++ {
		if err := w.Add(doc(i)); err != nil {
			t.Fatal(err)
		}
		cur := &live[len(live)-1]
		*cur = append(*cur, i)
		if len(*cur) == 4 {
			live = append(live, []int{})
			if len(live) > 3 {
				live = live[1:]
			}
		}
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}

	fresh := mustTemplate(t, cfg)
	var wantTrees int64
	for _, sl := range live {
		for _, i := range sl {
			if err := fresh.AddTree(doc(i)); err != nil {
				t.Fatal(err)
			}
			wantTrees++
		}
	}

	m := w.Merged()
	if m == nil {
		t.Fatal("no merged state published")
	}
	if m.Trees != wantTrees {
		t.Fatalf("merged covers %d trees, live slices hold %d", m.Trees, wantTrees)
	}
	if got := w.Trees(); got != wantTrees {
		t.Fatalf("Trees() = %d, want %d", got, wantTrees)
	}

	gotBytes, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("merged synopsis bytes differ from fresh engine (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}

	for _, q := range []*tree.Node{
		tree.T("a", tree.T("b")),
		tree.T("a", tree.T("b"), tree.T("c")),
		tree.T("b", tree.T("d")),
	} {
		want, err := fresh.EstimateOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Eng.EstimateOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("EstimateOrdered(%v) = %v, fresh %v", q, got, want)
		}
	}
}

func TestCountCadenceAdvanceAndExpire(t *testing.T) {
	w, err := New(mustTemplate(t, windowConfig()), Policy{Slices: 2, SliceTrees: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ { // 3 full slices: 2 advances keep the ring, 1 expires
		if err := w.Add(doc(i)); err != nil {
			t.Fatal(err)
		}
	}
	ws := w.Status()
	if ws.Advances != 3 {
		t.Errorf("advances = %d, want 3", ws.Advances)
	}
	// Ring capacity 2: the 3rd advance (after doc 9) drops slices.
	if ws.Expires != 2 {
		t.Errorf("expires = %d, want 2", ws.Expires)
	}
	if len(ws.Live) != 2 {
		t.Fatalf("live slices = %d, want 2", len(ws.Live))
	}
	if ws.LiveTrees != 3 { // docs 7..9 in the sealed slice, current empty
		t.Errorf("live trees = %d, want 3", ws.LiveTrees)
	}
	if !ws.Live[len(ws.Live)-1].Current {
		t.Error("last slice must be marked current")
	}
}

func TestClockCadenceAdvance(t *testing.T) {
	clk := newFakeClock()
	w, err := New(mustTemplate(t, windowConfig()), Policy{
		Slices:   3,
		SliceDur: time.Minute,
	}, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Add(doc(i)); err != nil {
			t.Fatal(err)
		}
	}
	// One slice duration elapses: the next mutator advances first, so
	// the 4 docs seal into the previous slice.
	clk.Tick(time.Minute)
	if err := w.Add(doc(4)); err != nil {
		t.Fatal(err)
	}
	ws := w.Status()
	if ws.Advances != 1 {
		t.Fatalf("advances = %d, want 1", ws.Advances)
	}
	if len(ws.Live) != 2 || ws.Live[0].Trees != 4 || ws.Live[1].Trees != 1 {
		t.Fatalf("unexpected ring shape: %+v", ws.Live)
	}

	// Two more durations elapse with no traffic: AdvanceDue (the ticker
	// path) must expire slices on its own.
	clk.Tick(2 * time.Minute)
	if err := w.AdvanceDue(); err != nil {
		t.Fatal(err)
	}
	ws = w.Status()
	if ws.Advances != 3 {
		t.Errorf("advances = %d, want 3", ws.Advances)
	}
	// The second of those advances filled the 3-slice ring and dropped
	// the first slice — the 4 early docs expired; only doc 4 remains.
	if got := w.Trees(); got != 1 {
		t.Errorf("live trees = %d, want 1", got)
	}
	if ws.Expires != 1 {
		t.Errorf("expires = %d, want 1", ws.Expires)
	}

	// A long idle gap (every live slice expired) resets to one fresh
	// empty slice instead of rotating Slices more times.
	clk.Tick(time.Hour)
	if err := w.AdvanceDue(); err != nil {
		t.Fatal(err)
	}
	ws = w.Status()
	if len(ws.Live) != 1 || ws.LiveTrees != 0 {
		t.Fatalf("idle catch-up must reset to one empty slice, got %+v", ws.Live)
	}
	if w.Merged().Trees != 0 {
		t.Errorf("merged after full expiry covers %d trees, want 0", w.Merged().Trees)
	}
}

func TestRemoveTargetsCurrentSlice(t *testing.T) {
	w, err := New(mustTemplate(t, windowConfig()), Policy{Slices: 2, SliceTrees: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(doc(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Remove(doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := w.Trees(); got != 1 {
		t.Errorf("live trees = %d, want 1", got)
	}

	fresh := mustTemplate(t, windowConfig())
	if err := fresh.AddTree(doc(0)); err != nil {
		t.Fatal(err)
	}
	got, _ := w.MarshalBinary()
	want, _ := fresh.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Error("add+remove in one slice must be bit-identical to never adding")
	}
}

func TestAbsorbMergesIntoCurrentSlice(t *testing.T) {
	cfg := windowConfig()
	w, err := New(mustTemplate(t, cfg), Policy{Slices: 2, SliceTrees: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	side := mustTemplate(t, cfg)
	for i := 0; i < 4; i++ {
		if err := side.AddTree(doc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Absorb(side); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := w.Trees(); got != 4 {
		t.Errorf("live trees after absorb = %d, want 4", got)
	}
	got, _ := w.MarshalBinary()
	want, _ := side.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Error("absorbed window must be bit-identical to the absorbed engine")
	}
}

func TestRebuildGenerationAndCadence(t *testing.T) {
	w, err := New(mustTemplate(t, windowConfig()), Policy{
		Slices:            2,
		SliceTrees:        100,
		RefreshEveryTrees: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g0 := w.Merged().Gen
	if err := w.Add(doc(0)); err != nil {
		t.Fatal(err)
	}
	if w.Merged().Gen != g0 {
		t.Error("one update below the cadence must not rebuild")
	}
	if err := w.Add(doc(1)); err != nil {
		t.Fatal(err)
	}
	if w.Merged().Gen != g0+1 {
		t.Errorf("gen after cadence hit = %d, want %d", w.Merged().Gen, g0+1)
	}
	if w.Merged().Trees != 2 {
		t.Errorf("merged trees = %d, want 2", w.Merged().Trees)
	}

	// The merged engine reports queries through one persistent sink
	// across rebuilds.
	met := w.Metrics()
	if _, err := w.Merged().Eng.EstimateOrdered(tree.T("a", tree.T("b"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Merged().Eng.EstimateOrdered(tree.T("a", tree.T("b"))); err != nil {
		t.Fatal(err)
	}
	if got := met.Snapshot().Queries.Count; got != 2 {
		t.Errorf("persistent query counter = %d, want 2 (must survive rebuilds)", got)
	}
	if got := w.Stats().Queries.Count; got != 2 {
		t.Errorf("Stats().Queries.Count = %d, want 2", got)
	}
}

func TestStatsCarriesWindowSection(t *testing.T) {
	w, err := New(mustTemplate(t, windowConfig()), Policy{Slices: 4, SliceTrees: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Add(doc(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := w.Stats()
	if s.Window == nil {
		t.Fatal("Stats().Window is nil")
	}
	if s.Window.Slices != 4 || s.Window.SliceTrees != 2 {
		t.Errorf("window policy not reflected: %+v", s.Window)
	}
	if s.Window.LiveTrees != 5 {
		t.Errorf("live trees = %d, want 5", s.Window.LiveTrees)
	}
	var sum int64
	for _, sl := range s.Window.Live {
		if sl.Trees < 0 {
			t.Errorf("negative slice count: %+v", sl)
		}
		sum += sl.Trees
	}
	if sum != s.Window.LiveTrees {
		t.Errorf("LiveTrees %d != Σ slices %d", s.Window.LiveTrees, sum)
	}
	if s.Window.Rebuilds < 1 {
		t.Error("no rebuilds recorded")
	}
}
