package vstream

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sketchtree/internal/ams"
	"sketchtree/internal/gf2"
	"sketchtree/internal/xi"
)

func newSeeds(t testing.TB, s1, s2 int, seed uint64) *ams.Seeds {
	t.Helper()
	fam := xi.NewBCHFamily(gf2.MustField(1<<63 | 1<<1 | 1))
	se, err := ams.NewSeeds(fam, s1, s2, rand.New(rand.NewPCG(seed, 23)))
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestNewValidation(t *testing.T) {
	se := newSeeds(t, 2, 2, 1)
	if _, err := New(se, 0); err == nil {
		t.Error("p=0 must be rejected")
	}
	s, err := New(se, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.P() != 7 || s.Seeds() != se {
		t.Error("accessors wrong")
	}
	if s.MemoryBytes() != 7*se.Cells()*8 {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestRoutingIsDisjointAndExhaustive(t *testing.T) {
	se := newSeeds(t, 2, 2, 2)
	s, _ := New(se, 13)
	for v := uint64(0); v < 1000; v++ {
		r := s.Route(v)
		if r < 0 || r >= 13 {
			t.Fatalf("Route(%d) = %d out of range", v, r)
		}
		if r != int(v%13) {
			t.Fatalf("Route(%d) = %d, want %d", v, r, v%13)
		}
		if s.SketchFor(v) != s.Sketch(r) {
			t.Fatal("SketchFor disagrees with Route")
		}
	}
}

func TestUpdateGoesToOneStreamOnly(t *testing.T) {
	se := newSeeds(t, 3, 3, 3)
	s, _ := New(se, 5)
	s.Update(12, 4) // routes to 12 % 5 = 2
	for i := 0; i < 5; i++ {
		if i == 2 {
			if s.Sketch(i).IsZero() {
				t.Error("target stream not updated")
			}
		} else if !s.Sketch(i).IsZero() {
			t.Errorf("stream %d touched", i)
		}
	}
	if got := s.Sketch(2).EstimateCount(12, nil); got != 4 {
		t.Errorf("estimate on routed sketch = %v, want exactly 4", got)
	}
}

func TestUpdatePreparedMatchesUpdate(t *testing.T) {
	se := newSeeds(t, 3, 3, 4)
	a, _ := New(se, 5)
	b, _ := New(se, 5)
	p := se.Prepare(99, nil)
	a.Update(99, 7)
	b.UpdatePrepared(99, p, 7)
	for i := 0; i < 5; i++ {
		for c := 0; c < se.Cells(); c++ {
			if a.Sketch(i).Counter(c) != b.Sketch(i).Counter(c) {
				t.Fatal("prepared update disagrees")
			}
		}
	}
}

// Sum of virtual-stream sketches equals the sketch of the whole
// stream, because seeds are shared.
func TestQuickCombinedEqualsUnion(t *testing.T) {
	se := newSeeds(t, 2, 3, 5)
	f := func(vals []uint16) bool {
		s, _ := New(se, 7)
		whole := se.NewSketch()
		for _, raw := range vals {
			v := uint64(raw)
			s.Update(v, 1)
			whole.Update(v, 1)
		}
		// Combine all 7 streams by probing one representative value
		// per residue class.
		reps := []uint64{0, 1, 2, 3, 4, 5, 6}
		combined := s.Combined(reps)
		for c := 0; c < se.Cells(); c++ {
			if combined.Counter(c) != whole.Counter(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCombinedDeduplicatesStreams(t *testing.T) {
	se := newSeeds(t, 2, 2, 6)
	s, _ := New(se, 5)
	s.Update(3, 10)
	// Values 3 and 8 share residue 3; the stream must be included once.
	combined := s.Combined([]uint64{3, 8})
	if got := combined.EstimateCount(3, nil); got != 10 {
		t.Errorf("estimate = %v, want exactly 10 (stream double-counted?)", got)
	}
}

func TestSelfJoinSizeShrinksPerStream(t *testing.T) {
	// The point of virtual streams: each part has a smaller self-join
	// size than the whole. With distinct values of equal frequency m
	// spread over p streams, SJ per stream ≈ SJ/p.
	se := newSeeds(t, 64, 5, 7)
	s, _ := New(se, 11)
	for v := uint64(0); v < 110; v++ {
		s.Update(v, 3)
	}
	whole := 110 * 9.0
	for i := 0; i < 11; i++ {
		f2 := s.Sketch(i).EstimateF2(nil)
		if f2 > whole/2 {
			t.Errorf("stream %d F2 estimate %v not much below whole %v", i, f2, whole)
		}
	}
}

func TestIsPrimeNextPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 229}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	for _, n := range []int{-5, 0, 1, 4, 6, 9, 221 /* 13*17 */} {
		if IsPrime(n) {
			t.Errorf("%d should not be prime", n)
		}
	}
	cases := map[int]int{0: 2, 2: 2, 8: 11, 228: 229, 229: 229}
	for n, want := range cases {
		if got := NextPrime(n); got != want {
			t.Errorf("NextPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFromCountersRoundTrip(t *testing.T) {
	se := newSeeds(t, 3, 3, 9)
	s, _ := New(se, 5)
	for v := uint64(0); v < 40; v++ {
		s.Update(v, int64(v%4)+1)
	}
	counters := make([][]int64, s.P())
	for i := range counters {
		counters[i] = s.Sketch(i).Counters()
	}
	r, err := FromCounters(se, counters)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 40; v++ {
		if r.SketchFor(v).EstimateCount(v, nil) != s.SketchFor(v).EstimateCount(v, nil) {
			t.Fatalf("restored streams disagree at %d", v)
		}
	}
	counters[2] = counters[2][:1]
	if _, err := FromCounters(se, counters); err == nil {
		t.Error("bad counter length must fail")
	}
	if _, err := FromCounters(se, nil); err == nil {
		t.Error("zero streams must fail")
	}
}
