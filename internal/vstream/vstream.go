// Package vstream implements SketchTree's virtual streams (paper
// §5.3): the one-dimensional stream is split into p disjoint virtual
// streams by the residue of each value modulo a prime p, and one AMS
// sketch is maintained per virtual stream. Each virtual stream has a
// smaller self-join size than the whole, improving accuracy for a
// given sketch size.
//
// All p sketches share one Seeds instance, so the cell-wise sum of any
// subset of them is the sketch of the union of those virtual streams;
// queries over sets of patterns that straddle virtual streams sum the
// relevant sketches first and run the usual estimators on the sum.
package vstream

import (
	"fmt"
	"sync/atomic"

	"sketchtree/internal/ams"
	"sketchtree/internal/xi"
)

// Streams is a p-way partition of a value stream, one shared-seed AMS
// sketch per part.
type Streams struct {
	seeds    *ams.Seeds
	p        uint64
	sketches []*ams.Sketch

	// items[i] is the net number of occurrences routed to virtual
	// stream i (insertions minus deletions), a health diagnostic for
	// partition skew. The counters are atomics so concurrent snapshot
	// readers stay race-free against the single updating goroutine;
	// they are process-local (not persisted) like stage timers.
	items []atomic.Int64
}

// New creates p virtual streams over the shared seeds. p must be
// positive; the paper recommends a prime (see NextPrime).
func New(seeds *ams.Seeds, p int) (*Streams, error) {
	if p < 1 {
		return nil, fmt.Errorf("vstream: p=%d must be positive", p)
	}
	s := &Streams{
		seeds:    seeds,
		p:        uint64(p),
		sketches: make([]*ams.Sketch, p),
		items:    make([]atomic.Int64, p),
	}
	for i := range s.sketches {
		s.sketches[i] = seeds.NewSketch()
	}
	return s, nil
}

// FromCounters reconstructs a Streams from persisted per-stream
// counter arrays (one array per virtual stream).
func FromCounters(seeds *ams.Seeds, counters [][]int64) (*Streams, error) {
	s, err := New(seeds, len(counters))
	if err != nil {
		return nil, err
	}
	for i, x := range counters {
		sk, err := seeds.SketchFromCounters(x)
		if err != nil {
			return nil, fmt.Errorf("vstream: stream %d: %w", i, err)
		}
		s.sketches[i] = sk
	}
	return s, nil
}

// Clone deep-copies the partition: counters and item diagnostics are
// copied, the (immutable) seeds are shared. The receiver must be
// quiescent or read-locked against updates while cloning.
func (s *Streams) Clone() (*Streams, error) {
	counters := make([][]int64, len(s.sketches))
	for i, sk := range s.sketches {
		counters[i] = sk.Counters()
	}
	c, err := FromCounters(s.seeds, counters)
	if err != nil {
		return nil, err
	}
	for i := range s.items {
		c.items[i].Store(s.items[i].Load())
	}
	return c, nil
}

// P returns the number of virtual streams.
func (s *Streams) P() int { return int(s.p) }

// Seeds returns the shared seed set.
func (s *Streams) Seeds() *ams.Seeds { return s.seeds }

// Route returns the index of the virtual stream that value v belongs
// to.
//
//lint:hotpath
func (s *Streams) Route(v uint64) int { return int(v % s.p) }

// Sketch returns the sketch of virtual stream i.
func (s *Streams) Sketch(i int) *ams.Sketch { return s.sketches[i] }

// SketchFor returns the sketch of the virtual stream v routes to.
//
//lint:hotpath
func (s *Streams) SketchFor(v uint64) *ams.Sketch { return s.sketches[s.Route(v)] }

// Update adds delta occurrences of v to its virtual stream.
func (s *Streams) Update(v uint64, delta int64) {
	s.UpdatePrepared(v, s.seeds.Prepare(v, nil), delta)
}

// UpdatePrepared is Update with a caller-managed ξ preparation (the
// stream hot path reuses one Prep across values).
//
//lint:hotpath
func (s *Streams) UpdatePrepared(v uint64, p *xi.Prep, delta int64) {
	r := s.Route(v)
	s.sketches[r].UpdatePrepared(p, delta)
	s.items[r].Add(delta)
}

// Items returns the net occurrences routed to virtual stream i so far
// in this process (insertions minus deletions). Safe to call
// concurrently with updates. Restored Streams start at zero: item
// counts are runtime diagnostics, not synopsis state.
func (s *Streams) Items(i int) int64 { return s.items[i].Load() }

// AbsorbItems adds another partition's item counters into this one —
// the diagnostics half of a synopsis merge. The operand must have the
// same number of virtual streams and be quiescent.
func (s *Streams) AbsorbItems(o *Streams) error {
	if o.p != s.p {
		return fmt.Errorf("vstream: cannot absorb items across %d and %d streams", o.p, s.p)
	}
	for i := range s.items {
		s.items[i].Add(o.items[i].Load())
	}
	return nil
}

// Combined returns a new sketch that is the cell-wise sum of the
// virtual streams the given values route to (each stream included
// once). With shared seeds this is exactly the sketch of the union
// stream, as required for set and expression queries (paper §5.3).
func (s *Streams) Combined(vs []uint64) *ams.Sketch {
	seen := make(map[int]bool, len(vs))
	out := s.seeds.NewSketch()
	for _, v := range vs {
		r := s.Route(v)
		if seen[r] {
			continue
		}
		seen[r] = true
		// AddSketch cannot fail: all sketches share out's seeds.
		if err := out.AddSketch(s.sketches[r]); err != nil {
			panic("vstream: " + err.Error())
		}
	}
	return out
}

// MemoryBytes returns the counter storage across all virtual streams
// (seed memory is accounted once, by the Seeds).
func (s *Streams) MemoryBytes() int {
	n := 0
	for _, sk := range s.sketches {
		n += sk.MemoryBytes()
	}
	return n
}

// IsPrime reports whether n is prime (trial division; n is small — the
// paper uses p = 229).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n int) int {
	if n < 2 {
		return 2
	}
	for !IsPrime(n) {
		n++
	}
	return n
}
