// Package match implements exact, brute-force tree pattern matching —
// the ground truth that SketchTree's estimates are validated against,
// and the reference for the paper's query semantics (§2.1):
// COUNT_ord(Q) counts ordered embeddings, COUNT(Q) counts unordered
// occurrences (equivalently, the sum of COUNT_ord over the distinct
// ordered arrangements of Q, §3.3), while XPath counts distinct target
// nodes (the paper's Figure 1 example: COUNT(Q) = 5 but
// COUNT(//A[B]/C) = 4).
//
// All functions run in time exponential in the query size (which is
// small, <= k edges) and linear in the data size.
package match

import (
	"sort"

	"sketchtree/internal/tree"
)

// CountOrdered counts the ordered embeddings of pattern q anywhere in
// the data tree: mappings of pattern nodes to data nodes that preserve
// labels, parent-child edges, and the left-to-right order of siblings.
func CountOrdered(data *tree.Node, q *tree.Node) int64 {
	if data == nil || q == nil {
		return 0
	}
	var total int64
	data.Walk(func(v *tree.Node) bool {
		total += orderedAt(v, q)
		return true
	})
	return total
}

// orderedAt counts ordered embeddings of q rooted exactly at v: the
// pattern children must match an increasing subsequence of v's
// children.
func orderedAt(v *tree.Node, q *tree.Node) int64 {
	if v.Label != q.Label {
		return 0
	}
	qc := q.Children
	if len(qc) == 0 {
		return 1
	}
	// ways[j]: embeddings of the first j pattern children into the
	// data children processed so far.
	ways := make([]int64, len(qc)+1)
	ways[0] = 1
	for _, dv := range v.Children {
		for j := len(qc); j >= 1; j-- {
			if ways[j-1] == 0 {
				continue
			}
			if sub := orderedAt(dv, qc[j-1]); sub != 0 {
				ways[j] += ways[j-1] * sub
			}
		}
	}
	return ways[len(qc)]
}

// CountUnordered counts the unordered occurrences of q anywhere in the
// data: occurrences where sibling order is free. Two matchings that
// differ only by permuting identical pattern siblings are the same
// occurrence, so this equals the injective-matching count (a
// permanent) divided by the pattern's automorphism count — and also
// equals Σ CountOrdered over q's distinct ordered arrangements, the
// identity SketchTree exploits (§3.3). Pattern nodes may have at most
// 30 children.
func CountUnordered(data *tree.Node, q *tree.Node) int64 {
	if data == nil || q == nil {
		return 0
	}
	aut := automorphisms(q)
	var total int64
	data.Walk(func(v *tree.Node) bool {
		total += matchings(v, q) / aut
		return true
	})
	return total
}

// matchings counts injective matchings of q's subtree rooted at v via
// a bitmask DP over pattern children (a permanent computation).
func matchings(v *tree.Node, q *tree.Node) int64 {
	if v.Label != q.Label {
		return 0
	}
	qc := q.Children
	if len(qc) == 0 {
		return 1
	}
	if len(qc) > 30 {
		panic("match: pattern node with more than 30 children")
	}
	full := 1<<uint(len(qc)) - 1
	ways := make([]int64, full+1)
	ways[0] = 1
	for _, dv := range v.Children {
		// Masks descending: each write targets a numerically larger
		// mask, already visited this round, so one data child never
		// serves two pattern children.
		for mask := full; mask >= 0; mask-- {
			if ways[mask] == 0 {
				continue
			}
			for j := 0; j < len(qc); j++ {
				bit := 1 << uint(j)
				if mask&bit != 0 {
					continue
				}
				if sub := matchings(dv, qc[j]); sub != 0 {
					ways[mask|bit] += ways[mask] * sub
				}
			}
		}
	}
	return ways[full]
}

// automorphisms returns the number of sibling-permutation symmetries
// of the pattern: the product over nodes of m! for each group of m
// identical child subtrees, times the children's own automorphisms.
func automorphisms(q *tree.Node) int64 {
	if q == nil {
		return 1
	}
	var aut int64 = 1
	keys := make([]string, len(q.Children))
	for i, c := range q.Children {
		aut *= automorphisms(c)
		keys[i] = c.Canonical()
	}
	sort.Strings(keys)
	run := int64(1)
	for i := 1; i <= len(keys); i++ {
		if i < len(keys) && keys[i] == keys[i-1] {
			run++
			continue
		}
		for f := int64(2); f <= run; f++ {
			aut *= f
		}
		run = 1
	}
	return aut
}

// Target identifies a node of the pattern by its preorder index
// (root = 0).
type Target int

// nodeAtPreorder returns the pattern node with the given preorder
// index, or nil.
func nodeAtPreorder(q *tree.Node, idx int) *tree.Node {
	var found *tree.Node
	i := 0
	q.Walk(func(n *tree.Node) bool {
		if i == idx {
			found = n
		}
		i++
		return found == nil
	})
	return found
}

// CountDistinctTargets counts the distinct data nodes that the target
// pattern node maps to in at least one unordered matching — XPath's
// result-set semantics. For the paper's //A[B]/C the pattern is
// A(B, C) with target C (preorder index 2).
func CountDistinctTargets(data *tree.Node, q *tree.Node, target Target) int64 {
	if data == nil || q == nil {
		return 0
	}
	tn := nodeAtPreorder(q, int(target))
	if tn == nil {
		return 0
	}
	var anchors, candidates []*tree.Node
	data.Walk(func(v *tree.Node) bool {
		if v.Label == q.Label {
			anchors = append(anchors, v)
		}
		if v.Label == tn.Label {
			candidates = append(candidates, v)
		}
		return true
	})
	var total int64
	for _, d := range candidates {
		for _, v := range anchors {
			if matchesWithPin(v, q, tn, d) {
				total++
				break
			}
		}
	}
	return total
}

// matchesWithPin reports whether an unordered matching of q rooted at
// v maps tn exactly to pin.
func matchesWithPin(v *tree.Node, qn *tree.Node, tn, pin *tree.Node) bool {
	if qn == tn && v != pin {
		return false
	}
	if v.Label != qn.Label {
		return false
	}
	qc := qn.Children
	if len(qc) == 0 {
		return true
	}
	full := 1<<uint(len(qc)) - 1
	reach := make([]bool, full+1)
	reach[0] = true
	for _, dc := range v.Children {
		for mask := full; mask >= 0; mask-- {
			if !reach[mask] {
				continue
			}
			for j := 0; j < len(qc); j++ {
				bit := 1 << uint(j)
				if mask&bit == 0 && matchesWithPin(dc, qc[j], tn, pin) {
					reach[mask|bit] = true
				}
			}
		}
	}
	return reach[full]
}
