package match

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sketchtree/internal/tree"
)

func T(label string, children ...*tree.Node) *tree.Node { return tree.New(label, children...) }

func TestCountOrderedBasics(t *testing.T) {
	data := T("A", T("B"), T("B"), T("C"))
	cases := []struct {
		q    *tree.Node
		want int64
	}{
		{T("A", T("B"), T("C")), 2},
		{T("A", T("C"), T("B")), 0},
		{T("A", T("B"), T("B")), 1},
		{T("A", T("B"), T("B"), T("C")), 1},
		{T("A", T("B")), 2},
		{T("B"), 2},
		{T("Z"), 0},
	}
	for _, c := range cases {
		if got := CountOrdered(data, c.q); got != c.want {
			t.Errorf("CountOrdered(%s) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestCountOrderedNested(t *testing.T) {
	data := T("S", T("NP", T("DT"), T("NN")), T("VP", T("NP", T("NN"))))
	if got := CountOrdered(data, T("NP", T("NN"))); got != 2 {
		t.Errorf("NP(NN) = %d, want 2", got)
	}
	if got := CountOrdered(data, T("S", T("NP"), T("NP"))); got != 0 {
		t.Errorf("S(NP,NP) = %d, want 0 (second NP is nested, not a child)", got)
	}
	// Matching anywhere, including below the root.
	if got := CountOrdered(data, T("VP", T("NP", T("NN")))); got != 1 {
		t.Errorf("VP(NP(NN)) = %d, want 1", got)
	}
}

func TestCountUnorderedBasics(t *testing.T) {
	data := T("A", T("C"), T("B"))
	if got := CountOrdered(data, T("A", T("B"), T("C"))); got != 0 {
		t.Error("ordered must miss the reversed pair")
	}
	if got := CountUnordered(data, T("A", T("B"), T("C"))); got != 1 {
		t.Errorf("unordered = %d, want 1", got)
	}
	// Identical siblings: A{B,B} in A(B,B,B) has C(3,2) = 3 occurrences.
	data3 := T("A", T("B"), T("B"), T("B"))
	if got := CountUnordered(data3, T("A", T("B"), T("B"))); got != 3 {
		t.Errorf("A{B,B} in A(B,B,B) = %d, want 3", got)
	}
}

func TestAutomorphisms(t *testing.T) {
	cases := []struct {
		q    *tree.Node
		want int64
	}{
		{T("A"), 1},
		{T("A", T("B"), T("C")), 1},
		{T("A", T("B"), T("B")), 2},
		{T("A", T("B"), T("B"), T("B")), 6},
		{T("A", T("B", T("X"), T("X")), T("B", T("X"), T("X"))), 8}, // 2 inner × 2 inner × 2 outer
		{T("A", T("B", T("X")), T("B", T("Y"))), 1},
	}
	for _, c := range cases {
		if got := automorphisms(c.q); got != c.want {
			t.Errorf("automorphisms(%s) = %d, want %d", c.q, got, c.want)
		}
	}
}

// Figure 1 of the paper, reconstructed: COUNT(Q) = 5 over the stream
// while XPath //A[B]/C = 4, because XPath counts distinct target
// nodes.
func TestFigure1SemanticsContrast(t *testing.T) {
	q := T("A", T("B"), T("C"))
	trees := []*tree.Node{
		T("A", T("B"), T("B"), T("C")), // 2 ordered matches, 1 distinct C
		T("A", T("C"), T("C"), T("B")), // 2 unordered matches, 2 distinct C
		T("A", T("B"), T("C")),         // 1 match, 1 distinct C
	}
	var count, xpath int64
	for _, d := range trees {
		count += CountUnordered(d, q)
		xpath += CountDistinctTargets(d, q, 2) // target = C (preorder index 2)
	}
	if count != 5 {
		t.Errorf("COUNT(Q) = %d, want 5", count)
	}
	if xpath != 4 {
		t.Errorf("XPath //A[B]/C = %d, want 4", xpath)
	}
}

func TestCountDistinctTargets(t *testing.T) {
	data := T("A", T("B"), T("C"), T("C"))
	q := T("A", T("B"), T("C"))
	// Both C nodes can host the target.
	if got := CountDistinctTargets(data, q, 2); got != 2 {
		t.Errorf("targets = %d, want 2", got)
	}
	// Target = B (index 1): one B node.
	if got := CountDistinctTargets(data, q, 1); got != 1 {
		t.Errorf("B targets = %d, want 1", got)
	}
	// Target = root (index 0).
	if got := CountDistinctTargets(data, q, 0); got != 1 {
		t.Errorf("root targets = %d, want 1", got)
	}
	// Out-of-range target.
	if got := CountDistinctTargets(data, q, 99); got != 0 {
		t.Errorf("bad target = %d, want 0", got)
	}
	// No match at all: B without sibling C requirement not satisfied.
	if got := CountDistinctTargets(T("A", T("B")), q, 2); got != 0 {
		t.Errorf("unsatisfiable = %d, want 0", got)
	}
}

func TestNilInputs(t *testing.T) {
	if CountOrdered(nil, T("A")) != 0 || CountOrdered(T("A"), nil) != 0 {
		t.Error("nil handling (ordered)")
	}
	if CountUnordered(nil, T("A")) != 0 || CountUnordered(T("A"), nil) != 0 {
		t.Error("nil handling (unordered)")
	}
	if CountDistinctTargets(nil, T("A"), 0) != 0 {
		t.Error("nil handling (targets)")
	}
}

func randomTree(rng *rand.Rand, n int, alphabet []string) *tree.Node {
	nodes := make([]*tree.Node, n)
	for i := range nodes {
		nodes[i] = tree.New(alphabet[rng.IntN(len(alphabet))])
	}
	for i := 1; i < n; i++ {
		nodes[rng.IntN(i)].AddChild(nodes[i])
	}
	return nodes[0]
}

// Property (the §3.3 identity): CountUnordered equals the sum of
// CountOrdered over the pattern's distinct ordered arrangements.
func TestQuickUnorderedEqualsArrangementSum(t *testing.T) {
	alphabet := []string{"A", "B"}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		data := randomTree(rng, rng.IntN(12)+2, alphabet)
		q := randomTree(rng, rng.IntN(4)+2, alphabet)
		arrs := arrangements(q)
		var sum int64
		for _, a := range arrs {
			sum += CountOrdered(data, a)
		}
		return sum == CountUnordered(data, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// arrangements enumerates the distinct ordered arrangements of q
// (reference implementation, deduplicated by serialization).
func arrangements(q *tree.Node) []*tree.Node {
	if len(q.Children) == 0 {
		return []*tree.Node{{Label: q.Label}}
	}
	childArr := make([][]*tree.Node, len(q.Children))
	for i, c := range q.Children {
		childArr[i] = arrangements(c)
	}
	seen := map[string]bool{}
	var out []*tree.Node
	idx := make([]int, len(q.Children))
	for i := range idx {
		idx[i] = i
	}
	var permute func(k int)
	permute = func(k int) {
		if k == len(idx) {
			sel := make([]*tree.Node, len(idx))
			var choose func(i int)
			choose = func(i int) {
				if i == len(idx) {
					n := &tree.Node{Label: q.Label, Children: append([]*tree.Node(nil), sel...)}
					if key := n.String(); !seen[key] {
						seen[key] = true
						out = append(out, n)
					}
					return
				}
				for _, alt := range childArr[idx[i]] {
					sel[i] = alt
					choose(i + 1)
				}
			}
			choose(0)
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			permute(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	permute(0)
	return out
}

// Property: ordered count never exceeds unordered count.
func TestQuickOrderedAtMostUnordered(t *testing.T) {
	alphabet := []string{"A", "B", "C"}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		data := randomTree(rng, rng.IntN(14)+2, alphabet)
		q := randomTree(rng, rng.IntN(4)+2, alphabet)
		return CountOrdered(data, q) <= CountUnordered(data, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: distinct targets never exceed total unordered occurrences
// times pattern size, and are zero iff the unordered count is zero.
func TestQuickTargetsConsistent(t *testing.T) {
	alphabet := []string{"A", "B"}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		data := randomTree(rng, rng.IntN(10)+2, alphabet)
		q := randomTree(rng, rng.IntN(3)+2, alphabet)
		u := CountUnordered(data, q)
		targets := CountDistinctTargets(data, q, 0)
		if u == 0 {
			return targets == 0
		}
		return targets >= 1 && targets <= u*int64(q.Size())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountDistinctTargetsDeepEmbedding(t *testing.T) {
	// Target below a chain: A(B(C)) with target C.
	data := T("A", T("B", T("C"), T("C")), T("B", T("C")))
	q := T("A", T("B", T("C")))
	if got := CountDistinctTargets(data, q, 2); got != 3 {
		t.Errorf("deep targets = %d, want 3 (every C under a B under A)", got)
	}
	// Target = B (index 1): both B nodes host embeddings.
	if got := CountDistinctTargets(data, q, 1); got != 2 {
		t.Errorf("B targets = %d, want 2", got)
	}
}

func TestCountUnorderedDeepAutomorphism(t *testing.T) {
	// Pattern with identical nested subtrees: A{B(C), B(C)}.
	q := T("A", T("B", T("C")), T("B", T("C")))
	data := T("A", T("B", T("C")), T("B", T("C")), T("B", T("C")))
	// Choose 2 of 3 identical children: C(3,2) = 3 occurrences.
	if got := CountUnordered(data, q); got != 3 {
		t.Errorf("got %d, want 3", got)
	}
	// Ordered: increasing pairs of 3 = 3 as well (all identical).
	if got := CountOrdered(data, q); got != 3 {
		t.Errorf("ordered = %d, want 3", got)
	}
}
