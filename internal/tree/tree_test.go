package tree

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Tree {
	// A(B(D E) C)
	return NewTree(T("A", T("B", T("D"), T("E")), T("C")))
}

func TestSizeDepth(t *testing.T) {
	tr := sample()
	if got := tr.Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	if got := tr.Root.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if got := NewTree(T("X")).Root.Depth(); got != 0 {
		t.Errorf("single-node depth = %d, want 0", got)
	}
}

func TestAssignPostorder(t *testing.T) {
	tr := sample()
	nodes := tr.AssignPostorder()
	if len(nodes) != 5 {
		t.Fatalf("postorder returned %d nodes, want 5", len(nodes))
	}
	wantLabels := []string{"D", "E", "B", "C", "A"}
	for i, n := range nodes {
		if n.Label != wantLabels[i] {
			t.Errorf("postorder[%d] = %s, want %s", i, n.Label, wantLabels[i])
		}
		if n.Postorder != i+1 {
			t.Errorf("node %s Postorder = %d, want %d", n.Label, n.Postorder, i+1)
		}
	}
}

func TestPostorderNodesDoesNotRenumber(t *testing.T) {
	tr := sample()
	tr.AssignPostorder()
	tr.Root.Postorder = 99
	nodes := tr.Root.PostorderNodes()
	if nodes[len(nodes)-1].Postorder != 99 {
		t.Error("PostorderNodes must not renumber")
	}
}

func TestCloneEqual(t *testing.T) {
	tr := sample()
	c := tr.Clone()
	if !Equal(tr.Root, c.Root) {
		t.Fatal("clone not equal to original")
	}
	c.Root.Children[0].Label = "Z"
	if Equal(tr.Root, c.Root) {
		t.Fatal("mutated clone still equal")
	}
	if tr.Root.Children[0].Label != "B" {
		t.Fatal("mutating clone changed original")
	}
}

func TestEqualShapeSensitivity(t *testing.T) {
	a := T("A", T("B"), T("C"))
	b := T("A", T("C"), T("B"))
	if Equal(a, b) {
		t.Error("ordered equality must be order sensitive")
	}
	if a.Canonical() != b.Canonical() {
		t.Error("unordered canonical form must be order insensitive")
	}
	c := T("A", T("B", T("C")))
	if a.Canonical() == c.Canonical() {
		t.Error("canonical form must distinguish different shapes")
	}
}

func TestStringParseSexpRoundTrip(t *testing.T) {
	cases := []*Node{
		T("A"),
		T("A", T("B"), T("C")),
		T("S", T("NP", T("DT"), T("NN")), T("VP", T("VBD"), T("NP", T("NN")))),
		T("a b", T("weird()\"label")),
		T(""),
	}
	for _, root := range cases {
		s := root.String()
		got, err := ParseSexp(s)
		if err != nil {
			t.Fatalf("ParseSexp(%q): %v", s, err)
		}
		if !Equal(root, got.Root) {
			t.Errorf("round trip failed for %q: got %q", s, got.Root.String())
		}
	}
}

func TestParseSexpErrors(t *testing.T) {
	for _, bad := range []string{"", "A", "(A", "(A))", "(A (B)", "()", `("unterminated`} {
		if _, err := ParseSexp(bad); err == nil {
			t.Errorf("ParseSexp(%q) should fail", bad)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	tr := sample()
	var visited []string
	tr.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Label)
		return n.Label != "B" // prune below B
	})
	want := []string{"A", "B", "C"}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("visited = %v, want %v", visited, want)
	}
}

func TestLabels(t *testing.T) {
	got := sample().Root.Labels()
	want := []string{"A", "B", "D", "E", "C"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.Add(sample())
	s.Add(NewTree(T("X")))
	if s.Trees != 2 || s.Nodes != 6 {
		t.Errorf("Trees=%d Nodes=%d, want 2, 6", s.Trees, s.Nodes)
	}
	if s.MaxDepth != 2 || s.MaxFanout != 2 {
		t.Errorf("MaxDepth=%d MaxFanout=%d, want 2, 2", s.MaxDepth, s.MaxFanout)
	}
	if s.DistinctLabels != 6 {
		t.Errorf("DistinctLabels=%d, want 6", s.DistinctLabels)
	}
	if s.AvgDepth() != 1.0 {
		t.Errorf("AvgDepth=%v, want 1", s.AvgDepth())
	}
	if s.AvgFanout() != 2.0 {
		t.Errorf("AvgFanout=%v, want 2", s.AvgFanout())
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewStats()
	if s.AvgDepth() != 0 || s.AvgFanout() != 0 {
		t.Error("empty stats averages must be 0")
	}
}

// RandomTree builds a uniformly shaped random tree with n nodes and
// labels from the given alphabet. Exported within the package for reuse
// by other tests via randomTree helpers.
func randomTree(rng *rand.Rand, n int, alphabet []string) *Node {
	if n <= 0 {
		n = 1
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Label: alphabet[rng.IntN(len(alphabet))]}
	}
	// Attach node i to a random earlier node: a uniform random recursive
	// tree, guaranteeing a single root at index 0.
	for i := 1; i < n; i++ {
		p := rng.IntN(i)
		nodes[p].AddChild(nodes[i])
	}
	return nodes[0]
}

func TestQuickCloneEqual(t *testing.T) {
	alphabet := []string{"A", "B", "C", "D"}
	f := func(seed uint64, size uint8) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		root := randomTree(r, int(size%40)+1, alphabet)
		return Equal(root, root.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSexpRoundTrip(t *testing.T) {
	alphabet := []string{"A", "B", "C", "label-x", "9num", "sp ace"}
	f := func(seed uint64, size uint8) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		root := randomTree(r, int(size%50)+1, alphabet)
		got, err := ParseSexp(root.String())
		return err == nil && Equal(root, got.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPostorderInvariants(t *testing.T) {
	alphabet := []string{"A", "B"}
	f := func(seed uint64, size uint8) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		root := randomTree(r, int(size%60)+1, alphabet)
		nodes := root.AssignPostorder()
		// Root must be last; every child's number must be smaller than
		// its parent's; numbers must be 1..n exactly.
		if nodes[len(nodes)-1] != root {
			return false
		}
		seen := make(map[int]bool)
		ok := true
		root.Walk(func(n *Node) bool {
			if seen[n.Postorder] {
				ok = false
			}
			seen[n.Postorder] = true
			for _, c := range n.Children {
				if c.Postorder >= n.Postorder {
					ok = false
				}
			}
			return true
		})
		return ok && len(seen) == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringOfNilTree(t *testing.T) {
	var tr *Tree
	if got := tr.String(); got != "()" {
		t.Errorf("nil tree String = %q", got)
	}
}

func TestSizeOfNil(t *testing.T) {
	var n *Node
	if n.Size() != 0 {
		t.Error("nil node size must be 0")
	}
	var tr *Tree
	if tr.Size() != 0 {
		t.Error("nil tree size must be 0")
	}
	if tr.Clone() != nil {
		t.Error("nil tree clone must be nil")
	}
	if n.Clone() != nil {
		t.Error("nil node clone must be nil")
	}
	if n.Depth() != 0 {
		t.Error("nil node depth must be 0")
	}
	if n.Canonical() != "" {
		t.Error("nil canonical must be empty")
	}
}

func TestDeepTreeNoStackIssue(t *testing.T) {
	// A 10k-deep chain exercises the recursive walkers.
	root := T("L0")
	cur := root
	for i := 0; i < 10000; i++ {
		c := T("L")
		cur.AddChild(c)
		cur = c
	}
	tr := NewTree(root)
	if tr.Size() != 10001 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if d := root.Depth(); d != 10000 {
		t.Fatalf("Depth = %d", d)
	}
	nodes := tr.AssignPostorder()
	if nodes[0].Label != "L" || nodes[len(nodes)-1] != root {
		t.Fatal("postorder of deep chain wrong")
	}
	if !strings.HasPrefix(tr.String(), "(L0 (L (L") {
		t.Fatal("serialization of deep chain wrong")
	}
}

func TestAppendSexpMatchesString(t *testing.T) {
	cases := []*Node{
		T("A"),
		T("A", T("B"), T("C", T("D"))),
		T("needs quoting", T(""), T("pa(ren"), T("tab\there"), T(`quo"te`)),
	}
	for _, n := range cases {
		got := string(n.AppendSexp(nil))
		if got != n.String() {
			t.Errorf("AppendSexp = %q, String = %q", got, n.String())
		}
	}
	// Appending extends the buffer rather than replacing it.
	buf := []byte("k:")
	if got := string(cases[0].AppendSexp(buf)); got != "k:(A)" {
		t.Errorf("AppendSexp with prefix = %q, want %q", got, "k:(A)")
	}
}
