package tree

import (
	"strings"
	"testing"
)

// FuzzParseSexp: any input either fails cleanly or yields a tree whose
// serialization parses back to an equal tree.
func FuzzParseSexp(f *testing.F) {
	for _, seed := range []string{
		"(A)", "(A (B) (C))", "(A (B (C)))", `("a b" (C))`,
		"((", "(A", "()", "(A))", `("\")`, "(A  (B)\n)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseSexp(in)
		if err != nil {
			return
		}
		if tr == nil || tr.Root == nil {
			t.Fatal("nil tree without error")
		}
		again, err := ParseSexp(tr.String())
		if err != nil {
			t.Fatalf("serialization %q of accepted input %q does not parse: %v",
				tr.String(), in, err)
		}
		if !Equal(tr.Root, again.Root) {
			t.Fatalf("round trip changed the tree: %q -> %q", in, again.Root.String())
		}
	})
}

// FuzzParseXML: arbitrary input must never panic; accepted documents
// must yield a non-nil tree that re-serializes and re-parses.
func FuzzParseXML(f *testing.F) {
	for _, seed := range []string{
		"<a/>", "<a><b/>text</a>", "<a k='v'><b/></a>",
		"<a><b></a></b>", "", "<a>&lt;</a>", "<?xml version='1.0'?><a/>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseXMLString(in, DefaultXMLOptions())
		if err != nil {
			return
		}
		if tr == nil || tr.Root == nil {
			t.Fatal("nil tree without error")
		}
		var sb strings.Builder
		if err := tr.Root.WriteXML(&sb); err != nil {
			t.Fatalf("accepted tree fails to serialize: %v", err)
		}
	})
}
