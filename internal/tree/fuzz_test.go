package tree

import (
	"strings"
	"testing"
)

// FuzzParseSexp: any input either fails cleanly or yields a tree whose
// serialization parses back to an equal tree.
func FuzzParseSexp(f *testing.F) {
	for _, seed := range []string{
		"(A)", "(A (B) (C))", "(A (B (C)))", `("a b" (C))`,
		"((", "(A", "()", "(A))", `("\")`, "(A  (B)\n)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseSexp(in)
		if err != nil {
			return
		}
		if tr == nil || tr.Root == nil {
			t.Fatal("nil tree without error")
		}
		again, err := ParseSexp(tr.String())
		if err != nil {
			t.Fatalf("serialization %q of accepted input %q does not parse: %v",
				tr.String(), in, err)
		}
		if !Equal(tr.Root, again.Root) {
			t.Fatalf("round trip changed the tree: %q -> %q", in, again.Root.String())
		}
	})
}

// FuzzParseXML: arbitrary input must never panic; accepted documents
// must yield a non-nil tree that re-serializes, and serialization must
// reach a fixed point: once WriteXML has normalized labels (invalid
// element names become "_v" elements or character data), further
// parse/write cycles must not change the tree. Mid-rune value clips or
// split-then-coalesced values would break that stability.
func FuzzParseXML(f *testing.F) {
	for _, seed := range []string{
		"<a/>", "<a><b/>text</a>", "<a k='v'><b/></a>",
		"<a><b></a></b>", "", "<a>&lt;</a>", "<?xml version='1.0'?><a/>",
		"<a>9 café ünïcødé</a>", "<a>日本<!--c-->語</a>",
		"<a>x<![CDATA[<y>]]>z</a>", "<a>" + strings.Repeat("é", 40) + "</a>",
		"<a>x<?pi d?>y<b/> tail </a>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseXMLString(in, DefaultXMLOptions())
		if err != nil {
			return
		}
		if tr == nil || tr.Root == nil {
			t.Fatal("nil tree without error")
		}
		var sb strings.Builder
		if err := tr.Root.WriteXML(&sb); err != nil {
			t.Fatalf("accepted tree fails to serialize: %v", err)
		}
		// Not every accepted tree is re-parseable (a bare value root
		// serializes to character data only), but when it is, one more
		// write/parse cycle must be the identity.
		second, err := ParseXMLString(sb.String(), DefaultXMLOptions())
		if err != nil {
			return
		}
		sb.Reset()
		if err := second.Root.WriteXML(&sb); err != nil {
			t.Fatalf("reparsed tree fails to serialize: %v", err)
		}
		third, err := ParseXMLString(sb.String(), DefaultXMLOptions())
		if err != nil {
			t.Fatalf("second serialization %q does not parse: %v", sb.String(), err)
		}
		if !Equal(second.Root, third.Root) {
			t.Fatalf("round trip is not stable for %q:\n%s\nvs\n%s",
				in, second.Root, third.Root)
		}
	})
}
