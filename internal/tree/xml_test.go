package tree

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseXMLBasic(t *testing.T) {
	doc := `<article><author>9 jane</author><title>9 streams</title><year>1998</year></article>`
	tr, err := ParseXMLString(doc, DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := T("article",
		T("author", T("9 jane")),
		T("title", T("9 streams")),
		T("year", T("1998")))
	if !Equal(tr.Root, want) {
		t.Errorf("got %s", tr)
	}
}

func TestParseXMLNoValues(t *testing.T) {
	doc := `<a><b>text</b><c/></a>`
	tr, err := ParseXMLString(doc, XMLOptions{IncludeValues: false})
	if err != nil {
		t.Fatal(err)
	}
	want := T("a", T("b"), T("c"))
	if !Equal(tr.Root, want) {
		t.Errorf("got %s", tr)
	}
}

func TestParseXMLAttributes(t *testing.T) {
	doc := `<a k="v"><b/></a>`
	tr, err := ParseXMLString(doc, XMLOptions{IncludeValues: true, IncludeAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	want := T("a", T("@k", T("v")), T("b"))
	if !Equal(tr.Root, want) {
		t.Errorf("got %s", tr)
	}
	// Attributes ignored by default.
	tr2, err := ParseXMLString(doc, DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr2.Root, T("a", T("b"))) {
		t.Errorf("default options: got %s", tr2)
	}
}

func TestParseXMLWhitespaceOnlyText(t *testing.T) {
	doc := "<a>\n  <b/>\n</a>"
	tr, err := ParseXMLString(doc, DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root, T("a", T("b"))) {
		t.Errorf("whitespace text must be skipped: got %s", tr)
	}
}

func TestParseXMLValueTruncation(t *testing.T) {
	doc := `<a>` + strings.Repeat("x", 100) + `</a>`
	opt := XMLOptions{IncludeValues: true, MaxValueLen: 10}
	tr, err := ParseXMLString(doc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Root.Children[0].Label; got != strings.Repeat("x", 10) {
		t.Errorf("value not truncated: %q", got)
	}
}

// Regression: truncation must back off to a rune boundary. A naive
// v[:max] cuts the 40×"é" (80-byte) value mid-rune at byte 63, leaving
// a dangling 0xc3 continuation prefix — invalid UTF-8 that corrupts the
// label and breaks WriteXML round-trips.
func TestParseXMLValueTruncationRuneSafe(t *testing.T) {
	val := strings.Repeat("é", 40) // 2 bytes per rune
	opt := XMLOptions{IncludeValues: true, IncludeAttributes: true, MaxValueLen: 63}
	tr, err := ParseXMLString(`<a k="`+val+`">`+val+`</a>`, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("é", 31) // 62 bytes: the limit is an upper bound
	var labels []string
	for _, c := range tr.Root.Children {
		if c.IsLeaf() {
			labels = append(labels, c.Label)
		} else {
			labels = append(labels, c.Children[0].Label) // @k attribute value
		}
	}
	if len(labels) != 2 {
		t.Fatalf("got %d value labels, want element + attribute: %s", len(labels), tr)
	}
	for _, got := range labels {
		if !utf8.ValidString(got) {
			t.Errorf("clipped label is invalid UTF-8: %q", got)
		}
		if got != want {
			t.Errorf("clipped label = %q (%d bytes), want %q", got, len(got), want)
		}
	}
}

func TestClipValue(t *testing.T) {
	cases := []struct {
		v    string
		max  int
		want string
	}{
		{"hello", 0, "hello"},   // 0 = unlimited
		{"hello", 10, "hello"},  // under the limit
		{"hello", 3, "hel"},     // ASCII cuts exactly
		{"héllo", 2, "h"},       // é spans bytes 1-2; back off
		{"héllo", 3, "hé"},      // boundary after é is fine
		{"日本語", 4, "日"},         // 3-byte runes
		{"日本語", 5, "日"},         //
		{"日本語", 6, "日本"},        //
		{"\xff\xfe", 1, "\xff"}, // invalid input clips bytewise (0xfe is no continuation byte)
		{strings.Repeat("é", 40), 63, strings.Repeat("é", 31)},
	}
	for _, c := range cases {
		if got := clipValue(c.v, c.max); got != c.want {
			t.Errorf("clipValue(%q, %d) = %q, want %q", c.v, c.max, got, c.want)
		}
	}
}

// Regression: adjacent character data must coalesce into one value
// node. Pre-fix, each CharData token between markup became its own
// child, so a comment inside text turned one value into two.
func TestParseXMLCharDataCoalescing(t *testing.T) {
	cases := []struct {
		doc  string
		want *Node
	}{
		{"<a>x<!--c-->y</a>", T("a", T("xy"))},
		{"<a>x<?pi d?>y</a>", T("a", T("xy"))},
		{"<a>pre<![CDATA[ & ]]>post</a>", T("a", T("pre & post"))},
		{"<a>x&amp;y&lt;z</a>", T("a", T("x&y<z"))},
		// A child element does end the run: values on both sides stay
		// separate nodes, in document order.
		{"<a>x<b/>y</a>", T("a", T("x"), T("b"), T("y"))},
		// Whitespace-only runs still vanish even when split by markup.
		{"<a> <!--c--> <b/></a>", T("a", T("b"))},
	}
	for _, c := range cases {
		tr, err := ParseXMLString(c.doc, DefaultXMLOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.doc, err)
		}
		if !Equal(tr.Root, c.want) {
			t.Errorf("%s: got %s, want %s", c.doc, tr, c.want)
		}
	}
}

// The byte budget applies once, to the coalesced run — not per token.
func TestParseXMLCoalescedRunClippedOnce(t *testing.T) {
	opt := XMLOptions{IncludeValues: true, MaxValueLen: 3}
	tr, err := ParseXMLString("<a>xx<!--c-->yy</a>", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root, T("a", T("xxy"))) {
		t.Errorf("got %s, want (a (xxy))", tr)
	}
}

// Property: for value-bearing documents — multi-byte labels, markup
// noise, truncation — parse → write → parse is the identity on the
// tree. This pins both parser fixes at once: a mid-rune clip or a
// split value node would change the reparsed tree.
func TestParseWriteParseRoundTrip(t *testing.T) {
	docs := []string{
		`<article><author>9 jane</author><title>9 café ünïcødé</title></article>`,
		`<a>9 日本語のテキスト</a>`,
		`<a>` + strings.Repeat("é", 100) + `x</a>`,
		"<a>9 x<!--noise-->y<?pi d?>z</a>",
		"<a>9 pre<![CDATA[ <raw> &amp; ]]>post</a>",
		"<r><a>9 v&amp;w</a><b><c>9 x</c></b></r>",
	}
	for _, doc := range docs {
		first, err := ParseXMLString(doc, DefaultXMLOptions())
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		var buf bytes.Buffer
		if err := first.Root.WriteXML(&buf); err != nil {
			t.Fatalf("%s: write: %v", doc, err)
		}
		again, err := ParseXMLString(buf.String(), DefaultXMLOptions())
		if err != nil {
			t.Fatalf("%s: reparse of %q: %v", doc, buf.String(), err)
		}
		if !Equal(first.Root, again.Root) {
			t.Errorf("%s: round trip changed the tree:\n first: %s\nsecond: %s",
				doc, first, again)
		}
	}
}

func TestParseXMLNodeBudget(t *testing.T) {
	doc := `<a><b/><c/><d/><e/></a>`
	opt := XMLOptions{MaxNodes: 3}
	if _, err := ParseXMLString(doc, opt); err == nil {
		t.Error("node budget must be enforced")
	}
	opt.MaxNodes = 5
	if _, err := ParseXMLString(doc, opt); err != nil {
		t.Errorf("budget of 5 should fit: %v", err)
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "<a><b></a></b>", "<a>"} {
		if _, err := ParseXMLString(bad, DefaultXMLOptions()); err == nil {
			t.Errorf("ParseXMLString(%q) should fail", bad)
		}
	}
}

func TestStreamForest(t *testing.T) {
	doc := `<dblp>
		<article><author>9 a</author></article>
		<inproceedings><title>9 t</title></inproceedings>
		<article/>
	</dblp>`
	var got []*Tree
	err := StreamForest(strings.NewReader(doc), DefaultXMLOptions(), func(tr *Tree) error {
		got = append(got, tr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d trees, want 3", len(got))
	}
	if got[0].Root.Label != "article" || got[1].Root.Label != "inproceedings" || got[2].Root.Label != "article" {
		t.Errorf("wrong roots: %s %s %s", got[0], got[1], got[2])
	}
	if !Equal(got[0].Root, T("article", T("author", T("9 a")))) {
		t.Errorf("first tree wrong: %s", got[0])
	}
}

func TestStreamForestAbort(t *testing.T) {
	doc := `<r><a/><b/><c/></r>`
	n := 0
	sentinel := strings.NewReader("") // unused; just ensure error propagation
	_ = sentinel
	err := StreamForest(strings.NewReader(doc), DefaultXMLOptions(), func(tr *Tree) error {
		n++
		if n == 2 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Errorf("err = %v, want errStop", err)
	}
	if n != 2 {
		t.Errorf("processed %d trees, want 2", n)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestWriteXMLRoundTrip(t *testing.T) {
	root := T("article",
		T("author", T("9 jane")),
		T("title", T("9 streaming trees")),
		T("year", T("1998")))
	var buf bytes.Buffer
	if err := root.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseXMLString(buf.String(), DefaultXMLOptions())
	if err != nil {
		t.Fatalf("%v (doc: %s)", err, buf.String())
	}
	if !Equal(tr.Root, root) {
		t.Errorf("round trip: got %s want %s", tr.Root, root)
	}
}

func TestWriteXMLEmptyElements(t *testing.T) {
	root := T("S", T("NP"), T("VP", T("VBD")))
	var buf bytes.Buffer
	if err := root.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseXMLString(buf.String(), DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root, root) {
		t.Errorf("round trip: got %s want %s", tr.Root, root)
	}
}

func TestParseXMLCDATA(t *testing.T) {
	tr, err := ParseXMLString("<a><![CDATA[9 raw <data>]]></a>", DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root, T("a", T("9 raw <data>"))) {
		t.Errorf("CDATA handling wrong: %s", tr)
	}
}

func TestParseXMLEntities(t *testing.T) {
	tr, err := ParseXMLString("<a>9 &lt;x&gt; &amp; y</a>", DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root, T("a", T("9 <x> & y"))) {
		t.Errorf("entity decoding wrong: %s", tr)
	}
}

func TestParseXMLNamespacePrefixStripped(t *testing.T) {
	tr, err := ParseXMLString(`<ns:a xmlns:ns="http://x"><ns:b/></ns:a>`, DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	// encoding/xml resolves prefixes; we use the local name as label.
	if !Equal(tr.Root, T("a", T("b"))) {
		t.Errorf("namespace handling wrong: %s", tr)
	}
}

func TestParseXMLCommentsAndPIsIgnored(t *testing.T) {
	doc := `<?xml version="1.0"?><!-- c --><a><!-- inner --><b/><?pi data?></a>`
	tr, err := ParseXMLString(doc, DefaultXMLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root, T("a", T("b"))) {
		t.Errorf("comments/PIs must be ignored: %s", tr)
	}
}

func TestStreamForestEmptyRoot(t *testing.T) {
	n := 0
	err := StreamForest(strings.NewReader("<root></root>"), DefaultXMLOptions(),
		func(*Tree) error { n++; return nil })
	if err != nil || n != 0 {
		t.Errorf("empty forest: n=%d err=%v", n, err)
	}
}

func TestStreamForestTruncatedDocument(t *testing.T) {
	err := StreamForest(strings.NewReader("<root><a/>"), DefaultXMLOptions(),
		func(*Tree) error { return nil })
	if err == nil {
		t.Error("truncated forest document must fail")
	}
}
