// Package tree provides the ordered labeled tree model used throughout
// SketchTree: construction, postorder numbering, traversal, structural
// statistics, and (de)serialization. Trees are rooted and ordered; every
// node carries a string label drawn from an arbitrary alphabet.
package tree

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is a single node of an ordered labeled tree. Children are ordered
// left to right. Postorder is assigned by AssignPostorder and is 1-based,
// matching the numbering convention of the PRIX system and the paper.
type Node struct {
	Label     string
	Children  []*Node
	Postorder int
}

// Tree is a rooted ordered labeled tree.
type Tree struct {
	Root *Node
}

// New constructs a node with the given label and children.
func New(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// NewTree wraps a root node as a Tree.
func NewTree(root *Node) *Tree { return &Tree{Root: root} }

// T is a terse builder for literals in tests and examples:
//
//	T("A", T("B"), T("C", T("D")))
func T(label string, children ...*Node) *Node { return New(label, children...) }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AddChild appends a child to the node, preserving order of insertion.
func (n *Node) AddChild(c *Node) { n.Children = append(n.Children, c) }

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	return t.Root.Size()
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (n *Node) Depth() int {
	if n == nil || len(n.Children) == 0 {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Clone returns a deep copy of the subtree rooted at n. Postorder numbers
// are copied verbatim.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Label: n.Label, Postorder: n.Postorder}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	return &Tree{Root: t.Root.Clone()}
}

// Equal reports whether two subtrees are identical as ordered labeled
// trees (labels, shape, and child order; postorder numbers are ignored).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// AssignPostorder numbers every node in the subtree rooted at n in
// postorder, starting from 1, and returns the nodes in postorder. The
// returned slice is indexed so that nodes[i].Postorder == i+1.
func (n *Node) AssignPostorder() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(v *Node) {
		for _, c := range v.Children {
			walk(c)
		}
		v.Postorder = len(out) + 1
		out = append(out, v)
	}
	walk(n)
	return out
}

// AssignPostorder numbers all nodes of the tree in postorder (1-based)
// and returns them in postorder.
func (t *Tree) AssignPostorder() []*Node { return t.Root.AssignPostorder() }

// PostorderNodes returns the nodes in postorder without renumbering.
func (n *Node) PostorderNodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(v *Node) {
		for _, c := range v.Children {
			walk(c)
		}
		out = append(out, v)
	}
	walk(n)
	return out
}

// Walk visits every node of the subtree in preorder. If fn returns false
// the children of that node are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Labels returns the multiset of labels of the subtree in preorder.
func (n *Node) Labels() []string {
	var out []string
	n.Walk(func(v *Node) bool {
		out = append(out, v.Label)
		return true
	})
	return out
}

// String renders the subtree as a LISP-style S-expression, e.g.
// (A (B) (C (D))). Labels containing whitespace or parens are quoted.
func (n *Node) String() string {
	var b strings.Builder
	n.writeSexp(&b)
	return b.String()
}

func (n *Node) writeSexp(b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(quoteLabel(n.Label))
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.writeSexp(b)
	}
	b.WriteByte(')')
}

// AppendSexp appends the S-expression rendering of String to buf and
// returns the extended buffer, allocating only when buf must grow.
// Query paths use it to build cache keys into reused buffers.
//
//lint:hotpath
func (n *Node) AppendSexp(buf []byte) []byte {
	buf = append(buf, '(')
	if n.Label == "" || strings.ContainsAny(n.Label, " \t\n()\"") {
		buf = strconv.AppendQuote(buf, n.Label)
	} else {
		buf = append(buf, n.Label...)
	}
	for _, c := range n.Children {
		buf = append(buf, ' ')
		buf = c.AppendSexp(buf)
	}
	buf = append(buf, ')')
	return buf
}

// String renders the tree as an S-expression.
func (t *Tree) String() string {
	if t == nil || t.Root == nil {
		return "()"
	}
	return t.Root.String()
}

func quoteLabel(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n()\"") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// ParseSexp parses the S-expression format produced by String.
func ParseSexp(s string) (*Tree, error) {
	p := &sexpParser{in: s}
	p.skipSpace()
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("tree: trailing data at offset %d", p.pos)
	}
	return &Tree{Root: n}, nil
}

type sexpParser struct {
	in  string
	pos int
}

func (p *sexpParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *sexpParser) parseNode() (*Node, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		return nil, fmt.Errorf("tree: expected '(' at offset %d", p.pos)
	}
	p.pos++
	p.skipSpace()
	label, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	n := &Node{Label: label}
	for {
		p.skipSpace()
		if p.pos >= len(p.in) {
			return nil, fmt.Errorf("tree: unexpected end of input")
		}
		if p.in[p.pos] == ')' {
			p.pos++
			return n, nil
		}
		c, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
}

func (p *sexpParser) parseLabel() (string, error) {
	if p.pos < len(p.in) && p.in[p.pos] == '"' {
		// Quoted label; find the matching quote honoring escapes.
		end := p.pos + 1
		for end < len(p.in) {
			if p.in[end] == '\\' {
				end += 2
				continue
			}
			if p.in[end] == '"' {
				break
			}
			end++
		}
		if end >= len(p.in) {
			return "", fmt.Errorf("tree: unterminated quoted label at offset %d", p.pos)
		}
		var out string
		if _, err := fmt.Sscanf(p.in[p.pos:end+1], "%q", &out); err != nil {
			return "", fmt.Errorf("tree: bad quoted label at offset %d: %v", p.pos, err)
		}
		p.pos = end + 1
		return out, nil
	}
	start := p.pos
	for p.pos < len(p.in) && !strings.ContainsRune(" \t\n\r()\"", rune(p.in[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("tree: empty label at offset %d", start)
	}
	return p.in[start:p.pos], nil
}

// Stats summarizes the structural shape of a collection of trees. It is
// used by the dataset generators and the experiment harness to verify
// that synthetic data reproduces the shape of the paper's datasets.
type Stats struct {
	Trees          int
	Nodes          int
	MaxDepth       int
	SumDepth       int
	MaxFanout      int
	SumFanout      int // summed over internal nodes
	InternalNodes  int
	DistinctLabels int

	labels map[string]struct{}
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{labels: make(map[string]struct{})}
}

// Add folds one tree into the statistics.
func (s *Stats) Add(t *Tree) {
	s.Trees++
	d := t.Root.Depth()
	if d > s.MaxDepth {
		s.MaxDepth = d
	}
	s.SumDepth += d
	t.Root.Walk(func(n *Node) bool {
		s.Nodes++
		s.labels[n.Label] = struct{}{}
		if f := len(n.Children); f > 0 {
			s.InternalNodes++
			s.SumFanout += f
			if f > s.MaxFanout {
				s.MaxFanout = f
			}
		}
		return true
	})
	s.DistinctLabels = len(s.labels)
}

// AvgDepth returns the mean root-to-leaf depth across trees.
func (s *Stats) AvgDepth() float64 {
	if s.Trees == 0 {
		return 0
	}
	return float64(s.SumDepth) / float64(s.Trees)
}

// AvgFanout returns the mean fanout across internal nodes.
func (s *Stats) AvgFanout() float64 {
	if s.InternalNodes == 0 {
		return 0
	}
	return float64(s.SumFanout) / float64(s.InternalNodes)
}

// Canonical returns a canonical string for the subtree under *unordered*
// equality: children are rendered in sorted canonical order. Two nodes
// have the same Canonical string iff they are isomorphic as unordered
// labeled trees. Used to deduplicate ordered arrangements of unordered
// query patterns.
func (n *Node) Canonical() string {
	if n == nil {
		return ""
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.Canonical()
	}
	sort.Strings(parts)
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(quoteLabel(n.Label))
	for _, p := range parts {
		b.WriteByte(' ')
		b.WriteString(p)
	}
	b.WriteByte(')')
	return b.String()
}
