package tree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// XMLOptions controls how XML documents are mapped to labeled trees.
type XMLOptions struct {
	// IncludeValues maps non-whitespace character data to leaf child
	// nodes whose label is the trimmed text. This matches the paper's
	// semantics for DBLP ("the queries had element names as well as
	// values (CDATA)"): a value is treated as a node label.
	IncludeValues bool

	// IncludeAttributes maps each attribute to a child node labeled
	// "@name" with, when IncludeValues is set, a single child holding
	// the attribute value. The paper does not use attributes; off by
	// default.
	IncludeAttributes bool

	// MaxValueLen truncates value labels to this many bytes (0 = no
	// limit). Long CDATA blobs would otherwise dominate the label
	// alphabet for no analytical gain.
	MaxValueLen int

	// MaxNodes aborts parsing of a single tree once it exceeds this
	// many nodes (0 = no limit); guards the streaming pipeline against
	// pathological documents.
	MaxNodes int
}

// DefaultXMLOptions mirror the paper's setup: element names and values
// become labels, attributes are ignored.
func DefaultXMLOptions() XMLOptions {
	return XMLOptions{IncludeValues: true, MaxValueLen: 64}
}

// ParseXML reads a single XML document and returns its labeled tree.
func ParseXML(r io.Reader, opt XMLOptions) (*Tree, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, errors.New("tree: no element in document")
		}
		if err != nil {
			return nil, fmt.Errorf("tree: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			n, err := parseElement(dec, se, opt, &nodeBudget{limit: opt.MaxNodes})
			if err != nil {
				return nil, err
			}
			return &Tree{Root: n}, nil
		}
	}
}

// ParseXMLString is a convenience wrapper over ParseXML.
func ParseXMLString(s string, opt XMLOptions) (*Tree, error) {
	return ParseXML(strings.NewReader(s), opt)
}

type nodeBudget struct {
	limit int
	used  int
}

func (b *nodeBudget) take() error {
	b.used++
	if b.limit > 0 && b.used > b.limit {
		return fmt.Errorf("tree: document exceeds %d nodes", b.limit)
	}
	return nil
}

func parseElement(dec *xml.Decoder, start xml.StartElement, opt XMLOptions, budget *nodeBudget) (*Node, error) {
	if err := budget.take(); err != nil {
		return nil, err
	}
	n := &Node{Label: start.Name.Local}
	if opt.IncludeAttributes {
		for _, a := range start.Attr {
			if err := budget.take(); err != nil {
				return nil, err
			}
			attr := &Node{Label: "@" + a.Name.Local}
			if opt.IncludeValues {
				if err := budget.take(); err != nil {
					return nil, err
				}
				attr.Children = []*Node{{Label: clipValue(a.Value, opt.MaxValueLen)}}
			}
			n.Children = append(n.Children, attr)
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("tree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			c, err := parseElement(dec, t, opt, budget)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		case xml.EndElement:
			return n, nil
		case xml.CharData:
			if !opt.IncludeValues {
				continue
			}
			v := strings.TrimSpace(string(t))
			if v == "" {
				continue
			}
			if err := budget.take(); err != nil {
				return nil, err
			}
			n.Children = append(n.Children, &Node{Label: clipValue(v, opt.MaxValueLen)})
		default:
			// Comments, directives and processing instructions carry
			// no tree structure.
		}
	}
}

func clipValue(v string, max int) string {
	if max > 0 && len(v) > max {
		return v[:max]
	}
	return v
}

// StreamForest parses one large XML document, removes its root tag, and
// invokes fn once per root-child subtree, in document order. This is the
// paper's construction of a forest/stream from a monolithic dataset file
// ("a forest of trees were created by removing the root tag of the
// document, and the trees were processed in a single pass"). Character
// data directly under the root is ignored. fn returning an error aborts
// the scan and the error is returned.
func StreamForest(r io.Reader, opt XMLOptions, fn func(*Tree) error) error {
	dec := xml.NewDecoder(r)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return errors.New("tree: unexpected end of document")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("tree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				depth = 1 // entering the root element; discard it
				continue
			}
			n, err := parseElement(dec, t, opt, &nodeBudget{limit: opt.MaxNodes})
			if err != nil {
				return err
			}
			if err := fn(&Tree{Root: n}); err != nil {
				return err
			}
		case xml.EndElement:
			depth--
		}
	}
}

// WriteXML serializes the subtree as XML. Leaf nodes whose label is not
// a valid element name heuristic (contains whitespace) are emitted as
// character data; everything else becomes an element. The output parses
// back to an equivalent tree under DefaultXMLOptions for trees produced
// by the dataset generators.
func (n *Node) WriteXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	if err := encodeNode(enc, n); err != nil {
		return err
	}
	return enc.Flush()
}

func encodeNode(enc *xml.Encoder, n *Node) error {
	if n.IsLeaf() && !validElementName(n.Label) {
		return enc.EncodeToken(xml.CharData(n.Label))
	}
	name := n.Label
	if !validElementName(name) {
		name = "_v"
	}
	start := xml.StartElement{Name: xml.Name{Local: name}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := encodeNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

func validElementName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}
