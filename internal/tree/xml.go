package tree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// XMLOptions controls how XML documents are mapped to labeled trees.
type XMLOptions struct {
	// IncludeValues maps non-whitespace character data to leaf child
	// nodes whose label is the trimmed text. This matches the paper's
	// semantics for DBLP ("the queries had element names as well as
	// values (CDATA)"): a value is treated as a node label.
	//
	// Adjacent character data is coalesced into one value node: text
	// split by comments, CDATA section boundaries, processing
	// instructions or entity expansion ("<a>x<!--c-->y</a>",
	// "<a>x<![CDATA[y]]></a>") accumulates and is trimmed once, at the
	// element's end or at the next child element. Markup noise
	// therefore never changes which value a document maps to — only a
	// child element starts a new value node.
	IncludeValues bool

	// IncludeAttributes maps each attribute to a child node labeled
	// "@name" with, when IncludeValues is set, a single child holding
	// the attribute value. The paper does not use attributes; off by
	// default.
	IncludeAttributes bool

	// MaxValueLen truncates value labels to at most this many bytes
	// (0 = no limit). Long CDATA blobs would otherwise dominate the
	// label alphabet for no analytical gain. Truncation backs off to
	// the nearest rune boundary so a clipped label is always valid
	// UTF-8 (a multi-byte rune is dropped rather than split); the
	// limit is an upper bound, not an exact length.
	MaxValueLen int

	// MaxNodes aborts parsing of a single tree once it exceeds this
	// many nodes (0 = no limit); guards the streaming pipeline against
	// pathological documents.
	MaxNodes int
}

// DefaultXMLOptions mirror the paper's setup: element names and values
// become labels, attributes are ignored.
func DefaultXMLOptions() XMLOptions {
	return XMLOptions{IncludeValues: true, MaxValueLen: 64}
}

// ParseXML reads a single XML document and returns its labeled tree.
func ParseXML(r io.Reader, opt XMLOptions) (*Tree, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, errors.New("tree: no element in document")
		}
		if err != nil {
			return nil, fmt.Errorf("tree: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			n, err := parseElement(dec, se, opt, &nodeBudget{limit: opt.MaxNodes})
			if err != nil {
				return nil, err
			}
			return &Tree{Root: n}, nil
		}
	}
}

// ParseXMLString is a convenience wrapper over ParseXML.
func ParseXMLString(s string, opt XMLOptions) (*Tree, error) {
	return ParseXML(strings.NewReader(s), opt)
}

type nodeBudget struct {
	limit int
	used  int
}

func (b *nodeBudget) take() error {
	b.used++
	if b.limit > 0 && b.used > b.limit {
		return fmt.Errorf("tree: document exceeds %d nodes", b.limit)
	}
	return nil
}

func parseElement(dec *xml.Decoder, start xml.StartElement, opt XMLOptions, budget *nodeBudget) (*Node, error) {
	if err := budget.take(); err != nil {
		return nil, err
	}
	n := &Node{Label: start.Name.Local}
	if opt.IncludeAttributes {
		for _, a := range start.Attr {
			if err := budget.take(); err != nil {
				return nil, err
			}
			attr := &Node{Label: "@" + a.Name.Local}
			if opt.IncludeValues {
				if err := budget.take(); err != nil {
					return nil, err
				}
				attr.Children = []*Node{{Label: clipValue(a.Value, opt.MaxValueLen)}}
			}
			n.Children = append(n.Children, attr)
		}
	}
	// Adjacent character data accumulates in text and becomes one value
	// node per contiguous run: comments, CDATA boundaries, processing
	// instructions and entity expansion split the decoder's CharData
	// tokens but not the logical value. The run is trimmed and clipped
	// once, when a child element or the element's end flushes it.
	var text []byte
	flush := func() error {
		if len(text) == 0 {
			return nil
		}
		v := strings.TrimSpace(string(text))
		text = text[:0]
		if v == "" {
			return nil
		}
		if err := budget.take(); err != nil {
			return err
		}
		n.Children = append(n.Children, &Node{Label: clipValue(v, opt.MaxValueLen)})
		return nil
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("tree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := flush(); err != nil {
				return nil, err
			}
			c, err := parseElement(dec, t, opt, budget)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		case xml.EndElement:
			if err := flush(); err != nil {
				return nil, err
			}
			return n, nil
		case xml.CharData:
			if opt.IncludeValues {
				text = append(text, t...)
			}
		default:
			// Comments, directives and processing instructions carry
			// no tree structure.
		}
	}
}

// clipValue truncates a value label to at most max bytes without
// splitting a multi-byte UTF-8 rune: the cut backs off to the nearest
// rune start, so the result is valid UTF-8 whenever the input is (a
// naive v[:max] can end in a dangling continuation-byte prefix like
// "\xc3" and break WriteXML round-trips).
func clipValue(v string, max int) string {
	if max <= 0 || len(v) <= max {
		return v
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(v[cut]) {
		cut--
	}
	return v[:cut]
}

// StreamForest parses one large XML document, removes its root tag, and
// invokes fn once per root-child subtree, in document order. This is the
// paper's construction of a forest/stream from a monolithic dataset file
// ("a forest of trees were created by removing the root tag of the
// document, and the trees were processed in a single pass"). Character
// data directly under the root is ignored. fn returning an error aborts
// the scan and the error is returned.
func StreamForest(r io.Reader, opt XMLOptions, fn func(*Tree) error) error {
	dec := xml.NewDecoder(r)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return errors.New("tree: unexpected end of document")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("tree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				depth = 1 // entering the root element; discard it
				continue
			}
			n, err := parseElement(dec, t, opt, &nodeBudget{limit: opt.MaxNodes})
			if err != nil {
				return err
			}
			if err := fn(&Tree{Root: n}); err != nil {
				return err
			}
		case xml.EndElement:
			depth--
		}
	}
}

// WriteXML serializes the subtree as XML. Leaf nodes whose label is not
// a valid element name heuristic (contains whitespace) are emitted as
// character data; everything else becomes an element. The output parses
// back to an equivalent tree under DefaultXMLOptions for trees produced
// by the dataset generators.
func (n *Node) WriteXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	if err := encodeNode(enc, n); err != nil {
		return err
	}
	return enc.Flush()
}

func encodeNode(enc *xml.Encoder, n *Node) error {
	if n.IsLeaf() && !validElementName(n.Label) {
		return enc.EncodeToken(xml.CharData(n.Label))
	}
	name := n.Label
	if !validElementName(name) {
		name = "_v"
	}
	start := xml.StartElement{Name: xml.Name{Local: name}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := encodeNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

func validElementName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}
