// Package audit implements the exact-shadow auditor: a bounded-memory
// sample of tree-pattern values whose frequencies are counted exactly
// alongside the sketch, so the running system can continuously compare
// its (ε, δ)-approximate answers against ground truth for a
// representative pattern subset.
//
// Membership uses bottom-k hash sampling (the KMV distinct-sampling
// construction): a value is audited iff its salted hash is among the K
// smallest seen. Because the K-th smallest hash only ever decreases,
// membership is prefix-consistent — any value tracked now has been
// tracked since its very first arrival, so its counter is exact over
// the audited stream, never a partial tally. Evicted values can never
// re-enter (their hash is at least the current threshold), which is
// what makes the exactness invariant hold without a seen-set.
//
// The sample is uniform over distinct pattern values, mirroring how
// the paper's experiments draw workload queries from the pattern
// catalog itself, but in O(K) memory instead of one counter per
// distinct pattern.
package audit

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// slot is one audited value in the max-heap over hashes.
type slot struct {
	value uint64
	hash  uint64
	count int64
	pos   int
}

type slotHeap []*slot

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i].hash > h[j].hash } // max-heap
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].pos = i; h[j].pos = j }
func (h *slotHeap) Push(x interface{}) {
	s := x.(*slot)
	s.pos = len(*h)
	*h = append(*h, s)
}
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Auditor maintains exact counts for a bottom-k hash sample of up to K
// distinct values. One goroutine may call Observe; Observed and
// Tracked are atomics and safe to read concurrently.
type Auditor struct {
	k     int
	salt  uint64
	slots map[uint64]*slot
	heap  slotHeap

	observed atomic.Int64 // net occurrences observed (audited or not)
	tracked  atomic.Int64 // mirror of len(slots) for race-free reads
}

// New creates an auditor sampling up to k distinct values, salted with
// seed so distinct auditors sample independently.
func New(k int, seed uint64) (*Auditor, error) {
	if k < 1 {
		return nil, fmt.Errorf("audit: k=%d must be positive", k)
	}
	return &Auditor{k: k, salt: seed, slots: make(map[uint64]*slot, k)}, nil
}

// K returns the sample capacity.
func (a *Auditor) K() int { return a.k }

// Observed returns the net occurrences observed so far (the audited
// stream length). Safe to call concurrently with Observe.
func (a *Auditor) Observed() int64 { return a.observed.Load() }

// Tracked returns the number of values currently audited. Safe to call
// concurrently with Observe.
func (a *Auditor) Tracked() int64 { return a.tracked.Load() }

// mix is the splitmix64 finalizer — the hash that orders values into
// the bottom-k sample.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Observe records delta occurrences of value v (negative for
// deletions). Tracked values count exactly; untracked values enter the
// sample only when their hash undercuts the current bottom-k
// threshold, which by construction can only happen on a value's first
// ever arrival — so admission always starts from a true zero count.
func (a *Auditor) Observe(v uint64, delta int64) {
	a.observed.Add(delta)
	if s, ok := a.slots[v]; ok {
		s.count += delta
		return
	}
	h := mix(v + a.salt)
	if len(a.slots) >= a.k {
		if h >= a.heap[0].hash {
			return
		}
		evicted := heap.Pop(&a.heap).(*slot)
		delete(a.slots, evicted.value)
	}
	s := &slot{value: v, hash: h, count: delta}
	heap.Push(&a.heap, s)
	a.slots[v] = s
	a.tracked.Store(int64(len(a.slots)))
}

// PatternError is one audited pattern's ground truth versus the
// sketch's answer.
type PatternError struct {
	Value    uint64
	Exact    int64
	Estimate float64
	RelErr   float64 // |Estimate − Exact| / max(1, |Exact|)
}

// Report is the auditor's accuracy summary at one point in time.
type Report struct {
	K        int            // sample capacity
	Tracked  int            // audited patterns
	Observed int64          // net occurrences the sample was drawn over
	Patterns []PatternError // audited patterns, descending exact count
	Mean     float64        // mean relative error
	P50      float64        // relative-error quantiles over the sample
	P90      float64
	P99      float64
	Max      float64
}

// Report estimates every audited value through the supplied estimator
// and summarizes the observed relative errors. The estimator is the
// caller's query path (sketch estimate with top-k compensation), so
// the report measures exactly the error a user-issued query would see.
func (a *Auditor) Report(estimate func(v uint64) float64) Report {
	r := Report{K: a.k, Tracked: len(a.slots), Observed: a.observed.Load()}
	if r.Tracked == 0 {
		return r
	}
	r.Patterns = make([]PatternError, 0, len(a.slots))
	for v, s := range a.slots {
		est := estimate(v)
		denom := math.Abs(float64(s.count))
		if denom < 1 {
			denom = 1
		}
		r.Patterns = append(r.Patterns, PatternError{
			Value:    v,
			Exact:    s.count,
			Estimate: est,
			RelErr:   math.Abs(est-float64(s.count)) / denom,
		})
	}
	sort.Slice(r.Patterns, func(i, j int) bool {
		if r.Patterns[i].Exact != r.Patterns[j].Exact {
			return r.Patterns[i].Exact > r.Patterns[j].Exact
		}
		return r.Patterns[i].Value < r.Patterns[j].Value
	})
	errs := make([]float64, len(r.Patterns))
	sum := 0.0
	for i, p := range r.Patterns {
		errs[i] = p.RelErr
		sum += p.RelErr
	}
	sort.Float64s(errs)
	r.Mean = sum / float64(len(errs))
	r.P50 = quantile(errs, 0.50)
	r.P90 = quantile(errs, 0.90)
	r.P99 = quantile(errs, 0.99)
	r.Max = errs[len(errs)-1]
	return r
}

// quantile returns the q-quantile of sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WithinFraction returns the fraction of audited patterns whose
// observed relative error is at most eps — the empirical check of the
// paper's (ε, δ) guarantee (1−δ of queries should fall within ε).
func (r Report) WithinFraction(eps float64) float64 {
	if len(r.Patterns) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.Patterns {
		if p.RelErr <= eps {
			n++
		}
	}
	return float64(n) / float64(len(r.Patterns))
}

// MemoryBytes approximates the auditor footprint: heap slot payload
// plus map overhead per tracked value.
func (a *Auditor) MemoryBytes() int {
	return len(a.slots) * (32 + 8 + 16)
}
