package audit

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// The load-bearing invariant: every tracked value's count equals the
// true net frequency from a map-based recount, under random inserts
// and deletes with far more distinct values than sample slots.
func TestExactnessUnderChurn(t *testing.T) {
	a, err := New(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[uint64]int64)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 20000; i++ {
		v := rng.Uint64N(500) // ~500 distinct values >> 16 slots
		delta := int64(1)
		if rng.IntN(4) == 0 && truth[v] > 0 {
			delta = -1
		}
		truth[v] += delta
		a.Observe(v, delta)
	}
	var net int64
	for _, c := range truth {
		net += c
	}
	if a.Observed() != net {
		t.Fatalf("observed %d, true net stream length %d", a.Observed(), net)
	}
	if a.Tracked() != int64(len(a.slots)) || a.Tracked() == 0 {
		t.Fatalf("tracked mirror %d vs %d slots", a.Tracked(), len(a.slots))
	}
	for v, s := range a.slots {
		if s.count != truth[v] {
			t.Fatalf("audited count for %d is %d, truth is %d", v, s.count, truth[v])
		}
	}
}

// The sample must be exactly the values with the k smallest salted
// hashes among all values ever seen — the bottom-k (KMV) definition.
func TestMembershipIsTrueBottomK(t *testing.T) {
	const k, salt = 8, uint64(7)
	a, err := New(k, salt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		v := rng.Uint64N(300)
		seen[v] = true
		a.Observe(v, 1)
	}
	all := make([]uint64, 0, len(seen))
	for v := range seen {
		all = append(all, v)
	}
	sort.Slice(all, func(i, j int) bool { return mix(all[i]+salt) < mix(all[j]+salt) })
	want := all[:k]
	if len(a.slots) != k {
		t.Fatalf("sample holds %d values, want %d", len(a.slots), k)
	}
	for _, v := range want {
		if _, ok := a.slots[v]; !ok {
			t.Fatalf("value %d has a bottom-%d hash but is not sampled", v, k)
		}
	}
}

// Once evicted, a value can never re-enter the sample (its hash is at
// or above the threshold forever), so counts never restart mid-stream.
func TestEvictedValuesStayOut(t *testing.T) {
	a, err := New(4, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Fill beyond capacity, note who got evicted, then hammer the
	// evicted values again.
	present := func(v uint64) bool { _, ok := a.slots[v]; return ok }
	var values []uint64
	for v := uint64(0); v < 64; v++ {
		a.Observe(v, 1)
		values = append(values, v)
	}
	var out []uint64
	for _, v := range values {
		if !present(v) {
			out = append(out, v)
		}
	}
	if len(out) != 60 {
		t.Fatalf("%d values evicted, want 60", len(out))
	}
	for _, v := range out {
		for i := 0; i < 10; i++ {
			a.Observe(v, 1)
		}
		if present(v) {
			t.Fatalf("evicted value %d re-entered the sample", v)
		}
	}
}

func TestNewRejectsNonPositiveK(t *testing.T) {
	for _, k := range []int{0, -1} {
		if _, err := New(k, 1); err == nil {
			t.Fatalf("New(%d) must fail", k)
		}
	}
}

func TestReportSummaries(t *testing.T) {
	a, err := New(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	empty := a.Report(func(uint64) float64 { return 0 })
	if empty.Tracked != 0 || len(empty.Patterns) != 0 || empty.WithinFraction(1) != 0 {
		t.Fatalf("empty report: %+v", empty)
	}

	// Small enough stream that everything is tracked: exact counts are
	// the inserted frequencies and the report arithmetic is checkable
	// by hand.
	freqs := map[uint64]int64{10: 100, 11: 50, 12: 50, 13: 1}
	for v, n := range freqs {
		for i := int64(0); i < n; i++ {
			a.Observe(v, 1)
		}
	}
	// Estimator off by +10% everywhere → every RelErr is 0.1.
	rep := a.Report(func(v uint64) float64 { return 1.1 * float64(freqs[v]) })
	if rep.Tracked != 4 || rep.K != 8 || rep.Observed != 201 {
		t.Fatalf("report header: %+v", rep)
	}
	// Sorted by descending exact count, ties broken by ascending value.
	wantOrder := []uint64{10, 11, 12, 13}
	for i, p := range rep.Patterns {
		if p.Value != wantOrder[i] {
			t.Fatalf("pattern order %v at %d, want %v", p.Value, i, wantOrder)
		}
		if p.Exact != freqs[p.Value] {
			t.Fatalf("exact %d for value %d, want %d", p.Exact, p.Value, freqs[p.Value])
		}
		if math.Abs(p.RelErr-0.1) > 1e-9 {
			t.Fatalf("rel err %v, want 0.1", p.RelErr)
		}
	}
	for _, q := range []float64{rep.Mean, rep.P50, rep.P90, rep.P99, rep.Max} {
		if math.Abs(q-0.1) > 1e-9 {
			t.Fatalf("summary stat %v, want 0.1 across the board", q)
		}
	}
	if got := rep.WithinFraction(0.1 + 1e-9); got != 1 {
		t.Fatalf("WithinFraction(0.1) = %v, want 1", got)
	}
	if got := rep.WithinFraction(0.05); got != 0 {
		t.Fatalf("WithinFraction(0.05) = %v, want 0", got)
	}

	// A zero exact count clamps the denominator to 1 instead of
	// dividing by zero.
	a2, _ := New(2, 5)
	a2.Observe(7, 1)
	a2.Observe(7, -1)
	r2 := a2.Report(func(uint64) float64 { return 3 })
	if len(r2.Patterns) != 1 || r2.Patterns[0].RelErr != 3 {
		t.Fatalf("zero-count rel err: %+v", r2.Patterns)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {0.99, 10}, {0.1, 1}, {1, 10}, {0, 1},
	}
	for _, c := range cases {
		if got := quantile(s, c.q); got != c.want {
			t.Fatalf("quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("quantile of empty slice must be 0")
	}
}

func TestMemoryBytesGrowsWithSample(t *testing.T) {
	a, err := New(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.MemoryBytes() != 0 {
		t.Fatalf("empty auditor reports %d bytes", a.MemoryBytes())
	}
	for v := uint64(0); v < 10; v++ {
		a.Observe(v, 1)
	}
	if got := a.MemoryBytes(); got != 10*(32+8+16) {
		t.Fatalf("MemoryBytes %d for 10 slots", got)
	}
}
