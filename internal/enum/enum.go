// Package enum implements EnumTree (paper §5.1, Algorithm 3): the
// enumeration of all ordered tree patterns with at most k edges
// embedded in an ordered labeled data tree.
//
// A tree pattern rooted at data node i with j edges is a connected set
// of j tree edges whose topmost node is i; the pattern inherits the
// labels and the left-to-right order of the data tree. P(i, j) denotes
// the set of patterns rooted at i with exactly j edges. To compute
// P(i, n), EnumTree picks an ordered subset of i's child edges and
// distributes the remaining edges over the chosen children in all
// possible ways (an integer composition), taking the cartesian product
// of the children's recursively enumerated pattern sets. Solution sets
// are memoized per (node, j), so shared substructure is computed once
// — the paper's memoization technique.
//
// Pattern values returned by the enumerator share subpattern nodes via
// the memo; they are immutable by contract. Materialize with ToTree
// before mutating.
package enum

import (
	"fmt"

	"sketchtree/internal/tree"
)

// Pattern is an ordered tree pattern embedded in a data tree. Node
// points at the data-tree node the pattern node matches; Children are
// the chosen child subpatterns in document order. A Pattern with no
// Children is a pattern leaf (the matched data node may well have
// children that the pattern does not constrain).
type Pattern struct {
	Node     *tree.Node
	Children []*Pattern
}

// Edges returns the number of edges of the pattern.
func (p *Pattern) Edges() int {
	n := 0
	for _, c := range p.Children {
		n += 1 + c.Edges()
	}
	return n
}

// Size returns the number of nodes of the pattern (edges + 1).
func (p *Pattern) Size() int { return p.Edges() + 1 }

// ToTree materializes the pattern as an independent labeled tree.
func (p *Pattern) ToTree() *tree.Node {
	n := &tree.Node{Label: p.Node.Label}
	if len(p.Children) > 0 {
		n.Children = make([]*tree.Node, len(p.Children))
		for i, c := range p.Children {
			n.Children[i] = c.ToTree()
		}
	}
	return n
}

// String renders the materialized pattern as an S-expression.
func (p *Pattern) String() string { return p.ToTree().String() }

// Enumerator memoizes pattern sets for one data tree at a time: the
// memo is keyed by node identity, so call Reset before moving to the
// next tree (or create one enumerator per tree).
//
// All Pattern structs and the []*Pattern slices backing Children and
// memo entries are carved from slabs owned by the enumerator, and
// Reset rewinds the slabs instead of discarding them: steady-state
// enumeration of a stream of similar trees performs no heap
// allocations at all. The price is the ownership contract — every
// pattern the enumerator ever returned is invalidated by Reset.
type Enumerator struct {
	maxEdges int
	memo     map[memoKey][]*Pattern
	leaves   map[*tree.Node]*Pattern

	// Pattern-struct slab storage. pat is the slab being filled
	// (patSlabs[patNext-1]), patOff the next free entry.
	patSlabs [][]Pattern
	pat      []Pattern
	patOff   int
	patNext  int

	// []*Pattern slab storage for Children and memo slices.
	refSlabs [][]*Pattern
	ref      []*Pattern
	refOff   int
	refNext  int

	// Shared recursion stacks. assign pushes chosen subpatterns on acc
	// and completed patterns on res; nested Rooted calls address them
	// through base offsets, so one pair of stacks serves the whole
	// mutually recursive enumeration without per-call slices.
	acc []*Pattern
	res []*Pattern
}

const (
	patSlabSize = 1024
	refSlabSize = 4096
)

// grabPatSlab advances pat to the next recycled slab, allocating one
// only when every existing slab is full.
//
//lint:hotpath
func (e *Enumerator) grabPatSlab() {
	if e.patNext == len(e.patSlabs) {
		//lint:allow hotpath slab growth is amortized; Reset rewinds slabs for reuse
		e.patSlabs = append(e.patSlabs, make([]Pattern, patSlabSize))
	}
	e.pat = e.patSlabs[e.patNext]
	e.patNext++
	e.patOff = 0
}

// newPattern carves a pattern struct from the slab arena.
//
//lint:hotpath
func (e *Enumerator) newPattern(node *tree.Node, children []*Pattern) *Pattern {
	if e.patOff == len(e.pat) {
		e.grabPatSlab()
	}
	p := &e.pat[e.patOff]
	e.patOff++
	p.Node = node
	p.Children = children
	return p
}

// carve returns n fresh entries from the reference-slice arena. The
// result is capacity-clamped so it can never grow into a neighbour.
//
//lint:hotpath
func (e *Enumerator) carve(n int) []*Pattern {
	if n == 0 {
		return nil
	}
	for e.refOff+n > len(e.ref) {
		if e.refNext == len(e.refSlabs) {
			size := refSlabSize
			if n > size {
				size = n
			}
			//lint:allow hotpath slab growth is amortized; Reset rewinds slabs for reuse
			e.refSlabs = append(e.refSlabs, make([]*Pattern, size))
		}
		e.ref = e.refSlabs[e.refNext]
		e.refNext++
		e.refOff = 0
	}
	s := e.ref[e.refOff : e.refOff+n : e.refOff+n]
	e.refOff += n
	return s
}

type memoKey struct {
	node *tree.Node
	n    int
}

// NewEnumerator prepares enumeration of patterns with 1..maxEdges
// edges.
func NewEnumerator(maxEdges int) (*Enumerator, error) {
	if maxEdges < 1 {
		return nil, fmt.Errorf("enum: maxEdges %d < 1", maxEdges)
	}
	return &Enumerator{
		maxEdges: maxEdges,
		memo:     make(map[memoKey][]*Pattern),
		leaves:   make(map[*tree.Node]*Pattern),
	}, nil
}

// MaxEdges returns the configured maximum pattern size.
func (e *Enumerator) MaxEdges() int { return e.maxEdges }

// Reset clears the per-tree memo so the enumerator can be reused for
// another data tree, retaining the allocated map capacity and pattern
// slabs. The memo is keyed by node identity, so it must be reset
// between trees; callers that process a stream should create one
// enumerator and Reset it per tree instead of allocating a fresh one
// each time. Reset invalidates every pattern previously returned —
// the slabs backing them are rewound and will be overwritten.
//
//lint:hotpath
func (e *Enumerator) Reset() {
	clear(e.memo)
	clear(e.leaves)
	e.pat, e.patOff, e.patNext = nil, 0, 0
	e.ref, e.refOff, e.refNext = nil, 0, 0
	e.acc = e.acc[:0]
	e.res = e.res[:0]
}

//lint:hotpath
func (e *Enumerator) leaf(n *tree.Node) *Pattern {
	if p, ok := e.leaves[n]; ok {
		return p
	}
	p := e.newPattern(n, nil)
	e.leaves[n] = p //lint:allow hotpath leaf memo is bounded by tree nodes and cleared per tree
	return p
}

// Rooted returns P(node, n): all patterns rooted at the given data
// node with exactly n edges (n >= 1). The returned slice and its
// patterns are owned by the enumerator and must not be modified.
//
//lint:hotpath
func (e *Enumerator) Rooted(node *tree.Node, n int) []*Pattern {
	if n < 1 || n > e.maxEdges {
		return nil
	}
	key := memoKey{node, n}
	if ps, ok := e.memo[key]; ok {
		return ps
	}
	var out []*Pattern
	if len(node.Children) > 0 {
		base := len(e.res)
		e.assign(node, 0, n, len(e.acc))
		if m := len(e.res) - base; m > 0 {
			out = e.carve(m)
			copy(out, e.res[base:])
		}
		e.res = e.res[:base]
	}
	e.memo[key] = out //lint:allow hotpath memo is bounded by nodes times maxEdges and cleared per tree
	return out
}

// assign walks node's children left to right from index ci with left
// edges still to place; at each child it either skips it or includes
// its edge plus x further edges below it. This enumerates every
// (ordered child subset, composition) pair of Algorithm 3 exactly
// once. Chosen subpatterns so far live on e.acc[accBase:], completed
// patterns are appended to e.res; nested Rooted calls push and pop
// above the current tops, so both stacks read consistently across the
// mutual recursion.
//
//lint:hotpath
func (e *Enumerator) assign(node *tree.Node, ci, left, accBase int) {
	if left == 0 {
		if len(e.acc) > accBase {
			children := e.carve(len(e.acc) - accBase)
			copy(children, e.acc[accBase:])
			e.res = append(e.res, e.newPattern(node, children))
		}
		return
	}
	if ci == len(node.Children) {
		return
	}
	// Skip child ci.
	e.assign(node, ci+1, left, accBase)
	// Include child ci as a pattern leaf (x = 0).
	c := node.Children[ci]
	e.acc = append(e.acc, e.leaf(c))
	e.assign(node, ci+1, left-1, accBase)
	e.acc = e.acc[:len(e.acc)-1]
	// Include child ci with x >= 1 edges beneath it.
	for x := 1; x <= left-1; x++ {
		for _, sub := range e.Rooted(c, x) {
			e.acc = append(e.acc, sub)
			e.assign(node, ci+1, left-1-x, accBase)
			e.acc = e.acc[:len(e.acc)-1]
		}
	}
}

// ForEach invokes fn for every pattern with 1..maxEdges edges rooted
// anywhere in the tree, visiting roots in postorder and sizes in
// increasing order per root. Enumeration stops early if fn returns an
// error, which is then returned.
//
//lint:hotpath
func (e *Enumerator) ForEach(root *tree.Node, fn func(*Pattern) error) error {
	for _, c := range root.Children {
		if err := e.ForEach(c, fn); err != nil {
			return err
		}
	}
	for size := 1; size <= e.maxEdges; size++ {
		for _, p := range e.Rooted(root, size) {
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Patterns enumerates all patterns with 1..k edges in the tree rooted
// at root. This is the one-shot convenience over NewEnumerator +
// ForEach.
func Patterns(root *tree.Node, k int) ([]*Pattern, error) {
	e, err := NewEnumerator(k)
	if err != nil {
		return nil, err
	}
	var out []*Pattern
	err = e.ForEach(root, func(p *Pattern) error {
		out = append(out, p)
		return nil
	})
	return out, err
}

// CountPatterns returns the number of patterns with 1..k edges in the
// tree without materializing them, via the same recurrence on counts.
// Used to cross-check the enumeration and to size workloads cheaply
// (Figure 9(b)).
func CountPatterns(root *tree.Node, k int) (int64, error) {
	if k < 1 {
		return 0, fmt.Errorf("enum: k %d < 1", k)
	}
	memo := make(map[memoKey]int64)
	var count func(node *tree.Node, n int) int64
	count = func(node *tree.Node, n int) int64 {
		if n == 0 {
			return 1 // the "edge only" inclusion of a child
		}
		key := memoKey{node, n}
		if v, ok := memo[key]; ok {
			return v
		}
		f := len(node.Children)
		var total int64
		if f > 0 {
			// ways[ci][left]: same recursion as Rooted, on counts.
			var ways func(ci, left int, any bool) int64
			ways = func(ci, left int, any bool) int64 {
				if left == 0 {
					if any {
						return 1
					}
					return 0
				}
				if ci == f {
					return 0
				}
				w := ways(ci+1, left, any) // skip
				c := node.Children[ci]
				for x := 0; x <= left-1; x++ {
					sub := count(c, x)
					if sub == 0 {
						continue
					}
					w += sub * ways(ci+1, left-1-x, true)
				}
				return w
			}
			total = ways(0, n, false)
		}
		memo[key] = total
		return total
	}
	var total int64
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		for size := 1; size <= k; size++ {
			total += count(n, size)
		}
	}
	walk(root)
	return total, nil
}
