package enum

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"sketchtree/internal/tree"
)

// paperTree is the data tree of Figure 6(a): nodes numbered in
// postorder, structure 7(5(3, 4), 6). Label each node by its number.
func paperTree() *tree.Node {
	return tree.T("7",
		tree.T("5", tree.T("3"), tree.T("4")),
		tree.T("6"))
}

// bruteForce enumerates all patterns with 1..k edges by choosing every
// subset of the tree's edges and keeping the connected, single-rooted
// ones. Exponential; only for small test trees.
func bruteForce(root *tree.Node, k int) []string {
	type edge struct{ parent, child *tree.Node }
	var edges []edge
	var collect func(n *tree.Node)
	collect = func(n *tree.Node) {
		for _, c := range n.Children {
			edges = append(edges, edge{n, c})
			collect(c)
		}
	}
	collect(root)
	var out []string
	m := len(edges)
	for mask := 1; mask < 1<<uint(m); mask++ {
		var chosen []edge
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				chosen = append(chosen, edges[i])
			}
		}
		if len(chosen) > k {
			continue
		}
		// Children/parent maps restricted to chosen edges.
		children := map[*tree.Node][]*tree.Node{}
		hasParent := map[*tree.Node]bool{}
		nodes := map[*tree.Node]bool{}
		for _, e := range chosen {
			children[e.parent] = append(children[e.parent], e.child)
			hasParent[e.child] = true
			nodes[e.parent] = true
			nodes[e.child] = true
		}
		var roots []*tree.Node
		for n := range nodes {
			if !hasParent[n] {
				roots = append(roots, n)
			}
		}
		if len(roots) != 1 {
			continue // disconnected
		}
		// Connected check: all nodes reachable from the root.
		reach := map[*tree.Node]bool{}
		var dfs func(n *tree.Node)
		dfs = func(n *tree.Node) {
			reach[n] = true
			for _, c := range children[n] {
				dfs(c)
			}
		}
		dfs(roots[0])
		if len(reach) != len(nodes) {
			continue
		}
		// Materialize with document order preserved: children slices
		// were appended in edge-collection order, which is document
		// order because collect walks children in order... except edges
		// from different depths interleave. Rebuild ordered children.
		var mat func(n *tree.Node) *tree.Node
		mat = func(n *tree.Node) *tree.Node {
			nn := &tree.Node{Label: n.Label}
			for _, c := range n.Children { // document order
				if reach[c] && contains(children[n], c) {
					nn.Children = append(nn.Children, mat(c))
				}
			}
			return nn
		}
		out = append(out, mat(roots[0]).String())
	}
	sort.Strings(out)
	return out
}

func contains(ns []*tree.Node, x *tree.Node) bool {
	for _, n := range ns {
		if n == x {
			return true
		}
	}
	return false
}

func enumStrings(root *tree.Node, k int, t *testing.T) []string {
	t.Helper()
	ps, err := Patterns(root, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}

func TestPaperFigure6RootedAtSeven(t *testing.T) {
	// Figure 6(b): the patterns rooted at node 7 with 1..3 edges.
	root := paperTree()
	e, err := NewEnumerator(3)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int][]string{}
	for n := 1; n <= 3; n++ {
		for _, p := range e.Rooted(root, n) {
			got[n] = append(got[n], p.String())
		}
		sort.Strings(got[n])
	}
	want := map[int][]string{
		1: {"(7 (5))", "(7 (6))"},
		2: {"(7 (5 (3)))", "(7 (5 (4)))", "(7 (5) (6))"},
		3: {"(7 (5 (3) (4)))", "(7 (5 (3)) (6))", "(7 (5 (4)) (6))"},
	}
	for n := 1; n <= 3; n++ {
		if len(got[n]) != len(want[n]) {
			t.Fatalf("P(7,%d): got %v, want %v", n, got[n], want[n])
		}
		for i := range want[n] {
			if got[n][i] != want[n][i] {
				t.Errorf("P(7,%d)[%d] = %s, want %s", n, i, got[n][i], want[n][i])
			}
		}
	}
}

func TestAgainstBruteForceFixed(t *testing.T) {
	trees := []*tree.Node{
		paperTree(),
		tree.T("A"),
		tree.T("A", tree.T("B")),
		tree.T("A", tree.T("B"), tree.T("B"), tree.T("B")),
		tree.T("S", tree.T("NP", tree.T("DT"), tree.T("NN")),
			tree.T("VP", tree.T("VBD"), tree.T("NP", tree.T("NN")))),
	}
	for _, root := range trees {
		for k := 1; k <= 4; k++ {
			got := enumStrings(root, k, t)
			want := bruteForce(root, k)
			if len(got) != len(want) {
				t.Fatalf("tree %s k=%d: %d patterns, brute force %d\n got: %v\nwant: %v",
					root, k, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("tree %s k=%d: mismatch %s vs %s", root, k, got[i], want[i])
				}
			}
		}
	}
}

func randomTree(rng *rand.Rand, n int) *tree.Node {
	alphabet := []string{"A", "B", "C"}
	nodes := make([]*tree.Node, n)
	for i := range nodes {
		nodes[i] = tree.New(alphabet[rng.IntN(len(alphabet))])
	}
	for i := 1; i < n; i++ {
		nodes[rng.IntN(i)].AddChild(nodes[i])
	}
	return nodes[0]
}

// Property: enumeration equals brute force on random small trees.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed uint64, sz, kk uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		root := randomTree(rng, int(sz%9)+1)
		k := int(kk%4) + 1
		got := enumStringsQuiet(root, k)
		want := bruteForce(root, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func enumStringsQuiet(root *tree.Node, k int) []string {
	ps, _ := Patterns(root, k)
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}

// Property: CountPatterns equals the length of the enumeration.
func TestQuickCountMatchesEnumeration(t *testing.T) {
	f := func(seed uint64, sz, kk uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 88))
		root := randomTree(rng, int(sz%12)+1)
		k := int(kk%5) + 1
		ps, err := Patterns(root, k)
		if err != nil {
			return false
		}
		n, err := CountPatterns(root, k)
		return err == nil && n == int64(len(ps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPatternProperties(t *testing.T) {
	ps, err := Patterns(paperTree(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.Edges() < 1 || p.Edges() > 3 {
			t.Errorf("pattern %s has %d edges, want 1..3", p, p.Edges())
		}
		if p.Size() != p.Edges()+1 {
			t.Errorf("Size/Edges inconsistent for %s", p)
		}
		mat := p.ToTree()
		if mat.Size() != p.Size() {
			t.Errorf("materialized size %d != %d", mat.Size(), p.Size())
		}
	}
}

func TestEnumerationHasNoDuplicates(t *testing.T) {
	root := tree.T("A",
		tree.T("B", tree.T("C"), tree.T("C")),
		tree.T("B", tree.T("C")))
	ps, err := Patterns(root, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Patterns are embeddings: two distinct embeddings may materialize
	// to the same labeled tree (that is how counting works), but the
	// same embedding must not appear twice. Identify embeddings by the
	// data-node pointers they touch.
	seen := map[string]bool{}
	for _, p := range ps {
		key := embeddingKey(p)
		if seen[key] {
			t.Fatalf("duplicate embedding %s", p)
		}
		seen[key] = true
	}
}

func embeddingKey(p *Pattern) string {
	key := nodeID(p.Node)
	key += "("
	for _, c := range p.Children {
		key += embeddingKey(c) + ","
	}
	return key + ")"
}

func nodeID(n *tree.Node) string {
	// Pointer identity rendered via fmt is stable within a test run.
	return fmt.Sprintf("%p", n)
}

func TestSingleNodeTreeHasNoPatterns(t *testing.T) {
	ps, err := Patterns(tree.T("A"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Errorf("single node tree: %d patterns, want 0", len(ps))
	}
	n, err := CountPatterns(tree.T("A"), 3)
	if err != nil || n != 0 {
		t.Errorf("CountPatterns = %d, %v", n, err)
	}
}

func TestChainPatternCount(t *testing.T) {
	// A chain of n nodes has, for each (root, length<=k) pair, exactly
	// one pattern: sum over roots of min(k, depth-below).
	chain := tree.T("A", tree.T("B", tree.T("C", tree.T("D"))))
	// Roots: A (depth 3 below), B (2), C (1), D (0). k=2:
	// A: sizes 1,2 -> 2; B: 2; C: 1; D: 0 => 5.
	n, err := CountPatterns(chain, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("chain k=2: %d patterns, want 5", n)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewEnumerator(0); err == nil {
		t.Error("maxEdges 0 must be rejected")
	}
	if _, err := Patterns(tree.T("A"), 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := CountPatterns(tree.T("A"), 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	e, _ := NewEnumerator(3)
	if e.MaxEdges() != 3 {
		t.Error("MaxEdges accessor wrong")
	}
	if got := e.Rooted(tree.T("A", tree.T("B")), 5); got != nil {
		t.Error("Rooted beyond maxEdges must return nil")
	}
	if got := e.Rooted(tree.T("A", tree.T("B")), 0); got != nil {
		t.Error("Rooted with 0 edges must return nil")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	e, _ := NewEnumerator(3)
	count := 0
	sentinel := errors.New("stop")
	err := e.ForEach(paperTree(), func(p *Pattern) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	if count != 3 {
		t.Errorf("visited %d, want 3", count)
	}
}

func TestMemoizationConsistency(t *testing.T) {
	// Enumerating twice through the same enumerator must yield the
	// same patterns (memo hits on the second pass).
	e, _ := NewEnumerator(3)
	root := paperTree()
	var first, second []string
	e.ForEach(root, func(p *Pattern) error { first = append(first, p.String()); return nil })
	e.ForEach(root, func(p *Pattern) error { second = append(second, p.String()); return nil })
	if len(first) != len(second) {
		t.Fatalf("pass sizes differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("pass mismatch at %d: %s vs %s", i, first[i], second[i])
		}
	}
}

func TestBushyFanoutCounts(t *testing.T) {
	// A root with f children and k=1: f patterns. k=2: f single-child-
	// with-grandchild... none (children are leaves) + C(f,2) pairs.
	f := 6
	root := tree.New("R")
	for i := 0; i < f; i++ {
		root.AddChild(tree.New("c"))
	}
	n1, _ := CountPatterns(root, 1)
	if n1 != int64(f) {
		t.Errorf("k=1: %d, want %d", n1, f)
	}
	n2, _ := CountPatterns(root, 2)
	if want := int64(f + f*(f-1)/2); n2 != want {
		t.Errorf("k=2: %d, want %d", n2, want)
	}
}

func BenchmarkEnumerateTreebankLikeTree(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	root := randomTree(rng, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, _ := NewEnumerator(4)
		n := 0
		e.ForEach(root, func(p *Pattern) error { n++; return nil })
	}
}

// enumCount is a package-level sink so the zero-alloc test's callback
// does not capture stack variables (a capturing closure would allocate
// inside the measured region and hide enumerator allocations).
var enumCount int

func countPattern(p *Pattern) error { enumCount++; return nil }

// TestEnumeratorZeroAllocSteadyState pins the slab-recycling contract:
// after one warm-up tree, Reset + ForEach over a same-shaped tree
// performs zero heap allocations.
func TestEnumeratorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	root := randomTree(rng, 40)
	e, err := NewEnumerator(4)
	if err != nil {
		t.Fatal(err)
	}
	e.ForEach(root, countPattern) // warm slabs, maps and stacks
	allocs := testing.AllocsPerRun(50, func() {
		e.Reset()
		e.ForEach(root, countPattern)
	})
	if allocs != 0 {
		t.Fatalf("steady-state enumeration allocates %.1f times per tree, want 0", allocs)
	}
}

// TestResetReproducesEnumeration checks that slab rewinding cannot
// corrupt results: repeated Reset + enumeration of the same tree
// yields the identical pattern sequence.
func TestResetReproducesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	root := randomTree(rng, 25)
	e, err := NewEnumerator(4)
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	e.ForEach(root, func(p *Pattern) error {
		first = append(first, p.String())
		return nil
	})
	for round := 0; round < 3; round++ {
		e.Reset()
		i := 0
		e.ForEach(root, func(p *Pattern) error {
			if i >= len(first) || p.String() != first[i] {
				t.Fatalf("round %d: pattern %d diverged", round, i)
			}
			i++
			return nil
		})
		if i != len(first) {
			t.Fatalf("round %d: %d patterns, want %d", round, i, len(first))
		}
	}
}
