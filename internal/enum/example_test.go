package enum_test

import (
	"fmt"
	"sort"

	"sketchtree/internal/enum"
	"sketchtree/internal/tree"
)

// Paper Figure 6: the tree 7(5(3,4), 6) and its patterns rooted at
// node 7 with exactly 3 edges.
func ExampleEnumerator_Rooted() {
	root := tree.T("7",
		tree.T("5", tree.T("3"), tree.T("4")),
		tree.T("6"))
	e, _ := enum.NewEnumerator(3)
	var out []string
	for _, p := range e.Rooted(root, 3) {
		out = append(out, p.String())
	}
	sort.Strings(out)
	for _, s := range out {
		fmt.Println(s)
	}
	// Output:
	// (7 (5 (3) (4)))
	// (7 (5 (3)) (6))
	// (7 (5 (4)) (6))
}

func ExampleCountPatterns() {
	root := tree.T("A", tree.T("B", tree.T("C")), tree.T("D"))
	// Five patterns with 1..2 edges: B(C); A(B); A(D); A(B,D); A(B(C)).
	n, _ := enum.CountPatterns(root, 2)
	fmt.Println(n)
	// Output:
	// 5
}
