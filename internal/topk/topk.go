// Package topk implements SketchTree's top-k frequent pattern tracking
// (paper §5.2, Algorithm 4). The estimator variance is bounded by the
// self-join size of the sketched stream (Equation 2); deleting the
// most frequent values from the sketch — easy with AMS sketches —
// shrinks the self-join size dramatically on skewed streams.
//
// A Tracker maintains a min-heap H of estimated frequencies and a list
// L of the tracked values (a Go map plays the paper's C++ std::map).
// The delete condition is the central invariant: whenever value t is
// in L with stored frequency f_t, exactly f_t instances of t have been
// subtracted from the sketch. Query processing compensates by
// temporarily adding the deleted instances of any tracked query values
// back per cell (the d adjustment of §5.2).
package topk

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sketchtree/internal/ams"
	"sketchtree/internal/xi"
)

// entry is one tracked value: its estimated frequency (the heap key)
// and its heap position.
type entry struct {
	value uint64
	freq  int64
	pos   int
}

type entryHeap []*entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].freq < h[j].freq }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].pos = i; h[j].pos = j }
func (h *entryHeap) Push(x interface{}) { e := x.(*entry); e.pos = len(*h); *h = append(*h, e) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Tracker tracks up to k frequent values of one sketch (one virtual
// stream when combined with package vstream).
type Tracker struct {
	k       int
	sketch  *ams.Sketch
	entries map[uint64]*entry // the list L
	heap    entryHeap         // the min-heap H over L's frequencies

	// Churn diagnostics, mirrored in atomics so health snapshots can
	// read them race-free against the updating goroutine. promotions
	// counts admissions (including refreshes of already-tracked
	// values); evictions counts minimum-entry displacements by a more
	// frequent value. residency, minFreq and deletedMass mirror the
	// current list state: entry count, smallest tracked frequency (0
	// when empty), and the total instance mass currently deleted from
	// the sketch.
	promotions  atomic.Int64
	evictions   atomic.Int64
	residency   atomic.Int64
	minFreq     atomic.Int64
	deletedMass atomic.Int64

	// Hot-path scratch: Process runs once per sampled pattern
	// occurrence, so its re-estimation and eviction updates must not
	// allocate. est reuses row/bit buffers, prep re-prepares evicted
	// values, and free recycles list entries displaced earlier.
	est  *ams.Estimator
	prep *xi.Prep
	free []*entry
}

// New creates a tracker of capacity k over the sketch. The sketch must
// receive all its stream updates before Process is called for the
// corresponding value (Algorithm 1 updates the sketches first, then
// invokes top-k processing).
func New(k int, sketch *ams.Sketch) (*Tracker, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: k=%d must be positive", k)
	}
	if sketch == nil {
		return nil, fmt.Errorf("topk: nil sketch")
	}
	return &Tracker{
		k:       k,
		sketch:  sketch,
		entries: make(map[uint64]*entry),
		est:     sketch.Seeds().NewEstimator(),
		prep:    &xi.Prep{},
	}, nil
}

// newEntry takes an entry from the free list, or allocates one. In
// steady state every admission reuses an entry recycled by an earlier
// removal or eviction.
//
//lint:hotpath
func (t *Tracker) newEntry(v uint64, freq int64) *entry {
	if n := len(t.free); n > 0 {
		e := t.free[n-1]
		t.free = t.free[:n-1]
		*e = entry{value: v, freq: freq}
		return e
	}
	return &entry{value: v, freq: freq} //lint:allow hotpath allocates only until the free list warms; eviction churn reuses entries
}

// K returns the tracker capacity.
func (t *Tracker) K() int { return t.k }

// Len returns the number of currently tracked values.
func (t *Tracker) Len() int { return len(t.entries) }

// Tracked returns the stored (deleted) frequency of v and whether v is
// tracked.
func (t *Tracker) Tracked(v uint64) (int64, bool) {
	e, ok := t.entries[v]
	if !ok {
		return 0, false
	}
	return e.freq, true
}

// Process runs Algorithm 4 for one arrival of value v, whose ξ
// preparation is p. The sketch must already include the arrival.
//
// Steps: if v is tracked, its deleted instances are added back and the
// entry removed (lines 1–7); the frequency of v is then re-estimated
// from the sketch (line 8); if the estimate is positive and beats the
// minimum tracked frequency — or the tracker has room — v is
// (re)admitted: a full tracker first evicts its minimum, adding that
// value's instances back (lines 10–13), then v's estimated instances
// are deleted from the sketch and v is recorded (lines 14–18). The
// delete condition holds on exit.
//
//lint:hotpath
func (t *Tracker) Process(v uint64, p *xi.Prep) {
	if e, ok := t.entries[v]; ok {
		t.sketch.UpdatePrepared(p, e.freq) // add the deleted instances back
		heap.Remove(&t.heap, e.pos)
		delete(t.entries, v)
		t.deletedMass.Add(-e.freq)
		t.free = append(t.free, e)
	}
	// Re-estimate through the caller's preparation of v — Algorithm 4
	// line 8 scores exactly the value that just arrived, so the GF(2^m)
	// value-side work is already done.
	est := int64(math.Round(t.est.CountPrepared(t.sketch, p, nil)))
	if est <= 0 {
		t.syncMirror()
		return
	}
	if len(t.entries) >= t.k {
		if est <= t.heap[0].freq {
			t.syncMirror()
			return
		}
		// Evict the minimum: restore its instances to the sketch.
		min := heap.Pop(&t.heap).(*entry)
		delete(t.entries, min.value)
		t.sketch.Seeds().Prepare(min.value, t.prep)
		t.sketch.UpdatePrepared(t.prep, min.freq)
		t.evictions.Add(1)
		t.deletedMass.Add(-min.freq)
		t.free = append(t.free, min)
	}
	e := t.newEntry(v, est)
	heap.Push(&t.heap, e)
	t.entries[v] = e                 //lint:allow hotpath entries are bounded by k; inserts beyond k follow an eviction
	t.sketch.UpdatePrepared(p, -est) // delete the estimated instances
	t.promotions.Add(1)
	t.deletedMass.Add(est)
	t.syncMirror()
}

// syncMirror realigns the residency and min-frequency atomics with the
// list after a Process step.
func (t *Tracker) syncMirror() {
	t.residency.Store(int64(len(t.entries)))
	if len(t.heap) == 0 {
		t.minFreq.Store(0)
		return
	}
	t.minFreq.Store(t.heap[0].freq)
}

// Churn is the tracker's admission/eviction accounting: lifetime
// promotion and eviction totals plus the current list state. All
// fields are read from atomics, so Churn is safe to call concurrently
// with Process.
type Churn struct {
	Promotions  int64 // admissions, including refreshes of tracked values
	Evictions   int64 // minimum entries displaced by a more frequent value
	Residency   int   // values currently tracked
	MinFreq     int64 // smallest tracked frequency (0 when empty)
	DeletedMass int64 // instance mass currently deleted from the sketch
}

// Churn reads the tracker's churn diagnostics race-free.
func (t *Tracker) Churn() Churn {
	return Churn{
		Promotions:  t.promotions.Load(),
		Evictions:   t.evictions.Load(),
		Residency:   int(t.residency.Load()),
		MinFreq:     t.minFreq.Load(),
		DeletedMass: t.deletedMass.Load(),
	}
}

// Adjustment returns the per-cell compensation d for a query over
// values vs: d[c] = Σ_{v ∈ vs ∩ L} ξ_v(c)·f_v, to be added to the
// counters during estimation (paper §5.2: "Z_j ← ξ·(X_ij + d)").
// Returns nil when no query value is tracked.
func (t *Tracker) Adjustment(vs []uint64) []int64 {
	var adj []int64
	seeds := t.sketch.Seeds()
	seen := make(map[uint64]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			continue
		}
		seen[v] = true
		e, ok := t.entries[v]
		if !ok {
			continue
		}
		if adj == nil {
			adj = make([]int64, seeds.Cells())
		}
		p := seeds.Prepare(v, nil)
		for c := range adj {
			adj[c] += int64(seeds.Xi(c, p)) * e.freq
		}
	}
	return adj
}

// AdjustmentOne is Adjustment for a single query value — the
// single-pattern query path. An untracked value (the common case)
// returns nil without allocating.
func (t *Tracker) AdjustmentOne(v uint64) []int64 {
	e, ok := t.entries[v]
	if !ok {
		return nil
	}
	seeds := t.sketch.Seeds()
	adj := make([]int64, seeds.Cells())
	p := seeds.Prepare(v, nil)
	for c := range adj {
		adj[c] = int64(seeds.Xi(c, p)) * e.freq
	}
	return adj
}

// AdjustmentAll compensates for every tracked value; used for
// whole-stream diagnostics such as self-join size including the
// deleted heavy hitters.
func (t *Tracker) AdjustmentAll() []int64 {
	if len(t.entries) == 0 {
		return nil
	}
	vs := make([]uint64, 0, len(t.entries))
	for v := range t.entries {
		vs = append(vs, v)
	}
	return t.Adjustment(vs)
}

// RestoreAll adds every tracked value's deleted instances back into
// the sketch and clears the tracker. After RestoreAll the sketch is
// exactly what it would have been without top-k processing (tested as
// an invariant).
func (t *Tracker) RestoreAll() {
	//lint:allow determinism sketch updates commute (Update adds counts), so restore order cannot change the resulting sketch state
	for v, e := range t.entries {
		t.sketch.Update(v, e.freq)
		delete(t.entries, v)
		t.free = append(t.free, e)
	}
	t.heap = t.heap[:0]
	t.residency.Store(0)
	t.minFreq.Store(0)
	t.deletedMass.Store(0)
}

// ValueFreq is a tracked value with its stored (deleted) frequency.
type ValueFreq struct {
	Value uint64
	Freq  int64
}

// Entries returns the tracked values and their stored frequencies in
// descending frequency order (the current top-k list).
func (t *Tracker) Entries() []ValueFreq {
	out := make([]ValueFreq, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, ValueFreq{Value: e.value, Freq: e.freq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Restore reconstructs a tracker from persisted entries. The sketch
// must already hold its persisted (post-deletion) counters; Restore
// only rebuilds the heap and list, re-establishing the delete
// condition recorded at snapshot time.
func Restore(k int, sketch *ams.Sketch, entries []ValueFreq) (*Tracker, error) {
	t, err := New(k, sketch)
	if err != nil {
		return nil, err
	}
	if len(entries) > k {
		return nil, fmt.Errorf("topk: %d entries exceed capacity %d", len(entries), k)
	}
	for _, vf := range entries {
		if vf.Freq <= 0 {
			return nil, fmt.Errorf("topk: entry %d has non-positive frequency %d", vf.Value, vf.Freq)
		}
		if _, dup := t.entries[vf.Value]; dup {
			return nil, fmt.Errorf("topk: duplicate entry %d", vf.Value)
		}
		e := &entry{value: vf.Value, freq: vf.Freq}
		heap.Push(&t.heap, e)
		t.entries[vf.Value] = e
		t.deletedMass.Add(vf.Freq)
	}
	t.syncMirror()
	return t, nil
}

// MemoryBytes accounts the heap and list storage: 24 bytes of payload
// per tracked entry in the heap plus the map entry, mirroring the
// paper's "top-k data structures" term in the synopsis size.
func (t *Tracker) MemoryBytes() int {
	return len(t.entries) * (24 + 16)
}
