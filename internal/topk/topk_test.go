package topk

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sketchtree/internal/ams"
	"sketchtree/internal/gf2"
	"sketchtree/internal/xi"
)

func newSketch(t testing.TB, s1, s2 int, seed uint64) *ams.Sketch {
	t.Helper()
	fam := xi.NewBCHFamily(gf2.MustField(1<<63 | 1<<1 | 1))
	se, err := ams.NewSeeds(fam, s1, s2, rand.New(rand.NewPCG(seed, 29)))
	if err != nil {
		t.Fatal(err)
	}
	return se.NewSketch()
}

// process feeds a value arrival through sketch update + Algorithm 4,
// the order prescribed by Algorithm 1.
func process(tr *Tracker, sk *ams.Sketch, v uint64) {
	p := sk.Seeds().Prepare(v, nil)
	sk.UpdatePrepared(p, 1)
	tr.Process(v, p)
}

func TestNewValidation(t *testing.T) {
	sk := newSketch(t, 2, 2, 1)
	if _, err := New(0, sk); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := New(5, nil); err == nil {
		t.Error("nil sketch must be rejected")
	}
	tr, err := New(5, sk)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 5 || tr.Len() != 0 {
		t.Error("accessors wrong")
	}
}

func TestSingleHeavyValueTracked(t *testing.T) {
	sk := newSketch(t, 8, 5, 2)
	tr, _ := New(3, sk)
	for i := 0; i < 50; i++ {
		process(tr, sk, 42)
	}
	f, ok := tr.Tracked(42)
	if !ok {
		t.Fatal("heavy value not tracked")
	}
	if f != 50 {
		t.Errorf("tracked freq = %d, want 50 (single-value stream estimates are exact)", f)
	}
	// The sketch must now be empty: all 50 instances were deleted.
	if !sk.IsZero() {
		t.Error("sketch should be zero after deleting the only value")
	}
}

// The delete condition: restoring everything must reproduce exactly
// the sketch that plain processing (no top-k) would have produced.
func TestQuickRestoreAllMatchesPlainSketch(t *testing.T) {
	f := func(raw []uint16, kk uint8) bool {
		k := int(kk%5) + 1
		sk := newSketch(t, 4, 3, 77)
		plain := newSketch(t, 4, 3, 77) // same seed → same generators
		tr, err := New(k, sk)
		if err != nil {
			return false
		}
		for _, r := range raw {
			v := uint64(r % 20)
			process(tr, sk, v)
			plain.Update(v, 1)
		}
		tr.RestoreAll()
		for c := 0; c < sk.Seeds().Cells(); c++ {
			if sk.Counter(c) != plain.Counter(c) {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Compensated estimates: after heavy hitters are deleted, a query for
// a tracked value with the Adjustment vector must still land near the
// true count.
func TestAdjustedEstimateAccuracy(t *testing.T) {
	sk := newSketch(t, 64, 7, 3)
	tr, _ := New(2, sk)
	// Two heavy values and a light tail.
	for i := 0; i < 300; i++ {
		process(tr, sk, 1)
	}
	for i := 0; i < 200; i++ {
		process(tr, sk, 2)
	}
	for v := uint64(10); v < 30; v++ {
		for i := 0; i < 3; i++ {
			process(tr, sk, v)
		}
	}
	if tr.Len() != 2 {
		t.Fatalf("tracked %d values, want 2", tr.Len())
	}
	for _, want := range []struct {
		v uint64
		f float64
	}{{1, 300}, {2, 200}} {
		adj := tr.Adjustment([]uint64{want.v})
		if adj == nil {
			t.Fatalf("no adjustment for tracked value %d", want.v)
		}
		got := sk.EstimateCount(want.v, adj)
		if math.Abs(got-want.f) > want.f*0.2 {
			t.Errorf("adjusted estimate for %d = %v, want ≈ %v", want.v, got, want.f)
		}
	}
	// Untracked light value: no adjustment needed, estimate from the
	// lightened sketch.
	if adj := tr.Adjustment([]uint64{15}); adj != nil {
		t.Error("untracked value must not produce an adjustment")
	}
	got := sk.EstimateCount(15, nil)
	if math.Abs(got-3) > 6 {
		t.Errorf("light value estimate %v, want ≈ 3", got)
	}
}

// Deleting heavy hitters must shrink the residual self-join size —
// the entire point of the strategy.
func TestSelfJoinReduction(t *testing.T) {
	sk := newSketch(t, 64, 7, 4)
	tr, _ := New(4, sk)
	counts := map[uint64]int{1: 400, 2: 300, 3: 200, 4: 100}
	// Interleave deterministically.
	for i := 0; i < 400; i++ {
		for v, n := range counts {
			if i < n {
				process(tr, sk, v)
			}
		}
		if i < 40 {
			process(tr, sk, uint64(100+i)) // light tail
		}
	}
	// Full SJ ≈ 400²+300²+200²+100² = 300000; residual should be far
	// smaller once the four heavy values are deleted.
	resid := sk.EstimateF2(nil)
	if resid > 60000 {
		t.Errorf("residual F2 = %v, want far below 300000", resid)
	}
	if tr.Len() != 4 {
		t.Errorf("tracked %d, want 4", tr.Len())
	}
}

func TestEvictionKeepsHeaviest(t *testing.T) {
	sk := newSketch(t, 64, 7, 5)
	tr, _ := New(2, sk)
	for i := 0; i < 100; i++ {
		process(tr, sk, 1)
	}
	for i := 0; i < 90; i++ {
		process(tr, sk, 2)
	}
	for i := 0; i < 80; i++ {
		process(tr, sk, 3)
	}
	// Capacity 2: values 1 and 2 (heaviest) should be tracked; value 3
	// may transiently displace but its final arrivals re-admit the
	// heavier ones... verify the tracked set covers the two heaviest.
	ents := tr.Entries()
	if len(ents) != 2 {
		t.Fatalf("entries = %v", ents)
	}
	if ents[0].Freq < ents[1].Freq {
		t.Error("entries must be sorted descending")
	}
	for _, e := range ents {
		if e.Value == 0 || e.Freq <= 0 {
			t.Errorf("bad entry %+v", e)
		}
	}
}

func TestAdjustmentDeduplicatesQueryValues(t *testing.T) {
	sk := newSketch(t, 8, 3, 6)
	tr, _ := New(2, sk)
	for i := 0; i < 50; i++ {
		process(tr, sk, 7)
	}
	once := tr.Adjustment([]uint64{7})
	twice := tr.Adjustment([]uint64{7, 7})
	for c := range once {
		if once[c] != twice[c] {
			t.Fatal("duplicate query values must not double the adjustment")
		}
	}
}

func TestAdjustmentAllAndMemory(t *testing.T) {
	sk := newSketch(t, 8, 3, 7)
	tr, _ := New(3, sk)
	if tr.AdjustmentAll() != nil {
		t.Error("empty tracker must return nil adjustment")
	}
	for i := 0; i < 30; i++ {
		process(tr, sk, 5)
	}
	for i := 0; i < 20; i++ {
		process(tr, sk, 6)
	}
	adj := tr.AdjustmentAll()
	if adj == nil {
		t.Fatal("expected adjustment for tracked values")
	}
	// With all values tracked and compensated, F2 must look like the
	// full stream again: 30² + 20² = 1300.
	f2 := sk.EstimateF2(adj)
	if math.Abs(f2-1300) > 450 {
		t.Errorf("compensated F2 = %v, want ≈ 1300", f2)
	}
	if tr.MemoryBytes() != 2*40 {
		t.Errorf("MemoryBytes = %d, want 80", tr.MemoryBytes())
	}
}

func TestReprocessingTrackedValueKeepsDeleteCondition(t *testing.T) {
	sk := newSketch(t, 16, 5, 8)
	tr, _ := New(1, sk)
	for i := 0; i < 10; i++ {
		process(tr, sk, 3)
	}
	f1, ok := tr.Tracked(3)
	if !ok {
		t.Fatal("value 3 should be tracked")
	}
	// More arrivals of the same value: the stored frequency must grow
	// with the stream (single-value stream → exact estimates).
	for i := 0; i < 10; i++ {
		process(tr, sk, 3)
	}
	f2, ok := tr.Tracked(3)
	if !ok || f2 <= f1 {
		t.Errorf("stored frequency %d should exceed earlier %d", f2, f1)
	}
	if f2 != 20 {
		t.Errorf("stored frequency = %d, want 20", f2)
	}
	if !sk.IsZero() {
		t.Error("single-value stream fully tracked: sketch must be zero")
	}
}

func BenchmarkProcess(b *testing.B) {
	sk := newSketch(b, 25, 7, 9)
	tr, _ := New(50, sk)
	rng := rand.New(rand.NewPCG(10, 11))
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(rng.ExpFloat64() * 20) // skewed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vals[i%len(vals)]
		p := sk.Seeds().Prepare(v, nil)
		sk.UpdatePrepared(p, 1)
		tr.Process(v, p)
	}
}

func TestRestoreRebuildsTracker(t *testing.T) {
	sk := newSketch(t, 8, 5, 20)
	tr, _ := New(3, sk)
	for i := 0; i < 40; i++ {
		process(tr, sk, 5)
	}
	for i := 0; i < 25; i++ {
		process(tr, sk, 6)
	}
	entries := tr.Entries()
	// Persist counters + entries, rebuild, and compare behaviour.
	re, err := sk.Seeds().SketchFromCounters(sk.Counters())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Restore(3, re, entries)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != tr.Len() {
		t.Fatalf("restored %d entries, want %d", rt.Len(), tr.Len())
	}
	for _, vf := range entries {
		f, ok := rt.Tracked(vf.Value)
		if !ok || f != vf.Freq {
			t.Errorf("entry %d: restored freq %d, want %d", vf.Value, f, vf.Freq)
		}
	}
	// Adjustment vectors must match exactly.
	a := tr.Adjustment([]uint64{5, 6})
	b := rt.Adjustment([]uint64{5, 6})
	for c := range a {
		if a[c] != b[c] {
			t.Fatal("restored adjustment differs")
		}
	}
	// Continued processing keeps the delete condition: restore-all
	// equals the plain sketch.
	for i := 0; i < 10; i++ {
		process(rt, re, 7)
	}
	rt.RestoreAll()
	plain := newSketch(t, 8, 5, 20)
	for i := 0; i < 40; i++ {
		plain.Update(5, 1)
	}
	for i := 0; i < 25; i++ {
		plain.Update(6, 1)
	}
	for i := 0; i < 10; i++ {
		plain.Update(7, 1)
	}
	for c := 0; c < plain.Seeds().Cells(); c++ {
		if re.Counter(c) != plain.Counter(c) {
			t.Fatal("restored tracker breaks the delete condition")
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	sk := newSketch(t, 2, 2, 21)
	if _, err := Restore(1, sk, []ValueFreq{{1, 5}, {2, 3}}); err == nil {
		t.Error("entries beyond capacity must fail")
	}
	if _, err := Restore(3, sk, []ValueFreq{{1, 0}}); err == nil {
		t.Error("non-positive frequency must fail")
	}
	if _, err := Restore(3, sk, []ValueFreq{{1, 5}, {1, 3}}); err == nil {
		t.Error("duplicate values must fail")
	}
	if _, err := Restore(0, sk, nil); err == nil {
		t.Error("invalid capacity must fail")
	}
}

// TestProcessZeroAlloc pins the Algorithm 4 hot path at zero heap
// allocations per arrival once the tracker has warmed up: the
// re-estimation reuses the tracker's Estimator scratch, evictions
// re-prepare through the tracker's Prep, and list entries come off the
// free list.
func TestProcessZeroAlloc(t *testing.T) {
	sk := newSketch(t, 8, 5, 23)
	tr, err := New(4, sk)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: fill the tracker and force evictions so the free list
	// and heap reach steady-state capacity.
	vals := []uint64{3, 5, 7, 11, 13, 17}
	for i := 0; i < 30; i++ {
		for _, v := range vals {
			process(tr, sk, v)
		}
	}
	p := &xi.Prep{}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		v := vals[i%len(vals)]
		i++
		sk.Seeds().Prepare(v, p)
		sk.UpdatePrepared(p, 1)
		tr.Process(v, p)
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %.1f times per arrival, want 0", allocs)
	}
}
