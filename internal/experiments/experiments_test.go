package experiments

import (
	"math"
	"testing"

	"sketchtree/internal/workload"
)

// tinyScale keeps the full experiment pipeline under a second.
func tinyScale() Scale {
	return Scale{
		Name:          "tiny",
		TreebankTrees: 120, DBLPTrees: 200,
		TreebankK: 3, DBLPK: 3,
		QueriesPerRange: 5, SumQueries: 30, ProductQueries: 20,
		Runs:       1,
		S1Treebank: []int{25}, S1DBLP: []int{25},
		TopKsTreebank: []int{1, 20}, TopKsDBLP: []int{1, 20},
		VirtualStreams: 31, S2: 5,
		Seed: 7, ReprThreshold: 2,
	}
}

func prepare(t *testing.T, dataset string) (*Bundle, Scale) {
	t.Helper()
	sc := tinyScale()
	b, err := Prepare(sc, dataset)
	if err != nil {
		t.Fatal(err)
	}
	return b, sc
}

func TestPrepareUnknownDataset(t *testing.T) {
	if _, err := Prepare(tinyScale(), "NOPE"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestPrepareBundles(t *testing.T) {
	for _, ds := range []string{"TREEBANK", "DBLP"} {
		b, _ := prepare(t, ds)
		if b.Catalog.Total() <= 0 || b.Catalog.Distinct() <= 0 {
			t.Fatalf("%s: empty catalog", ds)
		}
		if b.RangeScale < 1 {
			t.Errorf("%s: range scale %v < 1", ds, b.RangeScale)
		}
		if len(b.Buckets) != 4 {
			t.Fatalf("%s: %d buckets", ds, len(b.Buckets))
		}
		total := 0
		for _, bk := range b.Buckets {
			total += len(bk.Queries)
			for _, q := range bk.Queries {
				if q.Count <= 0 || q.Pattern == nil {
					t.Fatalf("%s: bad query %+v", ds, q)
				}
				if !bk.Range.Contains(q.Selectivity) {
					t.Fatalf("%s: query sel %v outside %v", ds, q.Selectivity, bk.Range)
				}
			}
		}
		if total == 0 {
			t.Errorf("%s: workload is empty across all ranges", ds)
		}
	}
}

func TestTable1(t *testing.T) {
	b, sc := prepare(t, "TREEBANK")
	row := Table1(b, sc)
	if row.Dataset != "TREEBANK" || row.Trees != sc.TreebankTrees || row.K != sc.TreebankK {
		t.Errorf("row identity wrong: %+v", row)
	}
	if row.DistinctPatterns <= 0 || row.TotalPatterns < int64(row.DistinctPatterns) {
		t.Errorf("pattern counts inconsistent: %+v", row)
	}
	if row.SelfJoinSize < row.TotalPatterns {
		t.Errorf("self-join below stream length: %+v", row)
	}
	if row.BaselineMemBytes <= 0 {
		t.Errorf("baseline memory: %+v", row)
	}
}

func TestFigure8(t *testing.T) {
	b, _ := prepare(t, "DBLP")
	res := Figure8(b)
	if len(res.Counts) != len(b.Buckets) {
		t.Fatal("count vector size mismatch")
	}
	for i, bk := range b.Buckets {
		if res.Counts[i] != len(bk.Queries) {
			t.Errorf("range %d: %d != %d", i, res.Counts[i], len(bk.Queries))
		}
	}
	if res.MaxCount < res.MinCount {
		t.Errorf("count range inverted: %+v", res)
	}
}

func TestFigure9PatternsGrowWithK(t *testing.T) {
	b, sc := prepare(t, "TREEBANK")
	pts, err := Figure9(b, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Patterns <= pts[i-1].Patterns {
			t.Errorf("patterns must grow with k: %+v", pts)
		}
	}
	// k = K must agree with the catalog's stream length.
	if pts[2].Patterns != b.Catalog.Total() {
		t.Errorf("k=%d patterns %d != catalog total %d", 3, pts[2].Patterns, b.Catalog.Total())
	}
	for _, p := range pts {
		if p.Seconds < 0 {
			t.Errorf("negative time: %+v", p)
		}
	}
}

func TestErrorSweep(t *testing.T) {
	b, sc := prepare(t, "DBLP")
	res, err := ErrorSweep(b, sc, 25, []int{1, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgRelErr) != 2 {
		t.Fatalf("topk dimension wrong")
	}
	for ti := range res.AvgRelErr {
		if len(res.AvgRelErr[ti]) != len(b.Buckets) {
			t.Fatalf("range dimension wrong")
		}
		for _, e := range res.AvgRelErr[ti] {
			if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
				t.Errorf("bad error value %v", e)
			}
		}
	}
	if res.MemoryBytes[1] <= res.MemoryBytes[0] {
		t.Errorf("memory must grow with top-k: %v", res.MemoryBytes)
	}
	for _, s := range res.Seconds {
		if s <= 0 {
			t.Errorf("non-positive stream time %v", s)
		}
	}
}

// The headline behaviour of Figure 10(c,d): on the skewed DBLP stream,
// a meaningful top-k budget must not be worse than (virtually) no
// tracking, averaged across ranges.
func TestTopKDirectionOnDBLP(t *testing.T) {
	b, sc := prepare(t, "DBLP")
	sc.Runs = 2
	res, err := ErrorSweep(b, sc, 50, []int{1, 30})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	m1, m30 := mean(res.AvgRelErr[0]), mean(res.AvgRelErr[1])
	if m30 > m1*1.5+0.05 {
		t.Errorf("top-k=30 error %v should not be far above top-k=1 error %v", m30, m1)
	}
}

func TestSumSweep(t *testing.T) {
	b, sc := prepare(t, "TREEBANK")
	res, err := SumSweep(b, sc, 25, []int{1, 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "SUM" {
		t.Error("kind wrong")
	}
	n := 0
	for _, h := range res.Histogram {
		n += h
	}
	if n != sc.SumQueries {
		t.Errorf("histogram covers %d of %d queries", n, sc.SumQueries)
	}
	for _, row := range res.AvgRelErr {
		for _, e := range row {
			if math.IsNaN(e) || e < 0 {
				t.Errorf("bad error %v", e)
			}
		}
	}
}

func TestProductSweep(t *testing.T) {
	b, sc := prepare(t, "TREEBANK")
	res, err := ProductSweep(b, sc, 25, []int{20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "PRODUCT" {
		t.Error("kind wrong")
	}
	n := 0
	for _, h := range res.Histogram {
		n += h
	}
	if n != sc.ProductQueries {
		t.Errorf("histogram covers %d of %d queries", n, sc.ProductQueries)
	}
}

func TestCostSweep(t *testing.T) {
	b, sc := prepare(t, "TREEBANK")
	pts, err := CostSweep(b, sc, [][2]int{{5, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.PatternsPerSec <= 0 {
			t.Errorf("bad cost point %+v", p)
		}
	}
}

func TestAdjustRanges(t *testing.T) {
	out, scale := adjustRanges([]workload.Range{{Lo: 0.00001, Hi: 0.00002}}, 1000, 3)
	if scale < 100 {
		t.Errorf("scale %v too small for total 1000", scale)
	}
	if out[0].Lo*1000 < 5 {
		t.Errorf("adjusted range %v still below min count", out[0])
	}
	// Paper-scale totals need no adjustment.
	out, scale = adjustRanges([]workload.Range{{Lo: 0.00001, Hi: 0.00002}}, 50_000_000, 3)
	if scale != 1 {
		t.Errorf("paper-scale stream rescaled by %v", scale)
	}
	if out[0].Lo != 0.00001 {
		t.Errorf("range changed: %v", out[0])
	}
}

func TestAblations(t *testing.T) {
	b, sc := prepare(t, "DBLP")
	res, err := Ablations(b, sc, 25, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d ablations, want 4", len(res))
	}
	for _, a := range res {
		if len(a.Variants) != 2 {
			t.Fatalf("%s: %d variants", a.Name, len(a.Variants))
		}
		for _, v := range a.Variants {
			if v.Seconds <= 0 || v.Memory <= 0 {
				t.Errorf("%s/%s: bad cost fields %+v", a.Name, v.Label, v)
			}
			if math.IsNaN(v.AvgRelErr) || v.AvgRelErr < 0 {
				t.Errorf("%s/%s: bad error %v", a.Name, v.Label, v.AvgRelErr)
			}
		}
	}
	// Directional claims on the skewed DBLP stream: virtual streams
	// and top-k each reduce error materially.
	vs := res[0]
	if vs.Variants[1].AvgRelErr > vs.Variants[0].AvgRelErr {
		t.Errorf("virtual streams did not help: %+v", vs.Variants)
	}
	tk := res[1]
	if tk.Variants[1].AvgRelErr > tk.Variants[0].AvgRelErr {
		t.Errorf("top-k did not help: %+v", tk.Variants)
	}
	// Degree-16 fingerprints collide: error must exceed degree-61.
	fp := res[3]
	if fp.Variants[0].AvgRelErr <= fp.Variants[1].AvgRelErr {
		t.Errorf("collisions did not hurt: %+v", fp.Variants)
	}
}

func TestScaleFunctionsMatchPaperParameters(t *testing.T) {
	sc := ScalePaper()
	if sc.TreebankTrees != 28699 || sc.DBLPTrees != 98061 {
		t.Errorf("paper tree counts wrong: %+v", sc)
	}
	if sc.TreebankK != 6 || sc.DBLPK != 4 {
		t.Errorf("paper k values wrong: %+v", sc)
	}
	if sc.SumQueries != 10000 || sc.ProductQueries != 6811 {
		t.Errorf("paper workload sizes wrong: %+v", sc)
	}
	if sc.VirtualStreams != 229 || sc.S2 != 7 || sc.Runs != 5 {
		t.Errorf("paper sketch parameters wrong: %+v", sc)
	}
	for _, s := range [][]int{sc.S1Treebank, sc.S1DBLP} {
		if len(s) != 2 {
			t.Errorf("s1 sweep wrong: %v", s)
		}
	}
	if len(sc.TopKsTreebank) != 6 || sc.TopKsTreebank[0] != 50 || sc.TopKsTreebank[5] != 300 {
		t.Errorf("treebank top-k sweep wrong: %v", sc.TopKsTreebank)
	}
	if len(sc.TopKsDBLP) != 4 || sc.TopKsDBLP[0] != 1 {
		t.Errorf("dblp top-k sweep wrong: %v", sc.TopKsDBLP)
	}
	// Smaller scales must be internally consistent.
	for _, s := range []Scale{ScaleSmall(), ScaleMedium()} {
		if s.TreebankTrees <= 0 || s.Runs <= 0 || s.S2 <= 0 {
			t.Errorf("scale %s malformed: %+v", s.Name, s)
		}
	}
}
