// Package experiments regenerates every table and figure of the
// paper's evaluation (§7) against the synthetic TREEBANK and DBLP
// streams: Table 1 (dataset statistics), Figure 8 (query workloads),
// Figure 9 (EnumTree cost), Figure 10 (relative error vs top-k size
// and s1), Figures 11 and 12 (SUM and PRODUCT workloads), and the
// §7.6/§7.7 processing-cost ratios.
//
// Every experiment is parameterized by a Scale so the same code runs
// as a seconds-long benchmark or as the paper-scale sweep.
package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"sketchtree/internal/core"
	"sketchtree/internal/datagen"
	"sketchtree/internal/enum"
	"sketchtree/internal/tree"
	"sketchtree/internal/workload"
)

// Scale sizes an experiment run.
type Scale struct {
	Name string

	TreebankTrees int
	DBLPTrees     int
	TreebankK     int // max pattern edges (paper: 6)
	DBLPK         int // (paper: 4)

	QueriesPerRange int // single-pattern queries sampled per selectivity range
	SumQueries      int // paper: 10,000
	ProductQueries  int // paper: 6,811
	Runs            int // paper: 5 (averaged)

	S1Treebank    []int // paper: 25, 50
	S1DBLP        []int // paper: 50, 75
	TopKsTreebank []int // paper: 50..300 step 50
	TopKsDBLP     []int // paper: 1, 50, 100, 150

	VirtualStreams int // paper: 229
	S2             int // paper: 7 (δ = 0.1)
	Seed           uint64
	ReprThreshold  int64
}

// ScaleTiny is for integration tests of the harness itself: the whole
// pipeline in well under a second.
func ScaleTiny() Scale {
	return Scale{
		Name:          "tiny",
		TreebankTrees: 120, DBLPTrees: 200,
		TreebankK: 3, DBLPK: 3,
		QueriesPerRange: 5, SumQueries: 30, ProductQueries: 20,
		Runs:       1,
		S1Treebank: []int{10}, S1DBLP: []int{10},
		TopKsTreebank: []int{1, 10}, TopKsDBLP: []int{1, 10},
		VirtualStreams: 31, S2: 5,
		Seed: 7, ReprThreshold: 2,
	}
}

// ScaleSmall finishes in a few seconds; used by tests and the default
// `go test -bench` run.
func ScaleSmall() Scale {
	return Scale{
		Name:          "small",
		TreebankTrees: 400, DBLPTrees: 800,
		TreebankK: 4, DBLPK: 3,
		QueriesPerRange: 10, SumQueries: 100, ProductQueries: 80,
		Runs:       2,
		S1Treebank: []int{25, 50}, S1DBLP: []int{50, 75},
		TopKsTreebank: []int{10, 50, 100}, TopKsDBLP: []int{1, 25, 50},
		VirtualStreams: 59, S2: 7,
		Seed: 42, ReprThreshold: 3,
	}
}

// ScaleMedium is the default for cmd/experiments (minutes).
func ScaleMedium() Scale {
	return Scale{
		Name:          "medium",
		TreebankTrees: 3000, DBLPTrees: 6000,
		TreebankK: 5, DBLPK: 4,
		QueriesPerRange: 25, SumQueries: 1000, ProductQueries: 700,
		Runs:       2,
		S1Treebank: []int{25, 50}, S1DBLP: []int{50, 75},
		TopKsTreebank: []int{50, 100, 150, 200, 250, 300}, TopKsDBLP: []int{1, 50, 100, 150},
		VirtualStreams: 229, S2: 7,
		Seed: 42, ReprThreshold: 3,
	}
}

// ScalePaper matches the paper's dataset sizes (hours).
func ScalePaper() Scale {
	return Scale{
		Name:          "paper",
		TreebankTrees: 28699, DBLPTrees: 98061,
		TreebankK: 6, DBLPK: 4,
		QueriesPerRange: 50, SumQueries: 10000, ProductQueries: 6811,
		Runs:       5,
		S1Treebank: []int{25, 50}, S1DBLP: []int{50, 75},
		TopKsTreebank: []int{50, 100, 150, 200, 250, 300}, TopKsDBLP: []int{1, 50, 100, 150},
		VirtualStreams: 229, S2: 7,
		Seed: 42, ReprThreshold: 3,
	}
}

// Bundle is a prepared dataset: a replayable source, the ground-truth
// catalog, and the selectivity-bucketed query workload.
type Bundle struct {
	Name      string
	K         int
	NewSource func() *datagen.Source
	Catalog   *workload.Catalog
	Ranges    []workload.Range
	Buckets   []workload.Bucket

	// RangeScale is the factor the paper's selectivity boundaries were
	// multiplied by to fit the (possibly scaled-down) stream length; 1
	// at paper scale.
	RangeScale float64
}

// Prepare builds the bundle for "TREEBANK" or "DBLP" under the scale.
func Prepare(sc Scale, dataset string) (*Bundle, error) {
	var b Bundle
	var ranges []workload.Range
	switch dataset {
	case "TREEBANK":
		b.Name, b.K = "TREEBANK", sc.TreebankK
		b.NewSource = func() *datagen.Source { return datagen.Treebank(sc.Seed, sc.TreebankTrees) }
		ranges = workload.TreebankRanges()
	case "DBLP":
		b.Name, b.K = "DBLP", sc.DBLPK
		b.NewSource = func() *datagen.Source { return datagen.DBLP(sc.Seed, sc.DBLPTrees) }
		ranges = workload.DBLPRanges()
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	mapper, err := core.NewMapper(61, sc.Seed)
	if err != nil {
		return nil, err
	}
	cat := workload.NewCatalog(sc.ReprThreshold)
	src := b.NewSource()
	err = src.ForEach(func(t *tree.Tree) error {
		en, err := enum.NewEnumerator(b.K)
		if err != nil {
			return err
		}
		return en.ForEach(t.Root, func(p *enum.Pattern) error {
			mt := p.ToTree()
			cat.Add(mapper.PatternValue(mt), func() string { return mt.String() })
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	b.Catalog = cat
	b.Ranges, b.RangeScale = adjustRanges(ranges, cat.Total(), sc.ReprThreshold)
	rng := rand.New(rand.NewPCG(sc.Seed, 0xb0cce7))
	b.Buckets, err = cat.Select(b.Ranges, sc.QueriesPerRange, rng)
	if err != nil {
		return nil, err
	}
	return &b, nil
}

// adjustRanges rescales the paper's selectivity boundaries so the
// lowest range still corresponds to counts safely above the catalog's
// representation threshold on a scaled-down stream. At paper scale the
// factor is 1.
func adjustRanges(rs []workload.Range, total int64, threshold int64) ([]workload.Range, float64) {
	minCount := float64(threshold) + 2
	scale := 1.0
	for rs[0].Lo*scale*float64(total) < minCount && scale < 1e9 {
		scale *= 10
	}
	out := make([]workload.Range, len(rs))
	for i, r := range rs {
		out[i] = workload.Range{Lo: r.Lo * scale, Hi: r.Hi * scale}
	}
	return out, scale
}

// engineConfig assembles the engine configuration for a sweep point.
func engineConfig(b *Bundle, sc Scale, s1, topk, independence int, run int) core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxPatternEdges = b.K
	cfg.S1 = s1
	cfg.S2 = sc.S2
	cfg.VirtualStreams = sc.VirtualStreams
	cfg.TopK = topk
	cfg.Independence = independence
	cfg.Seed = sc.Seed + uint64(run)*0x9e3779b97f4a7c15
	return cfg
}

// buildEngine streams the bundle into a fresh engine and reports the
// wall-clock stream-processing time.
func buildEngine(b *Bundle, cfg core.Config) (*core.Engine, time.Duration, error) {
	e, err := core.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	src := b.NewSource()
	start := time.Now()
	err = src.ForEach(e.AddTree)
	return e, time.Since(start), err
}

// relErr is the paper's §7.5 metric with the sanity bound for negative
// estimates.
func relErr(approx, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	approx = core.SanityBound(approx, actual)
	return math.Abs(approx-actual) / actual
}

// --- Table 1 ---

// Table1Row is one dataset's row of Table 1, extended with the memory
// a deterministic counter baseline would need.
type Table1Row struct {
	Dataset          string
	Trees            int
	K                int
	DistinctPatterns int
	TotalPatterns    int64
	SelfJoinSize     int64
	BaselineMemBytes int64 // lg(total) bits per distinct counter
}

// Table1 computes the row for a prepared bundle.
func Table1(b *Bundle, sc Scale) Table1Row {
	trees := sc.TreebankTrees
	if b.Name == "DBLP" {
		trees = sc.DBLPTrees
	}
	bits := int64(math.Ceil(math.Log2(float64(b.Catalog.Total() + 1))))
	return Table1Row{
		Dataset:          b.Name,
		Trees:            trees,
		K:                b.K,
		DistinctPatterns: b.Catalog.Distinct(),
		TotalPatterns:    b.Catalog.Total(),
		SelfJoinSize:     b.Catalog.SelfJoinSize(),
		BaselineMemBytes: int64(b.Catalog.Distinct()) * bits / 8,
	}
}

// --- Figure 8 ---

// Fig8Result is the query-workload histogram for one dataset.
type Fig8Result struct {
	Dataset  string
	Ranges   []workload.Range
	Counts   []int
	MinCount int64
	MaxCount int64
}

// Figure8 summarizes the single-pattern workload of a bundle.
func Figure8(b *Bundle) Fig8Result {
	res := Fig8Result{Dataset: b.Name, Ranges: b.Ranges, Counts: make([]int, len(b.Buckets))}
	res.MinCount = math.MaxInt64
	for i, bk := range b.Buckets {
		res.Counts[i] = len(bk.Queries)
		for _, q := range bk.Queries {
			if q.Count < res.MinCount {
				res.MinCount = q.Count
			}
			if q.Count > res.MaxCount {
				res.MaxCount = q.Count
			}
		}
	}
	if res.MinCount == math.MaxInt64 {
		res.MinCount = 0
	}
	return res
}

// --- Figure 9 ---

// EnumPoint is one k in the EnumTree sweep: total patterns generated
// across the stream and total wall-clock time including sequence
// construction and fingerprinting (as the paper measures, §7.4).
type EnumPoint struct {
	K        int
	Patterns int64
	Seconds  float64
}

// Figure9 runs the EnumTree cost sweep for k = 1..maxK.
func Figure9(b *Bundle, sc Scale, maxK int) ([]EnumPoint, error) {
	mapper, err := core.NewMapper(61, sc.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]EnumPoint, 0, maxK)
	for k := 1; k <= maxK; k++ {
		src := b.NewSource()
		var patterns int64
		start := time.Now()
		err := src.ForEach(func(t *tree.Tree) error {
			en, err := enum.NewEnumerator(k)
			if err != nil {
				return err
			}
			return en.ForEach(t.Root, func(p *enum.Pattern) error {
				_ = mapper.PatternValue(p.ToTree())
				patterns++
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		out = append(out, EnumPoint{K: k, Patterns: patterns, Seconds: time.Since(start).Seconds()})
	}
	return out, nil
}

// --- Figure 10 ---

// ErrorSweepResult holds average relative errors per (top-k size,
// selectivity range) for one dataset and s1, as one panel of Figure 10.
type ErrorSweepResult struct {
	Dataset     string
	S1          int
	TopKs       []int
	Ranges      []workload.Range
	AvgRelErr   [][]float64 // [topk index][range index]
	MemoryBytes []int       // synopsis size per top-k setting
	Seconds     []float64   // stream-processing time per top-k setting (first run)
}

// ErrorSweep runs the Figure 10 experiment: for each top-k size,
// stream the dataset into a fresh engine (averaged over sc.Runs
// independent seed draws) and measure the average relative error of
// the single-pattern workload per selectivity range.
func ErrorSweep(b *Bundle, sc Scale, s1 int, topks []int) (*ErrorSweepResult, error) {
	res := &ErrorSweepResult{
		Dataset: b.Name, S1: s1, TopKs: topks, Ranges: b.Ranges,
		AvgRelErr:   make([][]float64, len(topks)),
		MemoryBytes: make([]int, len(topks)),
		Seconds:     make([]float64, len(topks)),
	}
	for ti, topk := range topks {
		errSum := make([]float64, len(b.Buckets))
		errN := make([]int, len(b.Buckets))
		for run := 0; run < sc.Runs; run++ {
			e, dur, err := buildEngine(b, engineConfig(b, sc, s1, topk, 4, run))
			if err != nil {
				return nil, err
			}
			if run == 0 {
				res.Seconds[ti] = dur.Seconds()
				res.MemoryBytes[ti] = e.MemoryBytes().Total()
			}
			for bi, bk := range b.Buckets {
				for _, q := range bk.Queries {
					est, err := e.EstimateOrdered(q.Pattern)
					if err != nil {
						return nil, err
					}
					errSum[bi] += relErr(est, float64(q.Count))
					errN[bi]++
				}
			}
		}
		res.AvgRelErr[ti] = make([]float64, len(b.Buckets))
		for bi := range b.Buckets {
			if errN[bi] > 0 {
				res.AvgRelErr[ti][bi] = errSum[bi] / float64(errN[bi])
			}
		}
	}
	return res, nil
}

// --- Figures 11 & 12 ---

// CompositeResult holds the workload histogram (Figure 11) and the
// error sweep (Figure 12) for the SUM or PRODUCT workload.
type CompositeResult struct {
	Kind      string // "SUM" or "PRODUCT"
	Dataset   string
	S1        int
	TopKs     []int
	Ranges    []workload.Range // auto-derived selectivity buckets
	Histogram []int
	AvgRelErr [][]float64 // [topk index][range index]
}

// SumSweep runs the §7.8 experiment: SUM-of-three-counts queries
// answered with the Theorem-2 set estimator.
func SumSweep(b *Bundle, sc Scale, s1 int, topks []int) (*CompositeResult, error) {
	rng := rand.New(rand.NewPCG(sc.Seed, 0x5c3))
	qs, err := workload.MakeSumWorkload(b.Buckets, sc.SumQueries, 3, b.Catalog.Total(), rng)
	if err != nil {
		return nil, err
	}
	sels := make([]float64, len(qs))
	for i, q := range qs {
		sels[i] = q.Selectivity
	}
	ranges := workload.AutoRanges(sels, 4)
	res := &CompositeResult{
		Kind: "SUM", Dataset: b.Name, S1: s1, TopKs: topks,
		Ranges: ranges, Histogram: workload.Histogram(sels, ranges),
		AvgRelErr: make([][]float64, len(topks)),
	}
	for ti, topk := range topks {
		errSum := make([]float64, len(ranges))
		errN := make([]int, len(ranges))
		for run := 0; run < sc.Runs; run++ {
			e, _, err := buildEngine(b, engineConfig(b, sc, s1, topk, 4, run))
			if err != nil {
				return nil, err
			}
			for _, q := range qs {
				pats := make([]*tree.Node, len(q.Queries))
				for j, sq := range q.Queries {
					pats[j] = sq.Pattern
				}
				est, err := e.EstimateOrderedSet(pats)
				if err != nil {
					return nil, err
				}
				re := relErr(est, float64(q.Count))
				for ri, r := range ranges {
					if r.Contains(q.Selectivity) {
						errSum[ri] += re
						errN[ri]++
						break
					}
				}
			}
		}
		res.AvgRelErr[ti] = make([]float64, len(ranges))
		for ri := range ranges {
			if errN[ri] > 0 {
				res.AvgRelErr[ti][ri] = errSum[ri] / float64(errN[ri])
			}
		}
	}
	return res, nil
}

// ProductSweep runs the §7.9 experiment: PRODUCT-of-two-counts queries
// answered with the §4 expression estimator (engines use 6-wise ξ; the
// Appendix-B variance analysis needs at least 5-wise).
func ProductSweep(b *Bundle, sc Scale, s1 int, topks []int) (*CompositeResult, error) {
	rng := rand.New(rand.NewPCG(sc.Seed, 0x9d0d))
	qs, err := workload.MakeProductWorkload(b.Buckets, sc.ProductQueries, 2, b.Catalog.Total(), rng)
	if err != nil {
		return nil, err
	}
	sels := make([]float64, len(qs))
	for i, q := range qs {
		sels[i] = q.Selectivity
	}
	ranges := workload.AutoRanges(sels, 4)
	res := &CompositeResult{
		Kind: "PRODUCT", Dataset: b.Name, S1: s1, TopKs: topks,
		Ranges: ranges, Histogram: workload.Histogram(sels, ranges),
		AvgRelErr: make([][]float64, len(topks)),
	}
	for ti, topk := range topks {
		errSum := make([]float64, len(ranges))
		errN := make([]int, len(ranges))
		for run := 0; run < sc.Runs; run++ {
			e, _, err := buildEngine(b, engineConfig(b, sc, s1, topk, 6, run))
			if err != nil {
				return nil, err
			}
			for _, q := range qs {
				expr := core.Expr(core.CountOf{Pattern: q.Queries[0].Pattern})
				for _, sq := range q.Queries[1:] {
					expr = core.ExprMul{L: expr, R: core.CountOf{Pattern: sq.Pattern}}
				}
				est, err := e.EstimateExpr(expr)
				if err != nil {
					return nil, err
				}
				re := relErr(est, q.Product)
				for ri, r := range ranges {
					if r.Contains(q.Selectivity) {
						errSum[ri] += re
						errN[ri]++
						break
					}
				}
			}
		}
		res.AvgRelErr[ti] = make([]float64, len(ranges))
		for ri := range ranges {
			if errN[ri] > 0 {
				res.AvgRelErr[ti][ri] = errSum[ri] / float64(errN[ri])
			}
		}
	}
	return res, nil
}

// --- Processing cost (§7.6/§7.7 text) ---

// CostPoint is the stream-processing cost of one configuration.
type CostPoint struct {
	S1, TopK       int
	Seconds        float64
	PatternsPerSec float64
}

// CostSweep measures stream-processing time across (s1, topk)
// configurations; the paper reports the ratios (≈2.3× for doubling s1
// on TREEBANK, ≈1.6× for 50→75 on DBLP, and only a few percent for
// growing top-k).
func CostSweep(b *Bundle, sc Scale, points [][2]int) ([]CostPoint, error) {
	out := make([]CostPoint, 0, len(points))
	for _, pt := range points {
		e, dur, err := buildEngine(b, engineConfig(b, sc, pt[0], pt[1], 4, 0))
		if err != nil {
			return nil, err
		}
		sec := dur.Seconds()
		out = append(out, CostPoint{
			S1: pt[0], TopK: pt[1], Seconds: sec,
			PatternsPerSec: float64(e.PatternsProcessed()) / sec,
		})
	}
	return out, nil
}
