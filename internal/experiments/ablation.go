package experiments

import (
	"fmt"

	"sketchtree/internal/core"
)

// AblationVariant is one configuration of an ablation with its
// outcome.
type AblationVariant struct {
	Label     string
	AvgRelErr float64 // mean over ranges and queries; -1 when n/a
	Seconds   float64 // stream-processing time
	Memory    int     // synopsis bytes
}

// AblationResult contrasts design-choice variants on the same stream
// and workload.
type AblationResult struct {
	Name     string
	Dataset  string
	Variants []AblationVariant
}

// meanOverCells averages an error matrix.
func meanOverCells(m [][]float64) float64 {
	s, n := 0.0, 0
	for _, row := range m {
		for _, e := range row {
			s += e
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// runVariant streams the bundle under cfg and evaluates the
// single-pattern workload.
func runVariant(b *Bundle, label string, cfg core.Config) (AblationVariant, error) {
	e, dur, err := buildEngine(b, cfg)
	if err != nil {
		return AblationVariant{}, err
	}
	errSum, errN := 0.0, 0
	for _, bk := range b.Buckets {
		for _, q := range bk.Queries {
			est, err := e.EstimateOrdered(q.Pattern)
			if err != nil {
				return AblationVariant{}, err
			}
			errSum += relErr(est, float64(q.Count))
			errN++
		}
	}
	v := AblationVariant{Label: label, Seconds: dur.Seconds(), Memory: e.MemoryBytes().Total()}
	if errN > 0 {
		v.AvgRelErr = errSum / float64(errN)
	}
	return v, nil
}

// Ablations runs the design-choice studies DESIGN.md calls out, all on
// the same bundle and workload:
//
//   - virtual streams off (p=1) vs on — §5.3's self-join reduction;
//   - top-k tracking off vs on — §5.2's heavy-hitter deletion;
//   - BCH 4-wise vs polynomial 6-wise ξ — the stream-time price of
//     enabling product expressions;
//   - fingerprint degree 12 vs 61 — forced collisions vs none; a
//     12-bit mapping has only 4096 slots, far fewer than the distinct
//     patterns, so patterns alias and counts bleed into each other.
func Ablations(b *Bundle, sc Scale, s1, topk int) ([]AblationResult, error) {
	var out []AblationResult

	base := func() core.Config { return engineConfig(b, sc, s1, topk, 4, 0) }

	// Virtual streams.
	one := base()
	one.VirtualStreams = 1
	v1, err := runVariant(b, "p=1", one)
	if err != nil {
		return nil, err
	}
	vp, err := runVariant(b, fmt.Sprintf("p=%d", sc.VirtualStreams), base())
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "virtual streams (§5.3)", Dataset: b.Name,
		Variants: []AblationVariant{v1, vp},
	})

	// Top-k deletion.
	off := base()
	off.TopK = 0
	voff, err := runVariant(b, "top-k off", off)
	if err != nil {
		return nil, err
	}
	von, err := runVariant(b, fmt.Sprintf("top-k %d", topk), base())
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "top-k frequent-pattern deletion (§5.2)", Dataset: b.Name,
		Variants: []AblationVariant{voff, von},
	})

	// ξ family: BCH 4-wise vs poly 6-wise.
	poly := base()
	poly.Independence = 6
	vb, err := runVariant(b, "BCH 4-wise", base())
	if err != nil {
		return nil, err
	}
	v6, err := runVariant(b, "poly 6-wise", poly)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "ξ family (§3 vs §4 requirements)", Dataset: b.Name,
		Variants: []AblationVariant{vb, v6},
	})

	// Fingerprint degree: collisions at 12 bits vs none at 61.
	small := base()
	small.FingerprintDegree = 12
	vs, err := runVariant(b, "degree 12 (collides)", small)
	if err != nil {
		return nil, err
	}
	vl, err := runVariant(b, "degree 61", base())
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "fingerprint degree (§6.1)", Dataset: b.Name,
		Variants: []AblationVariant{vs, vl},
	})
	return out, nil
}
