// Package datagen generates the synthetic stand-ins for the paper's
// two real datasets (§7.2), which are not redistributable here:
//
//   - TREEBANK: 28,699 narrow, deep parse trees with recursive element
//     names and no values (the original's values were encrypted). Our
//     generator expands a small probabilistic grammar over the Penn
//     Treebank tag set with skewed rule choice, which reproduces the
//     properties the experiments depend on: depth, low fanout, label
//     recursion, and a moderately skewed tree-pattern distribution
//     (hence the gradual top-k benefit of Figure 10(a,b)).
//
//   - DBLP: 98,061 shallow, bushy bibliography records with CDATA
//     values. Our generator emits records with Zipf-distributed field
//     values, giving high fanout (more EnumTree child-subset choices,
//     Figure 9) and a highly skewed pattern distribution (the drastic
//     top-k effect of Figure 10(c,d)).
//
// Generation is deterministic in the seed; value labels are chosen to
// start with a digit so that tree → XML → tree round-trips cleanly
// (see tree.WriteXML).
package datagen

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"

	"sketchtree/internal/tree"
)

// Source is a deterministic stream of labeled trees.
type Source struct {
	name  string
	n     int
	seed  uint64
	made  int
	rng   *rand.Rand
	genFn func(*rand.Rand) *tree.Node
}

// Name identifies the dataset ("TREEBANK" or "DBLP").
func (s *Source) Name() string { return s.name }

// Len returns the total number of trees the source will produce.
func (s *Source) Len() int { return s.n }

// Next returns the next tree, or (nil, false) when the stream ends.
func (s *Source) Next() (*tree.Tree, bool) {
	if s.made >= s.n {
		return nil, false
	}
	s.made++
	return tree.NewTree(s.genFn(s.rng)), true
}

// Reset rewinds the source; the same seed regenerates the identical
// stream.
func (s *Source) Reset() {
	s.made = 0
	s.rng = rand.New(rand.NewPCG(s.seed, streamConst))
}

// ForEach drains the source through fn, stopping on error.
func (s *Source) ForEach(fn func(*tree.Tree) error) error {
	for {
		t, ok := s.Next()
		if !ok {
			return nil
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// WriteXML emits the remaining stream as one XML document under the
// given root tag, the format the paper's datasets come in (and that
// tree.StreamForest consumes).
func (s *Source) WriteXML(w io.Writer, rootTag string) error {
	if _, err := fmt.Fprintf(w, "<%s>\n", rootTag); err != nil {
		return err
	}
	err := s.ForEach(func(t *tree.Tree) error {
		if err := t.Root.WriteXML(w); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\n")
		return err
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "</%s>\n", rootTag)
	return err
}

const streamConst = 0xda7a5e7

// zipf is a deterministic Zipf(s) sampler over n ranks via inverse CDF
// (math/rand/v2 has no Zipf generator).
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / total
		cdf[i] = acc
	}
	cdf[n-1] = 1
	return &zipf{cdf: cdf}
}

func (z *zipf) draw(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// --- TREEBANK ---

// pcfgRule is one production: a weight and the child tags; empty
// children mark a preterminal (leaf tag).
type pcfgRule struct {
	weight   float64
	children []string
}

// treebankGrammar is a compact Penn-Treebank-flavoured PCFG. Recursive
// productions (S in SBAR, NP in PP, ...) give the recursive element
// names the paper notes for TREEBANK.
var treebankGrammar = map[string][]pcfgRule{
	"S": {
		{0.50, []string{"NP", "VP"}},
		{0.25, []string{"NP", "VP", "PP"}},
		{0.15, []string{"SBAR", "NP", "VP"}},
		{0.10, []string{"S", "CC", "S"}},
	},
	"SBAR": {
		{0.6, []string{"IN", "S"}},
		{0.4, []string{"WHNP", "S"}},
	},
	"NP": {
		{0.35, []string{"DT", "NN"}},
		{0.20, []string{"DT", "JJ", "NN"}},
		{0.15, []string{"PRP"}},
		{0.12, []string{"NNP"}},
		{0.10, []string{"NP", "PP"}},
		{0.05, []string{"NP", "SBAR"}},
		{0.03, []string{"DT", "NN", "NN"}},
	},
	"VP": {
		{0.35, []string{"VBD", "NP"}},
		{0.25, []string{"VBZ", "NP"}},
		{0.15, []string{"VBD", "NP", "PP"}},
		{0.10, []string{"VBD"}},
		{0.10, []string{"VP", "PP"}},
		{0.05, []string{"MD", "VP"}},
	},
	"PP":   {{1.0, []string{"IN", "NP"}}},
	"WHNP": {{1.0, []string{"WP"}}},
}

// terminal fallbacks keep expansion finite at the depth limit.
var treebankFallback = map[string][]string{
	"S":    {"NP", "VP"},
	"SBAR": {"IN"},
	"NP":   {"NN"},
	"VP":   {"VBD"},
	"PP":   {"IN"},
	"WHNP": {"WP"},
}

// Treebank returns a source of n synthetic parse trees. Preterminal
// tags carry one value leaf drawn from a Zipf-distributed vocabulary —
// the stand-in for the original dataset's encrypted word values, and
// the source of TREEBANK's millions of distinct tree patterns
// (Table 1) despite its small tag alphabet.
func Treebank(seed uint64, n int) *Source {
	words := newZipf(4000, 1.05)
	s := &Source{name: "TREEBANK", n: n, seed: seed}
	s.genFn = func(rng *rand.Rand) *tree.Node {
		return expandTag("S", rng, 0, words)
	}
	s.Reset()
	return s
}

const treebankMaxDepth = 9

func expandTag(tag string, rng *rand.Rand, depth int, words *zipf) *tree.Node {
	n := &tree.Node{Label: tag}
	rules, ok := treebankGrammar[tag]
	if !ok {
		// Preterminal: attach the "encrypted" word value.
		n.Children = []*tree.Node{leafValue("w", words.draw(rng))}
		return n
	}
	if depth >= treebankMaxDepth {
		for _, c := range treebankFallback[tag] {
			n.AddChild(expandTag(c, rng, depth+1, words))
		}
		return n
	}
	u := rng.Float64()
	acc := 0.0
	choice := rules[len(rules)-1]
	for _, r := range rules {
		acc += r.weight
		if u < acc {
			choice = r
			break
		}
	}
	for _, c := range choice.children {
		n.AddChild(expandTag(c, rng, depth+1, words))
	}
	return n
}

// --- DBLP ---

type dblpVocab struct {
	authors *zipf
	titles  *zipf
	venues  *zipf
	years   *zipf
	nAuth   *zipf
}

var dblpTypes = []struct {
	tag    string
	weight float64
	venue  string // venue field tag
}{
	{"article", 0.50, "journal"},
	{"inproceedings", 0.35, "booktitle"},
	{"book", 0.10, "publisher"},
	{"phdthesis", 0.05, "school"},
}

// DBLP returns a source of n synthetic bibliography records.
func DBLP(seed uint64, n int) *Source {
	v := &dblpVocab{
		authors: newZipf(400, 1.1),
		titles:  newZipf(1500, 1.05),
		venues:  newZipf(40, 1.0),
		years:   newZipf(35, 0.6),
		nAuth:   newZipf(6, 1.3),
	}
	s := &Source{name: "DBLP", n: n, seed: seed}
	s.genFn = func(rng *rand.Rand) *tree.Node { return genDBLP(rng, v) }
	s.Reset()
	return s
}

func genDBLP(rng *rand.Rand, v *dblpVocab) *tree.Node {
	u := rng.Float64()
	acc := 0.0
	rec := dblpTypes[len(dblpTypes)-1]
	for _, t := range dblpTypes {
		acc += t.weight
		if u < acc {
			rec = t
			break
		}
	}
	n := tree.New(rec.tag)
	// 1..6 authors, Zipf-skewed toward 1-2.
	for i := v.nAuth.draw(rng) + 1; i > 0; i-- {
		n.AddChild(tree.T("author", leafValue("a", v.authors.draw(rng))))
	}
	n.AddChild(tree.T("title", leafValue("t", v.titles.draw(rng))))
	n.AddChild(tree.T("year", tree.T(fmt.Sprintf("%d", 1970+v.years.draw(rng)))))
	n.AddChild(tree.T(rec.venue, leafValue("v", v.venues.draw(rng))))
	if rng.Float64() < 0.7 {
		n.AddChild(tree.T("pages", leafValue("p", rng.IntN(500))))
	}
	if rng.Float64() < 0.5 {
		n.AddChild(tree.T("ee", leafValue("e", rng.IntN(2000))))
	}
	if rng.Float64() < 0.3 {
		n.AddChild(tree.T("url", leafValue("u", rng.IntN(2000))))
	}
	if rec.tag == "inproceedings" && rng.Float64() < 0.4 {
		n.AddChild(tree.T("crossref", leafValue("c", v.venues.draw(rng))))
	}
	return n
}

// leafValue formats a value label starting with a digit so WriteXML
// round-trips it as character data.
func leafValue(kind string, id int) *tree.Node {
	return tree.T(fmt.Sprintf("%d %s", id, kind))
}
