package datagen

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"sketchtree/internal/tree"
)

func TestDeterminism(t *testing.T) {
	for _, mk := range []func() *Source{
		func() *Source { return Treebank(7, 20) },
		func() *Source { return DBLP(7, 20) },
	} {
		a, b := mk(), mk()
		for {
			ta, oka := a.Next()
			tb, okb := b.Next()
			if oka != okb {
				t.Fatal("sources disagree on length")
			}
			if !oka {
				break
			}
			if !tree.Equal(ta.Root, tb.Root) {
				t.Fatalf("same seed, different trees:\n%s\n%s", ta, tb)
			}
		}
	}
}

func TestResetReplays(t *testing.T) {
	s := Treebank(3, 5)
	var first []string
	s.ForEach(func(tr *tree.Tree) error { first = append(first, tr.String()); return nil })
	s.Reset()
	i := 0
	s.ForEach(func(tr *tree.Tree) error {
		if tr.String() != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
		i++
		return nil
	})
	if i != 5 {
		t.Fatalf("replayed %d trees", i)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := Treebank(1, 1).Next()
	var differs bool
	for seed := uint64(2); seed < 12; seed++ {
		b, _ := Treebank(seed, 1).Next()
		if !tree.Equal(a.Root, b.Root) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("ten different seeds all produced the same first tree")
	}
}

func TestSourceAccessors(t *testing.T) {
	s := DBLP(1, 3)
	if s.Name() != "DBLP" || s.Len() != 3 {
		t.Error("accessors wrong")
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("produced %d trees, want 3", n)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted source must keep returning false")
	}
}

// Shape assertions: TREEBANK must be narrow and deep, DBLP shallow and
// bushy — the properties the paper's experiments depend on (Table 1
// discussion).
func TestShapeContrast(t *testing.T) {
	tb := tree.NewStats()
	Treebank(11, 300).ForEach(func(tr *tree.Tree) error { tb.Add(tr); return nil })
	db := tree.NewStats()
	DBLP(11, 300).ForEach(func(tr *tree.Tree) error { db.Add(tr); return nil })

	if tb.AvgDepth() <= db.AvgDepth() {
		t.Errorf("TREEBANK avg depth %.2f must exceed DBLP %.2f", tb.AvgDepth(), db.AvgDepth())
	}
	// Fanout contrast is at the record roots: DBLP records are bushy
	// (many fields), parse-tree nodes binary-ish. (DBLP's overall
	// average fanout is depressed by its field→value unary nodes.)
	rootFanout := func(mk func() *Source) float64 {
		sum, n := 0, 0
		mk().ForEach(func(tr *tree.Tree) error {
			sum += len(tr.Root.Children)
			n++
			return nil
		})
		return float64(sum) / float64(n)
	}
	dbRoot := rootFanout(func() *Source { return DBLP(11, 300) })
	tbRoot := rootFanout(func() *Source { return Treebank(11, 300) })
	if dbRoot <= tbRoot+1 {
		t.Errorf("DBLP root fanout %.2f must clearly exceed TREEBANK %.2f", dbRoot, tbRoot)
	}
	if db.MaxFanout <= tb.MaxFanout {
		t.Errorf("DBLP max fanout %d must exceed TREEBANK %d", db.MaxFanout, tb.MaxFanout)
	}
	if db.MaxDepth > 3 {
		t.Errorf("DBLP records must be shallow, got depth %d", db.MaxDepth)
	}
	if tb.MaxDepth < 5 {
		t.Errorf("TREEBANK must be deep, got max depth %d", tb.MaxDepth)
	}
	// TREEBANK's internal structure uses the small Penn tag set; only
	// its leaf values (the stand-in for the original's encrypted
	// words) enlarge the alphabet.
	tags := map[string]bool{}
	Treebank(11, 300).ForEach(func(tr *tree.Tree) error {
		tr.Root.Walk(func(n *tree.Node) bool {
			if !n.IsLeaf() {
				tags[n.Label] = true
			}
			return true
		})
		return nil
	})
	if len(tags) > 20 {
		t.Errorf("TREEBANK tag set too large: %d", len(tags))
	}
	if tb.DistinctLabels < 100 {
		t.Errorf("TREEBANK value vocabulary too small: %d", tb.DistinctLabels)
	}
	// DBLP carries values: a much larger alphabet.
	if db.DistinctLabels < 100 {
		t.Errorf("DBLP label alphabet too small: %d", db.DistinctLabels)
	}
}

func TestTreebankRecursiveLabels(t *testing.T) {
	// Recursive element names: some S must contain a nested S (or NP a
	// nested NP) somewhere in a few hundred trees.
	found := false
	Treebank(13, 400).ForEach(func(tr *tree.Tree) error {
		tr.Root.Walk(func(n *tree.Node) bool {
			for _, c := range n.Children {
				var rec func(*tree.Node) bool
				rec = func(m *tree.Node) bool {
					if m.Label == n.Label {
						return true
					}
					for _, mc := range m.Children {
						if rec(mc) {
							return true
						}
					}
					return false
				}
				if rec(c) {
					found = true
				}
			}
			return !found
		})
		return nil
	})
	if !found {
		t.Error("no recursive element nesting found in TREEBANK sample")
	}
}

func TestDBLPValueSkew(t *testing.T) {
	// Zipf values: the most common author must be much more frequent
	// than the median author.
	counts := map[string]int{}
	DBLP(17, 2000).ForEach(func(tr *tree.Tree) error {
		tr.Root.Walk(func(n *tree.Node) bool {
			if n.Label == "author" && len(n.Children) == 1 {
				counts[n.Children[0].Label]++
			}
			return true
		})
		return nil
	})
	max, total, distinct := 0, 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		total += c
		distinct++
	}
	if distinct < 50 {
		t.Fatalf("only %d distinct authors", distinct)
	}
	if float64(max) < 0.05*float64(total) {
		t.Errorf("top author %d of %d occurrences: distribution not skewed", max, total)
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	for _, src := range []*Source{Treebank(5, 10), DBLP(5, 10)} {
		want := make([]*tree.Tree, 0, 10)
		src.ForEach(func(tr *tree.Tree) error { want = append(want, tr); return nil })
		src.Reset()
		var buf bytes.Buffer
		if err := src.WriteXML(&buf, "dataset"); err != nil {
			t.Fatal(err)
		}
		var got []*tree.Tree
		err := tree.StreamForest(strings.NewReader(buf.String()), tree.DefaultXMLOptions(),
			func(tr *tree.Tree) error { got = append(got, tr); return nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: parsed %d trees, want %d", src.Name(), len(got), len(want))
		}
		for i := range want {
			if !tree.Equal(got[i].Root, want[i].Root) {
				t.Errorf("%s tree %d: round trip mismatch:\n%s\n%s",
					src.Name(), i, want[i], got[i])
			}
		}
	}
}

func TestZipfSampler(t *testing.T) {
	z := newZipf(10, 1.2)
	rng := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		r := z.draw(rng)
		if r < 0 || r >= 10 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Monotone-ish decreasing: rank 0 most common, rank 9 least.
	if counts[0] <= counts[4] || counts[4] <= counts[9] {
		t.Errorf("zipf counts not decreasing: %v", counts)
	}
	if counts[0] < 5000 {
		t.Errorf("rank-0 mass too small for s=1.2: %d", counts[0])
	}
}
