// Package gf2 implements polynomial arithmetic over GF(2) and the
// finite fields GF(2^m) for m <= 63. It is the substrate for two parts
// of SketchTree: Rabin fingerprinting with random irreducible
// polynomials (paper §6.1) and the BCH / polynomial-hash constructions
// of four-wise and k-wise independent ±1 random variables (paper §3).
//
// A polynomial over GF(2) of degree <= 63 is represented as a uint64
// with bit i holding the coefficient of x^i. A modulus of degree m has
// bit m set; field elements are reduced polynomials of degree < m.
package gf2

import (
	"fmt"
	"math/bits"
	"sync"
)

// Deg returns the degree of the polynomial, or -1 for the zero
// polynomial.
func Deg(p uint64) int {
	return 63 - bits.LeadingZeros64(p)
}

// Clmul computes the 128-bit carry-less (GF(2)) product of a and b
// using 4-bit windowing.
func Clmul(a, b uint64) (hi, lo uint64) {
	// Table of a times each nibble value, as (hi, lo) pairs. a*2^s for
	// s in 0..3 spills at most 3 bits into the high word.
	var tl, th [16]uint64
	tl[1], th[1] = a, 0
	tl[2], th[2] = a<<1, a>>63
	tl[4], th[4] = a<<2, a>>62
	tl[8], th[8] = a<<3, a>>61
	for n := 3; n < 16; n++ {
		if n&(n-1) == 0 {
			continue // power of two, already filled
		}
		low := n & (-n)
		rest := n ^ low
		tl[n] = tl[low] ^ tl[rest]
		th[n] = th[low] ^ th[rest]
	}
	for i := 0; i < 16 && b>>(4*uint(i)) != 0; i++ {
		nib := (b >> (4 * uint(i))) & 0xf
		if nib == 0 {
			continue
		}
		s := 4 * uint(i)
		if s == 0 {
			lo ^= tl[nib]
			hi ^= th[nib]
		} else {
			lo ^= tl[nib] << s
			hi ^= th[nib]<<s | tl[nib]>>(64-s)
		}
	}
	return hi, lo
}

// Mod reduces a modulo the polynomial m (m != 0).
func Mod(a, m uint64) uint64 {
	d := Deg(m)
	if d < 0 {
		panic("gf2: modulus is zero")
	}
	for da := Deg(a); da >= d; da = Deg(a) {
		a ^= m << uint(da-d)
	}
	return a
}

// Mod128 reduces the 128-bit polynomial (hi, lo) modulo m, where
// 1 <= deg(m) <= 63.
func Mod128(hi, lo, m uint64) uint64 {
	d := Deg(m)
	if d < 1 {
		panic("gf2: modulus must have degree >= 1")
	}
	for i := 63; i >= 0; i-- {
		if hi&(1<<uint(i)) == 0 {
			continue
		}
		s := 64 + i - d // >= 1 because d <= 63
		if s >= 64 {
			hi ^= m << uint(s-64)
		} else {
			hi ^= m >> uint(64-s)
			lo ^= m << uint(s)
		}
	}
	return Mod(lo, m)
}

// MulMod returns a*b mod m.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := Clmul(a, b)
	return Mod128(hi, lo, m)
}

// GCD returns the greatest common divisor of the polynomials a and b
// (monic by construction over GF(2)).
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, Mod(a, b)
	}
	return a
}

// Irreducible reports whether the polynomial m is irreducible over
// GF(2), using Rabin's irreducibility test: m of degree n is
// irreducible iff x^(2^n) == x (mod m) and gcd(x^(2^(n/p)) - x, m) = 1
// for every prime p dividing n.
func Irreducible(m uint64) bool {
	n := Deg(m)
	if n < 1 {
		return false
	}
	if n == 1 {
		return true // x and x+1
	}
	const x = 2 // the polynomial "x"
	// x^(2^n) mod m via n squarings.
	h := uint64(x)
	for i := 0; i < n; i++ {
		h = MulMod(h, h, m)
	}
	if h != Mod(x, m) {
		return false
	}
	for _, p := range primeDivisors(n) {
		h := uint64(x)
		for i := 0; i < n/p; i++ {
			h = MulMod(h, h, m)
		}
		if Deg(GCD(h^x, m)) != 0 {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// RandomIrreducible draws uniformly random polynomials of the given
// degree (1 <= deg <= 63) with nonzero constant term until one is
// irreducible, using the provided random source. Roughly one in deg
// candidates is irreducible, so this terminates quickly.
func RandomIrreducible(deg int, rnd interface{ Uint64() uint64 }) uint64 {
	if deg < 1 || deg > 63 {
		panic(fmt.Sprintf("gf2: unsupported degree %d", deg))
	}
	if deg == 1 {
		return 1<<1 | 1 // x + 1, the only degree-1 poly with constant term
	}
	top, low := uint64(1)<<uint(deg), uint64(1)
	mask := top - 1
	for {
		m := top | (rnd.Uint64() & mask) | low
		if Irreducible(m) {
			return m
		}
	}
}

var (
	defaultModMu sync.Mutex
	defaultMods  = map[int]uint64{}
)

// DefaultModulus returns the lexicographically smallest irreducible
// polynomial of the given degree. It is deterministic, so all processes
// agree on it; use RandomIrreducible for the paper's
// "chosen uniformly at random" semantics.
func DefaultModulus(deg int) uint64 {
	if deg < 1 || deg > 63 {
		panic(fmt.Sprintf("gf2: unsupported degree %d", deg))
	}
	defaultModMu.Lock()
	defer defaultModMu.Unlock()
	if m, ok := defaultMods[deg]; ok {
		return m
	}
	top := uint64(1) << uint(deg)
	for c := uint64(1); ; c += 2 { // constant term must be 1 for deg >= 2
		m := top | c
		if Irreducible(m) {
			defaultMods[deg] = m
			return m
		}
	}
}

// Field is GF(2^m) = GF(2)[x] / (modulus), for 1 <= m <= 63.
type Field struct {
	modulus uint64
	deg     int
	mask    uint64 // deg low bits
}

// NewField constructs the field defined by the given irreducible
// modulus. Returns an error if the modulus is reducible or out of
// range.
func NewField(modulus uint64) (*Field, error) {
	d := Deg(modulus)
	if d < 1 || d > 63 {
		return nil, fmt.Errorf("gf2: modulus degree %d out of range [1, 63]", d)
	}
	if !Irreducible(modulus) {
		return nil, fmt.Errorf("gf2: modulus %#x is reducible", modulus)
	}
	return &Field{modulus: modulus, deg: d, mask: 1<<uint(d) - 1}, nil
}

// MustField is NewField that panics on error, for package-level
// constants.
func MustField(modulus uint64) *Field {
	f, err := NewField(modulus)
	if err != nil {
		panic(err)
	}
	return f
}

// Degree returns m for GF(2^m).
func (f *Field) Degree() int { return f.deg }

// Modulus returns the defining irreducible polynomial.
func (f *Field) Modulus() uint64 { return f.modulus }

// Reduce maps an arbitrary uint64 into the field by reduction mod the
// modulus.
func (f *Field) Reduce(a uint64) uint64 { return Mod(a, f.modulus) }

// Add returns a + b (XOR).
func (f *Field) Add(a, b uint64) uint64 { return a ^ b }

// Mul returns a * b in the field.
func (f *Field) Mul(a, b uint64) uint64 {
	hi, lo := Clmul(a, b)
	return Mod128(hi, lo, f.modulus)
}

// Square returns a² in the field.
func (f *Field) Square(a uint64) uint64 { return f.Mul(a, a) }

// Cube returns a³ in the field (used by the BCH four-wise ξ
// construction).
func (f *Field) Cube(a uint64) uint64 { return f.Mul(f.Square(a), a) }

// Pow returns a^e in the field by square-and-multiply.
func (f *Field) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a
	for e > 0 {
		if e&1 != 0 {
			result = f.Mul(result, base)
		}
		base = f.Square(base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (a != 0) via
// a^(2^m - 2).
func (f *Field) Inv(a uint64) uint64 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	// 2^m - 2: all bits 1..m-1 set.
	e := (uint64(1)<<uint(f.deg) - 1) &^ 1
	return f.Pow(a, e)
}

// MulX returns a * x in the field (a single LFSR step).
func (f *Field) MulX(a uint64) uint64 {
	a <<= 1
	if a&(1<<uint(f.deg)) != 0 {
		a ^= f.modulus
	}
	return a
}

// Bit0MulMask returns the mask M such that for any field element c,
// bit0(c * z) == parity(c & M). Bit i of M is bit 0 of x^i * z; the
// identity holds because multiplication by z is linear over GF(2) and c
// is the sum of the x^i with bit i set. This turns a field
// multiplication inside the ξ generators into an AND plus a popcount.
func (f *Field) Bit0MulMask(z uint64) uint64 {
	var m uint64
	zi := f.Reduce(z)
	for i := 0; i < f.deg; i++ {
		m |= (zi & 1) << uint(i)
		zi = f.MulX(zi)
	}
	return m
}
