// Package gf2 implements polynomial arithmetic over GF(2) and the
// finite fields GF(2^m) for m <= 63. It is the substrate for two parts
// of SketchTree: Rabin fingerprinting with random irreducible
// polynomials (paper §6.1) and the BCH / polynomial-hash constructions
// of four-wise and k-wise independent ±1 random variables (paper §3).
//
// A polynomial over GF(2) of degree <= 63 is represented as a uint64
// with bit i holding the coefficient of x^i. A modulus of degree m has
// bit m set; field elements are reduced polynomials of degree < m.
package gf2

import (
	"fmt"
	"math/bits"
	"sync"
)

// Deg returns the degree of the polynomial, or -1 for the zero
// polynomial.
func Deg(p uint64) int {
	return 63 - bits.LeadingZeros64(p)
}

// Clmul computes the 128-bit carry-less (GF(2)) product of a and b
// using 4-bit windowing.
func Clmul(a, b uint64) (hi, lo uint64) {
	// Table of a times each nibble value, as (hi, lo) pairs. a*2^s for
	// s in 0..3 spills at most 3 bits into the high word.
	var tl, th [16]uint64
	tl[1], th[1] = a, 0
	tl[2], th[2] = a<<1, a>>63
	tl[4], th[4] = a<<2, a>>62
	tl[8], th[8] = a<<3, a>>61
	for n := 3; n < 16; n++ {
		if n&(n-1) == 0 {
			continue // power of two, already filled
		}
		low := n & (-n)
		rest := n ^ low
		tl[n] = tl[low] ^ tl[rest]
		th[n] = th[low] ^ th[rest]
	}
	for i := 0; i < 16 && b>>(4*uint(i)) != 0; i++ {
		nib := (b >> (4 * uint(i))) & 0xf
		if nib == 0 {
			continue
		}
		s := 4 * uint(i)
		if s == 0 {
			lo ^= tl[nib]
			hi ^= th[nib]
		} else {
			lo ^= tl[nib] << s
			hi ^= th[nib]<<s | tl[nib]>>(64-s)
		}
	}
	return hi, lo
}

// Mod reduces a modulo the polynomial m (m != 0).
func Mod(a, m uint64) uint64 {
	d := Deg(m)
	if d < 0 {
		panic("gf2: modulus is zero")
	}
	for da := Deg(a); da >= d; da = Deg(a) {
		a ^= m << uint(da-d)
	}
	return a
}

// Mod128 reduces the 128-bit polynomial (hi, lo) modulo m, where
// 1 <= deg(m) <= 63.
func Mod128(hi, lo, m uint64) uint64 {
	d := Deg(m)
	if d < 1 {
		panic("gf2: modulus must have degree >= 1")
	}
	for i := 63; i >= 0; i-- {
		if hi&(1<<uint(i)) == 0 {
			continue
		}
		s := 64 + i - d // >= 1 because d <= 63
		if s >= 64 {
			hi ^= m << uint(s-64)
		} else {
			hi ^= m >> uint(64-s)
			lo ^= m << uint(s)
		}
	}
	return Mod(lo, m)
}

// MulMod returns a*b mod m.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := Clmul(a, b)
	return Mod128(hi, lo, m)
}

// GCD returns the greatest common divisor of the polynomials a and b
// (monic by construction over GF(2)).
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, Mod(a, b)
	}
	return a
}

// Irreducible reports whether the polynomial m is irreducible over
// GF(2), using Rabin's irreducibility test: m of degree n is
// irreducible iff x^(2^n) == x (mod m) and gcd(x^(2^(n/p)) - x, m) = 1
// for every prime p dividing n.
func Irreducible(m uint64) bool {
	n := Deg(m)
	if n < 1 {
		return false
	}
	if n == 1 {
		return true // x and x+1
	}
	const x = 2 // the polynomial "x"
	// x^(2^n) mod m via n squarings.
	h := uint64(x)
	for i := 0; i < n; i++ {
		h = MulMod(h, h, m)
	}
	if h != Mod(x, m) {
		return false
	}
	for _, p := range primeDivisors(n) {
		h := uint64(x)
		for i := 0; i < n/p; i++ {
			h = MulMod(h, h, m)
		}
		if Deg(GCD(h^x, m)) != 0 {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// RandomIrreducible draws uniformly random polynomials of the given
// degree (1 <= deg <= 63) with nonzero constant term until one is
// irreducible, using the provided random source. Roughly one in deg
// candidates is irreducible, so this terminates quickly.
func RandomIrreducible(deg int, rnd interface{ Uint64() uint64 }) uint64 {
	if deg < 1 || deg > 63 {
		panic(fmt.Sprintf("gf2: unsupported degree %d", deg))
	}
	if deg == 1 {
		return 1<<1 | 1 // x + 1, the only degree-1 poly with constant term
	}
	top, low := uint64(1)<<uint(deg), uint64(1)
	mask := top - 1
	for {
		m := top | (rnd.Uint64() & mask) | low
		if Irreducible(m) {
			return m
		}
	}
}

var (
	defaultModMu sync.Mutex
	defaultMods  = map[int]uint64{}
)

// DefaultModulus returns the lexicographically smallest irreducible
// polynomial of the given degree. It is deterministic, so all processes
// agree on it; use RandomIrreducible for the paper's
// "chosen uniformly at random" semantics.
func DefaultModulus(deg int) uint64 {
	if deg < 1 || deg > 63 {
		panic(fmt.Sprintf("gf2: unsupported degree %d", deg))
	}
	defaultModMu.Lock()
	defer defaultModMu.Unlock()
	if m, ok := defaultMods[deg]; ok {
		return m
	}
	top := uint64(1) << uint(deg)
	for c := uint64(1); ; c += 2 { // constant term must be 1 for deg >= 2
		m := top | c
		if Irreducible(m) {
			defaultMods[deg] = m
			return m
		}
	}
}

// Field is GF(2^m) = GF(2)[x] / (modulus), for 1 <= m <= 63.
type Field struct {
	modulus uint64
	deg     int
	mask    uint64 // deg low bits

	// Byte-fold reduction table for degrees >= 8: red[t] = t·x^deg mod
	// modulus, the same table Rabin fingerprinting uses. It turns the
	// 128-bit reduction of Mul/Square into 16 table lookups instead of a
	// 64-iteration branchy loop — the per-pattern ξ preparation (Reduce,
	// Cube) is on the stream hot path. top is deg-8; red stays nil for
	// degrees below 8, where the generic Mod128 is used instead.
	red *[256]uint64
	top uint
}

// sqrTab spreads the 8 bits of a byte to the 16 even bit positions:
// squaring over GF(2) maps bit i to bit 2i with no cross terms.
var sqrTab [256]uint16

func init() {
	for b := 0; b < 256; b++ {
		var s uint16
		for i := 0; i < 8; i++ {
			s |= uint16(b>>uint(i)&1) << uint(2*i)
		}
		sqrTab[b] = s
	}
}

// NewField constructs the field defined by the given irreducible
// modulus. Returns an error if the modulus is reducible or out of
// range.
func NewField(modulus uint64) (*Field, error) {
	d := Deg(modulus)
	if d < 1 || d > 63 {
		return nil, fmt.Errorf("gf2: modulus degree %d out of range [1, 63]", d)
	}
	if !Irreducible(modulus) {
		return nil, fmt.Errorf("gf2: modulus %#x is reducible", modulus)
	}
	f := &Field{modulus: modulus, deg: d, mask: 1<<uint(d) - 1}
	if d >= 8 {
		f.top = uint(d - 8)
		f.red = new([256]uint64)
		for t := 1; t < 256; t++ {
			// t·x^deg mod m, built by multiplying t by x deg times; t has
			// degree <= 7 < deg, so the running value stays reduced.
			v := uint64(t)
			for i := 0; i < d; i++ {
				v <<= 1
				if v&(1<<uint(d)) != 0 {
					v ^= modulus
				}
			}
			f.red[t] = v
		}
	}
	return f, nil
}

// MustField is NewField that panics on error, for package-level
// constants.
func MustField(modulus uint64) *Field {
	f, err := NewField(modulus)
	if err != nil {
		panic(err)
	}
	return f
}

// Degree returns m for GF(2^m).
func (f *Field) Degree() int { return f.deg }

// Modulus returns the defining irreducible polynomial.
func (f *Field) Modulus() uint64 { return f.modulus }

// Reduce maps an arbitrary uint64 into the field by reduction mod the
// modulus.
func (f *Field) Reduce(a uint64) uint64 { return Mod(a, f.modulus) }

// Add returns a + b (XOR).
func (f *Field) Add(a, b uint64) uint64 { return a ^ b }

// foldByte folds one byte into a running residue r < 2^deg:
// r·x^8 + b mod modulus, via one table lookup. Small enough for the
// inliner, so the mod128 loop compiles without call overhead.
func (f *Field) foldByte(r uint64, b byte) uint64 {
	return (r<<8|uint64(b))&f.mask ^ f.red[r>>f.top]
}

// mod128 reduces the 128-bit polynomial (hi, lo) with the byte-fold
// table when available (degree >= 8), else with the generic Mod128.
// Folding the 16 bytes most-significant first computes
// (hi·x^64 + lo) mod modulus exactly.
func (f *Field) mod128(hi, lo uint64) uint64 {
	if f.red == nil {
		return Mod128(hi, lo, f.modulus)
	}
	var r uint64
	for s := 56; s >= 0; s -= 8 {
		r = f.foldByte(r, byte(hi>>uint(s)))
	}
	for s := 56; s >= 0; s -= 8 {
		r = f.foldByte(r, byte(lo>>uint(s)))
	}
	return r
}

// Mul returns a * b in the field.
func (f *Field) Mul(a, b uint64) uint64 {
	hi, lo := Clmul(a, b)
	return f.mod128(hi, lo)
}

// Square returns a² in the field. Squaring over GF(2) has no cross
// terms — bit i maps to bit 2i — so the 128-bit square is 8 spread-table
// lookups rather than a carry-less multiplication.
func (f *Field) Square(a uint64) uint64 {
	lo := uint64(sqrTab[byte(a)]) |
		uint64(sqrTab[byte(a>>8)])<<16 |
		uint64(sqrTab[byte(a>>16)])<<32 |
		uint64(sqrTab[byte(a>>24)])<<48
	hi := uint64(sqrTab[byte(a>>32)]) |
		uint64(sqrTab[byte(a>>40)])<<16 |
		uint64(sqrTab[byte(a>>48)])<<32 |
		uint64(sqrTab[byte(a>>56)])<<48
	return f.mod128(hi, lo)
}

// Cube returns a³ in the field (used by the BCH four-wise ξ
// construction).
func (f *Field) Cube(a uint64) uint64 { return f.Mul(f.Square(a), a) }

// Pow returns a^e in the field by square-and-multiply.
func (f *Field) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a
	for e > 0 {
		if e&1 != 0 {
			result = f.Mul(result, base)
		}
		base = f.Square(base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (a != 0) via
// a^(2^m - 2).
func (f *Field) Inv(a uint64) uint64 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	// 2^m - 2: all bits 1..m-1 set.
	e := (uint64(1)<<uint(f.deg) - 1) &^ 1
	return f.Pow(a, e)
}

// MulX returns a * x in the field (a single LFSR step).
func (f *Field) MulX(a uint64) uint64 {
	a <<= 1
	if a&(1<<uint(f.deg)) != 0 {
		a ^= f.modulus
	}
	return a
}

// Bit0MulMask returns the mask M such that for any field element c,
// bit0(c * z) == parity(c & M). Bit i of M is bit 0 of x^i * z; the
// identity holds because multiplication by z is linear over GF(2) and c
// is the sum of the x^i with bit i set. This turns a field
// multiplication inside the ξ generators into an AND plus a popcount.
func (f *Field) Bit0MulMask(z uint64) uint64 {
	var m uint64
	zi := f.Reduce(z)
	for i := 0; i < f.deg; i++ {
		m |= (zi & 1) << uint(i)
		zi = f.MulX(zi)
	}
	return m
}
