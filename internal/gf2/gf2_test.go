package gf2

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// clmulNaive is the bit-by-bit reference implementation.
func clmulNaive(a, b uint64) (hi, lo uint64) {
	for i := uint(0); i < 64; i++ {
		if b&(1<<i) == 0 {
			continue
		}
		lo ^= a << i
		if i > 0 {
			hi ^= a >> (64 - i)
		}
	}
	return hi, lo
}

func TestDeg(t *testing.T) {
	cases := []struct {
		p uint64
		d int
	}{{0, -1}, {1, 0}, {2, 1}, {3, 1}, {0b1000, 3}, {1 << 63, 63}, {^uint64(0), 63}}
	for _, c := range cases {
		if got := Deg(c.p); got != c.d {
			t.Errorf("Deg(%#x) = %d, want %d", c.p, got, c.d)
		}
	}
}

func TestClmulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2).
	hi, lo := Clmul(3, 3)
	if hi != 0 || lo != 5 {
		t.Errorf("Clmul(3,3) = (%#x,%#x), want (0,5)", hi, lo)
	}
	// x^63 * x^63 = x^126.
	hi, lo = Clmul(1<<63, 1<<63)
	if hi != 1<<62 || lo != 0 {
		t.Errorf("Clmul(x^63,x^63) = (%#x,%#x), want (x^126, 0)", hi, lo)
	}
	hi, lo = Clmul(0, 12345)
	if hi != 0 || lo != 0 {
		t.Error("Clmul with zero operand must be zero")
	}
}

func TestQuickClmulMatchesNaive(t *testing.T) {
	f := func(a, b uint64) bool {
		h1, l1 := Clmul(a, b)
		h2, l2 := clmulNaive(a, b)
		return h1 == h2 && l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickClmulCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		h1, l1 := Clmul(a, b)
		h2, l2 := Clmul(b, a)
		return h1 == h2 && l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMod(t *testing.T) {
	// x^2 mod (x^2+x+1) = x+1.
	if got := Mod(0b100, 0b111); got != 0b11 {
		t.Errorf("Mod = %#b, want 11", got)
	}
	if got := Mod(5, 7); Deg(got) >= Deg(7) {
		t.Errorf("Mod result degree too large: %#x", got)
	}
	if got := Mod(0, 7); got != 0 {
		t.Errorf("Mod(0, m) = %#x", got)
	}
}

func TestMod128MatchesIteratedMod(t *testing.T) {
	// Verify Mod128 by reducing via naive shift-subtract over 128 bits.
	naive := func(hi, lo, m uint64) uint64 {
		d := Deg(m)
		for i := 127; i >= d; i-- {
			var set bool
			if i >= 64 {
				set = hi&(1<<uint(i-64)) != 0
			} else {
				set = lo&(1<<uint(i)) != 0
			}
			if !set {
				continue
			}
			s := i - d
			switch {
			case s >= 64:
				hi ^= m << uint(s-64)
			default:
				lo ^= m << uint(s)
				if s > 0 {
					hi ^= m >> uint(64-s)
				}
			}
		}
		return lo
	}
	f := func(hi, lo, mseed uint64) bool {
		m := mseed | 1<<62 | 1 // force degree 62, nonzero constant
		return Mod128(hi, lo, m) == naive(hi, lo, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGCD(t *testing.T) {
	// gcd(x^2+1, x+1) = x+1 since x^2+1 = (x+1)^2.
	if got := GCD(0b101, 0b11); got != 0b11 {
		t.Errorf("GCD = %#b, want 11", got)
	}
	if got := GCD(0, 0b101); got != 0b101 {
		t.Errorf("GCD(0, p) = %#b, want p", got)
	}
	if got := GCD(0b101, 0); got != 0b101 {
		t.Errorf("GCD(p, 0) = %#b, want p", got)
	}
}

func TestIrreducibleSmall(t *testing.T) {
	irreducible := []uint64{
		0b10,     // x
		0b11,     // x + 1
		0b111,    // x^2 + x + 1
		0b1011,   // x^3 + x + 1
		0b1101,   // x^3 + x^2 + 1
		0b10011,  // x^4 + x + 1
		0b100101, // x^5 + x^2 + 1
	}
	for _, m := range irreducible {
		if !Irreducible(m) {
			t.Errorf("%#b should be irreducible", m)
		}
	}
	reducible := []uint64{
		0,
		1,       // constant
		0b101,   // x^2 + 1 = (x+1)^2
		0b110,   // x^2 + x = x(x+1)
		0b100,   // x^2
		0b1001,  // x^3 + 1 = (x+1)(x^2+x+1)
		0b1111,  // x^3+x^2+x+1 = (x+1)^3
		0b11111, // x^4+x^3+x^2+x+1 reducible? (x^5-1)/(x-1); 5 | 2^4-1, so it factors iff ord... actually it is irreducible!
	}
	for _, m := range reducible[:7] {
		if Irreducible(m) {
			t.Errorf("%#b should be reducible", m)
		}
	}
	// x^4+x^3+x^2+x+1 is irreducible (the 5th cyclotomic polynomial;
	// 2 has order 4 mod 5).
	if !Irreducible(0b11111) {
		t.Error("x^4+x^3+x^2+x+1 should be irreducible")
	}
}

func TestIrreducibleAgainstBruteForce(t *testing.T) {
	// Compare Rabin's test against trial division for all polynomials
	// of degree <= 10.
	var polys []uint64
	for d := 1; d <= 10; d++ {
		lo := uint64(1) << uint(d)
		for p := lo; p < lo<<1; p++ {
			polys = append(polys, p)
		}
	}
	bruteIrr := func(p uint64) bool {
		d := Deg(p)
		if d < 1 {
			return false
		}
		for q := uint64(2); Deg(q) <= d/2; q++ {
			if Deg(q) >= 1 && Mod(p, q) == 0 {
				return false
			}
		}
		return true
	}
	for _, p := range polys {
		if got, want := Irreducible(p), bruteIrr(p); got != want {
			t.Errorf("Irreducible(%#b) = %v, want %v", p, got, want)
		}
	}
}

func TestKnownLargeIrreducibles(t *testing.T) {
	// The trinomial x^31 + x^3 + 1 and x^63 + x + 1, both classical.
	if !Irreducible(1<<31 | 1<<3 | 1) {
		t.Error("x^31+x^3+1 should be irreducible")
	}
	if !Irreducible(1<<63 | 1<<1 | 1) {
		t.Error("x^63+x+1 should be irreducible")
	}
}

func TestDefaultModulus(t *testing.T) {
	for _, d := range []int{8, 31, 61, 63} {
		m := DefaultModulus(d)
		if Deg(m) != d {
			t.Errorf("DefaultModulus(%d) has degree %d", d, Deg(m))
		}
		if !Irreducible(m) {
			t.Errorf("DefaultModulus(%d) = %#x is reducible", d, m)
		}
		if m2 := DefaultModulus(d); m2 != m {
			t.Errorf("DefaultModulus(%d) not deterministic: %#x vs %#x", d, m, m2)
		}
	}
}

func TestDefaultModulusPanics(t *testing.T) {
	for _, d := range []int{0, -1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DefaultModulus(%d) must panic", d)
				}
			}()
			DefaultModulus(d)
		}()
	}
}

func TestRandomIrreducible(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		m := RandomIrreducible(31, rng)
		if Deg(m) != 31 || !Irreducible(m) {
			t.Fatalf("RandomIrreducible returned bad polynomial %#x", m)
		}
		seen[m] = true
	}
	if len(seen) < 10 {
		t.Errorf("RandomIrreducible shows poor diversity: %d distinct of 20", len(seen))
	}
	if m := RandomIrreducible(1, rng); m != 0b11 {
		t.Errorf("degree-1: got %#b", m)
	}
}

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(0b101); err == nil {
		t.Error("reducible modulus must be rejected")
	}
	if _, err := NewField(1); err == nil {
		t.Error("constant modulus must be rejected")
	}
	if _, err := NewField(0); err == nil {
		t.Error("zero modulus must be rejected")
	}
	f, err := NewField(0b111)
	if err != nil {
		t.Fatal(err)
	}
	if f.Degree() != 2 || f.Modulus() != 0b111 {
		t.Error("field accessors wrong")
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustField of reducible modulus must panic")
		}
	}()
	MustField(0b101)
}

func TestFieldGF4(t *testing.T) {
	// GF(4) = GF(2)[x]/(x^2+x+1): elements 0,1,x,x+1.
	f := MustField(0b111)
	// x * x = x+1; x * (x+1) = x^2+x = 1.
	if got := f.Mul(2, 2); got != 3 {
		t.Errorf("x*x = %d, want 3", got)
	}
	if got := f.Mul(2, 3); got != 1 {
		t.Errorf("x*(x+1) = %d, want 1", got)
	}
	if got := f.Inv(2); got != 3 {
		t.Errorf("inv(x) = %d, want 3", got)
	}
	if got := f.Cube(2); got != f.Mul(f.Mul(2, 2), 2) {
		t.Errorf("Cube mismatch: %d", got)
	}
}

func field63() *Field { return MustField(1<<63 | 1<<1 | 1) }

func TestQuickFieldAxioms(t *testing.T) {
	f := field63()
	mask := uint64(1)<<63 - 1
	assoc := func(a, b, c uint64) bool {
		a, b, c = a&mask, b&mask, c&mask
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("associativity: %v", err)
	}
	distrib := func(a, b, c uint64) bool {
		a, b, c = a&mask, b&mask, c&mask
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(distrib, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	identity := func(a uint64) bool {
		a &= mask
		return f.Mul(a, 1) == a && f.Mul(1, a) == a
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("identity: %v", err)
	}
	inverse := func(a uint64) bool {
		a &= mask
		if a == 0 {
			return true
		}
		return f.Mul(a, f.Inv(a)) == 1
	}
	if err := quick.Check(inverse, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("inverse: %v", err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) must panic")
		}
	}()
	field63().Inv(0)
}

func TestPow(t *testing.T) {
	f := field63()
	if got := f.Pow(12345, 0); got != 1 {
		t.Errorf("a^0 = %d, want 1", got)
	}
	if got := f.Pow(12345, 1); got != 12345 {
		t.Errorf("a^1 = %d", got)
	}
	if got := f.Pow(12345, 3); got != f.Cube(12345) {
		t.Errorf("a^3 != Cube: %d", got)
	}
	// Fermat: a^(2^m - 1) == 1 for a != 0.
	e := uint64(1)<<63 - 1
	if got := f.Pow(987654321, e); got != 1 {
		t.Errorf("a^(2^m-1) = %d, want 1", got)
	}
}

func TestMulX(t *testing.T) {
	f := field63()
	q := func(a uint64) bool {
		a &= uint64(1)<<63 - 1
		return f.MulX(a) == f.Mul(a, 2)
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBit0MulMask(t *testing.T) {
	f := field63()
	mask := uint64(1)<<63 - 1
	q := func(c, z uint64) bool {
		c, z = c&mask, z&mask
		m := f.Bit0MulMask(z)
		want := f.Mul(c, z) & 1
		got := uint64(bits.OnesCount64(c&m) & 1)
		return got == want
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReduce(t *testing.T) {
	f := MustField(0b111)
	if got := f.Reduce(0b100); got != 0b11 {
		t.Errorf("Reduce(x^2) = %#b, want 11", got)
	}
}

func TestModPanicsOnZeroModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mod with zero modulus must panic")
		}
	}()
	Mod(5, 0)
}

func TestMod128PanicsOnConstantModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mod128 with constant modulus must panic")
		}
	}()
	Mod128(1, 2, 1)
}

func BenchmarkMul63(b *testing.B) {
	f := field63()
	b.ReportAllocs()
	var acc uint64 = 0x123456789abcdef
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, 0x0fedcba987654321)
	}
	sink = acc
}

func BenchmarkCube63(b *testing.B) {
	f := field63()
	var acc uint64 = 0x123456789abcdef
	for i := 0; i < b.N; i++ {
		acc = f.Cube(acc | 1)
	}
	sink = acc
}

var sink uint64

// The table-driven Field reduction (mod128 via byte folds) and the
// spread-table Square are the hot-path fast paths; they must agree
// bit-for-bit with the generic Clmul/Mod128 reference on every degree,
// including the small-degree fallback below 8.
func TestFieldMulMatchesGenericMulMod(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for _, deg := range []int{2, 4, 7, 8, 9, 15, 31, 32, 61, 62, 63} {
		f := MustField(DefaultModulus(deg))
		for i := 0; i < 500; i++ {
			a, b := rng.Uint64(), rng.Uint64()
			hi, lo := Clmul(a, b)
			if got, want := f.Mul(a, b), Mod128(hi, lo, f.Modulus()); got != want {
				t.Fatalf("deg %d: Mul(%#x, %#x) = %#x, generic %#x", deg, a, b, got, want)
			}
		}
	}
}

func TestFieldSquareMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for _, deg := range []int{2, 7, 8, 31, 61, 62, 63} {
		f := MustField(DefaultModulus(deg))
		for i := 0; i < 500; i++ {
			a := rng.Uint64()
			hi, lo := Clmul(a, a)
			if got, want := f.Square(a), Mod128(hi, lo, f.Modulus()); got != want {
				t.Fatalf("deg %d: Square(%#x) = %#x, generic %#x", deg, a, got, want)
			}
		}
	}
}
