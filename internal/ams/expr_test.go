package ams

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestExpandSumAndProduct(t *testing.T) {
	// (C1 + C2) × C3 = C1·C3 + C2·C3.
	e := Mul{L: Add{L: Count{1}, R: Count{2}}, R: Count{3}}
	ts, err := Expand(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d terms: %+v", len(ts), ts)
	}
	for _, term := range ts {
		if term.Coef != 1 || len(term.Values) != 2 {
			t.Errorf("bad term %+v", term)
		}
	}
}

func TestExpandCombinesLikeTerms(t *testing.T) {
	// C1 + C1 = 2·C1.
	ts, err := Expand(Add{L: Count{1}, R: Count{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Coef != 2 {
		t.Errorf("got %+v, want single term with coef 2", ts)
	}
}

func TestExpandCancellation(t *testing.T) {
	// C1 − C1 = 0: all terms vanish.
	ts, err := Expand(Sub{L: Count{1}, R: Count{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Errorf("got %+v, want no terms", ts)
	}
}

func TestExpandRejectsSelfProduct(t *testing.T) {
	if _, err := Expand(Mul{L: Count{5}, R: Count{5}}); err == nil {
		t.Error("C5 × C5 must be rejected")
	}
	// Also through distribution: (C1+C2) × C2.
	if _, err := Expand(Mul{L: Add{L: Count{1}, R: Count{2}}, R: Count{2}}); err == nil {
		t.Error("product overlapping through a sum must be rejected")
	}
}

func TestExpandNilExpr(t *testing.T) {
	if _, err := Expand(nil); err == nil {
		t.Error("nil expression must be rejected")
	}
}

func TestExprString(t *testing.T) {
	e := Sub{L: Mul{L: Count{1}, R: Count{2}}, R: Count{3}}
	if got := ExprString(e); got != "((C(1) * C(2)) - C(3))" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestRequiredIndependence(t *testing.T) {
	cases := []struct {
		e    Expr
		want int
	}{
		{Count{1}, 4},
		{Add{L: Count{1}, R: Count{2}}, 4},
		{Mul{L: Count{1}, R: Count{2}}, 4},
		{Mul{L: Mul{L: Count{1}, R: Count{2}}, R: Count{3}}, 6},
	}
	for _, c := range cases {
		got, err := RequiredIndependence(c.e)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("RequiredIndependence(%s) = %d, want %d", ExprString(c.e), got, c.want)
		}
	}
	if _, err := RequiredIndependence(Mul{L: Count{1}, R: Count{1}}); err == nil {
		t.Error("invalid expression must propagate the error")
	}
}

func TestEstimateExprDegreeGuards(t *testing.T) {
	se := bchSeeds(t, 2, 2, 30)
	s := se.NewSketch()
	// Degree 3 needs 6-wise; BCH is 4-wise.
	deg3 := Mul{L: Mul{L: Count{1}, R: Count{2}}, R: Count{3}}
	if _, err := s.EstimateExpr(deg3, nil); err == nil {
		t.Error("degree-3 expression on a 4-wise sketch must fail")
	}
	// Degree 2 is allowed on 4-wise.
	if _, err := s.EstimateExpr(Mul{L: Count{1}, R: Count{2}}, nil); err != nil {
		t.Errorf("degree-2 on 4-wise: %v", err)
	}
	if _, err := s.EstimateExpr(Mul{L: Count{1}, R: Count{1}}, nil); err == nil {
		t.Error("self-product must fail")
	}
	// Degree beyond the factorial table.
	var big Expr = Count{100}
	for v := uint64(101); v < 112; v++ {
		big = Mul{L: big, R: Count{v}}
	}
	ps := polySeeds(t, 24, 1, 1, 31)
	if _, err := ps.NewSketch().EstimateExpr(big, nil); err == nil {
		t.Error("degree-12 expression must be rejected")
	}
}

func TestEstimateExprEmptyAfterCancellation(t *testing.T) {
	s := bchSeeds(t, 2, 2, 32).NewSketch()
	got, err := s.EstimateExpr(Sub{L: Count{1}, R: Count{1}}, nil)
	if err != nil || got != 0 {
		t.Errorf("cancelled expression = %v, %v; want 0, nil", got, err)
	}
}

// A single count as an expression must agree exactly with
// EstimateCount.
func TestEstimateExprMatchesEstimateCount(t *testing.T) {
	se := bchSeeds(t, 5, 3, 33)
	s := se.NewSketch()
	for v := uint64(1); v <= 20; v++ {
		s.Update(v, int64(v))
	}
	want := s.EstimateCount(7, nil)
	got, err := s.EstimateExpr(Count{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("expr estimate %v != count estimate %v", got, want)
	}
}

// A sum expression must agree exactly with EstimateSetCount (both are
// the Equation-6 estimator).
func TestEstimateExprSumMatchesSetCount(t *testing.T) {
	se := bchSeeds(t, 5, 3, 34)
	s := se.NewSketch()
	for v := uint64(1); v <= 20; v++ {
		s.Update(v, int64(v))
	}
	want := s.EstimateSetCount([]uint64{3, 9, 15}, nil)
	e, err := SumOfCounts([]uint64{3, 9, 15})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.EstimateExpr(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sum expr %v != set estimate %v", got, want)
	}
}

// Empirical unbiasedness of the product estimator (Example 3):
// E(X²/2!·ξ_a ξ_b) = f_a·f_b.
func TestEstimateProductUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(300, 400))
	const trials = 6000
	sum := 0.0
	e := Mul{L: Count{10}, R: Count{20}}
	for i := 0; i < trials; i++ {
		se := polySeeds(t, 6, 1, 1, 0)
		_ = se
		// polySeeds uses a fixed PCG; draw from rng instead for
		// independent trials.
		famSe, err := NewSeeds(se.Family(), 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := famSe.NewSketch()
		s.Update(10, 3)
		s.Update(20, 4)
		got, err := s.EstimateExpr(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	mean := sum / trials
	// True value 12; per-trial variance ≈ (1+2n)/4·SJ² with SJ=25
	// (Appendix B) → σ of mean ≈ sqrt(780/6000) ≈ 0.36.
	if math.Abs(mean-12) > 2.0 {
		t.Errorf("mean product estimate %v, want ≈ 12", mean)
	}
}

// Empirical unbiasedness of a mixed expression:
// C_a·C_b + C_c − C_a = 12 + 5 − 3 = 14.
func TestEstimateMixedExpressionUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(301, 401))
	const trials = 6000
	base := polySeeds(t, 6, 1, 1, 0)
	e := Sub{L: Add{L: Mul{L: Count{10}, R: Count{20}}, R: Count{30}}, R: Count{10}}
	sum := 0.0
	for i := 0; i < trials; i++ {
		se, err := NewSeeds(base.Family(), 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := se.NewSketch()
		s.Update(10, 3)
		s.Update(20, 4)
		s.Update(30, 5)
		got, err := s.EstimateExpr(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	mean := sum / trials
	if math.Abs(mean-14) > 3.0 {
		t.Errorf("mean mixed estimate %v, want ≈ 14", mean)
	}
}

func TestSumProductBuilders(t *testing.T) {
	if _, err := SumOfCounts(nil); err == nil {
		t.Error("empty sum must fail")
	}
	if _, err := ProductOfCounts(nil); err == nil {
		t.Error("empty product must fail")
	}
	e, err := ProductOfCounts([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Expand(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || len(ts[0].Values) != 3 {
		t.Errorf("product expansion wrong: %+v", ts)
	}
	s, err := SumOfCounts([]uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(Count); !ok {
		t.Error("singleton sum must be the bare count")
	}
}

// Appendix B: the variance of the product estimator is bounded by
// (1+2n)/4 · SJ(S)². Check empirically on a small stream.
func TestProductEstimatorVarianceWithinBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(500, 600))
	base := polySeeds(t, 6, 1, 1, 0)
	e := Mul{L: Count{1}, R: Count{2}}
	// Stream: f = {3, 4, 2} → SJ = 9+16+4 = 29, n = 3 distinct values.
	const truth = 12.0
	const trials = 4000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		se, err := NewSeeds(base.Family(), 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := se.NewSketch()
		s.Update(1, 3)
		s.Update(2, 4)
		s.Update(3, 2)
		got, err := s.EstimateExpr(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
		sumSq += got * got
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	bound := VarBoundProduct(3, 29)
	if variance > bound*1.1 {
		t.Errorf("empirical variance %.1f exceeds Appendix B bound %.1f", variance, bound)
	}
	if math.Abs(mean-truth) > 2 {
		t.Errorf("mean %.2f, want ≈ %v", mean, truth)
	}
	t.Logf("mean %.2f, variance %.1f (bound %.1f)", mean, variance, bound)
}

// Equation 7: the set estimator's variance stays within 2(t-1)·SJ.
func TestSetEstimatorVarianceWithinBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 601))
	fam := bchSeeds(t, 1, 1, 0).Family()
	vs := []uint64{1, 2, 3}
	const trials = 4000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		se, err := NewSeeds(fam, 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := se.NewSketch()
		s.Update(1, 3)
		s.Update(2, 4)
		s.Update(3, 2)
		s.Update(4, 5)
		got := s.EstimateSetCount(vs, nil)
		sum += got
		sumSq += got * got
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	// SJ = 9+16+4+25 = 54; bound = 2·2·54 = 216.
	bound := VarBoundSet(3, 54)
	if variance > bound*1.1 {
		t.Errorf("empirical variance %.1f exceeds Equation 7 bound %.1f", variance, bound)
	}
	if math.Abs(mean-9) > 1 {
		t.Errorf("mean %.2f, want ≈ 9", mean)
	}
}
