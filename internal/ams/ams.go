// Package ams implements AMS sketches (Alon, Matias, Szegedy) boosted
// by the standard averaging/median-selection technique, as used by
// SketchTree (paper §3).
//
// An atomic sketch is the randomized linear projection X = Σ f_i ξ_i of
// the frequency vector of a stream, maintained online by adding ξ_v on
// every arrival of value v (and subtracting it on deletion). A boosted
// sketch keeps s1 × s2 independent atomic sketches: averaging s1 of
// them controls accuracy (Chebyshev), taking the median of s2 averages
// controls confidence (Chernoff).
//
// Seeds is separated from Sketch so that several sketches — the
// paper's virtual streams (§5.3) — can share one set of ξ generators;
// sharing makes the cell-wise sum of two sketches the sketch of the
// union of their streams.
package ams

import (
	"fmt"
	"math"
	"sort"

	"sketchtree/internal/xi"
)

// Seeds holds the s1 × s2 independent ξ generators of a boosted
// sketch. The generator for row i (confidence index, 0 <= i < s2) and
// column j (accuracy index, 0 <= j < s1) is at cell index i*s1 + j.
type Seeds struct {
	fam    *xi.Family
	s1, s2 int
	gens   []*xi.Generator

	// batch is the flattened word-major view of gens, built once at
	// construction: the per-pattern sketch update touches all s1×s2
	// cells, and the batch layout turns that into contiguous-array
	// passes instead of one pointer chase per cell.
	batch *xi.Batch
}

// NewSeeds draws s1 × s2 independent generators of the family from
// rnd.
func NewSeeds(fam *xi.Family, s1, s2 int, rnd interface{ Uint64() uint64 }) (*Seeds, error) {
	if s1 < 1 || s2 < 1 {
		return nil, fmt.Errorf("ams: s1=%d, s2=%d must be positive", s1, s2)
	}
	se := &Seeds{fam: fam, s1: s1, s2: s2, gens: make([]*xi.Generator, s1*s2)}
	for i := range se.gens {
		se.gens[i] = fam.NewGenerator(rnd)
	}
	b, err := xi.NewBatch(se.gens)
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	se.batch = b
	return se, nil
}

// S1 returns the accuracy parameter (instances averaged per row).
func (se *Seeds) S1() int { return se.s1 }

// S2 returns the confidence parameter (rows medianed).
func (se *Seeds) S2() int { return se.s2 }

// Cells returns s1 × s2.
func (se *Seeds) Cells() int { return len(se.gens) }

// Family returns the ξ family of the seeds.
func (se *Seeds) Family() *xi.Family { return se.fam }

// Prepare computes the value-side ξ preparation shared by all cells.
//
//lint:hotpath
func (se *Seeds) Prepare(v uint64, p *xi.Prep) *xi.Prep {
	return se.fam.Prepare(v, p)
}

// Xi evaluates cell c's ±1 variable on a prepared value.
func (se *Seeds) Xi(c int, p *xi.Prep) int8 { return se.gens[c].Xi(p) }

// Words exports every generator's seed words (row-major cell order)
// for synopsis persistence.
func (se *Seeds) Words() [][]uint64 {
	out := make([][]uint64, len(se.gens))
	for i, g := range se.gens {
		out[i] = g.SeedWords()
	}
	return out
}

// SeedsFromWords reconstructs a Seeds from the output of Words.
func SeedsFromWords(fam *xi.Family, s1, s2 int, words [][]uint64) (*Seeds, error) {
	if s1 < 1 || s2 < 1 {
		return nil, fmt.Errorf("ams: s1=%d, s2=%d must be positive", s1, s2)
	}
	if len(words) != s1*s2 {
		return nil, fmt.Errorf("ams: %d seed records for %d cells", len(words), s1*s2)
	}
	se := &Seeds{fam: fam, s1: s1, s2: s2, gens: make([]*xi.Generator, s1*s2)}
	for i, w := range words {
		g, err := fam.GeneratorFromWords(w)
		if err != nil {
			return nil, fmt.Errorf("ams: cell %d: %w", i, err)
		}
		se.gens[i] = g
	}
	b, err := xi.NewBatch(se.gens)
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	se.batch = b
	return se, nil
}

// Batch returns the flattened generator view shared by every sketch
// over these seeds.
func (se *Seeds) Batch() *xi.Batch { return se.batch }

// MemoryBytes returns the memory consumed by the stored seeds, for the
// paper's synopsis-size accounting ("independent random seeds required
// for constructing four-wise independent binary random variables").
func (se *Seeds) MemoryBytes() int {
	n := 0
	for _, g := range se.gens {
		n += g.MemoryBytes()
	}
	return n
}

// Sketch is a boosted AMS sketch: one int64 counter per cell, updated
// under the generators of a shared Seeds.
type Sketch struct {
	seeds *Seeds
	x     []int64
}

// NewSketch returns an all-zero sketch over the seeds.
func (se *Seeds) NewSketch() *Sketch {
	return &Sketch{seeds: se, x: make([]int64, se.Cells())}
}

// Seeds returns the seed set backing the sketch.
func (s *Sketch) Seeds() *Seeds { return s.seeds }

// Counter returns the raw counter of cell c (for tests and top-k
// bookkeeping).
func (s *Sketch) Counter(c int) int64 { return s.x[c] }

// Counters returns a copy of all cell counters for persistence.
func (s *Sketch) Counters() []int64 {
	out := make([]int64, len(s.x))
	copy(out, s.x)
	return out
}

// SketchFromCounters reconstructs a sketch over the seeds from
// persisted counters.
func (se *Seeds) SketchFromCounters(x []int64) (*Sketch, error) {
	if len(x) != se.Cells() {
		return nil, fmt.Errorf("ams: %d counters for %d cells", len(x), se.Cells())
	}
	s := se.NewSketch()
	copy(s.x, x)
	return s, nil
}

// MemoryBytes returns the counter storage in bytes.
func (s *Sketch) MemoryBytes() int { return 8 * len(s.x) }

// IsZero reports whether every counter is zero.
func (s *Sketch) IsZero() bool {
	for _, v := range s.x {
		if v != 0 {
			return false
		}
	}
	return true
}

// UpdatePrepared adds delta·ξ_v to every cell for the prepared value.
// delta is the (possibly negative) multiplicity: Update(v, -m) deletes
// m instances of v, the AMS deletion property the top-k strategy
// relies on. The update runs through the flattened seed batch — one
// contiguous branchless pass over the counters, the stream-processing
// inner loop.
func (s *Sketch) UpdatePrepared(p *xi.Prep, delta int64) {
	s.seeds.batch.AddInto(p, delta, s.x)
}

// Update is UpdatePrepared with a one-off preparation of v.
func (s *Sketch) Update(v uint64, delta int64) {
	s.UpdatePrepared(s.seeds.Prepare(v, nil), delta)
}

// AddSketch adds o cell-wise into s. Both sketches must be built over
// equal seeds — the same Seeds object, or one with identical
// dimensions, family, and generator words (e.g. after persistence or
// parallel construction from the same master seed); the result is then
// the sketch of the union of the two streams.
func (s *Sketch) AddSketch(o *Sketch) error {
	if o.seeds != s.seeds && !s.seeds.Equal(o.seeds) {
		return fmt.Errorf("ams: cannot add sketches with different seeds")
	}
	for c := range s.x {
		s.x[c] += o.x[c]
	}
	return nil
}

// Equal reports whether two seed sets define the same ξ variables:
// same dimensions, same family shape, and identical generator seed
// words.
func (se *Seeds) Equal(o *Seeds) bool {
	if se == o {
		return true
	}
	if o == nil || se.s1 != o.s1 || se.s2 != o.s2 {
		return false
	}
	if se.fam.Kind() != o.fam.Kind() || se.fam.Independence() != o.fam.Independence() ||
		se.fam.Field().Modulus() != o.fam.Field().Modulus() {
		return false
	}
	for i := range se.gens {
		a, b := se.gens[i].SeedWords(), o.gens[i].SeedWords()
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy sharing the same seeds.
func (s *Sketch) Clone() *Sketch {
	c := s.seeds.NewSketch()
	copy(c.x, s.x)
	return c
}

// medianOfMeans aggregates a per-cell statistic: mean over each row of
// s1 cells, median over the s2 row means.
func (s *Sketch) medianOfMeans(cell func(c int) float64) float64 {
	return median(s.rowMeans(cell))
}

// rowMeans computes the s2 independent row means of a per-cell
// statistic — the values the median-of-means boost selects from. Each
// row mean is itself an unbiased estimator (an average of s1
// independent atomic estimators), so their empirical spread quantifies
// the uncertainty of the boosted estimate.
func (s *Sketch) rowMeans(cell func(c int) float64) []float64 {
	rows := make([]float64, s.seeds.s2)
	for i := 0; i < s.seeds.s2; i++ {
		sum := 0.0
		base := i * s.seeds.s1
		for j := 0; j < s.seeds.s1; j++ {
			sum += cell(base + j)
		}
		rows[i] = sum / float64(s.seeds.s1)
	}
	return rows
}

// RowEstimate is a point estimate together with the s2 row means it
// was selected from. Value is the median of Rows; Rows is in row order
// (not sorted).
type RowEstimate struct {
	Value float64
	Rows  []float64
}

// rowEstimate pairs the median with a row-ordered copy of the means.
func (s *Sketch) rowEstimate(cell func(c int) float64) RowEstimate {
	rows := s.rowMeans(cell)
	sorted := make([]float64, len(rows))
	copy(sorted, rows)
	return RowEstimate{Value: median(sorted), Rows: rows}
}

// StdErr returns the sample standard deviation of the row means — the
// empirical standard error of one row's estimator. It is a
// conservative standard error for the median of the rows (the median
// of s2 independent row means concentrates at least as well as a
// single row). Returns 0 when fewer than two rows exist.
func (r RowEstimate) StdErr() float64 {
	n := len(r.Rows)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range r.Rows {
		mean += x
	}
	mean /= float64(n)
	ss := 0.0
	for _, x := range r.Rows {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// medianInPlace sorts xs with insertion sort — s2 is a handful of rows,
// and unlike sort.Float64s it cannot allocate — and returns the median.
// Row means are finite (integer-valued counters), so the sorted order,
// and hence the median, is identical to sort.Float64s's.
//
//lint:hotpath
func medianInPlace(xs []float64) float64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Estimator is reusable scratch for repeated count estimation over
// sketches sharing one Seeds: the ξ preparation, the per-cell parity
// bits, and the row means live in the Estimator, so steady-state
// estimation allocates nothing. Results are bit-identical to
// EstimateCount. An Estimator is not safe for concurrent use; pool
// one per goroutine.
type Estimator struct {
	seeds *Seeds
	prep  *xi.Prep
	bits  []uint8
	rows  []float64
}

// NewEstimator returns an estimator over the seeds.
func (se *Seeds) NewEstimator() *Estimator {
	return &Estimator{
		seeds: se,
		prep:  &xi.Prep{},
		bits:  make([]uint8, se.Cells()),
		rows:  make([]float64, se.s2),
	}
}

// Count estimates the frequency of value v from the sketch, exactly as
// Sketch.EstimateCount but through the estimator's scratch.
//
//lint:hotpath
func (es *Estimator) Count(s *Sketch, v uint64, adjust []int64) float64 {
	es.seeds.Prepare(v, es.prep)
	return es.CountPrepared(s, es.prep, adjust)
}

// CountPrepared is Count for an already-prepared value — the top-k
// processing path estimates the very value whose preparation it was
// handed, so re-deriving it would double the GF(2^m) work.
//
//lint:hotpath
func (es *Estimator) CountPrepared(s *Sketch, p *xi.Prep, adjust []int64) float64 {
	se := es.seeds
	se.batch.BitsInto(p, es.bits)
	for i := 0; i < se.s2; i++ {
		sum := 0.0
		base := i * se.s1
		for j := 0; j < se.s1; j++ {
			c := base + j
			x := s.x[c]
			if adjust != nil {
				x += adjust[c]
			}
			if es.bits[c] != 0 {
				x = -x
			}
			sum += float64(x)
		}
		es.rows[i] = sum / float64(se.s1)
	}
	return medianInPlace(es.rows)
}

// EstimateCount estimates the frequency of value v: median over rows
// of the mean of ξ_v·X (paper §3.1, Theorem 1). adjust, if non-nil,
// is added cell-wise to the counters before estimation; the top-k
// strategy uses it to temporarily restore deleted frequent values
// (paper §5.2).
func (s *Sketch) EstimateCount(v uint64, adjust []int64) float64 {
	p := s.seeds.Prepare(v, nil)
	return s.medianOfMeans(func(c int) float64 {
		x := s.x[c]
		if adjust != nil {
			x += adjust[c]
		}
		return float64(int64(s.seeds.gens[c].Xi(p)) * x)
	})
}

// EstimateCountDetailed is EstimateCount returning the per-row means
// behind the median, for error-bar derivation.
func (s *Sketch) EstimateCountDetailed(v uint64, adjust []int64) RowEstimate {
	p := s.seeds.Prepare(v, nil)
	return s.rowEstimate(func(c int) float64 {
		x := s.x[c]
		if adjust != nil {
			x += adjust[c]
		}
		return float64(int64(s.seeds.gens[c].Xi(p)) * x)
	})
}

// EstimateSetCount estimates the total frequency Σ_l f_{v_l} of a set
// of distinct values using the single estimator X·Σ_l ξ_{v_l}
// (paper §3.2, Theorem 2). The caller must ensure the values are
// distinct. adjust is as in EstimateCount.
func (s *Sketch) EstimateSetCount(vs []uint64, adjust []int64) float64 {
	preps := make([]*xi.Prep, len(vs))
	for l, v := range vs {
		preps[l] = s.seeds.Prepare(v, nil)
	}
	return s.medianOfMeans(func(c int) float64 {
		coef := int64(0)
		for _, p := range preps {
			coef += int64(s.seeds.gens[c].Xi(p))
		}
		x := s.x[c]
		if adjust != nil {
			x += adjust[c]
		}
		return float64(coef * x)
	})
}

// EstimateSetCountDetailed is EstimateSetCount returning the per-row
// means behind the median, for error-bar derivation.
func (s *Sketch) EstimateSetCountDetailed(vs []uint64, adjust []int64) RowEstimate {
	preps := make([]*xi.Prep, len(vs))
	for l, v := range vs {
		preps[l] = s.seeds.Prepare(v, nil)
	}
	return s.rowEstimate(func(c int) float64 {
		coef := int64(0)
		for _, p := range preps {
			coef += int64(s.seeds.gens[c].Xi(p))
		}
		x := s.x[c]
		if adjust != nil {
			x += adjust[c]
		}
		return float64(coef * x)
	})
}

// EstimateF2 estimates the second frequency moment (self-join size) of
// the sketched stream: median over rows of the mean of X². The
// self-join size governs the estimator variance (Equation 2), so this
// is the online diagnostic for how much memory a target accuracy
// needs.
func (s *Sketch) EstimateF2(adjust []int64) float64 {
	return s.medianOfMeans(func(c int) float64 {
		x := s.x[c]
		if adjust != nil {
			x += adjust[c]
		}
		return float64(x) * float64(x)
	})
}

// Theorem1S1 returns the number s1 of averaged instances that Theorem 1
// prescribes to estimate a count fq over a stream of self-join size sj
// with relative error at most eps: s1 = 8·SJ(S) / (ε²·fq²).
func Theorem1S1(sj float64, fq float64, eps float64) int {
	if fq <= 0 || eps <= 0 {
		return math.MaxInt32
	}
	s1 := 8 * sj / (eps * eps * fq * fq)
	return int(math.Ceil(s1))
}

// Theorem2S1 returns the s1 of Theorem 2 for estimating the total
// frequency fsum of t distinct patterns: s1 = 16·(t-1)·SJ(S) /
// (ε²·fsum²).
func Theorem2S1(sj float64, t int, fsum float64, eps float64) int {
	if fsum <= 0 || eps <= 0 || t < 1 {
		return math.MaxInt32
	}
	if t == 1 {
		return Theorem1S1(sj, fsum, eps)
	}
	s1 := 16 * float64(t-1) * sj / (eps * eps * fsum * fsum)
	return int(math.Ceil(s1))
}

// S2ForConfidence returns the number s2 of medianed rows for failure
// probability at most delta: s2 = ⌈2·lg(1/δ)⌉.
func S2ForConfidence(delta float64) int {
	if delta <= 0 || delta >= 1 {
		return 1
	}
	return int(math.Ceil(2 * math.Log2(1/delta)))
}

// VarBoundSingle bounds the variance of the single-count estimator
// ξ_q·X: Var ≤ SJ(S) (Equation 2).
func VarBoundSingle(sj float64) float64 { return sj }

// VarBoundSet bounds the variance of the set estimator X·Σξ for t
// distinct patterns: Var ≤ 2·(t−1)·SJ(S) (Equation 7). t = 1 reduces
// to the single-count bound.
func VarBoundSet(t int, sj float64) float64 {
	if t <= 1 {
		return VarBoundSingle(sj)
	}
	return 2 * float64(t-1) * sj
}

// VarBoundProduct bounds the variance of the pairwise-product
// estimator X²/2!·ξ_a ξ_b over a stream with n distinct values:
// Var ≤ (1 + 2n)/4 · SJ(S)² (Appendix B, Equation 17). The bound's
// growth with SJ² is why PRODUCT workloads show larger errors than SUM
// workloads in Figure 12.
func VarBoundProduct(n int, sj float64) float64 {
	return (1 + 2*float64(n)) / 4 * sj * sj
}
