package ams

import (
	"math"
	"math/rand/v2"
	"testing"

	"sketchtree/internal/gf2"
	"sketchtree/internal/xi"
)

var field63 = gf2.MustField(1<<63 | 1<<1 | 1)

func bchSeeds(t testing.TB, s1, s2 int, seed uint64) *Seeds {
	t.Helper()
	se, err := NewSeeds(xi.NewBCHFamily(field63), s1, s2, rand.New(rand.NewPCG(seed, 17)))
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func polySeeds(t testing.TB, k, s1, s2 int, seed uint64) *Seeds {
	t.Helper()
	fam, err := xi.NewPolyFamily(field63, k)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSeeds(fam, s1, s2, rand.New(rand.NewPCG(seed, 19)))
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestNewSeedsValidation(t *testing.T) {
	fam := xi.NewBCHFamily(field63)
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewSeeds(fam, 0, 5, rng); err == nil {
		t.Error("s1=0 must be rejected")
	}
	if _, err := NewSeeds(fam, 5, 0, rng); err == nil {
		t.Error("s2=0 must be rejected")
	}
	se, err := NewSeeds(fam, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if se.S1() != 3 || se.S2() != 4 || se.Cells() != 12 || se.Family() != fam {
		t.Error("seed accessors wrong")
	}
	if se.MemoryBytes() != 12*24 {
		t.Errorf("MemoryBytes = %d, want %d", se.MemoryBytes(), 12*24)
	}
}

// With a single distinct value in the stream, ξ_v·X = f_v exactly in
// every cell, so the estimate is exact regardless of s1/s2.
func TestEstimateExactForSingleValue(t *testing.T) {
	se := bchSeeds(t, 3, 3, 2)
	s := se.NewSketch()
	const v, m = uint64(0xabcde), int64(37)
	s.Update(v, m)
	if got := s.EstimateCount(v, nil); got != float64(m) {
		t.Errorf("EstimateCount = %v, want %d exactly", got, m)
	}
	// A value never seen over a single-value stream: ξ_q·X = ±m·ξqξv;
	// just confirm magnitude.
	if got := s.EstimateCount(0x9999, nil); math.Abs(got) > float64(m) {
		t.Errorf("absent value estimate magnitude %v > %d", got, m)
	}
}

func TestDeletionInvertsInsertion(t *testing.T) {
	se := bchSeeds(t, 5, 7, 3)
	s := se.NewSketch()
	s.Update(111, 5)
	s.Update(222, 3)
	s.Update(111, -5)
	s.Update(222, -3)
	if !s.IsZero() {
		t.Error("sketch must return to zero after exact deletions")
	}
}

func TestUpdatePreparedMatchesUpdate(t *testing.T) {
	se := bchSeeds(t, 4, 4, 4)
	a, b := se.NewSketch(), se.NewSketch()
	p := se.Prepare(777, nil)
	a.Update(777, 9)
	b.UpdatePrepared(p, 9)
	for c := 0; c < se.Cells(); c++ {
		if a.Counter(c) != b.Counter(c) {
			t.Fatal("prepared update disagrees with direct update")
		}
	}
}

func TestAddSketchSharedSeeds(t *testing.T) {
	se := bchSeeds(t, 4, 4, 5)
	a, b, u := se.NewSketch(), se.NewSketch(), se.NewSketch()
	a.Update(1, 3)
	a.Update(2, 1)
	b.Update(2, 4)
	b.Update(3, 2)
	u.Update(1, 3)
	u.Update(2, 5)
	u.Update(3, 2)
	if err := a.AddSketch(b); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < se.Cells(); c++ {
		if a.Counter(c) != u.Counter(c) {
			t.Fatal("sum of sketches must equal sketch of union")
		}
	}
}

func TestAddSketchDifferentSeedsRejected(t *testing.T) {
	a := bchSeeds(t, 2, 2, 6).NewSketch()
	b := bchSeeds(t, 2, 2, 7).NewSketch()
	if err := a.AddSketch(b); err == nil {
		t.Error("adding sketches with different seeds must fail")
	}
}

func TestClone(t *testing.T) {
	se := bchSeeds(t, 2, 2, 8)
	s := se.NewSketch()
	s.Update(5, 10)
	c := s.Clone()
	c.Update(5, -10)
	if !c.IsZero() {
		t.Error("clone must carry the counters")
	}
	if s.IsZero() {
		t.Error("mutating the clone must not affect the original")
	}
	if s.Seeds() != c.Seeds() {
		t.Error("clone must share seeds")
	}
	if s.MemoryBytes() != 8*se.Cells() {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
}

// Empirical unbiasedness of the count estimator: over many independent
// seed draws, the mean of the atomic estimate converges to the true
// frequency (Equation 1).
func TestEstimateCountUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	fam := xi.NewBCHFamily(field63)
	const trials = 4000
	sum := 0.0
	for i := 0; i < trials; i++ {
		se, err := NewSeeds(fam, 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := se.NewSketch()
		s.Update(10, 3)
		s.Update(20, 2)
		s.Update(30, 7)
		sum += s.EstimateCount(10, nil)
	}
	mean := sum / trials
	// Var(ξq·X) <= SJ = 9+4+49 = 62; σ of the mean ≈ sqrt(62/4000) ≈ 0.12.
	if math.Abs(mean-3) > 0.7 {
		t.Errorf("mean estimate %v, want ≈ 3", mean)
	}
}

// Empirical unbiasedness of the set estimator (Equation 6).
func TestEstimateSetCountUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 201))
	fam := xi.NewBCHFamily(field63)
	const trials = 4000
	sum := 0.0
	for i := 0; i < trials; i++ {
		se, err := NewSeeds(fam, 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := se.NewSketch()
		s.Update(10, 3)
		s.Update(20, 2)
		s.Update(30, 7)
		sum += s.EstimateSetCount([]uint64{10, 30}, nil)
	}
	mean := sum / trials
	if math.Abs(mean-10) > 1.2 {
		t.Errorf("mean set estimate %v, want ≈ 10", mean)
	}
}

// Boosting: with generous s1 and s2 a single sketch should land close
// to the true count on a moderately skewed stream.
func TestEstimateCountBoosted(t *testing.T) {
	se := bchSeeds(t, 400, 7, 9)
	s := se.NewSketch()
	// f(v) = 101-v for v in 1..100: SJ ≈ 338k, f(1)=100.
	for v := uint64(1); v <= 100; v++ {
		s.Update(v, int64(101-v))
	}
	got := s.EstimateCount(1, nil)
	if math.Abs(got-100) > 25 {
		t.Errorf("boosted estimate %v, want 100 ± 25", got)
	}
}

func TestEstimateF2(t *testing.T) {
	se := bchSeeds(t, 600, 7, 10)
	s := se.NewSketch()
	s.Update(1, 3)
	s.Update(2, 4)
	// F2 = 25; X² per cell = 25 ± 24, averaging 600 cells tightens.
	got := s.EstimateF2(nil)
	if math.Abs(got-25) > 6 {
		t.Errorf("F2 estimate %v, want 25 ± 6", got)
	}
}

func TestAdjustRestoresDeletedValue(t *testing.T) {
	se := bchSeeds(t, 4, 3, 11)
	s := se.NewSketch()
	s.Update(42, 9)
	// Delete it (as top-k would), then estimate with the compensation
	// vector d_c = ξ_42(c)·9: must recover 9 exactly (single value).
	s.Update(42, -9)
	adj := make([]int64, se.Cells())
	p := se.Prepare(42, nil)
	for c := range adj {
		adj[c] = int64(se.Xi(c, p)) * 9
	}
	if got := s.EstimateCount(42, adj); got != 9 {
		t.Errorf("adjusted estimate %v, want exactly 9", got)
	}
	if got := s.EstimateCount(42, nil); got != 0 {
		t.Errorf("unadjusted estimate %v, want 0", got)
	}
}

func TestMedianOfMeansAgainstManual(t *testing.T) {
	se := bchSeeds(t, 2, 3, 12)
	s := se.NewSketch()
	s.Update(7, 5)
	s.Update(8, 2)
	p := se.Prepare(7, nil)
	rows := make([]float64, 0, 3)
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 2; j++ {
			c := i*2 + j
			sum += float64(int64(se.Xi(c, p)) * s.Counter(c))
		}
		rows = append(rows, sum/2)
	}
	// median of 3
	a, b, c := rows[0], rows[1], rows[2]
	want := math.Max(math.Min(a, b), math.Min(math.Max(a, b), c))
	if got := s.EstimateCount(7, nil); got != want {
		t.Errorf("EstimateCount = %v, manual median-of-means = %v", got, want)
	}
}

func TestMedianEvenRows(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median of 1..4 = %v, want 2.5", got)
	}
	if got := median([]float64{5}); got != 5 {
		t.Errorf("median of singleton = %v", got)
	}
}

func TestTheoremHelpers(t *testing.T) {
	// Theorem 1: s1 = 8·SJ/(ε²f²).
	if got := Theorem1S1(1000, 10, 0.1); got != 8000 {
		t.Errorf("Theorem1S1 = %d, want 8000", got)
	}
	if got := Theorem1S1(1000, 0, 0.1); got != math.MaxInt32 {
		t.Error("zero frequency must be sentinel")
	}
	if got := Theorem1S1(1000, 10, 0); got != math.MaxInt32 {
		t.Error("zero epsilon must be sentinel")
	}
	// Theorem 2: s1 = 16·(t-1)·SJ/(ε²·fsum²).
	if got := Theorem2S1(1000, 3, 20, 0.1); got != 8000 {
		t.Errorf("Theorem2S1 = %d, want 8000", got)
	}
	if got := Theorem2S1(1000, 1, 10, 0.1); got != Theorem1S1(1000, 10, 0.1) {
		t.Error("t=1 must fall back to Theorem 1")
	}
	if got := Theorem2S1(1000, 0, 10, 0.1); got != math.MaxInt32 {
		t.Error("t=0 must be sentinel")
	}
	// The paper's experiments use δ=0.1 and s2=7.
	if got := S2ForConfidence(0.1); got != 7 {
		t.Errorf("S2ForConfidence(0.1) = %d, want 7 (paper footnote 3)", got)
	}
	if got := S2ForConfidence(0.5); got != 2 {
		t.Errorf("S2ForConfidence(0.5) = %d, want 2", got)
	}
	if got := S2ForConfidence(0); got != 1 {
		t.Error("invalid delta must clamp to 1")
	}
	if got := S2ForConfidence(1); got != 1 {
		t.Error("invalid delta must clamp to 1")
	}
}

func BenchmarkUpdatePrepared175Cells(b *testing.B) {
	// The paper's typical configuration: s1=25, s2=7.
	se := bchSeeds(b, 25, 7, 42)
	s := se.NewSketch()
	p := se.Prepare(0xdeadbeef, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.UpdatePrepared(p, 1)
	}
}

func BenchmarkEstimateCount(b *testing.B) {
	se := bchSeeds(b, 25, 7, 43)
	s := se.NewSketch()
	for v := uint64(0); v < 100; v++ {
		s.Update(v, int64(v%10)+1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkF = s.EstimateCount(50, nil)
	}
}

var sinkF float64

func TestSeedsWordsRoundTrip(t *testing.T) {
	se := bchSeeds(t, 3, 2, 81)
	re, err := SeedsFromWords(se.Family(), 3, 2, se.Words())
	if err != nil {
		t.Fatal(err)
	}
	p := se.Prepare(12345, nil)
	for c := 0; c < se.Cells(); c++ {
		if se.Xi(c, p) != re.Xi(c, p) {
			t.Fatal("restored seeds disagree")
		}
	}
	if _, err := SeedsFromWords(se.Family(), 3, 3, se.Words()); err == nil {
		t.Error("cell count mismatch must fail")
	}
	if _, err := SeedsFromWords(se.Family(), 0, 2, nil); err == nil {
		t.Error("invalid dimensions must fail")
	}
	bad := se.Words()
	bad[0] = bad[0][:1]
	if _, err := SeedsFromWords(se.Family(), 3, 2, bad); err == nil {
		t.Error("short seed record must fail")
	}
}

func TestSketchCountersRoundTrip(t *testing.T) {
	se := bchSeeds(t, 3, 2, 82)
	s := se.NewSketch()
	s.Update(7, 5)
	s.Update(9, 2)
	r, err := se.SketchFromCounters(s.Counters())
	if err != nil {
		t.Fatal(err)
	}
	if r.EstimateCount(7, nil) != s.EstimateCount(7, nil) {
		t.Error("restored sketch estimates differ")
	}
	// Counters is a copy.
	c := s.Counters()
	c[0] = 999
	if s.Counter(0) == 999 && s.Counter(0) != c[0]-0 {
		t.Error("Counters must copy")
	}
	if _, err := se.SketchFromCounters([]int64{1}); err == nil {
		t.Error("wrong counter length must fail")
	}
}

func TestVarianceBounds(t *testing.T) {
	if got := VarBoundSingle(100); got != 100 {
		t.Errorf("VarBoundSingle = %v", got)
	}
	if got := VarBoundSet(1, 100); got != 100 {
		t.Errorf("VarBoundSet(1) must reduce to single: %v", got)
	}
	if got := VarBoundSet(4, 100); got != 600 {
		t.Errorf("VarBoundSet(4, 100) = %v, want 600", got)
	}
	if got := VarBoundProduct(2, 10); got != 125 {
		t.Errorf("VarBoundProduct(2, 10) = %v, want (1+4)/4*100 = 125", got)
	}
}

func TestSeedsEqual(t *testing.T) {
	a := bchSeeds(t, 3, 2, 90)
	b := bchSeeds(t, 3, 2, 90) // same PCG seed → same words
	c := bchSeeds(t, 3, 2, 91)
	d := bchSeeds(t, 2, 3, 90)
	if !a.Equal(a) || !a.Equal(b) {
		t.Error("equal seeds not recognized")
	}
	if a.Equal(c) {
		t.Error("different words must not be equal")
	}
	if a.Equal(d) {
		t.Error("different dimensions must not be equal")
	}
	if a.Equal(nil) {
		t.Error("nil must not be equal")
	}
	p := polySeeds(t, 6, 3, 2, 90)
	if a.Equal(p) {
		t.Error("different families must not be equal")
	}
	// AddSketch across equal-content seeds works.
	s1 := a.NewSketch()
	s2 := b.NewSketch()
	s2.Update(5, 3)
	if err := s1.AddSketch(s2); err != nil {
		t.Fatalf("equal-content add: %v", err)
	}
	if got := s1.EstimateCount(5, nil); got != 3 {
		t.Errorf("added estimate = %v, want 3", got)
	}
}

func BenchmarkEstimateSetCount3(b *testing.B) {
	se := bchSeeds(b, 25, 7, 44)
	s := se.NewSketch()
	for v := uint64(0); v < 200; v++ {
		s.Update(v, int64(v%10)+1)
	}
	vs := []uint64{10, 20, 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkF = s.EstimateSetCount(vs, nil)
	}
}

func BenchmarkEstimateExprProduct(b *testing.B) {
	se := polySeeds(b, 6, 25, 7, 45)
	s := se.NewSketch()
	for v := uint64(0); v < 200; v++ {
		s.Update(v, int64(v%10)+1)
	}
	e := Mul{L: Count{10}, R: Count{20}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := s.EstimateExpr(e, nil)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = v
	}
}

func BenchmarkEstimateF2(b *testing.B) {
	se := bchSeeds(b, 25, 7, 46)
	s := se.NewSketch()
	for v := uint64(0); v < 200; v++ {
		s.Update(v, int64(v%10)+1)
	}
	for i := 0; i < b.N; i++ {
		sinkF = s.EstimateF2(nil)
	}
}

// Estimator must be a pure reorganization of EstimateCount: same
// median-of-means, same float arithmetic, zero allocations in steady
// state.
func TestEstimatorMatchesEstimateCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 34))
	fam := xi.NewBCHFamily(gf2.MustField(gf2.DefaultModulus(63)))
	seeds, err := NewSeeds(fam, 25, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	sk := seeds.NewSketch()
	vals := make([]uint64, 200)
	for i := range vals {
		vals[i] = rng.Uint64()
		sk.Update(vals[i], int64(rng.IntN(9)+1))
	}
	adjust := make([]int64, seeds.Cells())
	for c := range adjust {
		adjust[c] = int64(rng.IntN(5) - 2)
	}
	es := seeds.NewEstimator()
	p := &xi.Prep{}
	for _, v := range vals[:50] {
		for _, adj := range [][]int64{nil, adjust} {
			want := sk.EstimateCount(v, adj)
			if got := es.Count(sk, v, adj); got != want {
				t.Fatalf("Count(%#x) = %v, EstimateCount %v", v, got, want)
			}
			fam.Prepare(v, p)
			if got := es.CountPrepared(sk, p, adj); got != want {
				t.Fatalf("CountPrepared(%#x) = %v, EstimateCount %v", v, got, want)
			}
		}
	}
}

func TestEstimatorZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 89))
	fam := xi.NewBCHFamily(gf2.MustField(gf2.DefaultModulus(63)))
	seeds, err := NewSeeds(fam, 25, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	sk := seeds.NewSketch()
	sk.Update(42, 3)
	es := seeds.NewEstimator()
	es.Count(sk, 42, nil) // warm the Prep
	if n := testing.AllocsPerRun(100, func() { es.Count(sk, 42, nil) }); n != 0 {
		t.Errorf("Estimator.Count allocates %v per run, want 0", n)
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 4))
	for n := 1; n <= 9; n++ {
		for trial := 0; trial < 200; trial++ {
			a := make([]float64, n)
			for i := range a {
				a[i] = float64(rng.IntN(20) - 10)
			}
			b := append([]float64(nil), a...)
			if got, want := medianInPlace(a), median(b); got != want {
				t.Fatalf("n=%d: medianInPlace %v, median %v", n, got, want)
			}
		}
	}
}
