// Package exact implements the deterministic baseline that SketchTree
// is compared against (paper §1, §2.2): one counter per distinct
// one-dimensional value (tree pattern). It provides exact answers,
// exact self-join sizes, and exact top-k lists — the ground truth for
// the experiment harness and the memory-cost baseline of Table 1.
package exact

import (
	"sort"
)

// ValueCount pairs a value with its frequency.
type ValueCount struct {
	Value uint64
	Count int64
}

// Counter counts every distinct value exactly.
type Counter struct {
	counts   map[uint64]int64
	total    int64
	selfJoin int64 // Σ f², maintained incrementally
}

// New returns an empty counter.
func New() *Counter {
	return &Counter{counts: make(map[uint64]int64)}
}

// Add adds delta occurrences of v (delta may be negative; a count
// dropping to zero removes the entry).
func (c *Counter) Add(v uint64, delta int64) {
	f := c.counts[v]
	nf := f + delta
	c.selfJoin += nf*nf - f*f
	c.total += delta
	if nf == 0 {
		delete(c.counts, v)
		return
	}
	c.counts[v] = nf
}

// Count returns the exact frequency of v.
func (c *Counter) Count(v uint64) int64 { return c.counts[v] }

// Distinct returns the number of distinct values seen — the number of
// counters a deterministic approach must maintain (Table 1's
// "# of Distinct Tree Patterns").
func (c *Counter) Distinct() int { return len(c.counts) }

// Total returns the stream length (sum of all frequencies).
func (c *Counter) Total() int64 { return c.total }

// SelfJoinSize returns SJ(S) = Σ f² — the quantity that drives the
// sketch variance bounds (Equation 2).
func (c *Counter) SelfJoinSize() int64 { return c.selfJoin }

// TopK returns the k most frequent values, most frequent first; ties
// break by ascending value for determinism. k larger than the number
// of distinct values returns all of them.
func (c *Counter) TopK(k int) []ValueCount {
	if k <= 0 {
		return nil
	}
	all := make([]ValueCount, 0, len(c.counts))
	for v, f := range c.counts {
		all = append(all, ValueCount{v, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// ForEach visits every (value, count) pair in ascending value order.
// The order is part of the contract: persistence serializes the shadow
// counter through this method, and the snapshot encoding must be
// byte-deterministic for the golden files and merge checks.
func (c *Counter) ForEach(fn func(v uint64, count int64)) {
	vs := make([]uint64, 0, len(c.counts))
	for v := range c.counts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		fn(v, c.counts[v])
	}
}

// MemoryBytes approximates the footprint of the counter table: 16
// bytes of payload per entry plus Go map overhead (~1.7x). This is the
// baseline SketchTree's limited-memory synopsis is measured against.
func (c *Counter) MemoryBytes() int {
	return int(float64(len(c.counts)*16) * 1.7)
}
