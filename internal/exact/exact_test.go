package exact

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasicCounting(t *testing.T) {
	c := New()
	c.Add(1, 3)
	c.Add(2, 5)
	c.Add(1, 2)
	if got := c.Count(1); got != 5 {
		t.Errorf("Count(1) = %d, want 5", got)
	}
	if got := c.Count(2); got != 5 {
		t.Errorf("Count(2) = %d, want 5", got)
	}
	if got := c.Count(99); got != 0 {
		t.Errorf("Count(99) = %d, want 0", got)
	}
	if got := c.Distinct(); got != 2 {
		t.Errorf("Distinct = %d, want 2", got)
	}
	if got := c.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := c.SelfJoinSize(); got != 50 {
		t.Errorf("SelfJoinSize = %d, want 50", got)
	}
}

func TestDeletionRemovesEntry(t *testing.T) {
	c := New()
	c.Add(7, 4)
	c.Add(7, -4)
	if c.Distinct() != 0 || c.Total() != 0 || c.SelfJoinSize() != 0 {
		t.Errorf("after full deletion: distinct=%d total=%d sj=%d",
			c.Distinct(), c.Total(), c.SelfJoinSize())
	}
}

func TestQuickSelfJoinMatchesRecompute(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New()
		for _, op := range ops {
			v := uint64(op % 50)
			delta := int64(op%7) - 3
			c.Add(v, delta)
		}
		var sj, total int64
		c.ForEach(func(v uint64, f int64) {
			sj += f * f
			total += f
		})
		return sj == c.SelfJoinSize() && total == c.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	c := New()
	c.Add(10, 100)
	c.Add(20, 50)
	c.Add(30, 75)
	c.Add(40, 50)
	top := c.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	if top[0].Value != 10 || top[1].Value != 30 {
		t.Errorf("top order wrong: %+v", top)
	}
	// Tie at 50 breaks by ascending value.
	if top[2].Value != 20 {
		t.Errorf("tie break wrong: %+v", top)
	}
	if got := c.TopK(100); len(got) != 4 {
		t.Errorf("TopK beyond distinct = %d entries", len(got))
	}
	if got := c.TopK(0); got != nil {
		t.Error("TopK(0) must be nil")
	}
	if got := c.TopK(-1); got != nil {
		t.Error("TopK(-1) must be nil")
	}
}

func TestTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	c := New()
	for i := 0; i < 1000; i++ {
		c.Add(rng.Uint64()%100, 1)
	}
	a := c.TopK(10)
	b := c.TopK(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopK not deterministic")
		}
	}
}

func TestForEachSortedOrder(t *testing.T) {
	c := New()
	for _, v := range []uint64{42, 7, 99, 7, 3, 1000, 42} {
		c.Add(v, 1)
	}
	var got []uint64
	c.ForEach(func(v uint64, count int64) {
		got = append(got, v)
		if count != c.Count(v) {
			t.Errorf("ForEach count for %d = %d, want %d", v, count, c.Count(v))
		}
	})
	want := []uint64{3, 7, 42, 99, 1000}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want ascending %v", got, want)
		}
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	c := New()
	if c.MemoryBytes() != 0 {
		t.Errorf("empty counter memory = %d", c.MemoryBytes())
	}
	for v := uint64(0); v < 1000; v++ {
		c.Add(v, 1)
	}
	if c.MemoryBytes() < 16000 {
		t.Errorf("memory for 1000 entries = %d, want >= 16000", c.MemoryBytes())
	}
}
