package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand/v2"

	"sketchtree/internal/ams"
	"sketchtree/internal/enum"
	"sketchtree/internal/exact"
	"sketchtree/internal/gf2"
	"sketchtree/internal/obs"
	"sketchtree/internal/rabin"
	"sketchtree/internal/summary"
	"sketchtree/internal/topk"
	"sketchtree/internal/vstream"
	"sketchtree/internal/xi"
)

// snapshot is the serializable image of an engine. All randomized
// state — the fingerprint modulus and every ξ seed — is captured
// verbatim, so a restored engine continues the same synopsis: updates
// and estimates are bit-identical to an engine that never stopped.
// (The only divergence is the TopKProbability sampling RNG, which is
// re-seeded; it affects only which arrivals trigger top-k processing.)
type snapshot struct {
	Version            int
	Config             Config
	FingerprintModulus uint64
	SeedWords          [][]uint64
	StreamCounters     [][]int64
	TopKEntries        [][]topk.ValueFreq // nil when tracking is off
	Summary            *summary.Snapshot  // nil when summary is off
	Trees, Patterns    int64
	ExactValues        []uint64 // nil when TrackExact is off
	ExactCounts        []int64
}

const snapshotVersion = 1

// MarshalBinary serializes the complete synopsis state.
func (e *Engine) MarshalBinary() ([]byte, error) {
	sn := snapshot{
		Version:            snapshotVersion,
		Config:             e.cfg,
		FingerprintModulus: e.fp.Modulus(),
		SeedWords:          e.seeds.Words(),
		Trees:              e.trees,
		Patterns:           e.patterns,
	}
	sn.StreamCounters = make([][]int64, e.streams.P())
	for i := range sn.StreamCounters {
		sn.StreamCounters[i] = e.streams.Sketch(i).Counters()
	}
	if e.trackers != nil {
		sn.TopKEntries = make([][]topk.ValueFreq, len(e.trackers))
		for i, t := range e.trackers {
			sn.TopKEntries[i] = t.Entries()
		}
	}
	if e.sum != nil {
		s := e.sum.Snapshot()
		sn.Summary = &s
	}
	if e.truth != nil {
		e.truth.ForEach(func(v uint64, c int64) {
			sn.ExactValues = append(sn.ExactValues, v)
			sn.ExactCounts = append(sn.ExactCounts, c)
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sn); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore reconstructs an engine from MarshalBinary output.
func Restore(data []byte) (*Engine, error) {
	var sn snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sn); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if sn.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", sn.Version, snapshotVersion)
	}
	cfg := sn.Config
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	fp, err := rabin.New(sn.FingerprintModulus)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if fp.Degree() != cfg.FingerprintDegree {
		return nil, fmt.Errorf("core: modulus degree %d does not match config %d",
			fp.Degree(), cfg.FingerprintDegree)
	}
	fieldDeg := cfg.FingerprintDegree + 1
	if fieldDeg < 31 {
		fieldDeg = 31
	}
	field, err := gf2.NewField(gf2.DefaultModulus(fieldDeg))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var fam *xi.Family
	if cfg.Independence == 4 {
		fam = xi.NewBCHFamily(field)
	} else {
		fam, err = xi.NewPolyFamily(field, cfg.Independence)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	seeds, err := ams.SeedsFromWords(fam, cfg.S1, cfg.S2, sn.SeedWords)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(sn.StreamCounters) != cfg.VirtualStreams {
		return nil, fmt.Errorf("core: %d stream counter arrays for %d virtual streams",
			len(sn.StreamCounters), cfg.VirtualStreams)
	}
	streams, err := vstream.FromCounters(seeds, sn.StreamCounters)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	en, err := enum.NewEnumerator(cfg.MaxPatternEdges)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		fam:     fam,
		seeds:   seeds,
		streams: streams,
		fp:      fp,
		//lint:allow determinism the PCG is reseeded from Config.Seed and the restored tree count, so Restore is reproducible by construction
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x5ce7c47ee^uint64(sn.Trees))),
		prep:     &xi.Prep{},
		en:       en,
		plans:    newPlanCache(cfg.PlanCacheSize),
		trees:    sn.Trees,
		patterns: sn.Patterns,
		met:      &obs.Metrics{},
	}
	e.visit = e.visitPattern
	e.qest.New = func() any { return seeds.NewEstimator() }
	// Stage timings and the latency histogram are process-local and
	// start fresh, but the counters realign with the persisted totals
	// so Stats matches TreesProcessed/PatternsProcessed after restore.
	e.met.SeedCounts(sn.Trees, sn.Patterns)
	if cfg.TopK > 0 {
		if len(sn.TopKEntries) != cfg.VirtualStreams {
			return nil, fmt.Errorf("core: %d top-k records for %d virtual streams",
				len(sn.TopKEntries), cfg.VirtualStreams)
		}
		e.trackers = make([]*topk.Tracker, cfg.VirtualStreams)
		for i, entries := range sn.TopKEntries {
			t, err := topk.Restore(cfg.TopK, streams.Sketch(i), entries)
			if err != nil {
				return nil, fmt.Errorf("core: stream %d: %w", i, err)
			}
			e.trackers[i] = t
		}
	} else if sn.TopKEntries != nil {
		return nil, fmt.Errorf("core: snapshot has top-k state but config disables tracking")
	}
	if cfg.BuildSummary {
		if sn.Summary == nil {
			return nil, fmt.Errorf("core: snapshot lacks the structural summary")
		}
		e.sum, err = summary.FromSnapshot(*sn.Summary)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.TrackExact {
		if len(sn.ExactValues) != len(sn.ExactCounts) {
			return nil, fmt.Errorf("core: exact snapshot arrays disagree")
		}
		e.truth = exact.New()
		for i, v := range sn.ExactValues {
			e.truth.Add(v, sn.ExactCounts[i])
		}
	}
	return e, nil
}
