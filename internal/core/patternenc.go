package core

import (
	"encoding/binary"

	"sketchtree/internal/enum"
)

// patternEncoder serializes an enumerated pattern into the framed byte
// encoding of its extended Prüfer sequence — the exact bytes of
// prufer.OfNode(p.ToTree()).Encode — without materializing the tree or
// the sequence. AddTree runs it once per enumerated pattern, so both
// scratch slices are reused across calls; an identity test pins the
// byte-for-byte equivalence with the prufer package.
type patternEncoder struct {
	ents []pent // extended-tree nodes in postorder; ents[i] is number i+1
	nums []int  // shared child-number stack across the recursive walk
}

// pent is one extended-tree node: the postorder number of its parent
// (0 for the root) and its label. Dummy leaves keep an empty label and
// never occur as parents.
type pent struct {
	parent int
	label  string
}

// walk numbers the extended subtree of p in postorder, mirroring
// prufer.OfNode's traversal: a pattern leaf contributes a dummy child
// plus itself, an internal pattern node is visited after its chosen
// children.
//
//lint:hotpath
func (pe *patternEncoder) walk(p *enum.Pattern) int {
	if len(p.Children) == 0 {
		dummy := len(pe.ents)
		pe.ents = append(pe.ents, pent{})
		self := len(pe.ents)
		pe.ents = append(pe.ents, pent{label: p.Node.Label})
		pe.ents[dummy].parent = self + 1
		return self + 1
	}
	base := len(pe.nums)
	for _, c := range p.Children {
		n := pe.walk(c)
		pe.nums = append(pe.nums, n)
	}
	self := len(pe.ents)
	pe.ents = append(pe.ents, pent{label: p.Node.Label})
	for _, cn := range pe.nums[base:] {
		pe.ents[cn-1].parent = self + 1
	}
	pe.nums = pe.nums[:base]
	return self + 1
}

// encode appends the framed (LPS, NPS) encoding of p to buf: the
// sequence length, then per-entry label-length-prefixed LPS labels,
// then the NPS numbers, all as uvarints (prufer.Sequence.Encode's
// exact layout).
//
//lint:hotpath
func (pe *patternEncoder) encode(p *enum.Pattern, buf []byte) []byte {
	pe.ents = pe.ents[:0]
	pe.nums = pe.nums[:0]
	pe.walk(p)
	n := len(pe.ents)
	buf = binary.AppendUvarint(buf, uint64(n-1))
	for v := 1; v < n; v++ {
		l := pe.ents[pe.ents[v-1].parent-1].label
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		buf = append(buf, l...)
	}
	for v := 1; v < n; v++ {
		buf = binary.AppendUvarint(buf, uint64(pe.ents[v-1].parent))
	}
	return buf
}
