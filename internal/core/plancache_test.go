package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sketchtree/internal/tree"
)

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	c.store("a", []uint64{1})
	c.store("b", []uint64{2})
	if _, ok := c.lookup("a"); !ok { // promotes a to most-recent
		t.Fatal("a missing")
	}
	c.store("c", []uint64{3}) // evicts b, the least-recently used
	if _, ok := c.lookup("b"); ok {
		t.Error("b should have been evicted")
	}
	for key, want := range map[string]uint64{"a": 1, "c": 3} {
		vs, ok := c.lookup(key)
		if !ok || len(vs) != 1 || vs[0] != want {
			t.Errorf("lookup(%q) = %v, %v; want [%d]", key, vs, ok, want)
		}
	}
	sn := c.snapshot()
	if sn.Entries != 2 || sn.Capacity != 2 {
		t.Errorf("snapshot entries/capacity = %d/%d, want 2/2", sn.Entries, sn.Capacity)
	}
	if sn.Hits != 3 || sn.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", sn.Hits, sn.Misses)
	}
}

func TestPlanCacheStoreOverwrite(t *testing.T) {
	c := newPlanCache(2)
	c.store("a", []uint64{1})
	c.store("a", []uint64{1, 2})
	vs, ok := c.lookup("a")
	if !ok || len(vs) != 2 {
		t.Fatalf("lookup after overwrite = %v, %v", vs, ok)
	}
	if c.snapshot().Entries != 1 {
		t.Errorf("entries = %d, want 1", c.snapshot().Entries)
	}
}

func TestPlanCacheDisabledNilSafe(t *testing.T) {
	var c *planCache // disabled cache: all operations are no-ops
	if got := newPlanCache(0); got != nil {
		t.Error("newPlanCache(0) should be nil (disabled)")
	}
	c.store("a", []uint64{1})
	if _, ok := c.lookup("a"); ok {
		t.Error("nil cache should never hit")
	}
	if c.snapshot() != nil {
		t.Error("nil cache snapshot should be nil")
	}
}

// TestPlanCacheAnswersIdentical compares every estimator on a
// plan-cached engine against an identically-seeded cache-disabled
// engine: the cache memoizes the pattern→value mapping only, so hits
// and misses must be bit-identical.
func TestPlanCacheAnswersIdentical(t *testing.T) {
	cached := testConfig() // PlanCacheSize 0 → default capacity
	plain := testConfig()
	plain.PlanCacheSize = PlanCacheDisabled
	ec, ep := mustEngine(t, cached), mustEngine(t, plain)
	figure1Stream(t, ec)
	figure1Stream(t, ep)

	q := tree.T("A", tree.T("B"), tree.T("C"))
	u := tree.T("A", tree.T("C"), tree.T("B"))
	qs := []*tree.Node{tree.T("A", tree.T("B")), tree.T("A", tree.T("C"))}
	for round := 0; round < 3; round++ { // round 1+ hit the cache
		name := fmt.Sprintf("round %d", round)
		gc, err1 := ec.EstimateOrdered(q)
		gp, err2 := ep.EstimateOrdered(q)
		if err1 != nil || err2 != nil || gc != gp {
			t.Fatalf("%s: ordered %v/%v (errs %v/%v)", name, gc, gp, err1, err2)
		}
		uc, err1 := ec.EstimateUnordered(u)
		up, err2 := ep.EstimateUnordered(u)
		if err1 != nil || err2 != nil || uc != up {
			t.Fatalf("%s: unordered %v/%v (errs %v/%v)", name, uc, up, err1, err2)
		}
		sc, err1 := ec.EstimateOrderedSet(qs)
		sp, err2 := ep.EstimateOrderedSet(qs)
		if err1 != nil || err2 != nil || sc != sp {
			t.Fatalf("%s: set %v/%v (errs %v/%v)", name, sc, sp, err1, err2)
		}
		wc, err1 := ec.EstimateUnorderedWithError(u)
		wp, err2 := ep.EstimateUnorderedWithError(u)
		if err1 != nil || err2 != nil || wc != wp {
			t.Fatalf("%s: unordered with error %+v/%+v (errs %v/%v)", name, wc, wp, err1, err2)
		}
	}

	sn := ec.Stats().Plans
	if sn == nil {
		t.Fatal("cached engine should report plan-cache stats")
	}
	if sn.Misses == 0 || sn.Hits == 0 {
		t.Errorf("expected both hits and misses after repeated queries, got %d/%d", sn.Hits, sn.Misses)
	}
	if ps := ep.Stats().Plans; ps != nil {
		t.Errorf("disabled engine should report nil plan-cache stats, got %+v", ps)
	}
}

// TestPlanCacheSurvivesRestore checks the restored engine gets a fresh
// cache of the configured capacity.
func TestPlanCacheSurvivesRestore(t *testing.T) {
	cfg := testConfig()
	cfg.PlanCacheSize = 7
	e := mustEngine(t, cfg)
	figure1Stream(t, e)
	q := tree.T("A", tree.T("B"))
	want, err := e.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored estimate %v != original %v", got, want)
	}
	sn := r.Stats().Plans
	if sn == nil || sn.Capacity != 7 {
		t.Fatalf("restored plan cache stats = %+v, want capacity 7", sn)
	}
	if sn.Misses == 0 {
		t.Error("restored cache should start cold (expected a miss)")
	}
}

// TestPlanCacheLookupStoreRace exercises concurrent lookups and
// in-place overwrites of one key. Before the fix, lookup read the
// entry's value slice after releasing the mutex, racing with store's
// in-place update — `go test -race` flags the old code on this test.
func TestPlanCacheLookupStoreRace(t *testing.T) {
	c := newPlanCache(8)
	c.store("o:(A)", []uint64{0})
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); !stop.Load(); i++ {
			c.store("o:(A)", []uint64{i})
		}
	}()
	key := []byte("o:(A)")
	for i := 0; i < 50000; i++ {
		if vs, ok := c.lookup("o:(A)"); ok && vs[0] > 1<<62 {
			t.Fatalf("impossible plan value %d", vs[0])
		}
		if vs, ok := c.lookupBytes(key); ok && vs[0] > 1<<62 {
			t.Fatalf("impossible byte-keyed plan value %d", vs[0])
		}
	}
	stop.Store(true)
	<-done
}

// TestPlanCacheLookupBytesMatchesLookup pins that the two probes hit
// the same entries.
func TestPlanCacheLookupBytesMatchesLookup(t *testing.T) {
	c := newPlanCache(4)
	c.store("o:(A (B))", []uint64{7, 9})
	vs1, ok1 := c.lookup("o:(A (B))")
	vs2, ok2 := c.lookupBytes([]byte("o:(A (B))"))
	if !ok1 || !ok2 {
		t.Fatalf("lookup=%v lookupBytes=%v, want both hits", ok1, ok2)
	}
	if len(vs1) != 2 || len(vs2) != 2 || vs1[0] != vs2[0] || vs1[1] != vs2[1] {
		t.Fatalf("lookup %v != lookupBytes %v", vs1, vs2)
	}
	if _, ok := c.lookupBytes([]byte("o:(missing)")); ok {
		t.Fatal("lookupBytes hit a missing key")
	}
}
