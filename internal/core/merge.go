package core

import (
	"fmt"

	"sketchtree/internal/obs"
	"sketchtree/internal/tree"
)

// Merge folds another engine's synopsis into this one, enabling
// parallel ingestion: shard the stream across engines created with the
// same Config (including Seed — the ξ generators and the fingerprint
// modulus must coincide), then merge. Because AMS sketches are linear
// projections, the cell-wise sum of two sketches of disjoint stream
// shards is exactly the sketch of the whole stream; the merged engine
// is indistinguishable from one that processed everything itself.
//
// Engines with top-k tracking cannot be merged: the trackers' deleted
// instances are interleaved with the counters in a way that has no
// well-defined union (restore-all both sides first if merging is
// required). Both operands must have TopK == 0.
func (e *Engine) Merge(o *Engine) error {
	if o == nil {
		return fmt.Errorf("core: nil engine")
	}
	start := e.met.Now() // zero (no clock call) unless timers are on
	if e.cfg.TopK != 0 || o.cfg.TopK != 0 {
		return fmt.Errorf("core: engines with top-k tracking cannot be merged")
	}
	// An auditor's bottom-k sample is drawn over one engine's stream;
	// two samples over disjoint shards have no well-defined union that
	// preserves the exactness invariant.
	if e.auditor != nil || o.auditor != nil {
		return fmt.Errorf("core: engines with an exact-shadow auditor cannot be merged")
	}
	if e.cfg.Seed != o.cfg.Seed {
		return fmt.Errorf("core: merge requires identical seeds (%d vs %d)", e.cfg.Seed, o.cfg.Seed)
	}
	switch {
	case e.cfg.MaxPatternEdges != o.cfg.MaxPatternEdges,
		e.cfg.S1 != o.cfg.S1,
		e.cfg.S2 != o.cfg.S2,
		e.cfg.VirtualStreams != o.cfg.VirtualStreams,
		e.cfg.Independence != o.cfg.Independence,
		e.cfg.FingerprintDegree != o.cfg.FingerprintDegree:
		return fmt.Errorf("core: merge requires identical sketch configurations")
	}
	if e.fp.Modulus() != o.fp.Modulus() {
		return fmt.Errorf("core: fingerprint moduli differ")
	}
	// Guard against seed-word divergence (e.g. one engine restored
	// from a foreign snapshot): compare a generator spot check.
	ew, ow := e.seeds.Words(), o.seeds.Words()
	for i := range ew {
		if len(ew[i]) != len(ow[i]) {
			return fmt.Errorf("core: ξ seeds differ")
		}
		for j := range ew[i] {
			if ew[i][j] != ow[i][j] {
				return fmt.Errorf("core: ξ seeds differ")
			}
		}
	}
	for i := 0; i < e.streams.P(); i++ {
		if err := e.streams.Sketch(i).AddSketch(o.streams.Sketch(i)); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := e.streams.AbsorbItems(o.streams); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if e.sum != nil && o.sum != nil {
		e.sum.Merge(o.sum)
	} else if e.sum != nil && o.sum == nil {
		return fmt.Errorf("core: cannot merge engine without a structural summary into one with")
	}
	if e.truth != nil {
		if o.truth == nil {
			return fmt.Errorf("core: cannot merge engine without exact tracking into one with")
		}
		o.truth.ForEach(func(v uint64, c int64) { e.truth.Add(v, c) })
	}
	e.trees += o.trees
	e.patterns += o.patterns
	// The merged snapshot covers the operand's work too: its counters
	// and stage timings fold in, and the merge itself is timed. Note
	// Absorb already carries o's trees/patterns, so the plain counters
	// above and the metrics stay aligned.
	e.met.Absorb(o.met)
	e.met.StageSince(obs.StageMerge, start)
	return nil
}

// EstimateOrderedUpperBound bounds COUNT_ord(Q) for patterns larger
// than the enumerated size k — the paper's §6.2 future-work case.
// Every embedding of Q induces an embedding of each of Q's
// sub-patterns, so COUNT_ord(Q) <= min over any set of <= k-edge
// sub-patterns of their counts. The estimate returned is the minimum
// of the (approximate) counts of Q's maximal enumerable sub-patterns;
// it is an upper bound up to estimation error. Patterns within k fall
// back to the plain estimator.
func (e *Engine) EstimateOrderedUpperBound(q *tree.Node) (float64, error) {
	start := e.met.QueryStart()
	est, err := e.estimateOrderedUpperBound(q)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateOrderedUpperBound(q *tree.Node) (float64, error) {
	if q == nil {
		return 0, fmt.Errorf("core: nil query pattern")
	}
	edges := q.Size() - 1
	if edges < 1 {
		return 0, fmt.Errorf("core: pattern has no edges")
	}
	k := e.cfg.MaxPatternEdges
	if edges <= k {
		return e.estimateOrdered(q)
	}
	subs := subPatterns(q, k)
	if len(subs) == 0 {
		return 0, fmt.Errorf("core: no enumerable sub-patterns")
	}
	best := 0.0
	for i, sp := range subs {
		est, err := e.estimateOrdered(sp)
		if err != nil {
			return 0, err
		}
		if est < 0 {
			est = 0
		}
		if i == 0 || est < best {
			best = est
		}
	}
	return best, nil
}

// subPatterns returns the k-edge sub-patterns of q rooted at each of
// q's nodes (the maximal enumerable witnesses), capped to keep query
// cost bounded.
func subPatterns(q *tree.Node, k int) []*tree.Node {
	const maxSubs = 64
	var out []*tree.Node
	seen := map[string]bool{}
	q.Walk(func(n *tree.Node) bool {
		if len(out) >= maxSubs {
			return false
		}
		for _, sp := range prunedTo(n, k) {
			key := sp.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, sp)
				if len(out) >= maxSubs {
					break
				}
			}
		}
		return true
	})
	return out
}

// prunedTo returns versions of the subtree rooted at n pruned to
// exactly min(k, edges) edges by greedy truncation: a breadth-first
// prefix (always a valid sub-pattern containing the root). One variant
// suffices for an upper bound; we also add the depth-first prefix for
// a tighter minimum.
func prunedTo(n *tree.Node, k int) []*tree.Node {
	if n.Size()-1 < 1 {
		return nil
	}
	bfs := truncateBFS(n, k)
	dfs := truncateDFS(n, k)
	if bfs.String() == dfs.String() {
		return []*tree.Node{bfs}
	}
	return []*tree.Node{bfs, dfs}
}

// truncateBFS keeps the first k edges in breadth-first order.
func truncateBFS(n *tree.Node, k int) *tree.Node {
	root := &tree.Node{Label: n.Label}
	type pair struct{ src, dst *tree.Node }
	queue := []pair{{n, root}}
	edges := 0
	for len(queue) > 0 && edges < k {
		p := queue[0]
		queue = queue[1:]
		for _, c := range p.src.Children {
			if edges >= k {
				break
			}
			nc := &tree.Node{Label: c.Label}
			p.dst.Children = append(p.dst.Children, nc)
			queue = append(queue, pair{c, nc})
			edges++
		}
	}
	return root
}

// truncateDFS keeps the first k edges in preorder.
func truncateDFS(n *tree.Node, k int) *tree.Node {
	edges := 0
	var rec func(src *tree.Node) *tree.Node
	rec = func(src *tree.Node) *tree.Node {
		dst := &tree.Node{Label: src.Label}
		for _, c := range src.Children {
			if edges >= k {
				break
			}
			edges++
			dst.Children = append(dst.Children, rec(c))
		}
		return dst
	}
	return rec(n)
}
