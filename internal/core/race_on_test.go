//go:build race

package core

// raceEnabled reports whether the race detector instruments this
// build. Allocation-count assertions over sync.Pool-backed paths are
// skipped under -race: instrumented pools intentionally drop and
// bypass entries at random, so Get may allocate.
const raceEnabled = true
