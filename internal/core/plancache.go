package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sketchtree/internal/obs"
)

// planCache memoizes the pattern → one-dimensional-value mapping — the
// query-side "plan": for an ordered query the single fingerprint value,
// for an unordered query the fingerprint values of every distinct
// ordered arrangement. The mapping depends only on the fingerprint
// modulus, which never changes over an engine's lifetime, so entries
// stay valid forever; the cache is bounded by LRU eviction only.
//
// Keys are the canonical pattern serialization (tree.Node.String, the
// S-expression form) prefixed with the plan kind, so the ordered and
// unordered plans of one pattern are distinct entries.
//
// The cache has its own mutex: the engine's query path is otherwise a
// pure read of the synopsis, and snapshot serving runs many queries on
// one frozen engine concurrently. Hit/miss counters are atomics so
// Stats can read them lock-free.
//
// A nil *planCache is a valid disabled cache: lookups miss without
// counting and stores are dropped, keeping the uncached path to one
// pointer test.
type planCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	idx map[string]*list.Element // key → element; element value is *planEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type planEntry struct {
	key string
	vs  []uint64
}

// newPlanCache builds a cache of the given capacity; capacity <= 0
// returns nil (caching disabled).
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[string]*list.Element, capacity),
	}
}

// keyBufPool recycles the byte buffers queries build their cache keys
// in; concurrent queries (snapshot serving) each borrow one instead of
// allocating a string key per call.
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// lookup returns the cached value list for key. The returned slice is
// shared — callers must not mutate it.
//
// The entry's value slice is read inside the critical section: store
// overwrites planEntry.vs in place on a duplicate insert, so reading
// it after unlock would race with a concurrent store of the same key.
func (c *planCache) lookup(key string) ([]uint64, bool) {
	if c == nil {
		return nil, false
	}
	var vs []uint64
	c.mu.Lock()
	el, ok := c.idx[key]
	if ok {
		c.ll.MoveToFront(el)
		vs = el.Value.(*planEntry).vs
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return vs, true
}

// lookupBytes is lookup keyed by a byte slice, letting callers probe
// with a reused buffer; the map index converts without allocating.
//
//lint:hotpath
func (c *planCache) lookupBytes(key []byte) ([]uint64, bool) {
	if c == nil {
		return nil, false
	}
	var vs []uint64
	c.mu.Lock()
	el, ok := c.idx[string(key)]
	if ok {
		c.ll.MoveToFront(el)
		vs = el.Value.(*planEntry).vs
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return vs, true
}

// store inserts a computed plan, evicting the least recently used entry
// at capacity. Concurrent stores of the same key keep the latest; the
// mapping is deterministic, so both hold the same values.
func (c *planCache) store(key string, vs []uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*planEntry).vs = vs
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&planEntry{key: key, vs: vs})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.idx, el.Value.(*planEntry).key)
	}
}

// snapshot reads the cache's observability section; nil for a disabled
// cache.
func (c *planCache) snapshot() *obs.PlanCacheSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	return &obs.PlanCacheSnapshot{
		Capacity: c.cap,
		Entries:  size,
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
	}
}
