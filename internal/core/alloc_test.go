package core

import (
	"testing"

	"sketchtree/internal/tree"
)

// allocTree is a modest tree with repeated labels, the shape of a
// steady-state stream element.
func allocTree() *tree.Tree {
	return tree.NewTree(tree.T("A",
		tree.T("B", tree.T("C"), tree.T("D")),
		tree.T("B", tree.T("C")),
		tree.T("E", tree.T("B", tree.T("C"), tree.T("D")))))
}

// TestAddTreeZeroAlloc pins the hot-path contract of the speed
// campaign: once warmed up, AddTree performs zero heap allocations per
// tree — the enumerator recycles its slabs, the pattern encoder and ξ
// preparation reuse their buffers, and the batched sketch update walks
// preallocated arrays. Guarded for both top-k settings, since the
// Algorithm 4 path has its own scratch (estimator, eviction prep,
// entry free list).
func TestAddTreeZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		topk int
	}{
		{"TopKDisabled", 0},
		{"TopKEnabled", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.TrackExact = false // the exact shadow's hash map is off-contract
			cfg.TopK = tc.topk
			e := mustEngine(t, cfg)
			tr := allocTree()
			for i := 0; i < 20; i++ { // warm slabs, maps, pools, trackers
				if err := e.AddTree(tr); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := e.AddTree(tr); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("AddTree allocates %.1f times per tree, want 0", allocs)
			}
		})
	}
}

// TestEstimateOrderedCacheHitZeroAlloc pins the query-side contract: a
// plan-cache hit answers an ordered count with zero allocations (the
// key is built in a pooled buffer, probed by byte slice, and the
// estimator scratch comes from a pool). Top-k is disabled — a tracked
// query value legitimately allocates its compensation vector.
func TestEstimateOrderedCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops entries at random, so pooled Get may allocate")
	}
	cfg := testConfig()
	cfg.TrackExact = false
	e := mustEngine(t, cfg)
	for i := 0; i < 3; i++ {
		if err := e.AddTree(allocTree()); err != nil {
			t.Fatal(err)
		}
	}
	q := tree.T("A", tree.T("B", tree.T("C")))
	if _, err := e.EstimateOrdered(q); err != nil { // prime the plan cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.EstimateOrdered(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit EstimateOrdered allocates %.1f times per query, want 0", allocs)
	}
}
