package core

import (
	"math/rand/v2"
	"testing"

	"sketchtree/internal/datagen"
	"sketchtree/internal/enum"
	"sketchtree/internal/tree"
	"sketchtree/internal/workload"
)

// ingestWithCatalog streams a TREEBANK-style workload into a fresh
// engine while building the ground-truth catalog in the same pass (the
// experiment harness idiom, via the observer hook).
func ingestWithCatalog(t *testing.T, cfg Config, seed uint64, trees int) (*Engine, *workload.Catalog) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := workload.NewCatalog(1)
	e.SetObserver(func(v uint64, p *enum.Pattern) {
		cat.Add(v, func() string { return p.ToTree().String() })
	})
	src := datagen.Treebank(seed, trees)
	if err := src.ForEach(e.AddTree); err != nil {
		t.Fatal(err)
	}
	e.SetObserver(nil)
	return e, cat
}

// coverageQueries picks a deterministic spread of catalog patterns
// across frequencies: the most common ones plus a sample of the rest.
func coverageQueries(t *testing.T, cat *workload.Catalog, n int) []workload.Query {
	t.Helper()
	// Lo is one occurrence's selectivity so every cataloged pattern
	// qualifies while staying above the representation threshold.
	qs, err := cat.Queries(workload.Range{Lo: 1 / float64(cat.Total()), Hi: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) <= n {
		return qs
	}
	// Sorted by descending count: keep the head and an even stride
	// through the tail so rare patterns are represented too.
	out := qs[:n/2]
	tail := qs[n/2:]
	stride := len(tail) / (n - len(out))
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(tail) && len(out) < n; i += stride {
		out = append(out, tail[i])
	}
	return out
}

// The headline acceptance criterion: CountWithError's 95% intervals
// must cover the exact count for at least 95% of queries on a seeded
// TREEBANK-style workload, and the point estimate must be identical to
// the plain estimator's.
func TestEstimateWithErrorCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.S1, cfg.S2 = 50, 7
	cfg.TopK = 0
	cfg.Seed = 11
	e, cat := ingestWithCatalog(t, cfg, 3, 150)

	qs := coverageQueries(t, cat, 200)
	covered, total := 0, 0
	for _, q := range qs {
		est, err := e.EstimateOrderedWithError(q.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.EstimateOrdered(q.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value != plain {
			t.Fatalf("point estimate diverged: %v with error bar vs %v plain", est.Value, plain)
		}
		if est.CI95[0] > est.Value || est.CI95[1] < est.Value {
			t.Fatalf("interval %v does not contain its own estimate %v", est.CI95, est.Value)
		}
		if est.StdErr < 0 {
			t.Fatalf("negative standard error %v", est.StdErr)
		}
		if est.S1 != cfg.S1 || est.S2 != cfg.S2 {
			t.Fatalf("estimate reports dimensions %dx%d, config is %dx%d", est.S1, est.S2, cfg.S1, cfg.S2)
		}
		total++
		exact := float64(q.Count)
		if est.CI95[0] <= exact && exact <= est.CI95[1] {
			covered++
		}
	}
	if total < 100 {
		t.Fatalf("only %d queries exercised", total)
	}
	frac := float64(covered) / float64(total)
	t.Logf("coverage: %d/%d = %.3f", covered, total, frac)
	if frac < 0.95 {
		t.Fatalf("CI95 covered the exact count for only %.1f%% of %d queries, want >= 95%%", 100*frac, total)
	}
}

// Set and unordered error bars: intervals from the Equation-7 bound
// must cover the exact total for the overwhelming majority of random
// pattern sets.
func TestEstimateSetWithErrorCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.S1, cfg.S2 = 50, 7
	cfg.TopK = 0
	cfg.Seed = 13
	e, cat := ingestWithCatalog(t, cfg, 5, 120)

	qs := coverageQueries(t, cat, 120)
	rng := rand.New(rand.NewPCG(99, 0))
	covered, total := 0, 0
	for i := 0; i < 60; i++ {
		idx := rng.Perm(len(qs))[:3]
		pats := make([]*tree.Node, 0, 3)
		exact := int64(0)
		for _, j := range idx {
			pats = append(pats, qs[j].Pattern)
			exact += qs[j].Count
		}
		est, err := e.EstimateOrderedSetWithError(pats)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.EstimateOrderedSet(pats)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value != plain {
			t.Fatalf("set point estimate diverged: %v vs %v", est.Value, plain)
		}
		total++
		if est.CI95[0] <= float64(exact) && float64(exact) <= est.CI95[1] {
			covered++
		}
	}
	frac := float64(covered) / float64(total)
	t.Logf("set coverage: %d/%d = %.3f", covered, total, frac)
	if frac < 0.9 {
		t.Fatalf("set CI95 coverage %.2f below 0.9", frac)
	}
}

// With top-k tracking enabled the compensated error-bar path must stay
// consistent with the compensated point estimator.
func TestEstimateWithErrorMatchesPlainUnderTopK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1, cfg.S2 = 30, 5
	cfg.VirtualStreams = 23
	cfg.TopK = 20
	cfg.Seed = 7
	e, cat := ingestWithCatalog(t, cfg, 9, 60)

	for _, q := range coverageQueries(t, cat, 50) {
		est, err := e.EstimateOrderedWithError(q.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.EstimateOrdered(q.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value != plain {
			t.Fatalf("top-k compensated estimates diverged: %v vs %v", est.Value, plain)
		}
	}
}

// Unordered error bars run through the arrangement expansion.
func TestEstimateUnorderedWithError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1, cfg.S2 = 30, 5
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.Seed = 3
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := tree.New("a", tree.New("b"), tree.New("c"))
	for i := 0; i < 40; i++ {
		if err := e.AddTree(tree.NewTree(tree.New("a", tree.New("b"), tree.New("c")))); err != nil {
			t.Fatal(err)
		}
		if err := e.AddTree(tree.NewTree(tree.New("a", tree.New("c"), tree.New("b")))); err != nil {
			t.Fatal(err)
		}
	}
	est, err := e.EstimateUnorderedWithError(a)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.EstimateUnordered(a)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != plain {
		t.Fatalf("unordered estimates diverged: %v vs %v", est.Value, plain)
	}
	if est.CI95[0] > 80 || est.CI95[1] < 80 {
		t.Fatalf("interval %v misses the exact unordered count 80", est.CI95)
	}

	// Error paths mirror the plain estimators'.
	if _, err := e.EstimateOrderedWithError(nil); err == nil {
		t.Fatal("nil pattern must fail")
	}
	if _, err := e.EstimateOrderedSetWithError(nil); err == nil {
		t.Fatal("empty set must fail")
	}
	if _, err := e.EstimateUnorderedWithError(tree.New("lonely")); err == nil {
		t.Fatal("zero-edge pattern must fail")
	}
}
