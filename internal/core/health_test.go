package core

import (
	"bytes"
	"strings"
	"testing"

	"sketchtree/internal/datagen"
	"sketchtree/internal/tree"
)

func TestHealthSnapshotTracksStreamMass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1, cfg.S2 = 10, 3
	cfg.VirtualStreams = 23
	cfg.TopK = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := datagen.Treebank(1, 40).ForEach(e.AddTree); err != nil {
		t.Fatal(err)
	}

	s := e.Stats()
	h := s.Health
	if h == nil {
		t.Fatal("Stats must carry the health section")
	}
	if h.VirtualStreams != 23 || len(h.Items) != 23 {
		t.Fatalf("partition width %d/%d, want 23", h.VirtualStreams, len(h.Items))
	}
	// Every pattern occurrence was an insertion, so the per-partition
	// item counters must sum exactly to the stream length.
	var sum int64
	for _, it := range h.Items {
		if it < 0 {
			t.Fatalf("negative partition mass on an insert-only stream: %v", h.Items)
		}
		sum += it
	}
	if sum != e.PatternsProcessed() || h.TotalItems != sum {
		t.Fatalf("items sum %d, TotalItems %d, patterns %d", sum, h.TotalItems, e.PatternsProcessed())
	}
	if h.MaxShare <= 0 || h.MaxShare > 1 {
		t.Fatalf("MaxShare %v out of (0, 1]", h.MaxShare)
	}
	if got := h.Items[h.MaxShareIndex]; float64(got)/float64(sum) != h.MaxShare {
		t.Fatalf("MaxShareIndex %d does not hold MaxShare %v", h.MaxShareIndex, h.MaxShare)
	}
	if want := h.MaxShare * 23; h.SkewRatio != want {
		t.Fatalf("SkewRatio %v, want %v", h.SkewRatio, want)
	}

	tk := h.TopK
	if tk == nil {
		t.Fatal("top-k health missing with TopK configured")
	}
	if tk.Trackers != 23 || tk.Capacity != 230 {
		t.Fatalf("trackers %d capacity %d, want 23/230", tk.Trackers, tk.Capacity)
	}
	if tk.Promotions <= 0 || tk.Residency <= 0 || tk.DeletedMass <= 0 {
		t.Fatalf("top-k churn not recorded: %+v", tk)
	}
	// Residency and deleted mass mirror the trackers' actual state.
	res, mass := 0, int64(0)
	for _, tr := range e.trackers {
		res += tr.Len()
		for _, vf := range tr.Entries() {
			mass += vf.Freq
		}
	}
	if tk.Residency != res || tk.DeletedMass != mass {
		t.Fatalf("churn mirror: residency %d/%d, deleted mass %d/%d", tk.Residency, res, tk.DeletedMass, mass)
	}

	// Removals drive the counters back down to zero net mass.
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.NewTree(tree.New("a", tree.New("b")))
	if err := e2.AddTree(tr); err != nil {
		t.Fatal(err)
	}
	if err := e2.RemoveTree(tr); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats().Health.TotalItems; got != 0 {
		t.Fatalf("net mass after add+remove = %d, want 0", got)
	}
}

func TestHealthSectionNoTopK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1, cfg.S2 = 5, 3
	cfg.VirtualStreams = 7
	cfg.TopK = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := e.Stats().Health; h == nil || h.TopK != nil {
		t.Fatalf("health with TopK disabled: %+v", h)
	}
}

func TestMergeAbsorbsItemCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1, cfg.S2 = 10, 3
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	build := func(seed uint64, trees int) *Engine {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := datagen.Treebank(seed, trees).ForEach(e.AddTree); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(2, 20), build(3, 25)
	wantTotal := a.Stats().Health.TotalItems + b.Stats().Health.TotalItems
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Health.TotalItems; got != wantTotal {
		t.Fatalf("merged item mass %d, want %d", got, wantTotal)
	}
	if got := a.Stats().Health.TotalItems; got != a.PatternsProcessed() {
		t.Fatalf("merged item mass %d diverges from patterns %d", got, a.PatternsProcessed())
	}
}

func TestHealthReportWarnings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1, cfg.S2 = 10, 3
	cfg.VirtualStreams = 11
	cfg.TopK = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A stream of one repeated tree concentrates all mass on the few
	// partitions its patterns route to — the skew warning must fire.
	tr := tree.NewTree(tree.New("a", tree.New("b")))
	for i := 0; i < 50; i++ {
		if err := e.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	r := e.HealthReport()
	if len(r.PartitionL2) != 11 {
		t.Fatalf("PartitionL2 has %d entries, want 11", len(r.PartitionL2))
	}
	if r.SelfJoinSize <= 0 {
		t.Fatalf("SelfJoinSize %v, want positive", r.SelfJoinSize)
	}
	joined := strings.Join(r.Warnings, "\n")
	if !strings.Contains(joined, "stream mass") {
		t.Fatalf("skew warning missing, got %q", joined)
	}

	// Net-negative partitions are called out.
	if err := e.RemoveTree(tr); err != nil {
		t.Fatal(err)
	}
	extra := tree.NewTree(tree.New("x", tree.New("y")))
	if err := e.AddTree(extra); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveTree(extra); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveTree(extra); err != nil {
		t.Fatal(err)
	}
	r = e.HealthReport()
	if !strings.Contains(strings.Join(r.Warnings, "\n"), "negative net mass") {
		t.Fatalf("negative-mass warning missing, got %v", r.Warnings)
	}
}

// The health section must not perturb what is serialized: a synopsis
// with item counters populated serializes byte-identically to its
// restored copy (counters are process-local diagnostics).
func TestHealthCountersNotPersisted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1, cfg.S2 = 5, 3
	cfg.VirtualStreams = 7
	cfg.TopK = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := datagen.Treebank(4, 10).ForEach(e.AddTree); err != nil {
		t.Fatal(err)
	}
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Health.TotalItems; got != 0 {
		t.Fatalf("restored engine has %d item mass, want 0 (diagnostics are process-local)", got)
	}
	blob2, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("serialization changed across restore")
	}
}
