package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"sketchtree/internal/enum"
	"sketchtree/internal/prufer"
	"sketchtree/internal/tree"
)

// randomLabeledTree builds a random tree of n nodes with a small
// alphabet, so enumerated patterns share labels and structure.
func randomLabeledTree(rng *rand.Rand, n int) *tree.Node {
	alphabet := []string{"A", "B", "C", "DD", ""}
	nodes := make([]*tree.Node, n)
	for i := range nodes {
		nodes[i] = tree.New(alphabet[rng.IntN(len(alphabet))])
	}
	for i := 1; i < n; i++ {
		nodes[rng.IntN(i)].AddChild(nodes[i])
	}
	return nodes[0]
}

// TestPatternEncoderMatchesPrufer pins the byte-for-byte identity the
// hot path relies on: the direct pattern encoder must produce exactly
// prufer.OfNode(p.ToTree()).Encode for every enumerated pattern —
// otherwise fingerprints (and therefore the whole synopsis) diverge
// from the materializing path.
func TestPatternEncoderMatchesPrufer(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 4))
	var pe patternEncoder
	var buf []byte
	for trial := 0; trial < 20; trial++ {
		root := randomLabeledTree(rng, 3+rng.IntN(30))
		en, err := enum.NewEnumerator(4)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		err = en.ForEach(root, func(p *enum.Pattern) error {
			buf = pe.encode(p, buf[:0])
			want := prufer.OfNode(p.ToTree()).Encode(nil)
			if !bytes.Equal(buf, want) {
				t.Fatalf("trial %d pattern %s:\n got %x\nwant %x", trial, p, buf, want)
			}
			checked++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if checked == 0 {
			t.Fatalf("trial %d enumerated no patterns", trial)
		}
	}
}

// TestPatternValueMatchesPatternValue checks the engine-level
// consequence: patternValue(p) == PatternValue(p.ToTree()).
func TestPatternValueMatchesPatternValue(t *testing.T) {
	e := mustEngine(t, testConfig())
	rng := rand.New(rand.NewPCG(5, 6))
	root := randomLabeledTree(rng, 20)
	en, err := enum.NewEnumerator(e.cfg.MaxPatternEdges)
	if err != nil {
		t.Fatal(err)
	}
	err = en.ForEach(root, func(p *enum.Pattern) error {
		if got, want := e.patternValue(p), e.PatternValue(p.ToTree()); got != want {
			t.Fatalf("pattern %s: patternValue %d, PatternValue %d", p, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
