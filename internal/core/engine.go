// Package core wires SketchTree together: EnumTree pattern generation,
// extended Prüfer sequencing, Rabin fingerprinting to one-dimensional
// values, virtual-streamed AMS sketches, and top-k frequent-pattern
// deletion. It implements the update path of Algorithm 1 and the query
// path of Algorithm 2, the set and expression estimators of §3.2/§4,
// unordered counts of §3.3, and the structural-summary query extension
// of §6.2.
package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sketchtree/internal/ams"
	"sketchtree/internal/audit"
	"sketchtree/internal/enum"
	"sketchtree/internal/exact"
	"sketchtree/internal/gf2"
	"sketchtree/internal/obs"
	"sketchtree/internal/prufer"
	"sketchtree/internal/rabin"
	"sketchtree/internal/summary"
	"sketchtree/internal/topk"
	"sketchtree/internal/tree"
	"sketchtree/internal/vstream"
	"sketchtree/internal/xi"
)

// Config configures a SketchTree engine.
type Config struct {
	// MaxPatternEdges is k, the largest pattern size enumerated from
	// each data tree (paper: 6 for TREEBANK, 4 for DBLP).
	MaxPatternEdges int

	// S1 is the number of sketch instances averaged per row (accuracy,
	// Theorem 1); S2 the number of rows medianed (confidence).
	S1, S2 int

	// VirtualStreams is the number p of virtual streams (§5.3); the
	// paper uses the prime 229. 1 disables partitioning.
	VirtualStreams int

	// TopK is the number of frequent patterns tracked and deleted per
	// virtual stream (§5.2); 0 disables tracking.
	TopK int

	// TopKProbability invokes top-k processing for each generated
	// pattern with this probability (§5.2 suggests sampling when
	// per-pattern processing is infeasible). Valid settings are the
	// zero value (which selects the default probability 1.0: every
	// pattern is processed), a probability in (0, 1], and the sentinel
	// TopKProbabilityNever (never invoke top-k processing while
	// keeping the trackers allocated).
	TopKProbability float64

	// Independence selects the ξ family: 4 (default) uses the BCH
	// four-wise construction; values above 4 use the k-wise polynomial
	// family, required for product expressions (§4).
	Independence int

	// FingerprintDegree is the degree of the random irreducible
	// polynomial for Rabin fingerprints (§6.1). The paper used 31; the
	// default 61 makes collisions negligible at modern stream sizes.
	FingerprintDegree int

	// Seed drives all randomness (fingerprint modulus, ξ seeds,
	// sampling); a fixed seed makes runs reproducible.
	Seed uint64

	// TrackExact additionally maintains the exact counter baseline, so
	// true counts, the true self-join size, and Table-1 style distinct
	// counts are available. It defeats the memory bound and exists for
	// experiments and tests.
	TrackExact bool

	// BuildSummary maintains the §6.2 structural summary online,
	// enabling wildcard and descendant queries. SummaryMaxNodes caps
	// its size (0 = unlimited).
	BuildSummary    bool
	SummaryMaxNodes int

	// PlanCacheSize bounds the query-plan LRU cache, which memoizes the
	// pattern → (arrangements, fingerprint values) mapping keyed by the
	// canonical pattern serialization. The zero value selects the
	// default capacity (DefaultPlanCacheSize); PlanCacheDisabled (or any
	// negative value) turns caching off. The mapping depends only on
	// (Seed, FingerprintDegree), so cached plans never go stale.
	PlanCacheSize int
}

// DefaultPlanCacheSize is the query-plan cache capacity selected by a
// zero Config.PlanCacheSize.
const DefaultPlanCacheSize = 512

// PlanCacheDisabled is the Config.PlanCacheSize sentinel that disables
// query-plan caching (the field's zero value selects the default
// capacity instead).
const PlanCacheDisabled = -1

// TopKProbabilityNever is the TopKProbability sentinel that disables
// per-pattern top-k processing entirely while keeping the TopK
// trackers allocated (FrequentPatterns stays empty). A plain 0 cannot
// express "never": the field's zero value selects the default
// probability 1.0.
const TopKProbabilityNever float64 = -1

// DefaultConfig mirrors the paper's common experimental setup.
func DefaultConfig() Config {
	return Config{
		MaxPatternEdges:   4,
		S1:                25,
		S2:                7, // s2 for δ = 0.1 (footnote 3)
		VirtualStreams:    229,
		TopK:              50,
		Independence:      4,
		FingerprintDegree: 61,
		Seed:              1,
	}
}

func (c *Config) normalize() error {
	if c.MaxPatternEdges < 1 {
		return fmt.Errorf("core: MaxPatternEdges %d < 1", c.MaxPatternEdges)
	}
	if c.S1 < 1 || c.S2 < 1 {
		return fmt.Errorf("core: S1=%d, S2=%d must be positive", c.S1, c.S2)
	}
	if c.VirtualStreams < 1 {
		return fmt.Errorf("core: VirtualStreams %d < 1", c.VirtualStreams)
	}
	if c.TopK < 0 {
		return fmt.Errorf("core: TopK %d < 0", c.TopK)
	}
	if c.Independence == 0 {
		c.Independence = 4
	}
	if c.Independence < 4 {
		return fmt.Errorf("core: Independence %d < 4", c.Independence)
	}
	if c.FingerprintDegree == 0 {
		c.FingerprintDegree = 61
	}
	if c.FingerprintDegree < 8 || c.FingerprintDegree > 62 {
		return fmt.Errorf("core: FingerprintDegree %d out of range [8, 62]", c.FingerprintDegree)
	}
	switch {
	case c.TopKProbability == 0:
		c.TopKProbability = 1 // zero value selects the default: process every pattern
	case c.TopKProbability == TopKProbabilityNever:
		// Explicit "never sample" sentinel, kept verbatim.
	case c.TopKProbability < 0 || c.TopKProbability > 1:
		return fmt.Errorf("core: TopKProbability %v invalid: want 0 (the default, 1.0), a probability in (0, 1], or TopKProbabilityNever (%v)",
			c.TopKProbability, TopKProbabilityNever)
	}
	switch {
	case c.PlanCacheSize == 0:
		c.PlanCacheSize = DefaultPlanCacheSize
	case c.PlanCacheSize < 0:
		c.PlanCacheSize = PlanCacheDisabled
	}
	return nil
}

// Engine is one SketchTree instance: a synopsis of the stream so far
// plus the query machinery.
type Engine struct {
	cfg      Config
	fam      *xi.Family
	seeds    *ams.Seeds
	streams  *vstream.Streams
	trackers []*topk.Tracker // per virtual stream; nil when TopK == 0
	fp       *rabin.Fingerprinter
	sum      *summary.Summary
	truth    *exact.Counter
	rng      *rand.Rand

	trees    int64
	patterns int64

	// met mirrors trees/patterns in race-free atomics and carries the
	// stage timers and query-latency histogram. Counters are always
	// maintained; timers only when enabled (obs.Metrics.EnableTimers).
	met *obs.Metrics

	prep      *xi.Prep         // reused across updates
	encodeBuf []byte           // reused sequence-encoding buffer
	en        *enum.Enumerator // reused across updates; Reset per tree
	penc      patternEncoder   // reused pattern → Prüfer-bytes encoder

	// visit is e.visitPattern bound once at construction; passing it to
	// the enumerator avoids a fresh closure per tree. apply carries the
	// per-tree state the callback needs (the update path is serialized,
	// so one scratch area suffices).
	visit func(*enum.Pattern) error
	apply applyScratch

	// qest pools query-side estimators: concurrent queries on one
	// frozen engine (snapshot serving) each borrow a scratch estimator
	// instead of allocating rows and parity bits per call.
	qest sync.Pool

	// plans memoizes the query-side pattern → value mapping; nil when
	// Config.PlanCacheSize is PlanCacheDisabled. It is internally
	// locked, so concurrent queries (snapshot serving) stay safe; clones
	// share it because the mapping is identical across clones.
	plans *planCache

	observer func(v uint64, p *enum.Pattern)

	// auditor is the opt-in exact-shadow accuracy auditor (EnableAudit);
	// nil in the default configuration, keeping the hot path to a single
	// pointer test. auditCache holds the error quantiles of the last
	// AuditReport so lock-free Stats() readers can expose them.
	auditor    *audit.Auditor
	auditCache atomic.Pointer[obs.AuditSnapshot]
}

// New builds an engine from the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5ce7c47ee))
	// The fingerprint modulus is drawn first so the pattern→value
	// mapping depends only on (Seed, FingerprintDegree), not on the
	// sketch dimensions — engines in a parameter sweep then share the
	// mapping.
	fp, err := rabin.NewRandom(cfg.FingerprintDegree, rng)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// ξ field: one degree above the fingerprint degree keeps values
	// injective in the field.
	fieldDeg := cfg.FingerprintDegree + 1
	if fieldDeg < 31 {
		fieldDeg = 31
	}
	field, err := gf2.NewField(gf2.DefaultModulus(fieldDeg))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var fam *xi.Family
	if cfg.Independence == 4 {
		fam = xi.NewBCHFamily(field)
	} else {
		fam, err = xi.NewPolyFamily(field, cfg.Independence)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	seeds, err := ams.NewSeeds(fam, cfg.S1, cfg.S2, rng)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	streams, err := vstream.New(seeds, cfg.VirtualStreams)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	en, err := enum.NewEnumerator(cfg.MaxPatternEdges)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		fam:     fam,
		seeds:   seeds,
		streams: streams,
		fp:      fp,
		rng:     rng,
		met:     &obs.Metrics{},
		prep:    &xi.Prep{},
		en:      en,
		plans:   newPlanCache(cfg.PlanCacheSize),
	}
	e.visit = e.visitPattern
	e.qest.New = func() any { return seeds.NewEstimator() }
	if cfg.TopK > 0 {
		e.trackers = make([]*topk.Tracker, cfg.VirtualStreams)
		for i := range e.trackers {
			t, err := topk.New(cfg.TopK, streams.Sketch(i))
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			e.trackers[i] = t
		}
	}
	if cfg.BuildSummary {
		e.sum = summary.New(cfg.SummaryMaxNodes)
	}
	if cfg.TrackExact {
		e.truth = exact.New()
	}
	return e, nil
}

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// PatternValue maps a labeled tree pattern to its one-dimensional
// value: extended Prüfer sequence → framed byte encoding → Rabin
// fingerprint (the §6.1 mapping; the exact pairing function of package
// pairing is the overflow-free alternative used in tests). It does not
// touch engine state, so concurrent queries may call it freely.
func (e *Engine) PatternValue(q *tree.Node) uint64 {
	return e.fp.Fingerprint(prufer.OfNode(q).Encode(nil))
}

// patternValueReuse is the update-path variant that reuses the
// engine's encode buffer; only the (serialized) update path may use
// it.
func (e *Engine) patternValueReuse(q *tree.Node) uint64 {
	e.encodeBuf = prufer.OfNode(q).Encode(e.encodeBuf[:0])
	return e.fp.Fingerprint(e.encodeBuf)
}

// patternValue maps an enumerated pattern to its value without
// materializing a tree: the pattern encoder emits the same bytes as
// PatternValue on p.ToTree() (pinned by an identity test), straight
// into the engine's encode buffer. Update path only.
//
//lint:hotpath
func (e *Engine) patternValue(p *enum.Pattern) uint64 {
	e.encodeBuf = e.penc.encode(p, e.encodeBuf[:0])
	return e.fp.Fingerprint(e.encodeBuf)
}

// AddTree processes one tree from the stream: every ordered pattern
// with 1..k edges is enumerated, mapped to its one-dimensional value,
// and folded into the synopsis (Algorithm 1), with per-pattern top-k
// processing (Algorithm 4) when enabled.
//
// Partial-state contract: if AddTree returns a mid-enumeration error,
// the synopsis holds exactly the prefix of the tree's pattern
// occurrences applied before the failure — PatternsProcessed counts
// those occurrences and TreesProcessed does not count the tree. A
// caller that needs all-or-nothing semantics should restore a prior
// snapshot (MarshalBinary/Restore) or discard the engine.
//
//lint:hotpath
func (e *Engine) AddTree(t *tree.Tree) error {
	return e.applyTree(t, 1)
}

// RemoveTree deletes one earlier occurrence of the tree from the
// synopsis, exploiting the AMS deletion property (§5.2: "deleting
// values from a stream is easy"): every pattern of the tree is
// subtracted once. Tracked top-k frequencies refer to instances
// already deleted from the sketches and remain valid, so they are left
// untouched. Removing a tree that was never added yields negative
// logical counts; the estimators remain unbiased for the resulting
// signed stream.
//
//lint:hotpath
func (e *Engine) RemoveTree(t *tree.Tree) error {
	return e.applyTree(t, -1)
}

// applyScratch is the per-tree state of applyTree, read and written by
// visitPattern. Keeping it on the engine (the update path is
// serialized) lets the enumeration callback be the pre-bound e.visit
// instead of a closure allocated per tree. occ mirrors the
// per-occurrence pattern counter so the metrics atomics are updated
// even on the partial-state error path.
type applyScratch struct {
	delta                                int64
	timed                                bool
	enumNs, fpNs, skNs, tkNs, tkOps, occ int64
	mark                                 time.Time
}

// visitPattern folds one enumerated pattern occurrence into the
// synopsis: value mapping, sketch update, sampled top-k processing,
// and the optional truth/observer/auditor hooks. Stage timing
// accumulates in the scratch area and flushes to the atomics once per
// tree; with timers off the whole apparatus reduces to one boolean
// test per pattern.
//
//lint:hotpath
func (e *Engine) visitPattern(p *enum.Pattern) error {
	a := &e.apply
	if a.timed {
		now := time.Now()
		a.enumNs += now.Sub(a.mark).Nanoseconds()
		a.mark = now
	}
	v := e.patternValue(p)
	if a.timed {
		now := time.Now()
		a.fpNs += now.Sub(a.mark).Nanoseconds()
		a.mark = now
	}
	e.fam.Prepare(v, e.prep)
	e.streams.UpdatePrepared(v, e.prep, a.delta)
	if a.timed {
		now := time.Now()
		a.skNs += now.Sub(a.mark).Nanoseconds()
		a.mark = now
	}
	if a.delta > 0 && e.trackers != nil && e.sampleTopK() {
		e.trackers[e.streams.Route(v)].Process(v, e.prep)
		if a.timed {
			now := time.Now()
			a.tkNs += now.Sub(a.mark).Nanoseconds()
			a.mark = now
			a.tkOps++
		}
	}
	if e.truth != nil {
		e.truth.Add(v, a.delta) //lint:allow hotpath exact-truth tracking is a test-only opt-in, nil in production
	}
	if e.observer != nil {
		e.observer(v, p)
	}
	if e.auditor != nil {
		e.auditor.Observe(v, a.delta) //lint:allow hotpath the auditor is an opt-in diagnostic, nil in production
	}
	// Incremented per applied occurrence, inside the callback, so
	// that on a mid-enumeration error PatternsProcessed counts
	// exactly the occurrences the sketches actually absorbed (the
	// partial-state contract documented on AddTree).
	e.patterns += a.delta
	a.occ++
	return nil
}

// applyTree is the shared add/remove kernel: reset the enumerator,
// visit every pattern, flush stage timings once per tree.
//
//lint:hotpath
func (e *Engine) applyTree(t *tree.Tree, delta int64) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("core: nil tree")
	}
	a := &e.apply
	*a = applyScratch{delta: delta, timed: e.met.TimersOn()}
	if a.timed {
		a.mark = time.Now()
	}
	// The enumerator is reused across updates like prep/encodeBuf; its
	// memo is keyed by node identity and must be reset per tree.
	e.en.Reset()
	err := e.en.ForEach(t.Root, e.visit)
	if a.timed {
		e.met.StageAdd(obs.StageEnum, a.occ, a.enumNs)
		e.met.StageAdd(obs.StageFingerprint, a.occ, a.fpNs)
		e.met.StageAdd(obs.StageSketch, a.occ, a.skNs)
		e.met.StageAdd(obs.StageTopK, a.tkOps, a.tkNs)
	}
	e.met.AddPatterns(a.occ * delta)
	if err != nil {
		return err
	}
	if e.sum != nil && delta > 0 {
		// The summary is a set of observed paths; deletion does not
		// retract structure (a conservative over-approximation).
		e.sum.AddTree(t) //lint:allow hotpath path-summary ingestion is opt-in and amortized over its arena
	}
	e.trees += delta
	e.met.AddTrees(delta)
	if delta < 0 {
		e.met.AddRemoves(1)
	}
	return nil
}

// sampleTopK decides whether a pattern occurrence goes through top-k
// processing (§5.2 sampling). The RNG advances only for probabilities
// strictly between 0 and 1, so fully deterministic configurations
// (including TopKProbabilityNever) stay reproducible.
//
//lint:hotpath
func (e *Engine) sampleTopK() bool {
	p := e.cfg.TopKProbability
	if p >= 1 {
		return true
	}
	if p <= 0 { // TopKProbabilityNever
		return false
	}
	return e.rng.Float64() < p
}

// FrequentPattern is one tracked heavy hitter: the pattern's
// one-dimensional value and its estimated frequency at tracking time.
type FrequentPattern struct {
	Value uint64
	Freq  int64
}

// FrequentPatterns returns the currently tracked top-k patterns across
// all virtual streams, most frequent first. Frequencies are the
// sketch estimates recorded by Algorithm 4.
func (e *Engine) FrequentPatterns() []FrequentPattern {
	var out []FrequentPattern
	for _, t := range e.trackers {
		for _, vf := range t.Entries() {
			out = append(out, FrequentPattern{Value: vf.Value, Freq: vf.Freq})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// EstimateSelfJoinSize estimates SJ(S) = Σ f² of the pattern stream —
// the quantity that drives the estimator variance (Equation 2) and
// hence how much memory a target accuracy needs. With compensated set,
// the deleted top-k instances are added back per cell, estimating the
// full stream's self-join size; otherwise the residual (lightened)
// stream is measured, which is what governs current query variance.
// Virtual streams are disjoint, so per-stream F2 estimates sum.
func (e *Engine) EstimateSelfJoinSize(compensated bool) float64 {
	total := 0.0
	for i := 0; i < e.streams.P(); i++ {
		var adj []int64
		if compensated && e.trackers != nil {
			adj = e.trackers[i].AdjustmentAll()
		}
		total += e.streams.Sketch(i).EstimateF2(adj)
	}
	return total
}

// SetObserver installs a hook invoked once per generated pattern
// occurrence during AddTree, after the synopsis update, with the
// pattern's one-dimensional value. The experiment harness uses it to
// build ground-truth catalogs in the same stream pass.
func (e *Engine) SetObserver(fn func(v uint64, p *enum.Pattern)) { e.observer = fn }

// Metrics returns the engine's observability layer: always-on atomic
// counters plus opt-in stage timers and the query-latency histogram
// (obs.Metrics.EnableTimers). Reading it (Snapshot) is safe while the
// engine updates.
func (e *Engine) Metrics() *obs.Metrics { return e.met }

// SetMetrics replaces the engine's observability sink. Clone shares the
// source's Metrics by default; the sliding-window engine uses this hook
// to give each slice engine its own counters and to let the merged
// serving engine report through one persistent Metrics across rebuilds.
// The engine must be quiescent: swapping the sink while an update or
// query is in flight would split its accounting across two sinks. The
// observability layer is process-local state and is never serialized,
// so the swap cannot affect synopsis bytes or estimates.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		m = &obs.Metrics{}
	}
	e.met = m
}

// Stats reads the engine's observability snapshot. Unlike
// TreesProcessed/PatternsProcessed it is safe to call concurrently
// with updates (the counters are atomics) and additionally carries
// per-stage timings, the query-latency histogram when timers are
// enabled, the sketch-health section, and — when the exact-shadow
// auditor is enabled — the audit section with the last report's error
// quantiles. Everything collected here comes from atomics.
func (e *Engine) Stats() obs.Snapshot {
	s := e.met.Snapshot()
	s.Health = e.healthSnapshot()
	if e.auditor != nil {
		s.Audit = e.auditSnapshot()
	}
	s.Plans = e.plans.snapshot()
	return s
}

// TreesProcessed returns the number of trees folded into the synopsis.
func (e *Engine) TreesProcessed() int64 { return e.trees }

// PatternsProcessed returns the number of pattern occurrences
// processed (the length of the one-dimensional stream).
func (e *Engine) PatternsProcessed() int64 { return e.patterns }

// Exact returns the exact baseline counter, or nil when TrackExact is
// off.
func (e *Engine) Exact() *exact.Counter { return e.truth }

// Summary returns the structural summary, or nil when BuildSummary is
// off.
func (e *Engine) Summary() *summary.Summary { return e.sum }

// Memory is the synopsis footprint, broken down as the paper accounts
// it: sketch counters, ξ seeds, and top-k structures (§7.5).
type Memory struct {
	SketchCounters int
	Seeds          int
	TopK           int
	Summary        int
}

// Total returns the whole synopsis size in bytes, excluding the
// optional structural summary, which the paper accounts separately.
func (m Memory) Total() int { return m.SketchCounters + m.Seeds + m.TopK }

// MemoryBytes reports the synopsis footprint.
func (e *Engine) MemoryBytes() Memory {
	m := Memory{
		SketchCounters: e.streams.MemoryBytes(),
		Seeds:          e.seeds.MemoryBytes(),
	}
	for _, t := range e.trackers {
		m.TopK += t.MemoryBytes()
	}
	if e.sum != nil {
		m.Summary = e.sum.MemoryBytes()
	}
	return m
}

// trackerFor returns the top-k tracker of the virtual stream v routes
// to, or nil when tracking is disabled.
//
//lint:hotpath
func (e *Engine) trackerFor(v uint64) *topk.Tracker {
	if e.trackers == nil {
		return nil
	}
	return e.trackers[e.streams.Route(v)]
}

// adjustmentFor collects the top-k compensation for query values vs
// against the combined sketch of their virtual streams: each tracker
// contributes the deleted instances of the query values it tracks.
func (e *Engine) adjustmentFor(vs []uint64) []int64 {
	if e.trackers == nil {
		return nil
	}
	var adj []int64
	seen := make(map[int]bool)
	for _, v := range vs {
		r := e.streams.Route(v)
		if seen[r] {
			continue
		}
		seen[r] = true
		part := e.trackers[r].Adjustment(vs)
		if part == nil {
			continue
		}
		if adj == nil {
			adj = part
			continue
		}
		for c := range adj {
			adj[c] += part[c]
		}
	}
	return adj
}
