package core

import (
	"testing"

	"sketchtree/internal/tree"
)

// cloneConfig exercises every optional subsystem the clone must carry:
// top-k trackers, the structural summary, and the exact baseline.
func cloneConfig() Config {
	cfg := testConfig()
	cfg.TopK = 5
	cfg.BuildSummary = true
	return cfg
}

func TestCloneBitIdentical(t *testing.T) {
	e := mustEngine(t, cloneConfig())
	figure1Stream(t, e)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.TreesProcessed() != e.TreesProcessed() || c.PatternsProcessed() != e.PatternsProcessed() {
		t.Fatalf("clone counters %d/%d != %d/%d",
			c.TreesProcessed(), c.PatternsProcessed(), e.TreesProcessed(), e.PatternsProcessed())
	}
	queries := []*tree.Node{
		tree.T("A", tree.T("B")),
		tree.T("A", tree.T("B"), tree.T("C")),
		tree.T("A", tree.T("B"), tree.T("B"), tree.T("C")),
	}
	for _, q := range queries {
		want, err1 := e.EstimateOrdered(q)
		got, err2 := c.EstimateOrdered(q)
		if err1 != nil || err2 != nil || want != got {
			t.Errorf("%s: ordered clone %v != source %v (errs %v/%v)", q, got, want, err1, err2)
		}
		wu, err1 := e.EstimateUnordered(q)
		gu, err2 := c.EstimateUnordered(q)
		if err1 != nil || err2 != nil || wu != gu {
			t.Errorf("%s: unordered clone %v != source %v (errs %v/%v)", q, gu, wu, err1, err2)
		}
	}
	if w, g := e.EstimateSelfJoinSize(true), c.EstimateSelfJoinSize(true); w != g {
		t.Errorf("self-join clone %v != source %v", g, w)
	}
	wf, gf := e.FrequentPatterns(), c.FrequentPatterns()
	if len(wf) != len(gf) {
		t.Fatalf("clone tracks %d frequent patterns, source %d", len(gf), len(wf))
	}
	for i := range wf {
		if wf[i] != gf[i] {
			t.Errorf("frequent[%d]: clone %+v != source %+v", i, gf[i], wf[i])
		}
	}
}

// TestCloneIsFrozen checks snapshot isolation: updates to the source
// after cloning do not leak into the clone.
func TestCloneIsFrozen(t *testing.T) {
	e := mustEngine(t, cloneConfig())
	figure1Stream(t, e)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	q := tree.T("A", tree.T("B"))
	before, err := c.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.AddTree(tree.NewTree(tree.T("A", tree.T("B")))); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("clone answer drifted after source updates: %v -> %v", before, after)
	}
	live, err := e.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if live == before {
		t.Fatalf("source should have moved past the clone (both %v)", live)
	}
}

// TestCloneSharesMetrics checks queries served from a clone are counted
// in the source engine's observability stats.
func TestCloneSharesMetrics(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	base := e.Stats().Queries.Count
	if _, err := c.EstimateOrdered(tree.T("A", tree.T("B"))); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Queries.Count; got != base+1 {
		t.Fatalf("source query count %d, want %d (clone queries share metrics)", got, base+1)
	}
}

// TestCloneAuditNotCarried checks the exact-shadow auditor stays with
// the live engine.
func TestCloneAuditNotCarried(t *testing.T) {
	e := mustEngine(t, testConfig())
	if err := e.EnableAudit(4); err != nil {
		t.Fatal(err)
	}
	figure1Stream(t, e)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !e.AuditEnabled() {
		t.Fatal("source lost its auditor")
	}
	if c.AuditEnabled() {
		t.Fatal("clone should not carry the auditor")
	}
}
