package core

import (
	"fmt"
	"math/rand/v2"

	"sketchtree/internal/prufer"
	"sketchtree/internal/rabin"
	"sketchtree/internal/tree"
)

// Mapper is the standalone pattern → one-dimensional-value mapping
// (EnumTree output → extended Prüfer → Rabin fingerprint) used by the
// experiment harness to build ground-truth catalogs without a full
// engine. A Mapper constructed with the same (degree, seed) as an
// engine's (FingerprintDegree, Seed) produces the identical mapping.
type Mapper struct {
	fp  *rabin.Fingerprinter
	buf []byte
}

// NewMapper draws the random fingerprint modulus exactly as Engine
// does.
func NewMapper(degree int, seed uint64) (*Mapper, error) {
	rng := rand.New(rand.NewPCG(seed, 0x5ce7c47ee))
	fp, err := rabin.NewRandom(degree, rng)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Mapper{fp: fp}, nil
}

// PatternValue maps a pattern tree to its one-dimensional value.
func (m *Mapper) PatternValue(q *tree.Node) uint64 {
	seq := prufer.OfNode(q)
	m.buf = seq.Encode(m.buf[:0])
	return m.fp.Fingerprint(m.buf)
}
