package core

import (
	"fmt"

	"sketchtree/internal/audit"
	"sketchtree/internal/obs"
)

// healthSnapshot collects the estimator-health section attached to
// Stats(). Everything here is read from atomics (virtual-stream item
// counters, top-k churn mirrors), so collection is safe concurrent
// with updates — the contract Stats() and Safe.Stats() rely on.
func (e *Engine) healthSnapshot() *obs.HealthSnapshot {
	p := e.streams.P()
	h := &obs.HealthSnapshot{VirtualStreams: p, Items: make([]int64, p)}
	for i := 0; i < p; i++ {
		h.Items[i] = e.streams.Items(i)
	}
	h.Recompute()
	if e.trackers != nil {
		tk := &obs.TopKHealth{
			Trackers: len(e.trackers),
			Capacity: len(e.trackers) * e.cfg.TopK,
		}
		for _, t := range e.trackers {
			c := t.Churn()
			tk.Residency += c.Residency
			tk.Promotions += c.Promotions
			tk.Evictions += c.Evictions
			tk.DeletedMass += c.DeletedMass
			if c.MinFreq > 0 && (tk.MinFreq == 0 || c.MinFreq < tk.MinFreq) {
				tk.MinFreq = c.MinFreq
			}
		}
		h.TopK = tk
	}
	return h
}

// HealthReport is the engine's full sketch-health diagnosis: the
// atomics-readable snapshot plus sketch-derived energy figures and
// human-readable warnings. Unlike Stats it reads the sketch counters,
// so it needs the same exclusion as queries (Safe serializes it).
type HealthReport struct {
	obs.HealthSnapshot

	// PartitionL2 is the estimated L2 energy (self-join size) of each
	// virtual stream's residual sketch — the quantity that drives that
	// partition's estimator variance (Equation 2).
	PartitionL2 []float64
	// SelfJoinSize is the compensated total self-join size (deleted
	// top-k instances added back), Σ over partitions.
	SelfJoinSize float64
	// Warnings are human-readable conditions worth an operator's
	// attention; empty when the synopsis looks healthy.
	Warnings []string
}

// HealthReport diagnoses the synopsis: partition occupancy and energy
// skew, top-k liveness, and anomalous stream mass. The thresholds are
// heuristics — a partition holding a few times its uniform share is
// normal on skewed data; an order of magnitude is worth a look.
func (e *Engine) HealthReport() HealthReport {
	r := HealthReport{HealthSnapshot: *e.healthSnapshot()}
	p := e.streams.P()
	r.PartitionL2 = make([]float64, p)
	maxL2, sumL2, maxL2At := 0.0, 0.0, 0
	for i := 0; i < p; i++ {
		var adj []int64
		if e.trackers != nil {
			adj = e.trackers[i].AdjustmentAll()
		}
		l2 := e.streams.Sketch(i).EstimateF2(adj)
		if l2 < 0 {
			l2 = 0
		}
		r.PartitionL2[i] = l2
		sumL2 += l2
		if l2 > maxL2 {
			maxL2, maxL2At = l2, i
		}
	}
	r.SelfJoinSize = sumL2

	uniform := 1 / float64(p)
	if r.TotalItems > 0 && r.MaxShare >= 0.10 && r.MaxShare > 4*uniform {
		r.Warnings = append(r.Warnings, fmt.Sprintf(
			"partition %d holds %.0f%% of stream mass (uniform share would be %.1f%%); consider a larger VirtualStreams prime",
			r.MaxShareIndex, 100*r.MaxShare, 100*uniform))
	}
	if sumL2 > 0 && maxL2/sumL2 >= 0.25 && maxL2/sumL2 > 4*uniform {
		r.Warnings = append(r.Warnings, fmt.Sprintf(
			"partition %d carries %.0f%% of sketch L2 energy: its queries dominate the variance budget",
			maxL2At, 100*maxL2/sumL2))
	}
	if tk := r.TopK; tk != nil && r.TotalItems > 0 && tk.Promotions == 0 {
		r.Warnings = append(r.Warnings,
			"top-k tracking is configured but no pattern was ever promoted (sampling probability too low, or stream too uniform to exceed the admission bar)")
	}
	for i, it := range r.Items {
		if it < 0 {
			r.Warnings = append(r.Warnings, fmt.Sprintf(
				"virtual stream %d has negative net mass (%d): more deletions than insertions were routed there", i, it))
		}
	}
	return r
}

// auditSalt decorrelates the auditor's bottom-k hash from every other
// seed derived from Config.Seed.
const auditSalt = 0x9e3779b97f4a7c15

// EnableAudit attaches an exact-shadow auditor that keeps exact counts
// for a bottom-k hash sample of up to k distinct pattern values, so
// the engine can continuously report the observed accuracy of its own
// estimates (AuditReport). It must be called before any tree is
// processed: the sample's exactness guarantee needs to see the stream
// from the start. The auditor is process-local — it is not part of the
// synopsis and never serialized.
func (e *Engine) EnableAudit(k int) error {
	if e.auditor != nil {
		return fmt.Errorf("core: audit already enabled")
	}
	if e.patterns != 0 || e.trees != 0 {
		return fmt.Errorf("core: audit must be enabled before ingestion (synopsis already holds %d pattern occurrences)", e.patterns)
	}
	a, err := audit.New(k, e.cfg.Seed^auditSalt)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.auditor = a
	return nil
}

// AuditEnabled reports whether the exact-shadow auditor is attached.
func (e *Engine) AuditEnabled() bool { return e.auditor != nil }

// AuditReport scores every audited pattern value through the live
// single-pattern query path (sketch estimate with top-k compensation)
// against its exact shadow count and returns the accuracy report. It
// reads the sketches, so it needs the same exclusion as queries. The
// report's error quantiles are cached for the audit section of
// subsequent Stats() snapshots.
func (e *Engine) AuditReport() (audit.Report, error) {
	if e.auditor == nil {
		return audit.Report{}, fmt.Errorf("core: audit not enabled (Engine.EnableAudit)")
	}
	r := e.auditor.Report(e.estimateValue)
	e.auditCache.Store(&obs.AuditSnapshot{
		Capacity:   r.K,
		Patterns:   r.Tracked,
		Observed:   r.Observed,
		Reported:   true,
		MeanRelErr: r.Mean,
		P50RelErr:  r.P50,
		P90RelErr:  r.P90,
		P99RelErr:  r.P99,
		MaxRelErr:  r.Max,
	})
	return r, nil
}

// auditSnapshot assembles the audit section of Stats(): live sample
// occupancy from the auditor's atomics, error quantiles from the last
// AuditReport (computing fresh ones would need sketch reads, which
// Stats must not do).
func (e *Engine) auditSnapshot() *obs.AuditSnapshot {
	a := &obs.AuditSnapshot{
		Capacity: e.auditor.K(),
		Patterns: int(e.auditor.Tracked()),
		Observed: e.auditor.Observed(),
	}
	if last := e.auditCache.Load(); last != nil {
		a.Reported = true
		a.MeanRelErr = last.MeanRelErr
		a.P50RelErr = last.P50RelErr
		a.P90RelErr = last.P90RelErr
		a.P99RelErr = last.P99RelErr
		a.MaxRelErr = last.MaxRelErr
	}
	return a
}
