package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"sketchtree/internal/summary"
	"sketchtree/internal/tree"
)

func fullConfig() Config {
	cfg := testConfig()
	cfg.TopK = 5
	cfg.BuildSummary = true
	return cfg
}

func TestSnapshotRoundTripEstimatesIdentical(t *testing.T) {
	e := mustEngine(t, fullConfig())
	figure1Stream(t, e)

	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*tree.Node{
		tree.T("A", tree.T("B")),
		tree.T("A", tree.T("B"), tree.T("C")),
		tree.T("A", tree.T("C"), tree.T("B")),
		tree.T("Z", tree.T("Q")),
	}
	for _, q := range queries {
		want, err := e.EstimateOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.EstimateOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("restored estimate of %s = %v, original %v", q, got, want)
		}
	}
	if r.TreesProcessed() != e.TreesProcessed() || r.PatternsProcessed() != e.PatternsProcessed() {
		t.Error("counters not restored")
	}
	// Exact baseline restored.
	q := tree.T("A", tree.T("B"))
	if r.Exact().Count(r.PatternValue(q)) != e.Exact().Count(e.PatternValue(q)) {
		t.Error("exact counter not restored")
	}
	// Summary restored: extended query answers match.
	eq := summary.Q("A", summary.Q(summary.Wildcard))
	we, _, err := e.EstimateExtended(eq)
	if err != nil {
		t.Fatal(err)
	}
	ge, _, err := r.EstimateExtended(eq)
	if err != nil {
		t.Fatal(err)
	}
	if we != ge {
		t.Errorf("extended estimate differs after restore: %v vs %v", ge, we)
	}
}

func TestSnapshotRoundTripContinuesStream(t *testing.T) {
	// An engine restored mid-stream and fed the remaining trees must
	// agree exactly with an engine that never stopped.
	full := mustEngine(t, fullConfig())
	half := mustEngine(t, fullConfig())
	pre := []*tree.Tree{
		tree.NewTree(tree.T("A", tree.T("B"), tree.T("C"))),
		tree.NewTree(tree.T("A", tree.T("B"))),
	}
	post := []*tree.Tree{
		tree.NewTree(tree.T("A", tree.T("C"), tree.T("B"))),
		tree.NewTree(tree.T("X", tree.T("Y", tree.T("Z")))),
	}
	for _, tr := range pre {
		full.AddTree(tr)
		half.AddTree(tr)
	}
	data, err := half.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range post {
		full.AddTree(tr)
		resumed.AddTree(tr)
	}
	for _, q := range []*tree.Node{
		tree.T("A", tree.T("B")),
		tree.T("X", tree.T("Y")),
		tree.T("A", tree.T("B"), tree.T("C")),
	} {
		want, _ := full.EstimateOrdered(q)
		got, _ := resumed.EstimateOrdered(q)
		if got != want {
			t.Errorf("resumed stream diverged on %s: %v vs %v", q, got, want)
		}
	}
}

func TestMarshalBinaryByteDeterministic(t *testing.T) {
	// Marshaling the same engine state must yield the same bytes every
	// time. The exact shadow used to be serialized in map-iteration
	// order, which randomized the encoding of ExactValues/ExactCounts
	// per call; exact.Counter.ForEach now iterates in sorted order.
	e := mustEngine(t, fullConfig())
	figure1Stream(t, e)
	if e.Exact() == nil || e.Exact().Distinct() < 2 {
		t.Fatal("test needs a populated exact shadow to be meaningful")
	}
	first, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		again, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("MarshalBinary not byte-deterministic: attempt %d differs from first", i+1)
		}
	}
}

func TestRestoreRejectsCorruptData(t *testing.T) {
	e := mustEngine(t, fullConfig())
	figure1Stream(t, e)
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(nil); err == nil {
		t.Error("empty data must fail")
	}
	if _, err := Restore(data[:len(data)/2]); err == nil {
		t.Error("truncated data must fail")
	}
	if _, err := Restore([]byte("garbage")); err == nil {
		t.Error("garbage must fail")
	}
}

func TestRestoreWithoutOptionalParts(t *testing.T) {
	// No top-k, no summary, no exact tracking.
	cfg := testConfig()
	cfg.TrackExact = false
	e := mustEngine(t, cfg)
	figure1Stream(t, e)
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact() != nil || r.Summary() != nil {
		t.Error("optional parts must stay nil")
	}
	q := tree.T("A", tree.T("B"))
	want, _ := e.EstimateOrdered(q)
	got, _ := r.EstimateOrdered(q)
	if got != want {
		t.Errorf("estimate differs: %v vs %v", got, want)
	}
}

func TestRemoveTreeInvertsAddTree(t *testing.T) {
	cfg := testConfig()
	e := mustEngine(t, cfg)
	figure1Stream(t, e)
	base, _ := e.EstimateOrdered(tree.T("A", tree.T("B")))

	extra := tree.NewTree(tree.T("A", tree.T("B"), tree.T("B")))
	if err := e.AddTree(extra); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveTree(extra); err != nil {
		t.Fatal(err)
	}
	got, _ := e.EstimateOrdered(tree.T("A", tree.T("B")))
	if got != base {
		t.Errorf("estimate after add+remove = %v, want %v", got, base)
	}
	if e.TreesProcessed() != 3 {
		t.Errorf("TreesProcessed = %d, want 3", e.TreesProcessed())
	}
	if e.Exact().Count(e.PatternValue(tree.T("A", tree.T("B"), tree.T("B")))) != 1 {
		t.Error("exact counts not restored by removal")
	}
}

func TestRemoveTreeWithTopK(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 3
	e := mustEngine(t, cfg)
	heavy := tree.NewTree(tree.T("A", tree.T("B")))
	for i := 0; i < 100; i++ {
		e.AddTree(heavy)
	}
	for i := 0; i < 20; i++ {
		if err := e.RemoveTree(heavy); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.EstimateOrdered(tree.T("A", tree.T("B")))
	if err != nil {
		t.Fatal(err)
	}
	// 100 added, 20 removed: the tracked freq plus the residual sketch
	// must answer 80 exactly (single-value stream).
	if got != 80 {
		t.Errorf("estimate = %v, want exactly 80", got)
	}
}

func TestFrequentPatterns(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 4
	e := mustEngine(t, cfg)
	if got := e.FrequentPatterns(); len(got) != 0 {
		t.Errorf("fresh engine tracks %d patterns", len(got))
	}
	heavy := tree.NewTree(tree.T("A", tree.T("B")))
	for i := 0; i < 60; i++ {
		e.AddTree(heavy)
	}
	fps := e.FrequentPatterns()
	if len(fps) == 0 {
		t.Fatal("no frequent patterns tracked")
	}
	if fps[0].Freq != 60 {
		t.Errorf("top frequency = %d, want 60", fps[0].Freq)
	}
	for i := 1; i < len(fps); i++ {
		if fps[i].Freq > fps[i-1].Freq {
			t.Error("frequent patterns must be sorted descending")
		}
	}
}

func TestEstimateSelfJoinSize(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 2
	cfg.S1 = 200
	e := mustEngine(t, cfg)
	heavy := tree.NewTree(tree.T("A", tree.T("B")))
	for i := 0; i < 50; i++ {
		e.AddTree(heavy)
	}
	// One distinct pattern with count 50: true SJ = 2500; residual
	// after tracking ≈ 0.
	resid := e.EstimateSelfJoinSize(false)
	comp := e.EstimateSelfJoinSize(true)
	if resid > 250 {
		t.Errorf("residual SJ = %v, want ≈ 0", resid)
	}
	if comp < 1800 || comp > 3200 {
		t.Errorf("compensated SJ = %v, want ≈ 2500", comp)
	}
}

// encodeSnapshot builds raw snapshot bytes for corruption tests.
func encodeSnapshot(t *testing.T, sn snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sn); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeSnapshot reads an engine's snapshot for modification.
func decodeSnapshot(t *testing.T, e *Engine) snapshot {
	t.Helper()
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var sn snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	return sn
}

func TestRestoreStructuralValidation(t *testing.T) {
	e := mustEngine(t, fullConfig())
	figure1Stream(t, e)
	base := decodeSnapshot(t, e)

	mutations := []struct {
		name string
		mut  func(sn *snapshot)
	}{
		{"wrong version", func(sn *snapshot) { sn.Version = 99 }},
		{"bad modulus", func(sn *snapshot) { sn.FingerprintModulus = 0b101 }},
		{"modulus degree mismatch", func(sn *snapshot) {
			sn.FingerprintModulus = 1<<31 | 1<<3 | 1 // degree 31, config says 61
		}},
		{"seed record count", func(sn *snapshot) { sn.SeedWords = sn.SeedWords[:1] }},
		{"stream counter count", func(sn *snapshot) { sn.StreamCounters = sn.StreamCounters[:2] }},
		{"topk record count", func(sn *snapshot) { sn.TopKEntries = sn.TopKEntries[:1] }},
		{"topk state without config", func(sn *snapshot) {
			sn.Config.TopK = 0
		}},
		{"summary missing", func(sn *snapshot) { sn.Summary = nil }},
		{"exact arrays disagree", func(sn *snapshot) {
			sn.ExactValues = append(sn.ExactValues, 1)
		}},
		{"invalid config", func(sn *snapshot) { sn.Config.S1 = 0 }},
	}
	for _, m := range mutations {
		sn := decodeSnapshot(t, e) // fresh copy
		m.mut(&sn)
		if _, err := Restore(encodeSnapshot(t, sn)); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", m.name)
		}
	}
	// The unmodified snapshot still restores.
	if _, err := Restore(encodeSnapshot(t, base)); err != nil {
		t.Fatalf("control restore failed: %v", err)
	}
}
