package core

import (
	"math"
	"strings"
	"testing"

	"sketchtree/internal/enum"
	"sketchtree/internal/summary"
	"sketchtree/internal/tree"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 100
	cfg.S2 = 7
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.TrackExact = true
	cfg.Seed = 12345
	return cfg
}

func mustEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// figure1Stream is a small stream in the spirit of paper Figure 1,
// with hand-computed pattern counts.
func figure1Stream(t testing.TB, e *Engine) {
	t.Helper()
	trees := []*tree.Tree{
		tree.NewTree(tree.T("A", tree.T("B"), tree.T("B"), tree.T("C"))),
		tree.NewTree(tree.T("A", tree.T("C"), tree.T("B"))),
		tree.NewTree(tree.T("A", tree.T("B"), tree.T("C"))),
	}
	for _, tr := range trees {
		if err := e.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MaxPatternEdges = 0 },
		func(c *Config) { c.S1 = 0 },
		func(c *Config) { c.S2 = 0 },
		func(c *Config) { c.VirtualStreams = 0 },
		func(c *Config) { c.TopK = -1 },
		func(c *Config) { c.Independence = 3 },
		func(c *Config) { c.FingerprintDegree = 7 },
		func(c *Config) { c.FingerprintDegree = 63 },
		func(c *Config) { c.TopKProbability = 1.5 },
		func(c *Config) { c.TopKProbability = -0.5 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestTopKProbabilityNormalization(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want float64 // normalized value; NaN means New must fail
		ok   bool
	}{
		{"zero means default 1.0", 0, 1, true},
		{"explicit 1 kept", 1, 1, true},
		{"fraction kept", 0.25, 0.25, true},
		{"never sentinel kept", TopKProbabilityNever, TopKProbabilityNever, true},
		{"above one rejected", 1.01, 0, false},
		{"negative non-sentinel rejected", -0.5, 0, false},
		{"below sentinel rejected", -2, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.TopKProbability = c.in
			e, err := New(cfg)
			if c.ok != (err == nil) {
				t.Fatalf("New(TopKProbability=%v) error = %v, want ok=%v", c.in, err, c.ok)
			}
			if !c.ok {
				if !strings.Contains(err.Error(), "TopKProbability") {
					t.Errorf("error %q does not name the field", err)
				}
				return
			}
			if got := e.Config().TopKProbability; got != c.want {
				t.Errorf("normalized TopKProbability = %v, want %v", got, c.want)
			}
		})
	}
}

func TestTopKProbabilityNeverDisablesTracking(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 5
	cfg.TopKProbability = TopKProbabilityNever
	e := mustEngine(t, cfg)
	figure1Stream(t, e)
	if got := e.FrequentPatterns(); len(got) != 0 {
		t.Errorf("TopKProbabilityNever tracked %d patterns, want 0", len(got))
	}
	// The sketches still absorb every pattern, so estimates are
	// unaffected by the sentinel.
	got, err := e.EstimateOrdered(tree.T("A", tree.T("B")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 2.5 {
		t.Errorf("estimate under never-sampling = %v, want ≈ 4", got)
	}
}

// The exact counter is driven through the same enumerate → sequence →
// fingerprint pipeline, so hand-computed occurrence counts pin the
// whole update path down deterministically.
func TestExactCountsThroughPipeline(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)

	cases := []struct {
		q    *tree.Node
		want int64
	}{
		// A(B,C) ordered: T1 has B1C, B2C; T2 has none (C before B); T3 has one.
		{tree.T("A", tree.T("B"), tree.T("C")), 3},
		{tree.T("A", tree.T("C"), tree.T("B")), 1},
		// A/B single edge: 2 + 1 + 1.
		{tree.T("A", tree.T("B")), 4},
		{tree.T("A", tree.T("C")), 3},
		// A(B,B): only T1.
		{tree.T("A", tree.T("B"), tree.T("B")), 1},
		// A(B,B,C): only T1.
		{tree.T("A", tree.T("B"), tree.T("B"), tree.T("C")), 1},
		// Absent pattern.
		{tree.T("B", tree.T("C")), 0},
	}
	for _, c := range cases {
		v := e.PatternValue(c.q)
		if got := e.Exact().Count(v); got != c.want {
			t.Errorf("exact count of %s = %d, want %d", c.q, got, c.want)
		}
	}
	if e.TreesProcessed() != 3 {
		t.Errorf("TreesProcessed = %d", e.TreesProcessed())
	}
	// Total patterns: trees of sizes 4, 3, 3 with k=3.
	// T1 (A with 3 leaf children): subsets of children sized 1..3 = 3+3+1 = 7.
	// T2, T3 (2 leaf children): 2+1 = 3 each. Total 13.
	if e.PatternsProcessed() != 13 {
		t.Errorf("PatternsProcessed = %d, want 13", e.PatternsProcessed())
	}
	if e.Exact().Total() != 13 {
		t.Errorf("exact total = %d", e.Exact().Total())
	}
}

func TestEstimateOrderedCloseToExact(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	for _, q := range []*tree.Node{
		tree.T("A", tree.T("B"), tree.T("C")),
		tree.T("A", tree.T("B")),
	} {
		want := float64(e.Exact().Count(e.PatternValue(q)))
		got, err := e.EstimateOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		// Tiny stream, generous s1: expect small absolute error.
		if math.Abs(got-want) > 2.5 {
			t.Errorf("estimate of %s = %v, want ≈ %v", q, got, want)
		}
	}
}

func TestEstimateUnordered(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	// COUNT(A{B,C}) = ordered A(B,C) + A(C,B) = 3 + 1 = 4.
	got, err := e.EstimateUnordered(tree.T("A", tree.T("B"), tree.T("C")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 3 {
		t.Errorf("unordered estimate = %v, want ≈ 4", got)
	}
}

func TestEstimateOrderedSetValidation(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	if _, err := e.EstimateOrderedSet(nil); err == nil {
		t.Error("empty set must fail")
	}
	q := tree.T("A", tree.T("B"))
	if _, err := e.EstimateOrderedSet([]*tree.Node{q, q}); err == nil {
		t.Error("duplicate patterns must fail")
	}
}

func TestQueryValidation(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	if _, err := e.EstimateOrdered(nil); err == nil {
		t.Error("nil pattern must fail")
	}
	if _, err := e.EstimateOrdered(tree.T("A")); err == nil {
		t.Error("zero-edge pattern must fail")
	}
	big := tree.T("A", tree.T("B", tree.T("C", tree.T("D", tree.T("E")))))
	if _, err := e.EstimateOrdered(big); err == nil {
		t.Error("pattern beyond k must fail")
	}
	if err := e.AddTree(nil); err == nil {
		t.Error("nil tree must fail")
	}
}

func TestArrangements(t *testing.T) {
	got, err := Arrangements(tree.T("A", tree.T("B"), tree.T("C")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("A{B,C}: %d arrangements, want 2", len(got))
	}
	// Identical siblings collapse.
	got, err = Arrangements(tree.T("A", tree.T("B"), tree.T("B")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("A{B,B}: %d arrangements, want 1", len(got))
	}
	// Nested: A(B(X,Y), C) → 2 (inner) × 2 (outer) = 4.
	got, err = Arrangements(tree.T("A", tree.T("B", tree.T("X"), tree.T("Y")), tree.T("C")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("nested: %d arrangements, want 4", len(got))
	}
	// Figure 4 of the paper: A{B{C}, B} has... two children B(C) and B;
	// permutations 2, inner C fixed → 2 arrangements.
	got, err = Arrangements(tree.T("A", tree.T("B", tree.T("C")), tree.T("B")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("A{B(C),B}: %d arrangements, want 2", len(got))
	}
	if _, err := Arrangements(nil, 0); err == nil {
		t.Error("nil must fail")
	}
	// Cap: a node with 8 distinct children has 8! = 40320 arrangements.
	wide := tree.New("R")
	for i := 0; i < 8; i++ {
		wide.AddChild(tree.T(string(rune('a' + i))))
	}
	if _, err := Arrangements(wide, 100); err == nil {
		t.Error("arrangement explosion must be capped")
	}
}

// Regression: Arrangements generates multiset permutations directly.
// The old generate-n!-then-dedupe scheme hit the cap on repeated
// children long before producing its (few) distinct outputs.
func TestArrangementsMultiset(t *testing.T) {
	// 8 identical leaves: exactly 1 distinct arrangement. Pre-rewrite
	// this enumerated 8! = 40320 permutations and tripped a cap of 2.
	same := tree.New("A")
	for i := 0; i < 8; i++ {
		same.AddChild(tree.T("B"))
	}
	got, err := Arrangements(same, 2)
	if err != nil {
		t.Fatalf("8 identical children must not hit the cap: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("A{B×8}: %d arrangements, want 1", len(got))
	}

	// Multiset counts: distinct sequences = n! / ∏ (multiplicity!).
	cases := []struct {
		q    *tree.Node
		want int
	}{
		// 3!/2! = 3: BBC, BCB, CBB.
		{tree.T("A", tree.T("B"), tree.T("B"), tree.T("C")), 3},
		// 4!/(2!·2!) = 6.
		{tree.T("A", tree.T("B"), tree.T("C"), tree.T("B"), tree.T("C")), 6},
		// Repeated subtrees count by unordered shape, not by pointer:
		// B(X) appears twice → 3!/2! = 3.
		{tree.T("A", tree.T("B", tree.T("X")), tree.T("B", tree.T("X")), tree.T("C")), 3},
		// Children that are equal as unordered trees group together even
		// when written in different child orders: both are B{X,Y}, and
		// each slot can take either of its 2 orderings → 2² = 4.
		{tree.T("A",
			tree.T("B", tree.T("X"), tree.T("Y")),
			tree.T("B", tree.T("Y"), tree.T("X"))), 4},
	}
	for _, c := range cases {
		got, err := Arrangements(c.q, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(got) != c.want {
			t.Errorf("%s: %d arrangements, want %d", c.q, len(got), c.want)
		}
		// Distinct by construction: no two outputs may serialize alike.
		seen := make(map[string]bool, len(got))
		for _, a := range got {
			s := a.String()
			if seen[s] {
				t.Errorf("%s: duplicate arrangement %s", c.q, s)
			}
			seen[s] = true
		}
	}

	// The cap still applies to genuinely distinct sequences.
	if _, err := Arrangements(tree.T("A", tree.T("B"), tree.T("B"), tree.T("C")), 2); err == nil {
		t.Error("cap of 2 with 3 distinct arrangements must fail")
	}
}

func TestEstimateExprProduct(t *testing.T) {
	cfg := testConfig()
	cfg.Independence = 6
	cfg.S1 = 300
	e := mustEngine(t, cfg)
	// Build a stream where two patterns have solid counts.
	for i := 0; i < 30; i++ {
		e.AddTree(tree.NewTree(tree.T("A", tree.T("B"), tree.T("C"))))
	}
	qb := tree.T("A", tree.T("B"))
	qc := tree.T("A", tree.T("C"))
	fb := float64(e.Exact().Count(e.PatternValue(qb)))
	fc := float64(e.Exact().Count(e.PatternValue(qc)))
	if fb != 30 || fc != 30 {
		t.Fatalf("exact counts %v, %v, want 30, 30", fb, fc)
	}
	got, err := e.EstimateExpr(ExprMul{L: CountOf{qb}, R: CountOf{qc}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-900) > 450 {
		t.Errorf("product estimate = %v, want ≈ 900", got)
	}
	// Sum expression close to 60.
	got, err = e.EstimateExpr(ExprAdd{L: CountOf{qb}, R: CountOf{qc}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-60) > 20 {
		t.Errorf("sum estimate = %v, want ≈ 60", got)
	}
}

func TestEstimateExprIndependenceGuard(t *testing.T) {
	e := mustEngine(t, testConfig()) // 4-wise
	figure1Stream(t, e)
	q1, q2, q3 := tree.T("A", tree.T("B")), tree.T("A", tree.T("C")), tree.T("A", tree.T("B"), tree.T("C"))
	// Degree-3 product needs 6-wise.
	expr := ExprMul{L: ExprMul{L: CountOf{q1}, R: CountOf{q2}}, R: CountOf{q3}}
	if _, err := e.EstimateExpr(expr); err == nil {
		t.Error("degree-3 product on a 4-wise engine must fail")
	}
	if _, err := e.EstimateExpr(nil); err == nil {
		t.Error("nil expression must fail")
	}
	if _, err := e.EstimateExpr(CountOf{nil}); err == nil {
		t.Error("nil pattern terminal must fail")
	}
}

func TestEstimateExtended(t *testing.T) {
	cfg := testConfig()
	cfg.BuildSummary = true
	e := mustEngine(t, cfg)
	figure1Stream(t, e)
	// //A/B via summary resolves to the plain pattern A/B (count 4).
	got, truncated, err := e.EstimateExtended(summary.Q("A", summary.Q("B")))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("no truncation expected")
	}
	if math.Abs(got-4) > 2.5 {
		t.Errorf("extended estimate = %v, want ≈ 4", got)
	}
	// A/* resolves to A/B and A/C: total 4 + 3 = 7.
	got, _, err = e.EstimateExtended(summary.Q("A", summary.Q(summary.Wildcard)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-7) > 3.5 {
		t.Errorf("wildcard estimate = %v, want ≈ 7", got)
	}
	// No match.
	got, _, err = e.EstimateExtended(summary.Q("Z", summary.Q("B")))
	if err != nil || got != 0 {
		t.Errorf("absent label: got %v, %v", got, err)
	}
	// Summary disabled.
	e2 := mustEngine(t, testConfig())
	if _, _, err := e2.EstimateExtended(summary.Q("A", summary.Q("B"))); err == nil {
		t.Error("extended query without summary must fail")
	}
}

func TestTopKImprovesSkewedEstimates(t *testing.T) {
	// A heavily skewed stream: one pattern dominates. With top-k the
	// dominant pattern is deleted from the sketches and rare patterns
	// estimate much better.
	base := testConfig()
	base.S1 = 25
	base.VirtualStreams = 1 // force everything into one stream to stress SJ
	withTop := base
	withTop.TopK = 4

	eN := mustEngine(t, base)
	eT := mustEngine(t, withTop)
	heavy := tree.NewTree(tree.T("A", tree.T("B")))
	for i := 0; i < 500; i++ {
		eN.AddTree(heavy)
		eT.AddTree(heavy)
	}
	rare := tree.NewTree(tree.T("X", tree.T("Y", tree.T("Z"))))
	for i := 0; i < 10; i++ {
		eN.AddTree(rare)
		eT.AddTree(rare)
	}
	q := tree.T("X", tree.T("Y")) // exact count 10
	want := float64(eT.Exact().Count(eT.PatternValue(q)))
	if want != 10 {
		t.Fatalf("exact = %v", want)
	}
	got, err := eT.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	// With the heavy hitter deleted, the residual stream is tiny, so
	// the estimate should be sharp.
	if math.Abs(got-10) > 5 {
		t.Errorf("top-k estimate = %v, want ≈ 10", got)
	}
	// The heavy pattern itself must also answer well (compensated).
	qh := tree.T("A", tree.T("B"))
	gotH, err := eT.EstimateOrdered(qh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotH-500) > 50 {
		t.Errorf("tracked heavy estimate = %v, want ≈ 500", gotH)
	}
}

func TestTopKProbabilisticSampling(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 5
	cfg.TopKProbability = 0.5
	e := mustEngine(t, cfg)
	for i := 0; i < 50; i++ {
		e.AddTree(tree.NewTree(tree.T("A", tree.T("B"))))
	}
	// Sampling halves top-k invocations but the estimates must remain
	// sane (compensation still applies to whatever was tracked).
	got, err := e.EstimateOrdered(tree.T("A", tree.T("B")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 10 {
		t.Errorf("estimate under sampling = %v, want ≈ 50", got)
	}
}

func TestMemoryAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 10
	e := mustEngine(t, cfg)
	figure1Stream(t, e)
	m := e.MemoryBytes()
	if m.SketchCounters != cfg.VirtualStreams*cfg.S1*cfg.S2*8 {
		t.Errorf("SketchCounters = %d", m.SketchCounters)
	}
	if m.Seeds <= 0 {
		t.Error("Seeds must be positive")
	}
	if m.Total() != m.SketchCounters+m.Seeds+m.TopK {
		t.Error("Total mismatch")
	}
	// Doubling s1 doubles counters and seeds.
	cfg2 := cfg
	cfg2.S1 *= 2
	e2 := mustEngine(t, cfg2)
	m2 := e2.MemoryBytes()
	if m2.SketchCounters != 2*m.SketchCounters {
		t.Error("counter memory must scale with s1")
	}
}

func TestSanityBound(t *testing.T) {
	if got := SanityBound(5, 100); got != 5 {
		t.Errorf("positive approx must pass through: %v", got)
	}
	if got := SanityBound(-3, 100); got != 10 {
		t.Errorf("negative approx = %v, want 0.1×actual = 10", got)
	}
	if got := SanityBound(-3, 0); got != 0 {
		t.Errorf("negative approx with unknown actual = %v, want 0", got)
	}
}

func TestPatternValueDeterministicAndDiscriminating(t *testing.T) {
	e := mustEngine(t, testConfig())
	a := tree.T("A", tree.T("B"), tree.T("C"))
	b := tree.T("A", tree.T("C"), tree.T("B"))
	if e.PatternValue(a) != e.PatternValue(a.Clone()) {
		t.Error("equal patterns must map to equal values")
	}
	if e.PatternValue(a) == e.PatternValue(b) {
		t.Error("different child orders must map to different values")
	}
	// Engines with different seeds use different fingerprint moduli.
	cfg2 := testConfig()
	cfg2.Seed = 999
	e2 := mustEngine(t, cfg2)
	if e.PatternValue(a) == e2.PatternValue(a) {
		t.Log("note: two seeds produced the same fingerprint (possible but unlikely)")
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := testConfig()
	e := mustEngine(t, cfg)
	got := e.Config()
	if got.S1 != cfg.S1 || got.MaxPatternEdges != cfg.MaxPatternEdges {
		t.Error("Config accessor wrong")
	}
	// normalize fills defaults.
	if got.TopKProbability != 1 || got.Independence != 4 {
		t.Errorf("normalized defaults missing: %+v", got)
	}
}

func TestMapperMatchesEngine(t *testing.T) {
	cfg := testConfig()
	e := mustEngine(t, cfg)
	m, err := NewMapper(cfg.FingerprintDegree, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*tree.Node{
		tree.T("A", tree.T("B")),
		tree.T("A", tree.T("B"), tree.T("C")),
		tree.T("S", tree.T("NP", tree.T("DT"))),
	} {
		if e.PatternValue(q) != m.PatternValue(q) {
			t.Errorf("mapper disagrees with engine on %s", q)
		}
	}
	if _, err := NewMapper(3, 1); err == nil {
		t.Error("bad degree must fail")
	}
}

func TestMappingIndependentOfSketchDimensions(t *testing.T) {
	a := testConfig()
	b := testConfig()
	b.S1 = 7
	b.S2 = 3
	b.TopK = 5
	ea, eb := mustEngine(t, a), mustEngine(t, b)
	q := tree.T("A", tree.T("B"), tree.T("C"))
	if ea.PatternValue(q) != eb.PatternValue(q) {
		t.Error("pattern mapping must depend only on Seed and FingerprintDegree")
	}
}

func TestObserver(t *testing.T) {
	e := mustEngine(t, testConfig())
	var values []uint64
	var sizes []int
	e.SetObserver(func(v uint64, p *enum.Pattern) {
		values = append(values, v)
		sizes = append(sizes, p.Edges())
	})
	figure1Stream(t, e)
	if int64(len(values)) != e.PatternsProcessed() {
		t.Errorf("observer saw %d patterns, engine processed %d", len(values), e.PatternsProcessed())
	}
	for _, s := range sizes {
		if s < 1 || s > e.Config().MaxPatternEdges {
			t.Errorf("observer pattern size %d out of range", s)
		}
	}
}

func TestCompileErrorPropagation(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	ok := CountOf{tree.T("A", tree.T("B"))}
	bad := CountOf{tree.T("A")} // zero edges
	for _, expr := range []Expr{
		ExprAdd{L: bad, R: ok},
		ExprAdd{L: ok, R: bad},
		ExprSub{L: bad, R: ok},
		ExprSub{L: ok, R: bad},
		ExprMul{L: bad, R: ok},
		ExprMul{L: ok, R: bad},
	} {
		if _, err := e.EstimateExpr(expr); err == nil {
			t.Errorf("invalid terminal must propagate: %T", expr)
		}
	}
	// Subtraction expression end-to-end.
	got, err := e.EstimateExpr(ExprSub{L: ok, R: CountOf{tree.T("A", tree.T("C"))}})
	if err != nil {
		t.Fatal(err)
	}
	// Exact: 4 - 3 = 1.
	if math.Abs(got-1) > 3 {
		t.Errorf("difference = %v, want ≈ 1", got)
	}
}

func TestEstimateUnorderedArrangementExplosion(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPatternEdges = 10
	e := mustEngine(t, cfg)
	e.AddTree(tree.NewTree(tree.T("A", tree.T("B"))))
	wide := tree.New("R")
	for i := 0; i < 9; i++ {
		wide.AddChild(tree.T(string(rune('a' + i))))
	}
	// 9! = 362880 arrangements exceeds the cap.
	if _, err := e.EstimateUnordered(wide); err == nil {
		t.Error("arrangement explosion must be reported")
	}
}
