package core

import (
	"bytes"
	"math"
	"testing"

	"sketchtree/internal/datagen"
	"sketchtree/internal/tree"
)

// The auditor's exact shadow counts must agree with an offline recount
// (the TrackExact baseline) for every audited pattern, and the
// reported relative errors must be exactly |estimate − exact| over the
// live query path.
func TestAuditAgreesWithOfflineRecount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1, cfg.S2 = 20, 5
	cfg.VirtualStreams = 23
	cfg.TopK = 10
	cfg.TrackExact = true
	cfg.Seed = 17
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableAudit(64); err != nil {
		t.Fatal(err)
	}
	if err := datagen.Treebank(6, 60).ForEach(e.AddTree); err != nil {
		t.Fatal(err)
	}

	rep, err := e.AuditReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tracked == 0 || rep.Tracked > 64 {
		t.Fatalf("tracked %d patterns, want 1..64", rep.Tracked)
	}
	if rep.Observed != e.PatternsProcessed() {
		t.Fatalf("auditor observed %d occurrences, stream had %d", rep.Observed, e.PatternsProcessed())
	}
	for _, p := range rep.Patterns {
		if truth := e.Exact().Count(p.Value); p.Exact != truth {
			t.Fatalf("audited count for %d is %d, offline recount says %d", p.Value, p.Exact, truth)
		}
		est := e.estimateValue(p.Value)
		denom := math.Abs(float64(p.Exact))
		if denom < 1 {
			denom = 1
		}
		if want := math.Abs(est-float64(p.Exact)) / denom; math.Abs(p.RelErr-want) > 1e-12 {
			t.Fatalf("reported rel error %v, recomputed %v", p.RelErr, want)
		}
	}
}

// Deletions flow through the audit shadow: after a sliding-window
// expiry the audited counts still match the exact baseline.
func TestAuditExactUnderDeletions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1, cfg.S2 = 10, 3
	cfg.VirtualStreams = 7
	cfg.TopK = 0
	cfg.TrackExact = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableAudit(32); err != nil {
		t.Fatal(err)
	}
	var win []*tree.Tree
	src := datagen.DBLP(2, 80)
	err = src.ForEach(func(tr *tree.Tree) error {
		if err := e.AddTree(tr); err != nil {
			return err
		}
		win = append(win, tr)
		if len(win) > 20 {
			if err := e.RemoveTree(win[0]); err != nil {
				return err
			}
			win = win[1:]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.AuditReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Patterns {
		if truth := e.Exact().Count(p.Value); p.Exact != truth {
			t.Fatalf("windowed audit count for %d is %d, exact baseline says %d", p.Value, p.Exact, truth)
		}
	}
}

// Enabling the auditor must not change the synopsis: serialized bytes
// and estimates are identical with and without it.
func TestAuditDoesNotPerturbSynopsis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1, cfg.S2 = 10, 3
	cfg.VirtualStreams = 23
	cfg.TopK = 10
	build := func(audit bool) *Engine {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if audit {
			if err := e.EnableAudit(64); err != nil {
				t.Fatal(err)
			}
		}
		if err := datagen.Treebank(8, 30).ForEach(e.AddTree); err != nil {
			t.Fatal(err)
		}
		return e
	}
	with, without := build(true), build(false)
	b1, err := with.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := without.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("enabling the auditor changed the serialized synopsis")
	}
	q := tree.New("NP", tree.New("DT"))
	e1, err := with.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := without.EstimateOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("estimates diverged with auditor on: %v vs %v", e1, e2)
	}
}

func TestAuditLifecycleGuards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1, cfg.S2 = 5, 3
	cfg.VirtualStreams = 7
	cfg.TopK = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AuditReport(); err == nil {
		t.Fatal("AuditReport without EnableAudit must fail")
	}
	if err := e.EnableAudit(0); err == nil {
		t.Fatal("EnableAudit(0) must fail")
	}
	if err := e.EnableAudit(8); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableAudit(8); err == nil {
		t.Fatal("double EnableAudit must fail")
	}
	if !e.AuditEnabled() {
		t.Fatal("AuditEnabled must report true")
	}

	// Too late after ingestion started.
	late, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := late.AddTree(tree.NewTree(tree.New("a", tree.New("b")))); err != nil {
		t.Fatal(err)
	}
	if err := late.EnableAudit(8); err == nil {
		t.Fatal("EnableAudit after ingestion must fail")
	}

	// Merging audited engines is rejected in both directions.
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Merge(e); err == nil {
		t.Fatal("merging an audited operand must fail")
	}
	if err := e.Merge(plain); err == nil {
		t.Fatal("merging into an audited engine must fail")
	}
}

// The audit section of Stats: occupancy live, quantiles only after a
// report has been computed.
func TestAuditStatsSection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1, cfg.S2 = 5, 3
	cfg.VirtualStreams = 7
	cfg.TopK = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Audit != nil {
		t.Fatal("audit section must be absent before EnableAudit")
	}
	if err := e.EnableAudit(16); err != nil {
		t.Fatal(err)
	}
	if err := datagen.DBLP(3, 20).ForEach(e.AddTree); err != nil {
		t.Fatal(err)
	}
	a := e.Stats().Audit
	if a == nil {
		t.Fatal("audit section missing after EnableAudit")
	}
	if a.Capacity != 16 || a.Patterns == 0 || a.Observed != e.PatternsProcessed() {
		t.Fatalf("audit occupancy: %+v", a)
	}
	if a.Reported {
		t.Fatal("Reported must be false before the first AuditReport")
	}
	rep, err := e.AuditReport()
	if err != nil {
		t.Fatal(err)
	}
	a = e.Stats().Audit
	if !a.Reported {
		t.Fatal("Reported must be true after AuditReport")
	}
	if a.P90RelErr != rep.P90 || a.MaxRelErr != rep.Max || a.MeanRelErr != rep.Mean {
		t.Fatalf("cached quantiles diverge from report: %+v vs %+v", a, rep)
	}
}
