package core

import (
	"math"
	"testing"

	"sketchtree/internal/tree"
)

func mergeConfig() Config {
	cfg := testConfig()
	cfg.TopK = 0
	cfg.BuildSummary = true
	return cfg
}

// Sharded ingestion then merge must be bit-identical to single-engine
// ingestion: same seeds → the sketches are linear, so counters add.
func TestMergeEqualsSingleEngine(t *testing.T) {
	whole := mustEngine(t, mergeConfig())
	a := mustEngine(t, mergeConfig())
	b := mustEngine(t, mergeConfig())
	shard1 := []*tree.Tree{
		tree.NewTree(tree.T("A", tree.T("B"), tree.T("C"))),
		tree.NewTree(tree.T("A", tree.T("B"))),
	}
	shard2 := []*tree.Tree{
		tree.NewTree(tree.T("A", tree.T("C"), tree.T("B"))),
		tree.NewTree(tree.T("X", tree.T("Y", tree.T("Z")))),
	}
	for _, tr := range shard1 {
		whole.AddTree(tr)
		a.AddTree(tr)
	}
	for _, tr := range shard2 {
		whole.AddTree(tr)
		b.AddTree(tr)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, q := range []*tree.Node{
		tree.T("A", tree.T("B")),
		tree.T("X", tree.T("Y")),
		tree.T("A", tree.T("B"), tree.T("C")),
	} {
		want, _ := whole.EstimateOrdered(q)
		got, _ := a.EstimateOrdered(q)
		if got != want {
			t.Errorf("merged estimate of %s = %v, whole-stream %v", q, got, want)
		}
	}
	if a.TreesProcessed() != whole.TreesProcessed() {
		t.Error("tree counters not merged")
	}
	if a.PatternsProcessed() != whole.PatternsProcessed() {
		t.Error("pattern counters not merged")
	}
	// Exact counters merged.
	q := tree.T("A", tree.T("B"))
	if a.Exact().Count(a.PatternValue(q)) != whole.Exact().Count(whole.PatternValue(q)) {
		t.Error("exact counters not merged")
	}
	// Summaries merged: the X path came from shard 2.
	if a.Summary().ChildLabels([]string{"X", "Y"}) == nil {
		t.Error("summary paths not merged")
	}
}

func TestMergeValidation(t *testing.T) {
	a := mustEngine(t, mergeConfig())
	if err := a.Merge(nil); err == nil {
		t.Error("nil operand must fail")
	}
	// Different seed.
	cfg := mergeConfig()
	cfg.Seed = 777
	b := mustEngine(t, cfg)
	if err := a.Merge(b); err == nil {
		t.Error("different seeds must fail")
	}
	// Different s1.
	cfg = mergeConfig()
	cfg.S1 = 7
	c := mustEngine(t, cfg)
	if err := a.Merge(c); err == nil {
		t.Error("different dimensions must fail")
	}
	// Top-k engines.
	cfg = mergeConfig()
	cfg.TopK = 5
	d := mustEngine(t, cfg)
	if err := d.Merge(d); err == nil {
		t.Error("top-k engines must refuse to merge")
	}
	// Exact-tracking mismatch.
	cfg = mergeConfig()
	cfg.TrackExact = false
	e2 := mustEngine(t, cfg)
	_ = e2
	if err := a.Merge(e2); err == nil {
		t.Error("exact-tracking mismatch must fail")
	}
	// Summary mismatch.
	cfg = mergeConfig()
	cfg.BuildSummary = false
	f := mustEngine(t, cfg)
	if err := a.Merge(f); err == nil {
		t.Error("summary mismatch must fail")
	}
}

func TestUpperBoundFallsBackWithinK(t *testing.T) {
	e := mustEngine(t, testConfig())
	figure1Stream(t, e)
	q := tree.T("A", tree.T("B"))
	want, _ := e.EstimateOrdered(q)
	got, err := e.EstimateOrderedUpperBound(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("within-k upper bound %v != estimate %v", got, want)
	}
}

func TestUpperBoundForOversizedPattern(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1 = 150
	e := mustEngine(t, cfg)
	// Stream where the 4-edge chain A/B/C/D/E occurs 20 times.
	big := tree.NewTree(tree.T("A", tree.T("B", tree.T("C", tree.T("D", tree.T("E"))))))
	for i := 0; i < 20; i++ {
		e.AddTree(big)
	}
	q := tree.T("A", tree.T("B", tree.T("C", tree.T("D", tree.T("E")))))
	got, err := e.EstimateOrderedUpperBound(q)
	if err != nil {
		t.Fatal(err)
	}
	// True count is 20; the bound must not be (meaningfully) below it,
	// and on this chain stream every 2-edge sub-pattern occurs exactly
	// 20 times, so the bound should be ≈ 20, i.e. tight.
	if got < 20-6 {
		t.Errorf("upper bound %v below true count 20", got)
	}
	if got > 20+10 {
		t.Errorf("upper bound %v far above tight value 20", got)
	}
	// Pattern absent from the stream: the bound should be near zero.
	absent := tree.T("Z", tree.T("Y", tree.T("X", tree.T("W", tree.T("V")))))
	got, err = e.EstimateOrderedUpperBound(absent)
	if err != nil {
		t.Fatal(err)
	}
	if got > 8 {
		t.Errorf("bound for absent pattern = %v, want ≈ 0", got)
	}
}

func TestUpperBoundValidation(t *testing.T) {
	e := mustEngine(t, testConfig())
	if _, err := e.EstimateOrderedUpperBound(nil); err == nil {
		t.Error("nil must fail")
	}
	if _, err := e.EstimateOrderedUpperBound(tree.T("A")); err == nil {
		t.Error("zero-edge pattern must fail")
	}
}

func TestTruncations(t *testing.T) {
	q := tree.T("A",
		tree.T("B", tree.T("D"), tree.T("E")),
		tree.T("C"))
	bfs := truncateBFS(q, 2)
	if bfs.String() != "(A (B) (C))" {
		t.Errorf("BFS truncation = %s", bfs)
	}
	dfs := truncateDFS(q, 2)
	if dfs.String() != "(A (B (D)))" {
		t.Errorf("DFS truncation = %s", dfs)
	}
	// Truncating to at least the size keeps the pattern whole.
	if got := truncateBFS(q, 10); !tree.Equal(got, q) {
		t.Errorf("over-budget BFS truncation altered pattern: %s", got)
	}
	if got := truncateDFS(q, 10); !tree.Equal(got, q) {
		t.Errorf("over-budget DFS truncation altered pattern: %s", got)
	}
}

// Property-style check: the upper bound is never meaningfully below
// the plain estimate... for oversized patterns we compare against the
// engine's exact count instead.
func TestUpperBoundDominatesExactCount(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1 = 150
	e := mustEngine(t, cfg)
	// Mixed stream.
	trees := []*tree.Tree{
		tree.NewTree(tree.T("A", tree.T("B", tree.T("C", tree.T("D"))))),
		tree.NewTree(tree.T("A", tree.T("B", tree.T("C")))),
		tree.NewTree(tree.T("A", tree.T("B"), tree.T("C", tree.T("D")))),
	}
	for _, tr := range trees {
		for i := 0; i < 10; i++ {
			e.AddTree(tr)
		}
	}
	// 3-edge pattern occurring 10 times (first tree only).
	q := tree.T("A", tree.T("B", tree.T("C", tree.T("D"))))
	got, err := e.EstimateOrderedUpperBound(q)
	if err != nil {
		t.Fatal(err)
	}
	if got < 10-5 {
		t.Errorf("upper bound %v below exact count 10", got)
	}
	if math.IsNaN(got) {
		t.Error("NaN bound")
	}
}

func TestAlternations(t *testing.T) {
	// One node with three alternatives.
	got, err := Alternations(tree.T("VBD|VBP|VBZ"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d expansions, want 3", len(got))
	}
	// Alternatives at two levels multiply: (A|B)(C|D) → 4.
	got, err = Alternations(tree.T("A|B", tree.T("C|D")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d expansions, want 4", len(got))
	}
	// Duplicate alternatives collapse.
	got, err = Alternations(tree.T("A|A", tree.T("B")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("A|A must deduplicate: %d", len(got))
	}
	// Plain patterns pass through unchanged.
	got, err = Alternations(tree.T("A", tree.T("B")), 0)
	if err != nil || len(got) != 1 || got[0].String() != "(A (B))" {
		t.Errorf("plain pattern: %v, %v", got, err)
	}
	if _, err := Alternations(nil, 0); err == nil {
		t.Error("nil must fail")
	}
	// Cap.
	wide := tree.T("A|B|C|D", tree.T("E|F|G|H"), tree.T("I|J|K|L"))
	if _, err := Alternations(wide, 10); err == nil {
		t.Error("expansion beyond cap must fail")
	}
}

// Example 5 of the paper: counting who-question structures via a
// VBD|VBZ disjunction equals the sum of the plain counts.
func TestEstimateAlternationsExample5(t *testing.T) {
	e := mustEngine(t, testConfig())
	stream := []*tree.Tree{
		tree.NewTree(tree.T("VP", tree.T("VBD"), tree.T("NP"))),
		tree.NewTree(tree.T("VP", tree.T("VBD"), tree.T("NP"))),
		tree.NewTree(tree.T("VP", tree.T("VBZ"), tree.T("NP"))),
		tree.NewTree(tree.T("VP", tree.T("MD"), tree.T("NP"))),
	}
	for _, tr := range stream {
		if err := e.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.EstimateAlternations(tree.T("VP", tree.T("VBD|VBZ"), tree.T("NP")))
	if err != nil {
		t.Fatal(err)
	}
	// Exact total: 2 (VBD) + 1 (VBZ) = 3; MD excluded.
	if math.Abs(got-3) > 2 {
		t.Errorf("OR estimate = %v, want ≈ 3", got)
	}
	// Single-alternative falls back to the plain estimator exactly.
	plain, _ := e.EstimateOrdered(tree.T("VP", tree.T("MD"), tree.T("NP")))
	alt, err := e.EstimateAlternations(tree.T("VP", tree.T("MD"), tree.T("NP")))
	if err != nil || alt != plain {
		t.Errorf("single alternative must match plain: %v vs %v (%v)", alt, plain, err)
	}
}
