package core

import (
	"math"

	"sketchtree/internal/ams"
	"sketchtree/internal/tree"
)

// Estimate is a pattern-count estimate with an error bar. Value is the
// usual median-of-means estimate — identical to what the plain
// estimators return. StdErr combines two views of the estimator's
// uncertainty: the empirical spread of the s2 independent row means
// behind the median, and the a-priori variance bound of the paper
// (Equation 2 for single counts, Equation 7 for sets) evaluated at the
// estimated self-join size. The empirical spread adapts to the actual
// stream (often much tighter than the worst-case bound); the bound
// caps it when the handful of rows happens to under-disperse. Using
// one row's standard error for the median of s2 rows is conservative:
// the median concentrates at least as well as a single row.
type Estimate struct {
	Value  float64
	StdErr float64
	// CI95 is the normal-approximation 95% interval
	// Value ± 1.96·StdErr (low, high).
	CI95 [2]float64
	// S1, S2 are the sketch dimensions the estimate was read with —
	// s1 instances averaged per row, s2 rows medianed.
	S1, S2 int
}

// newEstimate derives the error bar for an estimate over t distinct
// patterns drawn from a (combined) sketch with estimated self-join
// size sj.
func (e *Engine) newEstimate(re ams.RowEstimate, t int, sj float64) Estimate {
	if sj < 0 {
		sj = 0
	}
	emp := re.StdErr()
	bound := math.Sqrt(ams.VarBoundSet(t, sj) / float64(e.cfg.S1))
	se := emp
	if emp == 0 || (bound > 0 && bound < emp) {
		se = bound
	}
	return Estimate{
		Value:  re.Value,
		StdErr: se,
		CI95:   [2]float64{re.Value - 1.96*se, re.Value + 1.96*se},
		S1:     e.cfg.S1,
		S2:     e.cfg.S2,
	}
}

// EstimateOrderedWithError is EstimateOrdered with an error bar: the
// same point estimate, plus a standard error and 95% confidence
// interval derived from the sketch itself (no ground truth needed).
func (e *Engine) EstimateOrderedWithError(q *tree.Node) (Estimate, error) {
	start := e.met.QueryStart()
	est, err := e.estimateOrderedWithError(q)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateOrderedWithError(q *tree.Node) (Estimate, error) {
	if err := e.validatePattern(q); err != nil {
		return Estimate{}, err
	}
	v := e.orderedValue(q)
	sk := e.streams.SketchFor(v)
	adj := e.adjustmentForValue(v)
	re := sk.EstimateCountDetailed(v, adj)
	return e.newEstimate(re, 1, sk.EstimateF2(adj)), nil
}

// EstimateOrderedSetWithError is EstimateOrderedSet with an error bar
// (Equation 7's set-estimator variance bound).
func (e *Engine) EstimateOrderedSetWithError(qs []*tree.Node) (Estimate, error) {
	start := e.met.QueryStart()
	est, err := e.estimateOrderedSetWithError(qs)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateOrderedSetWithError(qs []*tree.Node) (Estimate, error) {
	vs, err := e.setValues(qs)
	if err != nil {
		return Estimate{}, err
	}
	sk := e.streams.Combined(vs)
	adj := e.adjustmentFor(vs)
	re := sk.EstimateSetCountDetailed(vs, adj)
	return e.newEstimate(re, len(vs), sk.EstimateF2(adj)), nil
}

// EstimateUnorderedWithError is EstimateUnordered with an error bar:
// the unordered count is the set estimate over all distinct ordered
// arrangements (§3.3), so the set bound applies.
func (e *Engine) EstimateUnorderedWithError(q *tree.Node) (Estimate, error) {
	start := e.met.QueryStart()
	est, err := e.estimateUnorderedWithError(q)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateUnorderedWithError(q *tree.Node) (Estimate, error) {
	if err := e.validatePattern(q); err != nil {
		return Estimate{}, err
	}
	vs, err := e.unorderedValues(q)
	if err != nil {
		return Estimate{}, err
	}
	sk := e.streams.Combined(vs)
	adj := e.adjustmentFor(vs)
	re := sk.EstimateSetCountDetailed(vs, adj)
	return e.newEstimate(re, len(vs), sk.EstimateF2(adj)), nil
}

// adjustmentForValue is the single-value top-k compensation.
//
//lint:hotpath
func (e *Engine) adjustmentForValue(v uint64) []int64 {
	if t := e.trackerFor(v); t != nil {
		return t.AdjustmentOne(v)
	}
	return nil
}

// estimateValue runs the single-pattern query path on an already-mapped
// one-dimensional value: routed sketch estimate with top-k
// compensation, through a pooled estimator so repeated queries reuse
// the row and parity scratch. This is the estimator the auditor
// scores, so the audit report measures exactly the error a
// user-issued ordered query sees.
//
//lint:hotpath
func (e *Engine) estimateValue(v uint64) float64 {
	es := e.qest.Get().(*ams.Estimator)
	est := es.Count(e.streams.SketchFor(v), v, e.adjustmentForValue(v))
	e.qest.Put(es)
	return est
}
