package core

import (
	"fmt"
	"math/rand/v2"

	"sketchtree/internal/enum"
	"sketchtree/internal/exact"
	"sketchtree/internal/summary"
	"sketchtree/internal/topk"
	"sketchtree/internal/xi"
)

// Clone deep-copies the engine into an independent frozen synopsis —
// the building block of snapshot-isolated query serving. The clone
// answers every estimator bit-identically to the receiver at clone
// time and is never updated, so any number of goroutines may query it
// concurrently (the query path is a pure read; the plan cache locks
// itself).
//
// Shared, immutable state — the ξ family, the AMS seeds, the
// fingerprint modulus, and the query-plan cache (the pattern → value
// mapping is identical across clones) — is referenced, not copied.
// The observability Metrics are also shared, so queries served from a
// clone are counted in the source engine's Stats. Mutable synopsis
// state — sketch counters, top-k trackers, the structural summary, the
// exact baseline — is copied. The exact-shadow auditor is process-local
// bookkeeping of the live update path and is not carried over
// (AuditEnabled is false on the clone).
//
// The receiver must be quiescent or locked against updates while
// cloning; Safe takes care of that for snapshot serving.
func (e *Engine) Clone() (*Engine, error) {
	streams, err := e.streams.Clone()
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	// The clone never updates, but applyTree's machinery stays usable so
	// a clone behaves like any engine (tests merge into clones, etc.).
	en, err := enum.NewEnumerator(e.cfg.MaxPatternEdges)
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	c := &Engine{
		cfg:     e.cfg,
		fam:     e.fam,
		seeds:   e.seeds,
		streams: streams,
		fp:      e.fp,
		//lint:allow determinism the clone's PCG is reseeded from Config.Seed and the tree count, same derivation Restore uses
		rng:      rand.New(rand.NewPCG(e.cfg.Seed, 0x5ce7c47ee^uint64(e.trees))),
		trees:    e.trees,
		patterns: e.patterns,
		met:      e.met,
		prep:     &xi.Prep{},
		en:       en,
		plans:    e.plans,
	}
	c.visit = c.visitPattern
	c.qest.New = func() any { return c.seeds.NewEstimator() }
	if e.trackers != nil {
		c.trackers = make([]*topk.Tracker, len(e.trackers))
		for i, t := range e.trackers {
			ct, err := topk.Restore(e.cfg.TopK, streams.Sketch(i), t.Entries())
			if err != nil {
				return nil, fmt.Errorf("core: clone: stream %d: %w", i, err)
			}
			c.trackers[i] = ct
		}
	}
	if e.sum != nil {
		sn := e.sum.Snapshot()
		c.sum, err = summary.FromSnapshot(sn)
		if err != nil {
			return nil, fmt.Errorf("core: clone: %w", err)
		}
	}
	if e.truth != nil {
		c.truth = exact.New()
		e.truth.ForEach(func(v uint64, cnt int64) { c.truth.Add(v, cnt) })
	}
	return c, nil
}
