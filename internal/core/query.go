package core

import (
	"fmt"
	"sort"

	"sketchtree/internal/ams"
	"sketchtree/internal/summary"
	"sketchtree/internal/tree"
)

// maxArrangements bounds the ordered arrangements generated for an
// unordered query before giving up.
const maxArrangements = 10000

// validatePattern checks a query pattern fits the enumerated size.
func (e *Engine) validatePattern(q *tree.Node) error {
	if q == nil {
		return fmt.Errorf("core: nil query pattern")
	}
	if edges := q.Size() - 1; edges < 1 || edges > e.cfg.MaxPatternEdges {
		return fmt.Errorf("core: query pattern has %d edges, synopsis enumerates 1..%d",
			edges, e.cfg.MaxPatternEdges)
	}
	return nil
}

// EstimateOrdered estimates COUNT_ord(Q), the number of ordered
// occurrences of the pattern in the stream so far (Algorithm 2 with
// the §5.2 top-k compensation).
func (e *Engine) EstimateOrdered(q *tree.Node) (float64, error) {
	if err := e.validatePattern(q); err != nil {
		return 0, err
	}
	v := e.PatternValue(q)
	sk := e.streams.SketchFor(v)
	var adj []int64
	if t := e.trackerFor(v); t != nil {
		adj = t.Adjustment([]uint64{v})
	}
	return sk.EstimateCount(v, adj), nil
}

// EstimateOrderedSet estimates Σ_j COUNT_ord(Q_j) for distinct
// patterns using the single set estimator of Theorem 2 over the
// combined sketch of the involved virtual streams.
func (e *Engine) EstimateOrderedSet(qs []*tree.Node) (float64, error) {
	if len(qs) == 0 {
		return 0, fmt.Errorf("core: empty pattern set")
	}
	vs := make([]uint64, len(qs))
	seen := make(map[uint64]bool, len(qs))
	for i, q := range qs {
		if err := e.validatePattern(q); err != nil {
			return 0, err
		}
		v := e.PatternValue(q)
		if seen[v] {
			return 0, fmt.Errorf("core: duplicate pattern %s in set (patterns must be distinct)", q)
		}
		seen[v] = true
		vs[i] = v
	}
	sk := e.streams.Combined(vs)
	return sk.EstimateSetCount(vs, e.adjustmentFor(vs)), nil
}

// Arrangements returns the distinct ordered arrangements of an
// unordered pattern: every permutation of every node's children,
// deduplicated (permuting identical sibling subtrees does not create a
// new arrangement). Fails if more than max would be generated
// (max <= 0 uses a package default).
func Arrangements(q *tree.Node, max int) ([]*tree.Node, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	if max <= 0 {
		max = maxArrangements
	}
	out, err := arrange(q, max)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

func arrange(q *tree.Node, max int) ([]*tree.Node, error) {
	if len(q.Children) == 0 {
		return []*tree.Node{{Label: q.Label}}, nil
	}
	// Arrangements of each child subtree.
	childArr := make([][]*tree.Node, len(q.Children))
	for i, c := range q.Children {
		a, err := arrange(c, max)
		if err != nil {
			return nil, err
		}
		childArr[i] = a
	}
	seen := map[string]bool{}
	var out []*tree.Node
	idx := make([]int, len(q.Children))
	for i := range idx {
		idx[i] = i
	}
	var permute func(k int) error
	emit := func() error {
		pick := make([]int, len(idx))
		copy(pick, idx)
		sel := make([]*tree.Node, len(idx))
		var choose func(i int) error
		choose = func(i int) error {
			if i == len(idx) {
				n := &tree.Node{Label: q.Label, Children: append([]*tree.Node(nil), sel...)}
				key := n.String()
				if !seen[key] {
					if len(out) >= max {
						return fmt.Errorf("core: more than %d ordered arrangements", max)
					}
					seen[key] = true
					out = append(out, n)
				}
				return nil
			}
			for _, alt := range childArr[pick[i]] {
				sel[i] = alt
				if err := choose(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		return choose(0)
	}
	permute = func(k int) error {
		if k == len(idx) {
			return emit()
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			if err := permute(k + 1); err != nil {
				return err
			}
			idx[k], idx[i] = idx[i], idx[k]
		}
		return nil
	}
	if err := permute(0); err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateUnordered estimates COUNT(Q): the unordered pattern's count
// is the total ordered count over all its distinct arrangements
// (§3.3), answered with the set estimator.
func (e *Engine) EstimateUnordered(q *tree.Node) (float64, error) {
	if err := e.validatePattern(q); err != nil {
		return 0, err
	}
	arr, err := Arrangements(q, 0)
	if err != nil {
		return 0, err
	}
	return e.EstimateOrderedSet(arr)
}

// Expr is a query expression over pattern counts (§4 grammar) at the
// pattern level; it compiles to the value-level ams.Expr.
type Expr interface{ isExpr() }

// CountOf is the COUNT_ord(Q) terminal.
type CountOf struct{ Pattern *tree.Node }

// ExprAdd is E + E.
type ExprAdd struct{ L, R Expr }

// ExprSub is E − E.
type ExprSub struct{ L, R Expr }

// ExprMul is E × E.
type ExprMul struct{ L, R Expr }

func (CountOf) isExpr() {}
func (ExprAdd) isExpr() {}
func (ExprSub) isExpr() {}
func (ExprMul) isExpr() {}

// compile lowers a pattern expression to a value expression,
// collecting the distinct values involved.
func (e *Engine) compile(x Expr, vals map[uint64]bool) (ams.Expr, error) {
	switch v := x.(type) {
	case CountOf:
		if err := e.validatePattern(v.Pattern); err != nil {
			return nil, err
		}
		val := e.PatternValue(v.Pattern)
		vals[val] = true
		return ams.Count{V: val}, nil
	case ExprAdd:
		l, r, err := e.compile2(v.L, v.R, vals)
		if err != nil {
			return nil, err
		}
		return ams.Add{L: l, R: r}, nil
	case ExprSub:
		l, r, err := e.compile2(v.L, v.R, vals)
		if err != nil {
			return nil, err
		}
		return ams.Sub{L: l, R: r}, nil
	case ExprMul:
		l, r, err := e.compile2(v.L, v.R, vals)
		if err != nil {
			return nil, err
		}
		return ams.Mul{L: l, R: r}, nil
	case nil:
		return nil, fmt.Errorf("core: nil expression")
	default:
		return nil, fmt.Errorf("core: unknown expression type %T", x)
	}
}

func (e *Engine) compile2(l, r Expr, vals map[uint64]bool) (ams.Expr, ams.Expr, error) {
	cl, err := e.compile(l, vals)
	if err != nil {
		return nil, nil, err
	}
	cr, err := e.compile(r, vals)
	if err != nil {
		return nil, nil, err
	}
	return cl, cr, nil
}

// EstimateExpr estimates a query expression over pattern counts: the
// relevant virtual-stream sketches are summed (shared seeds make the
// sum the sketch of the union, §5.3) and the §4 unbiased estimator is
// evaluated with top-k compensation. Product terms require the engine
// to have been configured with sufficient ξ independence
// (Config.Independence >= 2 × the largest product degree).
func (e *Engine) EstimateExpr(x Expr) (float64, error) {
	vals := make(map[uint64]bool)
	ax, err := e.compile(x, vals)
	if err != nil {
		return 0, err
	}
	vs := make([]uint64, 0, len(vals))
	for v := range vals {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	sk := e.streams.Combined(vs)
	return sk.EstimateExpr(ax, e.adjustmentFor(vs))
}

// EstimateExtended answers a query with wildcard nodes and descendant
// edges by resolving it against the structural summary into distinct
// parent-child patterns (§6.2) and estimating their total frequency.
// The boolean reports truncation: the result may undercount when the
// summary was capped or expansions exceeded the enumerated pattern
// size.
func (e *Engine) EstimateExtended(q *summary.QueryNode) (float64, bool, error) {
	if e.sum == nil {
		return 0, false, fmt.Errorf("core: structural summary not enabled (Config.BuildSummary)")
	}
	pats, truncated, err := e.sum.Resolve(q, e.cfg.MaxPatternEdges, maxArrangements)
	if err != nil {
		return 0, truncated, err
	}
	if len(pats) == 0 {
		return 0, truncated, nil
	}
	est, err := e.EstimateOrderedSet(pats)
	return est, truncated, err
}

// SanityBound applies the paper's §7.5 convention for reporting: a
// negative approximate count is replaced by 0.1 × actual when the
// actual count is known (experiments), else clamped to zero.
func SanityBound(approx, actual float64) float64 {
	if approx >= 0 {
		return approx
	}
	if actual > 0 {
		return 0.1 * actual
	}
	return 0
}
