package core

import (
	"fmt"
	"sort"

	"sketchtree/internal/ams"
	"sketchtree/internal/obs"
	"sketchtree/internal/summary"
	"sketchtree/internal/tree"
)

// maxArrangements bounds the ordered arrangements generated for an
// unordered query before giving up.
const maxArrangements = 10000

// validatePattern checks a query pattern fits the enumerated size.
func (e *Engine) validatePattern(q *tree.Node) error {
	if q == nil {
		return fmt.Errorf("core: nil query pattern")
	}
	if edges := q.Size() - 1; edges < 1 || edges > e.cfg.MaxPatternEdges {
		return fmt.Errorf("core: query pattern has %d edges, synopsis enumerates 1..%d",
			edges, e.cfg.MaxPatternEdges)
	}
	return nil
}

// EstimateOrdered estimates COUNT_ord(Q), the number of ordered
// occurrences of the pattern in the stream so far (Algorithm 2 with
// the §5.2 top-k compensation).
func (e *Engine) EstimateOrdered(q *tree.Node) (float64, error) {
	start := e.met.QueryStart()
	est, err := e.estimateOrdered(q)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateOrdered(q *tree.Node) (float64, error) {
	if err := e.validatePattern(q); err != nil {
		return 0, err
	}
	return e.estimateValue(e.orderedValue(q)), nil
}

// orderedValue maps a validated pattern to its one-dimensional value
// through the query-plan cache (a plain PatternValue call when caching
// is disabled). The key is built into a pooled buffer and probed with
// lookupBytes, so a cache hit performs no allocation.
//
//lint:hotpath
func (e *Engine) orderedValue(q *tree.Node) uint64 {
	if e.plans == nil {
		return e.PatternValue(q) //lint:allow hotpath caching disabled: the uncached mapping allocates by design
	}
	start := e.met.Now()
	kb := keyBufPool.Get().(*[]byte)
	key := q.AppendSexp(append((*kb)[:0], 'o', ':')) //lint:allow hotpath appends into the pooled key buffer, reusing its capacity
	vs, ok := e.plans.lookupBytes(key)
	var v uint64
	if ok {
		v = vs[0]
	} else {
		v = e.PatternValue(q)                   //lint:allow hotpath plan miss: the mapping runs once, then the value is cached
		e.plans.store(string(key), []uint64{v}) //lint:allow hotpath plan miss: key and value escape into the cache once
	}
	*kb = key[:0]
	keyBufPool.Put(kb)
	e.met.StageSince(obs.StagePlan, start)
	return v
}

// unorderedValues maps a validated unordered pattern to the distinct
// fingerprint values of its ordered arrangements, through the
// query-plan cache. The returned slice is shared with the cache and
// must not be mutated.
func (e *Engine) unorderedValues(q *tree.Node) ([]uint64, error) {
	if e.plans != nil {
		start := e.met.Now()
		kb := keyBufPool.Get().(*[]byte)
		key := q.AppendSexp(append((*kb)[:0], 'u', ':'))
		vs, ok := e.plans.lookupBytes(key)
		*kb = key[:0]
		keyBufPool.Put(kb)
		e.met.StageSince(obs.StagePlan, start)
		if ok {
			return vs, nil
		}
	}
	arr, err := Arrangements(q, 0)
	if err != nil {
		return nil, err
	}
	vs, err := e.setValues(arr)
	if err != nil {
		return nil, err
	}
	if e.plans != nil {
		e.plans.store("u:"+q.String(), vs)
	}
	return vs, nil
}

// EstimateOrderedSet estimates Σ_j COUNT_ord(Q_j) for distinct
// patterns using the single set estimator of Theorem 2 over the
// combined sketch of the involved virtual streams.
func (e *Engine) EstimateOrderedSet(qs []*tree.Node) (float64, error) {
	start := e.met.QueryStart()
	est, err := e.estimateOrderedSet(qs)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateOrderedSet(qs []*tree.Node) (float64, error) {
	vs, err := e.setValues(qs)
	if err != nil {
		return 0, err
	}
	sk := e.streams.Combined(vs)
	return sk.EstimateSetCount(vs, e.adjustmentFor(vs)), nil
}

// setValues validates a pattern set and maps it to its distinct
// one-dimensional values.
func (e *Engine) setValues(qs []*tree.Node) ([]uint64, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: empty pattern set")
	}
	vs := make([]uint64, len(qs))
	seen := make(map[uint64]bool, len(qs))
	for i, q := range qs {
		if err := e.validatePattern(q); err != nil {
			return nil, err
		}
		v := e.orderedValue(q)
		if seen[v] {
			return nil, fmt.Errorf("core: duplicate pattern %s in set (patterns must be distinct)", q)
		}
		seen[v] = true
		vs[i] = v
	}
	return vs, nil
}

// Arrangements returns the distinct ordered arrangements of an
// unordered pattern: every permutation of every node's children,
// deduplicated (permuting identical sibling subtrees does not create a
// new arrangement). Fails if more than max would be generated
// (max <= 0 uses a package default).
func Arrangements(q *tree.Node, max int) ([]*tree.Node, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	if max <= 0 {
		max = maxArrangements
	}
	out, err := arrange(q, max)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// arrange generates the distinct ordered arrangements directly as
// multiset permutations: children that are equal as unordered trees
// (identical arrangement sets) collapse into one group, and the
// recursion places group tokens rather than child indices. A star of m
// identical leaves therefore yields its 1 arrangement in O(1) steps
// instead of m! permutations deduplicated by string key, and the max
// cap only trips when the output itself is large.
func arrange(q *tree.Node, max int) ([]*tree.Node, error) {
	if len(q.Children) == 0 {
		return []*tree.Node{{Label: q.Label}}, nil
	}
	// Group children by their canonical unordered form — the
	// lexicographically smallest arrangement. Children in one group are
	// interchangeable; children in different groups have disjoint
	// arrangement sets (an ordered tree determines its unordered tree),
	// so the generated sequences below are distinct by construction.
	type group struct {
		arr   []*tree.Node
		count int
	}
	var groups []*group
	index := map[string]*group{}
	for _, c := range q.Children {
		a, err := arrange(c, max)
		if err != nil {
			return nil, err
		}
		key := a[0].String()
		for _, alt := range a[1:] {
			if s := alt.String(); s < key {
				key = s
			}
		}
		if g, ok := index[key]; ok {
			g.count++
			continue
		}
		g := &group{arr: a, count: 1}
		index[key] = g
		groups = append(groups, g)
	}
	var out []*tree.Node
	slots := make([]*tree.Node, len(q.Children))
	var place func(pos int) error
	place = func(pos int) error {
		if pos == len(slots) {
			if len(out) >= max {
				return fmt.Errorf("core: more than %d ordered arrangements", max)
			}
			out = append(out, &tree.Node{Label: q.Label, Children: append([]*tree.Node(nil), slots...)})
			return nil
		}
		for _, g := range groups {
			if g.count == 0 {
				continue
			}
			g.count--
			for _, alt := range g.arr {
				slots[pos] = alt
				if err := place(pos + 1); err != nil {
					g.count++
					return err
				}
			}
			g.count++
		}
		return nil
	}
	if err := place(0); err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateUnordered estimates COUNT(Q): the unordered pattern's count
// is the total ordered count over all its distinct arrangements
// (§3.3), answered with the set estimator.
func (e *Engine) EstimateUnordered(q *tree.Node) (float64, error) {
	start := e.met.QueryStart()
	est, err := e.estimateUnordered(q)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateUnordered(q *tree.Node) (float64, error) {
	if err := e.validatePattern(q); err != nil {
		return 0, err
	}
	vs, err := e.unorderedValues(q)
	if err != nil {
		return 0, err
	}
	sk := e.streams.Combined(vs)
	return sk.EstimateSetCount(vs, e.adjustmentFor(vs)), nil
}

// Expr is a query expression over pattern counts (§4 grammar) at the
// pattern level; it compiles to the value-level ams.Expr.
type Expr interface{ isExpr() }

// CountOf is the COUNT_ord(Q) terminal.
type CountOf struct{ Pattern *tree.Node }

// ExprAdd is E + E.
type ExprAdd struct{ L, R Expr }

// ExprSub is E − E.
type ExprSub struct{ L, R Expr }

// ExprMul is E × E.
type ExprMul struct{ L, R Expr }

func (CountOf) isExpr() {}
func (ExprAdd) isExpr() {}
func (ExprSub) isExpr() {}
func (ExprMul) isExpr() {}

// compile lowers a pattern expression to a value expression,
// collecting the distinct values involved.
func (e *Engine) compile(x Expr, vals map[uint64]bool) (ams.Expr, error) {
	switch v := x.(type) {
	case CountOf:
		if err := e.validatePattern(v.Pattern); err != nil {
			return nil, err
		}
		val := e.orderedValue(v.Pattern)
		vals[val] = true
		return ams.Count{V: val}, nil
	case ExprAdd:
		l, r, err := e.compile2(v.L, v.R, vals)
		if err != nil {
			return nil, err
		}
		return ams.Add{L: l, R: r}, nil
	case ExprSub:
		l, r, err := e.compile2(v.L, v.R, vals)
		if err != nil {
			return nil, err
		}
		return ams.Sub{L: l, R: r}, nil
	case ExprMul:
		l, r, err := e.compile2(v.L, v.R, vals)
		if err != nil {
			return nil, err
		}
		return ams.Mul{L: l, R: r}, nil
	case nil:
		return nil, fmt.Errorf("core: nil expression")
	default:
		return nil, fmt.Errorf("core: unknown expression type %T", x)
	}
}

func (e *Engine) compile2(l, r Expr, vals map[uint64]bool) (ams.Expr, ams.Expr, error) {
	cl, err := e.compile(l, vals)
	if err != nil {
		return nil, nil, err
	}
	cr, err := e.compile(r, vals)
	if err != nil {
		return nil, nil, err
	}
	return cl, cr, nil
}

// EstimateExpr estimates a query expression over pattern counts: the
// relevant virtual-stream sketches are summed (shared seeds make the
// sum the sketch of the union, §5.3) and the §4 unbiased estimator is
// evaluated with top-k compensation. Product terms require the engine
// to have been configured with sufficient ξ independence
// (Config.Independence >= 2 × the largest product degree).
func (e *Engine) EstimateExpr(x Expr) (float64, error) {
	start := e.met.QueryStart()
	est, err := e.estimateExpr(x)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateExpr(x Expr) (float64, error) {
	vals := make(map[uint64]bool)
	ax, err := e.compile(x, vals)
	if err != nil {
		return 0, err
	}
	vs := make([]uint64, 0, len(vals))
	for v := range vals {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	sk := e.streams.Combined(vs)
	return sk.EstimateExpr(ax, e.adjustmentFor(vs))
}

// EstimateExtended answers a query with wildcard nodes and descendant
// edges by resolving it against the structural summary into distinct
// parent-child patterns (§6.2) and estimating their total frequency.
// The boolean reports truncation: the result may undercount when the
// summary was capped or expansions exceeded the enumerated pattern
// size.
func (e *Engine) EstimateExtended(q *summary.QueryNode) (float64, bool, error) {
	start := e.met.QueryStart()
	est, truncated, err := e.estimateExtended(q)
	e.met.QueryDone(start, err)
	return est, truncated, err
}

func (e *Engine) estimateExtended(q *summary.QueryNode) (float64, bool, error) {
	if e.sum == nil {
		return 0, false, fmt.Errorf("core: structural summary not enabled (Config.BuildSummary)")
	}
	pats, truncated, err := e.sum.Resolve(q, e.cfg.MaxPatternEdges, maxArrangements)
	if err != nil {
		return 0, truncated, err
	}
	if len(pats) == 0 {
		return 0, truncated, nil
	}
	est, err := e.estimateOrderedSet(pats)
	return est, truncated, err
}

// SanityBound applies the paper's §7.5 convention for reporting: a
// negative approximate count is replaced by 0.1 × actual when the
// actual count is known (experiments), else clamped to zero.
func SanityBound(approx, actual float64) float64 {
	if approx >= 0 {
		return approx
	}
	if actual > 0 {
		return 0.1 * actual
	}
	return 0
}
