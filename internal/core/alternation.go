package core

import (
	"fmt"
	"strings"

	"sketchtree/internal/tree"
)

// Alternations expands a pattern whose labels may contain '|'-separated
// alternatives (the boolean OR of paper Example 5, e.g. the query node
// "VBD|VBP|VBZ") into the set of distinct plain patterns, one per
// combination of alternatives. The total frequency of that set equals
// the OR-query's count, so the Theorem-2 set estimator answers it in
// one shot. max caps the expansion (<= 0 uses a safe default).
func Alternations(q *tree.Node, max int) ([]*tree.Node, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	if max <= 0 {
		max = maxArrangements
	}
	out, err := alternate(q, max)
	if err != nil {
		return nil, err
	}
	// Alternatives are distinct by construction unless the query
	// repeats an alternative ("A|A"); deduplicate to keep the set
	// estimator's precondition.
	seen := make(map[string]bool, len(out))
	dedup := out[:0]
	for _, p := range out {
		key := p.String()
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}

func alternate(q *tree.Node, max int) ([]*tree.Node, error) {
	labels := strings.Split(q.Label, "|")
	childAlts := make([][]*tree.Node, len(q.Children))
	total := len(labels)
	for i, c := range q.Children {
		a, err := alternate(c, max)
		if err != nil {
			return nil, err
		}
		childAlts[i] = a
		total *= len(a)
		if total > max {
			return nil, fmt.Errorf("core: more than %d OR expansions", max)
		}
	}
	var out []*tree.Node
	pick := make([]*tree.Node, len(q.Children))
	var choose func(i int, label string)
	choose = func(i int, label string) {
		if i == len(q.Children) {
			out = append(out, &tree.Node{
				Label:    label,
				Children: append([]*tree.Node(nil), pick...),
			})
			return
		}
		for _, alt := range childAlts[i] {
			pick[i] = alt
			choose(i+1, label)
		}
	}
	for _, l := range labels {
		choose(0, l)
	}
	return out, nil
}

// EstimateAlternations estimates the count of a pattern with
// '|'-alternative labels: the pattern is expanded into its distinct
// plain alternatives and their total frequency is estimated with the
// set estimator (paper Example 5's who/what/how-question counting).
func (e *Engine) EstimateAlternations(q *tree.Node) (float64, error) {
	start := e.met.QueryStart()
	est, err := e.estimateAlternations(q)
	e.met.QueryDone(start, err)
	return est, err
}

func (e *Engine) estimateAlternations(q *tree.Node) (float64, error) {
	pats, err := Alternations(q, 0)
	if err != nil {
		return 0, err
	}
	if len(pats) == 1 {
		return e.estimateOrdered(pats[0])
	}
	return e.estimateOrderedSet(pats)
}
