package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"sketchtree/internal/ams"
	"sketchtree/internal/datagen"
	"sketchtree/internal/enum"
	"sketchtree/internal/gf2"
	"sketchtree/internal/match"
	"sketchtree/internal/pairing"
	"sketchtree/internal/prufer"
	"sketchtree/internal/tree"
	"sketchtree/internal/xi"
)

// Distinct patterns must map to distinct fingerprints in practice: run
// tens of thousands of enumerated patterns from a realistic stream
// through the mapping and demand zero collisions (degree-61 modulus:
// birthday bound ~ 1e-9 here).
func TestPatternValueCollisionFree(t *testing.T) {
	m, err := NewMapper(61, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]string, 1<<16)
	checked := 0
	src := datagen.Treebank(3, 150)
	err = src.ForEach(func(tr *tree.Tree) error {
		en, err := enum.NewEnumerator(4)
		if err != nil {
			return err
		}
		return en.ForEach(tr.Root, func(p *enum.Pattern) error {
			mt := p.ToTree()
			v := m.PatternValue(mt)
			key := mt.String()
			if prev, ok := seen[v]; ok && prev != key {
				t.Fatalf("fingerprint collision: %s and %s both map to %d", prev, key, v)
			}
			seen[v] = key
			checked++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 1000 {
		t.Fatalf("only %d distinct patterns checked", len(seen))
	}
	t.Logf("checked %d pattern occurrences, %d distinct", checked, len(seen))
}

// The Rabin mapping must agree with the exact pairing-function mapping
// on injectivity: two patterns get the same fingerprint iff they get
// the same PF value (both should simply be injective here).
func TestRabinAgreesWithPairingOnDistinctness(t *testing.T) {
	m, err := NewMapper(61, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	alphabet := []string{"A", "B", "C"}
	var pats []*tree.Node
	// Small patterns only: PF's range doubles in bit length per tuple
	// element (why §6.1 switches to fingerprints), so exact PF values
	// for big patterns are enormous.
	for i := 0; i < 200; i++ {
		n := rng.IntN(3) + 2
		nodes := make([]*tree.Node, n)
		for j := range nodes {
			nodes[j] = tree.New(alphabet[rng.IntN(len(alphabet))])
		}
		for j := 1; j < n; j++ {
			nodes[rng.IntN(j)].AddChild(nodes[j])
		}
		pats = append(pats, nodes[0])
	}
	type ids struct{ rab uint64 }
	byPF := map[string]ids{}
	for _, p := range pats {
		seq := prufer.OfNode(p)
		// Exact PF over the label-hash / postorder tuple (§2.3).
		tuple := make([]uint64, 0, 2*seq.Len())
		for _, l := range seq.LPS {
			tuple = append(tuple, uint64(len(l))<<8|uint64(l[0]))
		}
		for _, v := range seq.NPS {
			tuple = append(tuple, uint64(v))
		}
		pf := pairing.PFTuple(tuple).String()
		rab := m.PatternValue(p)
		if prev, ok := byPF[pf]; ok {
			if prev.rab != rab {
				t.Fatalf("PF equal but fingerprints differ for %s", p)
			}
		} else {
			byPF[pf] = ids{rab: rab}
		}
	}
}

// Empirical Theorem 1: size s1 by the theorem for (ε, δ) on a known
// stream; the observed failure rate over independent engines must not
// exceed δ by a meaningful margin.
func TestTheorem1EmpiricalCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine coverage test")
	}
	// Ground-truth stream: counts chosen so SJ and f_q are known.
	type vc struct {
		v uint64
		f int64
	}
	stream := []vc{{1, 30}, {2, 20}, {3, 10}, {4, 5}, {5, 5}, {6, 2}, {7, 2}, {8, 1}}
	var sj float64
	for _, x := range stream {
		sj += float64(x.f) * float64(x.f)
	}
	const (
		eps   = 0.5
		delta = 0.25
		fq    = 30.0
	)
	s1 := ams.Theorem1S1(sj, fq, eps) // 8·SJ/(ε²·f²)
	s2 := ams.S2ForConfidence(delta)
	rng := rand.New(rand.NewPCG(77, 88))
	fam := xi.NewBCHFamily(gf2.MustField(gf2.DefaultModulus(63)))
	const engines = 300
	failures := 0
	for i := 0; i < engines; i++ {
		seeds, err := ams.NewSeeds(fam, s1, s2, rng)
		if err != nil {
			t.Fatal(err)
		}
		sk := seeds.NewSketch()
		for _, x := range stream {
			sk.Update(x.v, x.f)
		}
		est := sk.EstimateCount(1, nil)
		if math.Abs(est-fq) > eps*fq {
			failures++
		}
	}
	rate := float64(failures) / engines
	// The theorem guarantees rate <= δ; allow sampling slack
	// (σ ≈ sqrt(δ(1-δ)/300) ≈ 0.025).
	if rate > delta+0.08 {
		t.Errorf("failure rate %.3f exceeds δ = %v (s1=%d, s2=%d)", rate, delta, s1, s2)
	}
	t.Logf("failure rate %.3f (δ = %v, s1 = %d, s2 = %d)", rate, delta, s1, s2)
}

// Cross-validation of the whole update pipeline against brute-force
// matching: the engine's exact counter (fed by EnumTree + Prüfer +
// fingerprint) must agree with match.CountOrdered for every pattern on
// random streams.
func TestEngineExactAgreesWithBruteForceMatching(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPatternEdges = 3
	e := mustEngine(t, cfg)
	rng := rand.New(rand.NewPCG(9, 10))
	alphabet := []string{"A", "B", "C"}
	var trees []*tree.Node
	for i := 0; i < 25; i++ {
		n := rng.IntN(8) + 2
		nodes := make([]*tree.Node, n)
		for j := range nodes {
			nodes[j] = tree.New(alphabet[rng.IntN(len(alphabet))])
		}
		for j := 1; j < n; j++ {
			nodes[rng.IntN(j)].AddChild(nodes[j])
		}
		trees = append(trees, nodes[0])
		if err := e.AddTree(tree.NewTree(nodes[0])); err != nil {
			t.Fatal(err)
		}
	}
	queries := []*tree.Node{
		tree.T("A", tree.T("B")),
		tree.T("A", tree.T("B"), tree.T("C")),
		tree.T("B", tree.T("C", tree.T("A"))),
		tree.T("C", tree.T("C"), tree.T("C")),
		tree.T("A", tree.T("A", tree.T("A"))),
	}
	for _, q := range queries {
		var want int64
		for _, d := range trees {
			want += match.CountOrdered(d, q)
		}
		got := e.Exact().Count(e.PatternValue(q))
		if got != want {
			t.Errorf("engine exact count of %s = %d, brute force = %d", q, got, want)
		}
	}
}
